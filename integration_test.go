package repro

// Cross-package integration tests: the full C-TDG workflow of the paper —
// generate a dataset, assign edge lifetimes, replay the timeline through
// the incremental engines, and verify against from-scratch inference at
// every timestamp.

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/lightgcn"
)

func TestTimelineReplayThroughEngine(t *testing.T) {
	for _, kind := range []gnn.AggKind{gnn.AggMax, gnn.AggMean} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			base := dataset.GenerateRMAT(rng, 300, 1200, dataset.DefaultRMAT)
			feats := dataset.NewFeatures(rng, 300, 8)
			tl, err := graph.AssignTimes(base, 0.4, 99)
			if err != nil {
				t.Fatal(err)
			}
			times := graph.Timestamps(5)
			g0 := tl.SnapshotAt(times[0])
			model := gnn.NewGCN(rng, 8, 16, gnn.NewAggregator(kind))
			eng, err := inkstream.New(model, g0, feats.X, nil, inkstream.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(times); i++ {
				delta := tl.DeltaBetween(times[i-1], times[i])
				if len(delta) == 0 {
					continue
				}
				if err := eng.Update(delta); err != nil {
					t.Fatalf("t=%g: %v", times[i], err)
				}
				want, err := gnn.Infer(model, tl.SnapshotAt(times[i]), feats.X, nil)
				if err != nil {
					t.Fatal(err)
				}
				if kind == gnn.AggMax {
					if !eng.State().Equal(want) {
						t.Fatalf("t=%g: replayed state not bit-identical", times[i])
					}
				} else if !eng.State().ApproxEqual(want, 2e-3) {
					t.Fatalf("t=%g: replayed state diverged", times[i])
				}
			}
		})
	}
}

func TestTimelineReplayThroughLightGCN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := dataset.GenerateRMAT(rng, 200, 800, dataset.DefaultRMAT)
	feats := dataset.NewFeatures(rng, 200, 6)
	tl, err := graph.AssignTimes(base, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	times := graph.Timestamps(4)
	eng, err := lightgcn.New(tl.SnapshotAt(times[0]), feats.X, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(times); i++ {
		delta := tl.DeltaBetween(times[i-1], times[i])
		if len(delta) == 0 {
			continue
		}
		if err := eng.Update(delta); err != nil {
			t.Fatalf("t=%g: %v", times[i], err)
		}
	}
	// Verify the final state only (the per-step check is in the package
	// tests); the reference is a fresh engine over the final snapshot.
	ref, err := lightgcn.New(tl.SnapshotAt(1.0), feats.X, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Output().ApproxEqual(ref.Output(), 5e-3) {
		t.Fatalf("lightgcn replay diverged (max diff %g)", eng.Output().MaxAbsDiff(ref.Output()))
	}
}

// The three maintained systems (InkStream, k-hop baseline, full inference)
// agree after the same stream.
func TestAllMethodsAgreeOnStream(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := dataset.GenerateRMAT(rng, 400, 1600, dataset.DefaultRMAT)
	feats := dataset.NewFeatures(rng, 400, 8)
	model := gnn.NewSAGE(rng, 8, 16, gnn.NewAggregator(gnn.AggMax))
	stream := graph.GenerateStream(g, graph.StreamConfig{BatchSize: 15, NumBatches: 4, Seed: 5})

	ink, err := inkstream.New(model, g.Clone(), feats.X, nil, inkstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	khop, err := baseline.NewKHop(model, g.Clone(), feats.X, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range stream.Batches {
		if err := ink.Update(append(graph.Delta(nil), d...)); err != nil {
			t.Fatalf("ink batch %d: %v", i, err)
		}
		if err := khop.Update(append(graph.Delta(nil), d...)); err != nil {
			t.Fatalf("khop batch %d: %v", i, err)
		}
	}
	full := &baseline.Full{Model: model}
	want, err := full.Infer(stream.At(len(stream.Batches)), feats.X)
	if err != nil {
		t.Fatal(err)
	}
	if !ink.Output().Equal(want.Output()) {
		t.Error("inkstream disagrees with full inference")
	}
	if !khop.Output().ApproxEqual(want.Output(), 1e-4) {
		t.Error("k-hop disagrees with full inference")
	}
}

// Dataset round trip feeds the engine: save, load, run.
func TestSavedDatasetDrivesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	spec := dataset.PubMed
	spec.Scale *= 16
	g, f := dataset.Generate(spec, 77)
	path := t.TempDir() + "/pm.inks"
	if err := dataset.SaveFile(path, g, f); err != nil {
		t.Fatal(err)
	}
	g2, f2, err := dataset.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	model := gnn.NewGIN(rng, f2.Dim(), 8, 3, gnn.NewAggregator(gnn.AggMax))
	eng, err := inkstream.New(model, g2, f2.X, nil, inkstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Update(graph.RandomDelta(rng, eng.Graph(), 10)); err != nil {
		t.Fatal(err)
	}
	want, err := gnn.Infer(model, eng.Graph(), f2.X, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.State().Equal(want) {
		t.Error("engine over loaded dataset diverged")
	}
}
