package shard

import (
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// Sharded flight recorder (DESIGN.md §12): the PR-5 observability stack at
// round granularity. Requests get trace IDs and cumulative stage marks
// (journal → apply → ack; the router pipeline has no separate coalesce or
// publish handoff — fusing happens before the journal and every shard
// publishes inside the apply stage), each sealed round gets a RoundTrace
// with per-stage per-shard compute/barrier/ghost spans, and the sampler +
// alert engine give the router the same /v1/timeseries, /v1/alerts and
// SLO-aware /healthz surface as the single-engine server.

// finish is the single acknowledgement point of the round pipeline: it
// bumps the processed/updates counters, observes ack latency, records the
// request's flight trace when it qualifies (sampled, slow or failed), and
// only then delivers the outcome. Every done-channel send goes through
// here. fused is the number of requests in the request's round (0 when it
// never joined one).
func (rt *Router) finish(req *request, err error, fused int) {
	rt.processed.Add(1)
	total := time.Since(req.start)
	if err == nil {
		rt.updates.Add(1)
		rt.ackLat.Observe(total.Nanoseconds())
	}
	if f := rt.flight; f != nil && req.id != 0 {
		req.marks[obs.StageAck] = total
		slow := f.IsSlow(total)
		if req.sampled || slow || err != nil {
			if err == nil {
				rt.ackLat.Exemplar(total.Nanoseconds(), req.id)
			}
			t := &obs.ReqTrace{
				ID:      req.id,
				Kind:    req.kind,
				Start:   req.start,
				Edges:   req.logical,
				VUps:    len(req.vups),
				Fused:   fused,
				Marks:   req.marks,
				Total:   total,
				Sampled: req.sampled,
				Slow:    slow,
				Round:   req.round,
			}
			if err != nil {
				t.Err = err.Error()
			}
			t.GCPause = rt.runtime.GCPauseOverlap(req.start, req.start.Add(total))
			f.Record(t)
		}
	}
	req.done <- err
}

// recordRound freezes one successful profiled round: total latency,
// histogram + round-ID exemplar, cumulative critical-path attribution, and
// the ring slot. Runs on the apply goroutine only.
func (rt *Router) recordRound(p *obs.RoundTrace) {
	p.Total = time.Since(p.Start)
	rt.roundDur.Observe(p.Total.Nanoseconds())
	rt.roundDur.Exemplar(p.Total.Nanoseconds(), p.ID)

	// Per-stage participant means: shards whose layer call was skipped
	// contribute neither compute nor wait, and for participants
	// mean(compute)+mean(barrier) = stage makespan, so the invariant
	// computeNS+barrierNS ≈ bspNS survives idle-shard skipping.
	bsp := p.BSPTime().Nanoseconds()
	var compNS, waitNS, bndNS, intrNS int64
	for _, st := range p.Stages {
		var c, w, k int64
		for _, sh := range st.Shards {
			if sh.Skipped {
				continue
			}
			c += sh.Compute.Nanoseconds()
			w += sh.Barrier.Nanoseconds()
			bndNS += sh.Boundary.Nanoseconds()
			intrNS += sh.Interior.Nanoseconds()
			k++
		}
		if k > 0 {
			compNS += c / k
			waitNS += w / k
		}
	}
	rt.boundaryNS.Add(bndNS)
	rt.interiorNS.Add(intrNS)
	rt.bspNS.Add(bsp)
	rt.computeNS.Add(compNS)
	if waitNS > 0 {
		rt.barrierNS.Add(waitNS)
	}
	rt.broadcastNS.Add(p.BroadcastTime().Nanoseconds())
	if s := p.Straggler(); s >= 0 && s < len(rt.stragglerRounds) {
		rt.stragglerRounds[s].Add(1)
	}
	rt.skewMilli.Add(int64(p.StragglerSkew() * 1000))
	rt.lastBarrierShare.Store(math.Float64bits(p.BarrierShare()))
	rt.lastSkew.Store(math.Float64bits(p.StragglerSkew()))
	rt.profiled.Add(1)
	rt.profiler.Record(p)
}

// lastShare returns the most recent profiled round's barrier share.
func (rt *Router) lastShare() float64 { return math.Float64frombits(rt.lastBarrierShare.Load()) }

// SetRoundProfiling reconfigures the round profiler before serving: ring is
// the number of retained rounds; 0 disables profiling entirely (no
// RoundTrace allocation, no per-stage timing) — the off-path the overhead
// gate benchmarks against. Not safe to call with rounds in flight.
func (rt *Router) SetRoundProfiling(ring int) {
	if ring <= 0 {
		rt.profiler = nil
		for _, s := range rt.shards {
			s.eng.SetRoundTiming(false)
		}
		return
	}
	rt.profiler = obs.NewRoundRecorder(ring)
	for _, s := range rt.shards {
		s.eng.SetRoundTiming(true)
	}
}

// SetTraceSampling reconfigures request tracing before serving: ring is the
// number of retained traces, every the sampling divisor (0 records only
// slow/failed requests). ring 0 disables request tracing entirely.
func (rt *Router) SetTraceSampling(ring, every int) {
	if ring <= 0 {
		rt.flight = nil
		return
	}
	f := obs.NewFlightRecorder(ring, every)
	if rt.flight != nil {
		f.SetSlowThreshold(rt.flight.SlowThreshold())
	}
	rt.flight = f
}

// SetSlowTraceThreshold marks requests at or above d as slow (always
// recorded). Safe at any time; no-op when tracing is disabled.
func (rt *Router) SetSlowTraceThreshold(d time.Duration) {
	if rt.flight != nil {
		rt.flight.SetSlowThreshold(d)
	}
}

// SetHealthSLO sets the ack-latency p99 objective /healthz enforces and
// installs the standard fast/slow burn-rate alert pair over the windowed
// ack p99 series. 0 disables both.
func (rt *Router) SetHealthSLO(slo time.Duration) {
	rt.sloNS.Store(slo.Nanoseconds())
	if rt.alerts == nil {
		return
	}
	if slo <= 0 {
		rt.alerts.SetRules()
		return
	}
	rt.alerts.SetRules(obs.DefaultBurnRateRules("ack_p99_ms", float64(slo)/1e6)...)
}

// FlightRecorder exposes the request-trace recorder (nil when disabled).
func (rt *Router) FlightRecorder() *obs.FlightRecorder { return rt.flight }

// RoundProfiler exposes the round-trace recorder (nil when disabled).
func (rt *Router) RoundProfiler() *obs.RoundRecorder { return rt.profiler }

// Sampler exposes the in-process time-series sampler; tests drive its Tick
// deterministically instead of waiting out the 1s cadence.
func (rt *Router) Sampler() *obs.Sampler { return rt.sampler }

// Alerts exposes the burn-rate alert engine.
func (rt *Router) Alerts() *obs.AlertEngine { return rt.alerts }

// Runtime exposes the Go runtime telemetry collector.
func (rt *Router) Runtime() *obs.Runtime { return rt.runtime }

// buildTimeseries registers the router's serving series. Every source reads
// atomics or published snapshots, so a tick never blocks the pipeline.
func (rt *Router) buildTimeseries() {
	ts := rt.sampler
	ts.Counter("upd_per_s", func() float64 { return float64(rt.updates.Load()) })
	ts.Counter("reads_per_s", func() float64 { return float64(rt.reads.Load()) })
	ts.Counter("rounds_per_s", func() float64 { return float64(rt.rounds.Load()) })
	ts.HistQuantile("ack_p99_ms", rt.ackLat, 0.99, 1e-6)
	ts.HistQuantile("round_p99_ms", rt.roundDur, 0.99, 1e-6)
	ts.Gauge("epoch", func() float64 { lo, _ := rt.epochs(); return float64(lo) })
	ts.Gauge("epoch_skew", func() float64 { lo, hi := rt.epochs(); return float64(hi - lo) })
	ts.Gauge("lag_batches", func() float64 {
		p := rt.processed.Load()
		a := rt.accepted.Load()
		if a < p {
			return 0
		}
		return float64(a - p)
	})
	ts.Gauge("barrier_share", rt.lastShare)
	// Runtime series (heap_mb, goroutines, gc_cpu_pct, gc_pause_ms,
	// sched_p99_ms); the first one runs the tick's runtime/metrics read.
	rt.runtime.Install(ts)
}

// RoundsResponse is the body of GET /v1/rounds.
type RoundsResponse struct {
	// Recorded is the total number of rounds profiled since start (the
	// ring keeps the newest); Shards the deployment size.
	Recorded int64 `json:"recorded"`
	Shards   int   `json:"shards"`
	// Rounds are the retained round traces, newest first.
	Rounds []*obs.RoundTrace `json:"rounds"`
}

// handleRounds serves the round-profiler ring, newest first. Query
// parameters: n caps the number of rounds returned; min_us drops rounds
// faster than the given total latency in microseconds.
func (rt *Router) handleRounds(w http.ResponseWriter, r *http.Request) {
	p := rt.profiler
	if p == nil {
		httpError(w, http.StatusNotImplemented, "round profiling disabled")
		return
	}
	rounds := p.Traces()
	if v := r.URL.Query().Get("min_us"); v != "" {
		minUS, err := strconv.ParseFloat(v, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad min_us %q", v)
			return
		}
		kept := rounds[:0]
		for _, t := range rounds {
			if float64(t.Total.Nanoseconds())/1e3 >= minUS {
				kept = append(kept, t)
			}
		}
		rounds = kept
	}
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad n %q", v)
			return
		}
		if n < len(rounds) {
			rounds = rounds[:n]
		}
	}
	if rounds == nil {
		rounds = []*obs.RoundTrace{}
	}
	writeJSON(w, RoundsResponse{
		Recorded: p.Recorded(),
		Shards:   len(rt.shards),
		Rounds:   rounds,
	})
}

// handleTraces serves the request flight-recorder ring, newest first, with
// the single-engine server's n/min_us filters and response schema.
func (rt *Router) handleTraces(w http.ResponseWriter, r *http.Request) {
	f := rt.flight
	if f == nil {
		httpError(w, http.StatusNotImplemented, "request tracing disabled")
		return
	}
	traces := f.Traces()
	if v := r.URL.Query().Get("min_us"); v != "" {
		minUS, err := strconv.ParseFloat(v, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad min_us %q", v)
			return
		}
		kept := traces[:0]
		for _, t := range traces {
			if float64(t.Total.Nanoseconds())/1e3 >= minUS {
				kept = append(kept, t)
			}
		}
		traces = kept
	}
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad n %q", v)
			return
		}
		if n < len(traces) {
			traces = traces[:n]
		}
	}
	if traces == nil {
		traces = []*obs.ReqTrace{}
	}
	writeJSON(w, server.TracesResponse{
		SampleEvery:     f.SampleEvery(),
		SlowThresholdMS: float64(f.SlowThreshold()) / 1e6,
		Recorded:        f.Recorded(),
		Traces:          traces,
	})
}

// handleTimeseries serves the router's in-process time-series window.
func (rt *Router) handleTimeseries(w http.ResponseWriter, _ *http.Request) {
	if rt.sampler == nil {
		httpError(w, http.StatusNotImplemented, "time-series sampling disabled")
		return
	}
	writeJSON(w, rt.sampler.Snapshot())
}
