package shard

import (
	"fmt"
	"math"

	"repro/internal/inkstream"
	"repro/internal/obs"
	"repro/internal/server"
)

// ShardStats is one shard's slice of /v1/stats.
type ShardStats struct {
	Shard int `json:"shard"`
	// Epoch is the shard's published snapshot epoch; Rounds the update
	// rounds it reflects. All shards publish every round, so epochs agree
	// except transiently while a round's publishes race the reader.
	Epoch  uint64 `json:"epoch"`
	Rounds uint64 `json:"rounds"`
	// OwnedNodes is the partition size; Arcs the shard graph's current arc
	// count (every in-arc of every owned vertex).
	OwnedNodes   int   `json:"owned_nodes"`
	Arcs         int   `json:"arcs"`
	Events       int64 `json:"events_processed"`
	NodesVisited int64 `json:"nodes_visited"`
}

// StatsResponse is the body of the router's GET /v1/stats.
type StatsResponse struct {
	Shards int `json:"shards"`
	Nodes  int `json:"nodes"`
	Edges  int `json:"edges"`
	// Epoch is the minimum published epoch across shards (the epoch every
	// read is guaranteed to be at least as fresh as); EpochSkew the max
	// minus min across shards.
	Epoch       uint64 `json:"epoch"`
	EpochSkew   uint64 `json:"epoch_skew"`
	SnapshotLag uint64 `json:"snapshot_lag"`
	// Rounds counts applied BSP rounds (RecoveredRounds of them replayed
	// from the WALs at startup); Stalls the rounds sealed early by a
	// conflicting request.
	Rounds          int64 `json:"rounds"`
	RecoveredRounds int64 `json:"recovered_rounds"`
	Stalls          int64 `json:"stalls"`
	UpdatesServed   int64 `json:"updates_served"`
	ReadsServed     int64 `json:"reads_served"`
	// PartitionStrategy names the vertex-placement policy ("hash", "block",
	// "greedy", or "custom" for an injected partition); FullBroadcast marks
	// the legacy all-to-all exchange (subscription filtering off).
	PartitionStrategy string `json:"partition_strategy"`
	FullBroadcast     bool   `json:"full_broadcast,omitempty"`
	// CutFraction is the bootstrap-time fraction of arcs crossing shards;
	// BoundaryRecords/BoundaryBytes the cumulative record deliveries to
	// remote shards those cut arcs induced. FilteredRecords counts the
	// remote deliveries the subscription filter suppressed (0 under full
	// broadcast), GhostRows the ghost message rows engines adopted from the
	// delivered records.
	CutFraction     float64 `json:"cut_fraction"`
	BoundaryRecords int64   `json:"boundary_records"`
	BoundaryBytes   int64   `json:"boundary_bytes"`
	FilteredRecords int64   `json:"filtered_records"`
	GhostRows       int64   `json:"ghost_rows"`
	Corrupt         bool    `json:"corrupt,omitempty"`
	// FailStop carries the forensics of the round that tripped the corrupt
	// latch — round ID, error, time — present only after a fail-stop.
	FailStop   *obs.FailStopInfo       `json:"fail_stop,omitempty"`
	AckLatency server.LatencyQuantiles `json:"ack_latency"`
	// RoundProfile summarises the round profiler's critical-path
	// attribution (nil with profiling off or before the first round).
	RoundProfile *RoundProfileStats `json:"round_profile,omitempty"`
	PerShard     []ShardStats       `json:"per_shard"`
}

// RoundProfileStats is the cumulative critical-path attribution over every
// profiled round: where BSP wall-time went (shard compute vs barrier wait),
// how much of it the record broadcasts cost, and which shard sets the pace.
type RoundProfileStats struct {
	Rounds int64 `json:"rounds"`
	// BarrierShare is the cumulative fraction of BSP time the mean shard
	// spent stalled at barriers (1 − mean compute / BSP); BroadcastShare
	// the router-side record merge time as a fraction of BSP.
	BarrierShare   float64 `json:"barrier_share"`
	BroadcastShare float64 `json:"broadcast_share"`
	// BoundaryShare is the boundary-phase fraction of split-layer compute
	// (boundary / (boundary + interior)) across profiled rounds — how early
	// the filtered protocol publishes its records. 0 under full broadcast
	// (layers are not split).
	BoundaryShare float64 `json:"boundary_share"`
	// MeanStragglerSkew is the mean over rounds of max/mean shard compute
	// (1 = perfectly balanced); Straggler the shard that was slowest most
	// often, with the per-shard round counts in StragglerRounds.
	MeanStragglerSkew float64 `json:"mean_straggler_skew"`
	Straggler         int     `json:"straggler"`
	StragglerRounds   []int64 `json:"straggler_rounds"`
}

// Stats summarises the deployment. Everything is read from published
// snapshots and atomics — safe from any goroutine, lock-free.
func (rt *Router) Stats() StatsResponse {
	lo, hi := rt.epochs()
	resp := StatsResponse{
		Shards:            len(rt.shards),
		Nodes:             rt.part.NumNodes(),
		Edges:             int(rt.edges.Load()),
		Epoch:             lo,
		EpochSkew:         hi - lo,
		Rounds:            rt.rounds.Load(),
		RecoveredRounds:   rt.recovered.Load(),
		Stalls:            rt.stalls.Load(),
		UpdatesServed:     rt.updates.Load(),
		ReadsServed:       rt.reads.Load(),
		PartitionStrategy: rt.strategy,
		FullBroadcast:     rt.fullBroadcast,
		CutFraction:       rt.cut.CutFraction,
		BoundaryRecords:   rt.boundaryRecs.Load(),
		BoundaryBytes:     rt.boundaryBytes.Load(),
		FilteredRecords:   rt.filteredRecs.Load(),
		GhostRows:         rt.ghostRows.Load(),
		Corrupt:           rt.corrupt.Load(),
		FailStop:          rt.failStop.Load(),
	}
	if p, a := rt.processed.Load(), rt.accepted.Load(); a > p {
		resp.SnapshotLag = a - p
	}
	lat := rt.ackLat.Snapshot()
	const ms = 1e-6
	resp.AckLatency = server.LatencyQuantiles{
		P50: float64(lat.P50()) * ms,
		P95: float64(lat.P95()) * ms,
		P99: float64(lat.P99()) * ms,
		Max: float64(lat.Max) * ms,
	}
	if n := rt.profiled.Load(); n > 0 {
		rp := &RoundProfileStats{
			Rounds:            n,
			MeanStragglerSkew: float64(rt.skewMilli.Load()) / 1000 / float64(n),
			Straggler:         -1,
			StragglerRounds:   make([]int64, len(rt.stragglerRounds)),
		}
		if bsp := rt.bspNS.Load(); bsp > 0 {
			rp.BarrierShare = float64(rt.barrierNS.Load()) / float64(bsp)
			rp.BroadcastShare = float64(rt.broadcastNS.Load()) / float64(bsp)
		}
		if split := rt.boundaryNS.Load() + rt.interiorNS.Load(); split > 0 {
			rp.BoundaryShare = float64(rt.boundaryNS.Load()) / float64(split)
		}
		var best int64 = -1
		for i := range rt.stragglerRounds {
			c := rt.stragglerRounds[i].Load()
			rp.StragglerRounds[i] = c
			if c > best {
				best, rp.Straggler = c, i
			}
		}
		resp.RoundProfile = rp
	}
	counts := rt.part.Counts()
	for i, s := range rt.shards {
		snap := s.eng.Snapshot()
		cs := s.c.Snapshot()
		resp.PerShard = append(resp.PerShard, ShardStats{
			Shard:        i,
			Epoch:        snap.Epoch,
			Rounds:       snap.AppliedBatches,
			OwnedNodes:   counts[i],
			Arcs:         snap.Edges,
			Events:       cs.EventsProcessed,
			NodesVisited: cs.NodesVisited,
		})
	}
	return resp
}

// buildRegistry registers the router's /metrics families. Families shared
// with the single-engine server keep the same names and semantics
// (aggregated across shards) so existing dashboards and inkstat keep
// working; router- and shard-scoped families are new.
func (rt *Router) buildRegistry() {
	r := rt.reg
	r.GaugeFunc("inkstream_router_shards",
		"Engine shards behind this router.",
		func() float64 { return float64(len(rt.shards)) })
	r.GaugeFunc("inkstream_router_epoch_skew",
		"Max minus min published snapshot epoch across shards (transient while a round publishes).",
		func() float64 { lo, hi := rt.epochs(); return float64(hi - lo) })
	r.GaugeFunc("inkstream_router_cut_fraction",
		"Fraction of arcs crossing shard boundaries at bootstrap (partition quality).",
		func() float64 { return rt.cut.CutFraction })
	r.GaugeFunc("inkstream_snapshot_epoch",
		"Minimum published snapshot epoch across shards.",
		func() float64 { lo, _ := rt.epochs(); return float64(lo) })
	r.GaugeFunc("inkstream_snapshot_lag_batches",
		"Mutation requests accepted by the router but not yet acked (reader staleness bound).",
		func() float64 {
			p := rt.processed.Load()
			a := rt.accepted.Load()
			if a < p {
				return 0
			}
			return float64(a - p)
		})
	r.CounterFunc("inkstream_updates_total",
		"Update rounds applied across all shards (each round is one barrier-synchronised batch).",
		func() float64 { return float64(rt.rounds.Load()) })
	r.CounterFunc("inkstream_http_updates_served_total",
		"Successful mutation requests.",
		func() float64 { return float64(rt.updates.Load()) })
	r.CounterFunc("inkstream_reads_total",
		"Embedding reads resolved against a shard's published snapshot.",
		func() float64 { return float64(rt.reads.Load()) })
	r.GaugeFunc("inkstream_graph_nodes",
		"Vertices in the served graph.",
		func() float64 { return float64(rt.part.NumNodes()) })
	r.GaugeFunc("inkstream_graph_edges",
		"Logical edges in the served graph.",
		func() float64 { return float64(rt.edges.Load()) })
	r.Histogram("inkstream_ack_latency_seconds",
		"Submit-to-ack latency of one mutation request (round formation + per-shard journal + BSP apply + publish).",
		1e-9, rt.ackLat)
	r.Histogram("inkstream_coalesced_batch_size",
		"Mutation requests fused into one BSP round.",
		1, rt.coSize)
	r.CounterFunc("inkstream_coalesce_stalls_total",
		"Rounds sealed early because a queued request conflicted (same edge or same updated vertex).",
		func() float64 { return float64(rt.stalls.Load()) })
	r.CounterFunc("inkstream_rounds_recovered_total",
		"Rounds replayed from the per-shard WALs at startup.",
		func() float64 { return float64(rt.recovered.Load()) })
	r.CounterFunc("inkstream_boundary_records_total",
		"Message-change records broadcast across shards for ghost-row refresh and fan-out regeneration.",
		func() float64 { return float64(rt.boundaryRecs.Load()) })
	r.CounterFunc("inkstream_boundary_bytes_total",
		"Payload bytes carried by cross-shard record broadcasts.",
		func() float64 { return float64(rt.boundaryBytes.Load()) })
	r.CounterFunc("inkstream_filtered_records_total",
		"Remote record deliveries suppressed by the subscription filter (0 under full broadcast).",
		func() float64 { return float64(rt.filteredRecs.Load()) })
	r.CounterFunc("inkstream_ghost_rows_total",
		"Ghost message rows engines adopted from delivered cross-shard records.",
		func() float64 { return float64(rt.ghostRows.Load()) })
	r.Histogram("inkstream_boundary_round_records",
		"Cross-shard records exchanged per round (all layers).",
		1, rt.recSize)
	r.CounterFunc("inkstream_events_processed_total",
		"InkStream propagation events consumed, summed across shards.",
		func() float64 {
			var total int64
			for _, s := range rt.shards {
				total += s.c.EventsProcessed.Load()
			}
			return float64(total)
		})
	r.LabeledCounterFunc("inkstream_node_visits_total",
		"Per-layer node visits by InkStream condition, summed across shards.",
		func() []obs.LabeledValue {
			counts := make(map[string]int64)
			for _, s := range rt.shards {
				st := s.eng.Snapshot().Conditions
				for c := inkstream.CondPruned; c <= inkstream.CondSelfOnly; c++ {
					counts[c.String()] += st.Counts[c]
				}
			}
			return obs.SortedLabeled("condition", counts)
		})
	r.LabeledGaugeFunc("inkstream_shard_epoch",
		"Published snapshot epoch per shard.",
		func() []obs.LabeledValue {
			out := make([]obs.LabeledValue, len(rt.shards))
			for i, s := range rt.shards {
				out[i] = obs.LabeledValue{
					Labels: shardLabel(i),
					Value:  float64(s.eng.Snapshot().Epoch),
				}
			}
			return out
		})
	r.LabeledGaugeFunc("inkstream_shard_owned_nodes",
		"Vertices owned per shard.",
		func() []obs.LabeledValue {
			counts := rt.part.Counts()
			out := make([]obs.LabeledValue, len(counts))
			for i, n := range counts {
				out[i] = obs.LabeledValue{Labels: shardLabel(i), Value: float64(n)}
			}
			return out
		})
	r.LabeledCounterFunc("inkstream_shard_rounds_total",
		"Update rounds reflected in each shard's published snapshot.",
		func() []obs.LabeledValue {
			out := make([]obs.LabeledValue, len(rt.shards))
			for i, s := range rt.shards {
				out[i] = obs.LabeledValue{
					Labels: shardLabel(i),
					Value:  float64(s.eng.Snapshot().AppliedBatches),
				}
			}
			return out
		})
	r.LabeledCounterFunc("inkstream_shard_events_total",
		"InkStream propagation events consumed per shard.",
		func() []obs.LabeledValue {
			out := make([]obs.LabeledValue, len(rt.shards))
			for i, s := range rt.shards {
				out[i] = obs.LabeledValue{
					Labels: shardLabel(i),
					Value:  float64(s.c.EventsProcessed.Load()),
				}
			}
			return out
		})
	r.LabeledCounterFunc("inkstream_shard_node_visits_total",
		"Node visits per shard (all conditions).",
		func() []obs.LabeledValue {
			out := make([]obs.LabeledValue, len(rt.shards))
			for i, s := range rt.shards {
				out[i] = obs.LabeledValue{
					Labels: shardLabel(i),
					Value:  float64(s.c.NodesVisited.Load()),
				}
			}
			return out
		})

	// Round profiler: critical-path attribution of BSP wall-time
	// (flight.go). compute/barrier are per-shard means, so their sum tracks
	// inkstream_round_bsp_seconds_total and barrier ÷ bsp is the cumulative
	// barrier share.
	r.Histogram("inkstream_round_duration_seconds",
		"One BSP round, open → all shards published; exemplars carry the round ID for /v1/rounds lookup.",
		1e-9, rt.roundDur)
	r.CounterFunc("inkstream_rounds_profiled_total",
		"Rounds captured by the round profiler.",
		func() float64 { return float64(rt.profiled.Load()) })
	r.CounterFunc("inkstream_round_bsp_seconds_total",
		"Barrier-stage wall-time (sum of per-stage makespans) across profiled rounds.",
		func() float64 { return float64(rt.bspNS.Load()) * 1e-9 })
	r.CounterFunc("inkstream_round_compute_seconds_total",
		"Mean participating-shard compute inside barrier stages across profiled rounds.",
		func() float64 { return float64(rt.computeNS.Load()) * 1e-9 })
	r.CounterFunc("inkstream_round_barrier_wait_seconds_total",
		"Mean participating-shard barrier wait (stage makespan minus own compute) across profiled rounds.",
		func() float64 { return float64(rt.barrierNS.Load()) * 1e-9 })
	r.CounterFunc("inkstream_round_broadcast_seconds_total",
		"Router-side record merge/broadcast time across profiled rounds.",
		func() float64 { return float64(rt.broadcastNS.Load()) * 1e-9 })
	r.CounterFunc("inkstream_round_boundary_seconds_total",
		"Boundary-phase shard compute across profiled rounds (filtered protocol only).",
		func() float64 { return float64(rt.boundaryNS.Load()) * 1e-9 })
	r.CounterFunc("inkstream_round_interior_seconds_total",
		"Interior-phase shard compute across profiled rounds (filtered protocol only).",
		func() float64 { return float64(rt.interiorNS.Load()) * 1e-9 })
	r.GaugeFunc("inkstream_round_barrier_share",
		"Barrier-wait fraction of BSP time in the most recent profiled round.",
		rt.lastShare)
	r.GaugeFunc("inkstream_round_straggler_skew",
		"Max/mean shard compute in the most recent profiled round (1 = balanced).",
		func() float64 { return math.Float64frombits(rt.lastSkew.Load()) })
	r.LabeledCounterFunc("inkstream_shard_straggler_rounds_total",
		"Rounds each shard was the straggler of (slowest total compute).",
		func() []obs.LabeledValue {
			out := make([]obs.LabeledValue, len(rt.stragglerRounds))
			for i := range rt.stragglerRounds {
				out[i] = obs.LabeledValue{
					Labels: shardLabel(i),
					Value:  float64(rt.stragglerRounds[i].Load()),
				}
			}
			return out
		})
	r.CounterFunc("inkstream_traces_recorded_total",
		"Request traces captured by the flight recorder.",
		func() float64 {
			if rt.flight == nil {
				return 0
			}
			return float64(rt.flight.Recorded())
		})
	rt.alerts.Register(r)
	rt.runtime.Register(r)
}

func shardLabel(i int) string { return fmt.Sprintf(`shard="%d"`, i) }
