package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/server"
	"repro/internal/tensor"
)

// Handler returns the router's route table. The wire formats of the
// endpoints shared with the single-engine server (update, features,
// embedding) are identical — server.UpdateRequest and friends — so clients
// and inkstat work against either deployment shape; /v1/stats carries the
// shard-aware StatsResponse instead.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/update", rt.handleUpdate)
	mux.HandleFunc("POST /v1/features", rt.handleFeatures)
	mux.HandleFunc("GET /v1/embedding", rt.handleEmbedding)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.Handle("GET /metrics", rt.reg.Handler())
	return mux
}

func (rt *Router) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req server.UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.Changes) == 0 {
		httpError(w, http.StatusBadRequest, "empty change batch")
		return
	}
	delta := make(graph.Delta, len(req.Changes))
	for i, c := range req.Changes {
		delta[i] = graph.EdgeChange{U: c.U, V: c.V, Insert: c.Insert}
	}
	t0 := time.Now()
	err := rt.Apply(delta, nil)
	lat := time.Since(t0)
	if err != nil {
		httpError(w, mutationStatus(err), "applying batch: %v", err)
		return
	}
	lo, _ := rt.epochs()
	writeJSON(w, server.UpdateResponse{
		Applied:   len(delta),
		Epoch:     lo,
		LatencyMS: float64(lat.Microseconds()) / 1000,
	})
}

func (rt *Router) handleFeatures(w http.ResponseWriter, r *http.Request) {
	var req server.FeaturesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.Updates) == 0 {
		httpError(w, http.StatusBadRequest, "empty feature batch")
		return
	}
	ups := make([]inkstream.VertexUpdate, len(req.Updates))
	for i, u := range req.Updates {
		ups[i] = inkstream.VertexUpdate{Node: u.Node, X: tensor.Vector(u.X)}
	}
	t0 := time.Now()
	err := rt.Apply(nil, ups)
	lat := time.Since(t0)
	if err != nil {
		httpError(w, mutationStatus(err), "applying features: %v", err)
		return
	}
	lo, _ := rt.epochs()
	writeJSON(w, server.UpdateResponse{
		Applied:   len(ups),
		Epoch:     lo,
		LatencyMS: float64(lat.Microseconds()) / 1000,
	})
}

func (rt *Router) handleEmbedding(w http.ResponseWriter, r *http.Request) {
	nodeStr := r.URL.Query().Get("node")
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad node %q", nodeStr)
		return
	}
	row, epoch, ok := rt.ReadEmbedding(node)
	if !ok {
		httpError(w, http.StatusNotFound, "node %d out of range", node)
		return
	}
	writeJSON(w, server.EmbeddingResponse{Node: int32(node), Epoch: epoch, Embedding: row})
}

// handleStats serves the shard-aware stats; ?shard=N restricts the
// response to one shard's slice.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := rt.Stats()
	if s := r.URL.Query().Get("shard"); s != "" {
		id, err := strconv.Atoi(s)
		if err != nil || id < 0 || id >= len(stats.PerShard) {
			httpError(w, http.StatusBadRequest, "bad shard %q (have %d)", s, len(stats.PerShard))
			return
		}
		writeJSON(w, stats.PerShard[id])
		return
	}
	writeJSON(w, stats)
}

// HealthzResponse is the router's GET /healthz body. Status "degraded"
// means writes are fail-stopped after a round failure; reads still serve.
type HealthzResponse struct {
	Status        string   `json:"status"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	Shards        int      `json:"shards"`
	Epoch         uint64   `json:"epoch"`
	EpochSkew     uint64   `json:"epoch_skew"`
	Reasons       []string `json:"reasons,omitempty"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	lo, hi := rt.epochs()
	resp := HealthzResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(rt.started).Seconds(),
		Shards:        len(rt.shards),
		Epoch:         lo,
		EpochSkew:     hi - lo,
	}
	if rt.corrupt.Load() {
		resp.Status = "degraded"
		resp.Reasons = append(resp.Reasons, "writes fail-stopped after a failed round; reads serve the last published snapshots")
	}
	writeJSON(w, resp)
}

func mutationStatus(err error) int {
	if err == ErrRouterClosed || err == ErrCorrupt {
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
