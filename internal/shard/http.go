package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/server"
	"repro/internal/tensor"
)

// Handler returns the router's route table. The wire formats of the
// endpoints shared with the single-engine server (update, features,
// embedding, traces, timeseries, alerts, healthz) are identical —
// server.UpdateRequest and friends — so clients and inkstat work against
// either deployment shape; /v1/stats carries the shard-aware StatsResponse
// instead, and /v1/rounds is router-only (BSP round profiles).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/update", rt.handleUpdate)
	mux.HandleFunc("POST /v1/features", rt.handleFeatures)
	mux.HandleFunc("GET /v1/embedding", rt.handleEmbedding)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /v1/traces", rt.handleTraces)
	mux.HandleFunc("GET /v1/timeseries", rt.handleTimeseries)
	mux.HandleFunc("GET /v1/rounds", rt.handleRounds)
	mux.Handle("GET /v1/alerts", rt.alerts)
	mux.Handle("GET /metrics", rt.reg.Handler())
	mux.HandleFunc("GET /debug/bundle", rt.handleBundle)
	// Unknown /v1/* paths get a typed JSON 404 instead of the mux's plain
	// text (known paths with the wrong method also land here; the body
	// names the path so either mistake is diagnosable).
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusNotFound, "no %s %s endpoint", r.Method, r.URL.Path)
	})
	return mux
}

func (rt *Router) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req server.UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.Changes) == 0 {
		httpError(w, http.StatusBadRequest, "empty change batch")
		return
	}
	delta := make(graph.Delta, len(req.Changes))
	for i, c := range req.Changes {
		delta[i] = graph.EdgeChange{U: c.U, V: c.V, Insert: c.Insert}
	}
	t0 := time.Now()
	err := rt.Apply(delta, nil)
	lat := time.Since(t0)
	if err != nil {
		httpError(w, mutationStatus(err), "applying batch: %v", err)
		return
	}
	lo, _ := rt.epochs()
	writeJSON(w, server.UpdateResponse{
		Applied:   len(delta),
		Epoch:     lo,
		LatencyMS: float64(lat.Microseconds()) / 1000,
	})
}

func (rt *Router) handleFeatures(w http.ResponseWriter, r *http.Request) {
	var req server.FeaturesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.Updates) == 0 {
		httpError(w, http.StatusBadRequest, "empty feature batch")
		return
	}
	ups := make([]inkstream.VertexUpdate, len(req.Updates))
	for i, u := range req.Updates {
		ups[i] = inkstream.VertexUpdate{Node: u.Node, X: tensor.Vector(u.X)}
	}
	t0 := time.Now()
	err := rt.Apply(nil, ups)
	lat := time.Since(t0)
	if err != nil {
		httpError(w, mutationStatus(err), "applying features: %v", err)
		return
	}
	lo, _ := rt.epochs()
	writeJSON(w, server.UpdateResponse{
		Applied:   len(ups),
		Epoch:     lo,
		LatencyMS: float64(lat.Microseconds()) / 1000,
	})
}

func (rt *Router) handleEmbedding(w http.ResponseWriter, r *http.Request) {
	nodeStr := r.URL.Query().Get("node")
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad node %q", nodeStr)
		return
	}
	row, epoch, ok := rt.ReadEmbedding(node)
	if !ok {
		httpError(w, http.StatusNotFound, "node %d out of range", node)
		return
	}
	writeJSON(w, server.EmbeddingResponse{Node: int32(node), Epoch: epoch, Embedding: row})
}

// handleStats serves the shard-aware stats; ?shard=N restricts the
// response to one shard's slice.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := rt.Stats()
	if s := r.URL.Query().Get("shard"); s != "" {
		id, err := strconv.Atoi(s)
		if err != nil || id < 0 || id >= len(stats.PerShard) {
			httpError(w, http.StatusBadRequest, "bad shard %q (have %d)", s, len(stats.PerShard))
			return
		}
		writeJSON(w, stats.PerShard[id])
		return
	}
	writeJSON(w, stats)
}

// handleHealthz serves server.HealthzResponse — the single-engine schema,
// shards and epoch skew filled in — so probes and dashboards read either
// deployment shape identically. Status "degraded" means serving but out of
// spec: writes fail-stopped after a round failure, ack p99 over SLO, or a
// burn-rate alert firing. The drift-audit fields stay zero (the router has
// no shadow auditor).
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	lo, hi := rt.epochs()
	resp := server.HealthzResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(rt.started).Seconds(),
		Shards:        len(rt.shards),
		Epoch:         lo,
		EpochSkew:     hi - lo,
	}
	var reasons []string
	if rt.corrupt.Load() {
		if fs := rt.failStop.Load(); fs != nil {
			reasons = append(reasons, fmt.Sprintf(
				"writes fail-stopped at round %d (%s); reads serve the last published snapshots",
				fs.Round, fs.Err))
		} else {
			reasons = append(reasons, "writes fail-stopped after a failed round; reads serve the last published snapshots")
		}
	}
	if rt.sampler != nil {
		// Max over the last ~10 ticks so one quiet second cannot mask a
		// breached SLO between scrapes.
		if v, ok := rt.sampler.MaxRecent("ack_p99_ms", 10); ok {
			resp.AckP99MS = v
		}
	}
	if slo := time.Duration(rt.sloNS.Load()); slo > 0 {
		resp.SLOMS = float64(slo) / 1e6
		if resp.AckP99MS > resp.SLOMS {
			reasons = append(reasons, fmt.Sprintf(
				"ack p99 %.3fms over SLO %.3fms", resp.AckP99MS, resp.SLOMS))
		}
	}
	if rt.alerts != nil {
		resp.AlertsFiring = rt.alerts.Firing()
		reasons = append(reasons, rt.alerts.FiringReasons()...)
	}
	if len(reasons) > 0 {
		resp.Status = "degraded"
		resp.Reasons = reasons
	}
	writeJSON(w, resp)
}

func mutationStatus(err error) int {
	if err == ErrRouterClosed || err == ErrCorrupt {
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
