package shard

import (
	"math/rand"
	"testing"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/tensor"
)

// communityGraph builds two dense halves joined by `bridges` edges — a graph
// whose natural 2-way cut is tiny, so subscription filtering has something
// to suppress when the partition respects the communities.
func communityGraph(rng *rand.Rand, n, intra, bridges int) *graph.Graph {
	g := graph.NewUndirected(n)
	half := n / 2
	addIn := func(lo, hi int) {
		for added := 0; added < intra; {
			u := graph.NodeID(lo + rng.Intn(hi-lo))
			v := graph.NodeID(lo + rng.Intn(hi-lo))
			if u == v || g.HasEdge(u, v) {
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				panic(err)
			}
			added++
		}
	}
	addIn(0, half)
	addIn(half, n)
	for added := 0; added < bridges; {
		u := graph.NodeID(rng.Intn(half))
		v := graph.NodeID(half + rng.Intn(n-half))
		if g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
		added++
	}
	return g
}

// TestSubscriptionFiltersDeliveries pins the tentpole claim on a
// community graph block-partitioned along its communities: the filtered
// protocol delivers strictly fewer remote records than the full broadcast
// on an identical stream, suppresses a nonzero number, adopts ghost rows,
// and stays bit-exact against the broadcast deployment throughout.
func TestSubscriptionFiltersDeliveries(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	const n, featLen = 64, 6
	g := communityGraph(rng, n, 90, 3)
	x := tensor.RandMatrix(rng, n, featLen, 1)
	model := testModel(rng, "SAGE", featLen, gnn.AggSum)

	filt, err := New(model, g.Clone(), x.Clone(), Config{Shards: 2, PartitionStrategy: "block"})
	if err != nil {
		t.Fatal(err)
	}
	defer filt.Close()
	bcast, err := New(model, g.Clone(), x.Clone(), Config{Shards: 2, PartitionStrategy: "block", FullBroadcast: true})
	if err != nil {
		t.Fatal(err)
	}
	defer bcast.Close()

	mirror := g.Clone()
	for step := 0; step < 12; step++ {
		delta := graph.RandomDelta(rng, mirror, 3)
		var vups []inkstream.VertexUpdate
		if step%3 == 0 {
			vups = []inkstream.VertexUpdate{{
				Node: graph.NodeID(rng.Intn(n)),
				X:    tensor.RandVector(rng, featLen, 1),
			}}
		}
		if err := filt.Apply(delta, vups); err != nil {
			t.Fatalf("step %d: filtered apply: %v", step, err)
		}
		if err := bcast.Apply(delta, vups); err != nil {
			t.Fatalf("step %d: broadcast apply: %v", step, err)
		}
		if err := delta.Apply(mirror); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			rf, _, okf := filt.ReadEmbedding(v)
			rb, _, okb := bcast.ReadEmbedding(v)
			if !okf || !okb {
				t.Fatalf("step %d: node %d unreadable", step, v)
			}
			if !rf.Equal(rb) {
				t.Fatalf("step %d: node %d diverged between filtered and broadcast", step, v)
			}
		}
	}

	sf, sb := filt.Stats(), bcast.Stats()
	if sf.FullBroadcast || !sb.FullBroadcast {
		t.Fatalf("mode flags wrong: filtered=%v broadcast=%v", sf.FullBroadcast, sb.FullBroadcast)
	}
	if sf.PartitionStrategy != "block" {
		t.Fatalf("partition strategy %q, want block", sf.PartitionStrategy)
	}
	if sf.FilteredRecords == 0 {
		t.Fatal("community stream suppressed no deliveries")
	}
	if sb.FilteredRecords != 0 {
		t.Fatalf("broadcast path reports %d filtered records", sb.FilteredRecords)
	}
	if sf.BoundaryRecords >= sb.BoundaryRecords {
		t.Fatalf("filtered delivered %d records, broadcast %d — filtering saved nothing",
			sf.BoundaryRecords, sb.BoundaryRecords)
	}
	if sf.BoundaryRecords+sf.FilteredRecords != sb.BoundaryRecords {
		t.Fatalf("delivered %d + suppressed %d != broadcast deliveries %d on an identical stream",
			sf.BoundaryRecords, sf.FilteredRecords, sb.BoundaryRecords)
	}
	if sf.GhostRows == 0 {
		t.Fatal("bridged communities adopted no ghost rows")
	}
}

// TestSubscriptionZeroCut: with disconnected communities block-partitioned
// apart, nothing is subscribed, so the filtered protocol delivers zero
// remote records while the broadcast baseline still ships every one — and
// both match a 1-shard reference.
func TestSubscriptionZeroCut(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	const n, featLen = 48, 5
	g := communityGraph(rng, n, 60, 0)
	x := tensor.RandMatrix(rng, n, featLen, 1)
	model := testModel(rng, "GIN", featLen, gnn.AggMax)

	ref, err := New(model, g.Clone(), x.Clone(), Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	filt, err := New(model, g.Clone(), x.Clone(), Config{Shards: 2, PartitionStrategy: "block"})
	if err != nil {
		t.Fatal(err)
	}
	defer filt.Close()
	bcast, err := New(model, g.Clone(), x.Clone(), Config{Shards: 2, PartitionStrategy: "block", FullBroadcast: true})
	if err != nil {
		t.Fatal(err)
	}
	defer bcast.Close()

	half := n / 2
	for step := 0; step < 6; step++ {
		// Intra-community edge toggles only — the cut stays empty.
		lo := 0
		if step%2 == 1 {
			lo = half
		}
		u := graph.NodeID(lo + rng.Intn(half))
		v := graph.NodeID(lo + rng.Intn(half))
		if u == v {
			continue
		}
		delta := graph.Delta{{U: u, V: v, Insert: !g.HasEdge(u, v)}}
		for _, rt := range []*Router{ref, filt, bcast} {
			if err := rt.Apply(delta, nil); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		if err := delta.Apply(g); err != nil {
			t.Fatal(err)
		}
		for w := 0; w < n; w++ {
			r0, _, _ := ref.ReadEmbedding(w)
			rf, _, _ := filt.ReadEmbedding(w)
			rb, _, _ := bcast.ReadEmbedding(w)
			if !r0.Equal(rf) || !r0.Equal(rb) {
				t.Fatalf("step %d: node %d diverged", step, w)
			}
		}
	}

	sf, sb := filt.Stats(), bcast.Stats()
	if sf.CutFraction != 0 {
		t.Fatalf("cut fraction %g on disconnected communities", sf.CutFraction)
	}
	if sf.BoundaryRecords != 0 {
		t.Fatalf("filtered protocol delivered %d records across an empty cut", sf.BoundaryRecords)
	}
	if sb.BoundaryRecords == 0 {
		t.Fatal("broadcast baseline delivered nothing — comparison is vacuous")
	}
}

// TestSubscriptionHydrationOnNewArc pins the 0→1 hydration path: a vertex's
// message rows drift for several rounds while no remote shard watches it,
// then a cross-shard edge to it appears — the subscribing shard must adopt
// the drifted rows, not the bootstrap ones, to stay bit-exact.
func TestSubscriptionHydrationOnNewArc(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	const n, featLen = 30, 5
	g := testGraph(rng, n, 50)
	x := tensor.RandMatrix(rng, n, featLen, 1)
	model := testModel(rng, "SAGE", featLen, gnn.AggMean)

	part, err := graph.NewHashPartition(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A cross-shard pair with no current edge: u's rows will drift, then v
	// subscribes to u.
	var u, v graph.NodeID = -1, -1
	for a := 0; a < n && u < 0; a++ {
		for b := 0; b < n; b++ {
			if a != b && part.Owner(graph.NodeID(a)) != part.Owner(graph.NodeID(b)) &&
				!g.HasEdge(graph.NodeID(a), graph.NodeID(b)) {
				u, v = graph.NodeID(a), graph.NodeID(b)
				break
			}
		}
	}
	if u < 0 {
		t.Fatal("no cross-shard non-edge found")
	}

	ref, err := New(model, g.Clone(), x.Clone(), Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	filt, err := New(model, g.Clone(), x.Clone(), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer filt.Close()

	apply := func(delta graph.Delta, vups []inkstream.VertexUpdate) {
		t.Helper()
		if err := ref.Apply(delta, vups); err != nil {
			t.Fatal(err)
		}
		if err := filt.Apply(delta, vups); err != nil {
			t.Fatal(err)
		}
	}
	check := func(when string) {
		t.Helper()
		for w := 0; w < n; w++ {
			r0, _, _ := ref.ReadEmbedding(w)
			r1, _, _ := filt.ReadEmbedding(w)
			if !r0.Equal(r1) {
				t.Fatalf("%s: node %d diverged", when, w)
			}
		}
	}

	// Drift u's message rows while nothing on v's shard watches u.
	for i := 0; i < 4; i++ {
		apply(nil, []inkstream.VertexUpdate{{Node: u, X: tensor.RandVector(rng, featLen, 1)}})
	}
	check("during drift")

	// The new arc forces a 0→1 subscription with hydration of the drifted
	// rows; stale bootstrap ghosts would break bit-exactness immediately.
	apply(graph.Delta{{U: u, V: v, Insert: true}}, nil)
	check("after subscribe")
	apply(nil, []inkstream.VertexUpdate{{Node: u, X: tensor.RandVector(rng, featLen, 1)}})
	check("after post-subscribe update")

	// And back down to 0: removal drops the subscription the same round.
	apply(graph.Delta{{U: u, V: v, Insert: false}}, nil)
	apply(nil, []inkstream.VertexUpdate{{Node: u, X: tensor.RandVector(rng, featLen, 1)}})
	check("after unsubscribe")
}
