package shard

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/tensor"
)

func testGraph(rng *rand.Rand, n, edges int) *graph.Graph {
	g := graph.NewUndirected(n)
	for g.NumEdges() < edges {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	return g
}

func testModel(rng *rand.Rand, name string, featLen int, kind gnn.AggKind) *gnn.Model {
	switch name {
	case "SAGE":
		return gnn.NewSAGE(rng, featLen, 8, gnn.NewAggregator(kind))
	case "GIN":
		return gnn.NewGIN(rng, featLen, 8, 3, gnn.NewAggregator(kind))
	}
	panic("unknown model " + name)
}

// TestCrossShardBitExact drives an identical add/delete/feature-update
// stream through a 1-shard and a 4-shard deployment over a graph with a
// nontrivial cut and demands identical embeddings for every vertex at every
// published epoch — bitwise, for accumulative aggregators included (the
// §11.3 exactness claim). The final state is also checked against
// from-scratch inference on a mirror of the stream.
func TestCrossShardBitExact(t *testing.T) {
	for _, name := range []string{"SAGE", "GIN"} {
		for _, kind := range []gnn.AggKind{gnn.AggMax, gnn.AggMean, gnn.AggSum} {
			t.Run(fmt.Sprintf("%s/%s", name, kind), func(t *testing.T) {
				rng := rand.New(rand.NewSource(97))
				const n, featLen = 60, 6
				g := testGraph(rng, n, 150)
				x := tensor.RandMatrix(rng, n, featLen, 1)
				model := testModel(rng, name, featLen, kind)

				r1, err := New(model, g.Clone(), x.Clone(), Config{Shards: 1})
				if err != nil {
					t.Fatal(err)
				}
				defer r1.Close()
				// One deployment per partition strategy on the filtered
				// protocol, plus the hash strategy on the legacy
				// full-broadcast path — all must match the 1-shard
				// reference bitwise at every epoch.
				type deployment struct {
					name string
					rt   *Router
				}
				var deps []deployment
				for _, strat := range graph.PartitionStrategies {
					rt, err := New(model, g.Clone(), x.Clone(), Config{Shards: 4, PartitionStrategy: strat})
					if err != nil {
						t.Fatalf("%s deployment: %v", strat, err)
					}
					defer rt.Close()
					deps = append(deps, deployment{strat, rt})
				}
				rb, err := New(model, g.Clone(), x.Clone(), Config{Shards: 4, FullBroadcast: true})
				if err != nil {
					t.Fatal(err)
				}
				defer rb.Close()
				deps = append(deps, deployment{"hash/full-broadcast", rb})
				r4 := deps[0].rt
				for _, d := range deps {
					if d.rt.Stats().CutFraction == 0 {
						t.Fatalf("%s: trivial cut; the test would prove nothing", d.name)
					}
				}

				mirror := g.Clone()
				xCur := x.Clone()
				for step := 0; step < 10; step++ {
					delta := graph.RandomDelta(rng, mirror, 4)
					var vups []inkstream.VertexUpdate
					if step%2 == 1 {
						for _, v := range rng.Perm(n)[:3] {
							up := inkstream.VertexUpdate{
								Node: graph.NodeID(v),
								X:    tensor.RandVector(rng, featLen, 1),
							}
							vups = append(vups, up)
							copy(xCur.Row(v), up.X)
						}
					}
					if err := r1.Apply(delta, vups); err != nil {
						t.Fatalf("step %d: 1-shard apply: %v", step, err)
					}
					for _, d := range deps {
						if err := d.rt.Apply(delta, vups); err != nil {
							t.Fatalf("step %d: %s apply: %v", step, d.name, err)
						}
					}
					if err := delta.Apply(mirror); err != nil {
						t.Fatalf("step %d: mirror apply: %v", step, err)
					}
					for v := 0; v < n; v++ {
						row1, e1, ok1 := r1.ReadEmbedding(v)
						if !ok1 {
							t.Fatalf("step %d: node %d unreadable on 1-shard", step, v)
						}
						for _, d := range deps {
							row4, e4, ok4 := d.rt.ReadEmbedding(v)
							if !ok4 {
								t.Fatalf("step %d: node %d unreadable on %s", step, v, d.name)
							}
							if e1 != e4 {
								t.Fatalf("step %d: node %d epochs diverged on %s: %d vs %d", step, v, d.name, e1, e4)
							}
							if !row1.Equal(row4) {
								t.Fatalf("step %d: node %d embeddings diverged on %s at epoch %d:\n1-shard: %v\n4-shard: %v",
									step, v, d.name, e1, row1, row4)
							}
						}
					}
				}

				// The shared stream also has to mean the right thing: check
				// the 4-shard deployment against from-scratch inference on
				// the mirrored graph and features.
				want, err := gnn.Infer(model, mirror, xCur, nil)
				if err != nil {
					t.Fatal(err)
				}
				monotonic := kind == gnn.AggMax || kind == gnn.AggMin
				for v := 0; v < n; v++ {
					row, _, _ := r4.ReadEmbedding(v)
					ref := want.Output().Row(v)
					if monotonic && !row.Equal(ref) {
						t.Fatalf("node %d: not bit-identical to reference inference", v)
					}
					if !monotonic && !row.ApproxEqual(ref, 2e-3) {
						t.Fatalf("node %d: drifted from reference inference: %v vs %v", v, row, ref)
					}
				}

				st := r4.Stats()
				if st.Shards != 4 || len(st.PerShard) != 4 {
					t.Fatalf("stats report %d shards / %d slices, want 4", st.Shards, len(st.PerShard))
				}
				if st.EpochSkew != 0 {
					t.Fatalf("idle deployment has epoch skew %d", st.EpochSkew)
				}
				if st.BoundaryRecords == 0 || st.BoundaryBytes == 0 {
					t.Fatal("multi-shard stream produced no boundary traffic")
				}
				if st.Edges != mirror.NumEdges() {
					t.Fatalf("stats count %d edges, mirror has %d", st.Edges, mirror.NumEdges())
				}
			})
		}
	}
}

// TestRouterConcurrentWriters is the -race stress for router fan-out under
// concurrent conflicting writers: several goroutines toggle edges from one
// shared pool (guaranteed conflicts → stall-sealed rounds), others stream
// feature updates over disjoint vertex sets, and readers poll embeddings
// throughout. Afterwards the deployment must agree bitwise with from-scratch
// inference over the reconstructed graph (each successful toggle flips
// presence, so final presence is initial XOR parity).
func TestRouterConcurrentWriters(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	const n, featLen = 40, 5
	g := testGraph(rng, n, 80)
	x := tensor.RandMatrix(rng, n, featLen, 1)
	model := testModel(rng, "SAGE", featLen, gnn.AggMax)

	rt, err := New(model, g.Clone(), x.Clone(), Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// A pool of canonical edges, some initially present, some absent.
	type pooled struct {
		u, v    graph.NodeID
		present bool
		toggles atomic.Int64
	}
	var pool []*pooled
	seen := make(map[[2]graph.NodeID]bool)
	for len(pool) < 16 {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if v < u {
			u, v = v, u
		}
		if seen[[2]graph.NodeID{u, v}] {
			continue
		}
		seen[[2]graph.NodeID{u, v}] = true
		pool = append(pool, &pooled{u: u, v: v, present: g.HasEdge(u, v)})
	}

	const writers, opsPerWriter = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed))
			for op := 0; op < opsPerWriter; op++ {
				p := pool[wrng.Intn(len(pool))]
				// Racing writers mean we cannot know the edge's current
				// presence; try one polarity, fall back to the other. Exactly
				// one can succeed per attempt, and each success is a toggle.
				ins := wrng.Intn(2) == 0
				d := graph.Delta{{U: p.u, V: p.v, Insert: ins}}
				if rt.Apply(d, nil) == nil {
					p.toggles.Add(1)
					continue
				}
				d[0].Insert = !ins
				if rt.Apply(d, nil) == nil {
					p.toggles.Add(1)
				}
			}
		}(int64(1000 + w))
	}

	// Feature writers own disjoint vertex slices; sequential sync applies
	// mean the last submitted value is the final one.
	finalX := x.Clone()
	var fwg sync.WaitGroup
	var fmu sync.Mutex
	for w := 0; w < 2; w++ {
		fwg.Add(1)
		go func(w int) {
			defer fwg.Done()
			frng := rand.New(rand.NewSource(int64(2000 + w)))
			nodes := []graph.NodeID{graph.NodeID(w), graph.NodeID(10 + w), graph.NodeID(20 + w)}
			for op := 0; op < 15; op++ {
				node := nodes[frng.Intn(len(nodes))]
				up := inkstream.VertexUpdate{Node: node, X: tensor.RandVector(frng, featLen, 1)}
				if err := rt.Apply(nil, []inkstream.VertexUpdate{up}); err != nil {
					t.Errorf("feature writer %d: %v", w, err)
					return
				}
				fmu.Lock()
				copy(finalX.Row(int(node)), up.X)
				fmu.Unlock()
			}
		}(w)
	}

	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rwg.Add(1)
		go func(seed int64) {
			defer rwg.Done()
			rrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				row, _, ok := rt.ReadEmbedding(rrng.Intn(n))
				if !ok || len(row) == 0 {
					t.Error("reader: bad embedding")
					return
				}
			}
		}(int64(3000 + r))
	}

	wg.Wait()
	fwg.Wait()
	close(stop)
	rwg.Wait()
	if t.Failed() {
		return
	}

	expected := g.Clone()
	for _, p := range pool {
		present := p.present != (p.toggles.Load()%2 == 1)
		if present != expected.HasEdge(p.u, p.v) {
			var err error
			if present {
				err = expected.AddEdge(p.u, p.v)
			} else {
				err = expected.RemoveEdge(p.u, p.v)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	want, err := gnn.Infer(model, expected, finalX, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		row, _, _ := rt.ReadEmbedding(v)
		if !row.Equal(want.Output().Row(v)) {
			t.Fatalf("node %d: post-stress state disagrees with reference inference", v)
		}
	}
	if rt.Corrupt() {
		t.Fatal("deployment marked corrupt after clean stress")
	}
}

// TestRouterWALRecovery round-trips a deployment through its per-shard
// WALs: apply a stream, close, reopen over the same bootstrap inputs, and
// demand identical epochs and embeddings, then verify the reopened router
// still accepts updates.
func TestRouterWALRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const n, featLen = 40, 5
	g := testGraph(rng, n, 90)
	x := tensor.RandMatrix(rng, n, featLen, 1)
	model := testModel(rng, "SAGE", featLen, gnn.AggMean)
	dir := t.TempDir()
	cfg := Config{Shards: 3, WALDir: dir}

	rt, err := New(model, g.Clone(), x.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mirror := g.Clone()
	const steps = 5
	for step := 0; step < steps; step++ {
		delta := graph.RandomDelta(rng, mirror, 3)
		vups := []inkstream.VertexUpdate{{
			Node: graph.NodeID(rng.Intn(n)),
			X:    tensor.RandVector(rng, featLen, 1),
		}}
		if err := rt.Apply(delta, vups); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := delta.Apply(mirror); err != nil {
			t.Fatal(err)
		}
	}
	type snap struct {
		row   tensor.Vector
		epoch uint64
	}
	before := make([]snap, n)
	for v := 0; v < n; v++ {
		row, epoch, _ := rt.ReadEmbedding(v)
		before[v] = snap{row: row.Clone(), epoch: epoch}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	rt2, err := New(model, g.Clone(), x.Clone(), cfg)
	if err != nil {
		t.Fatalf("reopening: %v", err)
	}
	defer rt2.Close()
	st := rt2.Stats()
	if st.RecoveredRounds != steps {
		t.Fatalf("recovered %d rounds, want %d", st.RecoveredRounds, steps)
	}
	for v := 0; v < n; v++ {
		row, epoch, _ := rt2.ReadEmbedding(v)
		if epoch != before[v].epoch {
			t.Fatalf("node %d: epoch %d after recovery, want %d", v, epoch, before[v].epoch)
		}
		if !row.Equal(before[v].row) {
			t.Fatalf("node %d: embedding changed across recovery", v)
		}
	}
	if st.Edges != mirror.NumEdges() {
		t.Fatalf("recovered %d edges, mirror has %d", st.Edges, mirror.NumEdges())
	}

	delta := graph.RandomDelta(rng, mirror, 2)
	if err := rt2.Apply(delta, nil); err != nil {
		t.Fatalf("post-recovery apply: %v", err)
	}
	if _, epoch, _ := rt2.ReadEmbedding(0); epoch != before[0].epoch+1 {
		t.Fatalf("post-recovery epoch %d, want %d", epoch, before[0].epoch+1)
	}
}

// TestRouterValidation pins the router-side validation that makes shard
// applies infallible: invalid batches are rejected whole with no state
// change, and the deployment stays healthy.
func TestRouterValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, featLen = 30, 4
	g := testGraph(rng, n, 60)
	x := tensor.RandMatrix(rng, n, featLen, 1)
	model := testModel(rng, "SAGE", featLen, gnn.AggMax)

	rt, err := New(model, g.Clone(), x.Clone(), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var present, absent graph.EdgeChange
	found := 0
	for u := 0; u < n && found < 2; u++ {
		for v := u + 1; v < n && found < 2; v++ {
			if g.HasEdge(graph.NodeID(u), graph.NodeID(v)) {
				if present == (graph.EdgeChange{}) {
					present = graph.EdgeChange{U: graph.NodeID(u), V: graph.NodeID(v)}
					found++
				}
			} else if absent == (graph.EdgeChange{}) {
				absent = graph.EdgeChange{U: graph.NodeID(u), V: graph.NodeID(v)}
				found++
			}
		}
	}

	cases := []struct {
		name  string
		delta graph.Delta
		vups  []inkstream.VertexUpdate
	}{
		{"insert-existing", graph.Delta{{U: present.U, V: present.V, Insert: true}}, nil},
		{"delete-missing", graph.Delta{{U: absent.U, V: absent.V, Insert: false}}, nil},
		{"vup-out-of-range", nil, []inkstream.VertexUpdate{{Node: n + 5, X: make(tensor.Vector, featLen)}}},
		{"vup-bad-dim", nil, []inkstream.VertexUpdate{{Node: 1, X: make(tensor.Vector, featLen+1)}}},
		{"vup-duplicate", nil, []inkstream.VertexUpdate{
			{Node: 2, X: make(tensor.Vector, featLen)},
			{Node: 2, X: make(tensor.Vector, featLen)},
		}},
	}
	for _, tc := range cases {
		if err := rt.Apply(tc.delta, tc.vups); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	st := rt.Stats()
	if st.Rounds != 0 {
		t.Fatalf("rejected batches produced %d rounds", st.Rounds)
	}
	if st.Corrupt {
		t.Fatal("rejections marked the deployment corrupt")
	}
	if st.Edges != g.NumEdges() {
		t.Fatalf("edge count drifted to %d, want %d", st.Edges, g.NumEdges())
	}

	// A valid batch still lands after the rejections.
	if err := rt.Apply(graph.Delta{{U: absent.U, V: absent.V, Insert: true}}, nil); err != nil {
		t.Fatalf("valid batch after rejections: %v", err)
	}
	if got := rt.Stats().Edges; got != g.NumEdges()+1 {
		t.Fatalf("edge count %d after insert, want %d", got, g.NumEdges()+1)
	}
}

// TestRouterClose pins shutdown semantics: Apply after Close fails with
// ErrRouterClosed and reads keep serving.
func TestRouterClose(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n, featLen = 20, 4
	g := testGraph(rng, n, 40)
	x := tensor.RandMatrix(rng, n, featLen, 1)
	model := testModel(rng, "SAGE", featLen, gnn.AggMax)
	rt, err := New(model, g.Clone(), x.Clone(), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Apply(graph.Delta{{U: 0, V: 1, Insert: !g.HasEdge(0, 1)}}, nil); err != ErrRouterClosed {
		t.Fatalf("apply after close: %v, want ErrRouterClosed", err)
	}
	if _, _, ok := rt.ReadEmbedding(0); !ok {
		t.Fatal("reads stopped serving after close")
	}
}
