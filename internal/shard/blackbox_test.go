package shard

import (
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/gnn"
	"repro/internal/leakcheck"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/tensor"
)

func newBlackBoxRouter(t *testing.T) *Router {
	t.Helper()
	leakcheck.Check(t)
	rng := rand.New(rand.NewSource(41))
	const n, featLen = 40, 6
	g := testGraph(rng, n, 100)
	x := tensor.RandMatrix(rng, n, featLen, 1)
	rt, err := New(testModel(rng, "SAGE", featLen, gnn.AggMax), g, x, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

// TestFailStopForensics: tripping the fail-stop latch records which round
// failed and why, exposes it in /v1/stats and the /healthz degraded reason,
// auto-captures an incident bundle carrying failstop.json, and keeps the
// first record when a second failure races in.
func TestFailStopForensics(t *testing.T) {
	rt := newBlackBoxRouter(t)
	dir := t.TempDir()
	rt.EnableBlackBox(obs.BlackBoxConfig{Dir: dir, Debounce: -1})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	if rt.FailStop() != nil {
		t.Fatal("healthy router reports a fail-stop record")
	}
	// Deterministic ticks so the bundle's timeseries carries samples.
	rt.Sampler().Tick()
	rt.Sampler().Tick()
	rt.failStopNow(7, errors.New("shard 1: apply exploded"))
	rt.failStopNow(9, errors.New("cascading second failure"))

	if !rt.Corrupt() {
		t.Fatal("corrupt latch not set")
	}
	fs := rt.FailStop()
	if fs == nil || fs.Round != 7 || !strings.Contains(fs.Err, "exploded") {
		t.Fatalf("fail-stop record %+v, want first failure (round 7)", fs)
	}

	st := rt.Stats()
	if st.FailStop == nil || st.FailStop.Round != 7 {
		t.Fatalf("/v1/stats fail_stop: %+v", st.FailStop)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h server.HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "degraded" {
		t.Fatalf("healthz status %q after fail-stop", h.Status)
	}
	var found bool
	for _, r := range h.Reasons {
		if strings.Contains(r, "round 7") && strings.Contains(r, "exploded") {
			found = true
		}
	}
	if !found {
		t.Fatalf("healthz reasons %v lack round forensics", h.Reasons)
	}

	// The trip auto-captured a bundle; Close drains, but the debounce-off
	// worker should already have it on disk — wait via Close ordering.
	rt.Close()
	d, err := obs.LoadDump(dir)
	if err != nil {
		t.Fatalf("no bundle after fail-stop: %v", err)
	}
	if d.Manifest.Trigger != "fail-stop" {
		t.Errorf("bundle trigger %q", d.Manifest.Trigger)
	}
	if d.FailStop == nil || d.FailStop.Round != 7 || !strings.Contains(d.FailStop.Err, "exploded") {
		t.Errorf("bundle failstop.json: %+v", d.FailStop)
	}
	if d.Runtime == nil {
		t.Error("bundle missing runtime section")
	}
	if len(d.Series("heap_mb")) == 0 && len(d.Series("upd_per_s")) == 0 {
		t.Error("bundle missing sampler series")
	}
	if !strings.Contains(string(d.Config), `"sharded"`) {
		t.Errorf("bundle config: %s", d.Config)
	}
}

// TestRouterBundleEndpoint: the router serves /debug/bundle like the
// single-engine server — 501 until armed, then a tar.gz.
func TestRouterBundleEndpoint(t *testing.T) {
	rt := newBlackBoxRouter(t)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("disabled bundle status %d, want 501", resp.StatusCode)
	}

	rt.EnableBlackBox(obs.BlackBoxConfig{Dir: t.TempDir(), Debounce: -1})
	resp2, err := http.Get(ts.URL + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("Content-Type") != "application/gzip" {
		t.Fatalf("bundle: status %d type %q", resp2.StatusCode, resp2.Header.Get("Content-Type"))
	}
}
