package shard

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/inkstream"
)

// This file is the PR8 cross-shard seam: subscription-filtered delta
// delivery and the boundary-first compute/exchange overlap (DESIGN.md §13).
//
// Under the broadcast protocol every shard receives every message-change
// record of every round layer, even though a shard only ever reads the ghost
// rows of vertices it has an in-arc from. The router therefore keeps, per
// shard, a refcount of live cross-shard arcs per remote source — the shard's
// subscriptions — and delivers each record only to its producer (fan-out
// over its own arcs) and its subscribers (ghost refresh + fan-out). The
// per-target event sequence each engine regenerates is unchanged: records a
// shard never receives are exactly the records whose sources have no arc
// into the shard, i.e. records that regenerate zero local events — so only
// the delivery set shrinks, never the event order, and bit-exactness
// survives (the §11.3 argument is untouched).
//
// Subscriptions move with the cut: the apply goroutine folds each round's
// arc changes into the refcounts before opening the round, and when a shard
// subscribes to a source it was not watching (refcount 0 → 1) it first
// adopts the owner's current message rows — ghost hydration, the mid-stream
// analogue of the bootstrap ghost seeding. Removal rounds need no special
// case: the removed arc existed, so its source was already subscribed and
// its pre-round ghost rows are current for the removal's old-message
// snapshot; dropping the subscription in the same round is safe because the
// arc is gone before any event could need a fresher row.

// initSubscriptions builds the subscription tables and boundary masks from
// the bootstrap graph (the replica holds its directed arcs) and installs
// each shard's boundary mask. Called once at construction, before WAL
// recovery — recovered rounds maintain the tables like live ones.
func (rt *Router) initSubscriptions() error {
	n := len(rt.shards)
	rt.subs = make([]map[graph.NodeID]int, n)
	for s := range rt.subs {
		rt.subs[s] = make(map[graph.NodeID]int)
	}
	rt.remoteSubs = make([]int, rt.part.NumNodes())
	g := rt.replica
	for u := 0; u < g.NumNodes(); u++ {
		src := rt.part.Owner(graph.NodeID(u))
		for _, v := range g.OutNeighbors(graph.NodeID(u)) {
			if dst := rt.part.Owner(v); dst != src {
				if rt.subs[dst][graph.NodeID(u)]++; rt.subs[dst][graph.NodeID(u)] == 1 {
					rt.remoteSubs[u]++
				}
			}
		}
	}
	rt.boundary = make([][]bool, n)
	for s := range rt.boundary {
		rt.boundary[s] = make([]bool, rt.part.NumNodes())
	}
	for u, subs := range rt.remoteSubs {
		if subs > 0 {
			rt.boundary[rt.part.Owner(graph.NodeID(u))][u] = true
		}
	}
	for s, st := range rt.shards {
		if err := st.eng.SetPartitionBoundary(rt.boundary[s]); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	rt.delivA = make([][]inkstream.MessageChange, n)
	rt.delivB = make([][]inkstream.MessageChange, n)
	rt.bndOut = make([][]inkstream.MessageChange, n)
	rt.intrOut = make([][]inkstream.MessageChange, n)
	return nil
}

// prepareRoundRouting folds one round's arc changes into the subscription
// tables and boundary masks, then hydrates every new subscription (refcount
// 0 → 1 on a remote source) by copying the owner's current message rows into
// the subscriber's ghost rows — all before the round opens, on the apply
// goroutine, while every engine is idle. Seal time would be wrong: rounds
// pipeline, so the router goroutine may seal round k+1 while round k still
// computes.
func (rt *Router) prepareRoundRouting(r *round) error {
	type hydration struct {
		shard int
		node  graph.NodeID
	}
	var fresh []hydration
	for s := range r.subDelta {
		for _, ch := range r.subDelta[s] {
			src := rt.part.Owner(ch.U) // destination owner is s by routing
			if src == s {
				continue
			}
			if ch.Insert {
				if rt.subs[s][ch.U]++; rt.subs[s][ch.U] == 1 {
					if rt.remoteSubs[ch.U]++; rt.remoteSubs[ch.U] == 1 {
						rt.boundary[src][ch.U] = true
					}
					fresh = append(fresh, hydration{s, ch.U})
				}
			} else {
				if rt.subs[s][ch.U]--; rt.subs[s][ch.U] == 0 {
					delete(rt.subs[s], ch.U)
					if rt.remoteSubs[ch.U]--; rt.remoteSubs[ch.U] == 0 {
						rt.boundary[src][ch.U] = false
					}
				}
			}
		}
	}
	for _, h := range fresh {
		owner := rt.shards[rt.part.Owner(h.node)].eng
		for l := 0; l < rt.model.NumLayers(); l++ {
			row, err := owner.MessageRow(l, h.node)
			if err != nil {
				return fmt.Errorf("hydrating node %d layer %d: %w", h.node, l, err)
			}
			if err := rt.shards[h.shard].eng.SetGhostMessageRow(l, h.node, row); err != nil {
				return fmt.Errorf("hydrating node %d layer %d on shard %d: %w", h.node, l, h.shard, err)
			}
		}
	}
	return nil
}

// bucketRecords distributes one shard's records into the per-destination
// delivery lists: the producing shard always receives its own records (it
// regenerates local fan-out from them), other shards only when subscribed.
// Returns the remote deliveries, suppressed deliveries and delivered bytes
// for the round counters.
func (rt *Router) bucketRecords(src int, recs []inkstream.MessageChange, deliv [][]inkstream.MessageChange) (delivered, filtered int, bytes int64) {
	n := len(rt.shards)
	for _, rec := range recs {
		deliv[src] = append(deliv[src], rec)
		recBytes := int64(4 * (len(rec.Old) + len(rec.New)))
		for s := 0; s < n; s++ {
			if s == src {
				continue
			}
			if rt.subs[s][rec.Node] > 0 {
				deliv[s] = append(deliv[s], rec)
				delivered++
				bytes += recBytes
			} else {
				filtered++
			}
		}
	}
	return delivered, filtered, bytes
}

// executeRoundFiltered runs one BSP round over the subscription-filtered,
// boundary-first protocol. Per layer, every participating shard runs
// RoundLayerBoundary (producing the records other shards wait for) and then
// RoundLayerInterior back to back with no inter-shard barrier between the
// phases; the apply goroutine buckets each shard's boundary records into the
// next layer's delivery lists as they arrive, overlapping the exchange with
// the interior compute. Shards with an empty sub-batch, an empty delivery
// list and no carried hook events skip the layer call entirely — the idle
// half of a partitioned deployment stops paying the lockstep tax. Values
// are bit-exact against the broadcast path: only the delivery sets and the
// schedule differ (DESIGN.md §13).
func (rt *Router) executeRoundFiltered(r *round) error {
	n := len(rt.shards)
	prof := r.prof
	var durs []time.Duration
	if prof != nil {
		prof.Queue = time.Since(r.sealed)
		durs = make([]time.Duration, n)
	}
	if err := rt.prepareRoundRouting(r); err != nil {
		return fmt.Errorf("routing: %w", err)
	}

	outs := make([][]inkstream.MessageChange, n)
	if err := rt.runStage(prof, durs, func(i int, s *shardState) error {
		recs, err := s.eng.BeginRound(r.subDelta[i], r.subVups[i])
		outs[i] = recs
		return err
	}); err != nil {
		return fmt.Errorf("begin: %w", err)
	}
	if prof != nil {
		rt.addStage(prof, "begin", durs, nil, 0, 0, 0)
	}

	// Layer-0 delivery lists from the BeginRound records.
	deliv, next := rt.delivA, rt.delivB
	for s := range deliv {
		deliv[s], next[s] = deliv[s][:0], next[s][:0]
	}
	var bcast time.Duration
	t0 := time.Now()
	delivered, filtered := 0, 0
	var dBytes int64
	for i := range outs {
		d, f, b := rt.bucketRecords(i, outs[i], deliv)
		delivered, filtered, dBytes = delivered+d, filtered+f, dBytes+b
	}
	for s := range deliv {
		sortRecords(deliv[s])
	}
	bcast = time.Since(t0)

	roundRecs := 0
	skip := make([]bool, n)
	for l := 0; l < rt.model.NumLayers(); l++ {
		rt.boundaryRecs.Add(int64(delivered))
		rt.filteredRecs.Add(int64(filtered))
		rt.boundaryBytes.Add(dBytes)
		roundRecs += delivered
		stageRecs, stageBytes, layerBcast := delivered, dBytes, bcast

		participants := 0
		for i, s := range rt.shards {
			skip[i] = len(deliv[i]) == 0 && len(r.subDelta[i]) == 0 && !s.eng.HasCarriedRoundEvents()
			if !skip[i] {
				participants++
			}
		}
		for s := range next {
			next[s] = next[s][:0]
		}

		// Launch the participants: boundary phase, publish its records,
		// then interior — no cross-shard barrier between the phases.
		bndReady := make(chan int, participants)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i, s := range rt.shards {
			if skip[i] {
				rt.bndOut[i], rt.intrOut[i] = nil, nil
				if prof != nil {
					durs[i] = 0
				}
				continue
			}
			wg.Add(1)
			go func(i int, s *shardState, l int) {
				defer wg.Done()
				var t0 time.Time
				if prof != nil {
					t0 = time.Now()
				}
				bnd, err := s.eng.RoundLayerBoundary(l, deliv[i])
				rt.bndOut[i] = bnd
				if err != nil {
					errs[i] = err
					bndReady <- -1
					return
				}
				bndReady <- i
				intr, err := s.eng.RoundLayerInterior()
				rt.intrOut[i] = intr
				errs[i] = err
				if prof != nil {
					durs[i] = time.Since(t0)
				}
			}(i, s, l)
		}

		// Overlapped exchange: bucket each shard's boundary records into the
		// next layer's delivery lists as soon as that shard publishes them,
		// while the interiors are still computing.
		var mergeBusy time.Duration
		delivered, filtered, dBytes = 0, 0, 0
		for k := 0; k < participants; k++ {
			i := <-bndReady
			if i < 0 {
				continue
			}
			b0 := time.Now()
			d, f, b := rt.bucketRecords(i, rt.bndOut[i], next)
			delivered, filtered, dBytes = delivered+d, filtered+f, dBytes+b
			mergeBusy += time.Since(b0)
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			return fmt.Errorf("layer %d: %w", l, err)
		}
		for i, s := range rt.shards {
			if skip[i] {
				continue
			}
			b0 := time.Now()
			d, f, b := rt.bucketRecords(i, rt.intrOut[i], next)
			delivered, filtered, dBytes = delivered+d, filtered+f, dBytes+b
			mergeBusy += time.Since(b0)
			rt.ghostRows.Add(int64(s.eng.LastStageStats().GhostRows))
		}
		for s := range next {
			sortRecords(next[s])
		}
		bcast = mergeBusy

		if prof != nil {
			rt.addStage(prof, "layer"+strconv.Itoa(l), durs, skip, stageRecs, stageBytes, layerBcast)
			prof.Records += stageRecs
			prof.Bytes += stageBytes
		}
		deliv, next = next, deliv
	}
	if n > 1 {
		rt.recSize.Observe(int64(roundRecs))
	}
	rt.delivA, rt.delivB = deliv, next

	err := rt.runStage(prof, durs, func(i int, s *shardState) error {
		if err := s.eng.FinishRound(); err != nil {
			return err
		}
		s.eng.PublishSnapshot()
		return nil
	})
	if err == nil && prof != nil {
		rt.addStage(prof, "publish", durs, nil, 0, 0, bcast)
	}
	return err
}

// sortRecords node-sorts one delivery list. Each source node's record is
// produced by exactly one shard, so the order is total and deterministic.
func sortRecords(recs []inkstream.MessageChange) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Node < recs[j].Node })
}
