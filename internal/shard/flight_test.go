package shard

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/tensor"
)

// newProfiledRouter builds a small SAGE deployment with every-request trace
// sampling, so each Apply leaves both a request trace and a round profile.
func newProfiledRouter(t testing.TB, shards int) (*Router, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(301))
	const n, featLen = 48, 5
	g := testGraph(rng, n, 120)
	x := tensor.RandMatrix(rng, n, featLen, 1)
	model := testModel(rng, "SAGE", featLen, gnn.AggMean)
	rt, err := New(model, g, x, Config{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	rt.SetTraceSampling(64, 1)
	return rt, g
}

// driveUpdates applies count single-edge inserts (each its own round) plus
// one trailing feature update, all of which must succeed.
func driveUpdates(t testing.TB, rt *Router, g *graph.Graph, count int) {
	t.Helper()
	rng := rand.New(rand.NewSource(302))
	n := g.NumNodes()
	applied := 0
	for applied < count {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		delta := graph.Delta{{U: u, V: v, Insert: true}}
		if err := rt.Apply(delta, nil); err != nil {
			t.Fatalf("apply %d: %v", applied, err)
		}
		if err := delta.Apply(g); err != nil { // keep the mirror in sync
			t.Fatal(err)
		}
		applied++
	}
	vups := []inkstream.VertexUpdate{{Node: 3, X: tensor.RandVector(rng, 5, 1)}}
	if err := rt.Apply(nil, vups); err != nil {
		t.Fatalf("feature update: %v", err)
	}
}

// TestRouterRoundProfiler pins the tentpole: every round leaves a trace
// whose stages cover begin, each layer and publish, with per-shard
// compute/barrier spans that satisfy the makespan identity, a named
// straggler, and cumulative attribution in /v1/stats.
func TestRouterRoundProfiler(t *testing.T) {
	rt, g := newProfiledRouter(t, 2)
	driveUpdates(t, rt, g, 5)

	p := rt.RoundProfiler()
	if p == nil {
		t.Fatal("profiler disabled by default")
	}
	if got := p.Recorded(); got < 6 {
		t.Fatalf("recorded %d rounds, want >= 6", got)
	}
	layers := rt.model.NumLayers()
	for _, tr := range p.Traces() {
		if len(tr.Stages) != layers+2 {
			t.Fatalf("round %d has %d stages, want %d", tr.ID, len(tr.Stages), layers+2)
		}
		if tr.Stages[0].Name != "begin" || tr.Stages[len(tr.Stages)-1].Name != "publish" {
			t.Fatalf("stage names %q ... %q", tr.Stages[0].Name, tr.Stages[len(tr.Stages)-1].Name)
		}
		for _, st := range tr.Stages {
			if len(st.Shards) != 2 {
				t.Fatalf("stage %s has %d shard spans", st.Name, len(st.Shards))
			}
			for i, sh := range st.Shards {
				if sh.Skipped {
					if sh.Compute != 0 || sh.Barrier != 0 {
						t.Fatalf("stage %s shard %d: skipped span carries compute %v barrier %v", st.Name, i, sh.Compute, sh.Barrier)
					}
					continue
				}
				if sh.Compute < 0 || sh.Compute > st.Makespan {
					t.Fatalf("stage %s shard %d: compute %v outside [0, makespan %v]", st.Name, i, sh.Compute, st.Makespan)
				}
				if sh.Barrier != st.Makespan-sh.Compute {
					t.Fatalf("stage %s shard %d: barrier %v != makespan - compute", st.Name, i, sh.Barrier)
				}
			}
		}
		if s := tr.Straggler(); s < 0 || s >= 2 {
			t.Fatalf("straggler %d out of range", s)
		}
		if sk := tr.StragglerSkew(); sk < 1 {
			t.Fatalf("straggler skew %g < 1", sk)
		}
		if bs := tr.BarrierShare(); bs < 0 || bs > 1 {
			t.Fatalf("barrier share %g outside [0,1]", bs)
		}
		if tr.Total <= 0 || tr.BSPTime() <= 0 {
			t.Fatalf("round %d: total %v, bsp %v", tr.ID, tr.Total, tr.BSPTime())
		}
	}

	stats := rt.Stats()
	rp := stats.RoundProfile
	if rp == nil {
		t.Fatal("stats carry no round profile")
	}
	if rp.Rounds < 6 {
		t.Fatalf("profile covers %d rounds, want >= 6", rp.Rounds)
	}
	if rp.Straggler < 0 || rp.Straggler >= 2 || len(rp.StragglerRounds) != 2 {
		t.Fatalf("straggler attribution %+v", rp)
	}
	var sum int64
	for _, c := range rp.StragglerRounds {
		sum += c
	}
	if sum != rp.Rounds {
		t.Fatalf("straggler rounds sum %d != rounds %d", sum, rp.Rounds)
	}
	if rp.BarrierShare < 0 || rp.BarrierShare > 1 {
		t.Fatalf("cumulative barrier share %g", rp.BarrierShare)
	}
	if rp.MeanStragglerSkew < 1 {
		t.Fatalf("mean straggler skew %g < 1", rp.MeanStragglerSkew)
	}

	// Request traces join to rounds via the round ID.
	roundIDs := map[uint64]bool{}
	for _, tr := range p.Traces() {
		roundIDs[tr.ID] = true
	}
	traces := rt.FlightRecorder().Traces()
	if len(traces) == 0 {
		t.Fatal("no request traces with 1-in-1 sampling")
	}
	for _, tr := range traces {
		if tr.Round == 0 || !roundIDs[tr.Round] {
			t.Fatalf("trace %d carries round %d, not in the profiler ring", tr.ID, tr.Round)
		}
	}
}

// TestRouterProfilingDisabled pins the off switch: no round traces, no
// stats slice, and /v1/rounds answers 501 instead of an empty ring.
func TestRouterProfilingDisabled(t *testing.T) {
	rt, g := newProfiledRouter(t, 2)
	rt.SetRoundProfiling(0)
	driveUpdates(t, rt, g, 2)
	if rt.RoundProfiler() != nil {
		t.Fatal("profiler survived SetRoundProfiling(0)")
	}
	if rp := rt.Stats().RoundProfile; rp != nil {
		t.Fatalf("stats carry a round profile with profiling off: %+v", rp)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/rounds")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("/v1/rounds with profiling off: %d, want 501", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, out any) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d (%s)", url, resp.StatusCode, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", url, body, err)
		}
	}
	return string(body)
}

// TestRouterObservabilityEndpoints drives the sharded serving surface end
// to end: /v1/rounds names a straggler and carries per-shard spans,
// /v1/traces carries round IDs and honors the single-engine filters,
// /v1/timeseries and /v1/alerts answer, /healthz serves the single-engine
// schema with the shard fields filled in, and unknown /v1/* paths get a
// typed JSON 404.
func TestRouterObservabilityEndpoints(t *testing.T) {
	rt, g := newProfiledRouter(t, 2)
	driveUpdates(t, rt, g, 4)
	rt.Sampler().Tick()
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	var rounds RoundsResponse
	body := getJSON(t, ts.URL+"/v1/rounds", &rounds)
	if rounds.Recorded < 5 || rounds.Shards != 2 || len(rounds.Rounds) < 5 {
		t.Fatalf("rounds response: recorded=%d shards=%d len=%d", rounds.Recorded, rounds.Shards, len(rounds.Rounds))
	}
	for _, key := range []string{`"round_id"`, `"straggler"`, `"barrier_share"`, `"bsp_us"`, `"compute_us"`, `"barrier_us"`, `"stage":"begin"`, `"stage":"publish"`} {
		if !strings.Contains(body, key) {
			t.Fatalf("/v1/rounds body missing %s:\n%s", key, body)
		}
	}
	var one RoundsResponse
	getJSON(t, ts.URL+"/v1/rounds?n=1", &one)
	if len(one.Rounds) != 1 {
		t.Fatalf("n=1 returned %d rounds", len(one.Rounds))
	}
	var none RoundsResponse
	getJSON(t, ts.URL+"/v1/rounds?min_us=1000000000", &none)
	if len(none.Rounds) != 0 {
		t.Fatalf("min_us=1e9 returned %d rounds", len(none.Rounds))
	}

	var traces struct {
		SampleEvery int `json:"sample_every"`
		Recorded    int64
		Traces      []map[string]any `json:"traces"`
	}
	body = getJSON(t, ts.URL+"/v1/traces", &traces)
	if traces.SampleEvery != 1 || len(traces.Traces) == 0 {
		t.Fatalf("traces response: every=%d len=%d", traces.SampleEvery, len(traces.Traces))
	}
	if !strings.Contains(body, `"round_id"`) {
		t.Fatalf("/v1/traces body missing round_id:\n%s", body)
	}
	var capped struct {
		Traces []map[string]any `json:"traces"`
	}
	getJSON(t, ts.URL+"/v1/traces?n=2", &capped)
	if len(capped.Traces) != 2 {
		t.Fatalf("n=2 returned %d traces", len(capped.Traces))
	}

	var snap obs.TSSnapshot
	getJSON(t, ts.URL+"/v1/timeseries", &snap)
	names := map[string]bool{}
	for _, s := range snap.Series {
		names[s.Name] = true
	}
	for _, want := range []string{"upd_per_s", "ack_p99_ms", "round_p99_ms", "epoch_skew", "barrier_share"} {
		if !names[want] {
			t.Fatalf("timeseries missing %q (have %v)", want, names)
		}
	}

	var alerts obs.AlertsResponse
	getJSON(t, ts.URL+"/v1/alerts", &alerts)
	if alerts.Firing != 0 {
		t.Fatalf("alerts firing with no SLO set: %+v", alerts)
	}

	var hz server.HealthzResponse
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz.Status != "ok" || hz.Shards != 2 || hz.Epoch == 0 {
		t.Fatalf("healthz %+v", hz)
	}

	resp, err := http.Get(ts.URL + "/v1/nonsense")
	if err != nil {
		t.Fatal(err)
	}
	nf, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown /v1 path: %d", resp.StatusCode)
	}
	var errBody map[string]string
	if err := json.Unmarshal(nf, &errBody); err != nil || errBody["error"] == "" {
		t.Fatalf("unknown /v1 path body %q not typed JSON", nf)
	}

	metrics := getJSON(t, ts.URL+"/metrics", nil)
	for _, fam := range []string{
		"inkstream_round_duration_seconds",
		"inkstream_round_barrier_wait_seconds_total",
		"inkstream_round_compute_seconds_total",
		"inkstream_shard_straggler_rounds_total",
		"inkstream_alerts_firing",
	} {
		if !strings.Contains(metrics, fam) {
			t.Fatalf("/metrics missing %s", fam)
		}
	}
}

// TestRouterSLOBurnRate drives the alert lifecycle through the router: a
// sub-microsecond SLO makes every tick's windowed ack p99 a breach, the
// fast burn-rate rule fires after its hold, and /healthz degrades naming
// the alert. Clearing the SLO resolves everything.
func TestRouterSLOBurnRate(t *testing.T) {
	rt, g := newProfiledRouter(t, 1)
	rt.SetHealthSLO(time.Nanosecond)

	for i := 0; i < 4; i++ {
		driveUpdates(t, rt, g, 1)
		rt.Sampler().Tick()
	}
	firing := rt.Alerts().Firing()
	if len(firing) == 0 {
		t.Fatal("no alert firing after sustained SLO breaches")
	}

	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	var hz server.HealthzResponse
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz.Status != "degraded" || len(hz.AlertsFiring) == 0 {
		t.Fatalf("healthz under fire: %+v", hz)
	}
	var alerts obs.AlertsResponse
	getJSON(t, ts.URL+"/v1/alerts", &alerts)
	if alerts.Firing == 0 || len(alerts.Alerts) == 0 {
		t.Fatalf("alerts response %+v", alerts)
	}

	rt.SetHealthSLO(0)
	if got := rt.Alerts().Firing(); len(got) != 0 {
		t.Fatalf("alerts survive SLO removal: %v", got)
	}
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz.Status != "ok" {
		t.Fatalf("healthz after SLO removal: %+v", hz)
	}
}

// BenchmarkRouterRoundProfiler measures the profiler tax on the full
// submit→ack round pipeline of a 2-shard deployment: profiling and request
// tracing fully off vs the serving defaults (256-round ring, 256-trace ring
// with 1-in-64 sampling). scripts/obs_overhead.sh gates the paired delta
// at <5%.
func BenchmarkRouterRoundProfiler(b *testing.B) {
	const n = 512
	for _, cfg := range []struct {
		name string
		on   bool
	}{
		{"off", false},
		{"on", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(77))
			g := testGraph(rng, n, 3*n)
			x := tensor.RandMatrix(rng, n, 8, 1)
			model := testModel(rng, "SAGE", 8, gnn.AggMean)
			rt, err := New(model, g, x, Config{Shards: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			if cfg.on {
				rt.SetRoundProfiling(256)
				rt.SetTraceSampling(256, 64)
			} else {
				rt.SetRoundProfiling(0)
				rt.SetTraceSampling(0, 0)
			}
			seen := map[[2]graph.NodeID]bool{}
			var ins, del graph.Delta
			for len(ins) < 16 {
				u := graph.NodeID(rng.Intn(n))
				v := graph.NodeID(rng.Intn(n))
				if u == v || g.HasEdge(u, v) || seen[[2]graph.NodeID{u, v}] || seen[[2]graph.NodeID{v, u}] {
					continue
				}
				seen[[2]graph.NodeID{u, v}] = true
				ins = append(ins, graph.EdgeChange{U: u, V: v, Insert: true})
				del = append(del, graph.EdgeChange{U: u, V: v, Insert: false})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := ins
				if i%2 == 1 {
					d = del
				}
				if err := rt.Apply(d, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
