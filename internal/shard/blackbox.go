package shard

import (
	"net/http"

	"repro/internal/obs"
	"repro/internal/server"
)

// Incident black box wiring for the sharded deployment (DESIGN.md §15).
// The router has one incident signal the single-engine server does not —
// the fail-stop latch tripped by a failed round — so automatic captures
// arm on fail-stop and on alert pending→firing, and each bundle carries a
// failstop.json with the failing round's forensics.

// EnableBlackBox arms the incident black box: cfg.Dir names the dump
// directory; cfg.Source is filled in by the router (any caller-provided
// Config payload is kept). Automatic captures trigger on a round fail-stop
// and on alert pending→firing, debounced per cfg. Call before serving;
// captured bundles are read back with obs.LoadDump or inkstat -postmortem.
func (rt *Router) EnableBlackBox(cfg obs.BlackBoxConfig) *obs.BlackBox {
	cfg.Source.Flight = rt.flight
	cfg.Source.Rounds = rt.profiler
	cfg.Source.Sampler = rt.sampler
	cfg.Source.Alerts = rt.alerts
	cfg.Source.Runtime = rt.runtime
	if cfg.Source.Config == nil {
		info := server.BlackBoxInfo{
			Deployment: "sharded",
			Shards:     len(rt.shards),
			SLOMS:      float64(rt.sloNS.Load()) / 1e6,
			Coalescing: true, // rounds always fuse queued requests
		}
		if rt.flight != nil {
			info.SampleEvery = rt.flight.SampleEvery()
		}
		cfg.Source.Config = info
	}
	bb := obs.NewBlackBox(cfg)
	rt.blackbox = bb
	bb.Register(rt.reg)
	bb.AddFile("failstop.json", func() any {
		if fs := rt.failStop.Load(); fs != nil {
			return fs
		}
		return nil
	})
	rt.alerts.OnFiring(func(name, reason string) {
		bb.Trigger("alert-"+name, reason)
	})
	return bb
}

// BlackBox exposes the black box (nil until EnableBlackBox).
func (rt *Router) BlackBox() *obs.BlackBox { return rt.blackbox }

// handleBundle serves GET /debug/bundle: an on-demand tar.gz capture of the
// full observability state, including the fail-stop record when present.
func (rt *Router) handleBundle(w http.ResponseWriter, r *http.Request) {
	if rt.blackbox == nil {
		httpError(w, http.StatusNotImplemented, "black box not enabled")
		return
	}
	rt.blackbox.ServeHTTP(w, r)
}
