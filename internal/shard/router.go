// Package shard implements partitioned multi-engine serving (DESIGN.md
// §11): N independent InkStream engines, each owning a vertex partition,
// fronted by a router that fans mixed update batches out into per-shard
// sub-batches and serves reads from the owning shard's published snapshot.
//
// Partitioning model (RIPPLE-style): vertices are hashed to shards; shard
// s's engine holds a directed shard graph containing every in-arc of every
// vertex s owns, full-size state matrices whose remote message rows are
// ghost rows, and its own round-aligned WAL. Updates execute as BSP rounds
// in layer lockstep: every shard applies its sub-batch, and after each
// layer the message-change records of all shards are merged in node order
// and broadcast, so every shard refreshes its ghost rows and regenerates
// the fan-out over its own arcs. Because the regenerated per-target event
// sequence equals the single-engine sequence restricted to local targets
// (in the same arrival order), an N-shard deployment is bit-exact against
// a 1-shard one — for monotonic and accumulative aggregators alike.
//
// Pipeline: the router reuses the single-server stages at round
// granularity — submit channel → round formation (server-style coalescing
// with conflict stalls) → per-shard group-committed WAL journaling → BSP
// apply → per-shard snapshot publish → ack. A successful ack means the
// round is durable in every shard's WAL and visible in every shard's
// published snapshot (read-your-writes).
//
// Failure semantics are fail-stop: router-level validation makes shard
// applies infallible, so if one fails anyway the deployment marks itself
// corrupt, rejects further mutations, and keeps serving reads from the
// last published snapshots (DESIGN.md §11.5).
package shard

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/tensor"
)

// ErrRouterClosed is returned for mutations submitted after Close.
var ErrRouterClosed = errors.New("shard: router closed")

// ErrCorrupt is returned for mutations after a shard apply failed; the
// router is fail-stop for writes but keeps serving reads (DESIGN.md §11.5).
var ErrCorrupt = errors.New("shard: deployment corrupt after failed round; writes rejected")

// maxGroup bounds how many queued requests one drain of the submit channel
// considers for round formation — same backstop as the single server's
// group commit.
const maxGroup = 128

// Config tunes a partitioned deployment.
type Config struct {
	// Shards is the number of engine shards (≥ 1).
	Shards int
	// Partition overrides the partitioner entirely (PartitionStrategy is
	// then ignored).
	Partition *graph.Partition
	// PartitionStrategy names the partitioner used when Partition is nil:
	// "hash" (default), "block" or "greedy" (locality-aware streaming
	// greedy, graph.NewGreedyPartition). Resolved over the bootstrap graph
	// via graph.PartitionByStrategy.
	PartitionStrategy string
	// FullBroadcast disables subscription-filtered delivery and the
	// boundary-first overlap: every message-change record is broadcast to
	// every shard through plain RoundLayer calls. This is the pre-PR8
	// exchange, kept selectable as the A/B baseline for the shard-scaling
	// bench (BENCH_pr8.json measures the filtered path against it).
	FullBroadcast bool
	// WALDir, when non-empty, enables per-shard write-ahead logging under
	// dir/shard-NNN/wal.log; existing round-aligned WALs are replayed on
	// construction (longest common round prefix).
	WALDir string
	// Opts is applied to every shard engine. Observer and Trace are ignored
	// (they are single-engine serving concerns; the router has its own
	// metrics).
	Opts inkstream.Options
}

// request is one mutation in flight: the expanded (directed) delta, the
// logical change count for the ack body, and the completion channel.
type request struct {
	delta   graph.Delta // directed arcs (undirected edges pre-expanded)
	logical int         // logical changes submitted (for accounting)
	vups    []inkstream.VertexUpdate
	done    chan error
	start   time.Time

	// Flight-recorder identity (flight.go): id 0 means request tracing is
	// off and no stage mark is ever taken. round is the BSP round the
	// request was fused into, joining its trace to /v1/rounds.
	id      uint64
	sampled bool
	kind    string
	round   uint64
	marks   [obs.StageCount]time.Duration
}

// round is one sealed BSP round: the fused requests plus the per-shard
// sub-batches derived from them.
type round struct {
	reqs     []*request
	subDelta []graph.Delta
	subVups  [][]inkstream.VertexUpdate

	// prof is the round's profiler trace (nil with profiling off and for
	// recovery replays); sealed is when the router goroutine handed the
	// round to the apply loop (the queue-wait anchor).
	prof   *obs.RoundTrace
	sealed time.Time
}

// shardState is one engine shard with its private counters and WAL.
type shardState struct {
	id  int
	eng *inkstream.Engine
	c   *metrics.Counters
	wal *persist.WAL
}

// Router owns the shards and the round pipeline.
type Router struct {
	model      *gnn.Model
	part       *graph.Partition
	strategy   string       // partition strategy name (for stats; "custom" when injected)
	replica    *graph.Graph // directed union of all shard arcs; router goroutine only
	undirected bool
	shards     []*shardState
	cut        graph.CutStats

	// Subscription-filtered delivery state (apply goroutine only, engines
	// idle whenever it is touched). subs[s][u] counts the live arcs from
	// remote vertex u into shard-s-owned vertices: shard s consumes u's
	// ghost rows iff the count is positive. remoteSubs[u] counts the shards
	// subscribed to u; boundary[s] is the per-shard mask of owned vertices
	// with at least one remote subscriber (the engines' boundary-phase
	// input, mutated in place between rounds). All nil in FullBroadcast
	// mode and for 1-shard deployments.
	fullBroadcast bool
	subs          []map[graph.NodeID]int
	remoteSubs    []int
	boundary      [][]bool

	submitCh  chan *request
	roundCh   chan *round
	quit      chan struct{}
	closeOnce sync.Once
	// closeMu orders submits against Close: a submitter holds the read
	// side across its submitCh send, so once Close sets closed under the
	// write side no request can land after routerLoop's shutdown drain
	// (a bare select on quit could — a buffered send and a closed quit
	// are both ready, and select picks between them at random).
	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup

	updates   atomic.Int64 // successful mutation requests
	reads     atomic.Int64
	rounds    atomic.Int64 // rounds applied (including recovered)
	recovered atomic.Int64 // rounds replayed from the WALs at construction
	stalls    atomic.Int64 // rounds sealed early by a conflicting request
	accepted  atomic.Uint64
	processed atomic.Uint64
	edges     atomic.Int64 // logical edge count of the served graph
	corrupt   atomic.Bool
	// failStop holds the forensics of the round that tripped the corrupt
	// latch (nil while healthy): round ID, error, time. First failure wins.
	failStop atomic.Pointer[obs.FailStopInfo]

	boundaryRecs  atomic.Int64 // message-change records delivered to remote shards
	boundaryBytes atomic.Int64 // payload bytes those deliveries carried
	filteredRecs  atomic.Int64 // remote deliveries the subscription filter suppressed
	ghostRows     atomic.Int64 // ghost rows engines actually adopted from deliveries
	recSize       *obs.Histogram
	coSize        *obs.Histogram
	ackLat        *obs.Histogram
	reg           *obs.Registry
	started       time.Time

	// Observability (flight.go): the PR-5 serving stack at round
	// granularity — request flight recorder, BSP round profiler,
	// in-process time-series sampler and the burn-rate alert engine.
	flight   *obs.FlightRecorder
	profiler *obs.RoundRecorder
	roundDur *obs.Histogram // round open→published, exemplified by round ID
	roundSeq atomic.Uint64  // round IDs (assigned at seal, profiling or not)
	sampler  *obs.Sampler
	alerts   *obs.AlertEngine
	sloNS    atomic.Int64 // healthz ack-p99 SLO in ns (0 = disabled)

	// Runtime telemetry plane and incident black box (blackbox.go); the
	// runtime collector always exists, the black box only after
	// EnableBlackBox.
	runtime  *obs.Runtime
	blackbox *obs.BlackBox

	// Cumulative critical-path attribution, accumulated per profiled
	// round (flight.go): compute/barrier are per-shard means so
	// computeNS+barrierNS ≈ bspNS, and stragglerRounds[i] counts the
	// rounds shard i was the straggler of. last* hold the most recent
	// round's attribution as Float64bits.
	profiled         atomic.Int64
	computeNS        atomic.Int64
	barrierNS        atomic.Int64
	broadcastNS      atomic.Int64
	bspNS            atomic.Int64
	skewMilli        atomic.Int64 // cumulative straggler skew × 1000
	boundaryNS       atomic.Int64 // cumulative boundary-phase compute (filtered protocol)
	interiorNS       atomic.Int64 // cumulative interior-phase compute (filtered protocol)
	stragglerRounds  []atomic.Int64
	lastBarrierShare atomic.Uint64
	lastSkew         atomic.Uint64

	// recBuf is the applyLoop's reusable merged-record buffer (broadcast
	// path); delivA/delivB are the filtered path's per-destination delivery
	// lists, double-buffered because layer l's lists are still being read by
	// engines while layer l+1's are built.
	recBuf         []inkstream.MessageChange
	delivA, delivB [][]inkstream.MessageChange
	intrOut        [][]inkstream.MessageChange
	bndOut         [][]inkstream.MessageChange
}

// New bootstraps a partitioned deployment: one full-graph inference over g
// and x, then per shard a directed shard graph, a cloned state and a
// partition-aware engine. g is the logical bootstrap graph (directed or
// undirected); the router expands undirected edges into arcs when routing.
// When cfg.WALDir holds round-aligned WALs from a previous run, their
// longest common round prefix is replayed before serving starts.
func New(model *gnn.Model, g *graph.Graph, x *tensor.Matrix, cfg Config) (*Router, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", cfg.Shards)
	}
	part := cfg.Partition
	strategy := "custom"
	if part == nil {
		var err error
		part, err = graph.PartitionByStrategy(cfg.PartitionStrategy, g, cfg.Shards)
		if err != nil {
			return nil, err
		}
		strategy = cfg.PartitionStrategy
		if strategy == "" {
			strategy = "hash"
		}
	}
	if part.NumShards() != cfg.Shards || part.NumNodes() != g.NumNodes() {
		return nil, fmt.Errorf("shard: partition is %d shards × %d nodes, want %d × %d",
			part.NumShards(), part.NumNodes(), cfg.Shards, g.NumNodes())
	}
	base, err := gnn.Infer(model, g, x, nil)
	if err != nil {
		return nil, fmt.Errorf("shard: bootstrap inference: %w", err)
	}

	opts := cfg.Opts
	opts.Observer = nil
	opts.Trace = nil
	rt := &Router{
		model:         model,
		part:          part,
		strategy:      strategy,
		replica:       directedReplica(g),
		undirected:    g.Undirected,
		cut:           part.Cut(g),
		fullBroadcast: cfg.FullBroadcast || cfg.Shards == 1,
		recSize:       obs.NewSizeHistogram(),
		coSize:        obs.NewSizeHistogram(),
		ackLat:        obs.NewLatencyHistogram(),
		roundDur:      obs.NewLatencyHistogram(),
		started:       time.Now(),
	}
	rt.ackLat.EnableExemplars()
	rt.roundDur.EnableExemplars()
	// Observability defaults mirror the single server: last 256 interesting
	// requests, 1 in 64 sampled, last 256 rounds profiled. Reconfigure with
	// SetTraceSampling / SetRoundProfiling before serving.
	rt.flight = obs.NewFlightRecorder(256, 64)
	rt.profiler = obs.NewRoundRecorder(256)
	rt.stragglerRounds = make([]atomic.Int64, cfg.Shards)
	rt.edges.Store(int64(g.NumEdges()))
	for s := 0; s < cfg.Shards; s++ {
		st := &shardState{id: s, c: &metrics.Counters{}}
		eng, err := inkstream.NewFromState(model, part.ShardGraph(g, s), base.Clone(), st.c, opts)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		if err := eng.SetPartitionLocal(part.LocalMask(s)); err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		eng.PublishSnapshot() // epoch 1: the bootstrapped state
		eng.SetRoundTiming(true)
		st.eng = eng
		rt.shards = append(rt.shards, st)
	}
	if !rt.fullBroadcast {
		if err := rt.initSubscriptions(); err != nil {
			return nil, err
		}
	}

	if cfg.WALDir != "" {
		if err := rt.recover(cfg.WALDir); err != nil {
			return nil, err
		}
		for s := range rt.shards {
			w, err := persist.OpenShardWAL(cfg.WALDir, s)
			if err != nil {
				return nil, err
			}
			rt.shards[s].wal = w
		}
	}

	// In-process time-series + burn-rate alerts: 1s resolution, 10-minute
	// window, evaluated per tick (flight.go).
	rt.sampler = obs.NewSampler(time.Second, 600)
	rt.alerts = obs.NewAlertEngine(rt.sampler)
	rt.runtime = obs.NewRuntime()
	rt.buildTimeseries()
	rt.sampler.Start()
	rt.reg = obs.NewRegistry()
	rt.buildRegistry()
	rt.submitCh = make(chan *request, 4*maxGroup)
	rt.roundCh = make(chan *round, 1)
	rt.quit = make(chan struct{})
	rt.wg.Add(2)
	go rt.routerLoop()
	go rt.applyLoop()
	return rt, nil
}

// directedReplica copies g's arcs into a directed graph — the router's
// private validation and routing view (shard sub-deltas are always
// directed, so validating the expanded delta here guarantees every shard
// apply succeeds).
func directedReplica(g *graph.Graph) *graph.Graph {
	r := graph.New(g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.OutNeighbors(graph.NodeID(u)) {
			if err := r.AddEdge(graph.NodeID(u), v); err != nil {
				panic("shard: directedReplica: " + err.Error())
			}
		}
	}
	return r
}

// NumShards returns the shard count.
func (rt *Router) NumShards() int { return len(rt.shards) }

// Registry exposes the router's /metrics registry.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// Corrupt reports whether a failed round has fail-stopped writes.
func (rt *Router) Corrupt() bool { return rt.corrupt.Load() }

// FailStop returns the forensics of the round that fail-stopped writes, or
// nil while the deployment is healthy. The record is immutable once set.
func (rt *Router) FailStop() *obs.FailStopInfo { return rt.failStop.Load() }

// failStopNow trips the corrupt latch and records which round failed and
// why, then (when the black box is armed) triggers an automatic incident
// capture. First failure wins: a second trip keeps the original record.
func (rt *Router) failStopNow(roundID uint64, err error) {
	info := &obs.FailStopInfo{Round: roundID, Err: err.Error(), Time: time.Now()}
	if rt.failStop.CompareAndSwap(nil, info) {
		rt.blackbox.Trigger("fail-stop", info.Err)
	}
	rt.corrupt.Store(true)
}

// Close stops the pipeline (failing queued requests with ErrRouterClosed)
// and closes the shard WALs.
func (rt *Router) Close() error {
	rt.closeOnce.Do(func() {
		rt.closeMu.Lock()
		rt.closed = true
		rt.closeMu.Unlock()
		close(rt.quit)
	})
	rt.wg.Wait()
	if rt.sampler != nil {
		rt.sampler.Stop()
	}
	// Drain queued incident captures (e.g. a fail-stop racing shutdown)
	// before the WALs close, so the bundle still lands on disk.
	rt.blackbox.Close()
	var errs []error
	for _, s := range rt.shards {
		if s.wal != nil {
			if err := s.wal.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// Apply submits one mutation batch (logical edge changes and/or vertex
// feature updates) and blocks until it is durable, applied on every owning
// shard, and visible in every shard's published snapshot — or rejected.
func (rt *Router) Apply(delta graph.Delta, vups []inkstream.VertexUpdate) error {
	return <-rt.ApplyAsync(delta, vups)
}

// ApplyAsync is Apply without the wait; the returned channel yields the
// outcome exactly once.
func (rt *Router) ApplyAsync(delta graph.Delta, vups []inkstream.VertexUpdate) <-chan error {
	done := make(chan error, 1)
	req := &request{
		delta:   rt.expand(delta),
		logical: len(delta),
		vups:    vups,
		done:    done,
		start:   time.Now(),
	}
	if f := rt.flight; f != nil {
		req.id = f.NextID()
		req.sampled = f.SampledID(req.id)
		if len(delta) == 0 && len(vups) > 0 {
			req.kind = "features"
		} else {
			req.kind = "update"
		}
	}
	rt.accepted.Add(1)
	rt.closeMu.RLock()
	if rt.closed {
		rt.closeMu.RUnlock()
		rt.finish(req, ErrRouterClosed, 0)
		return done
	}
	// A full submitCh blocks here, but never deadlocks: routerLoop keeps
	// draining and takes no locks, and Close's write lock just waits.
	rt.submitCh <- req
	rt.closeMu.RUnlock()
	return done
}

// expand turns a logical delta into directed arcs: undirected edges become
// both arc directions, each routed (later) to the shard owning its
// destination.
func (rt *Router) expand(delta graph.Delta) graph.Delta {
	if !rt.undirected || len(delta) == 0 {
		return delta
	}
	out := make(graph.Delta, 0, 2*len(delta))
	for _, ch := range delta {
		out = append(out,
			graph.EdgeChange{U: ch.U, V: ch.V, Insert: ch.Insert},
			graph.EdgeChange{U: ch.V, V: ch.U, Insert: ch.Insert})
	}
	return out
}

// ReadEmbedding resolves node's embedding against the owning shard's
// published snapshot, returning the row, the snapshot epoch it was read
// at, and whether the node exists. Lock-free; safe from any goroutine.
func (rt *Router) ReadEmbedding(node int) (tensor.Vector, uint64, bool) {
	if node < 0 || node >= rt.part.NumNodes() {
		return nil, 0, false
	}
	snap := rt.shards[rt.part.Owner(graph.NodeID(node))].eng.Snapshot()
	rt.reads.Add(1)
	return snap.Row(node), snap.Epoch, true
}

// Snapshots returns every shard's currently published snapshot, indexed by
// shard. Safe from any goroutine.
func (rt *Router) Snapshots() []*inkstream.Snapshot {
	out := make([]*inkstream.Snapshot, len(rt.shards))
	for i, s := range rt.shards {
		out[i] = s.eng.Snapshot()
	}
	return out
}

// epochs returns (min, max) published epoch across shards; the difference
// is the inter-shard epoch skew (transient while a round publishes).
func (rt *Router) epochs() (lo, hi uint64) {
	for i, s := range rt.shards {
		e := s.eng.Snapshot().Epoch
		if i == 0 || e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	return lo, hi
}

// ---------------------------------------------------------------------------
// Round formation (router goroutine).

// routerLoop drains the submit channel, validates each request against the
// replica, fuses compatible requests into rounds (a request conflicting
// with the open round — same canonical edge or same updated node — seals
// it first, the coalescing stall rule of DESIGN.md §9 at round
// granularity), journals each sealed round to every shard WAL, and hands
// it to the apply loop.
func (rt *Router) routerLoop() {
	defer rt.wg.Done()
	defer close(rt.roundCh)
	for {
		select {
		case req := <-rt.submitCh:
			group := append([]*request(nil), req)
		drain:
			for len(group) < maxGroup {
				select {
				case r := <-rt.submitCh:
					group = append(group, r)
				default:
					break drain
				}
			}
			rt.processGroup(group)
		case <-rt.quit:
			for {
				select {
				case req := <-rt.submitCh:
					rt.finish(req, ErrRouterClosed, 0)
				default:
					return
				}
			}
		}
	}
}

// openRound tracks the round under construction and its conflict keys.
type openRound struct {
	reqs   []*request
	edges  map[[2]graph.NodeID]struct{} // canonical logical edges touched
	nodes  map[graph.NodeID]struct{}    // vertices with a feature update
	opened time.Time                    // first request fused in (profiler anchor)
}

// canonArc canonicalises a directed arc to its logical edge key (sorted
// endpoints when the deployment is undirected, so both expansion arcs of
// one edge share a key).
func (rt *Router) canonArc(u, v graph.NodeID) [2]graph.NodeID {
	if rt.undirected && v < u {
		return [2]graph.NodeID{v, u}
	}
	return [2]graph.NodeID{u, v}
}

// conflicts reports whether req touches an edge or vertex the open round
// already touches — the condition under which fusing would collapse two
// sequential operations on the same object into one batch and change
// per-request semantics.
func (o *openRound) conflicts(rt *Router, req *request) bool {
	for _, ch := range req.delta {
		if _, hit := o.edges[rt.canonArc(ch.U, ch.V)]; hit {
			return true
		}
	}
	for _, up := range req.vups {
		if _, hit := o.nodes[up.Node]; hit {
			return true
		}
	}
	return false
}

func (o *openRound) add(rt *Router, req *request) {
	if len(o.reqs) == 0 && rt.profiler != nil {
		o.opened = time.Now()
	}
	o.reqs = append(o.reqs, req)
	for _, ch := range req.delta {
		o.edges[rt.canonArc(ch.U, ch.V)] = struct{}{}
	}
	for _, up := range req.vups {
		o.nodes[up.Node] = struct{}{}
	}
}

// processGroup forms and dispatches rounds from one drained request group.
func (rt *Router) processGroup(group []*request) {
	open := &openRound{
		edges: make(map[[2]graph.NodeID]struct{}),
		nodes: make(map[graph.NodeID]struct{}),
	}
	for _, req := range group {
		if rt.corrupt.Load() {
			rt.finish(req, ErrCorrupt, 0)
			continue
		}
		if len(open.reqs) > 0 && open.conflicts(rt, req) {
			rt.stalls.Add(1)
			rt.sealRound(open)
			open = &openRound{
				edges: make(map[[2]graph.NodeID]struct{}),
				nodes: make(map[graph.NodeID]struct{}),
			}
		}
		// Validate against the replica, which reflects every previously
		// sealed round. Requests fused into the open round touch disjoint
		// edges and vertices (the conflict rule), so their validity is
		// independent and the base replica is the right reference.
		if err := rt.validate(req); err != nil {
			rt.finish(req, err, 0)
			continue
		}
		open.add(rt, req)
	}
	if len(open.reqs) > 0 {
		rt.sealRound(open)
	}
}

// validate checks one request fully at the router so shard applies cannot
// fail: expanded delta against the directed replica, feature updates
// against the vertex space and model input dimension.
func (rt *Router) validate(req *request) error {
	if err := req.delta.Validate(rt.replica); err != nil {
		return err
	}
	seen := make(map[graph.NodeID]struct{}, len(req.vups))
	for i, up := range req.vups {
		if int(up.Node) < 0 || int(up.Node) >= rt.part.NumNodes() {
			return fmt.Errorf("shard: vertex update %d: %w (%d)", i, graph.ErrBadNode, up.Node)
		}
		if len(up.X) != rt.model.InDim() {
			return fmt.Errorf("shard: vertex update %d: feature dim %d, model wants %d", i, len(up.X), rt.model.InDim())
		}
		if _, dup := seen[up.Node]; dup {
			return fmt.Errorf("shard: vertex update %d: node %d updated twice in one batch", i, up.Node)
		}
		seen[up.Node] = struct{}{}
	}
	return nil
}

// sealRound splits the open round into per-shard sub-batches, journals it
// to every shard WAL (one record per shard per round, empty records
// included, keeping the WALs round-aligned), applies the expanded delta to
// the replica, and dispatches the round to the apply loop. On a journal
// error every request in the round fails and nothing is applied.
func (rt *Router) sealRound(open *openRound) {
	r := &round{reqs: open.reqs}
	n := len(rt.shards)
	r.subDelta = make([]graph.Delta, n)
	r.subVups = make([][]inkstream.VertexUpdate, n)
	id := rt.roundSeq.Add(1)
	for _, req := range open.reqs {
		req.round = id
	}
	if rt.profiler != nil {
		r.prof = &obs.RoundTrace{ID: id, Start: open.opened, Reqs: len(open.reqs)}
		for _, req := range open.reqs {
			r.prof.Edges += req.logical
			r.prof.VUps += len(req.vups)
		}
	}
	// Per-shard sub-deltas preserve round arrival order (request order,
	// expansion order within a request); per-target event order on each
	// shard then matches the single-engine order.
	for _, req := range open.reqs {
		for _, ch := range req.delta {
			s := rt.part.Owner(ch.V)
			r.subDelta[s] = append(r.subDelta[s], ch)
		}
	}
	// Round vertex updates are canonically sorted by node (duplicates are
	// impossible — the conflict rule seals on them), so layer-0 record
	// order is node order on every deployment shape.
	var vups []inkstream.VertexUpdate
	for _, req := range open.reqs {
		vups = append(vups, req.vups...)
	}
	sort.Slice(vups, func(i, j int) bool { return vups[i].Node < vups[j].Node })
	for _, up := range vups {
		s := rt.part.Owner(up.Node)
		r.subVups[s] = append(r.subVups[s], up)
	}

	if r.prof != nil {
		r.prof.Fuse = time.Since(open.opened)
	}
	jStart := time.Now()
	if err := rt.journalRound(r); err != nil {
		err = fmt.Errorf("shard: journal: %w", err)
		for _, req := range r.reqs {
			rt.finish(req, err, len(r.reqs))
		}
		return
	}
	if r.prof != nil {
		r.prof.Journal = time.Since(jStart)
	}
	for _, req := range open.reqs {
		if req.id != 0 {
			req.marks[obs.StageJournal] = time.Since(req.start)
		}
	}
	for _, req := range open.reqs {
		if err := req.delta.Apply(rt.replica); err != nil {
			// Validation guarantees this cannot happen; if it does the
			// replica and shards are out of sync — fail-stop.
			ferr := fmt.Errorf("shard: replica apply: %w", err)
			rt.failStopNow(id, ferr)
			for _, q := range r.reqs {
				rt.finish(q, ferr, len(r.reqs))
			}
			return
		}
		for _, ch := range req.delta {
			if !rt.undirected || ch.U < ch.V {
				if ch.Insert {
					rt.edges.Add(1)
				} else {
					rt.edges.Add(-1)
				}
			}
		}
	}

	r.sealed = time.Now()
	select {
	case rt.roundCh <- r:
	case <-rt.quit:
		for _, req := range r.reqs {
			rt.finish(req, ErrRouterClosed, len(r.reqs))
		}
	}
}

// journalRound group-commits the round to every shard WAL in parallel: one
// AppendBuffered+Commit per shard, covering every request in the round
// with one fsync per shard.
func (rt *Router) journalRound(r *round) error {
	if rt.shards[0].wal == nil {
		return nil
	}
	return rt.eachShard(func(i int, s *shardState) error {
		if err := s.wal.AppendBuffered(r.subDelta[i], r.subVups[i]); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if err := s.wal.Commit(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		return nil
	})
}

// ---------------------------------------------------------------------------
// Round execution (apply goroutine).

// applyLoop executes sealed rounds in order and acks their requests. A
// failed round (impossible after router-side validation, short of a bug or
// corrupted WAL) fail-stops the deployment for writes.
func (rt *Router) applyLoop() {
	defer rt.wg.Done()
	for r := range rt.roundCh {
		err := rt.executeRound(r)
		if err != nil {
			err = fmt.Errorf("shard: round apply failed, writes fail-stopped: %w", err)
			var id uint64
			if len(r.reqs) > 0 {
				id = r.reqs[0].round
			}
			rt.failStopNow(id, err)
		} else {
			rt.rounds.Add(1)
			rt.coSize.Observe(int64(len(r.reqs)))
			if r.prof != nil {
				rt.recordRound(r.prof)
			}
		}
		for _, req := range r.reqs {
			if err == nil && req.id != 0 {
				req.marks[obs.StageApply] = time.Since(req.start)
			}
			rt.finish(req, err, len(r.reqs))
		}
	}
}

// executeRound runs one BSP round. Multi-shard deployments use the
// subscription-filtered, boundary-first protocol (subscribe.go) unless
// FullBroadcast pins the legacy path; 1-shard deployments always broadcast
// (there is nothing to filter or overlap).
func (rt *Router) executeRound(r *round) error {
	if rt.fullBroadcast {
		return rt.executeRoundBroadcast(r)
	}
	return rt.executeRoundFiltered(r)
}

// runStage is eachShard plus per-shard wall-time capture when the round is
// profiled: each goroutine writes only its own durs slot, and the WaitGroup
// join orders those writes before addStage reads them.
func (rt *Router) runStage(prof *obs.RoundTrace, durs []time.Duration, f func(i int, s *shardState) error) error {
	if prof == nil {
		return rt.eachShard(f)
	}
	return rt.eachShard(func(i int, s *shardState) error {
		t0 := time.Now()
		err := f(i, s)
		durs[i] = time.Since(t0)
		return err
	})
}

// executeRoundBroadcast runs one BSP round in plain layer lockstep:
// BeginRound on every shard, then per layer a barrier-synchronised exchange
// — the node-sorted union of every shard's message-change records is
// broadcast to all shards, which refresh ghost rows and regenerate local
// fan-out — then FinishRound and a snapshot publish on every shard.
func (rt *Router) executeRoundBroadcast(r *round) error {
	n := len(rt.shards)
	prof := r.prof
	var durs []time.Duration
	if prof != nil {
		prof.Queue = time.Since(r.sealed)
		durs = make([]time.Duration, n)
	}
	var bcast time.Duration
	mergeTimed := func(outs [][]inkstream.MessageChange) []inkstream.MessageChange {
		if prof == nil {
			return rt.mergeRecords(outs)
		}
		t0 := time.Now()
		m := rt.mergeRecords(outs)
		bcast = time.Since(t0)
		return m
	}

	outs := make([][]inkstream.MessageChange, n)
	if err := rt.runStage(prof, durs, func(i int, s *shardState) error {
		recs, err := s.eng.BeginRound(r.subDelta[i], r.subVups[i])
		outs[i] = recs
		return err
	}); err != nil {
		return fmt.Errorf("begin: %w", err)
	}
	if prof != nil {
		rt.addStage(prof, "begin", durs, nil, 0, 0, 0)
	}
	merged := mergeTimed(outs)
	roundRecs := 0
	for l := 0; l < rt.model.NumLayers(); l++ {
		stageRecs, stageBytes := 0, int64(0)
		if n > 1 && len(merged) > 0 {
			// Boundary traffic: every record is delivered to the n-1 other
			// shards for ghost refresh and fan-out regeneration.
			roundRecs += len(merged) * (n - 1)
			rt.boundaryRecs.Add(int64(len(merged) * (n - 1)))
			var bytes int64
			for _, rec := range merged {
				bytes += int64(4 * (len(rec.Old) + len(rec.New)))
			}
			rt.boundaryBytes.Add(bytes * int64(n-1))
			stageRecs = len(merged) * (n - 1)
			stageBytes = bytes * int64(n-1)
		}
		layerBcast := bcast // merge time that produced this stage's records
		layer := l
		if err := rt.runStage(prof, durs, func(i int, s *shardState) error {
			recs, err := s.eng.RoundLayer(layer, merged)
			outs[i] = recs
			return err
		}); err != nil {
			return fmt.Errorf("layer %d: %w", l, err)
		}
		if n > 1 {
			for _, s := range rt.shards {
				rt.ghostRows.Add(int64(s.eng.LastStageStats().GhostRows))
			}
		}
		if prof != nil {
			rt.addStage(prof, "layer"+strconv.Itoa(l), durs, nil, stageRecs, stageBytes, layerBcast)
			prof.Records += stageRecs
			prof.Bytes += stageBytes
		}
		merged = mergeTimed(outs)
	}
	if n > 1 {
		rt.recSize.Observe(int64(roundRecs))
	}
	err := rt.runStage(prof, durs, func(i int, s *shardState) error {
		if err := s.eng.FinishRound(); err != nil {
			return err
		}
		s.eng.PublishSnapshot()
		return nil
	})
	if err == nil && prof != nil {
		// The trailing merge drained the last layer's (unconsumed) records;
		// attribute its cost to the publish stage.
		rt.addStage(prof, "publish", durs, nil, 0, 0, bcast)
	}
	return err
}

// addStage freezes one barrier stage into the round trace: per-shard compute
// from the stage timings, barrier wait as makespan − compute, and the
// engines' self-measured ghost/event/phase stats (written before each
// goroutine's WaitGroup release, so the post-barrier read is ordered).
// skipped marks shards whose layer call was elided by the idle-shard check:
// they are excluded from makespan and barrier attribution (an idle shard is
// not waiting — it has no work).
func (rt *Router) addStage(prof *obs.RoundTrace, name string, durs []time.Duration, skipped []bool, records int, bytes int64, broadcast time.Duration) {
	st := obs.RoundStageSpan{
		Name:      name,
		Records:   records,
		Bytes:     bytes,
		Broadcast: broadcast,
		Shards:    make([]obs.RoundShardSpan, len(durs)),
	}
	for i, d := range durs {
		if skipped != nil && skipped[i] {
			continue
		}
		if d > st.Makespan {
			st.Makespan = d
		}
	}
	for i, d := range durs {
		if skipped != nil && skipped[i] {
			st.Shards[i] = obs.RoundShardSpan{Skipped: true}
			continue
		}
		es := rt.shards[i].eng.LastStageStats()
		st.Shards[i] = obs.RoundShardSpan{
			Compute:   d,
			Barrier:   st.Makespan - d,
			Ghost:     es.Ghost,
			Events:    es.Events,
			Boundary:  es.Boundary,
			Interior:  es.Interior,
			GhostRows: es.GhostRows,
		}
	}
	prof.Stages = append(prof.Stages, st)
}

// mergeRecords merges the per-shard record lists into one list sorted by
// node. Each list is already node-sorted and a node's record is produced
// by exactly one shard (its owner), so a plain sort is deterministic; the
// structs are copied into the router-owned buffer because the inputs are
// engine scratch.
func (rt *Router) mergeRecords(outs [][]inkstream.MessageChange) []inkstream.MessageChange {
	merged := rt.recBuf[:0]
	for _, recs := range outs {
		merged = append(merged, recs...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Node < merged[j].Node })
	rt.recBuf = merged
	return merged
}

// eachShard runs f once per shard, in parallel for multi-shard
// deployments, and joins the errors.
func (rt *Router) eachShard(f func(i int, s *shardState) error) error {
	if len(rt.shards) == 1 {
		return f(0, rt.shards[0])
	}
	errs := make([]error, len(rt.shards))
	var wg sync.WaitGroup
	for i, s := range rt.shards {
		wg.Add(1)
		go func(i int, s *shardState) {
			defer wg.Done()
			errs[i] = f(i, s)
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// ---------------------------------------------------------------------------
// Recovery.

// recover replays the longest common round prefix of the per-shard WALs
// through the normal round-execution path (journaling skipped — the
// records are already durable) and mirrors the deltas into the replica.
// Torn tails and shards that lost their last rounds only shrink the
// prefix; surviving suffix records beyond it are ignored (they were never
// acked by every shard).
func (rt *Router) recover(dir string) error {
	perShard := make([][]persist.Batch, len(rt.shards))
	nRounds := -1
	for s := range rt.shards {
		batches, _, err := persist.ReadWAL(persist.ShardWALPath(dir, s))
		if err != nil {
			if os.IsNotExist(err) {
				// First boot (or a shard that never journaled): no history,
				// so the common round prefix is empty.
				nRounds = 0
				continue
			}
			return fmt.Errorf("shard %d: reading WAL: %w", s, err)
		}
		perShard[s] = batches
		if nRounds < 0 || len(batches) < nRounds {
			nRounds = len(batches)
		}
	}
	for i := 0; i < nRounds; i++ {
		r := &round{
			subDelta: make([]graph.Delta, len(rt.shards)),
			subVups:  make([][]inkstream.VertexUpdate, len(rt.shards)),
		}
		for s := range rt.shards {
			r.subDelta[s] = perShard[s][i].Delta
			r.subVups[s] = perShard[s][i].Vups
		}
		if err := rt.executeRound(r); err != nil {
			return fmt.Errorf("shard: replaying round %d: %w", i, err)
		}
		for s := range rt.shards {
			// The sub-deltas of one round route each arc to exactly one
			// shard, so their union replays cleanly onto the replica.
			if err := r.subDelta[s].Apply(rt.replica); err != nil {
				return fmt.Errorf("shard: replaying round %d into replica: %w", i, err)
			}
			for _, ch := range r.subDelta[s] {
				if !rt.undirected || ch.U < ch.V {
					if ch.Insert {
						rt.edges.Add(1)
					} else {
						rt.edges.Add(-1)
					}
				}
			}
		}
		rt.rounds.Add(1)
		rt.recovered.Add(1)
	}
	return nil
}
