package obs

import (
	"runtime"
	"testing"
	"time"
)

// TestRuntimeCollect: one collection populates every published quantity
// from live runtime/metrics — heap, goroutines, GC cycle count — and Stats
// forces a fresh read so a bundle captured between ticks is current.
func TestRuntimeCollect(t *testing.T) {
	r := NewRuntime()
	runtime.GC() // guarantee at least one completed cycle
	st := r.Stats()
	if st.Collects < 1 {
		t.Fatalf("collects = %d, want >= 1", st.Collects)
	}
	if st.HeapInuseBytes == 0 {
		t.Error("heap in-use is zero")
	}
	if st.MemTotalBytes < st.HeapInuseBytes {
		t.Errorf("total %d < heap %d", st.MemTotalBytes, st.HeapInuseBytes)
	}
	if st.Goroutines < 1 {
		t.Errorf("goroutines = %d", st.Goroutines)
	}
	if st.GCCycles < 1 {
		t.Errorf("gc cycles = %d, want >= 1 after runtime.GC", st.GCCycles)
	}
	if st.GCPauseMaxUS < st.GCPauseP99US || st.GCPauseP99US < st.GCPauseP50US {
		t.Errorf("pause quantiles not ordered: p50=%v p99=%v max=%v",
			st.GCPauseP50US, st.GCPauseP99US, st.GCPauseMaxUS)
	}
}

// TestRuntimeDisabled: SetEnabled(false) turns Collect into a no-op — the
// zero-overhead off-path the overhead gate benchmarks.
func TestRuntimeDisabled(t *testing.T) {
	r := NewRuntime()
	r.SetEnabled(false)
	r.Collect()
	if got := r.collects.Load(); got != 0 {
		t.Fatalf("disabled collector ran %d collections", got)
	}
	r.SetEnabled(true)
	r.Collect()
	if got := r.collects.Load(); got != 1 {
		t.Fatalf("re-enabled collector ran %d collections, want 1", got)
	}
}

// TestGCPauseOverlap: the overlap query returns the pause time inside the
// request window, using synthetic windows for determinism.
func TestGCPauseOverlap(t *testing.T) {
	r := NewRuntime()
	base := time.Unix(1000, 0)
	r.setPauseWindows([]GCPauseWindow{
		{Start: base, End: base.Add(2 * time.Millisecond)},
		{Start: base.Add(10 * time.Millisecond), End: base.Add(13 * time.Millisecond)},
	})
	cases := []struct {
		name       string
		start, end time.Time
		want       time.Duration
	}{
		{"covers both", base.Add(-time.Millisecond), base.Add(20 * time.Millisecond), 5 * time.Millisecond},
		{"first only", base, base.Add(2 * time.Millisecond), 2 * time.Millisecond},
		{"partial second", base.Add(11 * time.Millisecond), base.Add(12 * time.Millisecond), time.Millisecond},
		{"between pauses", base.Add(3 * time.Millisecond), base.Add(9 * time.Millisecond), 0},
		{"before all", base.Add(-10 * time.Millisecond), base.Add(-5 * time.Millisecond), 0},
	}
	for _, c := range cases {
		if got := r.GCPauseOverlap(c.start, c.end); got != c.want {
			t.Errorf("%s: overlap = %v, want %v", c.name, got, c.want)
		}
	}
	// Nil-safety: a server without the runtime plane annotates zero.
	var nilR *Runtime
	if got := nilR.GCPauseOverlap(base, base.Add(time.Second)); got != 0 {
		t.Errorf("nil runtime overlap = %v", got)
	}
}

// TestRuntimeInstall: the sampler series exist after Install and carry live
// values after a tick.
func TestRuntimeInstall(t *testing.T) {
	r := NewRuntime()
	s := NewSampler(time.Second, 16)
	r.Install(s)
	s.Tick()
	s.Tick()
	snap := s.Snapshot()
	want := map[string]bool{
		"heap_mb": false, "goroutines": false, "gc_cpu_pct": false,
		"gc_pause_ms": false, "sched_p99_ms": false,
	}
	for _, series := range snap.Series {
		if _, ok := want[series.Name]; ok {
			want[series.Name] = true
			if len(series.Samples) != 2 {
				t.Errorf("%s: %d samples, want 2", series.Name, len(series.Samples))
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("series %s not installed", name)
		}
	}
	// heap_mb must be a real (positive) reading.
	var heap []float64
	for _, series := range snap.Series {
		if series.Name == "heap_mb" {
			heap = series.Samples
		}
	}
	if len(heap) == 0 || heap[len(heap)-1] <= 0 {
		t.Errorf("heap_mb samples = %v, want positive", heap)
	}
}
