package obs

// PageCacheStats is a point-in-time snapshot of a paged row store's cache
// counters. It lives in obs (rather than persist) so the HTTP server can
// register metric families and render /v1/stats without depending on the
// storage package, mirroring how the journal is injected as an interface.
type PageCacheStats struct {
	// Hits counts row reads served from a resident page payload.
	Hits uint64 `json:"hits"`
	// Misses counts row reads that had to fault the page in from disk.
	Misses uint64 `json:"misses"`
	// Evictions counts page payloads dropped by the clock sweep.
	Evictions uint64 `json:"evictions"`
	// Writebacks counts page generations persisted to the spill file.
	Writebacks uint64 `json:"writebacks"`
	// WriteErrors counts failed spill-file writes (the frame stays dirty
	// and resident; a growing count means the disk is unhealthy).
	WriteErrors uint64 `json:"write_errors"`
	// HotBytes is the resident payload footprint; CapBytes the configured
	// soft cap (0 = uncapped).
	HotBytes int64 `json:"hot_bytes"`
	CapBytes int64 `json:"cap_bytes"`
	// HotPages/TotalPages describe the resident fraction of the page set.
	HotPages   int `json:"hot_pages"`
	TotalPages int `json:"total_pages"`
}

// HitRate returns hits/(hits+misses), or 1 when no reads happened.
func (s PageCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 1
	}
	return float64(s.Hits) / float64(total)
}
