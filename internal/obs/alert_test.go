package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// alertHarness is a sampler whose single series replays a scripted value
// sequence, with an engine evaluating one rule over it.
type alertHarness struct {
	sampler *Sampler
	engine  *AlertEngine
	value   float64
}

func newAlertHarness(rules ...AlertRule) *alertHarness {
	h := &alertHarness{sampler: NewSampler(time.Second, 64)}
	h.sampler.Gauge("lat_ms", func() float64 { return h.value })
	h.engine = NewAlertEngine(h.sampler)
	h.engine.SetRules(rules...)
	return h
}

func (h *alertHarness) tick(v float64) { h.value = v; h.sampler.Tick() }

func (h *alertHarness) state(t *testing.T, name string) string {
	t.Helper()
	for _, a := range h.engine.Status().Alerts {
		if a.Name == name {
			return a.State
		}
	}
	t.Fatalf("alert %q not in status", name)
	return ""
}

func TestAlertEngineLifecycle(t *testing.T) {
	// One window of 4 ticks, burn limit 1 at objective 0.5: breached when
	// more than half the window's ticks exceed 10. ForTicks 2 → a pending
	// alert needs 3 consecutive breached evals (1 entering + 2 held) to fire.
	h := newAlertHarness(AlertRule{
		Name: "lat", Series: "lat_ms", Target: 10, Objective: 0.5,
		Windows:  []BurnWindow{{Ticks: 4, MaxBurn: 1}},
		ForTicks: 2,
	})

	h.tick(1)
	if got := h.state(t, "lat"); got != "inactive" {
		t.Fatalf("after quiet tick: %s", got)
	}
	// Bad ticks fill the window; the first breaching eval (error fraction
	// over half the budgeted rate) moves the alert to pending, and the
	// third consecutive breach promotes it to firing.
	h.tick(99)
	h.tick(99)
	if got := h.state(t, "lat"); got != "pending" {
		t.Fatalf("after 2 bad ticks: %s", got)
	}
	h.tick(99)
	if got := h.state(t, "lat"); got != "pending" {
		t.Fatalf("pending should hold for ForTicks evals: %s", got)
	}
	h.tick(99)
	if got := h.state(t, "lat"); got != "firing" {
		t.Fatalf("after 4 bad ticks: %s", got)
	}
	if firing := h.engine.Firing(); len(firing) != 1 || firing[0] != "lat" {
		t.Fatalf("Firing = %v", firing)
	}
	if reasons := h.engine.FiringReasons(); len(reasons) != 1 || !strings.Contains(reasons[0], "lat_ms") {
		t.Fatalf("FiringReasons = %v", reasons)
	}

	// Recovery: the window drains below the burn limit → resolved, then
	// after hold (longest window = 4) clear evals → inactive.
	for i := 0; i < 3; i++ {
		h.tick(1)
	}
	if got := h.state(t, "lat"); got != "resolved" {
		t.Fatalf("after recovery ticks: %s", got)
	}
	if len(h.engine.Firing()) != 0 {
		t.Fatalf("Firing after resolve = %v", h.engine.Firing())
	}
	for i := 0; i < 4; i++ {
		h.tick(1)
	}
	if got := h.state(t, "lat"); got != "inactive" {
		t.Fatalf("after hold: %s", got)
	}
}

func TestAlertEngineRefire(t *testing.T) {
	h := newAlertHarness(AlertRule{
		Name: "lat", Series: "lat_ms", Target: 10, Objective: 0.5,
		Windows: []BurnWindow{{Ticks: 2, MaxBurn: 1}},
	})
	h.tick(99)
	h.tick(99) // both window ticks bad: burn 2 > 1 → pending → firing
	if got := h.state(t, "lat"); got != "firing" {
		t.Fatalf("want firing, got %s", got)
	}
	h.tick(1)
	if got := h.state(t, "lat"); got != "resolved" {
		t.Fatalf("want resolved, got %s", got)
	}
	h.tick(99)
	h.tick(99) // re-breach while resolved goes straight back to firing
	if got := h.state(t, "lat"); got != "firing" {
		t.Fatalf("want re-fired, got %s", got)
	}
}

func TestAlertEngineMultiWindowGate(t *testing.T) {
	// A lone bad tick can push the short window's burn up, but the long
	// window (8 ticks) must also burn past its limit before the rule
	// counts as breached — the multi-window gate against blips.
	h := newAlertHarness(AlertRule{
		Name: "lat", Series: "lat_ms", Target: 10, Objective: 0.5,
		Windows: []BurnWindow{{Ticks: 8, MaxBurn: 1}, {Ticks: 2, MaxBurn: 1}},
	})
	for i := 0; i < 5; i++ {
		h.tick(1)
	}
	h.tick(99)
	if got := h.state(t, "lat"); got != "inactive" {
		t.Fatalf("short-window-only breach should not trip the rule: %s", got)
	}
	// Sustained breach fills the long window too.
	for i := 0; i < 6; i++ {
		h.tick(99)
	}
	if got := h.state(t, "lat"); got != "firing" {
		t.Fatalf("sustained breach: %s", got)
	}
}

func TestAlertEngineStatusAndServeHTTP(t *testing.T) {
	h := newAlertHarness(DefaultBurnRateRules("lat_ms", 10)...)
	for i := 0; i < 20; i++ {
		h.tick(99)
	}
	st := h.engine.Status()
	if len(st.Alerts) != 2 || st.Evals != 20 {
		t.Fatalf("status = %+v", st)
	}
	// The fast rule (12/60-tick windows, burn limit 10 at objective 0.99:
	// every tick bad → burn 100) must be firing; it is the first rule.
	if st.Alerts[0].Name != "lat_ms-slo-fast" || st.Alerts[0].State != "firing" {
		t.Fatalf("fast rule = %+v", st.Alerts[0])
	}
	if st.Firing < 1 {
		t.Fatalf("firing count = %d", st.Firing)
	}
	for _, w := range st.Alerts[0].Windows {
		if w.Burn <= w.MaxBurn {
			t.Fatalf("window %d burn %v not over limit %v", w.Ticks, w.Burn, w.MaxBurn)
		}
	}

	rec := httptest.NewRecorder()
	h.engine.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/alerts", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var body AlertsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Alerts) != 2 || body.Alerts[0].Series != "lat_ms" {
		t.Fatalf("body = %+v", body)
	}
}

func TestAlertEngineMetrics(t *testing.T) {
	h := newAlertHarness(AlertRule{
		Name: "lat", Series: "lat_ms", Target: 10, Objective: 0.5,
		Windows: []BurnWindow{{Ticks: 2, MaxBurn: 1}},
	})
	reg := NewRegistry()
	h.engine.Register(reg)
	h.tick(99)
	h.tick(99)

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := samples.Get("inkstream_alerts_firing"); !ok || got != 1 {
		t.Fatalf("alerts_firing = %v (ok=%v)", got, ok)
	}
	if got, ok := samples.Get("inkstream_alert_evals_total"); !ok || got != 2 {
		t.Fatalf("evals = %v (ok=%v)", got, ok)
	}
	states := samples.Family("inkstream_alert_state")
	if len(states) != 1 || states[0].Value != float64(AlertFiring) {
		t.Fatalf("alert_state = %+v", states)
	}
	burns := samples.Family("inkstream_alert_burn_rate")
	if len(burns) != 1 || burns[0].Value <= 1 {
		t.Fatalf("burn_rate = %+v", burns)
	}
}
