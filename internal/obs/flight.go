package obs

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"
)

// Flight recorder: request-scoped pipeline traces (DESIGN.md §10).
//
// The per-update Trace resolves where one Engine.Apply spent its time, but
// a served request's latency is dominated by everything *around* the apply:
// queueing behind the in-flight group, the WAL group commit, the coalescing
// absorb window, snapshot publication and the acknowledgement handoff. A
// ReqTrace timestamps each of those stages for one request travelling the
// single-writer pipeline, and the FlightRecorder keeps the last N
// interesting requests (sampled, slow or failed) in a lock-free ring so a
// fat p99 bucket can be resolved to a concrete request after the fact.

// Stage enumerates the pipeline stages a request passes through. Marks are
// cumulative offsets from submit time; a zero mark means the stage was
// never reached (op requests skip the journal, failed requests skip apply).
type Stage int

const (
	// StageJournal: the request's group commit returned (durability point).
	StageJournal Stage = iota
	// StageCoalesce: the apply stage absorbed the request into the open
	// fused batch (or picked it up for a non-coalesced apply).
	StageCoalesce
	// StageApply: the Engine.Apply covering the request returned.
	StageApply
	// StagePublish: the snapshot covering the request was published.
	StagePublish
	// StageAck: the outcome was delivered to the waiting caller.
	StageAck
	// StageCount sizes per-request mark arrays.
	StageCount
)

var stageNames = [StageCount]string{"journal", "coalesce", "apply", "publish", "ack"}

func (s Stage) String() string {
	if s >= 0 && int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage%d", int(s))
}

// ReqTrace is the flight record of one pipeline request. Fields are written
// by the pipeline stages while the request is in flight and frozen before
// the trace is recorded; readers only ever see recorded (immutable) traces.
type ReqTrace struct {
	// ID is the request's trace ID, assigned at submit. Rendered as 16 hex
	// digits everywhere (exemplars, /v1/traces) so the two can be joined.
	ID uint64
	// Kind is "update", "features" or "op".
	Kind string
	// Start is the submit wall-clock time.
	Start time.Time
	// Edges and VUps size the request's batch; Fused is the number of
	// requests in the engine batch this request was applied in (1 when
	// applied alone).
	Edges, VUps int
	Fused       int
	// Marks holds cumulative stage offsets from Start; zero = not reached.
	Marks [StageCount]time.Duration
	// Total is the submit→ack latency.
	Total time.Duration
	// Err is the failure delivered to the caller ("" on success).
	Err string
	// Round is the BSP round the request was fused into (partitioned
	// deployments only; 0 = not round-executed). Matches a RoundTrace.ID,
	// so /v1/traces rows can be joined against /v1/rounds.
	Round uint64
	// GCPause is the total stop-the-world GC pause time that overlapped the
	// request's submit→ack window (0 when none did, or when runtime
	// telemetry is disabled) — the annotation that resolves an ack-latency
	// exemplar landing in a fat bucket to "the runtime froze the pipeline",
	// not "the application was slow".
	GCPause time.Duration
	// Sampled and Slow report why the trace was recorded.
	Sampled, Slow bool
	// Engine is the engine-side per-layer trace of the apply that covered
	// this request (cloned; only attached to sampled/slow requests).
	Engine *Trace
}

// Span is one named stage duration of a request (the difference between
// consecutive reached marks).
type Span struct {
	Stage Stage
	D     time.Duration
}

// Spans resolves the cumulative marks into per-stage durations, skipping
// stages the request never reached. The first reached stage's span counts
// from submit, so queue wait is attributed to the stage that drained it.
func (t *ReqTrace) Spans() []Span {
	out := make([]Span, 0, StageCount)
	prev := time.Duration(0)
	for s := Stage(0); s < StageCount; s++ {
		m := t.Marks[s]
		if s == StageAck && m == 0 && t.Total > 0 {
			m = t.Total
		}
		if m == 0 {
			continue
		}
		out = append(out, Span{Stage: s, D: m - prev})
		prev = m
	}
	return out
}

// SlowestStage names the stage the request spent the most time in — the
// one-line answer to "where did this slow update go".
func (t *ReqTrace) SlowestStage() (Stage, time.Duration) {
	spans := t.Spans()
	if len(spans) == 0 {
		return StageAck, 0
	}
	best := spans[0]
	for _, sp := range spans[1:] {
		if sp.D > best.D {
			best = sp
		}
	}
	return best.Stage, best.D
}

// TraceIDString renders a trace ID the way exemplars and /v1/traces do.
func TraceIDString(id uint64) string { return fmt.Sprintf("%016x", id) }

type spanJSONEntry struct {
	Stage string  `json:"stage"`
	US    float64 `json:"us"`
}

type reqTraceJSON struct {
	TraceID      string          `json:"trace_id"`
	Kind         string          `json:"kind"`
	Start        time.Time       `json:"start"`
	Edges        int             `json:"edges,omitempty"`
	VUps         int             `json:"vertex_updates,omitempty"`
	Fused        int             `json:"fused,omitempty"`
	RoundID      string          `json:"round_id,omitempty"`
	TotalUS      float64         `json:"total_us"`
	Spans        []spanJSONEntry `json:"spans"`
	SlowestStage string          `json:"slowest_stage"`
	GCPauseUS    float64         `json:"gc_pause_us,omitempty"`
	Err          string          `json:"error,omitempty"`
	Sampled      bool            `json:"sampled,omitempty"`
	Slow         bool            `json:"slow,omitempty"`
	Engine       *Trace          `json:"engine,omitempty"`
}

// MarshalJSON renders the request trace for GET /v1/traces.
func (t *ReqTrace) MarshalJSON() ([]byte, error) {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	slowest, _ := t.SlowestStage()
	out := reqTraceJSON{
		TraceID:      TraceIDString(t.ID),
		Kind:         t.Kind,
		Start:        t.Start,
		Edges:        t.Edges,
		VUps:         t.VUps,
		Fused:        t.Fused,
		TotalUS:      us(t.Total),
		SlowestStage: slowest.String(),
		GCPauseUS:    us(t.GCPause),
		Err:          t.Err,
		Sampled:      t.Sampled,
		Slow:         t.Slow,
		Engine:       t.Engine,
	}
	if t.Round != 0 {
		out.RoundID = TraceIDString(t.Round)
	}
	for _, sp := range t.Spans() {
		out.Spans = append(out.Spans, spanJSONEntry{Stage: sp.Stage.String(), US: us(sp.D)})
	}
	return json.Marshal(out)
}

// String renders one structured log line:
//
//	req 000000000000002a update dG=3 fused=8 total=312µs slowest=apply journal=12µs coalesce=4µs apply=280µs …
func (t *ReqTrace) String() string {
	slowest, _ := t.SlowestStage()
	s := fmt.Sprintf("req %s %s dG=%d vups=%d fused=%d total=%v slowest=%s",
		TraceIDString(t.ID), t.Kind, t.Edges, t.VUps, t.Fused,
		t.Total.Round(time.Microsecond), slowest)
	if t.Round != 0 {
		s += " round=" + TraceIDString(t.Round)
	}
	if t.GCPause > 0 {
		s += fmt.Sprintf(" gc_pause=%v", t.GCPause.Round(time.Microsecond))
	}
	for _, sp := range t.Spans() {
		s += fmt.Sprintf(" %s=%v", sp.Stage, sp.D.Round(time.Microsecond))
	}
	if t.Err != "" {
		s += " err=" + t.Err
	}
	return s
}

// FlightRecorder keeps the last N recorded request traces in a lock-free
// ring: Record is an atomic counter bump plus one atomic pointer store, and
// readers snapshot the slots without blocking writers. IDs are assigned to
// every request (one atomic add); whether a request is *recorded* is decided
// at ack time — sampled (1 in SampleEvery by ID), slow, or failed — so the
// steady-state cost of an unrecorded request is a handful of time.Now calls
// and two atomic adds.
type FlightRecorder struct {
	sampleEvery uint64
	slow        atomic.Int64 // ns; 0 disables the slow criterion
	seq         atomic.Uint64
	widx        atomic.Uint64
	slots       []atomic.Pointer[ReqTrace]
	recorded    atomic.Int64
}

// NewFlightRecorder builds a recorder holding the last size traces,
// sampling one request in sampleEvery by trace ID (0 disables sampling;
// slow and failed requests are still recorded).
func NewFlightRecorder(size, sampleEvery int) *FlightRecorder {
	if size < 1 {
		size = 1
	}
	f := &FlightRecorder{slots: make([]atomic.Pointer[ReqTrace], size)}
	if sampleEvery > 0 {
		f.sampleEvery = uint64(sampleEvery)
	}
	return f
}

// NextID assigns the next trace ID (starting at 1).
func (f *FlightRecorder) NextID() uint64 { return f.seq.Add(1) }

// SampledID reports whether the ID falls in the 1-in-SampleEvery sample.
func (f *FlightRecorder) SampledID(id uint64) bool {
	return f.sampleEvery > 0 && id%f.sampleEvery == 0
}

// SampleEvery returns the sampling divisor (0 = sampling disabled).
func (f *FlightRecorder) SampleEvery() int { return int(f.sampleEvery) }

// SetSlowThreshold marks requests at or above d as slow (always recorded,
// with the engine trace attached). Safe to call at any time.
func (f *FlightRecorder) SetSlowThreshold(d time.Duration) { f.slow.Store(d.Nanoseconds()) }

// SlowThreshold returns the current slow-request threshold.
func (f *FlightRecorder) SlowThreshold() time.Duration {
	return time.Duration(f.slow.Load())
}

// IsSlow reports whether a request of the given total latency counts as slow.
func (f *FlightRecorder) IsSlow(total time.Duration) bool {
	t := f.slow.Load()
	return t > 0 && total.Nanoseconds() >= t
}

// Record publishes one finished trace into the ring. The trace must not be
// mutated afterwards. Safe for concurrent callers.
func (f *FlightRecorder) Record(t *ReqTrace) {
	i := f.widx.Add(1) - 1
	f.slots[i%uint64(len(f.slots))].Store(t)
	f.recorded.Add(1)
}

// Recorded returns the number of traces recorded so far (including those
// already evicted from the ring).
func (f *FlightRecorder) Recorded() int64 { return f.recorded.Load() }

// Traces snapshots the ring, newest first. The returned traces are
// immutable; the slice is freshly allocated.
func (f *FlightRecorder) Traces() []*ReqTrace {
	n := uint64(len(f.slots))
	w := f.widx.Load()
	out := make([]*ReqTrace, 0, n)
	count := w
	if count > n {
		count = n
	}
	for k := uint64(1); k <= count; k++ {
		if t := f.slots[(w-k)%n].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}
