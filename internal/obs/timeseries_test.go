package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Ticks are driven manually throughout: the background ticker is exercised
// only by TestSamplerStartStop, everything else stays deterministic.

func TestSamplerCounterRate(t *testing.T) {
	s := NewSampler(time.Second, 8)
	var total atomic.Int64
	s.Counter("upd_per_s", func() float64 { return float64(total.Load()) })

	s.Tick() // priming tick reports 0
	total.Store(10)
	s.Tick() // 10 in 1s
	total.Store(10)
	s.Tick()       // quiet second
	total.Store(5) // counter reset (restart): clamp to 0, not negative
	s.Tick()

	snap := s.Snapshot()
	if len(snap.Series) != 1 || snap.Series[0].Name != "upd_per_s" {
		t.Fatalf("series: %+v", snap.Series)
	}
	want := []float64{0, 10, 0, 0}
	got := snap.Series[0].Samples
	if len(got) != len(want) {
		t.Fatalf("samples %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSamplerGaugeAndWindow(t *testing.T) {
	s := NewSampler(time.Second, 3)
	v := 0.0
	s.Gauge("epoch", func() float64 { v++; return v })
	for i := 0; i < 5; i++ {
		s.Tick()
	}
	snap := s.Snapshot()
	if snap.Ticks != 5 {
		t.Errorf("ticks %d", snap.Ticks)
	}
	// Window keeps the newest 3, oldest first.
	want := []float64{3, 4, 5}
	got := snap.Series[0].Samples
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("window %v, want %v", got, want)
			break
		}
	}
	if last, ok := s.Last("epoch"); !ok || last != 5 {
		t.Errorf("Last = %v ok=%v", last, ok)
	}
	if _, ok := s.Last("missing"); ok {
		t.Error("Last found a missing series")
	}
	// MaxRecent over more samples than retained clamps to the window.
	if m, ok := s.MaxRecent("epoch", 10); !ok || m != 5 {
		t.Errorf("MaxRecent = %v ok=%v", m, ok)
	}
}

func TestSamplerHistQuantileWindowed(t *testing.T) {
	s := NewSampler(time.Second, 8)
	h := NewLatencyHistogram()
	s.HistQuantile("p99_ms", h, 0.99, 1e-6)

	s.Tick() // empty window → 0
	for i := 0; i < 100; i++ {
		h.ObserveDuration(time.Millisecond)
	}
	s.Tick()
	s.Tick() // no new observations → 0 again
	for i := 0; i < 100; i++ {
		h.ObserveDuration(16 * time.Millisecond)
	}
	s.Tick()

	got := s.Snapshot().Series[0].Samples
	if got[0] != 0 || got[2] != 0 {
		t.Errorf("quiet ticks nonzero: %v", got)
	}
	// Tick 1 saw only ~1ms observations, tick 3 only ~16ms: the windowed p99
	// must track each window, not the cumulative mix.
	if got[1] <= 0 || got[1] > 4 {
		t.Errorf("tick1 p99 %.3fms, want ~1-2ms", got[1])
	}
	if got[3] < 8 {
		t.Errorf("tick3 p99 %.3fms, want >= 8ms (windowed, not cumulative)", got[3])
	}
}

// TestSamplerTickAllocs: steady-state ticks must not allocate (the sampler
// runs for the process lifetime at 1s resolution).
func TestSamplerTickAllocs(t *testing.T) {
	s := NewSampler(time.Second, 16)
	h := NewLatencyHistogram()
	var c atomic.Int64
	s.Counter("c", func() float64 { return float64(c.Load()) })
	s.Gauge("g", func() float64 { return 1 })
	s.HistQuantile("q", h, 0.99, 1e-6)
	s.Tick() // prime counter/quantile scratch
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(3)
		h.Observe(1000)
		s.Tick()
	})
	if allocs > 0 {
		t.Errorf("Tick allocates %.1f per run, want 0", allocs)
	}
}

func TestSamplerStartStop(t *testing.T) {
	s := NewSampler(time.Millisecond, 64)
	s.Gauge("g", func() float64 { return 1 })
	s.Start()
	deadline := time.Now().Add(time.Second)
	for s.Snapshot().Ticks < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
	if got := s.Snapshot().Ticks; got < 3 {
		t.Errorf("background ticker produced %d ticks", got)
	}
	// Stop without Start must not hang.
	s2 := NewSampler(time.Second, 4)
	done := make(chan struct{})
	go func() { s2.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop without Start hangs")
	}
}

// TestSamplerConcurrent: ticks race snapshots and reads under -race.
func TestSamplerConcurrent(t *testing.T) {
	s := NewSampler(time.Second, 8)
	var c atomic.Int64
	s.Counter("c", func() float64 { return float64(c.Load()) })
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			c.Add(1)
			s.Tick()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			s.Snapshot()
			s.Last("c")
			s.MaxRecent("c", 4)
		}
	}()
	wg.Wait()
}
