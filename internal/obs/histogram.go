package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket, log2-spaced histogram safe for concurrent
// writers. Observe is lock-free and allocation-free: one shift-based bucket
// index plus four atomic adds, cheap enough for the engine's per-update hot
// path. Values are unitless int64s; latency histograms store nanoseconds
// and are rescaled to seconds at exposition time (see Registry.Histogram).
//
// Buckets double from a minimum power-of-two bound: bucket i covers
// (bounds[i-1], bounds[i]], bucket 0 covers [0, bounds[0]], and one
// overflow bucket catches everything above the last bound (the +Inf bucket
// of the Prometheus exposition).
type Histogram struct {
	minLog uint    // bounds[0] == 1<<minLog
	bounds []int64 // finite upper bounds, immutable after construction

	counts []atomic.Int64 // len(bounds)+1; last slot is +Inf
	sum    atomic.Int64
	max    atomic.Int64

	// ex holds one exemplar per bucket (last sampled observation that
	// landed there, with its trace ID); nil until EnableExemplars.
	ex []atomic.Pointer[Exemplar]
}

// Exemplar links one concrete observation to the trace that produced it —
// the OpenMetrics-style breadcrumb that resolves a fat histogram bucket to
// a /v1/traces entry. Value is in the histogram's stored unit.
type Exemplar struct {
	Value   int64
	TraceID uint64
}

// NewHistogram builds a histogram whose finite buckets span [min, max]:
// min is rounded up to a power of two and bounds double until they reach
// max. Panics on non-positive arguments or min > max (a construction-time
// programming error, never a runtime condition).
func NewHistogram(min, max int64) *Histogram {
	if min <= 0 || max < min {
		panic(fmt.Sprintf("obs: bad histogram range [%d, %d]", min, max))
	}
	minLog := uint(bits.Len64(uint64(min - 1))) // round up to power of two
	var bounds []int64
	for b := int64(1) << minLog; ; b <<= 1 {
		bounds = append(bounds, b)
		if b >= max || b >= 1<<62 {
			break
		}
	}
	return &Histogram{
		minLog: minLog,
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// NewLatencyHistogram covers ~1µs to ~68s of nanosecond observations in 27
// buckets — the full range between InkStream's instantaneous updates and a
// pathological full-graph-sized recompute.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(1<<10, int64(68*time.Second))
}

// NewSizeHistogram covers counts from 1 to ~1M in 21 buckets (batch sizes,
// event counts, affected-area sizes).
func NewSizeHistogram() *Histogram {
	return NewHistogram(1, 1<<20)
}

// bucketIndex returns the slot for value v (v < 0 observes as 0).
func (h *Histogram) bucketIndex(v int64) int {
	if v <= h.bounds[0] {
		return 0
	}
	i := bits.Len64(uint64(v-1)) - int(h.minLog)
	if i >= len(h.bounds) {
		return len(h.bounds) // +Inf overflow slot
	}
	return i
}

// Observe records one value. Safe for any number of concurrent callers;
// nil-safe so call sites need no guard when observability is disabled.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[h.bucketIndex(v)].Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// ObserveDuration records a latency in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// ObserveN records value v n times in one pass — three atomic adds instead
// of n Observe calls. The runtime bridge uses it to fold whole buckets of
// the stdlib's cumulative histograms (scheduler latencies arrive thousands
// per tick under load). n <= 0 is a no-op.
func (h *Histogram) ObserveN(v, n int64) {
	if h == nil || n <= 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[h.bucketIndex(v)].Add(n)
	h.sum.Add(v * n)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// EnableExemplars allocates the per-bucket exemplar slots. Call once at
// wiring time, before concurrent use; Exemplar stores are no-ops until
// then, so unexemplared histograms pay nothing.
func (h *Histogram) EnableExemplars() {
	if h.ex == nil {
		h.ex = make([]atomic.Pointer[Exemplar], len(h.counts))
	}
}

// Exemplar attaches a trace ID to the bucket covering v — typically called
// for the sampled subset of observations, *in addition to* the Observe that
// already counted the value. One small allocation per call; sample at the
// call site. Nil-safe and a no-op unless EnableExemplars was called.
func (h *Histogram) Exemplar(v int64, traceID uint64) {
	if h == nil || h.ex == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.ex[h.bucketIndex(v)].Store(&Exemplar{Value: v, TraceID: traceID})
}

// Sum returns the running sum of all observations (in the stored unit)
// without copying buckets — the allocation-free read periodic samplers use.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// LoadCounts copies the live per-bucket counts into dst, which must have
// NumBuckets slots, and returns the tracked maximum — the allocation-free
// sibling of Snapshot for callers that own a reusable scratch buffer.
func (h *Histogram) LoadCounts(dst []int64) (max int64) {
	for i := range h.counts {
		dst[i] = h.counts[i].Load()
	}
	return h.max.Load()
}

// NumBuckets returns the number of count slots (finite buckets plus +Inf).
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// HistSnapshot is an immutable copy of a histogram's state. Count is
// derived from the copied buckets, so sum-of-buckets == Count holds exactly
// within one snapshot even while writers race the copy; Sum and Max are
// loaded alongside and may run marginally ahead of the buckets.
type HistSnapshot struct {
	Bounds []int64 // finite upper bounds (shared with the histogram; read-only)
	Counts []int64 // per-bucket counts; len(Bounds)+1, last is +Inf
	Count  int64
	Sum    int64
	Max    int64
	// Exemplars holds the per-bucket exemplar pointers (nil entries for
	// buckets without one); nil unless the histogram has exemplars enabled.
	Exemplars []*Exemplar
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
		Max:    h.max.Load(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	if h.ex != nil {
		s.Exemplars = make([]*Exemplar, len(h.ex))
		for i := range h.ex {
			s.Exemplars[i] = h.ex[i].Load()
		}
	}
	return s
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear interpolation
// inside the bucket holding the nearest-rank observation; the overflow
// bucket resolves to the tracked exact maximum. Returns 0 for an empty
// snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) || rank == 0 {
		rank++ // ceil, min rank 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i, c := range s.Counts {
		if cum+c < rank {
			cum += c
			continue
		}
		var lo, hi int64
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i < len(s.Bounds) {
			hi = s.Bounds[i]
		} else {
			hi = s.Max // overflow bucket: cap at the exact max
			if hi < lo {
				hi = lo
			}
		}
		est := lo + int64(float64(hi-lo)*float64(rank-cum)/float64(c))
		if est > s.Max && s.Max > 0 {
			est = s.Max
		}
		return est
	}
	return s.Max
}

// P50, P95 and P99 are the snapshot quantiles the serving dashboards read.
func (s HistSnapshot) P50() int64 { return s.Quantile(0.50) }
func (s HistSnapshot) P95() int64 { return s.Quantile(0.95) }
func (s HistSnapshot) P99() int64 { return s.Quantile(0.99) }

// Mean returns the arithmetic mean observation (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

func (s HistSnapshot) String() string {
	return fmt.Sprintf("count=%d p50=%v p95=%v p99=%v max=%v",
		s.Count,
		time.Duration(s.P50()), time.Duration(s.P95()),
		time.Duration(s.P99()), time.Duration(s.Max))
}
