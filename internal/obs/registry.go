package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry collects metric families and renders them in the Prometheus
// text exposition format (version 0.0.4) — the format every scraping stack
// understands, with no client-library dependency. Metrics are registered
// once at wiring time as closures and sampled at scrape time, so the hot
// path never touches the registry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]bool
}

// LabeledValue is one sample of a labeled family; Labels is the rendered
// label body, e.g. `condition="pruned"` (no braces).
type LabeledValue struct {
	Labels string
	Value  float64
}

type family struct {
	name, help, typ string
	// collect appends samples; suffix extends the family name (histogram
	// series), labels is the rendered label body or "", and ex is a
	// pre-rendered exemplar annotation (`# {…} v`, or "") appended after
	// the value — the OpenMetrics exemplar syntax, understood by ParseText.
	collect func(emit func(suffix, labels string, v float64, ex string))
}

var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]bool)}
}

func (r *Registry) register(name, help, typ string, collect func(emit func(string, string, float64, string))) {
	if !metricName.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.byName[name] = true
	r.families = append(r.families, &family{name: name, help: help, typ: typ, collect: collect})
}

// CounterFunc registers a monotonically increasing value sampled by fn.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", func(emit func(string, string, float64, string)) {
		emit("", "", fn(), "")
	})
}

// GaugeFunc registers an instantaneous value sampled by fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", func(emit func(string, string, float64, string)) {
		emit("", "", fn(), "")
	})
}

// LabeledGaugeFunc registers a gauge family whose samples (one per label
// set) are produced by fn at scrape time — e.g. the shard router's
// per-shard snapshot epochs.
func (r *Registry) LabeledGaugeFunc(name, help string, fn func() []LabeledValue) {
	r.register(name, help, "gauge", func(emit func(string, string, float64, string)) {
		for _, lv := range fn() {
			emit("", lv.Labels, lv.Value, "")
		}
	})
}

// LabeledCounterFunc registers a counter family whose samples (one per
// label set) are produced by fn at scrape time.
func (r *Registry) LabeledCounterFunc(name, help string, fn func() []LabeledValue) {
	r.register(name, help, "counter", func(emit func(string, string, float64, string)) {
		for _, lv := range fn() {
			emit("", lv.Labels, lv.Value, "")
		}
	})
}

// Histogram registers h under name. scale converts stored values to the
// exposed unit (1e-9 turns nanosecond observations into the conventional
// seconds). The exposition carries cumulative `_bucket{le="…"}` series plus
// `_sum` and `_count`; buckets of exemplar-enabled histograms additionally
// carry their trace-ID exemplar in OpenMetrics syntax.
func (r *Registry) Histogram(name, help string, scale float64, h *Histogram) {
	r.register(name, help, "histogram", histCollect("", scale, h))
}

// LabeledHistogram is one variant of a labeled histogram family: Labels is
// the rendered label body (e.g. `agg="max"`, no braces).
type LabeledHistogram struct {
	Labels string
	H      *Histogram
}

// HistogramVec registers a histogram family with one sub-histogram per
// label set (e.g. the drift auditor's per-aggregator drift). Every variant
// shares the family name; its label body is prepended to the `le` label.
func (r *Registry) HistogramVec(name, help string, scale float64, variants []LabeledHistogram) {
	collects := make([]func(emit func(string, string, float64, string)), len(variants))
	for i, v := range variants {
		collects[i] = histCollect(v.Labels, scale, v.H)
	}
	r.register(name, help, "histogram", func(emit func(string, string, float64, string)) {
		for _, c := range collects {
			c(emit)
		}
	})
}

// histCollect renders one histogram's samples with labels prefixed.
func histCollect(labels string, scale float64, h *Histogram) func(emit func(string, string, float64, string)) {
	if scale == 0 {
		scale = 1
	}
	join := func(le string) string {
		if labels == "" {
			return `le="` + le + `"`
		}
		return labels + `,le="` + le + `"`
	}
	return func(emit func(string, string, float64, string)) {
		s := h.Snapshot()
		exFor := func(i int) string {
			if s.Exemplars == nil || s.Exemplars[i] == nil {
				return ""
			}
			e := s.Exemplars[i]
			return `# {trace_id="` + TraceIDString(e.TraceID) + `"} ` +
				formatFloat(float64(e.Value)*scale)
		}
		var cum int64
		for i, b := range s.Bounds {
			cum += s.Counts[i]
			emit("_bucket", join(formatFloat(float64(b)*scale)), float64(cum), exFor(i))
		}
		cum += s.Counts[len(s.Bounds)]
		emit("_bucket", join("+Inf"), float64(cum), exFor(len(s.Bounds)))
		emit("_sum", labels, float64(s.Sum)*scale, "")
		emit("_count", labels, float64(cum), "")
	}
}

// WriteText renders every registered family in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, sanitizeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		f.collect(func(suffix, labels string, v float64, ex string) {
			if labels != "" {
				fmt.Fprintf(bw, "%s%s{%s} %s", f.name, suffix, labels, formatFloat(v))
			} else {
				fmt.Fprintf(bw, "%s%s %s", f.name, suffix, formatFloat(v))
			}
			if ex != "" {
				fmt.Fprintf(bw, " %s", ex)
			}
			fmt.Fprintln(bw)
		})
	}
	return bw.Flush()
}

// Handler serves the exposition over HTTP (mount at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// SortedLabeled renders a name→count map as LabeledValues with one
// `key="name"` label each, sorted by name for deterministic exposition.
func SortedLabeled(key string, counts map[string]int64) []LabeledValue {
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]LabeledValue, 0, len(names))
	for _, n := range names {
		out = append(out, LabeledValue{
			Labels: key + `="` + n + `"`,
			Value:  float64(counts[n]),
		})
	}
	return out
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sanitizeHelp(h string) string {
	h = strings.ReplaceAll(h, "\\", `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}
