package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry collects metric families and renders them in the Prometheus
// text exposition format (version 0.0.4) — the format every scraping stack
// understands, with no client-library dependency. Metrics are registered
// once at wiring time as closures and sampled at scrape time, so the hot
// path never touches the registry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]bool
}

// LabeledValue is one sample of a labeled family; Labels is the rendered
// label body, e.g. `condition="pruned"` (no braces).
type LabeledValue struct {
	Labels string
	Value  float64
}

type family struct {
	name, help, typ string
	// collect appends samples; suffix extends the family name (histogram
	// series), labels is the rendered label body or "".
	collect func(emit func(suffix, labels string, v float64))
}

var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]bool)}
}

func (r *Registry) register(name, help, typ string, collect func(emit func(string, string, float64))) {
	if !metricName.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.byName[name] = true
	r.families = append(r.families, &family{name: name, help: help, typ: typ, collect: collect})
}

// CounterFunc registers a monotonically increasing value sampled by fn.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", func(emit func(string, string, float64)) {
		emit("", "", fn())
	})
}

// GaugeFunc registers an instantaneous value sampled by fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", func(emit func(string, string, float64)) {
		emit("", "", fn())
	})
}

// LabeledCounterFunc registers a counter family whose samples (one per
// label set) are produced by fn at scrape time.
func (r *Registry) LabeledCounterFunc(name, help string, fn func() []LabeledValue) {
	r.register(name, help, "counter", func(emit func(string, string, float64)) {
		for _, lv := range fn() {
			emit("", lv.Labels, lv.Value)
		}
	})
}

// Histogram registers h under name. scale converts stored values to the
// exposed unit (1e-9 turns nanosecond observations into the conventional
// seconds). The exposition carries cumulative `_bucket{le="…"}` series plus
// `_sum` and `_count`.
func (r *Registry) Histogram(name, help string, scale float64, h *Histogram) {
	if scale == 0 {
		scale = 1
	}
	r.register(name, help, "histogram", func(emit func(string, string, float64)) {
		s := h.Snapshot()
		var cum int64
		for i, b := range s.Bounds {
			cum += s.Counts[i]
			emit("_bucket", `le="`+formatFloat(float64(b)*scale)+`"`, float64(cum))
		}
		cum += s.Counts[len(s.Bounds)]
		emit("_bucket", `le="+Inf"`, float64(cum))
		emit("_sum", "", float64(s.Sum)*scale)
		emit("_count", "", float64(cum))
	})
}

// WriteText renders every registered family in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, sanitizeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		f.collect(func(suffix, labels string, v float64) {
			if labels != "" {
				fmt.Fprintf(bw, "%s%s{%s} %s\n", f.name, suffix, labels, formatFloat(v))
			} else {
				fmt.Fprintf(bw, "%s%s %s\n", f.name, suffix, formatFloat(v))
			}
		})
	}
	return bw.Flush()
}

// Handler serves the exposition over HTTP (mount at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// SortedLabeled renders a name→count map as LabeledValues with one
// `key="name"` label each, sorted by name for deterministic exposition.
func SortedLabeled(key string, counts map[string]int64) []LabeledValue {
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]LabeledValue, 0, len(names))
	for _, n := range names {
		out = append(out, LabeledValue{
			Labels: key + `="` + n + `"`,
			Value:  float64(counts[n]),
		})
	}
	return out
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sanitizeHelp(h string) string {
	h = strings.ReplaceAll(h, "\\", `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}
