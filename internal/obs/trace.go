package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// MaxCond bounds the per-layer condition counters a LayerSpan carries. The
// engine's Fig. 8 taxonomy has six conditions; the fixed array keeps the
// span POD so the engine can reuse one trace buffer with zero allocation.
const MaxCond = 8

// LayerSpan records what one GNN layer did during one Engine.Apply: the
// event traffic in and out, the nodes visited, how each visit was
// classified (the paper's evolvable-condition taxonomy), the embedding
// bytes fetched and the wall time spent.
type LayerSpan struct {
	Layer        int
	EventsIn     int64 // native events entering the layer (changed-edge + carried)
	UserEventsIn int64 // user-hook events entering the layer
	EventsOut    int64 // native events emitted toward the next layer
	Nodes        int64 // grouped targets processed
	BytesFetched int64 // embedding bytes read during the layer
	Cond         [MaxCond]int64
	Elapsed      time.Duration
}

// Trace resolves one update batch into phases: delta application (validate,
// snapshot removed sources, mutate the graph), vertex-feature application,
// and one span per layer of event propagation/recompute. An engine owns one
// Trace and refills it per Apply; Clone before retaining it past the
// Observer callback.
type Trace struct {
	Total         time.Duration
	DeltaEdges    int // edge changes in the batch
	VertexUpdates int // vertex-feature updates in the batch
	DeltaApply    time.Duration
	VertexApply   time.Duration
	Layers        []LayerSpan

	// CondNames maps Cond indices to condition names for rendering; set
	// once at engine construction and shared across reuses.
	CondNames []string
}

// Reset prepares the trace for reuse with room for layers spans, keeping
// the backing array.
func (t *Trace) Reset(layers int) {
	names := t.CondNames
	spans := t.Layers
	if cap(spans) < layers {
		spans = make([]LayerSpan, layers)
	}
	spans = spans[:layers]
	for i := range spans {
		spans[i] = LayerSpan{Layer: i}
	}
	*t = Trace{Layers: spans, CondNames: names}
}

// Clone deep-copies the trace (for retention beyond the emitting call).
func (t *Trace) Clone() *Trace {
	c := *t
	c.Layers = append([]LayerSpan(nil), t.Layers...)
	return &c
}

// Events returns the total native events processed across all layers.
func (t *Trace) Events() int64 {
	var n int64
	for i := range t.Layers {
		n += t.Layers[i].EventsIn
	}
	return n
}

// NodesVisited returns the total grouped targets processed across layers.
func (t *Trace) NodesVisited() int64 {
	var n int64
	for i := range t.Layers {
		n += t.Layers[i].Nodes
	}
	return n
}

// condName resolves index i against CondNames.
func (t *Trace) condName(i int) string {
	if i < len(t.CondNames) {
		return t.CondNames[i]
	}
	return fmt.Sprintf("cond%d", i)
}

// String renders the trace as one structured log line:
//
//	update dG=16 vups=0 total=312µs delta=8µs L0[in=32 user=0 out=118 nodes=45 fetched=11KiB no-reset=42 pruned=3 54µs] L1[…]
func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "update dG=%d vups=%d total=%v delta=%v",
		t.DeltaEdges, t.VertexUpdates, t.Total.Round(time.Microsecond), t.DeltaApply.Round(time.Microsecond))
	if t.VertexUpdates > 0 {
		fmt.Fprintf(&b, " vapply=%v", t.VertexApply.Round(time.Microsecond))
	}
	for i := range t.Layers {
		s := &t.Layers[i]
		fmt.Fprintf(&b, " L%d[in=%d user=%d out=%d nodes=%d fetched=%d",
			s.Layer, s.EventsIn, s.UserEventsIn, s.EventsOut, s.Nodes, s.BytesFetched)
		for c, n := range s.Cond {
			if n > 0 {
				fmt.Fprintf(&b, " %s=%d", t.condName(c), n)
			}
		}
		fmt.Fprintf(&b, " %v]", s.Elapsed.Round(time.Microsecond))
	}
	return b.String()
}

// traceJSON and spanJSON shape the JSON rendering (durations in
// microseconds, conditions as a name→count map).
type traceJSON struct {
	TotalUS       float64    `json:"total_us"`
	DeltaEdges    int        `json:"delta_edges"`
	VertexUpdates int        `json:"vertex_updates"`
	DeltaApplyUS  float64    `json:"delta_apply_us"`
	VertexApplyUS float64    `json:"vertex_apply_us,omitempty"`
	Layers        []spanJSON `json:"layers"`
}

type spanJSON struct {
	Layer        int              `json:"layer"`
	EventsIn     int64            `json:"events_in"`
	UserEventsIn int64            `json:"user_events_in,omitempty"`
	EventsOut    int64            `json:"events_out"`
	Nodes        int64            `json:"nodes"`
	BytesFetched int64            `json:"bytes_fetched"`
	Conditions   map[string]int64 `json:"conditions,omitempty"`
	ElapsedUS    float64          `json:"elapsed_us"`
}

// MarshalJSON renders the trace as a machine-readable object.
func (t *Trace) MarshalJSON() ([]byte, error) {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	out := traceJSON{
		TotalUS:       us(t.Total),
		DeltaEdges:    t.DeltaEdges,
		VertexUpdates: t.VertexUpdates,
		DeltaApplyUS:  us(t.DeltaApply),
		VertexApplyUS: us(t.VertexApply),
		Layers:        make([]spanJSON, len(t.Layers)),
	}
	for i := range t.Layers {
		s := &t.Layers[i]
		sj := spanJSON{
			Layer:        s.Layer,
			EventsIn:     s.EventsIn,
			UserEventsIn: s.UserEventsIn,
			EventsOut:    s.EventsOut,
			Nodes:        s.Nodes,
			BytesFetched: s.BytesFetched,
			ElapsedUS:    us(s.Elapsed),
		}
		for c, n := range s.Cond {
			if n > 0 {
				if sj.Conditions == nil {
					sj.Conditions = make(map[string]int64)
				}
				sj.Conditions[t.condName(c)] = n
			}
		}
		out.Layers[i] = sj
	}
	return json.Marshal(out)
}
