package obs

import (
	"sync/atomic"
	"time"
)

// Observer aggregates one serving path's update observations: latency and
// batch-size histograms that are always on, and an optional trace channel
// for slow (or all) updates. Engines call RecordUpdate once per applied
// batch; everything it does is lock-free. A nil *Observer disables all
// recording, so call sites need no guards.
type Observer struct {
	// UpdateLatency holds end-to-end Apply latencies in nanoseconds.
	UpdateLatency *Histogram
	// BatchSize holds the number of changes (edge + vertex) per batch.
	BatchSize *Histogram
	// Events holds native events processed per update (the affected-area
	// proxy that drives the paper's Fig. 7 latency curves).
	Events *Histogram

	// SlowThreshold marks an update slow when its total latency reaches
	// it; slow updates bump SlowUpdates and emit their trace to OnTrace.
	// Zero disables the slow path.
	SlowThreshold time.Duration
	// TraceAll emits every update's trace to OnTrace, not just slow ones.
	TraceAll bool
	// OnTrace receives the trace of slow (or, with TraceAll, all) updates.
	// The *Trace is only valid during the call — Clone to retain. Called
	// from the updating goroutine; keep it fast or hand off.
	OnTrace func(*Trace)

	updates atomic.Int64
	slow    atomic.Int64
}

// NewObserver builds an observer with the default histogram geometry and
// no trace emission.
func NewObserver() *Observer {
	return &Observer{
		UpdateLatency: NewLatencyHistogram(),
		BatchSize:     NewSizeHistogram(),
		Events:        NewSizeHistogram(),
	}
}

// Tracing reports whether an engine should fill a Trace for the next
// update: either every trace is emitted, or slow ones are and a receiver
// is installed.
func (o *Observer) Tracing() bool {
	return o != nil && (o.TraceAll || (o.OnTrace != nil && o.SlowThreshold > 0))
}

// RecordLatency records one update without a trace (used by baselines so
// benchmark comparisons are observed like-for-like).
func (o *Observer) RecordLatency(d time.Duration, batch int, events int64) {
	if o == nil {
		return
	}
	o.updates.Add(1)
	o.UpdateLatency.ObserveDuration(d)
	o.BatchSize.Observe(int64(batch))
	o.Events.Observe(events)
	if o.SlowThreshold > 0 && d >= o.SlowThreshold {
		o.slow.Add(1)
	}
}

// RecordUpdate records one traced update and emits the trace when the
// update is slow (or TraceAll is set).
func (o *Observer) RecordUpdate(t *Trace) {
	if o == nil {
		return
	}
	o.updates.Add(1)
	o.UpdateLatency.ObserveDuration(t.Total)
	o.BatchSize.Observe(int64(t.DeltaEdges + t.VertexUpdates))
	o.Events.Observe(t.Events())
	slow := o.SlowThreshold > 0 && t.Total >= o.SlowThreshold
	if slow {
		o.slow.Add(1)
	}
	if o.OnTrace != nil && (o.TraceAll || slow) {
		o.OnTrace(t)
	}
}

// Updates returns the number of recorded updates.
func (o *Observer) Updates() int64 {
	if o == nil {
		return 0
	}
	return o.updates.Load()
}

// SlowUpdates returns the number of updates at or above SlowThreshold.
func (o *Observer) SlowUpdates() int64 {
	if o == nil {
		return 0
	}
	return o.slow.Load()
}
