package obs

import (
	"encoding/json"
	"sync/atomic"
	"time"
)

// Round profiler (DESIGN.md §12): per-BSP-round spans for partitioned
// serving.
//
// A request trace (flight.go) explains one request's latency; it cannot
// explain why an 8-shard deployment is slower than a 2-shard one, because
// the cost lives *between* requests — in the barrier-synchronised round the
// router executes across all shards. A RoundTrace records one round's
// critical path: the router-side spans (drain/fuse, validate, journal,
// queue) and then, per barrier stage, the per-shard compute time, the
// ghost-refresh share of it, and the barrier wait (the gap between a shard
// finishing and the slowest shard — the straggler — closing the stage).
// The RoundRecorder keeps the last N rounds in the same lock-light
// atomic-pointer ring the FlightRecorder uses.

// RoundShardSpan is one shard's slice of one barrier stage.
type RoundShardSpan struct {
	// Compute is the shard's wall time inside the stage call
	// (BeginRound/RoundLayer/FinishRound+publish); Barrier is the stage
	// makespan minus Compute — the time the shard spent waiting for the
	// straggler to close the barrier.
	Compute time.Duration
	Barrier time.Duration
	// Ghost is the ghost-row refresh share of Compute (adopting remote
	// message rows before the layer runs); Events the native events the
	// shard staged for the stage.
	Ghost  time.Duration
	Events int
	// Boundary/Interior split Compute into the boundary-first phases of the
	// overlapped exchange (zero on the broadcast path); GhostRows counts the
	// remote rows the shard adopted in the stage. Skipped marks a layer call
	// the router elided because the shard had no events, no delivered
	// records and no carried hooks — a skipped shard is excluded from
	// makespan and barrier attribution.
	Boundary  time.Duration
	Interior  time.Duration
	GhostRows int
	Skipped   bool
}

// RoundStageSpan is one barrier-synchronised stage of a round: the begin
// stage (sub-batch apply), one entry per layer, and the finish/publish
// stage. The stage's makespan is the slowest shard — the barrier closes
// when it finishes.
type RoundStageSpan struct {
	// Name is "begin", "layer<k>" or "publish".
	Name string
	// Records and Bytes are the merged message-change records broadcast
	// into this stage for ghost refresh (0 on 1-shard deployments — nothing
	// crosses a boundary); Broadcast is the router-side merge/sort time
	// spent producing them.
	Records   int
	Bytes     int64
	Broadcast time.Duration
	// Makespan is max over Shards of Compute.
	Makespan time.Duration
	Shards   []RoundShardSpan
}

// RoundTrace is the flight record of one BSP round. Written by the router
// goroutines while the round is in flight and frozen before it is recorded;
// readers only ever see recorded (immutable) traces.
type RoundTrace struct {
	// ID is the round's trace ID, assigned when the round seals. Request
	// traces covering the round carry the same ID, so /v1/traces and
	// /v1/rounds can be joined.
	ID uint64
	// Start is when the round opened (first request fused in).
	Start time.Time
	// Reqs, Edges and VUps size the round: requests fused, directed edge
	// changes and vertex updates across them.
	Reqs, Edges, VUps int
	// Fuse is open→seal on the router goroutine (drain, validate, conflict
	// checks); Journal the per-shard WAL group commit; Queue the wait
	// between sealing and the apply goroutine picking the round up.
	Fuse, Journal, Queue time.Duration
	// Stages are the barrier stages in execution order.
	Stages []RoundStageSpan
	// Records and Bytes total the cross-shard broadcast volume of the
	// round (all stages).
	Records int
	Bytes   int64
	// Total is open→published (all shards).
	Total time.Duration
}

// BSPTime sums the stage makespans — the barrier-synchronised portion of
// the round.
func (t *RoundTrace) BSPTime() time.Duration {
	var d time.Duration
	for _, st := range t.Stages {
		d += st.Makespan
	}
	return d
}

// BroadcastTime sums the router-side record merge/sort time between stages.
func (t *RoundTrace) BroadcastTime() time.Duration {
	var d time.Duration
	for _, st := range t.Stages {
		d += st.Broadcast
	}
	return d
}

// shardComputes returns each shard's total compute across stages (nil for
// an empty trace).
func (t *RoundTrace) shardComputes() []time.Duration {
	if len(t.Stages) == 0 {
		return nil
	}
	out := make([]time.Duration, len(t.Stages[0].Shards))
	for _, st := range t.Stages {
		for i, sh := range st.Shards {
			if i < len(out) {
				out[i] += sh.Compute
			}
		}
	}
	return out
}

// Straggler is the shard with the largest total compute — the one the
// others waited for. -1 for an empty trace.
func (t *RoundTrace) Straggler() int {
	comp := t.shardComputes()
	if len(comp) == 0 {
		return -1
	}
	best := 0
	for i, c := range comp {
		if c > comp[best] {
			best = i
		}
	}
	return best
}

// StragglerSkew is max/mean shard compute — 1.0 means perfectly balanced
// stages, 2.0 means the straggler worked twice the average (and everyone
// else paid the difference as barrier wait).
func (t *RoundTrace) StragglerSkew() float64 {
	comp := t.shardComputes()
	if len(comp) == 0 {
		return 0
	}
	var sum, max time.Duration
	for _, c := range comp {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(comp))
	return float64(max) / mean
}

// BarrierShare is the fraction of participating shard-time spent blocked on
// barriers: Σ barrier / (Σ barrier + Σ compute) over every non-skipped
// shard-stage span. With full participation this equals the earlier
// 1 − mean(shard compute)/BSP-time formulation exactly (both reduce to
// W/(W+C)); shards whose layer call the router skipped contribute neither
// wait nor compute — an idle shard is not waiting, so counting it would
// inflate the share precisely when idle-skipping is doing its job. 0 on a
// 1-shard deployment.
func (t *RoundTrace) BarrierShare() float64 {
	var wait, comp time.Duration
	for _, st := range t.Stages {
		for _, sh := range st.Shards {
			if sh.Skipped {
				continue
			}
			wait += sh.Barrier
			comp += sh.Compute
		}
	}
	if wait+comp <= 0 {
		return 0
	}
	return float64(wait) / float64(wait+comp)
}

type roundShardJSON struct {
	Shard      int     `json:"shard"`
	ComputeUS  float64 `json:"compute_us"`
	BarrierUS  float64 `json:"barrier_us"`
	GhostUS    float64 `json:"ghost_us"`
	Events     int     `json:"events"`
	BoundaryUS float64 `json:"boundary_us,omitempty"`
	InteriorUS float64 `json:"interior_us,omitempty"`
	GhostRows  int     `json:"ghost_rows,omitempty"`
	Skipped    bool    `json:"skipped,omitempty"`
}

type roundStageJSON struct {
	Name        string           `json:"stage"`
	Records     int              `json:"records,omitempty"`
	Bytes       int64            `json:"bytes,omitempty"`
	BroadcastUS float64          `json:"broadcast_us"`
	MakespanUS  float64          `json:"makespan_us"`
	Shards      []roundShardJSON `json:"shards"`
}

type roundTraceJSON struct {
	RoundID       string           `json:"round_id"`
	Start         time.Time        `json:"start"`
	Reqs          int              `json:"requests"`
	Edges         int              `json:"edges,omitempty"`
	VUps          int              `json:"vertex_updates,omitempty"`
	FuseUS        float64          `json:"fuse_us"`
	JournalUS     float64          `json:"journal_us"`
	QueueUS       float64          `json:"queue_us"`
	BSPUS         float64          `json:"bsp_us"`
	BroadcastUS   float64          `json:"broadcast_us"`
	TotalUS       float64          `json:"total_us"`
	Records       int              `json:"records"`
	Bytes         int64            `json:"bytes"`
	Straggler     int              `json:"straggler"`
	BarrierShare  float64          `json:"barrier_share"`
	StragglerSkew float64          `json:"straggler_skew"`
	Stages        []roundStageJSON `json:"stages"`
}

// MarshalJSON renders the round trace for GET /v1/rounds: the router spans,
// the whole-round attribution (straggler, barrier share, skew) and the
// per-stage per-shard breakdown.
func (t *RoundTrace) MarshalJSON() ([]byte, error) {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	out := roundTraceJSON{
		RoundID:       TraceIDString(t.ID),
		Start:         t.Start,
		Reqs:          t.Reqs,
		Edges:         t.Edges,
		VUps:          t.VUps,
		FuseUS:        us(t.Fuse),
		JournalUS:     us(t.Journal),
		QueueUS:       us(t.Queue),
		BSPUS:         us(t.BSPTime()),
		BroadcastUS:   us(t.BroadcastTime()),
		TotalUS:       us(t.Total),
		Records:       t.Records,
		Bytes:         t.Bytes,
		Straggler:     t.Straggler(),
		BarrierShare:  t.BarrierShare(),
		StragglerSkew: t.StragglerSkew(),
	}
	for _, st := range t.Stages {
		sj := roundStageJSON{
			Name:        st.Name,
			Records:     st.Records,
			Bytes:       st.Bytes,
			BroadcastUS: us(st.Broadcast),
			MakespanUS:  us(st.Makespan),
			Shards:      make([]roundShardJSON, len(st.Shards)),
		}
		for i, sh := range st.Shards {
			sj.Shards[i] = roundShardJSON{
				Shard:      i,
				ComputeUS:  us(sh.Compute),
				BarrierUS:  us(sh.Barrier),
				GhostUS:    us(sh.Ghost),
				Events:     sh.Events,
				BoundaryUS: us(sh.Boundary),
				InteriorUS: us(sh.Interior),
				GhostRows:  sh.GhostRows,
				Skipped:    sh.Skipped,
			}
		}
		out.Stages = append(out.Stages, sj)
	}
	return json.Marshal(out)
}

// RoundRecorder keeps the last N round traces in a lock-free ring (the
// FlightRecorder layout: one atomic counter bump plus one atomic pointer
// store per round; readers snapshot the slots without blocking the apply
// goroutine).
type RoundRecorder struct {
	seq      atomic.Uint64
	widx     atomic.Uint64
	slots    []atomic.Pointer[RoundTrace]
	recorded atomic.Int64
}

// NewRoundRecorder builds a recorder holding the last size rounds.
func NewRoundRecorder(size int) *RoundRecorder {
	if size < 1 {
		size = 1
	}
	return &RoundRecorder{slots: make([]atomic.Pointer[RoundTrace], size)}
}

// NextID assigns the next round ID (starting at 1).
func (r *RoundRecorder) NextID() uint64 { return r.seq.Add(1) }

// Record publishes one finished round into the ring. The trace must not be
// mutated afterwards.
func (r *RoundRecorder) Record(t *RoundTrace) {
	i := r.widx.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
	r.recorded.Add(1)
}

// Recorded returns the number of rounds recorded so far (including those
// evicted from the ring).
func (r *RoundRecorder) Recorded() int64 { return r.recorded.Load() }

// Last returns the most recently recorded round (nil before the first).
func (r *RoundRecorder) Last() *RoundTrace {
	w := r.widx.Load()
	if w == 0 {
		return nil
	}
	return r.slots[(w-1)%uint64(len(r.slots))].Load()
}

// Traces snapshots the ring, newest first.
func (r *RoundRecorder) Traces() []*RoundTrace {
	n := uint64(len(r.slots))
	w := r.widx.Load()
	out := make([]*RoundTrace, 0, n)
	count := w
	if count > n {
		count = n
	}
	for k := uint64(1); k <= count; k++ {
		if t := r.slots[(w-k)%n].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}
