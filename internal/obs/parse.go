package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string // nil when unlabeled
	Value  float64
	// Exemplar carries the sample's OpenMetrics exemplar, when present
	// (`… # {trace_id="…"} value`); nil otherwise.
	Exemplar *SampleExemplar
}

// SampleExemplar is one parsed exemplar annotation.
type SampleExemplar struct {
	Labels map[string]string
	Value  float64
}

// TraceID returns the exemplar's trace_id label ("" when absent).
func (e *SampleExemplar) TraceID() string {
	if e == nil {
		return ""
	}
	return e.Labels["trace_id"]
}

// Samples is a parsed scrape with lookup helpers.
type Samples []Sample

// ParseText parses a Prometheus text-format exposition — the inverse of
// Registry.WriteText, used by `inkstat -watch` and by tests asserting the
// exposition stays parseable. Comment lines are validated structurally
// (`# HELP name …` / `# TYPE name type`); sample lines must be
// `name[{labels}] value`.
func ParseText(r io.Reader) (Samples, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out Samples
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line); err != nil {
				return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func checkComment(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free-form comment, allowed by the format
	}
	if len(fields) < 3 || !metricName.MatchString(fields[2]) {
		return fmt.Errorf("malformed %s comment %q", fields[1], line)
	}
	if fields[1] == "TYPE" {
		if len(fields) < 4 {
			return fmt.Errorf("TYPE comment missing type: %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.IndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[i+1 : end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return s, fmt.Errorf("sample %q has no value", line)
		}
		s.Name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	if !metricName.MatchString(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	// An OpenMetrics exemplar may trail the value: `value # {labels} exval`.
	// Split it off before the strict one-value check. Label values never
	// contain '#' in this repo's expositions (trace IDs are hex), so a
	// plain index is safe here.
	if hash := strings.Index(rest, "#"); hash >= 0 {
		exStr := strings.TrimSpace(rest[hash+1:])
		rest = strings.TrimSpace(rest[:hash])
		ex, err := parseExemplar(exStr)
		if err != nil {
			return s, fmt.Errorf("bad exemplar in %q: %w", line, err)
		}
		s.Exemplar = ex
	}
	// A trailing timestamp (optional in the format) would appear as a
	// second field; this repo never writes one, so reject extra fields to
	// keep the golden tests strict.
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		return s, fmt.Errorf("expected one value in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseExemplar parses the `{labels} value` tail of an exemplar annotation.
func parseExemplar(str string) (*SampleExemplar, error) {
	if len(str) == 0 || str[0] != '{' {
		return nil, fmt.Errorf("exemplar %q does not start with a label set", str)
	}
	end := strings.IndexByte(str, '}')
	if end < 0 {
		return nil, fmt.Errorf("unterminated exemplar label set in %q", str)
	}
	labels, err := parseLabels(str[1:end])
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(str[end+1:])
	if len(fields) != 1 {
		return nil, fmt.Errorf("expected one exemplar value in %q", str)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return nil, err
	}
	return &SampleExemplar{Labels: labels, Value: v}, nil
}

func parseValue(f string) (float64, error) {
	switch f {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(f, 64)
}

func parseLabels(body string) (map[string]string, error) {
	body = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(body), ","))
	if body == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without value in %q", body)
		}
		key := strings.TrimSpace(body[:eq])
		rest := strings.TrimSpace(body[eq+1:])
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", key)
		}
		close := strings.IndexByte(rest[1:], '"')
		if close < 0 {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		out[key] = rest[1 : 1+close]
		body = strings.TrimPrefix(strings.TrimSpace(rest[close+2:]), ",")
		body = strings.TrimSpace(body)
	}
	return out, nil
}

// Get returns the value of the sample matching name and every k="v"
// constraint given as alternating key, value pairs.
func (ss Samples) Get(name string, kv ...string) (float64, bool) {
	for _, s := range ss {
		if s.Name != name {
			continue
		}
		ok := true
		for i := 0; i+1 < len(kv); i += 2 {
			if s.Labels[kv[i]] != kv[i+1] {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// Family returns every sample named name.
func (ss Samples) Family(name string) Samples {
	var out Samples
	for _, s := range ss {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Buckets extracts the cumulative histogram buckets of family base
// (`base_bucket` samples) as parallel le/count slices sorted by le, with
// the +Inf bucket last.
func (ss Samples) Buckets(base string) (les, cum []float64) {
	type bk struct{ le, c float64 }
	var bks []bk
	for _, s := range ss.Family(base + "_bucket") {
		le, err := parseValue(s.Labels["le"])
		if err != nil {
			continue
		}
		bks = append(bks, bk{le, s.Value})
	}
	sort.Slice(bks, func(i, j int) bool { return bks[i].le < bks[j].le })
	for _, b := range bks {
		les = append(les, b.le)
		cum = append(cum, b.c)
	}
	return les, cum
}

// BucketQuantile estimates quantile q (0 < q <= 1) from cumulative
// histogram buckets (les ascending, +Inf last), interpolating within the
// chosen bucket — the standard Prometheus histogram_quantile estimator.
// Works equally on windowed deltas of two scrapes. Returns 0 when empty.
func BucketQuantile(les, cum []float64, q float64) float64 {
	if len(les) == 0 || len(cum) != len(les) {
		return 0
	}
	total := cum[len(cum)-1]
	if total <= 0 {
		return 0
	}
	rank := q * total
	for i := range les {
		if cum[i] < rank {
			continue
		}
		if math.IsInf(les[i], 1) {
			// Overflow bucket: report the last finite bound.
			if len(les) > 1 {
				return les[len(les)-2]
			}
			return 0
		}
		var lo, prev float64
		if i > 0 {
			lo = les[i-1]
			prev = cum[i-1]
		}
		width := cum[i] - prev
		if width <= 0 {
			return les[i]
		}
		return lo + (les[i]-lo)*(rank-prev)/width
	}
	return les[len(les)-1]
}
