package obs

import (
	"sync"
	"time"
)

// In-process time-series (DESIGN.md §10): a fixed-size ring sampler that
// periodically snapshots registered scalar sources — counters rendered as
// per-second rates, gauges as instantaneous values, histogram quantiles
// windowed per tick — into preallocated float64 rings. Steady-state ticks
// allocate nothing; only Snapshot (a scrape) allocates. The point is to see
// the last ~10 minutes of serving behaviour *from inside the process*,
// without a scraping stack: /metrics shows where the counters are, the
// sampler shows where they were.

// Sampler drives a set of named series at a fixed interval.
type Sampler struct {
	interval time.Duration
	size     int

	mu     sync.Mutex
	series []*tsSeries
	ticks  uint64
	hooks  []func()

	startOnce sync.Once
	stopOnce  sync.Once
	quit      chan struct{}
	done      chan struct{}
}

type tsSeries struct {
	name string
	// sample returns the value for the current tick; counter/quantile
	// wrappers keep their own previous-state scratch so they stay
	// allocation-free.
	sample func() float64
	ring   []float64
}

// NewSampler builds a sampler with the given resolution and window length
// (number of retained samples per series). Typical serving configuration:
// 1s × 600 — a ten-minute window.
func NewSampler(interval time.Duration, window int) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	if window < 1 {
		window = 1
	}
	return &Sampler{
		interval: interval,
		size:     window,
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Interval returns the sampling resolution.
func (s *Sampler) Interval() time.Duration { return s.interval }

func (s *Sampler) add(name string, fn func() float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.series = append(s.series, &tsSeries{
		name:   name,
		sample: fn,
		ring:   make([]float64, s.size),
	})
}

// Gauge registers an instantaneous series sampled by fn. Register every
// series before Start.
func (s *Sampler) Gauge(name string, fn func() float64) { s.add(name, fn) }

// Counter registers a cumulative source rendered as a per-second rate: each
// tick stores (cur-prev)/interval. The first tick after Start reports 0.
func (s *Sampler) Counter(name string, fn func() float64) {
	prev := 0.0
	primed := false
	secs := s.interval.Seconds()
	s.add(name, func() float64 {
		cur := fn()
		if !primed {
			primed = true
			prev = cur
			return 0
		}
		d := (cur - prev) / secs
		prev = cur
		if d < 0 {
			d = 0
		}
		return d
	})
}

// HistQuantile registers the windowed q-quantile of h: each tick estimates
// the quantile of the observations that arrived *since the previous tick*
// (0 when the window saw none), scaled by scale — the live per-second view
// of a latency histogram's tail. The per-tick bucket-delta scratch is
// preallocated, so sampling stays allocation-free.
func (s *Sampler) HistQuantile(name string, h *Histogram, q, scale float64) {
	nb := h.NumBuckets()
	cur := make([]int64, nb)
	prev := make([]int64, nb)
	dsnap := HistSnapshot{Bounds: h.bounds, Counts: make([]int64, nb)}
	s.add(name, func() float64 {
		dsnap.Max = h.LoadCounts(cur)
		dsnap.Count = 0
		for i, c := range cur {
			d := c - prev[i]
			dsnap.Counts[i] = d
			dsnap.Count += d
			prev[i] = c
		}
		if dsnap.Count == 0 {
			return 0
		}
		return float64(dsnap.Quantile(q)) * scale
	})
}

// Start launches the background ticker; Stop halts it. Both are idempotent.
func (s *Sampler) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			tick := time.NewTicker(s.interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					s.Tick()
				case <-s.quit:
					return
				}
			}
		}()
	})
}

// Stop halts the ticker and waits for the sampling goroutine to exit. Safe
// to call without Start.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() { close(s.quit) })
	s.startOnce.Do(func() { close(s.done) }) // never started: mark done
	<-s.done
}

// OnTick registers fn to run after every Tick, outside the sampler lock —
// hooks may call back into the sampler (the alert engine evaluates its
// windows this way). Register before Start.
func (s *Sampler) OnTick(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hooks = append(s.hooks, fn)
}

// Tick advances every series by one sample, then runs the OnTick hooks.
// Exported so tests (and servers without a background ticker) can drive the
// sampler deterministically.
func (s *Sampler) Tick() {
	s.mu.Lock()
	i := int(s.ticks % uint64(s.size))
	for _, ser := range s.series {
		ser.ring[i] = ser.sample()
	}
	s.ticks++
	hooks := s.hooks
	s.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// Last returns the most recent sample of the named series (ok=false before
// the first tick or for an unknown name).
func (s *Sampler) Last(name string) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ticks == 0 {
		return 0, false
	}
	i := int((s.ticks - 1) % uint64(s.size))
	for _, ser := range s.series {
		if ser.name == name {
			return ser.ring[i], true
		}
	}
	return 0, false
}

// MaxRecent returns the maximum over the last n samples of the named series
// (ok=false before the first tick or for an unknown name). Health checks
// use this so a single quiet tick cannot mask a breached SLO.
func (s *Sampler) MaxRecent(name string, n int) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ticks == 0 {
		return 0, false
	}
	for _, ser := range s.series {
		if ser.name != name {
			continue
		}
		have := int(s.ticks)
		if have > s.size {
			have = s.size
		}
		if n > have {
			n = have
		}
		best := 0.0
		for k := 0; k < n; k++ {
			v := ser.ring[int((s.ticks-1-uint64(k))%uint64(s.size))]
			if k == 0 || v > best {
				best = v
			}
		}
		return best, true
	}
	return 0, false
}

// CountAbove returns how many of the last n samples of the named series
// exceed threshold, along with how many samples the window actually holds
// (have ≤ n before the ring fills). ok=false for an unknown name. The
// burn-rate alert engine treats over/have as the window's error fraction.
func (s *Sampler) CountAbove(name string, n int, threshold float64) (over, have int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ser := range s.series {
		if ser.name != name {
			continue
		}
		have = int(s.ticks)
		if have > s.size {
			have = s.size
		}
		if n < have {
			have = n
		}
		for k := 0; k < have; k++ {
			if ser.ring[int((s.ticks-1-uint64(k))%uint64(s.size))] > threshold {
				over++
			}
		}
		return over, have, true
	}
	return 0, 0, false
}

// TSSeries is one series of a snapshot, oldest sample first.
type TSSeries struct {
	Name    string    `json:"name"`
	Samples []float64 `json:"samples"`
}

// TSSnapshot is the JSON body of GET /v1/timeseries.
type TSSnapshot struct {
	// IntervalMS is the sampling resolution; Ticks the number of samples
	// taken since start (samples are capped at the window length).
	IntervalMS float64    `json:"interval_ms"`
	Ticks      uint64     `json:"ticks"`
	Series     []TSSeries `json:"series"`
}

// Snapshot copies the current window of every series, oldest sample first.
func (s *Sampler) Snapshot() TSSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := TSSnapshot{
		IntervalMS: float64(s.interval) / float64(time.Millisecond),
		Ticks:      s.ticks,
		Series:     make([]TSSeries, 0, len(s.series)),
	}
	have := int(s.ticks)
	if have > s.size {
		have = s.size
	}
	for _, ser := range s.series {
		samples := make([]float64, have)
		for k := 0; k < have; k++ {
			samples[k] = ser.ring[int((s.ticks-uint64(have-k))%uint64(s.size))]
		}
		out.Series = append(out.Series, TSSeries{Name: ser.name, Samples: samples})
	}
	return out
}
