// Package obs is the serving-path observability layer: lock-free
// latency/size histograms with percentile snapshots, a per-update tracer
// that resolves one Engine.Apply into per-layer spans, and a
// Prometheus-text-format registry for HTTP exposition.
//
// The paper's headline claim is tail behaviour — InkStream's per-update
// latency stays near-instantaneous while baselines blow up with
// affected-area size — so the serving stack must be able to report latency
// *distributions* live, not lifetime means. Everything in this package is
// built to be left on in production: Histogram.Observe is a handful of
// atomic adds (no locks, no allocation), and the tracer reuses one buffer
// per engine so the steady-state hot path stays allocation-free.
package obs
