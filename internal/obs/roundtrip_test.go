package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// TestRegistryParserRoundTrip is the exposition contract test: ParseText
// must parse exactly what Registry.Handler()/WriteText emits — counters,
// gauges, labeled families, histogram bucket/sum/count series, histogram
// vecs, and the OpenMetrics trace-ID exemplar annotations the flight
// recorder attaches — and the parsed values must equal the registered ones.
func TestRegistryParserRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("rt_requests_total", "Requests.", func() float64 { return 42 })
	r.GaugeFunc("rt_temperature", "Degrees.", func() float64 { return -3.5 })
	r.LabeledCounterFunc("rt_visits_total", "Visits.", func() []LabeledValue {
		return SortedLabeled("kind", map[string]int64{"a": 7, "b": 9})
	})

	h := NewLatencyHistogram()
	h.EnableExemplars()
	h.ObserveDuration(3 * time.Millisecond)
	h.ObserveDuration(40 * time.Microsecond)
	h.Exemplar((3 * time.Millisecond).Nanoseconds(), 0x2a)
	r.Histogram("rt_latency_seconds", "Latency.", 1e-9, h)

	hv := []LabeledHistogram{
		{Labels: `agg="max"`, H: NewHistogram(1, 1<<20)},
		{Labels: `agg="sum"`, H: NewHistogram(1, 1<<20)},
	}
	hv[0].H.Observe(5)
	hv[1].H.Observe(1000)
	r.HistogramVec("rt_drift", "Drift.", 1e-9, hv)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}

	if v, ok := samples.Get("rt_requests_total"); !ok || v != 42 {
		t.Errorf("counter: got %v ok=%v", v, ok)
	}
	if v, ok := samples.Get("rt_temperature"); !ok || v != -3.5 {
		t.Errorf("gauge: got %v ok=%v", v, ok)
	}
	if v, ok := samples.Get("rt_visits_total", "kind", "b"); !ok || v != 9 {
		t.Errorf("labeled counter: got %v ok=%v", v, ok)
	}

	// Histogram series: count, sum and monotone cumulative buckets ending in
	// +Inf at the total count.
	if v, ok := samples.Get("rt_latency_seconds_count"); !ok || v != 2 {
		t.Errorf("hist count: got %v ok=%v", v, ok)
	}
	wantSum := (3*time.Millisecond + 40*time.Microsecond).Seconds()
	if v, ok := samples.Get("rt_latency_seconds_sum"); !ok || math.Abs(v-wantSum) > 1e-12 {
		t.Errorf("hist sum: got %v want %v", v, wantSum)
	}
	les, cum := samples.Buckets("rt_latency_seconds")
	if len(les) == 0 || !math.IsInf(les[len(les)-1], 1) {
		t.Fatalf("buckets must end at +Inf: %v", les)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("buckets not cumulative: %v", cum)
		}
	}
	if cum[len(cum)-1] != 2 {
		t.Errorf("+Inf bucket %v, want 2", cum[len(cum)-1])
	}

	// Exactly one bucket carries the exemplar, its trace ID renders as 16
	// hex digits, and its value is in the exposed unit (seconds).
	var found int
	for _, s := range samples.Family("rt_latency_seconds_bucket") {
		if s.Exemplar == nil {
			continue
		}
		found++
		if id := s.Exemplar.TraceID(); id != TraceIDString(0x2a) {
			t.Errorf("exemplar trace_id %q, want %q", id, TraceIDString(0x2a))
		}
		if want := 0.003; math.Abs(s.Exemplar.Value-want) > 1e-12 {
			t.Errorf("exemplar value %v, want %v", s.Exemplar.Value, want)
		}
		// The exemplar must sit in the bucket that counted the observation.
		le, err := parseValue(s.Labels["le"])
		if err != nil || le < 0.003 {
			t.Errorf("exemplar on bucket le=%v, below the observation", le)
		}
	}
	if found != 1 {
		t.Errorf("found %d exemplars, want 1", found)
	}

	// Histogram vec: both variants share the family and are distinguished by
	// their label, with per-variant counts.
	if v, ok := samples.Get("rt_drift_count", "agg", "max"); !ok || v != 1 {
		t.Errorf("vec count (max): got %v ok=%v", v, ok)
	}
	if v, ok := samples.Get("rt_drift_count", "agg", "sum"); !ok || v != 1 {
		t.Errorf("vec count (sum): got %v ok=%v", v, ok)
	}
	for _, s := range samples.Family("rt_drift_bucket") {
		if s.Labels["agg"] == "" || s.Labels["le"] == "" {
			t.Fatalf("vec bucket missing labels: %v", s.Labels)
		}
	}

	// Unexemplared families must not grow annotations.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "rt_requests_total") && strings.Contains(line, "#") {
			t.Errorf("counter line carries an exemplar: %q", line)
		}
	}
}

// TestRoundAndAlertFamiliesRoundTrip extends the exposition contract to the
// PR-7 families: the round-duration histogram with a round-ID exemplar, the
// per-shard straggler counter, the attribution gauges, and everything the
// alert engine registers.
func TestRoundAndAlertFamiliesRoundTrip(t *testing.T) {
	r := NewRegistry()

	rd := NewLatencyHistogram()
	rd.EnableExemplars()
	rd.ObserveDuration(2 * time.Millisecond)
	rd.ObserveDuration(18 * time.Millisecond)
	roundID := uint64(0x51)
	rd.Exemplar((18 * time.Millisecond).Nanoseconds(), roundID)
	r.Histogram("inkstream_round_duration_seconds", "Round open-to-published duration.", 1e-9, rd)

	r.CounterFunc("inkstream_round_barrier_wait_seconds_total", "Mean per-shard barrier wait.", func() float64 { return 1.25 })
	r.CounterFunc("inkstream_round_compute_seconds_total", "Mean per-shard compute.", func() float64 { return 3.75 })
	r.CounterFunc("inkstream_round_broadcast_seconds_total", "Router-side broadcast merge.", func() float64 { return 0.5 })
	r.GaugeFunc("inkstream_round_barrier_share", "Last round barrier share.", func() float64 { return 0.42 })
	r.GaugeFunc("inkstream_round_straggler_skew", "Last round straggler skew.", func() float64 { return 1.7 })
	r.LabeledCounterFunc("inkstream_shard_straggler_rounds_total", "Rounds each shard straggled.", func() []LabeledValue {
		return SortedLabeled("shard", map[string]int64{"0": 3, "1": 9})
	})

	sampler := NewSampler(time.Second, 16)
	lat := 0.0
	sampler.Gauge("ack_p99_ms", func() float64 { return lat })
	eng := NewAlertEngine(sampler)
	eng.SetRules(DefaultBurnRateRules("ack_p99_ms", 5)...)
	eng.Register(r)
	lat = 50
	for i := 0; i < 4; i++ {
		sampler.Tick()
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}

	if v, ok := samples.Get("inkstream_round_duration_seconds_count"); !ok || v != 2 {
		t.Errorf("round duration count: got %v ok=%v", v, ok)
	}
	var found int
	for _, s := range samples.Family("inkstream_round_duration_seconds_bucket") {
		if s.Exemplar == nil {
			continue
		}
		found++
		if id := s.Exemplar.TraceID(); id != TraceIDString(roundID) {
			t.Errorf("round exemplar trace_id %q, want %q", id, TraceIDString(roundID))
		}
		if want := 0.018; math.Abs(s.Exemplar.Value-want) > 1e-12 {
			t.Errorf("round exemplar value %v, want %v", s.Exemplar.Value, want)
		}
	}
	if found != 1 {
		t.Errorf("found %d round exemplars, want 1", found)
	}

	if v, ok := samples.Get("inkstream_round_barrier_wait_seconds_total"); !ok || v != 1.25 {
		t.Errorf("barrier wait: got %v ok=%v", v, ok)
	}
	if v, ok := samples.Get("inkstream_round_barrier_share"); !ok || v != 0.42 {
		t.Errorf("barrier share: got %v ok=%v", v, ok)
	}
	if v, ok := samples.Get("inkstream_shard_straggler_rounds_total", "shard", "1"); !ok || v != 9 {
		t.Errorf("straggler rounds: got %v ok=%v", v, ok)
	}

	// Alert families: the fast rule fires after two all-bad evals, so four
	// ticks of breached latency must expose a firing count and per-alert
	// state/burn samples that survive the round trip.
	if v, ok := samples.Get("inkstream_alerts_firing"); !ok || v < 1 {
		t.Errorf("alerts firing: got %v ok=%v", v, ok)
	}
	if v, ok := samples.Get("inkstream_alert_evals_total"); !ok || v != 4 {
		t.Errorf("alert evals: got %v ok=%v", v, ok)
	}
	if v, ok := samples.Get("inkstream_alert_state", "alert", "ack_p99_ms-slo-fast"); !ok || v != float64(AlertFiring) {
		t.Errorf("fast alert state: got %v ok=%v", v, ok)
	}
	if v, ok := samples.Get("inkstream_alert_burn_rate", "alert", "ack_p99_ms-slo-fast", "window", "12"); !ok || v <= 10 {
		t.Errorf("fast alert burn: got %v ok=%v", v, ok)
	}
}

// TestRuntimeAndBlackBoxFamiliesRoundTrip extends the exposition contract
// to the PR-10 families: the runtime telemetry plane's gauges, counters and
// pause/sched histograms, and the black box capture counters.
func TestRuntimeAndBlackBoxFamiliesRoundTrip(t *testing.T) {
	r := NewRegistry()
	rt := NewRuntime()
	rt.Collect()
	rt.Register(r)

	bb := NewBlackBox(BlackBoxConfig{Dir: t.TempDir(), Debounce: -1,
		Source: BlackBoxSource{Runtime: rt}})
	defer bb.Close()
	bb.Register(r)
	if _, err := bb.Capture("manual", ""); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}

	if v, ok := samples.Get("inkstream_runtime_heap_inuse_bytes"); !ok || v <= 0 {
		t.Errorf("heap gauge: got %v ok=%v", v, ok)
	}
	if v, ok := samples.Get("inkstream_runtime_goroutines"); !ok || v < 1 {
		t.Errorf("goroutines gauge: got %v ok=%v", v, ok)
	}
	if v, ok := samples.Get("inkstream_runtime_gc_cycles_total"); !ok || v < 0 {
		t.Errorf("gc cycles counter: got %v ok=%v", v, ok)
	}
	if v, ok := samples.Get("inkstream_runtime_collects_total"); !ok || v < 1 {
		t.Errorf("collects counter: got %v ok=%v", v, ok)
	}
	// Both runtime histograms expose well-formed cumulative bucket series.
	for _, fam := range []string{"inkstream_runtime_gc_pause_seconds", "inkstream_runtime_sched_latency_seconds"} {
		les, cum := samples.Buckets(fam)
		if len(les) == 0 || !math.IsInf(les[len(les)-1], 1) {
			t.Fatalf("%s buckets must end at +Inf: %v", fam, les)
		}
		for i := 1; i < len(cum); i++ {
			if cum[i] < cum[i-1] {
				t.Fatalf("%s buckets not cumulative: %v", fam, cum)
			}
		}
	}

	if v, ok := samples.Get("inkstream_blackbox_captures_total"); !ok || v != 1 {
		t.Errorf("blackbox captures: got %v ok=%v", v, ok)
	}
	if v, ok := samples.Get("inkstream_blackbox_errors_total"); !ok || v != 0 {
		t.Errorf("blackbox errors: got %v ok=%v", v, ok)
	}
	if v, ok := samples.Get("inkstream_blackbox_last_capture_timestamp_seconds"); !ok || v <= 0 {
		t.Errorf("blackbox last capture: got %v ok=%v", v, ok)
	}
}

// TestParseExemplarErrors: malformed exemplar annotations must be rejected,
// not silently dropped.
func TestParseExemplarErrors(t *testing.T) {
	for _, line := range []string{
		`m_bucket{le="1"} 2 # 0.5`,                     // no label set
		`m_bucket{le="1"} 2 # {trace_id="aa"`,          // unterminated
		`m_bucket{le="1"} 2 # {trace_id="aa"} x`,       // bad value
		`m_bucket{le="1"} 2 # {trace_id="aa"} 0.5 0.6`, // two values
	} {
		if _, err := ParseText(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
	// And a well-formed one parses.
	ss, err := ParseText(strings.NewReader(`m_bucket{le="1"} 2 # {trace_id="00000000000000aa"} 0.5` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ss[0].Exemplar == nil || ss[0].Exemplar.Value != 0.5 || ss[0].Exemplar.TraceID() != "00000000000000aa" {
		t.Errorf("bad exemplar: %+v", ss[0].Exemplar)
	}
}
