package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// SLO burn-rate alerting (DESIGN.md §12): a declarative alert engine
// evaluated over the Sampler ring.
//
// A rule names a sampled series (e.g. the windowed "ack_p99_ms"), a target
// the series must stay under, and an availability objective — the fraction
// of ticks allowed over target is the error budget (1 − Objective). Each
// eval computes, per window, the burn rate: the fraction of the window's
// ticks over target divided by the budget. Burn 1.0 spends the budget
// exactly at the objective's pace; burn 10 spends a month's budget in three
// days. A rule breaches only when *every* window burns past its limit —
// the multi-window trick that makes alerts both fast (short window: still
// happening now) and unflappable (long window: has been happening long
// enough to matter).
//
// Alerts run a pending → firing → resolved state machine: a breach makes
// the alert pending, ForTicks consecutive breached evals promote it to
// firing, recovery moves it to resolved (still visible while the operator
// looks), and a quiet spell retires it to inactive. Firing alerts flip
// /healthz to degraded.

// BurnWindow is one evaluation window of a rule.
type BurnWindow struct {
	// Ticks is the window length in sampler ticks; MaxBurn the burn rate
	// above which the window counts as breached.
	Ticks   int     `json:"ticks"`
	MaxBurn float64 `json:"max_burn"`
}

// AlertRule declares one burn-rate alert over a sampled series.
type AlertRule struct {
	Name   string `json:"name"`
	Series string `json:"series"`
	// Target is the per-tick objective in the series' unit: a tick with a
	// sample above Target is an error tick.
	Target float64 `json:"target"`
	// Objective is the tolerated good-tick fraction (e.g. 0.99: 1% of
	// ticks may exceed Target before the budget burns at rate 1).
	Objective float64 `json:"objective"`
	// Windows must all burn past their limits for the rule to breach.
	Windows []BurnWindow `json:"windows"`
	// ForTicks is how many consecutive breached evals a pending alert
	// needs before it fires (minimum 1).
	ForTicks int `json:"for_ticks"`
}

// AlertState is the lifecycle position of one alert.
type AlertState int

const (
	AlertInactive AlertState = iota
	AlertPending
	AlertFiring
	AlertResolved
)

var alertStateNames = [...]string{"inactive", "pending", "firing", "resolved"}

func (s AlertState) String() string {
	if s >= 0 && int(s) < len(alertStateNames) {
		return alertStateNames[s]
	}
	return fmt.Sprintf("state%d", int(s))
}

// alertInst is one rule plus its live state.
type alertInst struct {
	rule        AlertRule
	forTicks    int
	hold        int // clear evals before resolved retires to inactive
	state       AlertState
	since       time.Time
	breaches    int // consecutive breached evals while pending
	clears      int // consecutive clear evals while resolved
	burn        []float64
	transitions int64
}

// AlertEngine evaluates a rule set against a Sampler, one eval per tick.
type AlertEngine struct {
	sampler *Sampler

	mu          sync.Mutex
	alerts      []*alertInst
	evals       int64
	transitions int64
	onFiring    []func(name, reason string)
}

// NewAlertEngine binds an engine to the sampler whose series the rules
// reference; it evaluates automatically after every sampler tick.
func NewAlertEngine(s *Sampler) *AlertEngine {
	e := &AlertEngine{sampler: s}
	s.OnTick(e.Eval)
	return e
}

// SetRules replaces the rule set (state resets to inactive). Windows
// shorter than 1 tick and ForTicks below 1 are normalized up.
func (e *AlertEngine) SetRules(rules ...AlertRule) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.alerts = e.alerts[:0]
	for _, r := range rules {
		inst := &alertInst{rule: r, forTicks: r.ForTicks, burn: make([]float64, len(r.Windows))}
		if inst.forTicks < 1 {
			inst.forTicks = 1
		}
		for i, w := range r.Windows {
			if w.Ticks < 1 {
				inst.rule.Windows[i].Ticks = 1
			}
			if w.Ticks > inst.hold {
				inst.hold = w.Ticks
			}
		}
		if inst.hold < 1 {
			inst.hold = 1
		}
		e.alerts = append(e.alerts, inst)
	}
}

// Rules returns the active rule set.
func (e *AlertEngine) Rules() []AlertRule {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]AlertRule, len(e.alerts))
	for i, a := range e.alerts {
		out[i] = a.rule
	}
	return out
}

// OnFiring registers fn to run whenever an alert transitions into the
// firing state (pending→firing or resolved→firing), with the alert name
// and a rendered reason. Hooks run after the evaluation pass, outside the
// engine lock, on the evaluating goroutine (the sampler tick) — they must
// not block; the black box capture trigger enqueues and returns. Register
// before the sampler starts.
func (e *AlertEngine) OnFiring(fn func(name, reason string)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.onFiring = append(e.onFiring, fn)
}

// Eval advances every alert by one evaluation against the sampler window.
// Called automatically per sampler tick; exported so tests (and servers
// driving Tick by hand) stay deterministic.
func (e *AlertEngine) Eval() {
	type firedAlert struct{ name, reason string }
	var fired []firedAlert
	e.mu.Lock()
	e.evals++
	now := time.Now()
	for _, a := range e.alerts {
		breach := len(a.rule.Windows) > 0
		budget := 1 - a.rule.Objective
		if budget <= 0 {
			budget = 1e-9
		}
		for wi, w := range a.rule.Windows {
			burn := 0.0
			if over, have, ok := e.sampler.CountAbove(a.rule.Series, w.Ticks, a.rule.Target); ok && have > 0 {
				burn = float64(over) / float64(have) / budget
			}
			a.burn[wi] = burn
			if burn <= w.MaxBurn {
				breach = false
			}
		}
		switch a.state {
		case AlertInactive:
			if breach {
				a.to(AlertPending, now, e)
				a.breaches = 1
			}
		case AlertPending:
			if !breach {
				a.to(AlertInactive, now, e)
			} else if a.breaches++; a.breaches > a.forTicks {
				a.to(AlertFiring, now, e)
				fired = append(fired, firedAlert{a.rule.Name, a.firingReason()})
			}
		case AlertFiring:
			if !breach {
				a.to(AlertResolved, now, e)
				a.clears = 1
			}
		case AlertResolved:
			if breach {
				a.to(AlertFiring, now, e)
				fired = append(fired, firedAlert{a.rule.Name, a.firingReason()})
			} else if a.clears++; a.clears > a.hold {
				a.to(AlertInactive, now, e)
			}
		}
	}
	hooks := e.onFiring
	e.mu.Unlock()
	for _, f := range fired {
		for _, fn := range hooks {
			fn(f.name, f.reason)
		}
	}
}

// firingReason renders the degraded-health line for one alert; callers hold
// the engine lock.
func (a *alertInst) firingReason() string {
	worst := 0.0
	for _, b := range a.burn {
		if b > worst {
			worst = b
		}
	}
	return fmt.Sprintf("alert %s firing: %s over %g, burn rate %.1fx budget",
		a.rule.Name, a.rule.Series, a.rule.Target, worst)
}

func (a *alertInst) to(s AlertState, now time.Time, e *AlertEngine) {
	a.state = s
	a.since = now
	a.transitions++
	e.transitions++
}

// Firing returns the names of currently firing alerts.
func (e *AlertEngine) Firing() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, a := range e.alerts {
		if a.state == AlertFiring {
			out = append(out, a.rule.Name)
		}
	}
	return out
}

// FiringReasons renders one /healthz degraded reason per firing alert.
func (e *AlertEngine) FiringReasons() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, a := range e.alerts {
		if a.state != AlertFiring {
			continue
		}
		out = append(out, a.firingReason())
	}
	return out
}

// WindowBurn is one window's last evaluated burn rate.
type WindowBurn struct {
	Ticks   int     `json:"ticks"`
	MaxBurn float64 `json:"max_burn"`
	Burn    float64 `json:"burn"`
}

// AlertStatus is one alert's slice of GET /v1/alerts.
type AlertStatus struct {
	Name         string       `json:"name"`
	Series       string       `json:"series"`
	Target       float64      `json:"target"`
	Objective    float64      `json:"objective"`
	State        string       `json:"state"`
	SinceSeconds float64      `json:"since_seconds,omitempty"`
	Windows      []WindowBurn `json:"windows"`
	Transitions  int64        `json:"transitions"`
}

// AlertsResponse is the body of GET /v1/alerts.
type AlertsResponse struct {
	Evals  int64         `json:"evals"`
	Firing int           `json:"firing"`
	Alerts []AlertStatus `json:"alerts"`
}

// Status snapshots every alert for GET /v1/alerts.
func (e *AlertEngine) Status() AlertsResponse {
	e.mu.Lock()
	defer e.mu.Unlock()
	resp := AlertsResponse{Alerts: make([]AlertStatus, 0, len(e.alerts)), Evals: e.evals}
	now := time.Now()
	for _, a := range e.alerts {
		st := AlertStatus{
			Name:        a.rule.Name,
			Series:      a.rule.Series,
			Target:      a.rule.Target,
			Objective:   a.rule.Objective,
			State:       a.state.String(),
			Windows:     make([]WindowBurn, len(a.rule.Windows)),
			Transitions: a.transitions,
		}
		if a.state != AlertInactive && !a.since.IsZero() {
			st.SinceSeconds = now.Sub(a.since).Seconds()
		}
		for wi, w := range a.rule.Windows {
			st.Windows[wi] = WindowBurn{Ticks: w.Ticks, MaxBurn: w.MaxBurn, Burn: a.burn[wi]}
		}
		if a.state == AlertFiring {
			resp.Firing++
		}
		resp.Alerts = append(resp.Alerts, st)
	}
	return resp
}

// ServeHTTP serves GET /v1/alerts.
func (e *AlertEngine) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(e.Status())
}

// Register exposes the engine's state as metric families on r. Values are
// sampled under the engine lock at scrape time only.
func (e *AlertEngine) Register(r *Registry) {
	r.GaugeFunc("inkstream_alerts_firing",
		"Burn-rate alerts currently in the firing state (non-zero flips /healthz to degraded).",
		func() float64 { return float64(len(e.Firing())) })
	r.CounterFunc("inkstream_alert_evals_total",
		"Alert-engine evaluation passes (one per time-series tick).",
		func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return float64(e.evals)
		})
	r.CounterFunc("inkstream_alert_transitions_total",
		"Alert state-machine transitions (inactive/pending/firing/resolved).",
		func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return float64(e.transitions)
		})
	r.LabeledGaugeFunc("inkstream_alert_state",
		"Per-alert state: 0 inactive, 1 pending, 2 firing, 3 resolved.",
		func() []LabeledValue {
			e.mu.Lock()
			defer e.mu.Unlock()
			out := make([]LabeledValue, len(e.alerts))
			for i, a := range e.alerts {
				out[i] = LabeledValue{
					Labels: fmt.Sprintf(`alert=%q`, a.rule.Name),
					Value:  float64(a.state),
				}
			}
			return out
		})
	r.LabeledGaugeFunc("inkstream_alert_burn_rate",
		"Last evaluated burn rate per alert window (error-tick fraction over budget; 1.0 burns the budget exactly at the objective's pace).",
		func() []LabeledValue {
			e.mu.Lock()
			defer e.mu.Unlock()
			var out []LabeledValue
			for _, a := range e.alerts {
				for wi, w := range a.rule.Windows {
					out = append(out, LabeledValue{
						Labels: fmt.Sprintf(`alert=%q,window="%d"`, a.rule.Name, w.Ticks),
						Value:  a.burn[wi],
					})
				}
			}
			return out
		})
}

// DefaultBurnRateRules is the standard fast/slow multi-window pair over a
// latency series with the given target (same unit as the series), at a 99%
// tick objective. With the serving sampler (1s ticks) the fast rule fires
// after ~10% of a minute breaches and the slow rule catches sustained
// low-grade burn over the full 10-minute ring; both deployment shapes
// install the same pair, so /v1/alerts is shape-independent.
func DefaultBurnRateRules(series string, target float64) []AlertRule {
	return []AlertRule{
		{
			Name: series + "-slo-fast", Series: series,
			Target: target, Objective: 0.99,
			Windows:  []BurnWindow{{Ticks: 60, MaxBurn: 10}, {Ticks: 12, MaxBurn: 10}},
			ForTicks: 1,
		},
		{
			Name: series + "-slo-slow", Series: series,
			Target: target, Objective: 0.99,
			Windows:  []BurnWindow{{Ticks: 600, MaxBurn: 2}, {Ticks: 60, MaxBurn: 2}},
			ForTicks: 2,
		},
	}
}
