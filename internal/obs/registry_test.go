package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testRegistry() (*Registry, *Histogram) {
	reg := NewRegistry()
	var served float64 = 42
	reg.CounterFunc("ink_updates_total", "Updates served.", func() float64 { return served })
	reg.GaugeFunc("ink_pending", "Pending queue depth.", func() float64 { return 3 })
	reg.LabeledCounterFunc("ink_node_visits_total", "Visits by condition.", func() []LabeledValue {
		return SortedLabeled("condition", map[string]int64{"pruned": 7, "no-reset": 12})
	})
	h := NewHistogram(1024, 1<<16)
	reg.Histogram("ink_update_latency_seconds", "Update latency.", 1e-9, h)
	return reg, h
}

// TestExpositionGolden pins the exact text format: HELP/TYPE headers,
// label rendering, histogram bucket series.
func TestExpositionGolden(t *testing.T) {
	reg, h := testRegistry()
	h.Observe(1500) // bucket (1024, 2048]
	h.Observe(5000) // bucket (4096, 8192]
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP ink_updates_total Updates served.
# TYPE ink_updates_total counter
ink_updates_total 42
# HELP ink_pending Pending queue depth.
# TYPE ink_pending gauge
ink_pending 3
# HELP ink_node_visits_total Visits by condition.
# TYPE ink_node_visits_total counter
ink_node_visits_total{condition="no-reset"} 12
ink_node_visits_total{condition="pruned"} 7
# HELP ink_update_latency_seconds Update latency.
# TYPE ink_update_latency_seconds histogram
ink_update_latency_seconds_bucket{le="1.024e-06"} 0
ink_update_latency_seconds_bucket{le="2.048e-06"} 1
ink_update_latency_seconds_bucket{le="4.096e-06"} 1
ink_update_latency_seconds_bucket{le="8.192e-06"} 2
ink_update_latency_seconds_bucket{le="1.6384e-05"} 2
ink_update_latency_seconds_bucket{le="3.2768e-05"} 2
ink_update_latency_seconds_bucket{le="6.5536e-05"} 2
ink_update_latency_seconds_bucket{le="+Inf"} 2
ink_update_latency_seconds_sum 6.5000000000000004e-06
ink_update_latency_seconds_count 2
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionParses round-trips the exposition through the parser and
// checks the Prometheus histogram invariants: buckets are cumulative and
// monotone, the +Inf bucket equals _count, and _sum is present.
func TestExpositionParses(t *testing.T) {
	reg, h := testRegistry()
	for i := int64(0); i < 50; i++ {
		h.Observe(1 << uint(i%18))
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if v, ok := samples.Get("ink_updates_total"); !ok || v != 42 {
		t.Errorf("ink_updates_total = %v, %v", v, ok)
	}
	if v, ok := samples.Get("ink_node_visits_total", "condition", "pruned"); !ok || v != 7 {
		t.Errorf("labeled lookup = %v, %v", v, ok)
	}

	les, cum := samples.Buckets("ink_update_latency_seconds")
	if len(les) == 0 {
		t.Fatal("no buckets parsed")
	}
	if !math.IsInf(les[len(les)-1], 1) {
		t.Fatal("last bucket is not +Inf")
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("buckets not cumulative at %d: %v", i, cum)
		}
	}
	count, ok := samples.Get("ink_update_latency_seconds_count")
	if !ok || count != cum[len(cum)-1] {
		t.Errorf("_count %v != +Inf bucket %v", count, cum[len(cum)-1])
	}
	if count != 50 {
		t.Errorf("_count = %v, want 50", count)
	}
	if _, ok := samples.Get("ink_update_latency_seconds_sum"); !ok {
		t.Error("_sum missing")
	}
}

func TestRegistryHandler(t *testing.T) {
	reg, _ := testRegistry()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if _, err := ParseText(rec.Body); err != nil {
		t.Errorf("handler output does not parse: %v", err)
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	reg := NewRegistry()
	reg.CounterFunc("ok_total", "", func() float64 { return 0 })
	for _, fn := range []func(){
		func() { reg.CounterFunc("ok_total", "", func() float64 { return 0 }) }, // duplicate
		func() { reg.GaugeFunc("bad name", "", func() float64 { return 0 }) },   // invalid
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad registration did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, bad := range []string{
		"novalue\n",
		"name{le=\"unterminated} 1\n",
		"name 1 2 3\n",
		"# TYPE foo badtype\n",
		"0bad_name 1\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted", bad)
		}
	}
	// Free-form comments and empty lines are fine.
	ok := "# just a comment\n\nname 1\nname2{a=\"b\",c=\"d\"} +Inf\n"
	samples, err := ParseText(strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 || samples[1].Labels["c"] != "d" {
		t.Errorf("samples = %+v", samples)
	}
}

func TestBucketQuantile(t *testing.T) {
	les := []float64{1, 2, 4, 8, math.Inf(1)}
	cum := []float64{10, 20, 40, 80, 80}
	// Median rank 40 lands exactly at the (2,4] bucket boundary.
	if q := BucketQuantile(les, cum, 0.5); q != 4 {
		t.Errorf("q50 = %g, want 4", q)
	}
	// q99 rank 79.2 inside (4,8]: 4 + 4*(79.2-40)/40 = 7.92.
	if q := BucketQuantile(les, cum, 0.99); math.Abs(q-7.92) > 1e-9 {
		t.Errorf("q99 = %g, want 7.92", q)
	}
	// All mass in +Inf resolves to the last finite bound.
	if q := BucketQuantile([]float64{1, math.Inf(1)}, []float64{0, 5}, 0.5); q != 1 {
		t.Errorf("overflow q = %g, want 1", q)
	}
	if q := BucketQuantile(nil, nil, 0.5); q != 0 {
		t.Errorf("empty q = %g", q)
	}
	if q := BucketQuantile(les, []float64{0, 0, 0, 0, 0}, 0.9); q != 0 {
		t.Errorf("zero-mass q = %g", q)
	}
}

func TestTraceRendering(t *testing.T) {
	tr := &Trace{
		Total:      312 * time.Microsecond,
		DeltaEdges: 16,
		DeltaApply: 8 * time.Microsecond,
		CondNames:  []string{"pruned", "no-reset"},
		Layers: []LayerSpan{
			{Layer: 0, EventsIn: 32, EventsOut: 118, Nodes: 45, BytesFetched: 1024,
				Cond: [MaxCond]int64{3, 42}, Elapsed: 54 * time.Microsecond},
			{Layer: 1, EventsIn: 118, Nodes: 60, Elapsed: 200 * time.Microsecond},
		},
	}
	line := tr.String()
	for _, want := range []string{"dG=16", "total=312µs", "L0[", "pruned=3", "no-reset=42", "L1[", "nodes=60"} {
		if !strings.Contains(line, want) {
			t.Errorf("trace line missing %q: %s", want, line)
		}
	}
	if tr.Events() != 150 || tr.NodesVisited() != 105 {
		t.Errorf("events=%d nodes=%d", tr.Events(), tr.NodesVisited())
	}

	js, err := tr.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"total_us":312`, `"delta_edges":16`, `"pruned":3`, `"layer":1`} {
		if !strings.Contains(string(js), want) {
			t.Errorf("trace JSON missing %q: %s", want, js)
		}
	}

	// Reset keeps capacity and names, zeroes data.
	tr.Reset(3)
	if len(tr.Layers) != 3 || tr.Layers[0].EventsIn != 0 || tr.Layers[2].Layer != 2 {
		t.Errorf("reset layers: %+v", tr.Layers)
	}
	if tr.CondNames == nil || tr.Total != 0 {
		t.Error("reset lost names or kept totals")
	}
}
