package obs

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(1024, 1<<20)
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {1024, 0},
		{1025, 1}, {2048, 1}, {2049, 2},
		{1 << 20, 10}, {1<<20 + 1, 11 /* overflow */},
	}
	for _, c := range cases {
		if got := h.bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if len(h.bounds) != 11 {
		t.Fatalf("bounds = %d, want 11 (2^10..2^20)", len(h.bounds))
	}
	if h.bounds[0] != 1024 || h.bounds[10] != 1<<20 {
		t.Errorf("bounds span [%d, %d]", h.bounds[0], h.bounds[10])
	}
}

func TestHistogramMinRoundsUpToPowerOfTwo(t *testing.T) {
	h := NewHistogram(1000, 4000)
	if h.bounds[0] != 1024 {
		t.Errorf("min bound = %d, want 1024", h.bounds[0])
	}
	h = NewHistogram(1, 8)
	if h.bounds[0] != 1 || len(h.bounds) != 4 {
		t.Errorf("bounds = %v, want [1 2 4 8]", h.bounds)
	}
}

func TestHistogramSnapshotAndQuantiles(t *testing.T) {
	h := NewHistogram(1, 1<<16)
	// 100 observations of value i+1 (1..100): p50 ≈ 50, p99 ≈ 99.
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum != 5050 {
		t.Errorf("sum = %d, want 5050", s.Sum)
	}
	if s.Max != 100 {
		t.Errorf("max = %d, want 100", s.Max)
	}
	// Log-bucket estimates are coarse; accept the right bucket scale.
	if p := s.P50(); p < 33 || p > 64 {
		t.Errorf("p50 = %d, want within (32, 64]", p)
	}
	if p := s.P99(); p < 65 || p > 128 {
		t.Errorf("p99 = %d, want within (64, 128]", p)
	}
	if q := s.Quantile(1); q > s.Max {
		t.Errorf("q100 = %d exceeds max %d", q, s.Max)
	}
	if got := s.Mean(); got != 50.5 {
		t.Errorf("mean = %g, want 50.5", got)
	}
}

func TestHistogramOverflowQuantileCapsAtMax(t *testing.T) {
	h := NewHistogram(1, 4)
	h.Observe(1000)
	h.Observe(2000)
	s := h.Snapshot()
	if s.Counts[len(s.Counts)-1] != 2 {
		t.Fatalf("overflow count = %d", s.Counts[len(s.Counts)-1])
	}
	if q := s.Quantile(0.99); q > 2000 {
		t.Errorf("q99 = %d, want <= tracked max 2000", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	s := NewHistogram(1, 8).Snapshot()
	if s.Count != 0 || s.P50() != 0 || s.P99() != 0 || s.Mean() != 0 {
		t.Errorf("empty snapshot: %+v", s)
	}
	var nilH *Histogram
	nilH.Observe(5) // must not panic
	if s := nilH.Snapshot(); s.Count != 0 {
		t.Error("nil histogram snapshot non-empty")
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewLatencyHistogram()
	h.ObserveDuration(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Sum != (3 * time.Millisecond).Nanoseconds() {
		t.Errorf("sum = %d", s.Sum)
	}
}

// TestHistogramConcurrentWriters hammers one histogram from many
// goroutines (run with -race) and checks that no observation is lost and
// the snapshot invariants hold.
func TestHistogramConcurrentWriters(t *testing.T) {
	h := NewLatencyHistogram()
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Observe(rng.Int63n(int64(time.Second)))
			}
		}(int64(w))
	}
	// Concurrent snapshots must stay internally consistent: the bucket sum
	// IS the count, and quantiles are monotone.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s := h.Snapshot()
			var total int64
			for _, c := range s.Counts {
				total += c
			}
			if total != s.Count {
				t.Errorf("snapshot count %d != bucket sum %d", s.Count, total)
				return
			}
			if p50, p99 := s.P50(), s.P99(); p50 > p99 {
				t.Errorf("p50 %d > p99 %d", p50, p99)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", s.Count, writers*perWriter)
	}
	if s.Max >= int64(time.Second) || s.Max <= 0 {
		t.Errorf("max = %d out of generated range", s.Max)
	}
}

func TestObserverRecord(t *testing.T) {
	o := NewObserver()
	o.SlowThreshold = time.Millisecond
	var emitted []*Trace
	o.OnTrace = func(tr *Trace) { emitted = append(emitted, tr.Clone()) }

	fast := &Trace{Total: 10 * time.Microsecond, DeltaEdges: 2,
		Layers: []LayerSpan{{EventsIn: 4}}}
	slow := &Trace{Total: 5 * time.Millisecond, DeltaEdges: 1, VertexUpdates: 1,
		Layers: []LayerSpan{{EventsIn: 7}, {Layer: 1, EventsIn: 3}}}
	o.RecordUpdate(fast)
	o.RecordUpdate(slow)
	if o.Updates() != 2 || o.SlowUpdates() != 1 {
		t.Fatalf("updates=%d slow=%d", o.Updates(), o.SlowUpdates())
	}
	if len(emitted) != 1 || emitted[0].Total != slow.Total {
		t.Fatalf("emitted %d traces", len(emitted))
	}
	if s := o.Events.Snapshot(); s.Sum != 4+10 {
		t.Errorf("events sum = %d", s.Sum)
	}
	if s := o.BatchSize.Snapshot(); s.Sum != 2+2 {
		t.Errorf("batch sum = %d", s.Sum)
	}

	o.TraceAll = true
	o.RecordUpdate(fast)
	if len(emitted) != 2 {
		t.Error("TraceAll did not emit fast trace")
	}

	o.RecordLatency(2*time.Millisecond, 3, 9)
	if o.Updates() != 4 || o.SlowUpdates() != 2 {
		t.Errorf("after RecordLatency: updates=%d slow=%d", o.Updates(), o.SlowUpdates())
	}

	var nilObs *Observer
	nilObs.RecordUpdate(fast) // nil-safety
	nilObs.RecordLatency(time.Second, 1, 1)
	if nilObs.Tracing() || nilObs.Updates() != 0 || nilObs.SlowUpdates() != 0 {
		t.Error("nil observer not inert")
	}
}

func TestObserverTracing(t *testing.T) {
	o := NewObserver()
	if o.Tracing() {
		t.Error("default observer should not trace")
	}
	o.SlowThreshold = time.Millisecond
	if o.Tracing() {
		t.Error("threshold without receiver should not trace")
	}
	o.OnTrace = func(*Trace) {}
	if !o.Tracing() {
		t.Error("threshold + receiver should trace")
	}
	o.SlowThreshold = 0
	if o.Tracing() {
		t.Error("receiver without threshold or TraceAll should not trace")
	}
	o.TraceAll = true
	if !o.Tracing() {
		t.Error("TraceAll should trace")
	}
}
