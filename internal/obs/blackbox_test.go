package obs

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testSources builds a populated observability stack: one slow trace, one
// profiled round, a ticked sampler, an alert engine and a runtime snapshot.
func testSources(t *testing.T) BlackBoxSource {
	t.Helper()
	f := NewFlightRecorder(8, 1)
	f.Record(&ReqTrace{
		ID: f.NextID(), Kind: "update", Start: time.Now(),
		Total: 7 * time.Millisecond, Sampled: true, Round: 3,
		GCPause: 200 * time.Microsecond,
	})
	rr := NewRoundRecorder(8)
	rr.Record(&RoundTrace{
		ID: 3, Start: time.Now(), Reqs: 2, Edges: 5,
		Total: 6 * time.Millisecond,
		Stages: []RoundStageSpan{{
			Name: "layer0", Makespan: 4 * time.Millisecond,
			Shards: []RoundShardSpan{
				{Compute: 4 * time.Millisecond},
				{Compute: time.Millisecond, Barrier: 3 * time.Millisecond},
			},
		}},
	})
	s := NewSampler(time.Second, 16)
	v := 0.0
	s.Gauge("ack_p99_ms", func() float64 { return v })
	for i := 0; i < 5; i++ {
		v = float64(i)
		s.Tick()
	}
	rt := NewRuntime()
	return BlackBoxSource{
		Flight: f, Rounds: rr, Sampler: s,
		Alerts: NewAlertEngine(s), Runtime: rt,
		Config: map[string]any{"deployment": "test", "shards": 2},
	}
}

// TestBlackBoxCaptureLoadRoundTrip is the tentpole's offline contract: a
// captured bundle loads back with the trigger, traces, rounds, timeseries,
// runtime state and extra files intact — the synthetic-incident round trip.
func TestBlackBoxCaptureLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	bb := NewBlackBox(BlackBoxConfig{Dir: dir, Debounce: -1, Source: testSources(t)})
	defer bb.Close()
	bb.AddFile("failstop.json", func() any {
		return &FailStopInfo{Round: 3, Err: "round apply failed", Time: time.Now()}
	})

	man, err := bb.Capture("fail-stop", "round 3 exploded")
	if err != nil {
		t.Fatal(err)
	}
	if man.Trigger != "fail-stop" || man.Reason != "round 3 exploded" {
		t.Fatalf("manifest trigger/reason: %+v", man)
	}

	d, err := LoadDump(dir) // dump root: resolves to the newest bundle
	if err != nil {
		t.Fatal(err)
	}
	if d.Manifest.Seq != man.Seq || d.Manifest.Trigger != "fail-stop" {
		t.Fatalf("loaded manifest %+v, want seq %d", d.Manifest, man.Seq)
	}
	if len(d.Traces) != 1 {
		t.Fatalf("traces: %d, want 1", len(d.Traces))
	}
	tr := d.Traces[0]
	if tr.Kind != "update" || tr.TotalUS != 7000 || tr.RoundID != TraceIDString(3) {
		t.Errorf("trace round-trip: %+v", tr)
	}
	if tr.GCPauseUS != 200 {
		t.Errorf("gc pause %v us, want 200", tr.GCPauseUS)
	}
	if len(d.Rounds) != 1 || d.Rounds[0].Reqs != 2 || len(d.Rounds[0].Stages) != 1 {
		t.Fatalf("rounds round-trip: %+v", d.Rounds)
	}
	if sh := d.Rounds[0].Stages[0].Shards; len(sh) != 2 || sh[1].BarrierUS != 3000 {
		t.Errorf("shard spans: %+v", sh)
	}
	if vs := d.Series("ack_p99_ms"); len(vs) != 5 || vs[4] != 4 {
		t.Errorf("timeseries: %v", vs)
	}
	if d.Runtime == nil || d.Runtime.HeapInuseBytes == 0 {
		t.Errorf("runtime section missing or empty: %+v", d.Runtime)
	}
	if d.FailStop == nil || d.FailStop.Round != 3 || d.FailStop.Err != "round apply failed" {
		t.Errorf("failstop section: %+v", d.FailStop)
	}
	if !strings.Contains(string(d.Config), `"deployment"`) {
		t.Errorf("config section: %s", d.Config)
	}
}

// TestBlackBoxTriggerDebounce: the automatic path is async (worker
// goroutine), debounced, and drained by Close — the incident-then-kill
// ordering that must still leave a bundle on disk.
func TestBlackBoxTriggerDebounce(t *testing.T) {
	dir := t.TempDir()
	bb := NewBlackBox(BlackBoxConfig{Dir: dir, Debounce: time.Hour, Source: testSources(t)})
	bb.Trigger("alert-fast", "burn rate 14x")
	bb.Trigger("alert-fast", "burn rate 15x") // inside the debounce window
	bb.Close()                                // drains the queue before returning
	if n := countBundles(t, dir); n != 1 {
		t.Fatalf("%d bundles, want 1 (second trigger debounced)", n)
	}

	// Debounce off: every trigger captures.
	dir2 := t.TempDir()
	bb2 := NewBlackBox(BlackBoxConfig{Dir: dir2, Debounce: -1, Source: testSources(t)})
	bb2.Trigger("a", "x")
	bb2.Trigger("b", "y")
	bb2.Close()
	if n := countBundles(t, dir2); n != 2 {
		t.Fatalf("%d bundles, want 2 with debouncing off", n)
	}
}

// TestBlackBoxPrune: bundle retention honours MaxBundles, keeping the
// newest; sequence numbers resume across restarts from the surviving dirs.
func TestBlackBoxPrune(t *testing.T) {
	dir := t.TempDir()
	src := testSources(t)
	bb := NewBlackBox(BlackBoxConfig{Dir: dir, MaxBundles: 2, Debounce: -1, Source: src})
	for i := 0; i < 4; i++ {
		if _, err := bb.Capture("manual", ""); err != nil {
			t.Fatal(err)
		}
	}
	bb.Close()
	if n := countBundles(t, dir); n != 2 {
		t.Fatalf("%d bundles after prune, want 2", n)
	}
	d, err := LoadDump(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.Manifest.Seq != 4 {
		t.Fatalf("newest surviving seq %d, want 4", d.Manifest.Seq)
	}

	// Restart: a new black box over the same dir continues the sequence.
	bb2 := NewBlackBox(BlackBoxConfig{Dir: dir, Debounce: -1, Source: src})
	man, err := bb2.Capture("manual", "")
	bb2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if man.Seq != 5 {
		t.Fatalf("post-restart seq %d, want 5", man.Seq)
	}
}

// TestBlackBoxTarGZ: the on-demand bundle streams as a well-formed tar.gz
// with the manifest inside, without touching the dump directory.
func TestBlackBoxTarGZ(t *testing.T) {
	dir := t.TempDir()
	bb := NewBlackBox(BlackBoxConfig{Dir: dir, Debounce: -1, Source: testSources(t)})
	defer bb.Close()
	var buf bytes.Buffer
	if _, err := bb.WriteTarGZ(&buf, "on-demand", ""); err != nil {
		t.Fatal(err)
	}
	if n := countBundles(t, dir); n != 0 {
		t.Fatalf("tar capture wrote %d bundles to disk", n)
	}
	gz, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		names[filepath.Base(hdr.Name)] = true
	}
	for _, want := range []string{"MANIFEST.json", "traces.json", "timeseries.json", "runtime.json"} {
		if !names[want] {
			t.Errorf("tar missing %s (have %v)", want, names)
		}
	}
}

// TestLoadDumpErrors: a root without bundles and a future-version bundle
// are rejected with diagnostics rather than half-loaded.
func TestLoadDumpErrors(t *testing.T) {
	if _, err := LoadDump(t.TempDir()); err == nil {
		t.Error("empty root accepted")
	}
	dir := t.TempDir()
	bdir := filepath.Join(dir, "bundle-000001-x")
	if err := os.MkdirAll(bdir, 0o755); err != nil {
		t.Fatal(err)
	}
	manifest := []byte(`{"version": 99, "seq": 1, "trigger": "x", "files": []}`)
	if err := os.WriteFile(filepath.Join(bdir, "MANIFEST.json"), manifest, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDump(bdir); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version accepted: %v", err)
	}
}

func countBundles(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") {
			n++
		}
	}
	return n
}
