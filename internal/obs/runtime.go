package obs

import (
	"math"
	"runtime/debug"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// Runtime telemetry plane (DESIGN.md §15). The serving stack explains tail
// latency in application terms — coalescing, barriers, page faults — but in
// a real Go process the tails that matter are just as often the runtime's:
// a GC pause freezing the apply goroutine, heap growth from the tiered
// store tripping more frequent cycles, a goroutine pileup in the pipeline.
// Runtime bridges the stdlib runtime/metrics package into the existing
// observability stack: one Collect per Sampler tick reads a fixed sample
// set into reusable buffers (allocation-free at steady state), publishes
// scalar gauges through atomics, folds the runtime's cumulative
// Float64Histograms (GC pauses, scheduler latency) into the repo's own
// lock-free log2 histograms so the registry, parser, sampler quantiles and
// exemplar machinery all work unchanged, and maintains a ring of recent GC
// pause windows so the pipeline can annotate ack traces that overlapped a
// stop-the-world pause.

// runtime/metrics keys Collect reads, in sample-buffer order.
const (
	rmHeapObjects = "/memory/classes/heap/objects:bytes"
	rmMemTotal    = "/memory/classes/total:bytes"
	rmGoroutines  = "/sched/goroutines:goroutines"
	rmGCCycles    = "/gc/cycles/total:gc-cycles"
	rmGCCPU       = "/cpu/classes/gc/total:cpu-seconds"
	rmTotalCPU    = "/cpu/classes/total:cpu-seconds"
	rmGCPauses    = "/gc/pauses:seconds"
	rmSchedLat    = "/sched/latencies:seconds"
)

// maxPauseWindows bounds the published ring of recent GC pause windows; 32
// covers several seconds of even a pathologically GC-bound process between
// 1s sampler ticks.
const maxPauseWindows = 32

// GCPauseWindow is one stop-the-world GC pause interval.
type GCPauseWindow struct {
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// Duration returns the pause length.
func (w GCPauseWindow) Duration() time.Duration { return w.End.Sub(w.Start) }

// Runtime collects Go runtime telemetry on the sampler cadence. Construct
// with NewRuntime, wire with Install (sampler series) and Register
// (/metrics families); everything it publishes is read through atomics, so
// queries from the pipeline or scrape handlers never block a collection.
type Runtime struct {
	enabled atomic.Bool

	// mu serialises Collect; the sample buffer and histogram-delta scratch
	// below are reused across collections (steady-state allocation-free).
	mu      sync.Mutex
	samples []metrics.Sample

	heapBytes  atomic.Uint64
	totalBytes atomic.Uint64
	goroutines atomic.Int64
	gcCycles   atomic.Uint64
	gcCPUFrac  atomic.Uint64 // Float64bits; cumulative gc-cpu / total-cpu
	collects   atomic.Int64

	// pauseHist and schedHist mirror the runtime's cumulative
	// Float64Histograms as the repo's own histograms (nanosecond unit):
	// each Collect folds in the per-bucket count deltas since the previous
	// one, so registry exposition and Sampler.HistQuantile both work on
	// them exactly like the application histograms.
	pauseHist *Histogram
	schedHist *Histogram
	prevPause []uint64
	prevSched []uint64

	// GC pause windows come from debug.ReadGCStats (preallocated slices →
	// allocation-free); the most recent maxPauseWindows are published
	// behind an atomic pointer for lock-free overlap queries.
	gcStats  debug.GCStats
	windows  atomic.Pointer[[]GCPauseWindow]
	lastSeen int64 // NumGC already folded into windows

	// Per-tick GC CPU share scratch (previous cumulative cpu-seconds).
	prevGCCPU    float64
	prevTotalCPU float64
	tickGCPct    atomic.Uint64 // Float64bits; GC share of CPU this tick, percent
}

// NewRuntime builds a collector (enabled by default). Nothing is sampled
// until the first Collect — typically the first sampler tick after Install.
func NewRuntime() *Runtime {
	r := &Runtime{
		samples: []metrics.Sample{
			{Name: rmHeapObjects},
			{Name: rmMemTotal},
			{Name: rmGoroutines},
			{Name: rmGCCycles},
			{Name: rmGCCPU},
			{Name: rmTotalCPU},
			{Name: rmGCPauses},
			{Name: rmSchedLat},
		},
		// GC pauses: ~1µs floor to ~1s of nanoseconds; sched latencies the
		// same span (the runtime clamps its own histograms near there).
		pauseHist: NewHistogram(1<<10, int64(time.Second)),
		schedHist: NewHistogram(1<<10, int64(time.Second)),
	}
	r.gcStats.Pause = make([]time.Duration, 0, 256)
	r.gcStats.PauseEnd = make([]time.Time, 0, 256)
	r.enabled.Store(true)
	return r
}

// SetEnabled switches collection on or off at runtime (off: Collect
// returns immediately and published values freeze). The off-path is what
// the obs_overhead gate benchmarks against.
func (r *Runtime) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether collection is active.
func (r *Runtime) Enabled() bool { return r.enabled.Load() }

// Collect runs one sampling pass: read the runtime/metrics sample set,
// publish the scalar gauges, fold histogram deltas, refresh the GC pause
// window ring. Called once per sampler tick by the series Install
// registers; safe (serialised) from any goroutine. Allocation-free at
// steady state — the sample buffer, Float64Histogram storage (reused by
// metrics.Read), delta scratch and GCStats slices all persist across calls.
func (r *Runtime) Collect() {
	if !r.enabled.Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	metrics.Read(r.samples)
	for i := range r.samples {
		s := &r.samples[i]
		switch s.Name {
		case rmHeapObjects:
			r.heapBytes.Store(s.Value.Uint64())
		case rmMemTotal:
			r.totalBytes.Store(s.Value.Uint64())
		case rmGoroutines:
			r.goroutines.Store(int64(s.Value.Uint64()))
		case rmGCCycles:
			r.gcCycles.Store(s.Value.Uint64())
		case rmGCPauses:
			r.prevPause = foldHistogram(r.pauseHist, s.Value.Float64Histogram(), r.prevPause)
		case rmSchedLat:
			r.prevSched = foldHistogram(r.schedHist, s.Value.Float64Histogram(), r.prevSched)
		}
	}
	gcCPU := sampleFloat(r.samples, rmGCCPU)
	totCPU := sampleFloat(r.samples, rmTotalCPU)
	if totCPU > 0 {
		r.gcCPUFrac.Store(math.Float64bits(gcCPU / totCPU))
	}
	if dTot := totCPU - r.prevTotalCPU; dTot > 0 && r.prevTotalCPU > 0 {
		pct := 100 * (gcCPU - r.prevGCCPU) / dTot
		if pct < 0 {
			pct = 0
		}
		r.tickGCPct.Store(math.Float64bits(pct))
	}
	r.prevGCCPU, r.prevTotalCPU = gcCPU, totCPU
	r.refreshPauseWindows()
	r.collects.Add(1)
}

func sampleFloat(samples []metrics.Sample, name string) float64 {
	for i := range samples {
		if samples[i].Name == name {
			return samples[i].Value.Float64()
		}
	}
	return 0
}

// foldHistogram adds the per-bucket count deltas of the runtime's
// cumulative Float64Histogram (seconds) into h (nanoseconds), observing
// each bucket at its finite boundary. prev is the previous cumulative
// counts scratch; the (possibly grown) scratch is returned.
func foldHistogram(h *Histogram, fh *metrics.Float64Histogram, prev []uint64) []uint64 {
	if fh == nil {
		return prev
	}
	if len(prev) != len(fh.Counts) {
		prev = make([]uint64, len(fh.Counts))
	}
	for i, c := range fh.Counts {
		d := c - prev[i]
		prev[i] = c
		if d == 0 {
			continue
		}
		// Bucket i covers [Buckets[i], Buckets[i+1]); represent it by its
		// finite edge (upper, falling back to lower for the +Inf bucket).
		hi := fh.Buckets[i+1]
		if math.IsInf(hi, 0) {
			hi = fh.Buckets[i]
		}
		if math.IsInf(hi, 0) || hi < 0 {
			hi = 0
		}
		h.ObserveN(int64(hi*1e9), int64(d))
	}
	return prev
}

// refreshPauseWindows folds new GC pauses from debug.ReadGCStats into the
// published window ring. Runs under r.mu.
func (r *Runtime) refreshPauseWindows() {
	r.gcStats.Pause = r.gcStats.Pause[:cap(r.gcStats.Pause)]
	r.gcStats.PauseEnd = r.gcStats.PauseEnd[:cap(r.gcStats.PauseEnd)]
	debug.ReadGCStats(&r.gcStats)
	fresh := r.gcStats.NumGC - r.lastSeen
	if fresh <= 0 {
		return
	}
	if fresh > int64(len(r.gcStats.Pause)) {
		fresh = int64(len(r.gcStats.Pause))
	}
	old := r.windows.Load()
	var wins []GCPauseWindow
	if old != nil {
		wins = append(wins, *old...)
	}
	// GCStats orders most recent first; append oldest-new first so the ring
	// stays chronological.
	for i := int(fresh) - 1; i >= 0; i-- {
		end := r.gcStats.PauseEnd[i]
		wins = append(wins, GCPauseWindow{Start: end.Add(-r.gcStats.Pause[i]), End: end})
	}
	if len(wins) > maxPauseWindows {
		wins = wins[len(wins)-maxPauseWindows:]
	}
	r.lastSeen = r.gcStats.NumGC
	r.windows.Store(&wins)
}

// GCPauseOverlap returns the total GC stop-the-world pause time inside
// [start, end] according to the published window ring (0 when none
// overlap). Lock-free — one atomic pointer load plus a walk of at most
// maxPauseWindows entries — so the pipeline's ack path can afford it for
// every recorded trace. Windows refresh once per Collect, so pauses newer
// than the last sampler tick are not yet visible.
func (r *Runtime) GCPauseOverlap(start, end time.Time) time.Duration {
	if r == nil {
		return 0
	}
	wins := r.windows.Load()
	if wins == nil {
		return 0
	}
	var total time.Duration
	for _, w := range *wins {
		lo, hi := w.Start, w.End
		if lo.Before(start) {
			lo = start
		}
		if hi.After(end) {
			hi = end
		}
		if d := hi.Sub(lo); d > 0 {
			total += d
		}
	}
	return total
}

// setPauseWindows installs a synthetic window ring — tests pin the overlap
// arithmetic without forcing real GC cycles.
func (r *Runtime) setPauseWindows(wins []GCPauseWindow) { r.windows.Store(&wins) }

// Install registers the runtime series on the sampler. The first series
// ("heap_mb") runs Collect before reporting, and sampler series sample in
// registration order under one lock, so every runtime series of a tick
// reads the same fresh collection. Register every series before
// Sampler.Start, like the serving series.
func (r *Runtime) Install(s *Sampler) {
	s.Gauge("heap_mb", func() float64 {
		r.Collect()
		return float64(r.heapBytes.Load()) / (1 << 20)
	})
	s.Gauge("goroutines", func() float64 { return float64(r.goroutines.Load()) })
	s.Gauge("gc_cpu_pct", func() float64 { return math.Float64frombits(r.tickGCPct.Load()) })
	s.HistQuantile("gc_pause_ms", r.pauseHist, 0.99, 1e-6)
	s.HistQuantile("sched_p99_ms", r.schedHist, 0.99, 1e-6)
}

// Register exposes the collector as inkstream_runtime_* families. Values
// reflect the most recent Collect (the last sampler tick), not the scrape
// instant — the trade that keeps scraping off the runtime/metrics lock.
func (r *Runtime) Register(reg *Registry) {
	reg.GaugeFunc("inkstream_runtime_heap_inuse_bytes",
		"Bytes of live and not-yet-swept heap objects (runtime/metrics /memory/classes/heap/objects), as of the last sampler tick.",
		func() float64 { return float64(r.heapBytes.Load()) })
	reg.GaugeFunc("inkstream_runtime_mem_total_bytes",
		"Total bytes of memory mapped by the Go runtime, as of the last sampler tick.",
		func() float64 { return float64(r.totalBytes.Load()) })
	reg.GaugeFunc("inkstream_runtime_goroutines",
		"Live goroutines, as of the last sampler tick.",
		func() float64 { return float64(r.goroutines.Load()) })
	reg.CounterFunc("inkstream_runtime_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 { return float64(r.gcCycles.Load()) })
	reg.GaugeFunc("inkstream_runtime_gc_cpu_fraction",
		"Cumulative fraction of available CPU spent on GC since process start.",
		func() float64 { return math.Float64frombits(r.gcCPUFrac.Load()) })
	reg.Histogram("inkstream_runtime_gc_pause_seconds",
		"Stop-the-world GC pause latency, bridged from runtime/metrics /gc/pauses per sampler tick.",
		1e-9, r.pauseHist)
	reg.Histogram("inkstream_runtime_sched_latency_seconds",
		"Time goroutines spent runnable before running, bridged from runtime/metrics /sched/latencies per sampler tick.",
		1e-9, r.schedHist)
	reg.CounterFunc("inkstream_runtime_collects_total",
		"Runtime telemetry collection passes (one per sampler tick while enabled).",
		func() float64 { return float64(r.collects.Load()) })
}

// RuntimeStats is the point-in-time runtime snapshot black-box bundles
// carry (runtime.json).
type RuntimeStats struct {
	CollectedAt    time.Time       `json:"collected_at"`
	Collects       int64           `json:"collects"`
	HeapInuseBytes uint64          `json:"heap_inuse_bytes"`
	MemTotalBytes  uint64          `json:"mem_total_bytes"`
	Goroutines     int64           `json:"goroutines"`
	GCCycles       uint64          `json:"gc_cycles"`
	GCCPUFraction  float64         `json:"gc_cpu_fraction"`
	GCPauseP50US   float64         `json:"gc_pause_p50_us"`
	GCPauseP99US   float64         `json:"gc_pause_p99_us"`
	GCPauseMaxUS   float64         `json:"gc_pause_max_us"`
	SchedLatP99US  float64         `json:"sched_latency_p99_us"`
	RecentPauses   []GCPauseWindow `json:"recent_pauses,omitempty"`
}

// Stats snapshots the collector after forcing one fresh Collect, so a
// bundle captured between ticks still reflects the trigger instant.
func (r *Runtime) Stats() RuntimeStats {
	r.Collect()
	st := RuntimeStats{
		CollectedAt:    time.Now(),
		Collects:       r.collects.Load(),
		HeapInuseBytes: r.heapBytes.Load(),
		MemTotalBytes:  r.totalBytes.Load(),
		Goroutines:     r.goroutines.Load(),
		GCCycles:       r.gcCycles.Load(),
		GCCPUFraction:  math.Float64frombits(r.gcCPUFrac.Load()),
	}
	const us = 1e-3 // ns → µs
	p := r.pauseHist.Snapshot()
	st.GCPauseP50US = float64(p.P50()) * us
	st.GCPauseP99US = float64(p.P99()) * us
	st.GCPauseMaxUS = float64(p.Max) * us
	st.SchedLatP99US = float64(r.schedHist.Snapshot().P99()) * us
	if wins := r.windows.Load(); wins != nil {
		st.RecentPauses = append(st.RecentPauses, *wins...)
	}
	return st
}
