package obs

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Incident black box (DESIGN.md §15). Every observability ring in this repo
// — flight traces, round traces, the sampler window, alert state — is
// volatile: the moment a fail-stopped router or an OOM-killed server exits,
// the evidence explaining *why* exits with it. BlackBox is the flight
// recorder's crash-survivable half: on an incident trigger (alert
// pending→firing, drift-audit failure, router/WAL fail-stop) it serializes
// the full observability state into a versioned on-disk bundle, debounced
// so an alert storm produces one dump rather than hundreds, and size-capped
// so a flapping deployment cannot fill the disk. The same snapshot is
// served on demand as a tar.gz from GET /debug/bundle, and LoadDump reads a
// bundle back for offline analysis (inkstat -postmortem).

// BlackBoxVersion is the bundle format version stamped into MANIFEST.json;
// readers reject bundles from a future format.
const BlackBoxVersion = 1

// manifestName is the bundle's index file, written last so a partially
// captured bundle (process killed mid-write) is recognisably incomplete.
const manifestName = "MANIFEST.json"

// FailStopInfo is the forensics record of a fail-stop: which round failed,
// with what error, when. The shard router publishes one when it trips its
// corrupt latch; bundles carry it as failstop.json so a post-mortem names
// the exact round instead of a bare "corrupt" bool.
type FailStopInfo struct {
	Round uint64    `json:"round"`
	Err   string    `json:"error"`
	Time  time.Time `json:"time"`
}

// BlackBoxSource is the observability state a deployment wires into its
// black box. Any nil field is simply omitted from bundles, so the single
// engine (no rounds) and the router (no drift audit) share one capture path.
type BlackBoxSource struct {
	Flight  *FlightRecorder
	Rounds  *RoundRecorder
	Sampler *Sampler
	Alerts  *AlertEngine
	Runtime *Runtime
	// Config is marshaled as config.json — the deployment shape (shards,
	// coalescing, SLO target) a post-mortem needs to interpret the numbers.
	Config any
}

// BlackBoxConfig configures capture behaviour.
type BlackBoxConfig struct {
	// Dir is the dump directory; bundles are subdirectories named
	// bundle-<seq>-<trigger>. Created on first capture.
	Dir string
	// MaxBundles caps retained bundles (oldest pruned first; default 8).
	MaxBundles int
	// MaxTotalBytes caps the dump directory's total size (default 64 MiB);
	// oldest bundles are pruned until under the cap. The newest bundle is
	// never pruned.
	MaxTotalBytes int64
	// Debounce suppresses automatic (Trigger) captures arriving within the
	// window after the previous one — an alert storm or cascading fail-stop
	// yields one bundle, not hundreds. Default 30s; negative disables
	// debouncing (tests). On-demand Capture calls are never debounced.
	Debounce time.Duration
	// Profiles includes pprof heap (binary) and goroutine (text) profiles in
	// each bundle.
	Profiles bool
	Source   BlackBoxSource
}

// DumpManifest is a bundle's MANIFEST.json.
type DumpManifest struct {
	Version    int       `json:"version"`
	Seq        uint64    `json:"seq"`
	Trigger    string    `json:"trigger"`
	Reason     string    `json:"reason"`
	CapturedAt time.Time `json:"captured_at"`
	Files      []string  `json:"files"`
}

type bbEvent struct{ trigger, reason string }

// BlackBox captures incident bundles. Construct with NewBlackBox, trigger
// automatically with Trigger (non-blocking, debounced, captured on a
// background worker) or synchronously with Capture, and Close before
// process exit — Close drains queued triggers first, so a fail-stop
// immediately followed by shutdown still leaves its bundle on disk.
type BlackBox struct {
	cfg BlackBoxConfig

	seq      atomic.Uint64
	captures atomic.Int64
	dropped  atomic.Int64
	errs     atomic.Int64
	lastUnix atomic.Int64 // CapturedAt of the last automatic capture, unix ns
	last     atomic.Pointer[DumpManifest]

	// extraMu guards extra: named JSON payload providers (e.g. the router's
	// failstop.json) registered at wiring time.
	extraMu sync.Mutex
	extra   []extraFile

	events    chan bbEvent
	quit      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

type extraFile struct {
	name string
	// fn returns the payload to marshal; returning nil skips the file.
	fn func() any
}

// NewBlackBox builds a black box and starts its capture worker. The seq
// counter resumes above any bundle already in cfg.Dir, so restarts never
// overwrite earlier incidents.
func NewBlackBox(cfg BlackBoxConfig) *BlackBox {
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 8
	}
	if cfg.MaxTotalBytes <= 0 {
		cfg.MaxTotalBytes = 64 << 20
	}
	if cfg.Debounce == 0 {
		cfg.Debounce = 30 * time.Second
	}
	b := &BlackBox{
		cfg:    cfg,
		events: make(chan bbEvent, 8),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	b.seq.Store(scanSeq(cfg.Dir))
	go b.worker()
	return b
}

// scanSeq returns the highest bundle sequence number already in dir.
func scanSeq(dir string) uint64 {
	var max uint64
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), "bundle-%d-", &n); err == nil && n > max {
			max = n
		}
	}
	return max
}

// Dir returns the dump directory.
func (b *BlackBox) Dir() string { return b.cfg.Dir }

// LastManifest returns the most recent capture's manifest (nil before the
// first capture of this process).
func (b *BlackBox) LastManifest() *DumpManifest { return b.last.Load() }

// Trigger requests an automatic capture: non-blocking (the incident path —
// an alert eval or the apply goroutine tripping fail-stop — never waits on
// disk), debounced, executed on the worker. A full queue or a capture
// inside the debounce window counts as dropped.
func (b *BlackBox) Trigger(trigger, reason string) {
	if b == nil {
		return
	}
	select {
	case b.events <- bbEvent{trigger, reason}:
	default:
		b.dropped.Add(1)
	}
}

// Close drains queued triggers, captures them, and stops the worker.
// Idempotent.
func (b *BlackBox) Close() {
	if b == nil {
		return
	}
	b.closeOnce.Do(func() { close(b.quit) })
	<-b.done
}

func (b *BlackBox) worker() {
	defer close(b.done)
	for {
		select {
		case ev := <-b.events:
			b.auto(ev)
		case <-b.quit:
			for {
				select {
				case ev := <-b.events:
					b.auto(ev)
				default:
					return
				}
			}
		}
	}
}

// auto runs one debounced automatic capture on the worker goroutine.
func (b *BlackBox) auto(ev bbEvent) {
	if d := b.cfg.Debounce; d > 0 {
		if last := b.lastUnix.Load(); last != 0 && time.Since(time.Unix(0, last)) < d {
			b.dropped.Add(1)
			return
		}
	}
	if _, err := b.Capture(ev.trigger, ev.reason); err != nil {
		b.errs.Add(1)
	}
}

type dumpFile struct {
	name string
	data []byte
}

// collect serializes the source into the bundle's file set (manifest last).
func (b *BlackBox) collect(trigger, reason string) (DumpManifest, []dumpFile, error) {
	man := DumpManifest{
		Version:    BlackBoxVersion,
		Seq:        b.seq.Add(1),
		Trigger:    trigger,
		Reason:     reason,
		CapturedAt: time.Now(),
	}
	var files []dumpFile
	addJSON := func(name string, v any) error {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return fmt.Errorf("blackbox: marshal %s: %w", name, err)
		}
		files = append(files, dumpFile{name, data})
		return nil
	}
	src := b.cfg.Source
	if src.Flight != nil {
		if err := addJSON("traces.json", src.Flight.Traces()); err != nil {
			return man, nil, err
		}
	}
	if src.Rounds != nil {
		if err := addJSON("rounds.json", src.Rounds.Traces()); err != nil {
			return man, nil, err
		}
	}
	if src.Sampler != nil {
		if err := addJSON("timeseries.json", src.Sampler.Snapshot()); err != nil {
			return man, nil, err
		}
	}
	if src.Alerts != nil {
		if err := addJSON("alerts.json", src.Alerts.Status()); err != nil {
			return man, nil, err
		}
	}
	if src.Runtime != nil {
		if err := addJSON("runtime.json", src.Runtime.Stats()); err != nil {
			return man, nil, err
		}
	}
	if src.Config != nil {
		if err := addJSON("config.json", src.Config); err != nil {
			return man, nil, err
		}
	}
	b.extraMu.Lock()
	extra := append([]extraFile(nil), b.extra...)
	b.extraMu.Unlock()
	for _, ef := range extra {
		v := ef.fn()
		if v == nil {
			continue
		}
		if err := addJSON(ef.name, v); err != nil {
			return man, nil, err
		}
	}
	if b.cfg.Profiles {
		var heap strings.Builder
		if p := pprof.Lookup("heap"); p != nil && p.WriteTo(&heap, 0) == nil {
			files = append(files, dumpFile{"heap.pprof", []byte(heap.String())})
		}
		var gor strings.Builder
		if p := pprof.Lookup("goroutine"); p != nil && p.WriteTo(&gor, 2) == nil {
			files = append(files, dumpFile{"goroutines.txt", []byte(gor.String())})
		}
	}
	for _, f := range files {
		man.Files = append(man.Files, f.name)
	}
	manData, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return man, nil, fmt.Errorf("blackbox: marshal manifest: %w", err)
	}
	files = append(files, dumpFile{manifestName, manData})
	return man, files, nil
}

// AddFile registers an extra JSON payload captured into every bundle under
// the given file name (e.g. the router's failstop.json). fn runs at capture
// time; returning nil skips the file. Register at wiring time.
func (b *BlackBox) AddFile(name string, fn func() any) {
	b.extraMu.Lock()
	defer b.extraMu.Unlock()
	b.extra = append(b.extra, extraFile{name, fn})
}

// sanitizeTrigger turns a trigger tag into a directory-name suffix.
func sanitizeTrigger(s string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			sb.WriteRune(r)
		default:
			sb.WriteRune('-')
		}
		if sb.Len() >= 32 {
			break
		}
	}
	if sb.Len() == 0 {
		return "manual"
	}
	return sb.String()
}

// Capture synchronously serializes one bundle into the dump directory and
// prunes old bundles past the caps. Safe from any goroutine; never
// debounced (the HTTP endpoint and tests call it directly).
func (b *BlackBox) Capture(trigger, reason string) (DumpManifest, error) {
	man, files, err := b.collect(trigger, reason)
	if err != nil {
		return man, err
	}
	dir := filepath.Join(b.cfg.Dir, fmt.Sprintf("bundle-%06d-%s", man.Seq, sanitizeTrigger(trigger)))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return man, fmt.Errorf("blackbox: %w", err)
	}
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(dir, f.name), f.data, 0o644); err != nil {
			return man, fmt.Errorf("blackbox: write %s: %w", f.name, err)
		}
	}
	b.captures.Add(1)
	b.last.Store(&man)
	// Every capture (automatic or on-demand) stamps the debounce window and
	// the last-capture metric.
	b.lastUnix.Store(time.Now().UnixNano())
	b.prune()
	return man, nil
}

// prune removes the oldest bundles beyond MaxBundles / MaxTotalBytes. The
// newest bundle always survives.
func (b *BlackBox) prune() {
	entries, err := os.ReadDir(b.cfg.Dir)
	if err != nil {
		return
	}
	var bundles []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") {
			bundles = append(bundles, e.Name())
		}
	}
	// Zero-padded seq makes lexicographic order chronological.
	sort.Strings(bundles)
	sizes := make([]int64, len(bundles))
	var total int64
	for i, name := range bundles {
		sizes[i] = dirSize(filepath.Join(b.cfg.Dir, name))
		total += sizes[i]
	}
	for i := 0; i < len(bundles)-1; i++ {
		if len(bundles)-i <= b.cfg.MaxBundles && total <= b.cfg.MaxTotalBytes {
			break
		}
		if os.RemoveAll(filepath.Join(b.cfg.Dir, bundles[i])) == nil {
			total -= sizes[i]
		}
	}
}

func dirSize(dir string) int64 {
	var n int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			n += info.Size()
		}
	}
	return n
}

// WriteTarGZ captures a fresh bundle and streams it as a tar.gz to w
// without touching the dump directory — the GET /debug/bundle body.
func (b *BlackBox) WriteTarGZ(w io.Writer, trigger, reason string) (DumpManifest, error) {
	man, files, err := b.collect(trigger, reason)
	if err != nil {
		return man, err
	}
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	prefix := fmt.Sprintf("bundle-%06d-%s/", man.Seq, sanitizeTrigger(trigger))
	for _, f := range files {
		hdr := &tar.Header{
			Name:    prefix + f.name,
			Mode:    0o644,
			Size:    int64(len(f.data)),
			ModTime: man.CapturedAt,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return man, fmt.Errorf("blackbox: tar %s: %w", f.name, err)
		}
		if _, err := tw.Write(f.data); err != nil {
			return man, fmt.Errorf("blackbox: tar %s: %w", f.name, err)
		}
	}
	if err := tw.Close(); err != nil {
		return man, err
	}
	b.captures.Add(1)
	return man, gz.Close()
}

// ServeHTTP serves GET /debug/bundle: an on-demand tar.gz capture.
func (b *BlackBox) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	seq := b.seq.Load() + 1 // name the attachment after the seq Capture will take
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf(`attachment; filename="inkstream-bundle-%06d.tar.gz"`, seq))
	if _, err := b.WriteTarGZ(w, "on-demand", "GET /debug/bundle"); err != nil {
		b.errs.Add(1)
	}
}

// Register exposes capture accounting as inkstream_blackbox_* families.
func (b *BlackBox) Register(r *Registry) {
	r.CounterFunc("inkstream_blackbox_captures_total",
		"Incident bundles captured (automatic triggers plus on-demand /debug/bundle).",
		func() float64 { return float64(b.captures.Load()) })
	r.CounterFunc("inkstream_blackbox_dropped_total",
		"Automatic capture triggers dropped by debouncing or a full trigger queue.",
		func() float64 { return float64(b.dropped.Load()) })
	r.CounterFunc("inkstream_blackbox_errors_total",
		"Bundle captures that failed (serialization or disk errors).",
		func() float64 { return float64(b.errs.Load()) })
	r.GaugeFunc("inkstream_blackbox_last_capture_timestamp_seconds",
		"Unix time of the last automatic bundle capture (0 before the first).",
		func() float64 {
			ns := b.lastUnix.Load()
			if ns == 0 {
				return 0
			}
			return float64(ns) / 1e9
		})
}

// ---------------------------------------------------------------------------
// Offline loading (inkstat -postmortem)

// DumpSpan mirrors one request-trace span of a bundle's traces.json.
type DumpSpan struct {
	Stage string  `json:"stage"`
	US    float64 `json:"us"`
}

// TraceDump mirrors one /v1/traces entry as serialized into traces.json —
// the read-side twin of ReqTrace's custom MarshalJSON.
type TraceDump struct {
	TraceID      string          `json:"trace_id"`
	Kind         string          `json:"kind"`
	Start        time.Time       `json:"start"`
	Edges        int             `json:"edges"`
	VUps         int             `json:"vertex_updates"`
	Fused        int             `json:"fused"`
	RoundID      string          `json:"round_id"`
	TotalUS      float64         `json:"total_us"`
	Spans        []DumpSpan      `json:"spans"`
	SlowestStage string          `json:"slowest_stage"`
	GCPauseUS    float64         `json:"gc_pause_us"`
	Err          string          `json:"error"`
	Sampled      bool            `json:"sampled"`
	Slow         bool            `json:"slow"`
	Engine       json.RawMessage `json:"engine"`
}

// RoundShardDump mirrors one per-shard span of rounds.json.
type RoundShardDump struct {
	Shard      int     `json:"shard"`
	ComputeUS  float64 `json:"compute_us"`
	BarrierUS  float64 `json:"barrier_us"`
	GhostUS    float64 `json:"ghost_us"`
	Events     int     `json:"events"`
	BoundaryUS float64 `json:"boundary_us"`
	InteriorUS float64 `json:"interior_us"`
	GhostRows  int     `json:"ghost_rows"`
	Skipped    bool    `json:"skipped"`
}

// RoundStageDump mirrors one barrier stage of rounds.json.
type RoundStageDump struct {
	Name        string           `json:"stage"`
	Records     int              `json:"records"`
	Bytes       int64            `json:"bytes"`
	BroadcastUS float64          `json:"broadcast_us"`
	MakespanUS  float64          `json:"makespan_us"`
	Shards      []RoundShardDump `json:"shards"`
}

// RoundDump mirrors one /v1/rounds entry as serialized into rounds.json.
type RoundDump struct {
	RoundID       string           `json:"round_id"`
	Start         time.Time        `json:"start"`
	Reqs          int              `json:"requests"`
	Edges         int              `json:"edges"`
	VUps          int              `json:"vertex_updates"`
	FuseUS        float64          `json:"fuse_us"`
	JournalUS     float64          `json:"journal_us"`
	QueueUS       float64          `json:"queue_us"`
	BSPUS         float64          `json:"bsp_us"`
	BroadcastUS   float64          `json:"broadcast_us"`
	TotalUS       float64          `json:"total_us"`
	Records       int              `json:"records"`
	Bytes         int64            `json:"bytes"`
	Straggler     int              `json:"straggler"`
	BarrierShare  float64          `json:"barrier_share"`
	StragglerSkew float64          `json:"straggler_skew"`
	Stages        []RoundStageDump `json:"stages"`
}

// Dump is one loaded bundle. Sections missing from the bundle are nil.
type Dump struct {
	Dir        string
	Manifest   DumpManifest
	Traces     []TraceDump
	Rounds     []RoundDump
	Timeseries *TSSnapshot
	Alerts     *AlertsResponse
	Runtime    *RuntimeStats
	FailStop   *FailStopInfo
	Config     json.RawMessage
}

// LoadDump reads a bundle for offline analysis. dir may be a bundle
// directory (contains MANIFEST.json) or a dump root, in which case the
// newest complete bundle inside it is loaded.
func LoadDump(dir string) (*Dump, error) {
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		// Dump root: pick the newest bundle that finished its manifest.
		entries, rerr := os.ReadDir(dir)
		if rerr != nil {
			return nil, fmt.Errorf("blackbox: %w", rerr)
		}
		var bundles []string
		for _, e := range entries {
			if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") {
				if _, merr := os.Stat(filepath.Join(dir, e.Name(), manifestName)); merr == nil {
					bundles = append(bundles, e.Name())
				}
			}
		}
		if len(bundles) == 0 {
			return nil, fmt.Errorf("blackbox: no bundle with %s under %s", manifestName, dir)
		}
		sort.Strings(bundles)
		dir = filepath.Join(dir, bundles[len(bundles)-1])
	}
	d := &Dump{Dir: dir}
	if err := readJSON(dir, manifestName, &d.Manifest); err != nil {
		return nil, err
	}
	if d.Manifest.Version > BlackBoxVersion {
		return nil, fmt.Errorf("blackbox: bundle version %d newer than reader version %d",
			d.Manifest.Version, BlackBoxVersion)
	}
	for _, name := range d.Manifest.Files {
		var err error
		switch name {
		case "traces.json":
			err = readJSON(dir, name, &d.Traces)
		case "rounds.json":
			err = readJSON(dir, name, &d.Rounds)
		case "timeseries.json":
			d.Timeseries = &TSSnapshot{}
			err = readJSON(dir, name, d.Timeseries)
		case "alerts.json":
			d.Alerts = &AlertsResponse{}
			err = readJSON(dir, name, d.Alerts)
		case "runtime.json":
			d.Runtime = &RuntimeStats{}
			err = readJSON(dir, name, d.Runtime)
		case "failstop.json":
			d.FailStop = &FailStopInfo{}
			err = readJSON(dir, name, d.FailStop)
		case "config.json":
			var raw json.RawMessage
			if err = readJSON(dir, name, &raw); err == nil {
				d.Config = raw
			}
		}
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

func readJSON(dir, name string, v any) error {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("blackbox: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("blackbox: parse %s: %w", name, err)
	}
	return nil
}

// Series returns the named timeseries of the dump (nil when absent).
func (d *Dump) Series(name string) []float64 {
	if d.Timeseries == nil {
		return nil
	}
	for _, s := range d.Timeseries.Series {
		if s.Name == name {
			return s.Samples
		}
	}
	return nil
}
