package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

// testRound builds a two-stage, three-shard trace where shard 2 is the
// straggler: compute totals are 10ms, 20ms, 40ms.
func testRound() *RoundTrace {
	mk := func(ms ...int) []RoundShardSpan {
		out := make([]RoundShardSpan, len(ms))
		max := 0
		for _, m := range ms {
			if m > max {
				max = m
			}
		}
		for i, m := range ms {
			out[i] = RoundShardSpan{
				Compute: time.Duration(m) * time.Millisecond,
				Barrier: time.Duration(max-m) * time.Millisecond,
			}
		}
		return out
	}
	return &RoundTrace{
		ID:      7,
		Start:   time.Now(),
		Reqs:    3,
		Edges:   12,
		Fuse:    100 * time.Microsecond,
		Journal: 200 * time.Microsecond,
		Queue:   50 * time.Microsecond,
		Stages: []RoundStageSpan{
			{Name: "begin", Makespan: 15 * time.Millisecond, Shards: mk(5, 10, 15)},
			{Name: "layer0", Records: 8, Bytes: 512, Broadcast: 300 * time.Microsecond,
				Makespan: 25 * time.Millisecond, Shards: mk(5, 10, 25)},
		},
		Records: 8,
		Bytes:   512,
		Total:   41 * time.Millisecond,
	}
}

func TestRoundTraceAttribution(t *testing.T) {
	tr := testRound()
	if got := tr.BSPTime(); got != 40*time.Millisecond {
		t.Fatalf("BSPTime = %v, want 40ms", got)
	}
	if got := tr.BroadcastTime(); got != 300*time.Microsecond {
		t.Fatalf("BroadcastTime = %v, want 300µs", got)
	}
	if got := tr.Straggler(); got != 2 {
		t.Fatalf("Straggler = %d, want 2", got)
	}
	// Shard totals 10/20/40ms: mean 23.33ms, max 40ms → skew 12/7.
	if got, want := tr.StragglerSkew(), 12.0/7.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("StragglerSkew = %v, want %v", got, want)
	}
	// BarrierShare = 1 − mean(23.33ms)/BSP(40ms) = 5/12.
	if got, want := tr.BarrierShare(), 5.0/12.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("BarrierShare = %v, want %v", got, want)
	}

	empty := &RoundTrace{}
	if empty.Straggler() != -1 || empty.StragglerSkew() != 0 || empty.BarrierShare() != 0 {
		t.Fatalf("empty trace attribution not zeroed: straggler=%d skew=%v barrier=%v",
			empty.Straggler(), empty.StragglerSkew(), empty.BarrierShare())
	}
}

func TestRoundTraceJSON(t *testing.T) {
	raw, err := json.Marshal(testRound())
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got["round_id"] != TraceIDString(7) {
		t.Fatalf("round_id = %v", got["round_id"])
	}
	if got["straggler"].(float64) != 2 {
		t.Fatalf("straggler = %v", got["straggler"])
	}
	if got["bsp_us"].(float64) != 40000 {
		t.Fatalf("bsp_us = %v", got["bsp_us"])
	}
	stages := got["stages"].([]any)
	if len(stages) != 2 {
		t.Fatalf("stages = %d", len(stages))
	}
	l0 := stages[1].(map[string]any)
	if l0["stage"] != "layer0" || l0["records"].(float64) != 8 {
		t.Fatalf("layer0 stage = %v", l0)
	}
	shards := l0["shards"].([]any)
	if len(shards) != 3 {
		t.Fatalf("layer0 shards = %d", len(shards))
	}
	s0 := shards[0].(map[string]any)
	if s0["shard"].(float64) != 0 || s0["compute_us"].(float64) != 5000 || s0["barrier_us"].(float64) != 20000 {
		t.Fatalf("layer0 shard0 = %v", s0)
	}
}

func TestRoundRecorderRing(t *testing.T) {
	r := NewRoundRecorder(4)
	if r.Last() != nil || len(r.Traces()) != 0 || r.Recorded() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	for i := 0; i < 6; i++ {
		r.Record(&RoundTrace{ID: r.NextID()})
	}
	if r.Recorded() != 6 {
		t.Fatalf("Recorded = %d", r.Recorded())
	}
	if got := r.Last(); got == nil || got.ID != 6 {
		t.Fatalf("Last = %+v", got)
	}
	traces := r.Traces()
	if len(traces) != 4 {
		t.Fatalf("ring kept %d traces, want 4", len(traces))
	}
	for i, tr := range traces {
		if want := uint64(6 - i); tr.ID != want {
			t.Fatalf("traces[%d].ID = %d, want %d (newest first)", i, tr.ID, want)
		}
	}
}

func TestRoundRecorderConcurrent(t *testing.T) {
	r := NewRoundRecorder(8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(&RoundTrace{ID: r.NextID(), Total: time.Duration(i)})
			}
		}()
	}
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, tr := range r.Traces() {
				_ = tr.Straggler()
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	if r.Recorded() != 800 {
		t.Fatalf("Recorded = %d, want 800", r.Recorded())
	}
}
