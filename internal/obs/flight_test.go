package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func mkTrace(id uint64, total time.Duration) *ReqTrace {
	t := &ReqTrace{ID: id, Kind: "update", Start: time.Unix(0, 0), Edges: 1, Fused: 1, Total: total, Sampled: true}
	t.Marks[StageJournal] = total / 4
	t.Marks[StageCoalesce] = total / 3
	t.Marks[StageApply] = 3 * total / 4
	t.Marks[StagePublish] = 4 * total / 5
	t.Marks[StageAck] = total
	return t
}

func TestReqTraceSpans(t *testing.T) {
	tr := mkTrace(1, 100*time.Microsecond)
	spans := tr.Spans()
	if len(spans) != int(StageCount) {
		t.Fatalf("got %d spans, want %d", len(spans), StageCount)
	}
	var sum time.Duration
	for _, sp := range spans {
		sum += sp.D
	}
	if sum != tr.Total {
		t.Errorf("spans sum %v, want total %v", sum, tr.Total)
	}
	if st, d := tr.SlowestStage(); st != StageApply || d != 100*time.Microsecond*3/4-100*time.Microsecond/3 {
		t.Errorf("slowest %v %v", st, d)
	}

	// An op request skips the journal: its first span starts at submit.
	op := &ReqTrace{ID: 2, Kind: "op", Total: 10 * time.Microsecond}
	op.Marks[StageCoalesce] = 2 * time.Microsecond
	op.Marks[StageApply] = 9 * time.Microsecond
	spans = op.Spans()
	if len(spans) != 3 { // coalesce, apply, ack (ack synthesised from Total)
		t.Fatalf("op spans: %v", spans)
	}
	if spans[0].Stage != StageCoalesce || spans[0].D != 2*time.Microsecond {
		t.Errorf("first op span %v", spans[0])
	}
	if spans[2].Stage != StageAck || spans[2].D != time.Microsecond {
		t.Errorf("ack span %v", spans[2])
	}
}

func TestReqTraceJSONAndString(t *testing.T) {
	tr := mkTrace(0x2a, time.Millisecond)
	tr.Err = "boom"
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["trace_id"] != "000000000000002a" {
		t.Errorf("trace_id %v", m["trace_id"])
	}
	if m["slowest_stage"] != "apply" {
		t.Errorf("slowest_stage %v", m["slowest_stage"])
	}
	if m["error"] != "boom" {
		t.Errorf("error %v", m["error"])
	}
	if n := len(m["spans"].([]any)); n != int(StageCount) {
		t.Errorf("%d spans in JSON", n)
	}
	s := tr.String()
	for _, want := range []string{"000000000000002a", "slowest=apply", "journal=", "err=boom"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() %q missing %q", s, want)
		}
	}
}

func TestFlightRecorderSamplingAndRing(t *testing.T) {
	f := NewFlightRecorder(4, 8)
	if f.SampleEvery() != 8 {
		t.Fatalf("sample every %d", f.SampleEvery())
	}
	sampled := 0
	for i := 0; i < 64; i++ {
		if f.SampledID(f.NextID()) {
			sampled++
		}
	}
	if sampled != 8 {
		t.Errorf("sampled %d of 64 at 1/8", sampled)
	}

	// Ring keeps the newest 4, newest first.
	for i := 1; i <= 6; i++ {
		f.Record(mkTrace(uint64(i), time.Duration(i)*time.Microsecond))
	}
	got := f.Traces()
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	for i, want := range []uint64{6, 5, 4, 3} {
		if got[i].ID != want {
			t.Errorf("traces[%d].ID = %d, want %d", i, got[i].ID, want)
		}
	}
	if f.Recorded() != 6 {
		t.Errorf("recorded %d, want 6", f.Recorded())
	}

	// Slow threshold.
	f.SetSlowThreshold(time.Millisecond)
	if !f.IsSlow(2 * time.Millisecond) {
		t.Error("2ms not slow at 1ms threshold")
	}
	if f.IsSlow(time.Microsecond) {
		t.Error("1µs slow at 1ms threshold")
	}

	// Sampling disabled: nothing sampled, slow still detectable.
	off := NewFlightRecorder(2, 0)
	if off.SampledID(off.NextID()) {
		t.Error("sampled with sampling disabled")
	}
}

// TestFlightRecorderConcurrent hammers Record and Traces from many
// goroutines; run with -race this is the lock-freedom proof for the ring.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(8, 1)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				f.Record(mkTrace(f.NextID(), time.Microsecond))
			}
		}()
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, tr := range f.Traces() {
				if tr.ID == 0 {
					t.Error("zero trace ID read from ring")
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	if f.Recorded() != 8000 {
		t.Errorf("recorded %d, want 8000", f.Recorded())
	}
}
