// Package metrics provides the instrumentation shared by every inference
// engine in this repository: exact counters for memory traffic, compute
// and node visits, plus wall-clock timing. The paper's Table V (memory and
// visit reductions) is produced directly from these counters, and the
// timing tables use the timers.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counters accumulates work done by an inference engine. All methods are
// safe for concurrent use (engines shard work across goroutines).
type Counters struct {
	// BytesFetched counts embedding bytes read from the cached state or
	// feature matrix — the "memory cost" of Table V.
	BytesFetched atomic.Int64
	// BytesWritten counts embedding bytes stored back.
	BytesWritten atomic.Int64
	// FLOPs counts floating-point multiply-adds (2 flops each) and
	// comparisons in aggregation.
	FLOPs atomic.Int64
	// NodesVisited counts nodes whose embedding was computed or updated —
	// the "number of visited nodes" of Table V.
	NodesVisited atomic.Int64
	// EventsProcessed counts InkStream events consumed.
	EventsProcessed atomic.Int64
}

// FetchVec records reading an n-float32 vector.
func (c *Counters) FetchVec(n int) {
	if c != nil {
		c.BytesFetched.Add(int64(4 * n))
	}
}

// StoreVec records writing an n-float32 vector.
func (c *Counters) StoreVec(n int) {
	if c != nil {
		c.BytesWritten.Add(int64(4 * n))
	}
}

// AddFLOPs records n floating-point operations.
func (c *Counters) AddFLOPs(n int64) {
	if c != nil {
		c.FLOPs.Add(n)
	}
}

// VisitNode records one node visit.
func (c *Counters) VisitNode() {
	if c != nil {
		c.NodesVisited.Add(1)
	}
}

// VisitNodes records n node visits.
func (c *Counters) VisitNodes(n int) {
	if c != nil {
		c.NodesVisited.Add(int64(n))
	}
}

// AddEvents records n consumed events.
func (c *Counters) AddEvents(n int) {
	if c != nil {
		c.EventsProcessed.Add(int64(n))
	}
}

// Reset zeroes every counter.
func (c *Counters) Reset() {
	c.BytesFetched.Store(0)
	c.BytesWritten.Store(0)
	c.FLOPs.Store(0)
	c.NodesVisited.Store(0)
	c.EventsProcessed.Store(0)
}

// Snapshot is an immutable copy of counter values.
type Snapshot struct {
	BytesFetched, BytesWritten, FLOPs, NodesVisited, EventsProcessed int64
}

// Snapshot captures the current values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		BytesFetched:    c.BytesFetched.Load(),
		BytesWritten:    c.BytesWritten.Load(),
		FLOPs:           c.FLOPs.Load(),
		NodesVisited:    c.NodesVisited.Load(),
		EventsProcessed: c.EventsProcessed.Load(),
	}
}

// Sub returns s - o field-wise, for measuring a region between snapshots.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		BytesFetched:    s.BytesFetched - o.BytesFetched,
		BytesWritten:    s.BytesWritten - o.BytesWritten,
		FLOPs:           s.FLOPs - o.FLOPs,
		NodesVisited:    s.NodesVisited - o.NodesVisited,
		EventsProcessed: s.EventsProcessed - o.EventsProcessed,
	}
}

// Add returns s + o field-wise, for averaging over scenarios.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		BytesFetched:    s.BytesFetched + o.BytesFetched,
		BytesWritten:    s.BytesWritten + o.BytesWritten,
		FLOPs:           s.FLOPs + o.FLOPs,
		NodesVisited:    s.NodesVisited + o.NodesVisited,
		EventsProcessed: s.EventsProcessed + o.EventsProcessed,
	}
}

func (s Snapshot) String() string {
	return fmt.Sprintf("fetched=%s written=%s flops=%d visited=%d events=%d",
		HumanBytes(s.BytesFetched), HumanBytes(s.BytesWritten), s.FLOPs, s.NodesVisited, s.EventsProcessed)
}

// HumanBytes renders a byte count with a binary-unit suffix.
func HumanBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%dB", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// Stopwatch measures a single region of wall-clock time.
type Stopwatch struct {
	start   time.Time
	elapsed time.Duration
	running bool
}

// Start begins (or restarts) timing.
func (s *Stopwatch) Start() {
	s.start = time.Now()
	s.running = true
}

// Stop ends timing and accumulates into Elapsed.
func (s *Stopwatch) Stop() {
	if s.running {
		s.elapsed += time.Since(s.start)
		s.running = false
	}
}

// Elapsed returns the accumulated time (including a running interval).
func (s *Stopwatch) Elapsed() time.Duration {
	if s.running {
		return s.elapsed + time.Since(s.start)
	}
	return s.elapsed
}

// Reset clears the stopwatch.
func (s *Stopwatch) Reset() { *s = Stopwatch{} }

// Time runs f and returns its wall-clock duration.
func Time(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}

// Percentile returns the p-th percentile (0–100) of ds using the
// nearest-rank method; it does not mutate ds. Returns 0 for empty input.
func Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
