package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersBasics(t *testing.T) {
	var c Counters
	c.FetchVec(10) // 40 bytes
	c.StoreVec(5)  // 20 bytes
	c.AddFLOPs(100)
	c.VisitNode()
	c.VisitNodes(4)
	c.AddEvents(7)
	s := c.Snapshot()
	if s.BytesFetched != 40 || s.BytesWritten != 20 || s.FLOPs != 100 ||
		s.NodesVisited != 5 || s.EventsProcessed != 7 {
		t.Errorf("snapshot %+v", s)
	}
	c.Reset()
	if c.Snapshot() != (Snapshot{}) {
		t.Error("Reset incomplete")
	}
}

func TestNilCountersSafe(t *testing.T) {
	var c *Counters
	// All recording methods must be no-ops on nil receivers so engines can
	// run uninstrumented.
	c.FetchVec(1)
	c.StoreVec(1)
	c.AddFLOPs(1)
	c.VisitNode()
	c.VisitNodes(2)
	c.AddEvents(3)
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.FetchVec(1)
				c.VisitNode()
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.BytesFetched != 8*1000*4 || s.NodesVisited != 8000 {
		t.Errorf("lost updates: %+v", s)
	}
}

func TestSnapshotArithmetic(t *testing.T) {
	a := Snapshot{BytesFetched: 10, BytesWritten: 4, FLOPs: 6, NodesVisited: 2, EventsProcessed: 1}
	b := Snapshot{BytesFetched: 3, BytesWritten: 1, FLOPs: 2, NodesVisited: 1, EventsProcessed: 1}
	sum := a.Add(b)
	if sum.BytesFetched != 13 || sum.EventsProcessed != 2 {
		t.Errorf("Add: %+v", sum)
	}
	diff := a.Sub(b)
	if diff.BytesFetched != 7 || diff.NodesVisited != 1 {
		t.Errorf("Sub: %+v", diff)
	}
	if !strings.Contains(a.String(), "visited=2") {
		t.Errorf("String: %s", a)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		0:          "0B",
		512:        "512B",
		2048:       "2.0KiB",
		3 << 20:    "3.0MiB",
		5 << 30:    "5.0GiB",
		1<<40 + 12: "1.0TiB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestStopwatch(t *testing.T) {
	var sw Stopwatch
	if sw.Elapsed() != 0 {
		t.Error("fresh stopwatch must read zero")
	}
	sw.Start()
	time.Sleep(5 * time.Millisecond)
	sw.Stop()
	first := sw.Elapsed()
	if first < 2*time.Millisecond {
		t.Errorf("elapsed %v too small", first)
	}
	// Accumulates across Start/Stop pairs.
	sw.Start()
	time.Sleep(2 * time.Millisecond)
	sw.Stop()
	if sw.Elapsed() <= first {
		t.Error("second interval not accumulated")
	}
	// Stop when not running is a no-op.
	before := sw.Elapsed()
	sw.Stop()
	if sw.Elapsed() != before {
		t.Error("Stop while stopped changed elapsed")
	}
	sw.Reset()
	if sw.Elapsed() != 0 {
		t.Error("Reset failed")
	}
}

func TestStopwatchRunningElapsed(t *testing.T) {
	var sw Stopwatch
	sw.Start()
	time.Sleep(2 * time.Millisecond)
	if sw.Elapsed() < time.Millisecond {
		t.Error("running stopwatch must include the live interval")
	}
}

func TestTime(t *testing.T) {
	d := Time(func() { time.Sleep(3 * time.Millisecond) })
	if d < 2*time.Millisecond {
		t.Errorf("Time = %v", d)
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{5, 1, 4, 2, 3} // deliberately unsorted
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 1}, {20, 1}, {50, 3}, {80, 4}, {100, 5}, {95, 5},
	}
	for _, c := range cases {
		if got := Percentile(ds, c.p); got != c.want {
			t.Errorf("Percentile(%g) = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must not be mutated.
	if ds[0] != 5 {
		t.Error("Percentile mutated input")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty input should yield 0")
	}
	if Percentile([]time.Duration{7}, 50) != 7 {
		t.Error("singleton")
	}
}
