package inkstream

import (
	"math/rand"
	"testing"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/tensor"
)

func TestVerifyCleanEngine(t *testing.T) {
	for _, kind := range []gnn.AggKind{gnn.AggMax, gnn.AggMean} {
		rng := rand.New(rand.NewSource(1))
		g := randomGraph(rng, 40, 120)
		x := tensor.RandMatrix(rng, 40, 5, 1)
		e, err := New(buildModel(rng, "GCN", 5, kind), g, x, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Update(graph.RandomDelta(rng, e.Graph(), 8)); err != nil {
			t.Fatal(err)
		}
		if err := e.Verify(2e-3); err != nil {
			t.Errorf("%v: healthy engine failed verification: %v", kind, err)
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 30, 90)
	x := tensor.RandMatrix(rng, 30, 5, 1)
	e, err := New(buildModel(rng, "GCN", 5, gnn.AggMax), g, x, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one cached α value.
	e.State().Alpha[1].Set(3, 0, 1e6)
	if err := e.Verify(0); err == nil {
		t.Error("corrupted state passed verification")
	}
}

// Per-layer statistics sum to the total, and a k-layer GIN accumulates
// visits in deeper layers too.
func TestLayerStats(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 60, 180)
	x := tensor.RandMatrix(rng, 60, 5, 1)
	model := gnn.NewGIN(rng, 5, 8, 3, gnn.NewAggregator(gnn.AggMax))
	e, err := New(model, g, x, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Update(graph.RandomDelta(rng, e.Graph(), 10)); err != nil {
		t.Fatal(err)
	}
	var sum ConditionStats
	for l := 0; l < model.NumLayers(); l++ {
		sum.Merge(e.LayerStats(l))
	}
	if sum != *e.Stats() {
		t.Errorf("layer stats sum %v != total %v", sum.String(), e.Stats())
	}
	if e.LayerStats(0).Total() == 0 {
		t.Error("layer 0 saw no visits")
	}
	e.ResetStats()
	for l := 0; l < model.NumLayers(); l++ {
		if e.LayerStats(l).Total() != 0 {
			t.Error("ResetStats left per-layer residue")
		}
	}
}

// Long-horizon drift: accumulative aggregators drift across many batches
// (fp reassociation); Refresh re-anchors the cache exactly, and monotonic
// aggregators never drift at all.
func TestDriftAndRefresh(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 60, 180)
	x := tensor.RandMatrix(rng, 60, 5, 1)

	mean, err := New(buildModel(rng, "GCN", 5, gnn.AggMean), g.Clone(), x, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxE, err := New(buildModel(rng, "GCN", 5, gnn.AggMax), g.Clone(), x, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 30; batch++ {
		d := graph.RandomDelta(rng, mean.Graph(), 6)
		if err := mean.Update(append(graph.Delta(nil), d...)); err != nil {
			t.Fatal(err)
		}
		if err := maxE.Update(append(graph.Delta(nil), d...)); err != nil {
			t.Fatal(err)
		}
	}
	// Monotonic: still bit-exact after 30 batches.
	if err := maxE.Verify(0); err != nil {
		t.Fatalf("monotonic drifted: %v", err)
	}
	// Accumulative: small drift tolerated, eliminated by Refresh.
	if err := mean.Verify(5e-2); err != nil {
		t.Fatalf("accumulative drifted beyond loose tolerance: %v", err)
	}
	if err := mean.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := mean.Verify(0); err != nil {
		t.Fatalf("Refresh did not re-anchor exactly: %v", err)
	}
	// The engine keeps serving correctly after a refresh.
	if err := mean.Update(graph.RandomDelta(rng, mean.Graph(), 6)); err != nil {
		t.Fatal(err)
	}
	if err := mean.Verify(2e-3); err != nil {
		t.Fatal(err)
	}
}

// The trace hook sees exactly the visits the statistics count, in
// deterministic layer-then-target order.
func TestTraceHook(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 40, 120)
	x := tensor.RandMatrix(rng, 40, 5, 1)
	type visit struct {
		layer int
		node  graph.NodeID
		cond  Condition
	}
	var trace []visit
	opts := Options{Trace: func(l int, n graph.NodeID, c Condition) {
		trace = append(trace, visit{l, n, c})
	}}
	e, err := New(buildModel(rng, "GCN", 5, gnn.AggMax), g, x, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Update(graph.RandomDelta(rng, e.Graph(), 8)); err != nil {
		t.Fatal(err)
	}
	if int64(len(trace)) != e.Stats().Total() {
		t.Fatalf("trace has %d entries, stats count %d", len(trace), e.Stats().Total())
	}
	var byCond ConditionStats
	for i, v := range trace {
		byCond.Add(v.cond)
		if i > 0 && trace[i-1].layer == v.layer && trace[i-1].node >= v.node {
			t.Fatal("trace not in sorted target order within a layer")
		}
		if i > 0 && trace[i-1].layer > v.layer {
			t.Fatal("trace not in layer order")
		}
	}
	if byCond != *e.Stats() {
		t.Errorf("trace conditions %v != stats %v", byCond.String(), e.Stats())
	}
}

// GraphConv (the generality demo model) flows through the incremental
// engine unchanged and stays exact.
func TestGraphConvThroughEngine(t *testing.T) {
	for _, kind := range []gnn.AggKind{gnn.AggMax, gnn.AggSum} {
		rng := rand.New(rand.NewSource(3))
		g := randomGraph(rng, 50, 150)
		x := tensor.RandMatrix(rng, 50, 5, 1)
		model := gnn.NewGraphConv(rng, 5, 8, gnn.NewAggregator(kind))
		e, err := New(model, g, x, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for batch := 0; batch < 3; batch++ {
			if err := e.Update(graph.RandomDelta(rng, e.Graph(), 10)); err != nil {
				t.Fatal(err)
			}
		}
		checkEquivalence(t, e, x, kind, "graphconv/"+kind.String())
	}
}
