package inkstream

import (
	"math/rand"
	"testing"

	"repro/internal/gnn"
	"repro/internal/tensor"
)

// irreversibleAgg is a std-like aggregation function: it reports itself
// non-reversible, so the engine must refuse it (the paper: "irreversible
// aggregation functions like std are not compatible with our method").
type irreversibleAgg struct{ gnn.Aggregator }

func (irreversibleAgg) Reversible() bool { return false }

func TestCheckModelRejectsIrreversibleAggregation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := gnn.NewGCN(rng, 4, 4, irreversibleAgg{gnn.NewAggregator(gnn.AggSum)})
	if err := CheckModel(model); err == nil {
		t.Fatal("irreversible aggregation accepted")
	}
	g := randomGraph(rng, 10, 20)
	x := tensor.RandMatrix(rng, 10, 4, 1)
	if _, err := New(model, g, x, nil, Options{}); err == nil {
		t.Fatal("engine constructed over irreversible aggregation")
	}
}

func TestCheckModelAcceptsAllBuiltins(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, kind := range allKinds {
		for _, name := range allModels {
			if err := CheckModel(buildModel(rng, name, 4, kind)); err != nil {
				t.Errorf("%s/%v rejected: %v", name, kind, err)
			}
		}
	}
}

func TestCheckModelRejectsInvalidModel(t *testing.T) {
	if err := CheckModel(&gnn.Model{Name: "empty"}); err == nil {
		t.Error("empty model accepted")
	}
}
