package inkstream

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// fakeRowStore is a resident in-memory RowStore used to test the engine's
// publication seam without pulling in the real paged store.
type fakeRowStore struct {
	rows     map[int]tensor.Vector
	writes   []int
	seals    []uint64
	released []uint64
	failRow  int // Row(failRow) errors when >= 0
}

type fakeRowView struct {
	st    *fakeRowStore
	epoch uint64
	rows  map[int]tensor.Vector
	n     int
}

func newFakeRowStore() *fakeRowStore {
	return &fakeRowStore{rows: make(map[int]tensor.Vector), failRow: -1}
}

func (f *fakeRowStore) WriteRow(id int, row tensor.Vector) {
	f.rows[id] = row.Clone()
	f.writes = append(f.writes, id)
}

func (f *fakeRowStore) Seal(epoch uint64) RowView {
	f.seals = append(f.seals, epoch)
	n := 0
	snap := make(map[int]tensor.Vector, len(f.rows))
	for id, v := range f.rows {
		snap[id] = v
		if id+1 > n {
			n = id + 1
		}
	}
	return &fakeRowView{st: f, epoch: epoch, rows: snap, n: n}
}

func (v *fakeRowView) Row(id int) (tensor.Vector, error) {
	if id == v.st.failRow {
		return nil, errFault
	}
	return v.rows[id], nil
}

func (v *fakeRowView) NumRows() int { return v.n }
func (v *fakeRowView) Release()     { v.st.released = append(v.st.released, v.epoch) }

var errFault = errors.New("row unavailable")

func TestSetRowStoreAfterPublishFails(t *testing.T) {
	eng := newSnapEngine(t)
	eng.PublishSnapshot()
	if err := eng.SetRowStore(newFakeRowStore()); err == nil {
		t.Fatal("SetRowStore after PublishSnapshot should fail")
	}
}

func TestTieredPublishWritesDirtyRowsOnly(t *testing.T) {
	eng := newSnapEngine(t)
	st := newFakeRowStore()
	if err := eng.SetRowStore(st); err != nil {
		t.Fatal(err)
	}

	s1 := eng.PublishSnapshot()
	if s1.Epoch != 1 || s1.NumNodes() != 120 {
		t.Fatalf("first snapshot epoch=%d nodes=%d", s1.Epoch, s1.NumNodes())
	}
	if len(st.writes) != 120 {
		t.Fatalf("first publish wrote %d rows, want all 120", len(st.writes))
	}
	for i := 0; i < 120; i++ {
		if !s1.Row(i).Equal(eng.Output().Row(i)) {
			t.Fatalf("row %d differs from engine output", i)
		}
	}

	rng := rand.New(rand.NewSource(6))
	delta := graph.RandomDelta(rng, eng.Graph(), 5)
	if err := eng.Update(delta); err != nil {
		t.Fatal(err)
	}
	dirty := eng.DirtyRows()
	st.writes = nil
	s2 := eng.PublishSnapshot()
	if s2.Epoch != 2 {
		t.Fatalf("second snapshot epoch %d", s2.Epoch)
	}
	if len(st.writes) != len(dirty) {
		t.Fatalf("incremental publish wrote %d rows, want the %d dirty rows", len(st.writes), len(dirty))
	}
	for i := 0; i < 120; i++ {
		if !s2.Row(i).Equal(eng.Output().Row(i)) {
			t.Fatalf("row %d stale in tiered snapshot", i)
		}
	}
	// Superseding epoch 1 released its view.
	if len(st.released) != 1 || st.released[0] != 1 {
		t.Fatalf("released views %v, want [1]", st.released)
	}
	if len(st.seals) != 2 || st.seals[0] != 1 || st.seals[1] != 2 {
		t.Fatalf("seal epochs %v", st.seals)
	}
}

func TestTieredPublishAddNodeGrowth(t *testing.T) {
	eng := newSnapEngine(t)
	st := newFakeRowStore()
	if err := eng.SetRowStore(st); err != nil {
		t.Fatal(err)
	}
	eng.PublishSnapshot()
	x := make(tensor.Vector, 8)
	x[0] = 1
	id, err := eng.AddNode(x)
	if err != nil {
		t.Fatal(err)
	}
	s := eng.PublishSnapshot()
	if s.NumNodes() != int(id)+1 {
		t.Fatalf("snapshot rows %d, want %d", s.NumNodes(), id+1)
	}
	if !s.Row(int(id)).Equal(eng.Output().Row(int(id))) {
		t.Error("new node row missing from tiered snapshot")
	}
}

func TestTieredRowFaultReturnsNil(t *testing.T) {
	eng := newSnapEngine(t)
	st := newFakeRowStore()
	if err := eng.SetRowStore(st); err != nil {
		t.Fatal(err)
	}
	st.failRow = 7
	s := eng.PublishSnapshot()
	if row := s.Row(7); row != nil {
		t.Fatalf("faulting row returned %v, want nil", row)
	}
	if s.Row(8) == nil {
		t.Fatal("healthy row returned nil")
	}
}

func TestTieredRefreshRewritesAllRows(t *testing.T) {
	eng := newSnapEngine(t)
	st := newFakeRowStore()
	if err := eng.SetRowStore(st); err != nil {
		t.Fatal(err)
	}
	eng.PublishSnapshot()
	if err := eng.Refresh(); err != nil {
		t.Fatal(err)
	}
	st.writes = nil
	eng.PublishSnapshot()
	if len(st.writes) != 120 {
		t.Fatalf("publish after Refresh wrote %d rows, want all 120", len(st.writes))
	}
}
