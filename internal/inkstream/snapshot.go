package inkstream

import (
	"sort"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Snapshot is an immutable, epoch-stamped copy of the final-layer
// embeddings plus the serving-relevant summary state. Snapshots are built
// copy-on-write from the rows the engine actually touched since the last
// publication, published through an atomic pointer, and never mutated
// afterwards — any number of readers may hold one (and read its rows)
// with no locking while the single writer keeps applying updates.
type Snapshot struct {
	// Epoch counts publications; the first published snapshot has epoch 1.
	// A reader that resolved a row against this snapshot observed the
	// engine state as of this epoch (the staleness bound it can report).
	Epoch uint64
	// AppliedBatches is the number of successful Apply calls reflected in
	// this snapshot; the gap to the engine's accepted-batch count is the
	// snapshot lag.
	AppliedBatches uint64
	// Nodes and Edges describe the maintained graph at publication time.
	Nodes, Edges int
	// Conditions is a copy of the cumulative per-condition visit
	// statistics at publication time.
	Conditions ConditionStats

	rows []tensor.Vector
	// view is the sealed row-store generation backing this snapshot when
	// the engine has a RowStore attached; rows is nil in that mode.
	view RowView
}

// NumNodes returns the number of embedding rows in the snapshot.
func (s *Snapshot) NumNodes() int {
	if s.view != nil {
		return s.view.NumRows()
	}
	return len(s.rows)
}

// Row returns node i's embedding as of this snapshot's epoch. The returned
// vector is immutable by contract: callers must not write to it, and may
// read it indefinitely without holding any lock. In tiered mode (a RowStore
// is attached) a row that cannot be faulted back in returns nil; see
// RowView for the superseded-view staleness semantics.
func (s *Snapshot) Row(i int) tensor.Vector {
	if s.view != nil {
		v, err := s.view.Row(i)
		if err != nil {
			return nil
		}
		return v
	}
	return s.rows[i]
}

// snapState is the engine's snapshot machinery. Dirty-output tracking is
// off until the first PublishSnapshot call so engines that never serve
// snapshots (experiments, benchmarks) pay nothing.
type snapState struct {
	cur      atomic.Pointer[Snapshot]
	tracking bool
	// dirty holds the output rows written with a changed value since the
	// last publication; retained and cleared in place across publications.
	dirty map[graph.NodeID]struct{}
	// applied counts successful Apply calls (for Snapshot.AppliedBatches).
	applied uint64
	// all forces the next publication to re-clone every row (set by
	// Refresh, which replaces the whole state).
	all bool
	// store, when non-nil, backs publications instead of resident clones
	// (see SetRowStore).
	store RowStore
}

// Snapshot returns the most recently published snapshot, or nil when
// PublishSnapshot has never been called. Safe to call from any goroutine.
func (e *Engine) Snapshot() *Snapshot { return e.snap.cur.Load() }

// DirtyRows returns the sorted IDs of the output rows whose embedding
// changed since the last PublishSnapshot. It returns nil until tracking is
// enabled by the first PublishSnapshot call. Like Apply, it must only be
// called from the writer goroutine.
func (e *Engine) DirtyRows() []graph.NodeID {
	if len(e.snap.dirty) == 0 {
		return nil
	}
	out := make([]graph.NodeID, 0, len(e.snap.dirty))
	for id := range e.snap.dirty {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// markDirty records an output-row write; no-op until tracking is enabled.
func (e *Engine) markDirty(u graph.NodeID) {
	if !e.snap.tracking {
		return
	}
	if e.snap.dirty == nil {
		e.snap.dirty = make(map[graph.NodeID]struct{})
	}
	e.snap.dirty[u] = struct{}{}
}

// markAllDirty forces the next publication to re-clone every row.
func (e *Engine) markAllDirty() {
	if e.snap.tracking {
		e.snap.all = true
	}
}

// PublishSnapshot builds a new immutable snapshot of the final-layer
// embeddings and publishes it atomically, then clears the dirty-row set.
// The first call clones every row and enables dirty tracking; subsequent
// calls share every clean row with the previous snapshot and clone only
// the rows Apply touched since (copy-on-write), so steady-state publication
// cost is proportional to the affected area, not the graph.
//
// Must only be called from the writer goroutine (the same discipline as
// Apply); the returned snapshot may be read from anywhere.
func (e *Engine) PublishSnapshot() *Snapshot {
	prev := e.snap.cur.Load()
	out := e.state.Output()
	n := e.g.NumNodes()
	if e.snap.store != nil {
		return e.publishTiered(prev, out, n)
	}
	rows := make([]tensor.Vector, n)
	switch {
	case prev == nil || e.snap.all:
		for i := range rows {
			rows[i] = out.Row(i).Clone()
		}
		e.snap.all = false
	default:
		copy(rows, prev.rows)
		// Rows beyond the previous snapshot (AddNode growth) are all new.
		for i := len(prev.rows); i < n; i++ {
			rows[i] = out.Row(i).Clone()
		}
		for id := range e.snap.dirty {
			if int(id) < n {
				rows[id] = out.Row(int(id)).Clone()
			}
		}
	}
	s := &Snapshot{
		Epoch:          1,
		AppliedBatches: e.snap.applied,
		Nodes:          n,
		Edges:          e.g.NumEdges(),
		Conditions:     e.stats,
		rows:           rows,
	}
	if prev != nil {
		s.Epoch = prev.Epoch + 1
	}
	e.snap.cur.Store(s)
	e.snap.tracking = true
	if len(e.snap.dirty) > 0 {
		clear(e.snap.dirty)
	}
	return s
}

// publishTiered is the RowStore-backed publication path: changed rows are
// written (encoded) into the store, the store seals an epoch-stamped view,
// and the previous snapshot's view is released so its frames become
// eligible for eviction. Copy-on-write happens inside the store at page
// granularity; untouched rows keep their previously encoded bytes verbatim
// so quantization error never compounds across epochs.
func (e *Engine) publishTiered(prev *Snapshot, out *tensor.Matrix, n int) *Snapshot {
	st := e.snap.store
	switch {
	case prev == nil || e.snap.all:
		for i := 0; i < n; i++ {
			st.WriteRow(i, out.Row(i))
		}
		e.snap.all = false
	default:
		// Rows beyond the previous snapshot (AddNode growth) are all new.
		for i := prev.NumNodes(); i < n; i++ {
			st.WriteRow(i, out.Row(i))
		}
		for id := range e.snap.dirty {
			if int(id) < n {
				st.WriteRow(int(id), out.Row(int(id)))
			}
		}
	}
	epoch := uint64(1)
	if prev != nil {
		epoch = prev.Epoch + 1
	}
	s := &Snapshot{
		Epoch:          epoch,
		AppliedBatches: e.snap.applied,
		Nodes:          n,
		Edges:          e.g.NumEdges(),
		Conditions:     e.stats,
		view:           st.Seal(epoch),
	}
	e.snap.cur.Store(s)
	if prev != nil && prev.view != nil {
		prev.view.Release()
	}
	e.snap.tracking = true
	if len(e.snap.dirty) > 0 {
		clear(e.snap.dirty)
	}
	return s
}
