package inkstream

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/tensor"
)

func newSnapEngine(t *testing.T) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	g := dataset.GenerateRMAT(rng, 120, 480, dataset.DefaultRMAT)
	feats := dataset.NewFeatures(rng, 120, 8)
	model := gnn.NewGCN(rng, 8, 16, gnn.NewAggregator(gnn.AggMax))
	eng, err := New(model, g, feats.X, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestSnapshotPublishAndCOW(t *testing.T) {
	eng := newSnapEngine(t)
	if eng.Snapshot() != nil {
		t.Fatal("snapshot before first publish")
	}
	if rows := eng.DirtyRows(); rows != nil {
		t.Fatalf("dirty rows before tracking: %v", rows)
	}

	s1 := eng.PublishSnapshot()
	if s1.Epoch != 1 || s1.NumNodes() != 120 {
		t.Fatalf("first snapshot epoch=%d nodes=%d", s1.Epoch, s1.NumNodes())
	}
	if s1.Nodes != 120 || s1.Edges != eng.Graph().NumEdges() {
		t.Fatalf("snapshot graph summary %d/%d", s1.Nodes, s1.Edges)
	}
	for i := 0; i < 120; i++ {
		if !s1.Row(i).Equal(eng.Output().Row(i)) {
			t.Fatalf("row %d differs from engine output", i)
		}
	}

	// One update batch: the dirty set must be exactly the changed rows.
	rng := rand.New(rand.NewSource(6))
	delta := graph.RandomDelta(rng, eng.Graph(), 5)
	if err := eng.Update(delta); err != nil {
		t.Fatal(err)
	}
	dirty := eng.DirtyRows()
	dirtySet := make(map[graph.NodeID]bool, len(dirty))
	for _, id := range dirty {
		dirtySet[id] = true
	}
	for i := 0; i < 120; i++ {
		changed := !s1.Row(i).Equal(eng.Output().Row(i))
		if changed && !dirtySet[graph.NodeID(i)] {
			t.Errorf("row %d changed but not marked dirty", i)
		}
	}

	s2 := eng.PublishSnapshot()
	if s2.Epoch != 2 {
		t.Fatalf("second snapshot epoch %d", s2.Epoch)
	}
	if s2.AppliedBatches != 1 || s1.AppliedBatches != 0 {
		t.Fatalf("applied batches s1=%d s2=%d", s1.AppliedBatches, s2.AppliedBatches)
	}
	if eng.DirtyRows() != nil {
		t.Error("dirty rows survive publication")
	}
	for i := 0; i < 120; i++ {
		if !s2.Row(i).Equal(eng.Output().Row(i)) {
			t.Fatalf("row %d stale in new snapshot", i)
		}
		// Copy-on-write: clean rows share storage with the previous epoch,
		// dirty rows were re-cloned.
		shared := len(s1.Row(i)) > 0 && &s1.Row(i)[0] == &s2.Row(i)[0]
		if dirtySet[graph.NodeID(i)] && shared {
			t.Errorf("dirty row %d shares storage across epochs", i)
		}
		if !dirtySet[graph.NodeID(i)] && !shared {
			t.Errorf("clean row %d was needlessly re-cloned", i)
		}
	}
	// The old snapshot is immutable: it still reflects epoch 1.
	for i := 0; i < 120; i++ {
		if dirtySet[graph.NodeID(i)] && s1.Row(i).Equal(s2.Row(i)) {
			continue // row changed back or clone equal; fine either way
		}
	}
}

func TestSnapshotRefreshMarksAllDirty(t *testing.T) {
	eng := newSnapEngine(t)
	s1 := eng.PublishSnapshot()
	if err := eng.Refresh(); err != nil {
		t.Fatal(err)
	}
	s2 := eng.PublishSnapshot()
	for i := 0; i < s2.NumNodes(); i++ {
		if &s1.Row(i)[0] == &s2.Row(i)[0] {
			t.Fatalf("row %d shares storage after Refresh (state was replaced)", i)
		}
	}
}

func TestSnapshotAddNodeGrowth(t *testing.T) {
	eng := newSnapEngine(t)
	eng.PublishSnapshot()
	x := make(tensor.Vector, 8)
	x[0] = 1
	id, err := eng.AddNode(x)
	if err != nil {
		t.Fatal(err)
	}
	s := eng.PublishSnapshot()
	if s.NumNodes() != int(id)+1 {
		t.Fatalf("snapshot rows %d, want %d", s.NumNodes(), id+1)
	}
	if !s.Row(int(id)).Equal(eng.Output().Row(int(id))) {
		t.Error("new node row missing from snapshot")
	}
}
