package inkstream

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"time"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Options tunes the engine. The zero value is the full InkStream algorithm;
// the Disable* switches exist for the paper's ablation studies (Table VI
// and DESIGN.md §4).
type Options struct {
	// DisablePruning turns off inter-layer pruned propagation (component 2
	// in Table VI): resilient nodes keep propagating events, so the whole
	// theoretical affected area is visited, as in InkStream-m(1).
	DisablePruning bool
	// DisableGrouping turns off event grouping (Fig. 4 ablation): each
	// native event is applied individually in arrival order, forcing a
	// conservative recompute whenever a lone deletion resets a channel.
	// Processing falls back to sequential order.
	DisableGrouping bool
	// CopyPayloads disables payload sharing between events fanned out from
	// one source (DESIGN.md §4.1): every event carries its own copy.
	CopyPayloads bool
	// Sequential disables intra-layer parallel processing of grouped
	// targets (and, since it idles the worker pool, parallel sharded event
	// routing too).
	Sequential bool
	// DisableShardedGrouping forces sequential event routing even for
	// layers whose event count crosses the sharding threshold. It changes
	// performance only: the sharded router is bit-exact with the
	// sequential one (DESIGN.md §9).
	DisableShardedGrouping bool
	// ShardMinEvents is the per-layer event count at which event routing
	// fans out across the tensor worker pool; 0 means the built-in
	// default (512). Layers below the threshold route sequentially —
	// the sharded path's partition passes only pay off once routing
	// dominates.
	ShardMinEvents int
	// Trace, when set, is invoked once per visited node per layer with
	// the node's classification, after that layer completes (in sorted
	// target order, from a single goroutine). For observability and
	// debugging; keep it fast.
	Trace func(layer int, node graph.NodeID, cond Condition)
	// Observer, when set, records every Apply into the serving-path
	// latency/size histograms and fills a per-layer obs.Trace (phase
	// timings, event traffic, condition counts) that the observer emits
	// for slow updates. The trace buffer is engine-owned and reused, so
	// steady-state observation does not allocate; see SetObserver to
	// install one after construction.
	Observer *obs.Observer
}

// Engine holds the incrementally maintained inference state for one model
// over one dynamic graph. Create it with New (which runs the initial full
// inference) or NewFromState, then feed it ΔG batches via Update and
// vertex-feature changes via UpdateVertices.
type Engine struct {
	model *gnn.Model
	g     *graph.Graph
	state *gnn.State
	hooks UserHooks
	c     *metrics.Counters
	opts  Options
	stats ConditionStats
	// layerStats[l] restricts the condition statistics to layer l —
	// Fig. 8's distribution resolved per layer (deeper layers prune more).
	layerStats []ConditionStats

	// Per-Apply scratch, valid only during one Apply call but retained
	// across calls so the steady-state hot path does not allocate: the
	// maps are cleared (not re-made) per batch, created lazily on the
	// first non-empty delta.
	insArcs  map[[2]graph.NodeID]struct{}
	degDelta map[graph.NodeID]int
	// snapMaps[l] holds snapshotRemovedSources' per-layer tables, cleared
	// per batch; nil until the first deletion batch.
	snapMaps []map[graph.NodeID]tensor.Vector
	// negCache caches negated old messages within one enqueueChangedEdges
	// pass; nil until the first accumulative deletion batch.
	negCache map[graph.NodeID]tensor.Vector

	// arena backs every Apply-scoped payload vector; rewound at the start
	// of each Apply.
	arena vecArena

	// processLayer fan-in/fan-out buffers, reused across layers and
	// Applies. outN[i]/outU[i] keep their capacity for group slot i; evBuf
	// and uevBuf carry each layer's merged events into the next layer's
	// grouping pass (safe to overwrite in place: the grouper has absorbed
	// the previous layer's events before processLayer reuses the buffer).
	outN   [][]Event
	outU   [][]UserEvent
	conds  []Condition
	evBuf  []Event
	uevBuf []UserEvent

	// Partitioned-mode state (partition.go). partLocal non-nil switches the
	// engine into shard mode: Apply is disabled in favour of the
	// BeginRound/RoundLayer/FinishRound protocol, and processTarget captures
	// message-change records into outR/partRecOut instead of fanning events
	// out locally.
	partLocal  []bool
	partActive bool
	partDelta  graph.Delta
	partOld    []map[graph.NodeID]tensor.Vector
	partCarU   []UserEvent
	partRecOut []MessageChange
	outR       [][]MessageChange

	// Boundary-first overlap state (partition.go). partBoundary marks the
	// local vertices with at least one remote subscriber; RoundLayerBoundary
	// stashes the layer's groups (reordered boundary-first) plus the split
	// point so RoundLayerInterior can finish the layer while the router
	// exchanges the boundary records. partRecB is the interior phase's
	// record buffer — the boundary phase's slice (partRecOut) is still being
	// read by the router while the interior computes, so the two phases
	// must not share backing storage.
	partBoundary  []bool
	partGroups    []*group
	partSplit     int
	partLayer     int
	partSplitOpen bool
	partRecB      []MessageChange

	// roundTiming gates the per-stage round profiler hooks (partition.go):
	// when on, each BeginRound/RoundLayer call leaves a RoundStageStats in
	// lastStage for the router to collect after the stage barrier. Off by
	// default — a couple of time.Now calls per stage is cheap, but the
	// profiler is still opt-in like the flight recorder.
	roundTiming bool
	lastStage   RoundStageStats

	// routeN stages one layer's full native event list (changed-edge events
	// plus carried events) ahead of grouping, so the sharded router can
	// partition it; reused across layers and Applies.
	routeN []Event

	// scratchPools[l] recycles processTarget worker scratch for layer l.
	scratchPools []sync.Pool

	// gr is the reusable epoch-stamped grouping table.
	gr *grouper

	// snap is the epoch-snapshot machinery (snapshot.go); dirt is the
	// per-group output-changed scratch merged alongside conds.
	snap snapState
	dirt []bool

	// obs records per-update latency and traces; trace is the reusable
	// per-Apply span buffer it emits (nil obs disables both).
	obs   *obs.Observer
	trace obs.Trace
}

// New bootstraps an engine with a full-graph inference over g and x (the
// paper's "initial full graph inference" whose checkpoints are saved).
// The graph is used (and mutated by Update) by reference.
func New(model *gnn.Model, g *graph.Graph, x *tensor.Matrix, c *metrics.Counters, opts Options) (*Engine, error) {
	if err := CheckModel(model); err != nil {
		return nil, err
	}
	state, err := gnn.Infer(model, g, x, nil)
	if err != nil {
		return nil, err
	}
	return NewFromState(model, g, state, c, opts)
}

// NewFromState wraps an existing checkpointed state (which must be
// consistent with g). It installs the built-in self-dependence hooks; use
// SetHooks to extend them.
func NewFromState(model *gnn.Model, g *graph.Graph, state *gnn.State, c *metrics.Counters, opts Options) (*Engine, error) {
	if err := CheckModel(model); err != nil {
		return nil, err
	}
	if state.NumNodes() != g.NumNodes() {
		return nil, fmt.Errorf("inkstream: state for %d nodes, graph has %d", state.NumNodes(), g.NumNodes())
	}
	e := &Engine{model: model, g: g, state: state, c: c, opts: opts}
	e.hooks = SelfHooks{SelfDependent: func(l int) bool {
		return l < model.NumLayers() && model.Layers[l].SelfDependent()
	}}
	e.gr = newGrouper(g.NumNodes())
	e.layerStats = make([]ConditionStats, model.NumLayers())
	e.scratchPools = make([]sync.Pool, model.NumLayers())
	e.obs = opts.Observer
	e.trace.CondNames = ConditionNames()
	return e, nil
}

// SetObserver installs (or, with nil, removes) the serving-path observer
// after construction; the HTTP server uses this to share one observer
// between the engine and its /metrics registry. Not safe to call
// concurrently with Apply.
func (e *Engine) SetObserver(o *obs.Observer) { e.obs = o }

// Observer returns the installed observer (nil when observability is off).
func (e *Engine) Observer() *obs.Observer { return e.obs }

// Trace returns the engine-owned per-layer trace of the most recent Apply.
// With an observer installed the trace is refilled on every Apply, so the
// returned pointer is only valid until the next one — Clone to retain (the
// server's flight recorder does exactly that for sampled requests). Writer
// goroutine only; nil observer means the trace is never filled.
func (e *Engine) Trace() *obs.Trace { return &e.trace }

func checkNorms(model *gnn.Model) error {
	for l := range model.Layers {
		if n := model.Norm(l); n != nil && !n.IsFrozen {
			return fmt.Errorf("inkstream: layer %d has exact-mode GraphNorm; incremental updates require frozen statistics (Sec. II-E) — call Freeze first", l)
		}
	}
	return nil
}

// CheckModel verifies the paper's expressiveness conditions (Sec. II):
// (1) every layer's update reads only the node's own message and
// aggregated neighborhood — guaranteed by the gnn.Layer interface shape,
// except for exact-mode GraphNorm, which couples all vertices and must be
// frozen; and (2) every aggregation function is at least partially
// reversible, so old contributions can be cancelled (std-like functions
// are rejected). New and NewFromState run this check automatically.
func CheckModel(model *gnn.Model) error {
	if err := model.Validate(); err != nil {
		return err
	}
	for l, layer := range model.Layers {
		if !layer.Agg().Reversible() {
			return fmt.Errorf("inkstream: layer %d (%s) uses an irreversible aggregation function %s; incremental updates cannot cancel old contributions (expressiveness condition 2)",
				l, layer.Name(), layer.Agg().Kind())
		}
	}
	return checkNorms(model)
}

// SetHooks replaces the user-event hooks. The replacement must subsume the
// self-dependence behaviour if the model needs it (wrap SelfHooks).
func (e *Engine) SetHooks(h UserHooks) { e.hooks = h }

// State exposes the maintained checkpoints (read-only by convention).
func (e *Engine) State() *gnn.State { return e.state }

// Graph exposes the maintained graph (read-only by convention; mutate it
// only through Update).
func (e *Engine) Graph() *graph.Graph { return e.g }

// Model returns the model under inference.
func (e *Engine) Model() *gnn.Model { return e.model }

// Stats returns the cumulative per-condition visit statistics.
func (e *Engine) Stats() *ConditionStats { return &e.stats }

// LayerStats returns the cumulative condition statistics restricted to
// layer l.
func (e *Engine) LayerStats(l int) *ConditionStats { return &e.layerStats[l] }

// ResetStats clears the condition statistics (total and per layer).
func (e *Engine) ResetStats() {
	e.stats = ConditionStats{}
	for l := range e.layerStats {
		e.layerStats[l] = ConditionStats{}
	}
}

// Output returns the maintained final-layer embeddings.
func (e *Engine) Output() *tensor.Matrix { return e.state.Output() }

// Verify recomputes the full inference from scratch over the current graph
// and input features and compares it against the maintained state — a
// debugging aid for deployments. Monotonic-only models must match
// bit-for-bit; models with any accumulative layer are checked within tol
// (pass 0 to force the bit-exact comparison).
func (e *Engine) Verify(tol float32) error {
	_, err := e.VerifyDiff(tol)
	return err
}

// VerifyDiff is Verify with the measurement exposed: it always returns the
// output-layer max absolute difference between the maintained state and the
// from-scratch recomputation, alongside the pass/fail error. The serving
// layer reports the measured diff in the /v1/verify response body.
func (e *Engine) VerifyDiff(tol float32) (float32, error) {
	want, err := gnn.Infer(e.model, e.g, e.state.H[0], nil)
	if err != nil {
		return 0, err
	}
	maxDiff := e.state.Output().MaxAbsDiff(want.Output())
	exact := true
	for _, layer := range e.model.Layers {
		if !layer.Agg().Monotonic() {
			exact = false
			break
		}
	}
	if exact || tol <= 0 {
		if !e.state.Equal(want) {
			return maxDiff, fmt.Errorf("inkstream: state diverged from recomputation (output max diff %g)", maxDiff)
		}
		return maxDiff, nil
	}
	if !e.state.ApproxEqual(want, tol) {
		return maxDiff, fmt.Errorf("inkstream: state diverged beyond tol %g (output max diff %g)", tol, maxDiff)
	}
	return maxDiff, nil
}

// Refresh re-anchors the cache by recomputing the full inference over the
// current graph and features. Monotonic aggregators never need this (they
// are bit-exact); accumulative aggregators accumulate floating-point drift
// across many incremental batches, and deployments can Refresh on the same
// cadence as the paper's periodic retraining to bound it. Counters are not
// charged (it is maintenance, not serving work).
func (e *Engine) Refresh() error {
	state, err := gnn.Infer(e.model, e.g, e.state.H[0], nil)
	if err != nil {
		return err
	}
	e.state = state
	e.markAllDirty()
	return nil
}

// Update applies one ΔG batch of edge insertions/removals and incrementally
// refreshes the cached state (Algorithm 1). On validation error the graph
// and state are unchanged.
func (e *Engine) Update(delta graph.Delta) error { return e.Apply(delta, nil) }

// UpdateVertices applies vertex-feature updates (Sec. II-F).
func (e *Engine) UpdateVertices(ups []VertexUpdate) error { return e.Apply(nil, ups) }

// Apply processes edge changes and vertex-feature updates as one batch
// between two timestamps.
func (e *Engine) Apply(delta graph.Delta, vups []VertexUpdate) error {
	// Observability: with an observer installed, every phase below is
	// timed into the engine-owned reusable trace (no allocation) and the
	// batch is recorded into the latency/size histograms at the end. A few
	// time.Now calls per update keep the overhead well under the <5%
	// budget the observability layer is held to (BenchmarkApplyObservability).
	if e.partLocal != nil {
		return errPartitioned
	}
	observing := e.obs != nil
	var t0, phase0 time.Time
	if observing {
		t0 = time.Now()
	}
	if err := delta.Validate(e.g); err != nil {
		return err
	}
	if err := e.validateVertexUpdates(vups); err != nil {
		return err
	}
	L := e.model.NumLayers()
	if observing {
		e.trace.Reset(L)
		e.trace.DeltaEdges = len(delta)
		e.trace.VertexUpdates = len(vups)
		phase0 = time.Now()
	}

	// Rewind the payload arena: every payload from the previous Apply is
	// dead by now (groups and event buffers only reuse, never re-read).
	e.arena.reset()

	// Snapshot m⁻_{l,u} for every layer for the sources of removed arcs:
	// their Del payloads must be the previous-timestamp messages even if
	// the source is updated while processing an earlier layer. Taken
	// before any mutation.
	oldMsg := e.snapshotRemovedSources(delta)

	// Record which arcs are inserted (propagation from an affected source
	// skips them — the changed-edge event carries the new message already)
	// and per-node in-degree deltas (the mean aggregator's incremental
	// formula needs the previous degree).
	e.indexDeltaArcs(delta)

	if err := delta.Apply(e.g); err != nil {
		return err // unreachable after Validate, but fail safe
	}
	if observing {
		e.trace.DeltaApply = time.Since(phase0)
		phase0 = time.Now()
	}

	// Vertex updates produce the initial layer-0 events.
	carried, carriedUser := e.applyVertexUpdates(vups)
	if observing {
		e.trace.VertexApply = time.Since(phase0)
	}

	// Changed-edge events are re-enqueued at every layer; precompute the
	// per-layer count once for the trace.
	nArcs := len(delta)
	if e.g.Undirected {
		nArcs *= 2
	}

	for l := 0; l < L; l++ {
		var span *obs.LayerSpan
		var bytes0 int64
		var conds0 ConditionStats
		if observing {
			span = &e.trace.Layers[l]
			span.EventsIn = int64(nArcs + len(carried))
			span.UserEventsIn = int64(len(carriedUser))
			if e.c != nil {
				bytes0 = e.c.BytesFetched.Load()
			}
			conds0 = e.layerStats[l]
			phase0 = time.Now()
		}
		// Stage the layer's full native event list — changed-edge events
		// first, then the carried events, matching the historical arrival
		// order — and route it through the grouper: sequentially for small
		// layers, across the worker pool for large ones. Both routes yield
		// identical groups in identical order (DESIGN.md §9), so the choice
		// is invisible to everything downstream.
		e.routeN = e.appendChangedEdgeEvents(e.routeN[:0], l, delta, oldMsg)
		fetched := 0
		for _, ev := range carried {
			fetched += len(ev.Payload)
		}
		e.c.FetchVec(fetched)
		e.routeN = append(e.routeN, carried...)
		dim := e.model.Layers[l].MsgDim()
		var groups []*group
		if S := e.shardCount(len(e.routeN) + len(carriedUser)); S > 1 {
			e.gr.beginSharded(dim, S)
			groups = e.gr.groupSharded(e.routeN, carriedUser, e.hooks)
		} else {
			e.gr.begin(dim)
			for _, ev := range e.routeN {
				e.gr.addNative(ev)
			}
			for _, ev := range carriedUser {
				e.gr.addUser(ev)
			}
			groups = e.gr.finish(e.hooks)
		}
		carried, carriedUser = e.processLayer(l, groups)
		if observing {
			span.Elapsed = time.Since(phase0)
			span.EventsOut = int64(len(carried))
			if e.c != nil {
				span.BytesFetched = e.c.BytesFetched.Load() - bytes0
			}
			for c := 0; c < int(numConditions); c++ {
				n := e.layerStats[l].Counts[c] - conds0.Counts[c]
				span.Cond[c] = n
				span.Nodes += n
			}
		}
	}
	if observing {
		e.trace.Total = time.Since(t0)
		e.obs.RecordUpdate(&e.trace)
	}
	e.snap.applied++
	return nil
}

// AppliedBatches returns the number of successfully applied batches —
// the counter a published Snapshot records as AppliedBatches. Writer
// goroutine only.
func (e *Engine) AppliedBatches() uint64 { return e.snap.applied }

// arcsOf expands a logical edge change into its directed arcs without
// allocating: the arcs come back by value in a fixed-size array, with n
// reporting how many are live (2 when the graph is undirected, else 1).
// Callers iterate arcs[:n].
func (e *Engine) arcsOf(ch graph.EdgeChange) (arcs [2][2]graph.NodeID, n int) {
	arcs[0] = [2]graph.NodeID{ch.U, ch.V}
	if e.g.Undirected {
		arcs[1] = [2]graph.NodeID{ch.V, ch.U}
		return arcs, 2
	}
	return arcs, 1
}

// shardCount decides how many grouper shards the upcoming layer's event
// routing uses: 1 (sequential) below the event threshold or when any
// ablation/option rules out pool work; otherwise twice the effective worker
// count — ParallelForGrain inlines regions smaller than two chunks per
// worker, and the 2× headroom also absorbs the up-to-2× shard imbalance of
// the power-of-two block partition — capped at maxShards so the per-chunk
// count matrix of the partition passes stays small.
func (e *Engine) shardCount(nEvents int) int {
	if e.opts.Sequential || e.opts.DisableGrouping || e.opts.DisableShardedGrouping {
		return 1
	}
	minEv := e.opts.ShardMinEvents
	if minEv <= 0 {
		minEv = defaultShardMinEvents
	}
	if nEvents < minEv {
		return 1
	}
	w := tensor.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w <= 1 {
		// One worker: the partition passes cost memory traffic and buy no
		// parallelism — the direct sequential grouper is strictly better.
		return 1
	}
	s := 2 * w
	if s > maxShards {
		s = maxShards
	}
	if s < 2 {
		return 1
	}
	return s
}

const (
	// defaultShardMinEvents gates the sharded router: below this many
	// events per layer, sequential routing wins (the partition passes and
	// pool handoff cost more than they save). Same spirit as
	// tensor.MinChunkWork, measured in events rather than grain units.
	defaultShardMinEvents = 512
	// maxShards bounds the shard count (and must stay ≤ 256: the
	// partition records shard owners in a uint8).
	maxShards = 32
)

// snapshotRemovedSources clones the pre-batch message rows of every removed
// arc's source node at every layer. Insert-only (and empty) deltas return
// nil without touching the tables; the per-layer maps and the clones are
// reused storage, valid only until the next Apply.
func (e *Engine) snapshotRemovedSources(delta graph.Delta) []map[graph.NodeID]tensor.Vector {
	hasDel := false
	for _, ch := range delta {
		if !ch.Insert {
			hasDel = true
			break
		}
	}
	if !hasDel {
		return nil
	}
	L := e.model.NumLayers()
	if e.snapMaps == nil {
		e.snapMaps = make([]map[graph.NodeID]tensor.Vector, L)
		for l := range e.snapMaps {
			e.snapMaps[l] = make(map[graph.NodeID]tensor.Vector)
		}
	} else {
		for l := range e.snapMaps {
			clear(e.snapMaps[l])
		}
	}
	out := e.snapMaps
	for _, ch := range delta {
		if ch.Insert {
			continue
		}
		arcs, na := e.arcsOf(ch)
		for _, a := range arcs[:na] {
			src := a[0]
			for l := 0; l < L; l++ {
				if _, ok := out[l][src]; !ok {
					out[l][src] = e.arena.clone(e.state.M[l].Row(int(src)))
				}
			}
		}
	}
	return out
}

// appendChangedEdgeEvents creates the layer-l events for ΔG (Sec. II-B2,
// "Propagate for changed edges"): for a removed arc (u,v) an event
// cancelling the old message m⁻_{l,u} at v; for an inserted arc (s,t) an
// event adding the current message m_{l,s} — which the previous layer's
// processing has already refreshed if s was affected. Events are appended
// to evts (rather than routed into the grouper directly) so Apply can
// hand the complete list to either the sequential or the sharded router.
func (e *Engine) appendChangedEdgeEvents(evts []Event, l int, delta graph.Delta, oldMsg []map[graph.NodeID]tensor.Vector) []Event {
	agg := e.model.Layers[l].Agg()
	dim := e.model.Layers[l].MsgDim()
	if len(e.negCache) > 0 {
		clear(e.negCache)
	}
	for _, ch := range delta {
		arcs, na := e.arcsOf(ch)
		for _, a := range arcs[:na] {
			src, dst := a[0], a[1]
			var ev Event
			switch {
			case agg.Monotonic() && ch.Insert:
				ev = Event{Op: OpAdd, Target: dst, Payload: e.payload(e.state.M[l].Row(int(src)))}
			case agg.Monotonic():
				ev = Event{Op: OpDel, Target: dst, Payload: e.payload(oldMsg[l][src])}
			case ch.Insert:
				ev = Event{Op: OpUpdate, Target: dst, Payload: e.payload(e.state.M[l].Row(int(src)))}
			default:
				neg, ok := e.negCache[src]
				if !ok {
					if e.negCache == nil {
						e.negCache = make(map[graph.NodeID]tensor.Vector)
					}
					neg = e.arena.alloc(dim)
					tensor.Scale(neg, -1, oldMsg[l][src])
					e.negCache[src] = neg
				}
				ev = Event{Op: OpUpdate, Target: dst, Payload: neg}
			}
			e.c.FetchVec(dim)
			evts = append(evts, ev)
		}
	}
	return evts
}

// payload returns p, or a private copy when payload sharing is ablated.
func (e *Engine) payload(p tensor.Vector) tensor.Vector {
	if e.opts.CopyPayloads {
		return p.Clone()
	}
	return p
}

// processLayer consumes the grouped events of layer l: it updates each
// target's α (incrementally where eligible), recomputes the layer output
// for affected targets, and emits the next layer's events. Targets are
// independent after grouping, so they are processed in parallel; results
// are merged in sorted-target order for determinism.
func (e *Engine) processLayer(l int, groups []*group) ([]Event, []UserEvent) {
	n := len(groups)
	// Grow the per-group fan-out tables to n slots, keeping each slot's
	// accumulated capacity across layers and Apply calls.
	for len(e.outN) < n {
		e.outN = append(e.outN, nil)
		e.outU = append(e.outU, nil)
		e.outR = append(e.outR, nil)
	}
	outN, outU, outR := e.outN, e.outU, e.outR
	if cap(e.conds) < n {
		e.conds = make([]Condition, n)
		e.dirt = make([]bool, n)
	}
	conds, dirt := e.conds[:n], e.dirt[:n]
	body := func(lo, hi int) {
		// Per-chunk scratch, recycled across chunks, layers and Applies.
		sc := e.getScratch(l)
		for i := lo; i < hi; i++ {
			outN[i], outU[i], outR[i], conds[i], dirt[i] = e.processTarget(l, groups[i], sc, outN[i][:0], outU[i][:0], outR[i][:0])
		}
		e.scratchPools[l].Put(sc)
	}
	if e.opts.Sequential || e.opts.DisableGrouping {
		body(0, n)
	} else {
		tensor.ParallelForGrain(n, 4*e.model.Layers[l].MsgDim(), body)
	}
	// Merge into the carried-event buffers. The buffers may still hold the
	// events carried INTO this layer, but the grouper consumed those before
	// processLayer ran, so overwriting them in place is safe.
	nextN, nextU := e.evBuf[:0], e.uevBuf[:0]
	for i := 0; i < n; i++ {
		nextN = append(nextN, outN[i]...)
		nextU = append(nextU, outU[i]...)
		if e.partActive {
			// Records merge in sorted-group-target order, so the round's
			// record list comes out sorted by source node.
			e.partRecOut = append(e.partRecOut, outR[i]...)
		}
		e.stats.Add(conds[i])
		e.layerStats[l].Add(conds[i])
		if dirt[i] {
			e.markDirty(groups[i].target)
		}
		if e.opts.Trace != nil {
			e.opts.Trace(l, groups[i].target, conds[i])
		}
	}
	e.evBuf, e.uevBuf = nextN, nextU
	return nextN, nextU
}

// getScratch fetches (or lazily builds) worker scratch for layer l.
func (e *Engine) getScratch(l int) *scratch {
	if v := e.scratchPools[l].Get(); v != nil {
		return v.(*scratch)
	}
	return newScratch(e.model.Layers[l])
}

// scratch is the per-worker-chunk temporary storage of processTarget: the
// staged layer output, the reduced deletion/addition messages and the
// staged α. Contents never survive one target.
type scratch struct {
	newH               tensor.Vector
	mDel, mAdd, staged tensor.Vector
}

func newScratch(layer gnn.Layer) *scratch {
	return &scratch{
		newH:   make(tensor.Vector, layer.OutDim()),
		mDel:   make(tensor.Vector, layer.MsgDim()),
		mAdd:   make(tensor.Vector, layer.MsgDim()),
		staged: make(tensor.Vector, layer.MsgDim()),
	}
}

// processTarget handles all events heading to one node in one layer:
// Algorithm 1 lines 4–21 plus the user-hook application and the next-layer
// propagation of Sec. II-B2. Emitted events are appended to evts/uevts
// (reusable buffers owned by the caller's group slot); in partitioned mode
// the local fan-out is replaced by a message-change record appended to recs
// (partition.go). The final bool reports whether the write landed in the
// final layer with a changed value — i.e. whether the served embedding row
// is now dirty.
func (e *Engine) processTarget(l int, g *group, sc *scratch, evts []Event, uevts []UserEvent, recs []MessageChange) ([]Event, []UserEvent, []MessageChange, Condition, bool) {
	layer := e.model.Layers[l]
	agg := layer.Agg()
	u := g.target
	e.c.VisitNode()
	e.c.AddEvents(len(g.dels) + len(g.adds) + g.nUpd + len(g.user))

	alphaChanged := false
	cond := CondSelfOnly
	if g.hasNative() {
		if agg.Monotonic() {
			if e.opts.DisableGrouping {
				alphaChanged, cond = e.applyMonotonicUngrouped(l, g, sc)
			} else {
				alphaChanged, cond = e.applyMonotonic(l, g, sc)
			}
		} else {
			e.applyAccumulative(l, g)
			alphaChanged = true
			cond = CondAccumulative
		}
	}
	force := false
	if len(g.user) > 0 {
		force = e.hooks.Apply(l, u, g.user)
	}

	affected := alphaChanged || force
	if e.opts.DisablePruning && g.hasNative() {
		affected = true
	}
	if !affected {
		if g.hasNative() {
			cond = CondPruned
		}
		return evts, uevts, recs, cond, false
	}

	// Recompute the layer output h_{l+1,u} = act(𝒯(α, m)) from the
	// (possibly updated) α and the node's own current message.
	hRow := e.state.H[l+1].Row(int(u))
	newH := sc.newH
	layer.Update(newH, e.state.Alpha[l].Row(int(u)), e.state.M[l].Row(int(u)))
	if n := e.model.Norm(l); n != nil {
		n.ApplyRow(newH)
	}
	gnn.CountUpdate(e.c, layer)
	hChanged := !newH.Equal(hRow)
	copy(hRow, newH)
	e.c.StoreVec(len(hRow))
	outChanged := hChanged && l+1 == e.model.NumLayers()

	if !hChanged && !e.opts.DisablePruning {
		// The embedding survived the α change (e.g. clamped by ReLU):
		// the node is resilient at the output level; prune.
		return evts, uevts, recs, cond, false
	}
	if l+1 >= e.model.NumLayers() {
		return evts, uevts, recs, cond, outChanged
	}

	// Refresh the node's next-layer message and fan out events. oldM (and
	// the fan-out diff) escape into event payloads shared by every event
	// from this node — the paper's one-payload-per-source memory model —
	// and live on the Apply-scoped arena.
	next := e.model.Layers[l+1]
	mRow := e.state.M[l+1].Row(int(u))
	oldM := e.arena.clone(mRow)
	next.ComputeMessage(mRow, hRow)
	gnn.CountMessage(e.c, next)
	if oldM.Equal(mRow) && !e.opts.DisablePruning {
		return evts, uevts, recs, cond, false
	}
	if e.partActive {
		// Partitioned mode: the router broadcasts the message change to
		// every shard, which regenerates the fan-out over its own arcs
		// (RoundLayer) — including this one. Local fan-out here would
		// double-apply the change to local out-neighbors.
		recs = append(recs, MessageChange{Node: u, Old: oldM, New: mRow})
	} else {
		evts = e.fanOut(u, next.Agg(), oldM, mRow, evts)
	}
	uevts = append(uevts, e.hooks.Propagate(l, u, oldM, mRow)...)
	return evts, uevts, recs, cond, false
}

// fanOut builds the next-layer events from node u to its current
// out-neighbors, skipping arcs inserted in this batch (their changed-edge
// events already carry the new message — the duplicate-event rule of
// Sec. II-B2).
func (e *Engine) fanOut(u graph.NodeID, nextAgg gnn.Aggregator, oldM, newM tensor.Vector, evts []Event) []Event {
	nbrs := e.g.OutNeighbors(u)
	if len(nbrs) == 0 {
		return evts
	}
	// Reserve the worst-case capacity up front: high-degree fan-out would
	// otherwise pay repeated slice growth inside the per-neighbor loop.
	var diff tensor.Vector
	if nextAgg.Monotonic() {
		evts = slices.Grow(evts, 2*len(nbrs))
	} else {
		evts = slices.Grow(evts, len(nbrs))
		diff = e.arena.alloc(len(newM))
		tensor.Sub(diff, newM, oldM)
	}
	for _, v := range nbrs {
		if _, skip := e.insArcs[[2]graph.NodeID{u, v}]; skip {
			continue
		}
		if nextAgg.Monotonic() {
			evts = append(evts,
				Event{Op: OpDel, Target: v, Payload: e.payload(oldM)},
				Event{Op: OpAdd, Target: v, Payload: e.payload(newM)})
		} else {
			evts = append(evts, Event{Op: OpUpdate, Target: v, Payload: e.payload(diff)})
		}
	}
	return evts
}
