package inkstream

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// TestApplyRecordsTrace checks that an observed Apply fills a per-layer
// trace consistent with the engine's own statistics.
func TestApplyRecordsTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const n, feat = 60, 6
	g := randomGraph(rng, n, 4*n)
	x := tensor.RandMatrix(rng, n, feat, 1)
	model := buildModel(rng, "GCN", feat, gnn.AggMax)

	o := obs.NewObserver()
	o.TraceAll = true
	var got *obs.Trace
	o.OnTrace = func(tr *obs.Trace) { got = tr.Clone() }

	var c metrics.Counters
	e, err := New(model, g, x, &c, Options{Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	delta := graph.RandomDelta(rng, g, 6)
	before := *e.Stats()
	if err := e.Update(delta); err != nil {
		t.Fatal(err)
	}
	if o.Updates() != 1 {
		t.Fatalf("observer recorded %d updates", o.Updates())
	}
	if got == nil {
		t.Fatal("no trace emitted")
	}
	if got.DeltaEdges != len(delta) || got.VertexUpdates != 0 {
		t.Errorf("trace batch: dG=%d vups=%d", got.DeltaEdges, got.VertexUpdates)
	}
	if len(got.Layers) != model.NumLayers() {
		t.Fatalf("trace has %d layers, model %d", len(got.Layers), model.NumLayers())
	}
	// Layer-0 native input is exactly the changed-edge events (undirected:
	// two arcs per change; no carried events on an edge-only batch).
	wantArcs := int64(2 * len(delta))
	if got.Layers[0].EventsIn != wantArcs {
		t.Errorf("layer 0 events in = %d, want %d", got.Layers[0].EventsIn, wantArcs)
	}
	// Per-condition span counts must reconcile with the engine's stats.
	var sum ConditionStats
	for l := range got.Layers {
		for c := Condition(0); c < numConditions; c++ {
			sum.Counts[c] += got.Layers[l].Cond[c]
		}
	}
	after := *e.Stats()
	for c := Condition(0); c < numConditions; c++ {
		if want := after.Counts[c] - before.Counts[c]; sum.Counts[c] != want {
			t.Errorf("condition %s: trace %d, stats %d", c, sum.Counts[c], want)
		}
	}
	if got.NodesVisited() != sum.Total() {
		t.Errorf("NodesVisited %d != cond total %d", got.NodesVisited(), sum.Total())
	}
	if got.Total <= 0 || got.Layers[0].Elapsed <= 0 {
		t.Errorf("missing timings: total=%v L0=%v", got.Total, got.Layers[0].Elapsed)
	}
	if got.Layers[0].BytesFetched <= 0 {
		t.Errorf("layer 0 bytes fetched = %d", got.Layers[0].BytesFetched)
	}
	if s := o.UpdateLatency.Snapshot(); s.Count != 1 || s.Max <= 0 {
		t.Errorf("latency histogram: %+v", s)
	}

	// A vertex-only batch traces through the same path.
	got = nil
	if err := e.UpdateVertices([]VertexUpdate{{Node: 3, X: tensor.RandVector(rng, feat, 1)}}); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.VertexUpdates != 1 || got.DeltaEdges != 0 {
		t.Fatalf("vertex trace: %+v", got)
	}
}

// TestSlowUpdateEmission: only updates at or above the threshold emit.
func TestSlowUpdateEmission(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n, feat = 40, 5
	g := randomGraph(rng, n, 3*n)
	x := tensor.RandMatrix(rng, n, feat, 1)
	model := buildModel(rng, "GCN", feat, gnn.AggMax)

	o := obs.NewObserver()
	o.SlowThreshold = time.Hour // nothing is that slow
	emitted := 0
	o.OnTrace = func(*obs.Trace) { emitted++ }
	e, err := New(model, g, x, nil, Options{Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Update(graph.RandomDelta(rng, g, 4)); err != nil {
		t.Fatal(err)
	}
	if emitted != 0 || o.SlowUpdates() != 0 {
		t.Fatalf("hour threshold: emitted=%d slow=%d", emitted, o.SlowUpdates())
	}
	o.SlowThreshold = time.Nanosecond // everything is slow
	if err := e.Update(graph.RandomDelta(rng, g, 4)); err != nil {
		t.Fatal(err)
	}
	if emitted != 1 || o.SlowUpdates() != 1 {
		t.Fatalf("nanosecond threshold: emitted=%d slow=%d", emitted, o.SlowUpdates())
	}
}

// TestObservedApplyDoesNotAllocate: the trace buffer is engine-owned, so
// steady-state observation must not add allocations to the hot path.
func TestObservedApplyDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted by race instrumentation")
	}
	rng := rand.New(rand.NewSource(43))
	const n, feat = 50, 5
	g := randomGraph(rng, n, 3*n)
	x := tensor.RandMatrix(rng, n, feat, 1)
	model := buildModel(rng, "GCN", feat, gnn.AggMax)
	e, err := New(model, g, x, nil, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the retained scratch, measure the unobserved baseline, then
	// install the observer and measure again: the observability layer must
	// not add a single allocation per batch.
	if err := e.Apply(nil, nil); err != nil {
		t.Fatal(err)
	}
	measure := func() float64 {
		return testing.AllocsPerRun(50, func() {
			if err := e.Apply(nil, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := measure()
	e.SetObserver(obs.NewObserver())
	if err := e.Apply(nil, nil); err != nil { // warm the trace buffer
		t.Fatal(err)
	}
	if observed := measure(); observed > base {
		t.Errorf("observation adds allocations: %.1f/op observed vs %.1f/op baseline", observed, base)
	}
}

// BenchmarkApplyObservability measures the observability tax on the
// steady-state hot path: the same alternating insert/delete workload as
// BenchmarkApply with the observer off vs on (histograms + trace fill, no
// emission). scripts/obs_overhead.sh gates the delta at <5%.
func BenchmarkApplyObservability(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const n, feat, hidden = 2048, 64, 64
	g := randomGraph(rng, n, 4*n)
	x := tensor.RandMatrix(rng, n, feat, 1)
	var ins graph.Delta
	for len(ins) < 16 {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		ins = append(ins, graph.EdgeChange{U: u, V: v, Insert: true})
		if err := g.AddEdge(u, v); err != nil {
			b.Fatal(err)
		}
	}
	for _, ch := range ins {
		if err := g.RemoveEdge(ch.U, ch.V); err != nil {
			b.Fatal(err)
		}
	}
	del := make(graph.Delta, len(ins))
	for i, ch := range ins {
		del[i] = graph.EdgeChange{U: ch.U, V: ch.V, Insert: false}
	}
	for _, cfg := range []struct {
		name string
		o    *obs.Observer
	}{
		{"off", nil},
		{"on", obs.NewObserver()},
	} {
		model := gnn.NewGCN(rand.New(rand.NewSource(6)), feat, hidden, gnn.NewAggregator(gnn.AggMax))
		e, err := New(model, g, x, nil, Options{Observer: cfg.o})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := ins
				if i%2 == 1 {
					d = del
				}
				if err := e.Update(d); err != nil {
					b.Fatal(err)
				}
			}
			if b.N%2 == 1 {
				if err := e.Update(del); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
