package inkstream

import (
	"math/rand"
	"testing"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// mixedModel builds a model whose layers use different aggregation
// functions — the engine creates each layer's events with that layer's
// operation type, so monotonic and accumulative layers can interleave.
func mixedModel(rng *rand.Rand, featLen int, kinds ...gnn.AggKind) *gnn.Model {
	m := &gnn.Model{Name: "mixed"}
	in := featLen
	for i, k := range kinds {
		act := gnn.ActReLU
		if i == len(kinds)-1 {
			act = gnn.ActIdentity
		}
		m.Layers = append(m.Layers, gnn.NewGCNLayer(rng, "mix", in, 8, gnn.NewAggregator(k), act))
		in = 8
	}
	return m
}

// Mixed monotonic/accumulative stacks must stay equivalent to full
// recomputation: events for a max layer are Add/Del, for a mean layer
// Update, within the same propagation wave.
func TestMixedAggregatorEquivalence(t *testing.T) {
	stacks := [][]gnn.AggKind{
		{gnn.AggMax, gnn.AggMean},
		{gnn.AggMean, gnn.AggMax},
		{gnn.AggSum, gnn.AggMin, gnn.AggMax},
		{gnn.AggMin, gnn.AggSum, gnn.AggMean},
	}
	for _, kinds := range stacks {
		kinds := kinds
		name := ""
		for _, k := range kinds {
			name += k.String() + "-"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			g := randomGraph(rng, 50, 150)
			x := tensor.RandMatrix(rng, 50, 6, 1)
			model := mixedModel(rng, 6, kinds...)
			e, err := New(model, g, x, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for batch := 0; batch < 3; batch++ {
				if err := e.Update(graph.RandomDelta(rng, e.Graph(), 10)); err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
			}
			want, err := gnn.Infer(model, e.Graph(), x, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Any accumulative layer in the stack makes downstream values
			// fp-reassociated; use the tolerance path.
			if !e.State().ApproxEqual(want, 2e-3) {
				t.Fatalf("mixed stack diverged (max diff %g)",
					e.State().Output().MaxAbsDiff(want.Output()))
			}
		})
	}
}

// A pure-monotonic mixed stack (max feeding min) stays bit-identical.
func TestMixedMonotonicBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := randomGraph(rng, 40, 120)
	x := tensor.RandMatrix(rng, 40, 5, 1)
	model := mixedModel(rng, 5, gnn.AggMax, gnn.AggMin)
	e, err := New(model, g, x, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 3; batch++ {
		if err := e.Update(graph.RandomDelta(rng, e.Graph(), 8)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := gnn.Infer(model, e.Graph(), x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !e.State().Equal(want) {
		t.Fatal("max→min stack not bit-identical")
	}
}

// Directed graphs: aggregation pulls from in-neighbors only, propagation
// follows out-arcs only.
func TestDirectedGraphEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	g := graph.New(40)
	for g.NumEdges() < 120 {
		u := graph.NodeID(rng.Intn(40))
		v := graph.NodeID(rng.Intn(40))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	x := tensor.RandMatrix(rng, 40, 5, 1)
	model := buildModel(rng, "GCN", 5, gnn.AggMax)
	e, err := New(model, g, x, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 3; batch++ {
		if err := e.Update(graph.RandomDelta(rng, e.Graph(), 8)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := gnn.Infer(model, e.Graph(), x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !e.State().Equal(want) {
		t.Fatal("directed-graph update diverged")
	}
}
