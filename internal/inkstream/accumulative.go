package inkstream

import "repro/internal/gnn"

// applyAccumulative implements Sec. II-C2: with a fully reversible
// aggregation, the grouped (already summed) Update payloads evolve the old
// aggregated neighborhood directly.
//
//	sum:  α = α⁻ + Σ msg
//	mean: α = (d⁻·α⁻ + Σ msg) / d
//
// where Σ msg combines the per-neighbor deltas Δm = m − m⁻, the negated
// messages of removed edges and the messages of inserted edges, and d⁻/d
// are the in-degrees before/after ΔG.
func (e *Engine) applyAccumulative(l int, g *group) {
	agg := e.model.Layers[l].Agg()
	u := g.target
	alpha := e.state.Alpha[l].Row(int(u))
	dim := len(alpha)
	e.c.FetchVec(dim)
	e.c.AddFLOPs(int64(dim * (g.nUpd + 1)))

	switch agg.Kind() {
	case gnn.AggSum:
		for i := range alpha {
			alpha[i] += g.sum[i]
		}
	case gnn.AggMean:
		d := e.g.InDegree(u)
		dOld := d - e.degDelta[u]
		if d == 0 {
			for i := range alpha {
				alpha[i] = 0
			}
		} else {
			inv := 1 / float32(d)
			scale := float32(dOld)
			for i := range alpha {
				alpha[i] = (scale*alpha[i] + g.sum[i]) * inv
			}
		}
	default:
		panic("inkstream: accumulative path invoked for " + agg.Kind().String())
	}
	e.c.StoreVec(dim)
}
