package inkstream

import (
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// applyMonotonic implements Sec. II-C1: the grouped events heading to one
// target are reduced, the effect on the old aggregated neighborhood is
// classified into no reset / covered reset / exposed reset, and the target
// is updated incrementally in the first two conditions or recomputed from
// its whole neighborhood in the third. Returns whether α actually changed
// and the classification.
func (e *Engine) applyMonotonic(l int, g *group, sc *scratch) (changed bool, cond Condition) {
	layer := e.model.Layers[l]
	agg := layer.Agg()
	alpha := e.state.Alpha[l].Row(int(g.target))
	dim := len(alpha)
	e.c.FetchVec(dim)
	e.c.AddFLOPs(int64(dim * (len(g.dels) + len(g.adds))))

	// α⁻ of a previously isolated node is the *defined* zero vector, not a
	// monotonic aggregation result; merging into it would be unsound, so
	// the first edges of such a node force a (trivially cheap) recompute.
	if e.g.InDegree(g.target)-e.degDelta[g.target] == 0 {
		before := alpha.Clone()
		e.recomputeAlpha(l, g.target, alpha)
		return !alpha.Equal(before), CondExposedReset
	}

	mDel := reduceInto(sc.mDel, agg.Merge, g.dels)
	mAdd := reduceInto(sc.mAdd, agg.Merge, g.adds)

	// Reset channels: indices where a deleted message attains the old
	// extremum. Because the deleted messages are a subset of the
	// neighborhood α⁻ aggregates, only the reduced deletion can attain it.
	hasReset := false
	if mDel != nil {
		for i := range alpha {
			if alpha[i] == mDel[i] {
				hasReset = true
				break
			}
		}
	}

	switch {
	case !hasReset:
		cond = CondNoReset
	case mAdd != nil && covers(agg, alpha, mAdd, mDel):
		cond = CondCoveredReset
	default:
		// Exposed reset: irrecoverable channels; fetch the whole current
		// neighborhood and recompute (Algorithm 1 line 11).
		e.recomputeAlpha(l, g.target, alpha)
		return true, CondExposedReset
	}

	if mAdd == nil {
		// Deletion-only with no reset: α is untouched.
		return false, cond
	}
	newAlpha := sc.staged
	copy(newAlpha, alpha)
	agg.Merge(newAlpha, mAdd)
	e.c.AddFLOPs(int64(dim))
	changed = !newAlpha.Equal(alpha)
	if changed {
		copy(alpha, newAlpha)
		e.c.StoreVec(dim)
	}
	return changed, cond
}

// reduceInto reduces a payload list into the provided scratch vector;
// returns nil for an empty list.
func reduceInto(dst tensor.Vector, merge func(dst, m tensor.Vector), payloads []tensor.Vector) tensor.Vector {
	if len(payloads) == 0 {
		return nil
	}
	copy(dst, payloads[0])
	for _, p := range payloads[1:] {
		merge(dst, p)
	}
	return dst
}

// covers reports whether the reduced added message dominates the reduced
// deleted message on every reset channel (α⁻[i] == m⁻_A[i]) — the
// covered-reset condition: ∀ i ∈ D, 𝒜(m⁻_A[i], m_A[i]) = m_A[i]. By the
// transitivity of the monotonic function, dominating the deleted extremum
// implies dominating every surviving neighbor on those channels.
func covers(agg gnn.Aggregator, alpha, mAdd, mDel tensor.Vector) bool {
	max := agg.Kind() == gnn.AggMax
	for i := range alpha {
		if alpha[i] != mDel[i] {
			continue
		}
		if max {
			if mAdd[i] < mDel[i] {
				return false
			}
		} else if mAdd[i] > mDel[i] {
			return false
		}
	}
	return true
}

// recomputeAlpha rebuilds α_{l,u} from the current neighborhood and cached
// messages: α = 𝒜(m_{l,v} : v ∈ N(u)). No extra computation is needed for
// the messages themselves — rows of m_l for neighbors affected at layer
// l−1 were refreshed when that layer was processed.
func (e *Engine) recomputeAlpha(l int, u graph.NodeID, alpha tensor.Vector) {
	layer := e.model.Layers[l]
	agg := layer.Agg()
	nbrs := e.g.InNeighbors(u)
	agg.Identity(alpha)
	m := e.state.M[l]
	for _, v := range nbrs {
		agg.Merge(alpha, m.Row(int(v)))
	}
	agg.Finalize(alpha, len(nbrs))
	dim := len(alpha)
	e.c.FetchVec(dim * len(nbrs))
	e.c.AddFLOPs(int64(dim * len(nbrs)))
	e.c.StoreVec(dim)
}

// applyMonotonicUngrouped is the grouping-ablation path (Fig. 4d): events
// are applied one at a time in arrival order. A deletion that resets any
// channel cannot see the not-yet-applied additions, so it conservatively
// recomputes the whole neighborhood — correct (monotonic aggregation over
// the post-ΔG neighborhood is idempotent under re-addition) but costly.
func (e *Engine) applyMonotonicUngrouped(l int, g *group, sc *scratch) (changed bool, cond Condition) {
	layer := e.model.Layers[l]
	agg := layer.Agg()
	alpha := e.state.Alpha[l].Row(int(g.target))
	dim := len(alpha)
	before := sc.staged
	copy(before, alpha)
	recomputed := false
	if e.g.InDegree(g.target)-e.degDelta[g.target] == 0 {
		// See applyMonotonic: a previously empty neighborhood cannot be
		// evolved incrementally.
		e.recomputeAlpha(l, g.target, alpha)
		return !alpha.Equal(before), CondExposedReset
	}
	for _, d := range g.dels {
		e.c.FetchVec(dim)
		needReset := false
		for i := range alpha {
			if alpha[i] == d[i] {
				needReset = true
				break
			}
		}
		if needReset {
			e.recomputeAlpha(l, g.target, alpha)
			recomputed = true
		}
	}
	for _, a := range g.adds {
		e.c.FetchVec(dim)
		agg.Merge(alpha, a)
		e.c.AddFLOPs(int64(dim))
	}
	changed = !alpha.Equal(before)
	if changed {
		e.c.StoreVec(dim)
	}
	if recomputed {
		return changed, CondExposedReset
	}
	return changed, CondNoReset
}
