package inkstream

import (
	"sync/atomic"

	"repro/internal/tensor"
)

// vecArena is a bump allocator for Apply-scoped payload vectors (old-message
// clones, fan-out diffs, negated snapshots). Payloads created while
// processing layer l are consumed while processing layer l+1 and are never
// retained past the Apply call (groups drop their references when recycled,
// and hooks must not retain payloads), so the whole arena is rewound at the
// start of the next Apply instead of freeing vector by vector.
//
// alloc is safe for concurrent use (processTarget runs on the worker pool):
// the offset is claimed atomically and the returned regions are disjoint.
// Returned vectors have unspecified contents — every caller fully
// overwrites them. When the backing array is exhausted mid-Apply the
// allocator falls back to the Go heap and the next reset grows the backing
// to the observed high-water mark.
type vecArena struct {
	buf []float32
	off atomic.Int64
}

// alloc returns an n-element vector with unspecified contents.
func (a *vecArena) alloc(n int) tensor.Vector {
	if n == 0 {
		return nil
	}
	end := a.off.Add(int64(n))
	if end <= int64(len(a.buf)) {
		return tensor.Vector(a.buf[end-int64(n) : end : end])
	}
	return make(tensor.Vector, n)
}

// clone returns an arena-backed copy of v.
func (a *vecArena) clone(v tensor.Vector) tensor.Vector {
	c := a.alloc(len(v))
	copy(c, v)
	return c
}

// reset rewinds the arena, growing the backing array to the high-water mark
// of the previous cycle so steady-state Applies stop hitting the heap
// fallback. Must not race with alloc.
func (a *vecArena) reset() {
	if used := a.off.Load(); used > int64(len(a.buf)) {
		a.buf = make([]float32, used+used/4)
	}
	a.off.Store(0)
}
