package inkstream

import (
	"fmt"

	"repro/internal/tensor"
)

// RowStore is the pluggable backing store for published snapshot rows. In
// the default (resident) configuration snapshots clone rows into plain
// slices; with a RowStore attached, PublishSnapshot instead writes the
// changed rows into the store and publishes a sealed RowView, letting the
// store page cold rows out of memory (and optionally serve a quantized
// read-path representation) while the engine keeps full fp32 state.
//
// The engine calls WriteRow and Seal only from the writer goroutine, in the
// same single-writer discipline as Apply. Row values passed to WriteRow are
// engine-owned scratch: the store must copy (encode) them before returning.
type RowStore interface {
	// WriteRow stages node id's embedding for the next sealed view. Rows
	// not rewritten since the previous Seal keep their previous contents
	// (copy-on-write at whatever granularity the store implements).
	WriteRow(id int, row tensor.Vector)
	// Seal publishes everything written so far as an immutable view stamped
	// with the snapshot epoch. The returned view serves reads from any
	// goroutine until Release.
	Seal(epoch uint64) RowView
}

// RowView is one sealed, epoch-stamped generation of the row store.
//
// Semantics differ from resident snapshots in one documented way: after the
// view is superseded (a newer Seal) and released, the store may evict or
// overwrite the frames it referenced. Reads through a released view remain
// memory-safe and never observe torn rows, but may observe the *current*
// generation's value for a row instead of this view's (monotone staleness,
// never corruption). The server's default resident mode keeps the strict
// immutable-forever contract.
type RowView interface {
	// Row returns node id's embedding. The returned vector is freshly
	// decoded (or an immutable resident reference); callers must not write
	// to it. An error means the row could not be faulted in (e.g. the
	// backing file vanished); callers should treat it as row-unavailable.
	Row(id int) (tensor.Vector, error)
	// NumRows returns the number of rows in this view.
	NumRows() int
	// Release marks the view superseded so the store can reclaim the frames
	// it pinned. Called by the engine when a newer snapshot replaces it.
	Release()
}

// SetRowStore attaches a backing store for published snapshots. It must be
// called before the first PublishSnapshot (i.e. before serving starts);
// attaching a store to an engine that already published is an error because
// existing readers hold resident snapshots with the strict contract.
func (e *Engine) SetRowStore(st RowStore) error {
	if e.snap.tracking || e.snap.cur.Load() != nil {
		return fmt.Errorf("inkstream: SetRowStore after PublishSnapshot")
	}
	e.snap.store = st
	return nil
}
