package inkstream

import (
	"math/rand"
	"testing"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// TestScratchReuseAcrossApplies drives one engine through many mixed
// batches — inserts, deletes, vertex updates, empty deltas — and verifies
// bit-exactness after each. This exercises the retained per-Apply scratch
// (cleared maps, payload arena rewind, event-buffer reuse): any stale state
// leaking between batches shows up as a Verify failure.
func TestScratchReuseAcrossApplies(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const n, feat = 40, 5
	g := randomGraph(rng, n, 3*n)
	x := tensor.RandMatrix(rng, n, feat, 1)
	model := buildModel(rng, "GCN", feat, gnn.AggMax)
	e, err := New(model, g, x, &metrics.Counters{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 12; round++ {
		var delta graph.Delta
		// A few random toggles: delete existing edges, insert new ones.
		for k := 0; k < 4; k++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			delta = append(delta, graph.EdgeChange{U: u, V: v, Insert: !g.HasEdge(u, v)})
		}
		var vups []VertexUpdate
		if round%3 == 1 {
			vups = []VertexUpdate{{Node: graph.NodeID(rng.Intn(n)), X: tensor.RandVector(rng, feat, 1)}}
		}
		if round%4 == 3 {
			delta = nil // vertex-only (or fully empty) batch
		}
		if err := e.Apply(delta, vups); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := e.Verify(0); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestVertexOnlyAfterEdgeBatches checks that a vertex-only Apply after edge
// batches does not observe stale insArcs/degDelta entries (fan-out must not
// skip arcs inserted in a *previous* batch).
func TestVertexOnlyAfterEdgeBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	const n, feat = 30, 4
	g := randomGraph(rng, n, 2*n)
	x := tensor.RandMatrix(rng, n, feat, 1)
	model := buildModel(rng, "SAGE", feat, gnn.AggMax)
	e, err := New(model, g, x, &metrics.Counters{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Edge batch inserting arcs out of node 0.
	var delta graph.Delta
	for v := graph.NodeID(1); len(delta) < 3; v++ {
		if !g.HasEdge(0, v) {
			delta = append(delta, graph.EdgeChange{U: 0, V: v, Insert: true})
		}
	}
	if err := e.Update(delta); err != nil {
		t.Fatal(err)
	}
	// Vertex update on node 0: its fan-out must traverse the arcs inserted
	// above (they are no longer "this batch's" insertions).
	if err := e.UpdateVertices([]VertexUpdate{{Node: 0, X: tensor.RandVector(rng, feat, 1)}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(0); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkApply measures the steady-state incremental hot path: one
// engine, alternating a batch of edge insertions with the inverse batch of
// deletions (plus a vertex-update variant), so the graph and cached state
// return to the same footprint every two iterations. Allocation counts are
// the headline number: the engine-owned scratch should keep the steady
// state near zero allocs per event.
func BenchmarkApply(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const n, feat, hidden = 2048, 64, 64
	g := randomGraph(rng, n, 4*n)
	x := tensor.RandMatrix(rng, n, feat, 1)

	for _, cfg := range []struct {
		name string
		kind gnn.AggKind
	}{
		{"gcn-max", gnn.AggMax},
		{"gcn-mean", gnn.AggMean},
	} {
		model := gnn.NewGCN(rand.New(rand.NewSource(6)), feat, hidden, gnn.NewAggregator(cfg.kind))
		e, err := New(model, g, x, nil, Options{})
		if err != nil {
			b.Fatal(err)
		}
		// A batch of 16 edges not currently in the graph.
		var ins graph.Delta
		for len(ins) < 16 {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			if u == v || g.HasEdge(u, v) {
				continue
			}
			ins = append(ins, graph.EdgeChange{U: u, V: v, Insert: true})
			if err := g.AddEdge(u, v); err != nil {
				b.Fatal(err)
			}
		}
		// Put the graph back; the benchmark inserts/removes the batch.
		for _, ch := range ins {
			if err := g.RemoveEdge(ch.U, ch.V); err != nil {
				b.Fatal(err)
			}
		}
		del := make(graph.Delta, len(ins))
		for i, ch := range ins {
			del[i] = graph.EdgeChange{U: ch.U, V: ch.V, Insert: false}
		}
		b.Run("edges/"+cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := ins
				if i%2 == 1 {
					d = del
				}
				if err := e.Update(d); err != nil {
					b.Fatal(err)
				}
			}
			// Leave the graph as it started for the next sub-benchmark.
			if b.N%2 == 1 {
				if err := e.Update(del); err != nil {
					b.Fatal(err)
				}
			}
		})
		vupA := []VertexUpdate{{Node: 7, X: tensor.RandVector(rng, feat, 1)}}
		vupB := []VertexUpdate{{Node: 7, X: x.Row(7).Clone()}}
		b.Run("vertex/"+cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v := vupA
				if i%2 == 1 {
					v = vupB
				}
				if err := e.UpdateVertices(v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
