package inkstream

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// driveRoundSplit is driveRound over the boundary/interior split protocol:
// every layer runs as RoundLayerBoundary followed by RoundLayerInterior,
// with the two record slices concatenated and node-sorted like the router's
// overlapped merge. The boundary slice must survive the interior call
// untouched (the overlap contract), so it is only copied out afterwards.
func driveRoundSplit(t *testing.T, e *Engine, delta graph.Delta, vups []VertexUpdate) {
	t.Helper()
	recs, err := e.BeginRound(delta, vups)
	if err != nil {
		t.Fatalf("BeginRound: %v", err)
	}
	merged := append([]MessageChange(nil), recs...)
	sort.Slice(merged, func(i, j int) bool { return merged[i].Node < merged[j].Node })
	for l := 0; l < e.model.NumLayers(); l++ {
		bnd, err := e.RoundLayerBoundary(l, merged)
		if err != nil {
			t.Fatalf("RoundLayerBoundary %d: %v", l, err)
		}
		bndCopy := append([]MessageChange(nil), bnd...)
		intr, err := e.RoundLayerInterior()
		if err != nil {
			t.Fatalf("RoundLayerInterior %d: %v", l, err)
		}
		// The boundary slice must still hold the same records after the
		// interior phase ran — the router reads it concurrently.
		for i := range bndCopy {
			if bnd[i].Node != bndCopy[i].Node || !bnd[i].New.Equal(bndCopy[i].New) || !bnd[i].Old.Equal(bndCopy[i].Old) {
				t.Fatalf("layer %d: boundary record %d mutated by interior phase", l, i)
			}
		}
		merged = append(append(merged[:0], bnd...), intr...)
		sort.Slice(merged, func(i, j int) bool { return merged[i].Node < merged[j].Node })
	}
	if err := e.FinishRound(); err != nil {
		t.Fatalf("FinishRound: %v", err)
	}
	e.PublishSnapshot()
}

// TestSplitRoundMatchesApply drives an all-local partitioned engine through
// the split-layer round protocol under an adversarial boundary mask (every
// third vertex) and demands bitwise-identical state against a plain engine:
// splitting a layer into boundary and interior phases moves the schedule,
// never the values (DESIGN.md §13). Runs every model × aggregator, like
// TestRoundProtocolMatchesApply.
func TestSplitRoundMatchesApply(t *testing.T) {
	for _, name := range []string{"GCN", "SAGE", "GIN"} {
		for _, kind := range []gnn.AggKind{gnn.AggMax, gnn.AggMean, gnn.AggSum} {
			t.Run(fmt.Sprintf("%s/%s", name, kind), func(t *testing.T) {
				rng := rand.New(rand.NewSource(43))
				const n, featLen = 60, 6
				g := randomGraph(rng, n, 150)
				x := tensor.RandMatrix(rng, n, featLen, 1)
				model := buildModel(rng, name, featLen, kind)

				plain, err := New(model, g.Clone(), x.Clone(), nil, Options{})
				if err != nil {
					t.Fatal(err)
				}
				part, err := graph.NewHashPartition(n, 1)
				if err != nil {
					t.Fatal(err)
				}
				ink, err := NewFromState(model, part.ShardGraph(g, 0), plain.State().Clone(), nil, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if err := ink.SetPartitionLocal(part.LocalMask(0)); err != nil {
					t.Fatal(err)
				}
				// An arbitrary mask: correctness must not depend on the mask
				// meaning anything (the router's real mask is an optimisation
				// hint, not a correctness input).
				boundary := make([]bool, n)
				for v := range boundary {
					boundary[v] = v%3 == 0
				}
				if err := ink.SetPartitionBoundary(boundary); err != nil {
					t.Fatal(err)
				}

				for step := 0; step < 8; step++ {
					delta := graph.RandomDelta(rng, plain.Graph(), 4)
					var vups []VertexUpdate
					if step%2 == 1 {
						nodes := rng.Perm(n)[:3]
						sort.Ints(nodes)
						for _, v := range nodes {
							vups = append(vups, VertexUpdate{
								Node: graph.NodeID(v),
								X:    tensor.RandVector(rng, featLen, 1),
							})
						}
					}
					if err := plain.Apply(delta, vups); err != nil {
						t.Fatalf("step %d: plain Apply: %v", step, err)
					}
					driveRoundSplit(t, ink, expandDelta(delta), vups)
					if !plain.State().Equal(ink.State()) {
						t.Fatalf("step %d: split round protocol diverged from Apply", step)
					}
				}
			})
		}
	}
}

// TestSplitRoundNilMask pins the degenerate masks: with no boundary mask the
// whole layer runs in the boundary phase (the split is a no-op), and with an
// all-true mask the interior phase is empty — both stay bit-exact.
func TestSplitRoundNilMask(t *testing.T) {
	for _, mask := range []string{"nil", "all"} {
		t.Run(mask, func(t *testing.T) {
			rng := rand.New(rand.NewSource(29))
			const n, featLen = 40, 5
			g := randomGraph(rng, n, 100)
			x := tensor.RandMatrix(rng, n, featLen, 1)
			model := buildModel(rng, "SAGE", featLen, gnn.AggMax)

			plain, err := New(model, g.Clone(), x.Clone(), nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			part, err := graph.NewHashPartition(n, 1)
			if err != nil {
				t.Fatal(err)
			}
			ink, err := NewFromState(model, part.ShardGraph(g, 0), plain.State().Clone(), nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := ink.SetPartitionLocal(part.LocalMask(0)); err != nil {
				t.Fatal(err)
			}
			if mask == "all" {
				all := make([]bool, n)
				for v := range all {
					all[v] = true
				}
				if err := ink.SetPartitionBoundary(all); err != nil {
					t.Fatal(err)
				}
			}
			for step := 0; step < 4; step++ {
				delta := graph.RandomDelta(rng, plain.Graph(), 4)
				if err := plain.Apply(delta, nil); err != nil {
					t.Fatal(err)
				}
				driveRoundSplit(t, ink, expandDelta(delta), nil)
				if !plain.State().Equal(ink.State()) {
					t.Fatalf("step %d: diverged (mask=%s)", step, mask)
				}
			}
		})
	}
}

// TestSplitRoundSequencing pins the split-phase state machine: interior
// without boundary, boundary twice in a row, FinishRound mid-split and
// mid-round boundary-mask changes are all rejected.
func TestSplitRoundSequencing(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n, featLen = 20, 4
	g := randomGraph(rng, n, 40)
	x := tensor.RandMatrix(rng, n, featLen, 1)
	model := buildModel(rng, "GCN", featLen, gnn.AggMax)

	part, err := graph.NewHashPartition(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	ink, err := New(model, part.ShardGraph(g, 0), x.Clone(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ink.SetPartitionLocal(part.LocalMask(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := ink.RoundLayerInterior(); err == nil {
		t.Fatal("RoundLayerInterior accepted without an open round")
	}
	if _, err := ink.BeginRound(nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ink.RoundLayerInterior(); err == nil {
		t.Fatal("RoundLayerInterior accepted without a boundary phase")
	}
	if _, err := ink.RoundLayerBoundary(0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ink.RoundLayerBoundary(1, nil); err == nil {
		t.Fatal("RoundLayerBoundary accepted with the previous interior pending")
	}
	if _, err := ink.RoundLayer(1, nil); err == nil {
		t.Fatal("RoundLayer accepted with an interior pending")
	}
	if err := ink.FinishRound(); err == nil {
		t.Fatal("FinishRound accepted mid-split")
	}
	if err := ink.SetPartitionBoundary(nil); err == nil {
		t.Fatal("SetPartitionBoundary accepted mid-round")
	}
	if _, err := ink.RoundLayerInterior(); err != nil {
		t.Fatal(err)
	}
	for l := 1; l < model.NumLayers(); l++ {
		if _, err := ink.RoundLayer(l, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := ink.FinishRound(); err != nil {
		t.Fatal(err)
	}
}

// TestGhostRowHydration pins the hydration API: MessageRow reads the live
// message row, SetGhostMessageRow adopts it on another shard's engine for
// remote vertices only, and both reject out-of-range layers.
func TestGhostRowHydration(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	const n, featLen = 20, 4
	g := randomGraph(rng, n, 40)
	x := tensor.RandMatrix(rng, n, featLen, 1)
	model := buildModel(rng, "GCN", featLen, gnn.AggMax)

	part, err := graph.NewHashPartition(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(s int) *Engine {
		e, err := New(model, part.ShardGraph(g, s), x.Clone(), nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SetPartitionLocal(part.LocalMask(s)); err != nil {
			t.Fatal(err)
		}
		return e
	}
	e0, e1 := mk(0), mk(1)

	var local0 graph.NodeID = -1
	for v := 0; v < n; v++ {
		if part.Owner(graph.NodeID(v)) == 0 {
			local0 = graph.NodeID(v)
			break
		}
	}
	if local0 < 0 {
		t.Fatal("shard 0 empty")
	}
	row, err := e0.MessageRow(0, local0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.SetGhostMessageRow(0, local0, row); err != nil {
		t.Fatalf("hydrating remote row: %v", err)
	}
	got, err := e1.MessageRow(0, local0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(row) {
		t.Fatal("hydrated ghost row does not match the owner's row")
	}
	if err := e0.SetGhostMessageRow(0, local0, row); err == nil {
		t.Fatal("SetGhostMessageRow accepted a local (authoritative) row")
	}
	if _, err := e0.MessageRow(model.NumLayers(), local0); err == nil {
		t.Fatal("MessageRow accepted an out-of-range layer")
	}
	if err := e1.SetGhostMessageRow(-1, local0, row); err == nil {
		t.Fatal("SetGhostMessageRow accepted an out-of-range layer")
	}
}
