//go:build !race

package inkstream

const raceEnabled = false
