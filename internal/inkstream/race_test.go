//go:build race

package inkstream

// raceEnabled gates allocation-count assertions: race instrumentation
// inhibits inlining and makes escape analysis more conservative, so
// AllocsPerRun measures the instrumentation, not the code under test.
const raceEnabled = true
