// Package inkstream implements the paper's contribution: event-based
// incremental GNN inference on dynamic graphs.
//
// The engine consumes a checkpointed full-inference state (gnn.State) and a
// batch of edge/vertex modifications (ΔG), and updates the cached
// embeddings following the design principle "Propagate only when necessary.
// Fetch only the necessary":
//
//   - Inter-layer (Sec. II-B): effects travel as events along graph edges,
//     one layer per step. Nodes found resilient — receiving events but
//     ending with an unchanged embedding — prune their propagation subtree.
//   - Intra-layer (Sec. II-C): a target node's aggregated neighborhood α is
//     evolved incrementally from the previous timestamp whenever the
//     grouped events permit (always for accumulative aggregators; in the
//     no-reset and covered-reset conditions for monotonic ones), falling
//     back to full neighborhood recomputation only on exposed resets.
//
// Monotonic aggregators (max/min) yield bit-identical results to full
// recomputation; accumulative ones (mean/sum) are equivalent up to
// floating-point reassociation.
package inkstream

import (
	"repro/internal/graph"
	"repro/internal/tensor"
)

// Op is the operation an event applies to its target's aggregated
// neighborhood (Sec. II-B): Add/Del for monotonic aggregation functions,
// Update for accumulative ones. User-defined events are a separate type
// (UserEvent) with their own hooks.
type Op uint8

const (
	// OpAdd merges the payload into the target's α (monotonic layers).
	OpAdd Op = iota
	// OpDel cancels the payload's old contribution from the target's α
	// (monotonic layers); channels where the payload attains α must be
	// reset.
	OpDel
	// OpUpdate adds the (signed) payload to the target's neighborhood sum
	// (accumulative layers).
	OpUpdate
)

func (o Op) String() string {
	switch o {
	case OpAdd:
		return "Add"
	case OpDel:
		return "Del"
	case OpUpdate:
		return "Update"
	}
	return "Op(?)"
}

// Event is the native event of the computing model: an operation, a target
// node, and an embedding payload. Payloads are slice headers aliasing a
// vector shared by every event fanned out from the same source — the
// paper's separation of lightweight metadata from heavy embeddings. Events
// must treat payloads as immutable.
type Event struct {
	Op      Op
	Target  graph.NodeID
	Payload tensor.Vector
}

// UserEvent is a user-defined event (Sec. II-D) carrying an optional
// payload and an application-defined tag. The engine routes user events
// through the installed UserHooks; their semantics are entirely
// hook-defined.
type UserEvent struct {
	Target  graph.NodeID
	Payload tensor.Vector
	Tag     int
}

// UserHooks is the extension interface of Sec. II-D. The engine invokes
// Propagate when a node's next-layer message changes, Reduce when grouping
// a target's user events, and Apply when processing a target that received
// user events. Implementations must be safe for concurrent Apply calls on
// distinct targets and must only mutate per-target state.
type UserHooks interface {
	// Propagate is called at the end of processing layer `layer` for each
	// affected node u whose message for layer+1 changed from oldM to newM
	// (layer == -1 for vertex-feature updates feeding layer 0). The
	// returned events are delivered when layer+1 is processed.
	Propagate(layer int, u graph.NodeID, oldM, newM tensor.Vector) []UserEvent
	// Reduce groups/reduces the user events heading to one target
	// (user_grouping in the paper). The result replaces evts.
	Reduce(target graph.NodeID, evts []UserEvent) []UserEvent
	// Apply processes the reduced user events for target at `layer` and
	// reports whether the target's layer output must be recomputed even if
	// its aggregated neighborhood did not change.
	Apply(layer int, target graph.NodeID, evts []UserEvent) bool
}

// NopHooks ignores all user-event machinery; models whose update depends
// only on the aggregated neighborhood (e.g. GCN) need nothing more.
type NopHooks struct{}

func (NopHooks) Propagate(int, graph.NodeID, tensor.Vector, tensor.Vector) []UserEvent {
	return nil
}
func (NopHooks) Reduce(_ graph.NodeID, evts []UserEvent) []UserEvent { return evts }
func (NopHooks) Apply(int, graph.NodeID, []UserEvent) bool           { return false }

// SelfHooks is the built-in configuration for self-dependent models
// (GraphSAGE's W2·h term, GIN's (1+ε)·h term): when a node's message
// changes and the next layer consults the node's own message, a
// self-directed event forces that node's update in the next layer. This is
// the "less than 10 lines of additional code" the paper quotes for
// configuring GraphSAGE.
type SelfHooks struct {
	// SelfDependent reports whether layer l's update consults the node's
	// own message.
	SelfDependent func(l int) bool
}

func (h SelfHooks) Propagate(layer int, u graph.NodeID, _, _ tensor.Vector) []UserEvent {
	if h.SelfDependent(layer + 1) {
		return []UserEvent{{Target: u}}
	}
	return nil
}

func (h SelfHooks) Reduce(_ graph.NodeID, evts []UserEvent) []UserEvent {
	if len(evts) > 1 {
		evts = evts[:1] // duplicates are idempotent
	}
	return evts
}

func (h SelfHooks) Apply(int, graph.NodeID, []UserEvent) bool { return true }
