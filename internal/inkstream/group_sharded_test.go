package inkstream

import (
	"math/rand"
	"testing"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// TestPartitionStable checks the stable shard partition directly: every
// index lands in its target's shard region, regions are contiguous and in
// shard order, and within a region the original order is preserved — the
// property that keeps sharded grouping bit-exact with sequential grouping.
func TestPartitionStable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nodes, S = 1000, 8
	gr := newGrouper(nodes)
	gr.beginSharded(4, S)
	targets := make([]graph.NodeID, 10_000)
	for i := range targets {
		targets[i] = graph.NodeID(rng.Intn(nodes))
	}
	perm, bounds := gr.partition(len(targets),
		func(i int) graph.NodeID { return targets[i] }, nil, nil)
	if got := int(bounds[S]); got != len(targets) {
		t.Fatalf("bounds[%d] = %d, want %d", S, got, len(targets))
	}
	seen := make([]bool, len(targets))
	for s := 0; s < S; s++ {
		prev := int32(-1)
		for _, i := range perm[bounds[s]:bounds[s+1]] {
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
			if got := int(uint32(targets[i]) >> gr.shift); got != s {
				t.Fatalf("index %d (target %d) in shard %d, owner is %d", i, targets[i], s, got)
			}
			if i <= prev {
				t.Fatalf("shard %d not stable: index %d after %d", s, i, prev)
			}
			prev = i
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d missing from partition", i)
		}
	}
}

// TestShardedGroupingEquivalence: the sharded event router must be
// bit-exact with the sequential one for every aggregator kind — not just
// within tolerance — because it reproduces the identical group order,
// group contents and within-group event order (DESIGN.md §9).
func TestShardedGroupingEquivalence(t *testing.T) {
	for _, kind := range allKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			build := func(opts Options) (*Engine, *tensor.Matrix) {
				rng := rand.New(rand.NewSource(99))
				g := randomGraph(rng, 400, 1600)
				x := tensor.RandMatrix(rng, 400, 6, 1)
				model := gnn.NewGIN(rng, 6, 8, 3, gnn.NewAggregator(kind))
				e, err := New(model, g, x, nil, opts)
				if err != nil {
					t.Fatal(err)
				}
				return e, x
			}
			// ShardMinEvents 1 forces the sharded router on every layer of
			// the first engine; the second always routes sequentially.
			sharded, _ := build(Options{ShardMinEvents: 1})
			seq, _ := build(Options{DisableShardedGrouping: true})
			drng := rand.New(rand.NewSource(5))
			for batch := 0; batch < 4; batch++ {
				delta := graph.RandomDelta(drng, sharded.Graph(), 80)
				if err := sharded.Update(delta); err != nil {
					t.Fatalf("sharded batch %d: %v", batch, err)
				}
				if err := seq.Update(delta); err != nil {
					t.Fatalf("sequential batch %d: %v", batch, err)
				}
				if !sharded.State().Equal(seq.State()) {
					t.Fatalf("batch %d: sharded state not bit-identical (output max diff %g)",
						batch, sharded.Output().MaxAbsDiff(seq.Output()))
				}
			}
		})
	}
}

// TestShardedGrouperStress drives the sharded router hard enough for the
// race detector to see the pool workers writing the shared stamp/idx
// tables (disjoint per shard by construction), then verifies the state
// against a from-scratch recomputation. Runs in every `go test` run but is
// load-bearing under -race (scripts/check.sh).
func TestShardedGrouperStress(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomGraph(rng, 600, 3000)
	x := tensor.RandMatrix(rng, 600, 8, 1)
	model := gnn.NewGIN(rng, 8, 16, 3, gnn.NewAggregator(gnn.AggMax))
	e, err := New(model, g, x, nil, Options{ShardMinEvents: 1})
	if err != nil {
		t.Fatal(err)
	}
	batches := 12
	if testing.Short() {
		batches = 4
	}
	for batch := 0; batch < batches; batch++ {
		delta := graph.RandomDelta(rng, e.Graph(), 120)
		if err := e.Update(delta); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
	}
	if err := e.Verify(0); err != nil {
		t.Fatal(err)
	}
}

// benchApplyGrouping measures Apply over large deltas with the given
// routing options; the delta stream is pre-generated and replayed as
// insert/delete toggles so every iteration does identical work.
func benchApplyGrouping(b *testing.B, opts Options) {
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(rng, 4000, 20_000)
	x := tensor.RandMatrix(rng, 4000, 16, 1)
	model := gnn.NewGIN(rng, 16, 32, 3, gnn.NewAggregator(gnn.AggMax))
	e, err := New(model, g, x, nil, opts)
	if err != nil {
		b.Fatal(err)
	}
	// An alternating insert/remove pair over a fixed edge set keeps the
	// graph (and thus per-iteration work) stable.
	var absent graph.Delta
	for len(absent) < 256 {
		u := graph.NodeID(rng.Intn(4000))
		v := graph.NodeID(rng.Intn(4000))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		absent = append(absent, graph.EdgeChange{U: u, V: v, Insert: true})
	}
	removal := make(graph.Delta, len(absent))
	for i, ch := range absent {
		ch.Insert = false
		removal[i] = ch
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			err = e.Update(absent)
		} else {
			err = e.Update(removal)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyShardedGrouping(b *testing.B) {
	benchApplyGrouping(b, Options{})
}

func BenchmarkApplySequentialGrouping(b *testing.B) {
	benchApplyGrouping(b, Options{DisableShardedGrouping: true})
}
