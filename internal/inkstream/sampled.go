package inkstream

import (
	"fmt"
	"sort"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// SampledEngine supports graph sampling under incremental updates
// (Sec. II-E, "Sampling"): inference runs over a sampled subgraph whose
// structure is known before each timestamp, and the difference between the
// previous and current sampled neighborhoods is replayed into the engine
// as a list of edge removals and insertions.
//
// The sampler is a *stable bottom-k* neighbor sampler: each node keeps the
// fanout neighbors with the smallest deterministic hash. Stability means a
// ΔG batch only perturbs the samples of nodes whose full neighborhood
// changed, keeping the replayed diff small — the cached-structure
// comparison the paper describes.
type SampledEngine struct {
	full   *graph.Graph
	eng    *Engine
	fanout int
	seed   int64
}

// NewSampled bootstraps a sampled engine: it materialises the bottom-k
// subgraph of full and runs the initial inference over it. The full graph
// is used (and mutated by Update) by reference.
func NewSampled(model *gnn.Model, full *graph.Graph, x *tensor.Matrix, fanout int, seed int64, c *metrics.Counters, opts Options) (*SampledEngine, error) {
	if fanout < 1 {
		return nil, fmt.Errorf("inkstream: sampler fanout %d < 1", fanout)
	}
	s := &SampledEngine{full: full, fanout: fanout, seed: seed}
	sampled := graph.New(full.NumNodes())
	for u := 0; u < full.NumNodes(); u++ {
		for _, v := range s.sampleOf(graph.NodeID(u)) {
			if err := sampled.AddEdge(v, graph.NodeID(u)); err != nil {
				return nil, fmt.Errorf("inkstream: sampler: %w", err)
			}
		}
	}
	eng, err := New(model, sampled, x, c, opts)
	if err != nil {
		return nil, err
	}
	s.eng = eng
	return s, nil
}

// Engine exposes the underlying engine (running over the sampled graph).
func (s *SampledEngine) Engine() *Engine { return s.eng }

// FullGraph exposes the maintained full graph.
func (s *SampledEngine) FullGraph() *graph.Graph { return s.full }

// Output returns the maintained final-layer embeddings.
func (s *SampledEngine) Output() *tensor.Matrix { return s.eng.Output() }

// Fanout returns the per-node sample size.
func (s *SampledEngine) Fanout() int { return s.fanout }

// sampleOf returns u's current bottom-k in-neighborhood sample, sorted by
// node ID for deterministic diffing.
func (s *SampledEngine) sampleOf(u graph.NodeID) []graph.NodeID {
	nbrs := s.full.InNeighbors(u)
	if len(nbrs) <= s.fanout {
		out := append([]graph.NodeID(nil), nbrs...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	type ranked struct {
		v graph.NodeID
		h uint64
	}
	rs := make([]ranked, len(nbrs))
	for i, v := range nbrs {
		rs[i] = ranked{v, edgeHash(s.seed, u, v)}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].h != rs[j].h {
			return rs[i].h < rs[j].h
		}
		return rs[i].v < rs[j].v
	})
	out := make([]graph.NodeID, s.fanout)
	for i := range out {
		out[i] = rs[i].v
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// edgeHash is a splitmix64-style deterministic hash of (seed, dst, src).
func edgeHash(seed int64, u, v graph.NodeID) uint64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(uint32(u))<<32 ^ uint64(uint32(v))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Update applies ΔG to the full graph, recomputes the bottom-k samples of
// every node whose full neighborhood changed, and feeds the sample diff to
// the engine as arc removals and insertions.
func (s *SampledEngine) Update(delta graph.Delta) error {
	if err := delta.Validate(s.full); err != nil {
		return err
	}
	// Nodes whose in-neighborhood changes.
	dirty := map[graph.NodeID]struct{}{}
	for _, ch := range delta {
		dirty[ch.V] = struct{}{}
		if s.full.Undirected {
			dirty[ch.U] = struct{}{}
		}
	}
	before := make(map[graph.NodeID][]graph.NodeID, len(dirty))
	for u := range dirty {
		before[u] = s.sampleOf(u)
	}
	if err := delta.Apply(s.full); err != nil {
		return err
	}
	var diff graph.Delta
	for u := range dirty {
		after := s.sampleOf(u)
		diff = append(diff, sampleDiff(u, before[u], after)...)
	}
	// Deterministic replay order.
	sort.Slice(diff, func(i, j int) bool {
		if diff[i].V != diff[j].V {
			return diff[i].V < diff[j].V
		}
		return diff[i].U < diff[j].U
	})
	if len(diff) == 0 {
		return nil
	}
	if err := s.eng.Update(diff); err != nil {
		// The engine graph is now out of sync with the full graph; this
		// can only happen on an internal bug, so surface loudly.
		return fmt.Errorf("inkstream: sampled replay failed: %w", err)
	}
	return nil
}

// UpdateVertices forwards vertex-feature updates directly: sampling only
// affects structure.
func (s *SampledEngine) UpdateVertices(ups []VertexUpdate) error {
	return s.eng.UpdateVertices(ups)
}

// sampleDiff turns two sorted samples of node u into arc changes (src ->
// u) for the engine's directed sampled graph.
func sampleDiff(u graph.NodeID, old, new []graph.NodeID) graph.Delta {
	var d graph.Delta
	i, j := 0, 0
	for i < len(old) || j < len(new) {
		switch {
		case j >= len(new) || (i < len(old) && old[i] < new[j]):
			d = append(d, graph.EdgeChange{U: old[i], V: u, Insert: false})
			i++
		case i >= len(old) || new[j] < old[i]:
			d = append(d, graph.EdgeChange{U: new[j], V: u, Insert: true})
			j++
		default:
			i++
			j++
		}
	}
	return d
}
