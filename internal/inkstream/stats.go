package inkstream

import (
	"fmt"

	"repro/internal/obs"
)

// Condition classifies how one visited node in one layer was handled — the
// taxonomy behind the paper's Fig. 8 and the pruning statistics of
// Table V.
type Condition uint8

const (
	// CondPruned: the node received events but its embedding was unchanged
	// (resilient); its propagation subtree was pruned.
	CondPruned Condition = iota
	// CondNoReset: incremental update applied with no reset channel.
	CondNoReset
	// CondCoveredReset: reset channels were covered by the added messages;
	// incremental update applied.
	CondCoveredReset
	// CondExposedReset: reset channels not covered; the whole neighborhood
	// was fetched and recomputed.
	CondExposedReset
	// CondAccumulative: accumulative-layer incremental update (always
	// applicable, never pruned).
	CondAccumulative
	// CondSelfOnly: no native events; the node was reprocessed only
	// because its own message changed (self-dependent layers).
	CondSelfOnly

	numConditions
)

// The taxonomy must fit the fixed condition array of an obs.LayerSpan.
var _ [obs.MaxCond - int(numConditions)]struct{}

// ConditionNames returns the display name of every condition, indexed by
// Condition value — the label vocabulary of trace rendering and the
// /metrics per-condition counters.
func ConditionNames() []string {
	out := make([]string, numConditions)
	for c := Condition(0); c < numConditions; c++ {
		out[c] = c.String()
	}
	return out
}

func (c Condition) String() string {
	switch c {
	case CondPruned:
		return "pruned"
	case CondNoReset:
		return "no-reset"
	case CondCoveredReset:
		return "covered-reset"
	case CondExposedReset:
		return "exposed-reset"
	case CondAccumulative:
		return "accumulative"
	case CondSelfOnly:
		return "self-only"
	}
	return fmt.Sprintf("Condition(%d)", uint8(c))
}

// ConditionStats counts node visits per condition across one or more
// update batches.
type ConditionStats struct {
	Counts [numConditions]int64
}

// Add increments the counter for c.
func (s *ConditionStats) Add(c Condition) { s.Counts[c]++ }

// Merge accumulates o into s.
func (s *ConditionStats) Merge(o *ConditionStats) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
}

// Total returns the number of classified node visits.
func (s *ConditionStats) Total() int64 {
	var t int64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// Fraction returns the share of visits classified as c (0 when empty).
func (s *ConditionStats) Fraction(c Condition) float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s.Counts[c]) / float64(t)
}

// Incremental returns the share of visits updated incrementally (no-reset +
// covered-reset + accumulative).
func (s *ConditionStats) Incremental() float64 {
	return s.Fraction(CondNoReset) + s.Fraction(CondCoveredReset) + s.Fraction(CondAccumulative)
}

func (s *ConditionStats) String() string {
	out := ""
	for c := Condition(0); c < numConditions; c++ {
		if s.Counts[c] == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", c, s.Counts[c])
	}
	if out == "" {
		return "no visits"
	}
	return out
}
