package inkstream

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// expandDelta mirrors the shard router: every undirected edge change becomes
// both directed arcs, (u,v) then (v,u) — the same order arcsOf walks them.
func expandDelta(delta graph.Delta) graph.Delta {
	out := make(graph.Delta, 0, 2*len(delta))
	for _, ch := range delta {
		out = append(out,
			graph.EdgeChange{U: ch.U, V: ch.V, Insert: ch.Insert},
			graph.EdgeChange{U: ch.V, V: ch.U, Insert: ch.Insert})
	}
	return out
}

// driveRound pushes one batch through the round protocol exactly the way
// the shard router does: BeginRound, per-layer record exchange (copied into
// a caller-owned buffer and sorted by node), FinishRound.
func driveRound(t *testing.T, e *Engine, delta graph.Delta, vups []VertexUpdate) {
	t.Helper()
	recs, err := e.BeginRound(delta, vups)
	if err != nil {
		t.Fatalf("BeginRound: %v", err)
	}
	merged := append([]MessageChange(nil), recs...)
	sort.Slice(merged, func(i, j int) bool { return merged[i].Node < merged[j].Node })
	for l := 0; l < e.model.NumLayers(); l++ {
		out, err := e.RoundLayer(l, merged)
		if err != nil {
			t.Fatalf("RoundLayer %d: %v", l, err)
		}
		merged = append(merged[:0], out...)
		sort.Slice(merged, func(i, j int) bool { return merged[i].Node < merged[j].Node })
	}
	if err := e.FinishRound(); err != nil {
		t.Fatalf("FinishRound: %v", err)
	}
	e.PublishSnapshot()
}

// TestRoundProtocolMatchesApply drives an all-local partitioned engine (one
// shard owning everything, over the directed expansion of the same graph)
// through the round protocol and demands bitwise-identical state against a
// plain engine applying the same stream — for every model and aggregator,
// accumulative ones included. This is the single-engine half of the shard
// bit-exactness argument (DESIGN.md §11.3): the regenerated event order must
// equal Apply's native order exactly.
func TestRoundProtocolMatchesApply(t *testing.T) {
	for _, name := range []string{"GCN", "SAGE", "GIN"} {
		for _, kind := range []gnn.AggKind{gnn.AggMax, gnn.AggMean, gnn.AggSum} {
			t.Run(fmt.Sprintf("%s/%s", name, kind), func(t *testing.T) {
				rng := rand.New(rand.NewSource(41))
				const n, featLen = 60, 6
				g := randomGraph(rng, n, 150)
				x := tensor.RandMatrix(rng, n, featLen, 1)
				model := buildModel(rng, name, featLen, kind)

				plain, err := New(model, g.Clone(), x.Clone(), nil, Options{})
				if err != nil {
					t.Fatal(err)
				}
				part, err := graph.NewHashPartition(n, 1)
				if err != nil {
					t.Fatal(err)
				}
				// Bootstrap from the original graph's inference, like the
				// router does: the shard graph's adjacency order differs, so
				// re-inferring over it would land accumulative sums on
				// different ulps.
				ink, err := NewFromState(model, part.ShardGraph(g, 0), plain.State().Clone(), nil, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if err := ink.SetPartitionLocal(part.LocalMask(0)); err != nil {
					t.Fatal(err)
				}

				xCur := x.Clone()
				for step := 0; step < 8; step++ {
					delta := graph.RandomDelta(rng, plain.Graph(), 4)
					var vups []VertexUpdate
					if step%2 == 1 {
						nodes := rng.Perm(n)[:3]
						sort.Ints(nodes)
						for _, v := range nodes {
							vups = append(vups, VertexUpdate{
								Node: graph.NodeID(v),
								X:    tensor.RandVector(rng, featLen, 1),
							})
							copy(xCur.Row(v), vups[len(vups)-1].X)
						}
					}
					if err := plain.Apply(delta, vups); err != nil {
						t.Fatalf("step %d: plain Apply: %v", step, err)
					}
					driveRound(t, ink, expandDelta(delta), vups)
					if !plain.State().Equal(ink.State()) {
						t.Fatalf("step %d: round-protocol state diverged from Apply", step)
					}
				}
				checkEquivalence(t, plain, xCur, kind, "plain")
			})
		}
	}
}

// TestRoundTimingStats pins the round-profiler hooks: with timing on, every
// stage leaves a RoundStageStats behind (ghost refresh counted for remote
// records only, events counted for the staged layer list), FinishRound
// clears it, and running the same stream with timing on stays bit-exact.
func TestRoundTimingStats(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n, featLen = 40, 5
	g := randomGraph(rng, n, 100)
	x := tensor.RandMatrix(rng, n, featLen, 1)
	model := buildModel(rng, "SAGE", featLen, gnn.AggMean)

	plain, err := New(model, g.Clone(), x.Clone(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	part, err := graph.NewHashPartition(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	ink, err := NewFromState(model, part.ShardGraph(g, 0), plain.State().Clone(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ink.SetPartitionLocal(part.LocalMask(0)); err != nil {
		t.Fatal(err)
	}
	ink.SetRoundTiming(true)

	nodes := rng.Perm(n)[:3]
	sort.Ints(nodes)
	var vups []VertexUpdate
	for _, v := range nodes {
		vups = append(vups, VertexUpdate{Node: graph.NodeID(v), X: tensor.RandVector(rng, featLen, 1)})
	}
	delta := graph.RandomDelta(rng, plain.Graph(), 4)
	if err := plain.Apply(delta, vups); err != nil {
		t.Fatal(err)
	}

	recs, err := ink.BeginRound(expandDelta(delta), vups)
	if err != nil {
		t.Fatal(err)
	}
	if st := ink.LastStageStats(); st.Events != len(recs) || st.GhostRows != 0 {
		t.Fatalf("begin stats = %+v, want %d events", st, len(recs))
	}
	merged := append([]MessageChange(nil), recs...)
	sort.Slice(merged, func(i, j int) bool { return merged[i].Node < merged[j].Node })
	for l := 0; l < model.NumLayers(); l++ {
		out, err := ink.RoundLayer(l, merged)
		if err != nil {
			t.Fatal(err)
		}
		st := ink.LastStageStats()
		// All-local shard: every record is local, so no ghost rows.
		if st.GhostRows != 0 {
			t.Fatalf("layer %d: %d ghost rows on an all-local shard", l, st.GhostRows)
		}
		if len(merged) > 0 && st.Events == 0 && l == 0 && len(delta) > 0 {
			t.Fatalf("layer %d: zero events staged for a non-empty round", l)
		}
		merged = append(merged[:0], out...)
		sort.Slice(merged, func(i, j int) bool { return merged[i].Node < merged[j].Node })
	}
	if err := ink.FinishRound(); err != nil {
		t.Fatal(err)
	}
	if st := ink.LastStageStats(); st != (RoundStageStats{}) {
		t.Fatalf("FinishRound left stats %+v", st)
	}
	ink.PublishSnapshot()
	if !plain.State().Equal(ink.State()) {
		t.Fatal("timing-on round diverged from Apply")
	}
}

// TestPartitionedModeRejections pins the mode boundary: a partitioned engine
// refuses the standalone entry points, rejects remote-vertex feature updates
// and out-of-sequence round calls, and a standalone engine refuses the round
// protocol.
func TestPartitionedModeRejections(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, featLen = 20, 4
	g := randomGraph(rng, n, 40)
	x := tensor.RandMatrix(rng, n, featLen, 1)
	model := buildModel(rng, "GCN", featLen, gnn.AggMax)

	plain, err := New(model, g.Clone(), x.Clone(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.BeginRound(nil, nil); err == nil {
		t.Fatal("BeginRound accepted on a standalone engine")
	}
	if _, err := plain.RoundLayer(0, nil); err == nil {
		t.Fatal("RoundLayer accepted without an open round")
	}
	if err := plain.FinishRound(); err == nil {
		t.Fatal("FinishRound accepted without an open round")
	}

	part, err := graph.NewHashPartition(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	ink, err := New(model, part.ShardGraph(g, 0), x.Clone(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ink.SetPartitionLocal(part.LocalMask(0)); err != nil {
		t.Fatal(err)
	}
	if err := ink.Apply(nil, nil); err == nil {
		t.Fatal("Apply accepted on a partitioned engine")
	}
	if _, err := ink.AddNode(tensor.RandVector(rng, featLen, 1)); err == nil {
		t.Fatal("AddNode accepted on a partitioned engine")
	}
	var remote graph.NodeID = -1
	for v := 0; v < n; v++ {
		if part.Owner(graph.NodeID(v)) != 0 {
			remote = graph.NodeID(v)
			break
		}
	}
	if remote < 0 {
		t.Fatal("partition left shard 1 empty")
	}
	vups := []VertexUpdate{{Node: remote, X: tensor.RandVector(rng, featLen, 1)}}
	if _, err := ink.BeginRound(nil, vups); err == nil {
		t.Fatal("BeginRound accepted a remote vertex update")
	}
	if _, err := ink.BeginRound(nil, nil); err != nil {
		t.Fatalf("opening an empty round: %v", err)
	}
	if _, err := ink.BeginRound(nil, nil); err == nil {
		t.Fatal("BeginRound accepted with a round already open")
	}
	if err := ink.SetPartitionLocal(nil); err == nil {
		t.Fatal("SetPartitionLocal accepted mid-round")
	}
	if err := ink.FinishRound(); err != nil {
		t.Fatal(err)
	}
}
