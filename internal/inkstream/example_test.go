package inkstream_test

import (
	"fmt"
	"math/rand"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/tensor"
)

// The canonical workflow: bootstrap with one full inference, then stream
// edge changes through incremental updates. With a monotonic aggregator
// the maintained state is bit-identical to recomputation at every step.
func ExampleEngine() {
	rng := rand.New(rand.NewSource(1))
	g := graph.NewUndirected(5)
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	x := tensor.RandMatrix(rng, 5, 4, 1)
	model := gnn.NewGCN(rng, 4, 8, gnn.NewAggregator(gnn.AggMax))

	engine, err := inkstream.New(model, g, x, nil, inkstream.Options{})
	if err != nil {
		panic(err)
	}
	// Close the ring and drop one original edge, incrementally.
	delta := graph.Delta{
		{U: 4, V: 0, Insert: true},
		{U: 1, V: 2, Insert: false},
	}
	if err := engine.Update(delta); err != nil {
		panic(err)
	}
	fmt.Println("edges now:", engine.Graph().NumEdges())
	fmt.Println("verified:", engine.Verify(0) == nil)
	// Output:
	// edges now: 4
	// verified: true
}

// Vertex-feature updates propagate through the same event machinery
// (Sec. II-F of the paper).
func ExampleEngine_UpdateVertices() {
	rng := rand.New(rand.NewSource(2))
	g := graph.NewUndirected(4)
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	x := tensor.RandMatrix(rng, 4, 3, 1)
	model := gnn.NewGIN(rng, 3, 8, 2, gnn.NewAggregator(gnn.AggMax))
	engine, err := inkstream.New(model, g, x, nil, inkstream.Options{})
	if err != nil {
		panic(err)
	}
	if err := engine.UpdateVertices([]inkstream.VertexUpdate{
		{Node: 1, X: tensor.Vector{0.5, -0.5, 1}},
	}); err != nil {
		panic(err)
	}
	fmt.Println("verified:", engine.Verify(0) == nil)
	// Output:
	// verified: true
}
