package inkstream

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// fig4Engine reproduces the paper's Fig. 4 setting: vertex A (node 0) with
// neighbors B, C, D (1, 2, 3) under max aggregation, using an identity GCN
// layer so messages equal features.
func fig4Engine(t *testing.T, feats [][]float32) (*Engine, *tensor.Matrix) {
	t.Helper()
	n := len(feats)
	g := graph.NewUndirected(n)
	for v := 1; v < 4; v++ {
		if err := g.AddEdge(0, graph.NodeID(v)); err != nil {
			t.Fatal(err)
		}
	}
	// Extra nodes (index >= 4) are sources for insertions, unconnected.
	rng := rand.New(rand.NewSource(1))
	layer := gnn.NewGCNLayer(rng, "l0", 4, 4, gnn.NewAggregator(gnn.AggMax), gnn.ActIdentity)
	layer.W = tensor.FromRows([][]float32{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}})
	layer.B = tensor.NewVector(4)
	model := &gnn.Model{Name: "fig4", Layers: []gnn.Layer{layer}}
	x := tensor.FromRows(feats)
	e, err := New(model, g, x, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e, x
}

// Fig. 4 row (f) upper: deleting the dominating neighbor D and adding an
// edge whose message covers the reset channels — grouping classifies it and
// the engine stays exact.
func TestFig4CoveredAndExposed(t *testing.T) {
	// Node features: A, B, C, D, E(insert source covering), F(insert
	// source not covering). α⁻_A = max(B,C,D) = [14,16,12,3].
	feats := [][]float32{
		{0, 0, 0, 0},    // A
		{13, 13, 3, 2},  // B
		{11, 16, 12, 3}, // C
		{14, 16, 8, 1},  // D — dominates channels 0 (14) and ties 1 (16)
		{15, 18, 14, 0}, // E — covers D's channels
		{1, 1, 1, 1},    // F — exposes
	}
	e, x := fig4Engine(t, feats)
	alpha := e.State().Alpha[0].Row(0)
	if !alpha.Equal(tensor.Vector{14, 16, 12, 3}) {
		t.Fatalf("α⁻_A = %v", alpha)
	}
	// Covered reset: del (A,D), insert (A,E).
	if err := e.Update(graph.Delta{{U: 0, V: 3}, {U: 0, V: 4, Insert: true}}); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Counts[CondCoveredReset] == 0 {
		t.Errorf("expected a covered reset, stats: %v", e.Stats())
	}
	checkEquivalence(t, e, x, gnn.AggMax, "fig4-covered")

	// Exposed reset: now remove E and add F (dominated): recompute needed.
	e.ResetStats()
	if err := e.Update(graph.Delta{{U: 0, V: 4}, {U: 0, V: 5, Insert: true}}); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Counts[CondExposedReset] == 0 {
		t.Errorf("expected an exposed reset, stats: %v", e.Stats())
	}
	checkEquivalence(t, e, x, gnn.AggMax, "fig4-exposed")
}

// A no-reset case: deleting a dominated neighbor leaves α untouched and the
// node is pruned (resilient).
func TestNoResetPrunes(t *testing.T) {
	feats := [][]float32{
		{0, 0, 0, 0},
		{13, 13, 3, 2},  // B dominated by max(C,D) on all channels?
		{11, 16, 12, 3}, // C
		{14, 16, 8, 4},  // D
	}
	// max(C,D) = [14,16,12,4]; B = [13,13,3,2] strictly below -> deleting B
	// changes nothing.
	e, x := fig4Engine(t, feats)
	if err := e.Update(graph.Delta{{U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Counts[CondPruned] == 0 {
		t.Errorf("expected pruned resilient node, stats: %v", e.Stats())
	}
	checkEquivalence(t, e, x, gnn.AggMax, "no-reset-prune")
}

// Ungrouped processing (Fig. 4d) must still be exact but must recompute
// where grouping would have used the covered-reset fast path.
func TestUngroupedForcesRecompute(t *testing.T) {
	feats := [][]float32{
		{0, 0, 0, 0},
		{13, 13, 3, 2},
		{11, 16, 12, 3},
		{14, 16, 8, 1},
		{15, 18, 14, 12}, // E covers D
		{0, 0, 0, 0},
	}
	run := func(opts Options) (*Engine, *tensor.Matrix, *ConditionStats) {
		e, x := fig4Engine(t, feats)
		e.opts = opts
		if err := e.Update(graph.Delta{{U: 0, V: 3}, {U: 0, V: 4, Insert: true}}); err != nil {
			t.Fatal(err)
		}
		return e, x, e.Stats()
	}
	eg, xg, sg := run(Options{})
	eu, _, su := run(Options{DisableGrouping: true})
	if sg.Counts[CondCoveredReset] == 0 {
		t.Errorf("grouped run should use covered reset: %v", sg)
	}
	if su.Counts[CondExposedReset] == 0 {
		t.Errorf("ungrouped run should be forced to recompute: %v", su)
	}
	if !eg.State().Equal(eu.State()) {
		t.Error("grouped and ungrouped runs disagree")
	}
	checkEquivalence(t, eg, xg, gnn.AggMax, "grouped")
}

// Accumulative layers never prune: every event-receiving node is visited
// and classified accumulative.
func TestAccumulativeNeverPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 80, 240)
	x := tensor.RandMatrix(rng, 80, 5, 1)
	e, err := New(buildModel(rng, "GCN", 5, gnn.AggMean), g, x, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Update(graph.RandomDelta(rng, e.Graph(), 10)); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Counts[CondPruned] != 0 || s.Counts[CondNoReset] != 0 || s.Counts[CondExposedReset] != 0 {
		t.Errorf("accumulative run recorded monotonic conditions: %v", s)
	}
	if s.Counts[CondAccumulative] == 0 {
		t.Errorf("no accumulative visits recorded: %v", s)
	}
}

// Self-dependent models record self-only visits for nodes reached purely
// through their own changed message. Such nodes exist only when every
// affected in-neighbor went resilient in the previous layer, so we scan a
// few seeds on a deep sparse GIN until one shows up.
func TestSelfOnlyVisits(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 80, 100) // sparse: resilient neighbors likelier
		x := tensor.RandMatrix(rng, 80, 5, 1)
		e, err := New(gnn.NewGIN(rng, 5, 6, 4, gnn.NewAggregator(gnn.AggMax)), g, x, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Update(graph.RandomDelta(rng, e.Graph(), 4)); err != nil {
			t.Fatal(err)
		}
		if e.Stats().Counts[CondSelfOnly] > 0 {
			return // found the condition; mechanism works end to end
		}
	}
	t.Error("no self-only visit found in 30 seeds; self-event delivery may be broken")
}

// Dropping the self-dependence hooks must eventually produce wrong results
// for a self-dependent model: the hook is load-bearing, not decorative.
func TestSelfHooksAreLoadBearing(t *testing.T) {
	diverged := false
	for seed := int64(0); seed < 30 && !diverged; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 80, 100)
		x := tensor.RandMatrix(rng, 80, 5, 1)
		model := gnn.NewGIN(rng, 5, 6, 4, gnn.NewAggregator(gnn.AggMax))
		e, err := New(model, g, x, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		e.SetHooks(NopHooks{})
		if err := e.Update(graph.RandomDelta(rng, e.Graph(), 4)); err != nil {
			t.Fatal(err)
		}
		want, err := gnn.Infer(model, e.Graph(), x, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !e.State().Equal(want) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("NopHooks never diverged on a self-dependent model in 30 seeds")
	}
}

func TestConditionStatsHelpers(t *testing.T) {
	var s ConditionStats
	if s.Total() != 0 || s.Fraction(CondPruned) != 0 {
		t.Error("empty stats must be zero")
	}
	s.Add(CondPruned)
	s.Add(CondNoReset)
	s.Add(CondNoReset)
	s.Add(CondAccumulative)
	if s.Total() != 4 {
		t.Errorf("Total = %d", s.Total())
	}
	if got := s.Fraction(CondNoReset); got != 0.5 {
		t.Errorf("Fraction = %g", got)
	}
	if got := s.Incremental(); got != 0.75 {
		t.Errorf("Incremental = %g", got)
	}
	var o ConditionStats
	o.Add(CondPruned)
	s.Merge(&o)
	if s.Counts[CondPruned] != 2 {
		t.Error("Merge failed")
	}
	if s.String() == "" || (&ConditionStats{}).String() != "no visits" {
		t.Error("String rendering")
	}
	for c := Condition(0); c < numConditions; c++ {
		if c.String() == "" {
			t.Errorf("condition %d has no name", c)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "Add" || OpDel.String() != "Del" || OpUpdate.String() != "Update" {
		t.Error("Op names")
	}
}

func TestNopHooks(t *testing.T) {
	h := NopHooks{}
	if h.Propagate(0, 1, nil, nil) != nil {
		t.Error("NopHooks.Propagate must return nil")
	}
	evts := []UserEvent{{Target: 1}}
	if got := h.Reduce(1, evts); len(got) != 1 {
		t.Error("NopHooks.Reduce must pass through")
	}
	if h.Apply(0, 1, evts) {
		t.Error("NopHooks.Apply must not force")
	}
}

func TestSelfHooksReduceDedups(t *testing.T) {
	h := SelfHooks{SelfDependent: func(int) bool { return true }}
	evts := []UserEvent{{Target: 1}, {Target: 1}, {Target: 1}}
	if got := h.Reduce(1, evts); len(got) != 1 {
		t.Errorf("Reduce kept %d duplicates", len(got))
	}
	if !h.Apply(0, 1, evts) {
		t.Error("SelfHooks.Apply must force recompute")
	}
	if got := h.Propagate(0, 7, nil, nil); len(got) != 1 || got[0].Target != 7 {
		t.Errorf("Propagate = %v", got)
	}
}

// Custom hooks: count propagations through a wrapping hook to show the
// extension interface composes.
type countingHooks struct {
	UserHooks
	propagations int
}

func (c *countingHooks) Propagate(l int, u graph.NodeID, oldM, newM tensor.Vector) []UserEvent {
	c.propagations++
	return c.UserHooks.Propagate(l, u, oldM, newM)
}

func TestCustomHooksWrap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 40, 120)
	x := tensor.RandMatrix(rng, 40, 5, 1)
	e, err := New(buildModel(rng, "SAGE", 5, gnn.AggMax), g, x, nil, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	ch := &countingHooks{UserHooks: e.hooks}
	e.SetHooks(ch)
	if err := e.Update(graph.RandomDelta(rng, e.Graph(), 6)); err != nil {
		t.Fatal(err)
	}
	if ch.propagations == 0 {
		t.Error("custom hook not invoked")
	}
	checkEquivalence(t, e, x, gnn.AggMax, "custom-hooks")
}

// Property-based stress: arbitrary seeds, sizes, models and aggregators —
// the incremental state always matches recomputation across two batches.
func TestQuickIncrementalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	f := func(seed int64, modelPick, kindPick uint8, deltaSize uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		g := randomGraph(rng, n, 2*n)
		x := tensor.RandMatrix(rng, n, 4, 1)
		kind := allKinds[int(kindPick)%len(allKinds)]
		model := buildModel(rng, allModels[int(modelPick)%len(allModels)], 4, kind)
		e, err := New(model, g, x, nil, Options{})
		if err != nil {
			return false
		}
		ds := 2 + int(deltaSize)%10
		for b := 0; b < 2; b++ {
			if err := e.Update(graph.RandomDelta(rng, e.Graph(), ds)); err != nil {
				return false
			}
		}
		want, err := gnn.Infer(model, e.Graph(), x, nil)
		if err != nil {
			return false
		}
		if kind == gnn.AggMax || kind == gnn.AggMin {
			return e.State().Equal(want)
		}
		return e.State().ApproxEqual(want, 2e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
