package inkstream

import (
	"math/rand"
	"testing"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// rebuildSampled constructs the bottom-k sampled graph from scratch for
// cross-checking incremental sample maintenance.
func rebuildSampled(t *testing.T, s *SampledEngine) *graph.Graph {
	t.Helper()
	g := graph.New(s.full.NumNodes())
	for u := 0; u < s.full.NumNodes(); u++ {
		for _, v := range s.sampleOf(graph.NodeID(u)) {
			if err := g.AddEdge(v, graph.NodeID(u)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

func TestSampledEngineBootstrap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	full := randomGraph(rng, 60, 400) // dense: sampling bites
	x := tensor.RandMatrix(rng, 60, 5, 1)
	model := buildModel(rng, "GCN", 5, gnn.AggMax)
	s, err := NewSampled(model, full, x, 4, 7, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Fanout() != 4 {
		t.Error("fanout accessor")
	}
	for u := 0; u < 60; u++ {
		deg := s.Engine().Graph().InDegree(graph.NodeID(u))
		if deg > 4 {
			t.Fatalf("node %d sampled in-degree %d > fanout", u, deg)
		}
		fullDeg := full.InDegree(graph.NodeID(u))
		if fullDeg <= 4 && deg != fullDeg {
			t.Fatalf("node %d: low-degree node must keep all %d neighbors, has %d", u, fullDeg, deg)
		}
	}
}

func TestSampledEngineRejectsBadFanout(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	full := randomGraph(rng, 10, 20)
	x := tensor.RandMatrix(rng, 10, 4, 1)
	model := buildModel(rng, "GCN", 4, gnn.AggMax)
	if _, err := NewSampled(model, full, x, 0, 1, nil, Options{}); err == nil {
		t.Error("fanout 0 accepted")
	}
}

// The core property (Sec. II-E): after any stream of updates, the engine's
// incrementally maintained graph equals the bottom-k sample rebuilt from
// scratch, and its state equals full inference over that sample.
func TestSampledEngineEquivalence(t *testing.T) {
	for _, kind := range []gnn.AggKind{gnn.AggMax, gnn.AggMean} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			full := randomGraph(rng, 80, 600)
			x := tensor.RandMatrix(rng, 80, 5, 1)
			model := buildModel(rng, "SAGE", 5, kind)
			s, err := NewSampled(model, full, x, 5, 11, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for batch := 0; batch < 4; batch++ {
				delta := graph.RandomDelta(rng, s.FullGraph(), 12)
				if err := s.Update(delta); err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
				// Structure: maintained sample == from-scratch sample.
				want := rebuildSampled(t, s)
				got := s.Engine().Graph()
				if got.NumArcs() != want.NumArcs() {
					t.Fatalf("batch %d: sampled arcs %d, want %d", batch, got.NumArcs(), want.NumArcs())
				}
				for _, e := range want.Edges() {
					if !got.HasEdge(e[0], e[1]) {
						t.Fatalf("batch %d: maintained sample missing arc %v", batch, e)
					}
				}
				// State: engine state == full inference over the sample.
				ref, err := gnn.Infer(model, want, x, nil)
				if err != nil {
					t.Fatal(err)
				}
				if kind == gnn.AggMax {
					if !s.Engine().State().Equal(ref) {
						t.Fatalf("batch %d: sampled state not bit-identical", batch)
					}
				} else if !s.Engine().State().ApproxEqual(ref, 2e-3) {
					t.Fatalf("batch %d: sampled state diverged", batch)
				}
			}
		})
	}
}

// Sampling stability: an update far from a node must not change its
// sample (the property that keeps replayed diffs small).
func TestSampledEngineStability(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	full := randomGraph(rng, 100, 700)
	x := tensor.RandMatrix(rng, 100, 4, 1)
	model := buildModel(rng, "GCN", 4, gnn.AggMax)
	s, err := NewSampled(model, full, x, 5, 13, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	beforeSamples := map[graph.NodeID][]graph.NodeID{}
	for u := graph.NodeID(0); u < 100; u++ {
		beforeSamples[u] = s.sampleOf(u)
	}
	delta := graph.RandomDelta(rng, s.FullGraph(), 4)
	dirty := map[graph.NodeID]bool{}
	for _, c := range delta {
		dirty[c.U], dirty[c.V] = true, true
	}
	if err := s.Update(delta); err != nil {
		t.Fatal(err)
	}
	for u := graph.NodeID(0); u < 100; u++ {
		if dirty[u] {
			continue
		}
		after := s.sampleOf(u)
		if len(after) != len(beforeSamples[u]) {
			t.Fatalf("clean node %d sample size changed", u)
		}
		for i := range after {
			if after[i] != beforeSamples[u][i] {
				t.Fatalf("clean node %d sample changed", u)
			}
		}
	}
}

func TestSampledEngineVertexUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	full := randomGraph(rng, 50, 300)
	x := tensor.RandMatrix(rng, 50, 4, 1)
	model := buildModel(rng, "GIN", 4, gnn.AggMax)
	s, err := NewSampled(model, full, x, 4, 17, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	newFeat := tensor.RandVector(rng, 4, 1)
	if err := s.UpdateVertices([]VertexUpdate{{Node: 9, X: newFeat}}); err != nil {
		t.Fatal(err)
	}
	x2 := x.Clone()
	x2.SetRow(9, newFeat)
	ref, err := gnn.Infer(model, rebuildSampled(t, s), x2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Engine().State().Equal(ref) {
		t.Error("vertex update through sampler diverged")
	}
}

func TestSampledEngineRejectsInvalidDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	full := randomGraph(rng, 20, 60)
	x := tensor.RandMatrix(rng, 20, 4, 1)
	model := buildModel(rng, "GCN", 4, gnn.AggMax)
	s, err := NewSampled(model, full, x, 3, 19, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	edges := s.FullGraph().NumEdges()
	if err := s.Update(graph.Delta{{U: 0, V: 0, Insert: true}}); err == nil {
		t.Fatal("self-loop accepted")
	}
	if s.FullGraph().NumEdges() != edges {
		t.Error("failed update mutated full graph")
	}
}

func TestSampleDiff(t *testing.T) {
	d := sampleDiff(9,
		[]graph.NodeID{1, 3, 5},
		[]graph.NodeID{1, 4, 5, 7})
	want := map[string]bool{"del(3,9)": true, "ins(4,9)": true, "ins(7,9)": true}
	if len(d) != 3 {
		t.Fatalf("diff = %v", d)
	}
	for _, c := range d {
		if !want[c.String()] {
			t.Errorf("unexpected change %v", c)
		}
	}
	if len(sampleDiff(1, nil, nil)) != 0 {
		t.Error("empty diff expected")
	}
}
