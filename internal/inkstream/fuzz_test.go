package inkstream

import (
	"math/rand"
	"testing"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// FuzzEngineEquivalence drives the engine with fuzzer-chosen graph shapes,
// models, aggregators, option sets and batch sizes, always asserting
// equivalence with full recomputation.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(4), uint8(0))
	f.Add(int64(2), uint8(1), uint8(2), uint8(10), uint8(1))
	f.Add(int64(3), uint8(2), uint8(1), uint8(1), uint8(2))
	f.Add(int64(4), uint8(2), uint8(3), uint8(20), uint8(3))

	f.Fuzz(func(t *testing.T, seed int64, modelPick, kindPick, deltaSize, optPick uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := 15 + rng.Intn(40)
		g := randomGraph(rng, n, 2*n)
		x := tensor.RandMatrix(rng, n, 4, 1)
		kind := allKinds[int(kindPick)%len(allKinds)]
		model := buildModel(rng, allModels[int(modelPick)%len(allModels)], 4, kind)
		opts := []Options{
			{},
			{DisablePruning: true},
			{DisableGrouping: true},
			{CopyPayloads: true, Sequential: true},
		}[int(optPick)%4]
		e, err := New(model, g, x, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		ds := 1 + int(deltaSize)%12
		if ds > g.NumEdges()/2 {
			ds = g.NumEdges() / 2
		}
		if ds == 0 {
			return
		}
		// Mix a vertex-feature update into the batch so the fuzzer also
		// covers the Sec. II-F path.
		node := graph.NodeID(rng.Intn(n))
		feat := tensor.RandVector(rng, 4, 1)
		if err := e.Apply(graph.RandomDelta(rng, e.Graph(), ds),
			[]VertexUpdate{{Node: node, X: feat}}); err != nil {
			t.Fatal(err)
		}
		x2 := x.Clone()
		x2.SetRow(int(node), feat)
		want, err := gnn.Infer(model, e.Graph(), x2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if kind == gnn.AggMax || kind == gnn.AggMin {
			if !e.State().Equal(want) {
				t.Fatalf("monotonic state diverged (seed=%d model=%d kind=%v opts=%+v)",
					seed, modelPick, kind, opts)
			}
		} else if !e.State().ApproxEqual(want, 5e-3) {
			t.Fatalf("accumulative state diverged (seed=%d)", seed)
		}
	})
}
