package inkstream

import (
	"math/rand"
	"testing"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// randomGraph builds a connected-ish random undirected graph.
func randomGraph(rng *rand.Rand, n, edges int) *graph.Graph {
	g := graph.NewUndirected(n)
	for g.NumEdges() < edges {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	return g
}

func buildModel(rng *rand.Rand, name string, featLen int, kind gnn.AggKind) *gnn.Model {
	switch name {
	case "GCN":
		return gnn.NewGCN(rng, featLen, 8, gnn.NewAggregator(kind))
	case "SAGE":
		return gnn.NewSAGE(rng, featLen, 8, gnn.NewAggregator(kind))
	case "GIN":
		return gnn.NewGIN(rng, featLen, 8, 3, gnn.NewAggregator(kind))
	}
	panic("unknown model " + name)
}

var allModels = []string{"GCN", "SAGE", "GIN"}
var allKinds = []gnn.AggKind{gnn.AggMax, gnn.AggMin, gnn.AggMean, gnn.AggSum}

// checkEquivalence applies delta via the engine and compares every cached
// checkpoint against a from-scratch full inference on the updated graph.
// Monotonic aggregators must match bit-for-bit; accumulative within fp
// tolerance.
func checkEquivalence(t *testing.T, e *Engine, x *tensor.Matrix, kind gnn.AggKind, label string) {
	t.Helper()
	want, err := gnn.Infer(e.Model(), e.Graph(), x, nil)
	if err != nil {
		t.Fatalf("%s: reference inference: %v", label, err)
	}
	monotonic := kind == gnn.AggMax || kind == gnn.AggMin
	if monotonic {
		if !e.State().Equal(want) {
			diff := e.State().Output().MaxAbsDiff(want.Output())
			t.Fatalf("%s: monotonic state not bit-identical (output max diff %g)", label, diff)
		}
	} else {
		if !e.State().ApproxEqual(want, 2e-3) {
			diff := e.State().Output().MaxAbsDiff(want.Output())
			t.Fatalf("%s: accumulative state diverged (output max diff %g)", label, diff)
		}
	}
}

// The headline correctness property: for every model × aggregator, a batch
// of random edge changes incrementally applied equals full recomputation.
func TestUpdateEquivalenceAllModelsAllAggregators(t *testing.T) {
	for _, mname := range allModels {
		for _, kind := range allKinds {
			mname, kind := mname, kind
			t.Run(mname+"/"+kind.String(), func(t *testing.T) {
				rng := rand.New(rand.NewSource(42))
				g := randomGraph(rng, 60, 180)
				x := tensor.RandMatrix(rng, 60, 6, 1)
				model := buildModel(rng, mname, 6, kind)
				e, err := New(model, g, x, nil, Options{})
				if err != nil {
					t.Fatal(err)
				}
				for batch := 0; batch < 3; batch++ {
					delta := graph.RandomDelta(rng, e.Graph(), 12)
					if err := e.Update(delta); err != nil {
						t.Fatalf("batch %d: %v", batch, err)
					}
					checkEquivalence(t, e, x, kind, mname+"/"+kind.String())
				}
			})
		}
	}
}

// Pure-insertion and pure-deletion batches exercise the Add-only and
// Del-only grouping paths.
func TestUpdateInsertOnlyDeleteOnly(t *testing.T) {
	for _, kind := range allKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			g := randomGraph(rng, 40, 120)
			x := tensor.RandMatrix(rng, 40, 5, 1)
			model := buildModel(rng, "GCN", 5, kind)
			e, err := New(model, g, x, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			// Deletions only.
			var dels graph.Delta
			for _, ed := range e.Graph().Edges()[:16] {
				if ed[0] < ed[1] && len(dels) < 6 {
					dels = append(dels, graph.EdgeChange{U: ed[0], V: ed[1], Insert: false})
				}
			}
			if err := e.Update(dels); err != nil {
				t.Fatal(err)
			}
			checkEquivalence(t, e, x, kind, "delete-only")
			// Insertions only: re-insert the removed edges.
			var ins graph.Delta
			for _, c := range dels {
				ins = append(ins, graph.EdgeChange{U: c.U, V: c.V, Insert: true})
			}
			if err := e.Update(ins); err != nil {
				t.Fatal(err)
			}
			checkEquivalence(t, e, x, kind, "insert-only")
		})
	}
}

// Deleting every edge of a node forces the all-channels-reset recompute
// over an empty neighborhood.
func TestUpdateIsolateNode(t *testing.T) {
	for _, kind := range allKinds {
		rng := rand.New(rand.NewSource(9))
		g := graph.NewUndirected(5)
		for _, e := range [][2]graph.NodeID{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {3, 4}} {
			if err := g.AddEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
		x := tensor.RandMatrix(rng, 5, 4, 1)
		model := buildModel(rng, "GCN", 4, kind)
		e, err := New(model, g, x, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		delta := graph.Delta{
			{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, // all of node 0's edges
		}
		if err := e.Update(delta); err != nil {
			t.Fatal(err)
		}
		checkEquivalence(t, e, x, kind, "isolate/"+kind.String())
		if !e.State().Alpha[0].Row(0).Equal(tensor.NewVector(model.Layers[0].MsgDim())) {
			t.Errorf("%v: isolated node alpha not zero: %v", kind, e.State().Alpha[0].Row(0))
		}
	}
}

// All four ablation options must preserve correctness — they trade work,
// not results.
func TestUpdateOptionsPreserveResults(t *testing.T) {
	opts := map[string]Options{
		"no-pruning":  {DisablePruning: true},
		"no-grouping": {DisableGrouping: true},
		"copy":        {CopyPayloads: true},
		"sequential":  {Sequential: true},
		"all-off":     {DisablePruning: true, DisableGrouping: true, CopyPayloads: true, Sequential: true},
	}
	for name, opt := range opts {
		for _, kind := range []gnn.AggKind{gnn.AggMax, gnn.AggMean} {
			name, opt, kind := name, opt, kind
			t.Run(name+"/"+kind.String(), func(t *testing.T) {
				rng := rand.New(rand.NewSource(11))
				g := randomGraph(rng, 50, 150)
				x := tensor.RandMatrix(rng, 50, 5, 1)
				model := buildModel(rng, "SAGE", 5, kind)
				e, err := New(model, g, x, nil, opt)
				if err != nil {
					t.Fatal(err)
				}
				delta := graph.RandomDelta(rng, e.Graph(), 10)
				if err := e.Update(delta); err != nil {
					t.Fatal(err)
				}
				checkEquivalence(t, e, x, kind, name)
			})
		}
	}
}

func TestUpdateRejectsInvalidDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(rng, 20, 40)
	x := tensor.RandMatrix(rng, 20, 4, 1)
	model := buildModel(rng, "GCN", 4, gnn.AggMax)
	e, err := New(model, g, x, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := e.State().Clone()
	edges := g.NumEdges()
	bad := graph.Delta{{U: 0, V: 0, Insert: true}}
	if err := e.Update(bad); err == nil {
		t.Fatal("self-loop delta accepted")
	}
	if e.Graph().NumEdges() != edges || !e.State().Equal(before) {
		t.Error("failed update mutated state")
	}
}

func TestEngineRejectsExactNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := randomGraph(rng, 10, 20)
	x := tensor.RandMatrix(rng, 10, 4, 1)
	model := gnn.NewGCN(rng, 4, 4, gnn.NewAggregator(gnn.AggMean))
	model.Norms = []*gnn.GraphNorm{gnn.NewGraphNorm(4), nil}
	if _, err := New(model, g, x, nil, Options{}); err == nil {
		t.Fatal("exact-mode norm must be rejected")
	}
	// Frozen norm is accepted and stays equivalent.
	s, err := gnn.Infer(model, g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	model.Norms[0].Freeze(s.H[1])
	e, err := New(model, g, x, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	delta := graph.RandomDelta(rng, e.Graph(), 4)
	if err := e.Update(delta); err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, e, x, gnn.AggMean, "frozen-norm")
}

func TestNewFromStateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := randomGraph(rng, 10, 20)
	model := buildModel(rng, "GCN", 4, gnn.AggMax)
	// Node-count mismatch.
	st := gnn.NewState(model, 9)
	if _, err := NewFromState(model, g, st, nil, Options{}); err == nil {
		t.Error("node count mismatch accepted")
	}
}

func TestVertexUpdateEquivalence(t *testing.T) {
	for _, mname := range allModels {
		for _, kind := range []gnn.AggKind{gnn.AggMax, gnn.AggMean} {
			rng := rand.New(rand.NewSource(17))
			g := randomGraph(rng, 40, 120)
			x := tensor.RandMatrix(rng, 40, 5, 1)
			model := buildModel(rng, mname, 5, kind)
			e, err := New(model, g, x, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			ups := []VertexUpdate{
				{Node: 3, X: tensor.RandVector(rng, 5, 1)},
				{Node: 17, X: tensor.RandVector(rng, 5, 1)},
			}
			if err := e.UpdateVertices(ups); err != nil {
				t.Fatal(err)
			}
			// Reference inference over the updated features.
			x2 := x.Clone()
			x2.SetRow(3, ups[0].X)
			x2.SetRow(17, ups[1].X)
			checkEquivalence(t, e, x2, kind, mname+"/vertex/"+kind.String())
		}
	}
}

func TestCombinedEdgeAndVertexBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := randomGraph(rng, 30, 90)
	x := tensor.RandMatrix(rng, 30, 4, 1)
	model := buildModel(rng, "SAGE", 4, gnn.AggMax)
	e, err := New(model, g, x, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	delta := graph.RandomDelta(rng, e.Graph(), 6)
	ups := []VertexUpdate{{Node: 5, X: tensor.RandVector(rng, 4, 1)}}
	if err := e.Apply(delta, ups); err != nil {
		t.Fatal(err)
	}
	x2 := x.Clone()
	x2.SetRow(5, ups[0].X)
	checkEquivalence(t, e, x2, gnn.AggMax, "combined")
}

func TestVertexUpdateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomGraph(rng, 10, 20)
	x := tensor.RandMatrix(rng, 10, 4, 1)
	e, err := New(buildModel(rng, "GCN", 4, gnn.AggMax), g, x, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]VertexUpdate{
		"bad-node":  {{Node: 99, X: tensor.NewVector(4)}},
		"bad-dim":   {{Node: 1, X: tensor.NewVector(3)}},
		"duplicate": {{Node: 1, X: tensor.NewVector(4)}, {Node: 1, X: tensor.NewVector(4)}},
	}
	for name, ups := range cases {
		if err := e.UpdateVertices(ups); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestAddNodeThenConnect(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(rng, 20, 50)
	x := tensor.RandMatrix(rng, 20, 4, 1)
	model := buildModel(rng, "GIN", 4, gnn.AggMax)
	e, err := New(model, g, x, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feat := tensor.RandVector(rng, 4, 1)
	id, err := e.AddNode(feat)
	if err != nil {
		t.Fatal(err)
	}
	if int(id) != 20 || e.Graph().NumNodes() != 21 || e.State().NumNodes() != 21 {
		t.Fatalf("AddNode bookkeeping: id=%d nodes=%d state=%d", id, e.Graph().NumNodes(), e.State().NumNodes())
	}
	if _, err := e.AddNode(tensor.NewVector(3)); err == nil {
		t.Error("wrong feature dim accepted")
	}
	// Connect the new node and verify equivalence.
	delta := graph.Delta{{U: id, V: 2, Insert: true}, {U: id, V: 7, Insert: true}}
	if err := e.Update(delta); err != nil {
		t.Fatal(err)
	}
	x2 := tensor.NewMatrix(21, 4)
	copy(x2.Data[:len(x.Data)], x.Data)
	x2.SetRow(20, feat)
	checkEquivalence(t, e, x2, gnn.AggMax, "add-node")
}

func TestStatsAndCountersPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	g := randomGraph(rng, 60, 200)
	x := tensor.RandMatrix(rng, 60, 5, 1)
	var c metrics.Counters
	e, err := New(buildModel(rng, "GCN", 5, gnn.AggMax), g, x, &c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Update(graph.RandomDelta(rng, e.Graph(), 10)); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Total() == 0 {
		t.Error("no condition stats recorded")
	}
	snap := c.Snapshot()
	if snap.EventsProcessed == 0 || snap.NodesVisited == 0 || snap.BytesFetched == 0 {
		t.Errorf("counters empty: %v", snap)
	}
	e.ResetStats()
	if e.Stats().Total() != 0 {
		t.Error("ResetStats failed")
	}
}

// Monotonic pruning must visit no more nodes than the ablated engine, and
// both must agree with recomputation.
func TestPruningReducesVisits(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	g := randomGraph(rng, 200, 800)
	x := tensor.RandMatrix(rng, 200, 6, 1)
	delta := graph.RandomDelta(rng, g, 10)

	run := func(opts Options) (int64, *Engine) {
		rng2 := rand.New(rand.NewSource(99))
		model := buildModel(rng2, "GCN", 6, gnn.AggMax)
		var c metrics.Counters
		e, err := New(model, g.Clone(), x, &c, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Update(append(graph.Delta(nil), delta...)); err != nil {
			t.Fatal(err)
		}
		return c.Snapshot().NodesVisited, e
	}
	pruned, ep := run(Options{})
	unpruned, eu := run(Options{DisablePruning: true})
	if pruned > unpruned {
		t.Errorf("pruning increased visits: %d > %d", pruned, unpruned)
	}
	if !ep.State().Equal(eu.State()) {
		t.Error("pruned and unpruned engines disagree")
	}
}

// The engine is deterministic for a fixed seed and option set.
func TestUpdateDeterministic(t *testing.T) {
	build := func() *Engine {
		rng := rand.New(rand.NewSource(31))
		g := randomGraph(rng, 50, 150)
		x := tensor.RandMatrix(rng, 50, 5, 1)
		e, err := New(buildModel(rng, "SAGE", 5, gnn.AggMax), g, x, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Update(graph.RandomDelta(rand.New(rand.NewSource(5)), e.Graph(), 10)); err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := build(), build()
	if !a.State().Equal(b.State()) {
		t.Error("engine not deterministic")
	}
}
