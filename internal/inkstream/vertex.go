package inkstream

import (
	"fmt"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// VertexUpdate replaces the input feature vector of one node (Sec. II-F).
type VertexUpdate struct {
	Node graph.NodeID
	X    tensor.Vector
}

func (e *Engine) validateVertexUpdates(ups []VertexUpdate) error {
	if len(ups) == 0 {
		return nil
	}
	seen := make(map[graph.NodeID]struct{}, len(ups))
	for i, up := range ups {
		if int(up.Node) < 0 || int(up.Node) >= e.g.NumNodes() {
			return fmt.Errorf("inkstream: vertex update %d: %w (%d)", i, graph.ErrBadNode, up.Node)
		}
		if len(up.X) != e.model.InDim() {
			return fmt.Errorf("inkstream: vertex update %d: feature dim %d, model wants %d", i, len(up.X), e.model.InDim())
		}
		if _, dup := seen[up.Node]; dup {
			return fmt.Errorf("inkstream: vertex update %d: node %d updated twice in one batch", i, up.Node)
		}
		seen[up.Node] = struct{}{}
	}
	return nil
}

// applyVertexUpdates writes the new features, refreshes the first-layer
// messages, and produces the initial layer-0 events: the effect of a new
// feature x_u is the replacement of m_{1,u} in the paper's 1-based
// numbering — here m_0 — propagated to u's neighbors and, for
// self-dependent first layers, to u itself via the hooks.
func (e *Engine) applyVertexUpdates(ups []VertexUpdate) ([]Event, []UserEvent) {
	if len(ups) == 0 {
		return nil, nil
	}
	layer0 := e.model.Layers[0]
	// Build the initial events directly in the carried-event buffers; the
	// layer loop consumes them into the grouper before processLayer reuses
	// the same buffers for its output.
	evts, uevts := e.evBuf[:0], e.uevBuf[:0]
	for _, up := range ups {
		e.state.H[0].SetRow(int(up.Node), up.X)
		mRow := e.state.M[0].Row(int(up.Node))
		oldM := e.arena.clone(mRow)
		layer0.ComputeMessage(mRow, up.X)
		gnn.CountMessage(e.c, layer0)
		if oldM.Equal(mRow) {
			continue
		}
		evts = e.fanOut(up.Node, layer0.Agg(), oldM, mRow, evts)
		uevts = append(uevts, e.hooks.Propagate(-1, up.Node, oldM, mRow)...)
	}
	e.evBuf, e.uevBuf = evts, uevts
	return evts, uevts
}

// AddNode grows the graph and every cached matrix by one isolated vertex
// with feature x, returning its ID. The new node's checkpoints are
// computed layer by layer (its neighborhood is empty, so α is the zero
// vector at every layer). Connect it afterwards with Update and inserted
// edges. Must not be called concurrently with Apply.
func (e *Engine) AddNode(x tensor.Vector) (graph.NodeID, error) {
	if e.partLocal != nil {
		// The partition map is fixed at deployment build time; growing the
		// vertex space would leave the new node unowned.
		return 0, errPartitioned
	}
	if len(x) != e.model.InDim() {
		return 0, fmt.Errorf("inkstream: AddNode feature dim %d, model wants %d", len(x), e.model.InDim())
	}
	id := e.g.AddNode()
	e.gr.ensure(e.g.NumNodes())
	s := e.state
	s.H[0].AppendRow(x)
	h := x
	for l, layer := range e.model.Layers {
		m := make(tensor.Vector, layer.MsgDim())
		layer.ComputeMessage(m, h)
		s.M[l].AppendRow(m)
		alpha := make(tensor.Vector, layer.MsgDim())
		layer.Agg().Identity(alpha)
		layer.Agg().Finalize(alpha, 0)
		s.Alpha[l].AppendRow(alpha)
		next := make(tensor.Vector, layer.OutDim())
		layer.Update(next, alpha, m)
		if n := e.model.Norm(l); n != nil {
			n.ApplyRow(next)
		}
		s.H[l+1].AppendRow(next)
		h = next
	}
	e.markDirty(id)
	return id, nil
}
