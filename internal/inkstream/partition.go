package inkstream

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// This file is the partition-aware face of the engine: the shard-side half
// of partitioned multi-engine serving (internal/shard, DESIGN.md §11).
//
// In partitioned mode one engine owns a subset of the vertices. It holds
// full-size state matrices, but only the rows of local vertices are
// authoritative; message rows of remote vertices are ghost rows, refreshed
// from broadcast message-change records at the start of every layer. The
// engine never fans events out itself — processTarget captures a
// MessageChange record per affected source instead, the router merges the
// records of all shards in node order, and every shard regenerates the
// fan-out over its own in-arcs (RoundLayer). Because a shard graph holds
// every in-arc of every local vertex, the regenerated per-target event
// sequence is exactly the single-engine sequence restricted to local
// targets, in the same arrival order — which is what makes N-shard results
// bit-exact against a 1-shard run (see DESIGN.md §11.3).

var errPartitioned = errors.New("inkstream: engine is in partitioned mode; use BeginRound/RoundLayer/FinishRound via the shard router")

// RoundStageStats is one shard's self-measured slice of one round stage,
// read by the router after the stage barrier (the WaitGroup join orders the
// write before the read). Ghost is the ghost-row refresh portion of a
// RoundLayer call; Events the native events the stage staged locally.
type RoundStageStats struct {
	GhostRows int
	Events    int
	Ghost     time.Duration
	// Boundary/Interior split one RoundLayerBoundary+RoundLayerInterior
	// pair's compute time into the part that produced outgoing records and
	// the part overlapped with the exchange (both zero for plain
	// RoundLayer calls). BoundaryTargets counts the groups processed in the
	// boundary phase.
	Boundary        time.Duration
	Interior        time.Duration
	BoundaryTargets int
}

// SetRoundTiming toggles the per-stage profiler hooks. Not safe to call
// concurrently with rounds.
func (e *Engine) SetRoundTiming(on bool) { e.roundTiming = on }

// LastStageStats returns the stats of the most recent BeginRound/RoundLayer
// call (zero when timing is off).
func (e *Engine) LastStageStats() RoundStageStats { return e.lastStage }

// MessageChange records that node Node's layer-(l+1) message changed from
// Old to New while processing layer l (or its layer-0 message, for a
// vertex-feature update). Old points into the emitting engine's arena and
// New into its live message matrix: both are stable until that engine's
// next BeginRound, so receivers must consume records within the same round
// (the router's layer barrier guarantees this).
type MessageChange struct {
	Node graph.NodeID
	Old  tensor.Vector
	New  tensor.Vector
}

// SetPartitionLocal switches the engine into partitioned mode: local[v]
// reports whether this engine owns vertex v. The engine's graph must
// already be the shard graph (every in-arc of every local vertex, nothing
// else — graph.Partition.ShardGraph builds it). Passing nil returns the
// engine to standalone mode. Not safe to call concurrently with rounds.
func (e *Engine) SetPartitionLocal(local []bool) error {
	if local != nil && len(local) != e.g.NumNodes() {
		return fmt.Errorf("inkstream: partition mask for %d nodes, graph has %d", len(local), e.g.NumNodes())
	}
	if e.partActive {
		return errors.New("inkstream: cannot change partition mask mid-round")
	}
	e.partLocal = local
	return nil
}

// BeginRound opens one update round: it validates and applies this shard's
// sub-batch (directed edge changes whose destinations are local, plus
// feature updates of local vertices) and returns the layer-0 message-change
// records produced by the feature updates, in sub-batch order. On
// validation error nothing is mutated and the round stays closed.
//
// The returned slice is engine-owned scratch, valid until the next call
// into this engine; callers that aggregate records across shards must copy
// the elements out (the structs, not the payloads — payloads stay valid for
// the round).
func (e *Engine) BeginRound(delta graph.Delta, vups []VertexUpdate) ([]MessageChange, error) {
	if e.partLocal == nil {
		return nil, errors.New("inkstream: BeginRound requires partitioned mode (SetPartitionLocal)")
	}
	if e.partActive {
		return nil, errors.New("inkstream: BeginRound with a round already open")
	}
	if err := delta.Validate(e.g); err != nil {
		return nil, err
	}
	if err := e.validateVertexUpdates(vups); err != nil {
		return nil, err
	}
	for i, up := range vups {
		if !e.partLocal[up.Node] {
			return nil, fmt.Errorf("inkstream: vertex update %d targets remote node %d", i, up.Node)
		}
	}

	// Same staging as Apply: rewind the payload arena, snapshot the
	// pre-round messages of removed-arc sources (ghost rows included —
	// they still hold last round's values here), index inserted arcs and
	// in-degree deltas, then mutate the shard graph.
	e.arena.reset()
	e.partOld = e.snapshotRemovedSources(delta)
	e.indexDeltaArcs(delta)
	if err := delta.Apply(e.g); err != nil {
		return nil, err // unreachable after Validate, but fail safe
	}
	e.partDelta = delta
	e.partActive = true

	recs, carU := e.applyVertexUpdatesCapture(vups)
	e.partCarU = carU
	if e.roundTiming {
		e.lastStage = RoundStageStats{Events: len(recs)}
	}
	return recs, nil
}

// RoundLayer runs layer l of the open round. recs must be the node-sorted
// union of every shard's records for this layer: the layer-0 records
// returned by BeginRound (for l == 0) or the records returned by the
// previous RoundLayer (for l > 0). It refreshes ghost message rows from
// remote records, regenerates the layer's event list (changed-edge events
// in sub-batch order, then record fan-out in node order — the single-engine
// arrival order restricted to local targets), processes the layer, and
// returns this shard's records for the next layer, sorted by node.
// The returned slice is engine-owned scratch (see BeginRound).
func (e *Engine) RoundLayer(l int, recs []MessageChange) ([]MessageChange, error) {
	groups, err := e.stageRoundLayer(l, recs)
	if err != nil {
		return nil, err
	}
	e.partRecOut = e.partRecOut[:0]
	_, carU := e.processLayer(l, groups)
	e.partCarU = carU
	return e.partRecOut, nil
}

// stageRoundLayer is the shared prologue of RoundLayer and
// RoundLayerBoundary: validate, refresh ghost rows from remote records,
// regenerate the layer's native event list and group it. The returned
// groups are sorted by target (except under DisableGrouping, which keeps
// arrival order — one group per event).
func (e *Engine) stageRoundLayer(l int, recs []MessageChange) ([]*group, error) {
	if !e.partActive {
		return nil, errors.New("inkstream: RoundLayer without an open round")
	}
	if e.partSplitOpen {
		return nil, errors.New("inkstream: previous layer's interior phase still pending (RoundLayerInterior)")
	}
	if l < 0 || l >= e.model.NumLayers() {
		return nil, fmt.Errorf("inkstream: RoundLayer layer %d out of range [0,%d)", l, e.model.NumLayers())
	}

	// Ghost refresh: adopt the remote shards' message changes before any
	// event references M[l]. Local records are this engine's own rows —
	// already current.
	var ghostStart time.Time
	if e.roundTiming {
		ghostStart = time.Now()
	}
	ghosts := 0
	for _, r := range recs {
		if e.partLocal[r.Node] {
			continue
		}
		e.state.M[l].SetRow(int(r.Node), r.New)
		e.c.StoreVec(len(r.New))
		ghosts++
	}
	if e.roundTiming {
		e.lastStage = RoundStageStats{GhostRows: ghosts, Ghost: time.Since(ghostStart)}
	}

	// Stage the layer's native event list exactly as Apply does: changed-
	// edge events first, then the fan-out of this layer's message changes.
	e.routeN = e.appendChangedEdgeEvents(e.routeN[:0], l, e.partDelta, e.partOld)
	e.routeN = e.regenFanOut(e.routeN, l, recs)
	carriedUser := e.partCarU

	dim := e.model.Layers[l].MsgDim()
	var groups []*group
	if S := e.shardCount(len(e.routeN) + len(carriedUser)); S > 1 {
		e.gr.beginSharded(dim, S)
		groups = e.gr.groupSharded(e.routeN, carriedUser, e.hooks)
	} else {
		e.gr.begin(dim)
		for _, ev := range e.routeN {
			e.gr.addNative(ev)
		}
		for _, ev := range carriedUser {
			e.gr.addUser(ev)
		}
		groups = e.gr.finish(e.hooks)
	}
	if e.roundTiming {
		e.lastStage.Events = len(e.routeN) + len(carriedUser)
	}
	return groups, nil
}

// SetPartitionBoundary installs the boundary mask for split-layer rounds:
// boundary[v] marks a local vertex with at least one remote subscriber, i.e.
// a vertex whose message-change records other shards consume. The router
// derives the mask from its subscription tables and refreshes it between
// rounds when arc changes move the cut. Passing nil disables the split
// (RoundLayerBoundary then processes every target in the boundary phase).
// Not safe to call concurrently with rounds.
func (e *Engine) SetPartitionBoundary(boundary []bool) error {
	if boundary != nil && len(boundary) != e.g.NumNodes() {
		return fmt.Errorf("inkstream: boundary mask for %d nodes, graph has %d", len(boundary), e.g.NumNodes())
	}
	if e.partActive {
		return errors.New("inkstream: cannot change boundary mask mid-round")
	}
	e.partBoundary = boundary
	return nil
}

// RoundLayerBoundary runs the boundary phase of layer l: the same staging as
// RoundLayer, then the compute of only the targets whose records other
// shards are waiting for. It returns those records immediately — sorted by
// node, engine-owned, stable until this engine's next stageRoundLayer — so
// the router can start the cross-shard exchange while RoundLayerInterior
// finishes the rest of the layer. Splitting a layer never changes values:
// grouped targets are independent within a layer (layer-l processing reads
// M[l]/Alpha[l] and writes only per-target H[l+1]/M[l+1] rows), so only the
// schedule moves. Under DisableGrouping the group list is in arrival order
// rather than target order, so the split is disabled and the whole layer
// runs in the boundary phase.
func (e *Engine) RoundLayerBoundary(l int, recs []MessageChange) ([]MessageChange, error) {
	groups, err := e.stageRoundLayer(l, recs)
	if err != nil {
		return nil, err
	}

	split := len(groups)
	if e.partBoundary != nil && !e.opts.DisableGrouping {
		// Stable-partition boundary targets first. Both halves stay sorted
		// by target, so RoundLayerInterior can reconstruct the global target
		// order with a two-way merge.
		e.partGroups = e.partGroups[:0]
		for _, g := range groups {
			if e.partBoundary[g.target] {
				e.partGroups = append(e.partGroups, g)
			}
		}
		split = len(e.partGroups)
		for _, g := range groups {
			if !e.partBoundary[g.target] {
				e.partGroups = append(e.partGroups, g)
			}
		}
		groups = e.partGroups
	}

	var t0 time.Time
	if e.roundTiming {
		t0 = time.Now()
	}
	e.partRecOut = e.partRecOut[:0]
	e.processRange(l, groups, 0, split)
	if e.roundTiming {
		e.lastStage.Boundary = time.Since(t0)
		e.lastStage.BoundaryTargets = split
	}
	e.partGroups, e.partSplit, e.partLayer = groups, split, l
	e.partSplitOpen = true
	return e.partRecOut, nil
}

// RoundLayerInterior finishes the layer RoundLayerBoundary opened: it
// computes the interior targets (whose records no other shard consumes
// before the next layer barrier) and returns their records, sorted by node.
// The interior phase appends to a separate buffer — the boundary slice may
// still be in the router's hands — so the two returned slices never share
// backing storage within a layer.
func (e *Engine) RoundLayerInterior() ([]MessageChange, error) {
	if !e.partActive || !e.partSplitOpen {
		return nil, errors.New("inkstream: RoundLayerInterior without an open boundary phase")
	}
	groups, split, l := e.partGroups, e.partSplit, e.partLayer

	var t0 time.Time
	if e.roundTiming {
		t0 = time.Now()
	}
	boundaryRecs := e.partRecOut
	e.partRecOut = e.partRecB[:0]
	e.processRange(l, groups, split, len(groups))
	e.partRecB = e.partRecOut
	interiorRecs := e.partRecOut
	e.partRecOut = boundaryRecs
	if e.roundTiming {
		e.lastStage.Interior = time.Since(t0)
	}

	// Merge the carried user events of the two phases back into global
	// target order (each phase's slots are target-sorted runs), so the next
	// layer sees exactly the event order an unsplit layer produces.
	uev := e.uevBuf[:0]
	i, j := 0, split
	for i < split && j < len(groups) {
		if groups[i].target < groups[j].target {
			uev = append(uev, e.outU[i]...)
			i++
		} else {
			uev = append(uev, e.outU[j]...)
			j++
		}
	}
	for ; i < split; i++ {
		uev = append(uev, e.outU[i]...)
	}
	for ; j < len(groups); j++ {
		uev = append(uev, e.outU[j]...)
	}
	e.uevBuf = uev
	e.partCarU = uev
	e.partSplitOpen = false
	return interiorRecs, nil
}

// processRange runs processTarget over groups[lo:hi] (parallel unless the
// engine is sequential) and merges that range's records into partRecOut and
// its conditions into the stats. Carried events stay in the per-slot outU
// buffers for the caller to merge in target order once both phases ran.
func (e *Engine) processRange(l int, groups []*group, lo, hi int) {
	n := len(groups)
	for len(e.outN) < n {
		e.outN = append(e.outN, nil)
		e.outU = append(e.outU, nil)
		e.outR = append(e.outR, nil)
	}
	if cap(e.conds) < n {
		e.conds = make([]Condition, n)
		e.dirt = make([]bool, n)
	}
	conds, dirt := e.conds[:n], e.dirt[:n]
	outN, outU, outR := e.outN, e.outU, e.outR
	body := func(lo, hi int) {
		sc := e.getScratch(l)
		for i := lo; i < hi; i++ {
			outN[i], outU[i], outR[i], conds[i], dirt[i] = e.processTarget(l, groups[i], sc, outN[i][:0], outU[i][:0], outR[i][:0])
		}
		e.scratchPools[l].Put(sc)
	}
	if e.opts.Sequential || e.opts.DisableGrouping {
		body(lo, hi)
	} else {
		tensor.ParallelForGrain(hi-lo, 4*e.model.Layers[l].MsgDim(), func(a, b int) { body(lo+a, lo+b) })
	}
	for i := lo; i < hi; i++ {
		e.partRecOut = append(e.partRecOut, outR[i]...)
		e.stats.Add(conds[i])
		e.layerStats[l].Add(conds[i])
		if dirt[i] {
			e.markDirty(groups[i].target)
		}
		if e.opts.Trace != nil {
			e.opts.Trace(l, groups[i].target, conds[i])
		}
	}
}

// HasCarriedRoundEvents reports whether the open round is carrying user-hook
// events into its next layer. The router's idle-shard check reads it between
// layer barriers: a shard with an empty sub-batch, an empty delivery list AND
// no carried events has provably nothing to do in the next RoundLayer call,
// so the router skips the call entirely.
func (e *Engine) HasCarriedRoundEvents() bool { return len(e.partCarU) > 0 }

// MessageRow returns the engine's live layer-l message row of vertex v. The
// slice aliases engine state: callers copy it out before the engine runs
// again. The router uses it to hydrate a ghost row on the shard that just
// subscribed to v (a cut arc appeared where none existed).
func (e *Engine) MessageRow(l int, v graph.NodeID) (tensor.Vector, error) {
	if l < 0 || l >= e.model.NumLayers() {
		return nil, fmt.Errorf("inkstream: MessageRow layer %d out of range [0,%d)", l, e.model.NumLayers())
	}
	if int(v) >= e.g.NumNodes() {
		return nil, fmt.Errorf("inkstream: MessageRow node %d out of range", v)
	}
	return e.state.M[l].Row(int(v)), nil
}

// SetGhostMessageRow overwrites the ghost layer-l message row of remote
// vertex v — subscription hydration: a shard that starts consuming v's
// records mid-stream must first adopt v's current message, exactly as the
// bootstrap seeded every ghost row. Only legal between rounds and only for
// remote vertices (local rows are authoritative).
func (e *Engine) SetGhostMessageRow(l int, v graph.NodeID, row tensor.Vector) error {
	if e.partLocal == nil {
		return errors.New("inkstream: SetGhostMessageRow requires partitioned mode")
	}
	if e.partActive {
		return errors.New("inkstream: SetGhostMessageRow mid-round")
	}
	if l < 0 || l >= e.model.NumLayers() {
		return fmt.Errorf("inkstream: SetGhostMessageRow layer %d out of range [0,%d)", l, e.model.NumLayers())
	}
	if int(v) >= len(e.partLocal) {
		return fmt.Errorf("inkstream: SetGhostMessageRow node %d out of range", v)
	}
	if e.partLocal[v] {
		return fmt.Errorf("inkstream: SetGhostMessageRow on local node %d (row is authoritative)", v)
	}
	e.state.M[l].SetRow(int(v), row)
	return nil
}

// FinishRound closes the open round. The caller publishes a snapshot
// afterwards (PublishSnapshot) so readers see the round's effects.
func (e *Engine) FinishRound() error {
	if !e.partActive {
		return errors.New("inkstream: FinishRound without an open round")
	}
	if e.partSplitOpen {
		return errors.New("inkstream: FinishRound with a boundary phase still open (RoundLayerInterior)")
	}
	e.partActive = false
	e.partDelta = nil
	e.partOld = nil
	e.partCarU = nil
	e.snap.applied++
	if e.roundTiming {
		e.lastStage = RoundStageStats{}
	}
	return nil
}

// regenFanOut regenerates the layer-l events of the round's message-change
// records over this shard's arcs: for each record in node order, events to
// the source's local out-neighbors, skipping arcs inserted this round
// (their changed-edge events already carry the new message). This mirrors
// Engine.fanOut with the record standing in for the in-process source: the
// payloads are rebuilt locally (old-message clone, ghost-row new message,
// locally computed diff), so cross-shard records are read exactly once.
func (e *Engine) regenFanOut(evts []Event, l int, recs []MessageChange) []Event {
	agg := e.model.Layers[l].Agg()
	for _, r := range recs {
		nbrs := e.g.OutNeighbors(r.Node)
		if len(nbrs) == 0 {
			continue
		}
		newM := e.state.M[l].Row(int(r.Node))
		if agg.Monotonic() {
			oldM := e.arena.clone(r.Old)
			evts = slices.Grow(evts, 2*len(nbrs))
			for _, v := range nbrs {
				if _, skip := e.insArcs[[2]graph.NodeID{r.Node, v}]; skip {
					continue
				}
				e.c.FetchVec(2 * len(newM))
				evts = append(evts,
					Event{Op: OpDel, Target: v, Payload: e.payload(oldM)},
					Event{Op: OpAdd, Target: v, Payload: e.payload(newM)})
			}
		} else {
			// The diff is bitwise identical on every shard (same Old/New
			// bits, same elementwise subtraction), so accumulative sums see
			// the exact payloads a single engine would.
			diff := e.arena.alloc(len(newM))
			tensor.Sub(diff, newM, r.Old)
			evts = slices.Grow(evts, len(nbrs))
			for _, v := range nbrs {
				if _, skip := e.insArcs[[2]graph.NodeID{r.Node, v}]; skip {
					continue
				}
				e.c.FetchVec(len(diff))
				evts = append(evts, Event{Op: OpUpdate, Target: v, Payload: e.payload(diff)})
			}
		}
	}
	return evts
}

// applyVertexUpdatesCapture is applyVertexUpdates for partitioned mode:
// instead of fanning layer-0 events out it captures one MessageChange per
// feature update whose message actually changed, in sub-batch order (the
// router sorts round updates by node, so this is node order).
func (e *Engine) applyVertexUpdatesCapture(ups []VertexUpdate) ([]MessageChange, []UserEvent) {
	if len(ups) == 0 {
		return nil, nil
	}
	layer0 := e.model.Layers[0]
	e.partRecOut = e.partRecOut[:0]
	uevts := e.uevBuf[:0]
	for _, up := range ups {
		e.state.H[0].SetRow(int(up.Node), up.X)
		mRow := e.state.M[0].Row(int(up.Node))
		oldM := e.arena.clone(mRow)
		layer0.ComputeMessage(mRow, up.X)
		gnn.CountMessage(e.c, layer0)
		if oldM.Equal(mRow) {
			continue
		}
		e.partRecOut = append(e.partRecOut, MessageChange{Node: up.Node, Old: oldM, New: mRow})
		uevts = append(uevts, e.hooks.Propagate(-1, up.Node, oldM, mRow)...)
	}
	e.uevBuf = uevts
	return e.partRecOut, uevts
}

// indexDeltaArcs records which arcs this batch inserts (propagation from
// an affected source skips them — the changed-edge event carries the new
// message already) and per-node in-degree deltas (the mean aggregator's
// incremental formula needs the previous degree). The maps are created on
// the first non-empty delta and cleared in place afterwards; vertex-only
// batches never pay for them. Shared by Apply and BeginRound.
func (e *Engine) indexDeltaArcs(delta graph.Delta) {
	if len(e.insArcs) > 0 {
		clear(e.insArcs)
	}
	if len(e.degDelta) > 0 {
		clear(e.degDelta)
	}
	if len(delta) == 0 {
		return
	}
	if e.insArcs == nil {
		e.insArcs = make(map[[2]graph.NodeID]struct{})
		e.degDelta = make(map[graph.NodeID]int)
	}
	for _, ch := range delta {
		arcs, na := e.arcsOf(ch)
		for _, a := range arcs[:na] {
			if ch.Insert {
				e.insArcs[a] = struct{}{}
				e.degDelta[a[1]]++
			} else {
				e.degDelta[a[1]]--
			}
		}
	}
}
