package inkstream

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// group collects every event heading to one target node in one layer
// (Sec. II-B1). Monotonic layers keep the raw Del/Add payload lists (the
// reset-condition check needs them reduced but the recompute fallback does
// not); accumulative layers are reduced on the fly into a running sum.
type group struct {
	target graph.NodeID
	// Monotonic payloads.
	dels, adds []tensor.Vector
	// Accumulative running sum; nil until the first OpUpdate event. nUpd
	// counts the folded OpUpdate events. sumBuf retains the allocation
	// across epochs.
	sum    tensor.Vector
	sumBuf tensor.Vector
	nUpd   int
	// User events routed to hooks.
	user []UserEvent
}

// reset clears a recycled group for a new target, keeping slice capacity.
func (g *group) reset(target graph.NodeID) {
	g.target = target
	g.dels = g.dels[:0]
	g.adds = g.adds[:0]
	g.sum = nil
	g.nUpd = 0
	g.user = g.user[:0]
}

// ensureSum activates the zeroed running sum of dimension dim, reusing the
// retained buffer when it fits.
func (g *group) ensureSum(dim int) {
	if cap(g.sumBuf) < dim {
		g.sumBuf = make(tensor.Vector, dim)
	}
	g.sum = g.sumBuf[:dim]
	for i := range g.sum {
		g.sum[i] = 0
	}
}

// hasNative reports whether any native (non-user) event targeted the node.
func (g *group) hasNative() bool {
	return len(g.dels) > 0 || len(g.adds) > 0 || g.sum != nil
}

// gshard is one shard of the grouping table: a private freelist of group
// structs plus the count of entries live this epoch. In sequential routing
// only shard 0 is used; in sharded routing each shard owns a contiguous
// block of target IDs, and the worker processing a shard is the only
// goroutine that ever touches its freelist (or the stamp/idx entries of its
// targets) — no cross-shard writes, no locks.
type gshard struct {
	groups []*group // freelist; groups[:used] are live this epoch
	used   int
}

// grouper performs the grouping pass: it buckets a layer's event list by
// target node and reduces per-target where possible. It is an engine-owned
// epoch-stamped table: the per-node stamp/idx arrays are reused across
// layers and Apply calls without clearing (the stamp distinguishes epochs),
// and group structs — including their payload-slice and sum-buffer capacity
// — are recycled from per-shard freelists, so steady-state grouping does
// not allocate and involves no map operations. Grouping is the per-event
// hot path; large epochs route in parallel via groupSharded, small ones
// sequentially through addNative/addUser + finish.
type grouper struct {
	stamp []uint32
	idx   []int32
	epoch uint32

	// shards hold the per-target groups. Targets map to shards by ID block:
	// target>>shift is the owning shard, a partition chosen per epoch so the
	// shard order IS the target order (concatenating per-shard sorted groups
	// yields the globally sorted order the engine's determinism relies on).
	shards  []gshard
	nShards int  // shards active this epoch (1 = sequential routing)
	shift   uint // target >> shift == owning shard this epoch
	dim     int

	// Sharded-mode scratch, reused across epochs.
	out              []*group // concatenated sorted groups
	shardOf          []uint8  // per-event owner (partition pass 1)
	counts           []int32  // per-chunk per-shard counts, then cursors
	permN, permU     []int32  // stable per-shard event orderings
	boundsN, boundsU []int32  // shard region offsets into permN/permU
}

func newGrouper(n int) *grouper {
	return &grouper{
		stamp:  make([]uint32, n),
		idx:    make([]int32, n),
		shards: make([]gshard, 1),
	}
}

// begin opens a new sequential epoch for a layer whose messages have the
// given dimension.
func (gr *grouper) begin(dim int) {
	gr.epoch++
	gr.dim = dim
	gr.nShards = 1
	for s := range gr.shards {
		gr.shards[s].used = 0
	}
}

// beginSharded opens a new epoch routed across S shards. The shard of a
// target is target>>shift with shift chosen so the shard index stays below
// S: a power-of-two block partition of the ID space. Blocks are monotonic
// in target ID, which is what lets finishSharded produce the global sorted
// order by concatenation; the price is up-to-2× shard-size imbalance, which
// the 2×-workers shard count (see Engine.shardCount) absorbs.
func (gr *grouper) beginSharded(dim, S int) {
	gr.begin(dim)
	if S < 1 {
		S = 1
	}
	for len(gr.shards) < S {
		gr.shards = append(gr.shards, gshard{})
	}
	gr.nShards = S
	bound := len(gr.stamp)
	shift := uint(0)
	for bound > 1 && (bound-1)>>shift >= S {
		shift++
	}
	gr.shift = shift
}

// ensure grows the per-node tables after AddNode.
func (gr *grouper) ensure(n int) {
	for len(gr.stamp) < n {
		gr.stamp = append(gr.stamp, 0)
		gr.idx = append(gr.idx, 0)
	}
}

// getIn returns target's group in shard sh, creating it from the shard's
// freelist on first sight this epoch. In sharded epochs it must only be
// called by the worker owning sh (stamp/idx entries of sh's targets are
// written by that worker alone).
func (gr *grouper) getIn(sh *gshard, target graph.NodeID) *group {
	if gr.stamp[target] == gr.epoch {
		return sh.groups[gr.idx[target]]
	}
	gr.stamp[target] = gr.epoch
	gr.idx[target] = int32(sh.used)
	var g *group
	if sh.used < len(sh.groups) {
		g = sh.groups[sh.used]
	} else {
		g = &group{}
		sh.groups = append(sh.groups, g)
	}
	sh.used++
	g.reset(target)
	return g
}

// addNativeIn folds one native event into its target's group in sh. For
// OpUpdate the payload is summed immediately — the paper's reduction of
// same-operation events — so the group holds one vector regardless of
// fan-in.
func (gr *grouper) addNativeIn(sh *gshard, e Event) {
	g := gr.getIn(sh, e.Target)
	switch e.Op {
	case OpAdd:
		g.adds = append(g.adds, e.Payload)
	case OpDel:
		g.dels = append(g.dels, e.Payload)
	case OpUpdate:
		if g.sum == nil {
			g.ensureSum(gr.dim)
		}
		tensor.Add(g.sum, g.sum, e.Payload)
		g.nUpd++
	}
}

// addUserIn buckets one user event into sh.
func (gr *grouper) addUserIn(sh *gshard, e UserEvent) {
	g := gr.getIn(sh, e.Target)
	g.user = append(g.user, e)
}

// addNative folds one native event on the sequential path (shard 0).
func (gr *grouper) addNative(e Event) { gr.addNativeIn(&gr.shards[0], e) }

// addUser buckets one user event on the sequential path (shard 0).
func (gr *grouper) addUser(e UserEvent) { gr.addUserIn(&gr.shards[0], e) }

// finish returns the sequential epoch's per-target groups sorted by target
// ID, applying the user-hook reduction. Sorting makes the whole engine
// deterministic for a fixed worker count: groups are processed in chunks
// of this order and their emitted events concatenated in the same order.
func (gr *grouper) finish(hooks UserHooks) []*group {
	sh := &gr.shards[0]
	live := sh.groups[:sh.used]
	sort.Slice(live, func(i, j int) bool { return live[i].target < live[j].target })
	// Re-sync the index array with the sorted freelist order so get()
	// stays coherent if more events arrive within this epoch.
	for i, g := range live {
		gr.idx[g.target] = int32(i)
	}
	for _, g := range live {
		if len(g.user) > 0 {
			g.user = hooks.Reduce(g.target, g.user)
		}
	}
	return live
}

// partChunk is the event-chunk granularity of the partition passes: large
// enough that a chunk's per-shard count row amortises, small enough that a
// typical sharded epoch still yields parallel work.
const partChunk = 4096

// partition computes a stable shard partition of n items: on return,
// perm[bounds[s]:bounds[s+1]] lists the item indices owned by shard s in
// their original order. Two pool passes: pass 1 records every item's owner
// and per-chunk per-shard counts; a sequential prefix sum turns the counts
// into disjoint write cursors; pass 2 scatters the indices. Chunks write
// disjoint count rows and disjoint perm regions, so both passes are
// race-free, and cursors are assigned in chunk order, so the per-shard
// order equals the arrival order — the property that keeps sharded
// grouping bit-exact with sequential grouping.
func (gr *grouper) partition(n int, targetAt func(int) graph.NodeID, perm, bounds []int32) ([]int32, []int32) {
	S := gr.nShards
	nChunks := (n + partChunk - 1) / partChunk
	if cap(perm) < n {
		perm = make([]int32, n)
	}
	perm = perm[:n]
	if cap(bounds) < S+1 {
		bounds = make([]int32, S+1)
	}
	bounds = bounds[:S+1]
	if cap(gr.shardOf) < n {
		gr.shardOf = make([]uint8, n)
	}
	so := gr.shardOf[:n]
	if cap(gr.counts) < nChunks*S {
		gr.counts = make([]int32, nChunks*S)
	}
	counts := gr.counts[:nChunks*S]
	for i := range counts {
		counts[i] = 0
	}
	shift := gr.shift
	tensor.ParallelForGrain(nChunks, partChunk, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			base, end := c*partChunk, (c+1)*partChunk
			if end > n {
				end = n
			}
			cnt := counts[c*S : c*S+S]
			for i := base; i < end; i++ {
				s := uint8(uint32(targetAt(i)) >> shift)
				so[i] = s
				cnt[s]++
			}
		}
	})
	var total int32
	for s := 0; s < S; s++ {
		bounds[s] = total
		for c := 0; c < nChunks; c++ {
			k := c*S + s
			v := counts[k]
			counts[k] = total
			total += v
		}
	}
	bounds[S] = total
	tensor.ParallelForGrain(nChunks, partChunk, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			base, end := c*partChunk, (c+1)*partChunk
			if end > n {
				end = n
			}
			cur := counts[c*S : c*S+S]
			for i := base; i < end; i++ {
				s := so[i]
				perm[cur[s]] = int32(i)
				cur[s]++
			}
		}
	})
	return perm, bounds
}

// groupSharded routes one sharded epoch's native and user events across the
// shards on the tensor worker pool and returns the per-target groups in
// globally sorted target order — the same group order, per-group contents
// and within-group event order the sequential addNative/finish path
// produces, so the two paths are bit-exact (DESIGN.md §9). The user-hook
// reduction runs on the calling goroutine: the UserHooks contract only
// promises concurrency-safety for distinct-target Apply calls.
func (gr *grouper) groupSharded(native []Event, user []UserEvent, hooks UserHooks) []*group {
	S := gr.nShards
	gr.permN, gr.boundsN = gr.partition(len(native),
		func(i int) graph.NodeID { return native[i].Target }, gr.permN, gr.boundsN)
	permN, boundsN := gr.permN, gr.boundsN
	gr.permU, gr.boundsU = gr.partition(len(user),
		func(i int) graph.NodeID { return user[i].Target }, gr.permU, gr.boundsU)
	permU, boundsU := gr.permU, gr.boundsU

	// Per-index grain: one shard's routing cost scales with its share of the
	// events; ~8 element-units per event keeps the MinChunkWork floor from
	// serialising epochs that just cleared the sharding threshold.
	grain := 8 * ((len(native)+len(user))/S + 1)
	tensor.ParallelForGrain(S, grain, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			sh := &gr.shards[s]
			for _, i := range permN[boundsN[s]:boundsN[s+1]] {
				gr.addNativeIn(sh, native[i])
			}
			for _, i := range permU[boundsU[s]:boundsU[s+1]] {
				gr.addUserIn(sh, user[i])
			}
			live := sh.groups[:sh.used]
			sort.Slice(live, func(a, b int) bool { return live[a].target < live[b].target })
		}
	})

	// Shard blocks are monotonic in target ID, so concatenating the sorted
	// shards yields the global sorted order. No idx re-sync: a sharded epoch
	// never receives events after grouping (unlike finish, which stays
	// coherent for intra-epoch re-entry).
	out := gr.out[:0]
	for s := 0; s < S; s++ {
		sh := &gr.shards[s]
		out = append(out, sh.groups[:sh.used]...)
	}
	for _, g := range out {
		if len(g.user) > 0 {
			g.user = hooks.Reduce(g.target, g.user)
		}
	}
	gr.out = out
	return out
}
