package inkstream

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// group collects every event heading to one target node in one layer
// (Sec. II-B1). Monotonic layers keep the raw Del/Add payload lists (the
// reset-condition check needs them reduced but the recompute fallback does
// not); accumulative layers are reduced on the fly into a running sum.
type group struct {
	target graph.NodeID
	// Monotonic payloads.
	dels, adds []tensor.Vector
	// Accumulative running sum; nil until the first OpUpdate event. nUpd
	// counts the folded OpUpdate events. sumBuf retains the allocation
	// across epochs.
	sum    tensor.Vector
	sumBuf tensor.Vector
	nUpd   int
	// User events routed to hooks.
	user []UserEvent
}

// reset clears a recycled group for a new target, keeping slice capacity.
func (g *group) reset(target graph.NodeID) {
	g.target = target
	g.dels = g.dels[:0]
	g.adds = g.adds[:0]
	g.sum = nil
	g.nUpd = 0
	g.user = g.user[:0]
}

// ensureSum activates the zeroed running sum of dimension dim, reusing the
// retained buffer when it fits.
func (g *group) ensureSum(dim int) {
	if cap(g.sumBuf) < dim {
		g.sumBuf = make(tensor.Vector, dim)
	}
	g.sum = g.sumBuf[:dim]
	for i := range g.sum {
		g.sum[i] = 0
	}
}

// hasNative reports whether any native (non-user) event targeted the node.
func (g *group) hasNative() bool {
	return len(g.dels) > 0 || len(g.adds) > 0 || g.sum != nil
}

// grouper performs the grouping pass: it buckets a layer's event list by
// target node and reduces per-target where possible. It is an engine-owned
// epoch-stamped table: the per-node index array is reused across layers
// and Apply calls without clearing (the stamp distinguishes epochs), and
// group structs — including their payload-slice and sum-buffer capacity —
// are recycled from a freelist, so steady-state grouping does not allocate
// and involves no map operations. Grouping is the per-event hot path.
type grouper struct {
	stamp []uint32
	idx   []int32
	epoch uint32

	groups []*group // freelist; groups[:used] are live this epoch
	used   int
	dim    int
}

func newGrouper(n int) *grouper {
	return &grouper{
		stamp: make([]uint32, n),
		idx:   make([]int32, n),
	}
}

// begin opens a new epoch for a layer whose messages have the given
// dimension.
func (gr *grouper) begin(dim int) {
	gr.epoch++
	gr.used = 0
	gr.dim = dim
}

// ensure grows the per-node tables after AddNode.
func (gr *grouper) ensure(n int) {
	for len(gr.stamp) < n {
		gr.stamp = append(gr.stamp, 0)
		gr.idx = append(gr.idx, 0)
	}
}

func (gr *grouper) get(target graph.NodeID) *group {
	if gr.stamp[target] == gr.epoch {
		return gr.groups[gr.idx[target]]
	}
	gr.stamp[target] = gr.epoch
	gr.idx[target] = int32(gr.used)
	var g *group
	if gr.used < len(gr.groups) {
		g = gr.groups[gr.used]
	} else {
		g = &group{}
		gr.groups = append(gr.groups, g)
	}
	gr.used++
	g.reset(target)
	return g
}

// addNative folds one native event into its target's group. For OpUpdate
// the payload is summed immediately — the paper's reduction of same-
// operation events — so the group holds one vector regardless of fan-in.
func (gr *grouper) addNative(e Event) {
	g := gr.get(e.Target)
	switch e.Op {
	case OpAdd:
		g.adds = append(g.adds, e.Payload)
	case OpDel:
		g.dels = append(g.dels, e.Payload)
	case OpUpdate:
		if g.sum == nil {
			g.ensureSum(gr.dim)
		}
		tensor.Add(g.sum, g.sum, e.Payload)
		g.nUpd++
	}
}

// addUser buckets one user event.
func (gr *grouper) addUser(e UserEvent) {
	g := gr.get(e.Target)
	g.user = append(g.user, e)
}

// finish returns the epoch's per-target groups sorted by target ID,
// applying the user-hook reduction. Sorting makes the whole engine
// deterministic for a fixed worker count: groups are processed in chunks
// of this order and their emitted events concatenated in the same order.
func (gr *grouper) finish(hooks UserHooks) []*group {
	live := gr.groups[:gr.used]
	sort.Slice(live, func(i, j int) bool { return live[i].target < live[j].target })
	// Re-sync the index array with the sorted freelist order so get()
	// stays coherent if more events arrive within this epoch.
	for i, g := range live {
		gr.idx[g.target] = int32(i)
	}
	for _, g := range live {
		if len(g.user) > 0 {
			g.user = hooks.Reduce(g.target, g.user)
		}
	}
	return live
}
