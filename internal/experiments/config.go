// Package experiments regenerates every table and figure of the paper's
// evaluation section (Sec. III). Each experiment has a driver returning a
// typed result with a Render method that prints the same rows/series the
// paper reports; cmd/inkbench and the repository-root benchmarks are thin
// wrappers over these drivers.
//
// Absolute numbers differ from the paper (CPU-only Go engine on scaled
// synthetic datasets, see DESIGN.md §1); the experiments reproduce the
// paper's *shape*: method ordering, speedup trends versus ΔG, condition
// distributions and reduction percentages.
package experiments

import (
	"errors"
	"math/rand"
	"time"

	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// Config controls the scale of every experiment.
type Config struct {
	// Datasets selects the dataset profiles; defaults to dataset.All.
	Datasets []dataset.Spec
	// Seed drives graph generation, weights and ΔG scenarios.
	Seed int64
	// ExtraScale further divides every dataset's node/edge counts (>= 1);
	// used by tests and CI-speed benchmark runs.
	ExtraScale int
	// Hidden is the hidden-state dimension for GCN/GraphSAGE (the paper
	// uses 256); GIN uses Hidden/2 (the paper's 64 vs 256 ratio).
	Hidden int
	// Scenarios caps the number of graph-changing scenarios averaged per
	// measurement (the paper uses 100/100/10/10/1 for ΔG=1/10/100/1k/10k).
	Scenarios int
	// GINLayers is the GIN depth (paper: 5).
	GINLayers int
	// Readers is the number of concurrent reader goroutines in the mixed
	// read/write workload (experiment "mixed").
	Readers int
	// MixedUpdates is the number of ΔG batches the mixed workload streams
	// through the server pipeline.
	MixedUpdates int
	// BurstDepth is the pipeline queue depth of the sustained-burst
	// throughput scenario (experiment "burst"): how many single-change
	// updates the pipelined client keeps in flight — the depth the
	// coalescing comparison is measured at.
	BurstDepth int
	// BurstUpdates is the total number of single-change updates the burst
	// scenario pushes through each coalescing mode.
	BurstUpdates int
	// ShardCounts is the deployment sizes the shard-scaling scenario
	// measures (experiment "shards"); the first entry should be 1 so the
	// speedup and bit-exactness columns have a baseline.
	ShardCounts []int
	// PartitionStrategy selects the vertex-placement policy for the
	// shard-scaling scenario ("hash", "block" or "greedy"; "" means hash).
	PartitionStrategy string
	// FullBroadcast disables subscription-filtered delivery in the
	// shard-scaling scenario (the pre-PR8 all-to-all exchange baseline).
	FullBroadcast bool
	// ShardWorkload selects the shard-scaling stream: "crowd" (default —
	// every update touches the flash-crowd hub, the worst case for
	// delivery filtering) or "scatter" (disjoint edge streams spread over
	// the graph, the steady-state case locality partitioning pays off on).
	ShardWorkload string
	// ShardReps repeats each shard-count measurement; the reported point is
	// the median by updates/sec, with the min kept alongside. 1-CPU CI boxes
	// are noisy — a single rep regularly inverts the scaling curve.
	ShardReps int
	// TieredFactors are the working-set multiples of the memory cap the
	// tiered-store sweep (experiment "tiered") serves the embedding
	// footprint at (cap = footprint/factor); a resident baseline point is
	// always run first.
	TieredFactors []int
	// TieredQuant is the on-page encoding for the tiered sweep ("f32",
	// "f16" or "int8"; "" means f32).
	TieredQuant string
	// TieredReadsPerBatch is the number of Zipf-skewed audited reads issued
	// after each published update batch of the tiered sweep.
	TieredReadsPerBatch int
}

// Default returns the standard configuration used by cmd/inkbench.
func Default() Config {
	return Config{
		Datasets:   dataset.All,
		Seed:       1,
		ExtraScale: 1,
		Hidden:     32,
		Scenarios:  3,
		GINLayers:  5,
	}
}

// Quick returns a heavily scaled-down configuration for tests and fast
// benchmark runs.
func Quick() Config {
	c := Default()
	c.ExtraScale = 16
	c.Hidden = 16
	c.Scenarios = 2
	c.GINLayers = 3
	return c
}

func (c Config) normalize() Config {
	if len(c.Datasets) == 0 {
		c.Datasets = dataset.All
	}
	if c.ExtraScale < 1 {
		c.ExtraScale = 1
	}
	if c.Hidden < 4 {
		c.Hidden = 4
	}
	if c.Scenarios < 1 {
		c.Scenarios = 1
	}
	if c.GINLayers < 2 {
		c.GINLayers = 2
	}
	if c.Readers < 1 {
		c.Readers = 4
	}
	if c.MixedUpdates < 1 {
		c.MixedUpdates = 200
	}
	if c.BurstDepth < 1 {
		c.BurstDepth = 8
	}
	if c.BurstUpdates < 1 {
		c.BurstUpdates = 2000
	}
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = []int{1, 2, 4, 8}
	}
	if c.ShardReps < 1 {
		c.ShardReps = 1
	}
	if len(c.TieredFactors) == 0 {
		c.TieredFactors = []int{1, 2, 4, 10}
	}
	if c.TieredReadsPerBatch < 1 {
		c.TieredReadsPerBatch = 32
	}
	return c
}

// scenariosFor returns the number of scenarios averaged for a given ΔG,
// scaling the paper's 100/100/10/10/1 schedule down to the configured cap.
func (c Config) scenariosFor(deltaG int) int {
	paper := 1
	switch {
	case deltaG <= 10:
		paper = 100
	case deltaG <= 100:
		paper = 10
	case deltaG <= 1000:
		paper = 10
	}
	if paper > c.Scenarios {
		return c.Scenarios
	}
	return paper
}

// instance is one generated dataset ready for experiments.
type instance struct {
	Spec dataset.Spec
	G    *graph.Graph
	X    *tensor.Matrix
}

// build generates the scaled graph and features for spec.
func (c Config) build(spec dataset.Spec) instance {
	spec.Scale *= int64(c.ExtraScale)
	if spec.Nodes() < 64 {
		// Keep tiny test-scale graphs meaningful.
		spec.Scale = spec.PaperNodes / 64
		if spec.Scale < 1 {
			spec.Scale = 1
		}
	}
	g, f := dataset.Generate(spec, c.Seed)
	return instance{Spec: spec, G: g, X: f.X}
}

// modelKind names the three benchmark models.
type modelKind string

const (
	modelGCN  modelKind = "GCN"
	modelSAGE modelKind = "GraphSAGE"
	modelGIN  modelKind = "GIN"
)

// model builds one benchmark model with the requested aggregation function
// and deterministic weights.
func (c Config) model(kind modelKind, featLen int, agg gnn.AggKind) *gnn.Model {
	rng := rand.New(rand.NewSource(c.Seed + 1000))
	a := gnn.NewAggregator(agg)
	switch kind {
	case modelGCN:
		return gnn.NewGCN(rng, featLen, c.Hidden, a)
	case modelSAGE:
		return gnn.NewSAGE(rng, featLen, c.Hidden, a)
	case modelGIN:
		h := c.Hidden / 2
		if h < 4 {
			h = 4
		}
		return gnn.NewGIN(rng, featLen, h, c.GINLayers, a)
	}
	panic("experiments: unknown model " + string(kind))
}

// deltaGFor returns the paper's default ΔG per model: 100 for the 2-layer
// models, 1 for the 5-layer GIN.
func deltaGFor(kind modelKind) int {
	if kind == modelGIN {
		return 1
	}
	return 100
}

// measured couples a duration with the counters it accumulated.
type measured struct {
	Time  time.Duration
	Snap  metrics.Snapshot
	Stats inkstream.ConditionStats
	OOM   bool
}

// avg averages a slice of measurements.
func avg(ms []measured) measured {
	if len(ms) == 0 {
		return measured{}
	}
	var out measured
	for _, m := range ms {
		out.Time += m.Time
		out.Snap = out.Snap.Add(m.Snap)
		out.Stats.Merge(&m.Stats)
		out.OOM = out.OOM || m.OOM
	}
	out.Time /= time.Duration(len(ms))
	n := int64(len(ms))
	out.Snap.BytesFetched /= n
	out.Snap.BytesWritten /= n
	out.Snap.FLOPs /= n
	out.Snap.NodesVisited /= n
	out.Snap.EventsProcessed /= n
	return out
}

// scenarios draws n independent ΔG batches against g (each validated on
// the *same* pre-state; scenarios are alternatives, not a sequence).
func (c Config) scenarioDeltas(g *graph.Graph, deltaG, n int) []graph.Delta {
	rng := rand.New(rand.NewSource(c.Seed + 77))
	out := make([]graph.Delta, n)
	for i := range out {
		out[i] = graph.RandomDelta(rng, g, deltaG)
	}
	return out
}

// runInk times one InkStream update on a fresh engine clone.
func runInk(model *gnn.Model, inst instance, base *gnn.State, delta graph.Delta, opts inkstream.Options) (measured, error) {
	var c metrics.Counters
	eng, err := inkstream.NewFromState(model, inst.G.Clone(), base.Clone(), &c, opts)
	if err != nil {
		return measured{}, err
	}
	var uerr error
	d := metrics.Time(func() { uerr = eng.Update(append(graph.Delta(nil), delta...)) })
	if uerr != nil {
		return measured{}, uerr
	}
	return measured{Time: d, Snap: c.Snapshot(), Stats: *eng.Stats()}, nil
}

// runKHop times one k-hop update on a freshly bootstrapped baseline.
func runKHop(model *gnn.Model, inst instance, delta graph.Delta) (measured, *baseline.KHop, error) {
	var c metrics.Counters
	kh, err := baseline.NewKHop(model, inst.G.Clone(), inst.X, &c)
	if err != nil {
		return measured{}, nil, err
	}
	var uerr error
	d := metrics.Time(func() { uerr = kh.Update(append(graph.Delta(nil), delta...)) })
	if uerr != nil {
		return measured{}, nil, uerr
	}
	return measured{Time: d, Snap: c.Snapshot()}, kh, nil
}

// runFull times the PyG-like baseline on the post-delta snapshot.
func runFull(model *gnn.Model, inst instance, delta graph.Delta, fanout int, seed int64) (measured, error) {
	g := inst.G.Clone()
	if err := delta.Apply(g); err != nil {
		return measured{}, err
	}
	var c metrics.Counters
	f := &baseline.Full{Model: model, Fanout: fanout, Seed: seed, C: &c}
	var ierr error
	d := metrics.Time(func() { _, ierr = f.Infer(g, inst.X) })
	if ierr != nil {
		return measured{}, ierr
	}
	return measured{Time: d, Snap: c.Snapshot()}, nil
}

// runFused times the Graphiler stand-in on the post-delta snapshot; an OOM
// is reported, not an error.
func runFused(model *gnn.Model, inst instance, delta graph.Delta, memLimit int64) (measured, error) {
	g := inst.G.Clone()
	if err := delta.Apply(g); err != nil {
		return measured{}, err
	}
	var c metrics.Counters
	f := &baseline.Fused{Model: model, MemLimit: memLimit, C: &c}
	var ierr error
	d := metrics.Time(func() { _, ierr = f.Infer(g, inst.X) })
	if ierr != nil {
		if isOOM(ierr) {
			return measured{OOM: true}, nil
		}
		return measured{}, ierr
	}
	return measured{Time: d, Snap: c.Snapshot()}, nil
}

func isOOM(err error) bool { return errors.Is(err, baseline.ErrOOM) }
