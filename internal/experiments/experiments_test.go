package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
)

// tiny returns a configuration small enough for unit tests: only the two
// small datasets, aggressively scaled.
func tiny() Config {
	c := Quick()
	c.Datasets = []dataset.Spec{dataset.PubMed, dataset.Cora}
	c.ExtraScale = 32
	c.Scenarios = 1
	c.GINLayers = 3
	return c
}

func TestConfigNormalize(t *testing.T) {
	var c Config
	n := c.normalize()
	if len(n.Datasets) != len(dataset.All) || n.ExtraScale < 1 || n.Hidden < 4 || n.Scenarios < 1 {
		t.Errorf("normalize produced %+v", n)
	}
}

func TestScenariosForSchedule(t *testing.T) {
	c := Default()
	c.Scenarios = 1000
	if c.scenariosFor(1) != 100 || c.scenariosFor(100) != 10 || c.scenariosFor(10000) != 1 {
		t.Error("paper scenario schedule broken")
	}
	c.Scenarios = 3
	if c.scenariosFor(1) != 3 {
		t.Error("cap not applied")
	}
}

func TestDeltaGFor(t *testing.T) {
	if deltaGFor(modelGCN) != 100 || deltaGFor(modelSAGE) != 100 || deltaGFor(modelGIN) != 1 {
		t.Error("paper ΔG defaults wrong")
	}
}

func TestFig1a(t *testing.T) {
	r, err := Fig1a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ratio) != 5 {
		t.Fatalf("want 5 k-rows, got %d", len(r.Ratio))
	}
	// Affected area grows with both k and ΔG (where measurable).
	if r.Ratio[0][0] > r.Ratio[4][0] {
		t.Errorf("area must grow with k: k=1 %g > k=5 %g", r.Ratio[0][0], r.Ratio[4][0])
	}
	for _, row := range r.Ratio {
		for _, v := range row {
			if v > 1.0 {
				t.Errorf("ratio above 1: %g", v)
			}
		}
	}
	if !strings.Contains(r.Render(), "Fig. 1a") {
		t.Error("render missing title")
	}
}

func TestFig1b(t *testing.T) {
	cfg := tiny()
	cfg.ExtraScale = 64 // Yelp and papers100M appear here; shrink hard
	r, err := Fig1b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Datasets) != 3 {
		t.Fatalf("want 3 datasets, got %d", len(r.Datasets))
	}
	best := 1.0
	for i, v := range r.Ratio {
		if v < 0 || v > 1 {
			t.Errorf("%s: real/theoretical ratio %g out of range", r.Datasets[i], v)
		}
		if v < best {
			best = v
		}
	}
	// The headline claim — the real affected area is a small fraction of
	// the theoretical one — shows partially at toy scale (ΔG=100 on a
	// few-hundred-node graph saturates small datasets): at least one
	// profile must show clear selectivity.
	if best > 0.8 {
		t.Errorf("no dataset showed selectivity: best ratio %g", best)
	}
	_ = r.Render()
}

func TestTable4ShapeAndOrdering(t *testing.T) {
	r, err := Table4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Blocks) != 3 {
		t.Fatalf("want 3 model blocks, got %d", len(r.Blocks))
	}
	for _, b := range r.Blocks {
		if len(b.Rows) != 2 {
			t.Fatalf("%s: want 2 dataset rows, got %d", b.Model, len(b.Rows))
		}
		for _, row := range b.Rows {
			if row.Full <= 0 || row.KHop <= 0 || row.InkM <= 0 || row.InkA <= 0 {
				t.Errorf("%s/%s: missing timings %+v", b.Model, row.Dataset, row)
			}
		}
	}
	out := r.Render()
	for _, want := range []string{"GCN", "GraphSAGE", "GIN", "InkStream-m", "k-hop"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// At a moderate (non-toy) scale the paper's headline ordering must hold:
// InkStream is faster than full-graph inference. Event-machinery overhead
// can dominate only on toy graphs.
func TestTable4OrderingModerateScale(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale timing test")
	}
	cfg := Default()
	cfg.Datasets = []dataset.Spec{dataset.PubMed}
	cfg.ExtraScale = 2
	cfg.Scenarios = 2
	cfg.GINLayers = 3
	// Wall-clock ordering assertions are load-sensitive; retry a few times
	// so transient machine load cannot fail the suite.
	var lastErr string
	for attempt := 0; attempt < 3; attempt++ {
		r, err := Table4(cfg)
		if err != nil {
			t.Fatal(err)
		}
		lastErr = ""
		for _, b := range r.Blocks {
			row := b.Rows[0]
			// GCN (no self-dependence, small per-layer compute) shows the
			// cleanest margin; it must win outright. The self-dependent
			// models' margin shrinks at this reduced scale with ΔG=100, so
			// only require them not to lose by more than 2x (at full scale
			// they win — see EXPERIMENTS.md).
			slack := time.Duration(1)
			if b.Model != "GCN" {
				slack = 2
			}
			if row.InkM > slack*row.Full {
				lastErr = b.Model + ": InkStream-m slower than full inference beyond slack"
			}
			if row.InkA > slack*row.Full {
				lastErr = b.Model + ": InkStream-a slower than full inference beyond slack"
			}
		}
		if lastErr == "" {
			return
		}
	}
	t.Error(lastErr)
}

func TestTable5Reductions(t *testing.T) {
	r, err := Table5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.RMCInkM <= 0 || row.RMCInkM > 1 {
			t.Errorf("%s: RMC InkStream-m %g out of (0,1]", row.Dataset, row.RMCInkM)
		}
		if row.RMCInkA <= 0 || row.RMCInkA > 1 {
			t.Errorf("%s: RMC InkStream-a %g out of (0,1]", row.Dataset, row.RMCInkA)
		}
		if row.RNVVInkM < 0 || row.RNVVInkM > 1 {
			t.Errorf("%s: RNVV %g out of [0,1]", row.Dataset, row.RNVVInkM)
		}
	}
	_ = r.Render()
}

func TestTable6AblationOrdering(t *testing.T) {
	r, err := Table6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.KHop <= 0 || row.Comp1 <= 0 || row.Full <= 0 {
			t.Errorf("%s: missing timings %+v", row.Dataset, row)
		}
	}
	_ = r.Render()
}

func TestFig7Shape(t *testing.T) {
	r, err := Fig7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Datasets) != 2 || len(r.SpeedupM) != 2 {
		t.Fatalf("shape: %d datasets", len(r.Datasets))
	}
	for di := range r.Datasets {
		for gi := range r.DeltaGs {
			m, a := r.SpeedupM[di][gi], r.SpeedupA[di][gi]
			if m == 0 || a == 0 {
				t.Errorf("%s dG=%d: zero speedup recorded", r.Datasets[di], r.DeltaGs[gi])
			}
		}
	}
	_ = r.Render()
}

func TestFig8Distributions(t *testing.T) {
	r, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 { // 3 models × 2 datasets
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		sum := row.Pruned + row.NoReset + row.Covered + row.Exposed + row.SelfOnly
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s/%s: fractions sum to %g", row.Model, row.Dataset, sum)
		}
	}
	_ = r.Render()
}

func TestFig9AgreementHigh(t *testing.T) {
	cfg := tiny()
	r, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.Points) != 8 {
			t.Fatalf("%s: points = %d", s.Dataset, len(s.Points))
		}
		for _, p := range s.Points {
			// The paper's operating regime is <1–2% graph change between
			// retraining phases; at toy scale, statistic sampling noise
			// grows with |change|, so assert tightly only there.
			if p.ChangePct >= -2 && p.ChangePct <= 2 && p.Agreement < 0.9 {
				t.Errorf("%s %+d%%: agreement %g below 90%% — approximation broken",
					s.Dataset, p.ChangePct, p.Agreement)
			}
			if p.Agreement < 0.5 {
				t.Errorf("%s %+d%%: agreement %g collapsed", s.Dataset, p.ChangePct, p.Agreement)
			}
		}
	}
	_ = r.Render()
}

func TestMemCost(t *testing.T) {
	r, err := MemCost(tiny())
	if err != nil {
		t.Fatal(err)
	}
	registered := 0
	for _, row := range r.Rows {
		if row.CheckpointH <= 0 || row.RatioH <= 0 {
			t.Errorf("%s: degenerate memory numbers %+v", row.Dataset, row)
		}
		if row.MeasuredH < 0 || row.MeasuredH32 < 0 {
			t.Errorf("%s: negative resident measurement %+v", row.Dataset, row)
		}
		if row.MeasuredH > 0 {
			registered++
		}
		if row.CheckpointH32 < row.CheckpointH && r.Hidden <= 32 {
			t.Errorf("%s: width-32 checkpoint smaller than width-%d", row.Dataset, r.Hidden)
		}
	}
	// Heap-in-use deltas are span-granular and GC can reuse freed spans, so
	// individual rows may legitimately read 0 at test scale — but a run where
	// no checkpoint registered any resident growth means the probe is broken.
	if registered == 0 {
		t.Error("no dataset registered resident growth for its checkpoint")
	}
	if !strings.Contains(r.Render(), "resident") {
		t.Error("render missing the measured resident column")
	}
}

func TestFig9TrainedSmallDelta(t *testing.T) {
	cfg := tiny()
	cfg.ExtraScale = 16
	r, err := Fig9Trained(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.AccExact < 0.5 || p.AccFrozen < 0.5 {
				t.Errorf("%s %+d%%: model failed to learn (exact %.2f frozen %.2f)",
					s.Dataset, p.ChangePct, p.AccExact, p.AccFrozen)
			}
			d := p.AccExact - p.AccFrozen
			if d < 0 {
				d = -d
			}
			// The paper's claim in its operating regime (<= 2% churn):
			// negligible accuracy difference. Allow slack at toy scale.
			if p.ChangePct >= -2 && p.ChangePct <= 2 && d > 0.05 {
				t.Errorf("%s %+d%%: accuracy delta %.3f too large", s.Dataset, p.ChangePct, d)
			}
		}
	}
	_ = r.Render()
}

func TestReplayLatencies(t *testing.T) {
	cfg := tiny()
	r, err := Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Batches == 0 {
			t.Errorf("%s: no batches replayed", row.Dataset)
		}
		if row.InkP50 <= 0 || row.KHopP50 <= 0 {
			t.Errorf("%s: missing latencies %+v", row.Dataset, row)
		}
		if row.InkP50 > row.InkMax || row.KHopP50 > row.KHopMax {
			t.Errorf("%s: percentile ordering broken", row.Dataset)
		}
	}
	_ = r.Render()
}

func TestHotspotChurn(t *testing.T) {
	cfg := tiny()
	cfg.ExtraScale = 8 // need real hubs for the contrast
	r, err := Hotspot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Uniform <= 0 || row.Hot <= 0 {
			t.Errorf("%s: missing timings", row.Dataset)
		}
		// Hub-biased churn must enlarge the theoretical affected area.
		if row.AffectedHot < row.AffectedUniform {
			t.Errorf("%s: hot churn affected %d < uniform %d",
				row.Dataset, row.AffectedHot, row.AffectedUniform)
		}
	}
	_ = r.Render()
}

func TestScalingSweep(t *testing.T) {
	cfg := tiny()
	cfg.ExtraScale = 16 // sweep runs at 16x..1x of this
	r, err := Scaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Nodes <= r.Rows[i-1].Nodes {
			t.Errorf("sweep not growing: %d then %d nodes", r.Rows[i-1].Nodes, r.Rows[i].Nodes)
		}
	}
	// The paper's trend: on the largest graph of the sweep, InkStream's
	// speedup over k-hop must exceed its speedup on the smallest.
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.Speedup <= first.Speedup {
		t.Errorf("speedup did not grow with graph size: %.1f -> %.1f", first.Speedup, last.Speedup)
	}
	_ = r.Render()
}

func TestRunnerRegistry(t *testing.T) {
	if len(Names()) != 17 {
		t.Errorf("registry size = %d", len(Names()))
	}
	if _, err := Run("nope", tiny()); err == nil {
		t.Error("unknown id accepted")
	}
	res, err := Run("memcost", tiny())
	if err != nil || res.Render() == "" {
		t.Errorf("Run(memcost): %v", err)
	}
}

func TestMixedWorkload(t *testing.T) {
	c := tiny()
	c.Readers = 2
	c.MixedUpdates = 10
	r, err := Mixed(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Updates != 10 {
		t.Errorf("applied %d updates", r.Updates)
	}
	// Epoch 1 is the bootstrap snapshot; every applied batch publishes one
	// more.
	if r.FinalEpoch != 11 {
		t.Errorf("final epoch %d, want 11", r.FinalEpoch)
	}
	if r.Reads == 0 || r.ReadP99 < r.ReadP50 {
		t.Errorf("read stats reads=%d p50=%v p99=%v", r.Reads, r.ReadP50, r.ReadP99)
	}
	if r.Render() == "" {
		t.Error("empty rendering")
	}
}

func TestTieredSweep(t *testing.T) {
	c := tiny()
	c.Datasets = []dataset.Spec{dataset.PubMed}
	c.MixedUpdates = 12
	c.TieredReadsPerBatch = 16
	c.TieredFactors = []int{1, 4}
	for _, quant := range []string{"f32", "int8"} {
		c.TieredQuant = quant
		r, err := TieredSweep(c)
		if err != nil {
			t.Fatalf("quant %s: %v", quant, err)
		}
		if len(r.Points) != 3 {
			t.Fatalf("quant %s: points = %d, want resident + 2 factors", quant, len(r.Points))
		}
		resident := r.Points[0]
		if resident.Factor != 0 || resident.CapBytes != 0 || resident.HitRate != 1 {
			t.Errorf("quant %s: degenerate resident baseline %+v", quant, resident)
		}
		wantExact := "bit-exact"
		if quant != "f32" {
			wantExact = "within-tol"
		}
		for _, p := range r.Points {
			// The audit runs inside the sweep: reaching here means every read
			// matched the resident reference; the point just records the mode.
			if p.Exact != wantExact {
				t.Errorf("quant %s factor %d: exact = %q, want %q", quant, p.Factor, p.Exact, wantExact)
			}
			if p.UpdPerSec <= 0 || p.ReadP99 < p.ReadP50 {
				t.Errorf("quant %s factor %d: degenerate timings %+v", quant, p.Factor, p)
			}
			if p.Factor > 0 && (p.CapBytes <= 0 || p.CapBytes != r.Footprint/int64(p.Factor)) {
				t.Errorf("quant %s factor %d: cap %d vs footprint %d", quant, p.Factor, p.CapBytes, r.Footprint)
			}
		}
		if !strings.Contains(r.Render(), "tiered-sweep: factor=4") {
			t.Errorf("quant %s: render missing machine-parseable point line", quant)
		}
	}
}

func TestShardScaling(t *testing.T) {
	c := tiny()
	c.Datasets = []dataset.Spec{dataset.PubMed}
	c.BurstDepth = 4
	c.BurstUpdates = 40
	c.ShardCounts = []int{1, 3}
	r, err := ShardScaling(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Updates != 40 || p.UpdatesPerSec <= 0 || p.Rounds == 0 {
			t.Errorf("shards=%d: degenerate point %+v", p.Shards, p)
		}
		if p.AckP99 < p.AckP50 {
			t.Errorf("shards=%d: percentile ordering broken", p.Shards)
		}
		// The headline correctness claim: every deployment shape serves
		// embeddings bitwise identical to the 1-shard baseline.
		if !p.BitExact {
			t.Errorf("shards=%d: embeddings diverged from the 1-shard baseline", p.Shards)
		}
	}
	if one, three := r.Points[0], r.Points[1]; one.Shards != 1 ||
		three.CutFraction == 0 || three.BoundaryRecords == 0 {
		t.Errorf("3-shard point saw no boundary traffic: %+v", three)
	}
	if !strings.Contains(r.Render(), "shard-scaling: shards=3") {
		t.Error("render missing machine-parseable point line")
	}
}
