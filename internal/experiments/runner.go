package experiments

import (
	"fmt"
	"sort"
)

// Result is what every experiment driver produces: a renderable artifact.
type Result interface {
	Render() string
}

// Runner adapts a typed driver to the registry.
type Runner func(Config) (Result, error)

// Registry maps experiment IDs (the table/figure numbers of the paper) to
// their drivers.
var Registry = map[string]Runner{
	"fig1a":   func(c Config) (Result, error) { return Fig1a(c) },
	"fig1b":   func(c Config) (Result, error) { return Fig1b(c) },
	"table4":  func(c Config) (Result, error) { return Table4(c) },
	"table5":  func(c Config) (Result, error) { return Table5(c) },
	"table6":  func(c Config) (Result, error) { return Table6(c) },
	"fig7":    func(c Config) (Result, error) { return Fig7(c) },
	"fig8":    func(c Config) (Result, error) { return Fig8(c) },
	"fig9":    func(c Config) (Result, error) { return Fig9(c) },
	"fig9t":   func(c Config) (Result, error) { return Fig9Trained(c) },
	"memcost": func(c Config) (Result, error) { return MemCost(c) },
	"replay":  func(c Config) (Result, error) { return Replay(c) },
	"hotspot": func(c Config) (Result, error) { return Hotspot(c) },
	"scaling": func(c Config) (Result, error) { return Scaling(c) },
	"mixed":   func(c Config) (Result, error) { return Mixed(c) },
	"burst":   func(c Config) (Result, error) { return Burst(c) },
	"shards":  func(c Config) (Result, error) { return ShardScaling(c) },
	"tiered":  func(c Config) (Result, error) { return TieredSweep(c) },
}

// Names returns the sorted experiment IDs.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (Result, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (want one of %v)", id, Names())
	}
	return r(cfg)
}
