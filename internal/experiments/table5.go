package experiments

import (
	"repro/internal/gnn"
	"repro/internal/inkstream"
)

// Table5Row holds the reductions of one dataset: RNVV (reduction in the
// number of visited nodes, InkStream-m only — InkStream-a never prunes)
// and RMC (reduction in memory cost) for both variants, all relative to
// the k-hop baseline.
type Table5Row struct {
	Dataset  string
	RNVVInkM float64
	RMCInkM  float64
	RMCInkA  float64
}

// Table5Result reproduces Table V (GCN, ΔG=100).
type Table5Result struct {
	Rows []Table5Row
}

// Table5 runs the experiment.
func Table5(cfg Config) (*Table5Result, error) {
	cfg = cfg.normalize()
	res := &Table5Result{}
	for _, spec := range cfg.Datasets {
		inst := cfg.build(spec)
		maxModel := cfg.model(modelGCN, inst.X.Cols, gnn.AggMax)
		meanModel := cfg.model(modelGCN, inst.X.Cols, gnn.AggMean)
		baseMax, err := gnn.Infer(maxModel, inst.G, inst.X, nil)
		if err != nil {
			return nil, err
		}
		baseMean, err := gnn.Infer(meanModel, inst.G, inst.X, nil)
		if err != nil {
			return nil, err
		}
		scen := cfg.scenariosFor(100)
		deltas := cfg.scenarioDeltas(inst.G, 100, scen)
		var khop, inkM, inkA []measured
		for _, d := range deltas {
			m, _, err := runKHop(maxModel, inst, d)
			if err != nil {
				return nil, err
			}
			khop = append(khop, m)
			m, err = runInk(maxModel, inst, baseMax, d, inkstream.Options{})
			if err != nil {
				return nil, err
			}
			inkM = append(inkM, m)
			m, err = runInk(meanModel, inst, baseMean, d, inkstream.Options{})
			if err != nil {
				return nil, err
			}
			inkA = append(inkA, m)
		}
		k, im, ia := avg(khop), avg(inkM), avg(inkA)
		row := Table5Row{Dataset: spec.Name}
		if k.Snap.NodesVisited > 0 {
			row.RNVVInkM = 1 - float64(im.Snap.NodesVisited)/float64(k.Snap.NodesVisited)
		}
		kb := k.Snap.BytesFetched + k.Snap.BytesWritten
		if kb > 0 {
			row.RMCInkM = 1 - float64(im.Snap.BytesFetched+im.Snap.BytesWritten)/float64(kb)
			row.RMCInkA = 1 - float64(ia.Snap.BytesFetched+ia.Snap.BytesWritten)/float64(kb)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r *Table5Result) Render() string {
	t := newTable("Table V — reductions vs k-hop (GCN, dG=100)",
		"dataset", "RNVV InkStream-m", "RMC InkStream-m", "RMC InkStream-a")
	for _, row := range r.Rows {
		t.addRow(row.Dataset, fmtPct(row.RNVVInkM), fmtPct(row.RMCInkM), fmtPct(row.RMCInkA))
	}
	return t.String()
}
