package experiments

import (
	"fmt"

	"repro/internal/gnn"
	"repro/internal/inkstream"
)

// Fig7Result reproduces Fig. 7: the speedup of InkStream-m and InkStream-a
// over the k-hop baseline on the GCN model as the number of changed edges
// ΔG grows (1, 10, 100, 1k, 10k). The paper's shape: speedup decreases as
// ΔG increases.
type Fig7Result struct {
	DeltaGs  []int
	Datasets []string
	// SpeedupM[di][gi] and SpeedupA[di][gi] are speedups vs k-hop for
	// Datasets[di] at DeltaGs[gi]; -1 marks ΔG values not measurable at
	// the configured scale.
	SpeedupM [][]float64
	SpeedupA [][]float64
}

// Fig7 runs the experiment.
func Fig7(cfg Config) (*Fig7Result, error) {
	cfg = cfg.normalize()
	res := &Fig7Result{DeltaGs: []int{1, 10, 100, 1000, 10000}}
	for _, spec := range cfg.Datasets {
		inst := cfg.build(spec)
		maxModel := cfg.model(modelGCN, inst.X.Cols, gnn.AggMax)
		meanModel := cfg.model(modelGCN, inst.X.Cols, gnn.AggMean)
		baseMax, err := gnn.Infer(maxModel, inst.G, inst.X, nil)
		if err != nil {
			return nil, err
		}
		baseMean, err := gnn.Infer(meanModel, inst.G, inst.X, nil)
		if err != nil {
			return nil, err
		}
		rowM := make([]float64, len(res.DeltaGs))
		rowA := make([]float64, len(res.DeltaGs))
		for gi, dg := range res.DeltaGs {
			if dg > inst.G.NumEdges()/2 {
				rowM[gi], rowA[gi] = -1, -1
				continue
			}
			scen := cfg.scenariosFor(dg)
			deltas := cfg.scenarioDeltas(inst.G, dg, scen)
			var khop, inkM, inkA []measured
			for _, d := range deltas {
				m, _, err := runKHop(maxModel, inst, d)
				if err != nil {
					return nil, err
				}
				khop = append(khop, m)
				m, err = runInk(maxModel, inst, baseMax, d, inkstream.Options{})
				if err != nil {
					return nil, err
				}
				inkM = append(inkM, m)
				m, err = runInk(meanModel, inst, baseMean, d, inkstream.Options{})
				if err != nil {
					return nil, err
				}
				inkA = append(inkA, m)
			}
			k, im, ia := avg(khop), avg(inkM), avg(inkA)
			if im.Time > 0 {
				rowM[gi] = float64(k.Time) / float64(im.Time)
			}
			if ia.Time > 0 {
				rowA[gi] = float64(k.Time) / float64(ia.Time)
			}
		}
		res.Datasets = append(res.Datasets, spec.Name)
		res.SpeedupM = append(res.SpeedupM, rowM)
		res.SpeedupA = append(res.SpeedupA, rowA)
	}
	return res, nil
}

func (r *Fig7Result) Render() string {
	out := ""
	for vi, name := range []string{"InkStream-m", "InkStream-a"} {
		data := r.SpeedupM
		if vi == 1 {
			data = r.SpeedupA
		}
		t := newTable(fmt.Sprintf("Fig. 7 — %s speedup vs k-hop (GCN)", name),
			append([]string{"dataset"}, intHeaders(r.DeltaGs)...)...)
		for di, ds := range r.Datasets {
			cells := []string{ds}
			for gi := range r.DeltaGs {
				if data[di][gi] < 0 {
					cells = append(cells, "n/a")
				} else {
					cells = append(cells, fmt.Sprintf("%.1fx", data[di][gi]))
				}
			}
			t.addRow(cells...)
		}
		out += t.String() + "\n"
	}
	return out
}
