package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/metrics"
)

// ReplayRow reports end-to-end latency percentiles of one dataset's C-TDG
// timeline replay: a single edge stream (T-GCN-style random creation and
// deletion times) is replayed through InkStream and the k-hop baseline
// batch by batch — the deployment pattern of the paper's HPC scenario,
// complementing Table IV's scenario-averaged single measurements with a
// latency distribution.
type ReplayRow struct {
	Dataset string
	Batches int
	AvgDG   int // mean changed edges per batch

	InkP50, InkP95, InkP99, InkMax     time.Duration
	KHopP50, KHopP95, KHopP99, KHopMax time.Duration
}

// ReplayResult is the `replay` experiment output.
type ReplayResult struct {
	Rows []ReplayRow
}

// Replay runs the experiment on a 2-layer max-GCN (InkStream-m).
func Replay(cfg Config) (*ReplayResult, error) {
	cfg = cfg.normalize()
	const steps = 10
	res := &ReplayResult{}
	for _, spec := range cfg.Datasets {
		inst := cfg.build(spec)
		tl, err := graph.AssignTimes(inst.G, 0.4, cfg.Seed+21)
		if err != nil {
			return nil, err
		}
		// Bootstrap near the end of the timeline and replay the final 1%:
		// each step then carries ~0.1% of the edge set, the realistic
		// streaming regime (replaying from mid-timeline would move half
		// the graph per batch and land in Fig. 7's ΔG=10k territory).
		times := make([]float64, steps+1)
		for i := range times {
			times[i] = 0.99 + 0.01*float64(i)/float64(steps)
		}
		g0 := tl.SnapshotAt(times[0])
		model := cfg.model(modelGCN, inst.X.Cols, gnn.AggMax)

		ink, err := inkstream.New(model, g0.Clone(), inst.X, nil, inkstream.Options{})
		if err != nil {
			return nil, err
		}
		khop, err := baseline.NewKHop(model, g0.Clone(), inst.X, nil)
		if err != nil {
			return nil, err
		}

		var inkLat, khopLat []time.Duration
		totalDG := 0
		applied := 0
		for i := 1; i < len(times); i++ {
			delta := tl.DeltaBetween(times[i-1], times[i])
			if len(delta) == 0 {
				continue
			}
			totalDG += len(delta)
			applied++
			var uerr error
			inkLat = append(inkLat, metrics.Time(func() {
				uerr = ink.Update(append(graph.Delta(nil), delta...))
			}))
			if uerr != nil {
				return nil, fmt.Errorf("replay %s ink step %d: %w", spec.Name, i, uerr)
			}
			khopLat = append(khopLat, metrics.Time(func() {
				uerr = khop.Update(append(graph.Delta(nil), delta...))
			}))
			if uerr != nil {
				return nil, fmt.Errorf("replay %s khop step %d: %w", spec.Name, i, uerr)
			}
		}
		row := ReplayRow{Dataset: spec.Name, Batches: applied}
		if applied > 0 {
			row.AvgDG = totalDG / applied
		}
		row.InkP50 = metrics.Percentile(inkLat, 50)
		row.InkP95 = metrics.Percentile(inkLat, 95)
		row.InkP99 = metrics.Percentile(inkLat, 99)
		row.InkMax = metrics.Percentile(inkLat, 100)
		row.KHopP50 = metrics.Percentile(khopLat, 50)
		row.KHopP95 = metrics.Percentile(khopLat, 95)
		row.KHopP99 = metrics.Percentile(khopLat, 99)
		row.KHopMax = metrics.Percentile(khopLat, 100)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r *ReplayResult) Render() string {
	t := newTable("Timeline replay — per-batch latency percentiles (GCN, max, InkStream-m vs k-hop)",
		"dataset", "batches", "avg dG",
		"ink p50", "ink p95", "ink p99", "ink max",
		"k-hop p50", "k-hop p95", "k-hop p99", "k-hop max")
	for _, row := range r.Rows {
		t.addRow(row.Dataset,
			fmt.Sprintf("%d", row.Batches), fmt.Sprintf("%d", row.AvgDG),
			fmtDur(row.InkP50), fmtDur(row.InkP95), fmtDur(row.InkP99), fmtDur(row.InkMax),
			fmtDur(row.KHopP50), fmtDur(row.KHopP95), fmtDur(row.KHopP99), fmtDur(row.KHopMax))
	}
	return t.String()
}
