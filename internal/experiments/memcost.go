package experiments

import (
	"fmt"
	"runtime"

	"repro/internal/gnn"
	"repro/internal/metrics"
)

// MemCostRow reports the additional memory InkStream keeps for one dataset
// (Sec. III-E): the two per-layer checkpoints (m and α) relative to the
// dataset size (features + edges), at two hidden-state widths. Each
// checkpoint is reported both modeled (summed slice lengths) and measured
// (heap-in-use growth around the allocation) — a persistent gap between
// the two means the model under-counts allocator overhead.
type MemCostRow struct {
	Dataset       string
	DatasetBytes  int64
	CheckpointH   int64   // modeled checkpoint bytes at cfg.Hidden
	MeasuredH     int64   // HeapInuse growth while allocating that checkpoint
	RatioH        float64 // CheckpointH / DatasetBytes
	CheckpointH32 int64   // modeled checkpoint bytes at width 32 (paper's small case)
	MeasuredH32   int64
	RatioH32      float64
}

// measureHeap reports alloc's result alongside the heap-in-use growth its
// allocation caused: a GC settles the heap, HeapInuse is read, alloc runs,
// a second GC sweeps alloc's temporaries (the returned state stays live),
// and HeapInuse is read again. The delta floor is 0 — concurrent frees can
// shrink unrelated spans below the start point.
func measureHeap(alloc func() *gnn.State) (st *gnn.State, measured int64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	st = alloc()
	runtime.GC()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(st)
	if measured = int64(after.HeapInuse) - int64(before.HeapInuse); measured < 0 {
		measured = 0
	}
	return st, measured
}

// MemCostResult reproduces the Sec. III-E analysis (GCN).
type MemCostResult struct {
	Hidden int
	Rows   []MemCostRow
}

// MemCost runs the analysis.
func MemCost(cfg Config) (*MemCostResult, error) {
	cfg = cfg.normalize()
	res := &MemCostResult{Hidden: cfg.Hidden}
	for _, spec := range cfg.Datasets {
		inst := cfg.build(spec)
		dataBytes := int64(4*len(inst.X.Data)) + int64(8*inst.G.NumArcs())
		row := MemCostRow{Dataset: spec.Name, DatasetBytes: dataBytes}

		model := cfg.model(modelGCN, inst.X.Cols, gnn.AggMax)
		st, measured := measureHeap(func() *gnn.State { return gnn.NewState(model, inst.G.NumNodes()) })
		row.CheckpointH = st.MemoryBytes()
		row.MeasuredH = measured
		row.RatioH = float64(row.CheckpointH) / float64(dataBytes)

		small := cfg
		small.Hidden = 32
		model32 := small.model(modelGCN, inst.X.Cols, gnn.AggMax)
		st32, measured32 := measureHeap(func() *gnn.State { return gnn.NewState(model32, inst.G.NumNodes()) })
		row.CheckpointH32 = st32.MemoryBytes()
		row.MeasuredH32 = measured32
		row.RatioH32 = float64(row.CheckpointH32) / float64(dataBytes)

		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r *MemCostResult) Render() string {
	t := newTable("Sec. III-E — additional memory for saved checkpoints (GCN)",
		"dataset", "dataset size", "ckpt(hidden)", "resident", "ratio", "ckpt(h=32)", "resident", "ratio")
	for _, row := range r.Rows {
		t.addRow(row.Dataset,
			metrics.HumanBytes(row.DatasetBytes),
			metrics.HumanBytes(row.CheckpointH), metrics.HumanBytes(row.MeasuredH), fmtRatio(row.RatioH),
			metrics.HumanBytes(row.CheckpointH32), metrics.HumanBytes(row.MeasuredH32), fmtRatio(row.RatioH32))
	}
	return t.String() + "\n  (resident = heap-in-use growth measured around the checkpoint allocation; ckpt = modeled from slice lengths)"
}

func fmtRatio(f float64) string {
	switch {
	case f >= 10:
		return fmt.Sprintf("%.0fx", f)
	case f >= 1:
		return fmt.Sprintf("%.2fx", f)
	default:
		return fmt.Sprintf("%.3fx", f)
	}
}
