package experiments

import (
	"fmt"

	"repro/internal/gnn"
	"repro/internal/metrics"
)

// MemCostRow reports the additional memory InkStream keeps for one dataset
// (Sec. III-E): the two per-layer checkpoints (m and α) relative to the
// dataset size (features + edges), at two hidden-state widths.
type MemCostRow struct {
	Dataset       string
	DatasetBytes  int64
	CheckpointH   int64   // checkpoint bytes at cfg.Hidden
	RatioH        float64 // CheckpointH / DatasetBytes
	CheckpointH32 int64   // checkpoint bytes at width 32 (paper's small case)
	RatioH32      float64
}

// MemCostResult reproduces the Sec. III-E analysis (GCN).
type MemCostResult struct {
	Hidden int
	Rows   []MemCostRow
}

// MemCost runs the analysis.
func MemCost(cfg Config) (*MemCostResult, error) {
	cfg = cfg.normalize()
	res := &MemCostResult{Hidden: cfg.Hidden}
	for _, spec := range cfg.Datasets {
		inst := cfg.build(spec)
		dataBytes := int64(4*len(inst.X.Data)) + int64(8*inst.G.NumArcs())
		row := MemCostRow{Dataset: spec.Name, DatasetBytes: dataBytes}

		model := cfg.model(modelGCN, inst.X.Cols, gnn.AggMax)
		st := gnn.NewState(model, inst.G.NumNodes())
		row.CheckpointH = st.MemoryBytes()
		row.RatioH = float64(row.CheckpointH) / float64(dataBytes)

		small := cfg
		small.Hidden = 32
		model32 := small.model(modelGCN, inst.X.Cols, gnn.AggMax)
		st32 := gnn.NewState(model32, inst.G.NumNodes())
		row.CheckpointH32 = st32.MemoryBytes()
		row.RatioH32 = float64(row.CheckpointH32) / float64(dataBytes)

		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r *MemCostResult) Render() string {
	t := newTable("Sec. III-E — additional memory for saved checkpoints (GCN)",
		"dataset", "dataset size", "ckpt(hidden)", "ratio", "ckpt(h=32)", "ratio")
	for _, row := range r.Rows {
		t.addRow(row.Dataset,
			metrics.HumanBytes(row.DatasetBytes),
			metrics.HumanBytes(row.CheckpointH), fmtRatio(row.RatioH),
			metrics.HumanBytes(row.CheckpointH32), fmtRatio(row.RatioH32))
	}
	return t.String()
}

func fmtRatio(f float64) string {
	switch {
	case f >= 10:
		return fmt.Sprintf("%.0fx", f)
	case f >= 1:
		return fmt.Sprintf("%.2fx", f)
	default:
		return fmt.Sprintf("%.3fx", f)
	}
}
