package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/server"
)

// BurstMode is one half of the burst comparison: the sustained-throughput
// numbers with server-side coalescing off or on.
type BurstMode struct {
	Coalescing    bool
	Updates       int
	Duration      time.Duration
	UpdatesPerSec float64
	AckP50        time.Duration
	AckP99        time.Duration
	// Coalescing activity (zero when off): engine flushes covering the
	// updates, achieved mean fusion factor, conflict stalls.
	Batches   int64
	MeanFused float64
	Stalls    int64
}

// BurstResult reports the sustained-burst throughput scenario: a pipelined
// client keeps Depth conflict-free single-change updates in flight at once,
// so the pipeline always has ≈Depth requests queued behind the in-flight
// one — the regime server-side coalescing exists for.
type BurstResult struct {
	Dataset string
	Depth   int
	Waves   int
	// Hub is the flash-crowd target node every queued update is incident
	// to; HubDegree is its out-degree in the base graph.
	Hub       graph.NodeID
	HubDegree int
	Off, On   BurstMode
	// Speedup is On.UpdatesPerSec / Off.UpdatesPerSec.
	Speedup float64
}

// Render formats the burst report. The final line is stable and
// machine-parseable (scripts/bench_snapshot.sh).
func (r BurstResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sustained burst (%s): %d waves x %d pipelined single-change updates (queue depth %d), flash crowd on node %d (degree %d)\n",
		r.Dataset, r.Waves, r.Depth, r.Depth, r.Hub, r.HubDegree)
	line := func(m BurstMode) {
		state := "off"
		if m.Coalescing {
			state = "on "
		}
		fmt.Fprintf(&b, "  coalescing %s: %d updates in %v (%.0f upd/s), ack p50 %v, p99 %v",
			state, m.Updates, m.Duration.Round(time.Millisecond), m.UpdatesPerSec,
			m.AckP50.Round(time.Microsecond), m.AckP99.Round(time.Microsecond))
		if m.Coalescing {
			fmt.Fprintf(&b, ", mean fused %.1f, stalls %d", m.MeanFused, m.Stalls)
		}
		b.WriteByte('\n')
	}
	line(r.Off)
	line(r.On)
	fmt.Fprintf(&b, "  burst-speedup: %.2fx updates/sec (on %.1f vs off %.1f)",
		r.Speedup, r.On.UpdatesPerSec, r.Off.UpdatesPerSec)
	return b.String()
}

// burstHubDegree is the out-degree burstHub aims for: high enough that the
// hub's neighbourhood recompute and fan-out dominate each update (the work
// a fused apply shares across the batch), low enough that the per-update
// cascade stays bounded — on scale-free graphs the top-degree hubs neighbour
// each other, and a flash crowd there makes every single update quadratic.
const burstHubDegree = 64

// burstHub picks the flash-crowd target: the node whose out-degree is
// closest to burstHubDegree (lowest ID on ties, so the pick is
// deterministic).
func burstHub(g *graph.Graph) graph.NodeID {
	hub := graph.NodeID(0)
	best := -1
	for u := 0; u < g.NumNodes(); u++ {
		d := g.OutDegree(graph.NodeID(u))
		gap := d - burstHubDegree
		if gap < 0 {
			gap = -gap
		}
		if best < 0 || gap < best {
			hub, best = graph.NodeID(u), gap
		}
	}
	return hub
}

// burstPools pre-generates one pool of absent hub-incident edges per
// in-flight stream — the flash-crowd shape of real bursts, where queued
// updates land on one popular node. Spokes are the highest-degree eligible
// nodes (the crowd of popular accounts piling onto the hub), distinct
// across all pools, so the streams never conflict (every request is
// compatible with every concurrently queued one: distinct logical edges,
// no feature rewrites) and each stream's insert/remove toggles are
// individually valid — yet the queued updates share the hub's
// neighbourhood, which is what a fused apply can exploit: the hub's
// recompute and fan-out run once per batch, while the popular spokes
// absorb the hub's message with little downstream propagation of their
// own.
func burstPools(g *graph.Graph, streams, poolSize int) (graph.NodeID, [][]graph.EdgeChange) {
	hub := burstHub(g)
	cand := make([]graph.NodeID, 0, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		v := graph.NodeID(u)
		if v != hub && !g.HasEdge(hub, v) {
			cand = append(cand, v)
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		if di, dj := g.OutDegree(cand[i]), g.OutDegree(cand[j]); di != dj {
			return di > dj
		}
		return cand[i] < cand[j]
	})
	pools := make([][]graph.EdgeChange, streams)
	k := 0
	for w := range pools {
		for len(pools[w]) < poolSize {
			pools[w] = append(pools[w], graph.EdgeChange{U: hub, V: cand[k], Insert: true})
			k++
		}
	}
	return hub, pools
}

// runBurstMode drives one coalescing mode on a fresh engine built from the
// shared base state, so both modes start bit-identical. The driver is a
// windowed pipelined client: each wave submits one single-change update per
// stream via ApplyAsync — len(pools) updates queued before any is applied —
// then collects every acknowledgement. Submitting from one goroutine is
// what guarantees the queue depth: ack-waiting worker goroutines would be
// serialised by the scheduler on small machines and never build a queue.
func runBurstMode(inst instance, model *gnn.Model, base *gnn.State,
	pools [][]graph.EdgeChange, waves int, coalescing bool) (BurstMode, error) {
	eng, err := inkstream.NewFromState(model, inst.G.Clone(), base.Clone(), nil, inkstream.Options{})
	if err != nil {
		return BurstMode{}, err
	}
	srv := server.New(eng, nil)
	defer srv.Close()
	srv.SetCoalescing(coalescing)

	depth := len(pools)
	lats := make([]time.Duration, 0, depth*waves)
	submitted := make([]time.Time, depth)
	dones := make([]<-chan error, depth)
	t0 := time.Now()
	for i := 0; i < waves; i++ {
		for w, pool := range pools {
			// Sweep each pool inserting, then sweep it removing: every
			// single-change update is valid in its stream's sequence.
			ch := pool[i%len(pool)]
			ch.Insert = (i/len(pool))%2 == 0
			submitted[w] = time.Now()
			d, err := srv.ApplyAsync(graph.Delta{ch}, nil)
			if err != nil {
				return BurstMode{}, fmt.Errorf("wave %d stream %d: %w", i, w, err)
			}
			dones[w] = d
		}
		for w, d := range dones {
			if err := <-d; err != nil {
				return BurstMode{}, fmt.Errorf("wave %d stream %d: %w", i, w, err)
			}
			lats = append(lats, time.Since(submitted[w]))
		}
	}
	dur := time.Since(t0)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(p*float64(len(lats)-1))]
	}
	m := BurstMode{
		Coalescing:    coalescing,
		Updates:       len(lats),
		Duration:      dur,
		UpdatesPerSec: float64(len(lats)) / dur.Seconds(),
		AckP50:        q(0.50),
		AckP99:        q(0.99),
	}
	if st := srv.CoalesceStats(); st.Batches > 0 {
		m.Batches = st.Batches
		m.MeanFused = float64(st.Requests) / float64(st.Batches)
		m.Stalls = st.Stalls
	}
	return m, nil
}

// Burst runs the sustained-burst throughput scenario on the first
// configured dataset: a pipelined client keeps c.BurstDepth conflict-free
// single-change updates in flight flat out — all incident to one hub node,
// the flash-crowd shape of real bursts — first with coalescing off, then
// on. The coalescing run fuses what queues behind each in-flight update
// into one engine batch: the hub's neighbourhood recompute and fan-out run
// once per fused batch instead of once per request, on top of the fixed
// per-batch costs being amortised — the same economics the paper's ΔG
// batch-size sweep measures, applied to the serving pipeline.
func Burst(c Config) (BurstResult, error) {
	c = c.normalize()
	inst := c.build(c.Datasets[0])
	model := c.model(modelGCN, inst.X.Cols, gnn.AggMax)
	base, err := gnn.Infer(model, inst.G, inst.X, nil)
	if err != nil {
		return BurstResult{}, err
	}
	depth := c.BurstDepth
	waves := c.BurstUpdates / depth
	if waves < 1 {
		waves = 1
	}
	hub, pools := burstPools(inst.G, depth, 16)

	res := BurstResult{
		Dataset: inst.Spec.Name, Depth: depth, Waves: waves,
		Hub: hub, HubDegree: inst.G.OutDegree(hub),
	}
	if res.Off, err = runBurstMode(inst, model, base, pools, waves, false); err != nil {
		return BurstResult{}, err
	}
	if res.On, err = runBurstMode(inst, model, base, pools, waves, true); err != nil {
		return BurstResult{}, err
	}
	if res.Off.UpdatesPerSec > 0 {
		res.Speedup = res.On.UpdatesPerSec / res.Off.UpdatesPerSec
	}
	return res, nil
}
