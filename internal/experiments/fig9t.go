package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/train"
)

// Fig9TrainedPoint is one vertex-perturbation level of the trained
// GraphNorm experiment: test-set accuracy of the exact-statistics model
// and the frozen-approximation model on the perturbed graph — the paper's
// actual Fig. 9 metric, enabled by the training substrate and an SBM task
// with ground-truth labels.
type Fig9TrainedPoint struct {
	ChangePct           int
	AccExact, AccFrozen float64
}

// Fig9TrainedSeries is one dataset-profile curve.
type Fig9TrainedSeries struct {
	Dataset string
	Points  []Fig9TrainedPoint
}

// Fig9TrainedResult reproduces Fig. 9 with trained models: the paper
// reports <0.1% accuracy difference between accurate and approximate
// GraphNorm; here the model is trained by internal/train on a planted-
// partition task sized to the Cora and Reddit profiles.
type Fig9TrainedResult struct {
	Series []Fig9TrainedSeries
}

// Fig9Trained runs the experiment.
func Fig9Trained(cfg Config) (*Fig9TrainedResult, error) {
	cfg = cfg.normalize()
	res := &Fig9TrainedResult{}
	pcts := []int{-10, -5, -2, -1, 1, 2, 5, 10}
	const classes = 4
	for _, spec := range []dataset.Spec{dataset.Cora, dataset.Reddit} {
		uspec := spec
		uspec.Scale *= int64(cfg.ExtraScale)
		baseN := uspec.Nodes()
		if baseN < 100 {
			return nil, fmt.Errorf("fig9t: %s too small at this scale", spec.Name)
		}
		universeN := baseN + baseN/10 + 1
		avgDeg := 2 * float64(uspec.Edges()) / float64(uspec.Nodes())
		if avgDeg > 12 {
			avgDeg = 12 // keep training tractable on the dense profiles
		}
		// Noise and homophily are set so the trained model lands around
		// 80–95% test accuracy: a saturated task (100%) would make the
		// exact-vs-frozen comparison vacuous.
		sbm, err := dataset.GenerateSBM(dataset.SBMParams{
			Nodes: universeN, Classes: classes, AvgDegree: avgDeg,
			Homophily: 0.65, FeatLen: max(uspec.FeatLen(), classes), NoiseStd: 3.0,
		}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 3))
		prio := make([]graph.NodeID, universeN)
		for i, p := range rng.Perm(universeN) {
			prio[i] = graph.NodeID(p)
		}

		// Train once on the base graph (exact GraphNorm); the captured
		// statistics become the frozen approximation.
		baseG := sbm.G.InduceSubset(prio[:baseN])
		baseX := gatherRows(sbm.X, prio[:baseN])
		baseLabels := gatherLabels(sbm.Labels, prio[:baseN])
		trainIdx, testIdx := splitIdx(baseN, 0.6, cfg.Seed+4)
		tcfg := train.DefaultConfig(classes)
		tcfg.Hidden = cfg.Hidden
		tcfg.Seed = cfg.Seed + 5
		tcfg.Epochs = 80
		trained, err := train.Train(baseG, baseX, baseLabels, trainIdx, tcfg)
		if err != nil {
			return nil, err
		}
		exact := trained.Model
		frozen := &gnn.Model{Name: exact.Name, Layers: exact.Layers,
			Norms: []*gnn.GraphNorm{exact.Norms[0].Clone(), exact.Norms[1].Clone()}}
		for _, n := range frozen.Norms {
			if err := n.FreezeCaptured(); err != nil {
				return nil, err
			}
		}

		series := Fig9TrainedSeries{Dataset: spec.Name}
		for _, pct := range pcts {
			n := baseN + baseN*pct/100
			vg := sbm.G.InduceSubset(prio[:n])
			vx := gatherRows(sbm.X, prio[:n])
			vLabels := gatherLabels(sbm.Labels, prio[:n])
			// Evaluate on the base test nodes still present in the
			// variant (their indices are stable under prefix induction).
			var evalIdx []graph.NodeID
			for _, u := range testIdx {
				if int(u) < n {
					evalIdx = append(evalIdx, u)
				}
			}
			accE, err := train.Evaluate(exact, vg, vx, vLabels, evalIdx)
			if err != nil {
				return nil, err
			}
			accF, err := train.Evaluate(frozen, vg, vx, vLabels, evalIdx)
			if err != nil {
				return nil, err
			}
			series.Points = append(series.Points, Fig9TrainedPoint{
				ChangePct: pct, AccExact: accE, AccFrozen: accF,
			})
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

func gatherLabels(labels []int, ids []graph.NodeID) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = labels[id]
	}
	return out
}

func splitIdx(n int, frac float64, seed int64) (trainIdx, testIdx []graph.NodeID) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	cut := int(frac * float64(n))
	for i, p := range perm {
		if i < cut {
			trainIdx = append(trainIdx, graph.NodeID(p))
		} else {
			testIdx = append(testIdx, graph.NodeID(p))
		}
	}
	return trainIdx, testIdx
}

func (r *Fig9TrainedResult) Render() string {
	t := newTable("Fig. 9 (trained) — test accuracy, exact vs frozen GraphNorm (2-layer GCN, SBM task)",
		"dataset", "vertex change", "acc exact", "acc frozen", "|delta|")
	for _, s := range r.Series {
		for _, p := range s.Points {
			d := p.AccExact - p.AccFrozen
			if d < 0 {
				d = -d
			}
			t.addRow(s.Dataset, fmt.Sprintf("%+d%%", p.ChangePct),
				fmtPct(p.AccExact), fmtPct(p.AccFrozen), fmtPct(d))
		}
	}
	return t.String()
}
