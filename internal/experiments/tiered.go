package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/tensor"
)

// TieredPoint is one point of the working-set sweep: the full embedding
// footprint served at Factor× the memory cap (Factor 0 is the all-resident
// baseline).
type TieredPoint struct {
	Factor    int // working set as a multiple of the cap; 0 = resident
	CapBytes  int64
	UpdPerSec float64
	ReadP50   time.Duration
	ReadP99   time.Duration
	HitRate   float64 // cumulative over the point's run; 1 for resident
	FaultP99  time.Duration
	Evictions uint64
	HotBytes  int64
	// Exact is the row-accuracy audit verdict against the resident
	// reference: "bit-exact" (fp32 pages) or "within-tol" (quantized pages,
	// every channel inside the codec's error bound). Any violation aborts
	// the sweep with an error instead of degrading this field.
	Exact string
}

// TieredResult is the tiered-store working-set sweep (DESIGN.md §14).
type TieredResult struct {
	Dataset   string
	Nodes     int
	Dim       int
	Footprint int64 // encoded bytes of the full embedding set
	Quant     string
	Updates   int
	Reads     int // audited reads per sweep point
	Points    []TieredPoint
}

// Render prints one machine-parsable line per sweep point (consumed by
// scripts/bench_snapshot.sh).
func (r TieredResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tiered working-set sweep (%s): %d nodes × dim %d = %d KiB encoded, quant=%s, %d update batches, %d reads/point\n",
		r.Dataset, r.Nodes, r.Dim, r.Footprint>>10, r.Quant, r.Updates, r.Reads)
	for _, p := range r.Points {
		fmt.Fprintf(&b, "tiered-sweep: factor=%d cap-kb=%d upd/s=%.1f read-p50=%v read-p99=%v hit=%.3f fault-p99=%v evictions=%d hot-kb=%d quant=%s %s\n",
			p.Factor, p.CapBytes>>10, p.UpdPerSec, p.ReadP50, p.ReadP99,
			p.HitRate, p.FaultP99, p.Evictions, p.HotBytes>>10, r.Quant, p.Exact)
	}
	b.WriteString("  (factor 0 = resident baseline; every read audited against it)")
	return b.String()
}

// TieredSweep measures the tiered row store against the resident baseline:
// for each working-set factor F the full embedding footprint is served
// under a cap of footprint/F, a mixed stream of update batches and
// Zipf-skewed reads runs to completion, and every read is audited against
// the resident reference state of the same batch (bit-exact for fp32
// pages, within the codec error bound when quantized).
func TieredSweep(c Config) (TieredResult, error) {
	c = c.normalize()
	inst := c.build(c.Datasets[0])
	quant, err := tensor.ParseQuant(c.TieredQuant)
	if err != nil {
		return TieredResult{}, err
	}
	model := c.model(modelGCN, inst.X.Cols, gnn.AggMax)

	// Pre-draw the update stream once so every point replays identical work.
	srng := rand.New(rand.NewSource(c.Seed + 9))
	shadow := inst.G.Clone()
	deltas := make([]graph.Delta, c.MixedUpdates)
	for i := range deltas {
		deltas[i] = graph.RandomDelta(srng, shadow, 8)
		if err := deltas[i].Apply(shadow); err != nil {
			return TieredResult{}, err
		}
	}

	// The resident reference replays the stream once up front, keeping the
	// COW snapshot of every batch (unchanged rows are shared between
	// snapshots, so this retains roughly the touched rows per batch).
	ref, err := inkstream.New(model, inst.G.Clone(), inst.X, nil, inkstream.Options{})
	if err != nil {
		return TieredResult{}, err
	}
	refSnaps := make([]*inkstream.Snapshot, len(deltas))
	for i, d := range deltas {
		if err := ref.Apply(append(graph.Delta(nil), d...), nil); err != nil {
			return TieredResult{}, err
		}
		refSnaps[i] = ref.PublishSnapshot()
	}

	dim := ref.Output().Cols
	nodes := inst.G.NumNodes()
	res := TieredResult{
		Dataset: inst.Spec.Name, Nodes: nodes, Dim: dim,
		Footprint: int64(nodes) * int64(quant.RowBytes(dim)),
		Quant:     quant.String(),
		Updates:   len(deltas), Reads: c.TieredReadsPerBatch * len(deltas),
	}
	for _, factor := range append([]int{0}, c.TieredFactors...) {
		pt, err := c.runTieredPoint(model, inst, refSnaps, deltas, quant, factor, res.Footprint)
		if err != nil {
			return TieredResult{}, fmt.Errorf("factor %d: %w", factor, err)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// runTieredPoint replays the prepared stream through a fresh engine at one
// cap factor, interleaving Zipf-skewed audited reads after every
// publication.
func (c Config) runTieredPoint(model *gnn.Model, inst instance, refSnaps []*inkstream.Snapshot,
	deltas []graph.Delta, quant tensor.Quant, factor int, footprint int64) (pt TieredPoint, err error) {
	eng, err := inkstream.New(model, inst.G.Clone(), inst.X, nil, inkstream.Options{})
	if err != nil {
		return TieredPoint{}, err
	}
	pt = TieredPoint{Factor: factor, HitRate: 1, Exact: "bit-exact"}
	if quant != tensor.QuantF32 {
		pt.Exact = "within-tol"
	}
	if factor > 0 {
		memCap := footprint / int64(factor)
		pageBytes := 4 << 10
		if memCap < int64(pageBytes) {
			pageBytes = int(memCap)
		}
		dir, derr := os.MkdirTemp("", "inkbench-tiered-")
		if derr != nil {
			return TieredPoint{}, derr
		}
		defer os.RemoveAll(dir)
		faultLat := obs.NewLatencyHistogram()
		store, serr := persist.NewTieredStore(persist.TieredConfig{
			Dir: dir, Dim: eng.Output().Cols,
			PageBytes: pageBytes, MemCap: memCap, Quant: quant, FaultLatency: faultLat,
		})
		if serr != nil {
			return TieredPoint{}, serr
		}
		defer store.Close()
		if err := eng.SetRowStore(store); err != nil {
			return TieredPoint{}, err
		}
		pt.CapBytes = memCap
		defer func() {
			s := store.Stats()
			pt.HitRate = s.HitRate()
			pt.Evictions = s.Evictions
			pt.HotBytes = s.HotBytes
			pt.FaultP99 = time.Duration(faultLat.Snapshot().P99())
		}()
	}

	// Zipf-skewed touch pattern scattered over the node range so the hot
	// set spans many pages (the hard case for the clock cache).
	rng := rand.New(rand.NewSource(c.Seed + 31))
	nodes := uint64(inst.G.NumNodes())
	zipf := rand.NewZipf(rng, 1.3, 4, nodes-1)
	pick := func() int { return int((zipf.Uint64() * 2654435761) % nodes) }

	readLats := make([]time.Duration, 0, c.TieredReadsPerBatch*len(deltas))
	var updTime time.Duration
	for i, delta := range deltas {
		u0 := time.Now()
		if err := eng.Apply(append(graph.Delta(nil), delta...), nil); err != nil {
			return TieredPoint{}, err
		}
		snap := eng.PublishSnapshot()
		updTime += time.Since(u0)
		for r := 0; r < c.TieredReadsPerBatch; r++ {
			node := pick()
			t0 := time.Now()
			row := snap.Row(node)
			readLats = append(readLats, time.Since(t0))
			if row == nil {
				return TieredPoint{}, fmt.Errorf("row %d unavailable at batch %d", node, i)
			}
			want := refSnaps[i].Row(node)
			if quant == tensor.QuantF32 {
				if !row.Equal(want) {
					return TieredPoint{}, fmt.Errorf("row %d not bit-exact at batch %d", node, i)
				}
			} else if !withinQuantBound(row, want, quant) {
				return TieredPoint{}, fmt.Errorf("row %d outside the %s error bound at batch %d", node, quant, i)
			}
		}
	}
	if updTime > 0 {
		pt.UpdPerSec = float64(len(deltas)) / updTime.Seconds()
	}
	sort.Slice(readLats, func(i, j int) bool { return readLats[i] < readLats[j] })
	if len(readLats) > 0 {
		pt.ReadP50 = readLats[len(readLats)/2]
		pt.ReadP99 = readLats[int(0.99*float64(len(readLats)-1))]
	}
	return pt, nil
}

// withinQuantBound checks every channel of got against want within the
// codec's worst-case error for want.
func withinQuantBound(got, want tensor.Vector, q tensor.Quant) bool {
	if len(got) != len(want) {
		return false
	}
	bound := q.ErrorBound(want)
	for i := range want {
		d := got[i] - want[i]
		if d < 0 {
			d = -d
		}
		if d > bound {
			return false
		}
	}
	return true
}
