package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
)

// Fig1aResult reproduces Fig. 1a: the ratio of the theoretically affected
// area (the (k−1)-hop out-neighborhood of the changed-edge endpoints for a
// k-layer GNN) to the full graph, on the Cora profile, as ΔG and the model
// depth k vary.
type Fig1aResult struct {
	Dataset string
	DeltaGs []int
	Ks      []int
	// Ratio[ki][di] = affected/|V| for Ks[ki], DeltaGs[di].
	Ratio [][]float64
}

// Fig1a runs the experiment.
func Fig1a(cfg Config) (*Fig1aResult, error) {
	cfg = cfg.normalize()
	inst := cfg.build(dataset.Cora)
	res := &Fig1aResult{
		Dataset: inst.Spec.Name,
		DeltaGs: []int{1, 10, 100, 1000, 10000},
		Ks:      []int{1, 2, 3, 4, 5},
	}
	n := inst.G.NumNodes()
	maxDeltaG := inst.G.NumEdges() / 2
	for _, k := range res.Ks {
		row := make([]float64, len(res.DeltaGs))
		for di, dg := range res.DeltaGs {
			if dg > maxDeltaG {
				row[di] = -1 // not measurable at this scale
				continue
			}
			var sum float64
			scen := cfg.scenariosFor(dg)
			deltas := cfg.scenarioDeltas(inst.G, dg, scen)
			for _, d := range deltas {
				g2 := inst.G.Clone()
				if err := d.Apply(g2); err != nil {
					return nil, err
				}
				aff := graph.KHopOut(g2, d.Touched(g2.Undirected), k-1)
				sum += float64(aff.Size()) / float64(n)
			}
			row[di] = sum / float64(scen)
		}
		res.Ratio = append(res.Ratio, row)
	}
	return res, nil
}

func (r *Fig1aResult) Render() string {
	t := newTable(fmt.Sprintf("Fig. 1a — theoretical affected area / full graph (%s)", r.Dataset),
		append([]string{"k \\ dG"}, intHeaders(r.DeltaGs)...)...)
	for ki, k := range r.Ks {
		cells := []string{fmt.Sprintf("k=%d", k)}
		for di := range r.DeltaGs {
			if r.Ratio[ki][di] < 0 {
				cells = append(cells, "n/a")
			} else {
				cells = append(cells, fmtPct(r.Ratio[ki][di]))
			}
		}
		t.addRow(cells...)
	}
	return t.String()
}

func intHeaders(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("dG=%d", x)
	}
	return out
}

// Fig1bResult reproduces Fig. 1b: the ratio of really affected nodes (any
// layer's cached embedding changed bit-wise under the max aggregator) to
// the theoretically affected area, at ΔG=100 on the Cora, Yelp and
// papers100M profiles with a 2-layer GCN.
type Fig1bResult struct {
	Datasets []string
	Ratio    []float64 // real / theoretical, averaged over scenarios
}

// Fig1b runs the experiment.
func Fig1b(cfg Config) (*Fig1bResult, error) {
	cfg = cfg.normalize()
	res := &Fig1bResult{}
	for _, spec := range []dataset.Spec{dataset.Cora, dataset.Yelp, dataset.Papers100M} {
		inst := cfg.build(spec)
		model := cfg.model(modelGCN, inst.X.Cols, gnn.AggMax)
		base, err := gnn.Infer(model, inst.G, inst.X, nil)
		if err != nil {
			return nil, err
		}
		scen := cfg.scenariosFor(100)
		deltas := cfg.scenarioDeltas(inst.G, 100, scen)
		var sum float64
		for _, d := range deltas {
			eng, err := inkstream.NewFromState(model, inst.G.Clone(), base.Clone(), nil, inkstream.Options{})
			if err != nil {
				return nil, err
			}
			if err := eng.Update(append(graph.Delta(nil), d...)); err != nil {
				return nil, err
			}
			theo := graph.KHopOut(eng.Graph(), d.Touched(eng.Graph().Undirected), model.NumLayers()-1)
			real := 0
			st := eng.State()
			for u := 0; u < st.NumNodes(); u++ {
				for l := 1; l < len(st.H); l++ {
					if !st.H[l].Row(u).Equal(base.H[l].Row(u)) {
						real++
						break
					}
				}
			}
			if theo.Size() > 0 {
				sum += float64(real) / float64(theo.Size())
			}
		}
		res.Datasets = append(res.Datasets, spec.Name)
		res.Ratio = append(res.Ratio, sum/float64(scen))
	}
	return res, nil
}

func (r *Fig1bResult) Render() string {
	t := newTable("Fig. 1b — real affected nodes / theoretical affected area (GCN k=2, max, dG=100)",
		"dataset", "real/theoretical")
	for i, d := range r.Datasets {
		t.addRow(d, fmtPct(r.Ratio[i]))
	}
	return t.String()
}
