package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// Fig9Point is one vertex-perturbation level of the GraphNorm experiment:
// ChangePct < 0 removes |ChangePct|% of the vertices (uniformly at
// random), > 0 adds that many. Agreement is the fraction of common
// vertices whose predicted class (argmax output channel) matches between
// the exact-GraphNorm model and the frozen-approximation model, and
// Deviation the mean relative L2 distance of their output embeddings —
// the reproduction's stand-ins for the paper's test-set accuracy
// comparison (no labels exist for synthetic graphs; the paper's <0.1%
// accuracy delta corresponds to near-perfect agreement and tiny
// deviation).
type Fig9Point struct {
	ChangePct int
	Agreement float64
	Deviation float64
}

// Fig9Series is one dataset's curve.
type Fig9Series struct {
	Dataset string
	Points  []Fig9Point
}

// Fig9Result reproduces Fig. 9 (2-layer GCN + GraphNorm, Cora and Reddit).
// The GCN uses the max aggregator (the paper's InkStream-m variant): with
// random untrained weights, mean aggregation over the dense scaled-down
// graphs collapses the per-channel spread to near zero and GraphNorm's
// 1/σ then amplifies any statistic drift into spurious disagreement; the
// selective max aggregator preserves spread the way trained embeddings do.
type Fig9Result struct {
	Series []Fig9Series
}

// Fig9 runs the experiment.
func Fig9(cfg Config) (*Fig9Result, error) {
	cfg = cfg.normalize()
	res := &Fig9Result{}
	pcts := []int{-10, -5, -2, -1, 1, 2, 5, 10}
	for _, spec := range []dataset.Spec{dataset.Cora, dataset.Reddit} {
		// Generate a universe 10% larger than the base vertex set, plus a
		// random priority order: the n-vertex variant is the subgraph
		// induced by the first n priorities, so removals/additions are
		// uniform vertex samples and variants are nested.
		uspec := spec
		uspec.Scale *= int64(cfg.ExtraScale)
		baseN := uspec.Nodes()
		if baseN < 64 {
			return nil, fmt.Errorf("fig9: %s too small at this scale", spec.Name)
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		universeN := baseN + baseN/10 + 1
		universeE := uspec.Edges() + uspec.Edges()/10
		universe := dataset.GenerateRMAT(rng, universeN, universeE, dataset.DefaultRMAT)
		feats := dataset.NewFeatures(rng, universeN, uspec.FeatLen())
		prio := make([]graph.NodeID, universeN)
		for i, p := range rng.Perm(universeN) {
			prio[i] = graph.NodeID(p)
		}

		series := Fig9Series{Dataset: spec.Name}
		for _, pct := range pcts {
			n := baseN + baseN*pct/100
			pt, err := fig9Point(cfg, universe, feats.X, prio, baseN, n)
			if err != nil {
				return nil, fmt.Errorf("fig9 %s %+d%%: %w", spec.Name, pct, err)
			}
			pt.ChangePct = pct
			series.Points = append(series.Points, pt)
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// fig9Point simulates training on the baseN-vertex graph (capturing the
// GraphNorm statistics of that inference), then compares exact vs frozen
// GraphNorm on the n-vertex variant.
func fig9Point(cfg Config, universe *graph.Graph, x *tensor.Matrix, prio []graph.NodeID, baseN, n int) (Fig9Point, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 500))
	exact := gnn.NewGCN(rng, x.Cols, cfg.Hidden, gnn.NewAggregator(gnn.AggMax))
	exact.Norms = []*gnn.GraphNorm{gnn.NewGraphNorm(cfg.Hidden), gnn.NewGraphNorm(cfg.Hidden)}

	// "Training" pass: exact inference on the base graph records μ and σ².
	baseG := universe.InduceSubset(prio[:baseN])
	if _, err := gnn.Infer(exact, baseG, gatherRows(x, prio[:baseN]), nil); err != nil {
		return Fig9Point{}, err
	}
	frozen := &gnn.Model{Name: exact.Name, Layers: exact.Layers,
		Norms: []*gnn.GraphNorm{exact.Norms[0].Clone(), exact.Norms[1].Clone()}}
	for _, nrm := range frozen.Norms {
		if err := nrm.FreezeCaptured(); err != nil {
			return Fig9Point{}, err
		}
	}

	// Perturbed vertex set (nested prefix of the priority order).
	vg := universe.InduceSubset(prio[:n])
	vx := gatherRows(x, prio[:n])
	sExact, err := gnn.Infer(exact, vg, vx, nil)
	if err != nil {
		return Fig9Point{}, err
	}
	sFrozen, err := gnn.Infer(frozen, vg, vx, nil)
	if err != nil {
		return Fig9Point{}, err
	}
	common := baseN
	if n < common {
		common = n
	}
	same := 0
	var dev float64
	for u := 0; u < common; u++ {
		re, rf := sExact.Output().Row(u), sFrozen.Output().Row(u)
		if argmax(re) == argmax(rf) {
			same++
		}
		dev += relL2(re, rf)
	}
	return Fig9Point{
		Agreement: float64(same) / float64(common),
		Deviation: dev / float64(common),
	}, nil
}

// gatherRows builds a matrix whose row i is m's row ids[i].
func gatherRows(m *tensor.Matrix, ids []graph.NodeID) *tensor.Matrix {
	out := tensor.NewMatrix(len(ids), m.Cols)
	for i, id := range ids {
		copy(out.Row(i), m.Row(int(id)))
	}
	return out
}

func argmax(v tensor.Vector) int {
	best, bi := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, bi = x, i+1
		}
	}
	return bi
}

// relL2 returns ‖a−b‖ / max(‖a‖, ε).
func relL2(a, b tensor.Vector) float64 {
	var num, den float64
	for i := range a {
		d := float64(a[i] - b[i])
		num += d * d
		den += float64(a[i]) * float64(a[i])
	}
	if den < 1e-12 {
		den = 1e-12
	}
	return math.Sqrt(num) / math.Sqrt(den)
}

func (r *Fig9Result) Render() string {
	t := newTable("Fig. 9 — exact vs approximate GraphNorm (2-layer GCN)",
		"dataset", "vertex change", "agreement", "output deviation")
	for _, s := range r.Series {
		for _, p := range s.Points {
			t.addRow(s.Dataset, fmt.Sprintf("%+d%%", p.ChangePct), fmtPct(p.Agreement), fmtPct(p.Deviation))
		}
	}
	return t.String()
}
