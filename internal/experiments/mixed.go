package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/server"
)

// MixedResult reports the mixed read/write workload: read latency
// quantiles observed by concurrent paced readers while one update stream
// drives the server's single-writer pipeline flat out.
type MixedResult struct {
	Dataset    string
	Readers    int
	Updates    int
	Duration   time.Duration
	UpdateMean time.Duration
	UpdateP99  time.Duration
	Reads      int
	ReadP50    time.Duration
	ReadP99    time.Duration
	ReadMax    time.Duration
	FinalEpoch uint64
}

// Render formats the mixed-workload report.
func (r MixedResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mixed workload (%s): %d readers vs 1 update stream, %v\n",
		r.Dataset, r.Readers, r.Duration.Round(time.Millisecond))
	fmt.Fprintf(&b, "  updates: %d applied, mean %v, p99 %v (final snapshot epoch %d)\n",
		r.Updates, r.UpdateMean.Round(time.Microsecond), r.UpdateP99.Round(time.Microsecond),
		r.FinalEpoch)
	fmt.Fprintf(&b, "  reads:   %d served (%.0f/s), p50 %v, p99 %v, max %v\n",
		r.Reads, float64(r.Reads)/r.Duration.Seconds(),
		r.ReadP50, r.ReadP99, r.ReadMax)
	b.WriteString("  (lock-free snapshot path: read tail stays flat regardless of update cost)")
	return b.String()
}

// Mixed runs the mixed-workload benchmark on the first configured dataset:
// c.Readers goroutines issue paced embedding reads against the published
// snapshot while the main goroutine streams c.MixedUpdates ΔG batches
// through the server pipeline. The paper's serving claim is exactly this
// shape — instantaneous reads concurrent with incremental updates.
func Mixed(c Config) (MixedResult, error) {
	c = c.normalize()
	inst := c.build(c.Datasets[0])
	rng := rand.New(rand.NewSource(c.Seed))
	model := c.model(modelGCN, inst.X.Cols, gnn.AggMax)
	eng, err := inkstream.New(model, inst.G, inst.X, nil, inkstream.Options{})
	if err != nil {
		return MixedResult{}, err
	}
	srv := server.New(eng, nil)
	defer srv.Close()

	const readPace = 100 * time.Microsecond
	const maxSamples = 100_000
	nodes := inst.G.NumNodes()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	readLats := make([][]time.Duration, c.Readers)
	readCounts := make([]int, c.Readers)
	for r := 0; r < c.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(c.Seed + int64(r) + 1000))
			// The stop check follows the read, so every reader reports at
			// least one sample even if a short update stream finishes before
			// the scheduler first runs this goroutine.
			for {
				time.Sleep(readPace)
				node := rng.Intn(nodes)
				t0 := time.Now()
				if _, _, ok := srv.ReadEmbedding(node); !ok {
					return
				}
				lat := time.Since(t0)
				readCounts[r]++
				if len(readLats[r]) < maxSamples {
					readLats[r] = append(readLats[r], lat)
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(r)
	}

	// The update stream: deltas are generated against a shadow clone (the
	// engine's graph is mutated concurrently by the pipeline's apply
	// stage, so it must not be read here).
	shadow := eng.Graph().Clone()
	updLats := make([]time.Duration, 0, c.MixedUpdates)
	t0 := time.Now()
	for i := 0; i < c.MixedUpdates; i++ {
		delta := graph.RandomDelta(rng, shadow, 16)
		if err := delta.Apply(shadow); err != nil {
			return MixedResult{}, err
		}
		u0 := time.Now()
		if err := srv.Apply(delta, nil); err != nil {
			return MixedResult{}, err
		}
		updLats = append(updLats, time.Since(u0))
	}
	dur := time.Since(t0)
	close(stop)
	wg.Wait()

	var all []time.Duration
	reads := 0
	for r := range readLats {
		all = append(all, readLats[r]...)
		reads += readCounts[r]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(updLats, func(i, j int) bool { return updLats[i] < updLats[j] })
	q := func(l []time.Duration, p float64) time.Duration {
		if len(l) == 0 {
			return 0
		}
		return l[int(p*float64(len(l)-1))]
	}
	var updSum time.Duration
	for _, d := range updLats {
		updSum += d
	}
	var updMean time.Duration
	if len(updLats) > 0 {
		updMean = updSum / time.Duration(len(updLats))
	}
	res := MixedResult{
		Dataset:    inst.Spec.Name,
		Readers:    c.Readers,
		Updates:    len(updLats),
		Duration:   dur,
		UpdateMean: updMean,
		UpdateP99:  q(updLats, 0.99),
		Reads:      reads,
		ReadP50:    q(all, 0.50),
		ReadP99:    q(all, 0.99),
		ReadMax:    q(all, 1.0),
		FinalEpoch: srv.Snapshot().Epoch,
	}
	return res, nil
}
