package experiments

import (
	"repro/internal/gnn"
	"repro/internal/inkstream"
)

// Fig8Row is the evolvable-condition distribution of one model on one
// dataset for InkStream-m: fractions of nodes in the affected area that
// were pruned, incrementally updated without reset, incrementally updated
// with covered reset, recomputed (exposed reset), or reprocessed only for
// their own message (self-dependent models).
type Fig8Row struct {
	Model    string
	Dataset  string
	Pruned   float64
	NoReset  float64
	Covered  float64
	Exposed  float64
	SelfOnly float64
}

// Fig8Result reproduces Fig. 8.
type Fig8Result struct {
	Rows []Fig8Row
}

// Fig8 runs the experiment.
func Fig8(cfg Config) (*Fig8Result, error) {
	cfg = cfg.normalize()
	res := &Fig8Result{}
	for _, kind := range []modelKind{modelGCN, modelSAGE, modelGIN} {
		dg := deltaGFor(kind)
		for _, spec := range cfg.Datasets {
			inst := cfg.build(spec)
			model := cfg.model(kind, inst.X.Cols, gnn.AggMax)
			base, err := gnn.Infer(model, inst.G, inst.X, nil)
			if err != nil {
				return nil, err
			}
			scen := cfg.scenariosFor(dg)
			deltas := cfg.scenarioDeltas(inst.G, dg, scen)
			var stats inkstream.ConditionStats
			for _, d := range deltas {
				m, err := runInk(model, inst, base, d, inkstream.Options{})
				if err != nil {
					return nil, err
				}
				stats.Merge(&m.Stats)
			}
			res.Rows = append(res.Rows, Fig8Row{
				Model:    string(kind),
				Dataset:  spec.Name,
				Pruned:   stats.Fraction(inkstream.CondPruned),
				NoReset:  stats.Fraction(inkstream.CondNoReset),
				Covered:  stats.Fraction(inkstream.CondCoveredReset),
				Exposed:  stats.Fraction(inkstream.CondExposedReset),
				SelfOnly: stats.Fraction(inkstream.CondSelfOnly),
			})
		}
	}
	return res, nil
}

func (r *Fig8Result) Render() string {
	t := newTable("Fig. 8 — distribution of evolvable conditions (InkStream-m)",
		"model", "dataset", "pruned", "no-reset", "covered", "exposed", "self-only")
	for _, row := range r.Rows {
		t.addRow(row.Model, row.Dataset,
			fmtPct(row.Pruned), fmtPct(row.NoReset), fmtPct(row.Covered),
			fmtPct(row.Exposed), fmtPct(row.SelfOnly))
	}
	return t.String()
}
