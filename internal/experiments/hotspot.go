package experiments

import (
	"math/rand"
	"strconv"
	"time"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
)

// HotspotRow compares InkStream's update latency under uniform edge churn
// vs hub-biased churn on one dataset. The paper attributes the variance in
// its ΔG sweeps to "the randomness introduced by the location of changed
// edges in a graph"; this experiment isolates that factor: changes landing
// on hubs blow up the affected area and the latency with it.
type HotspotRow struct {
	Dataset      string
	Uniform, Hot time.Duration
	// AffectedUniform/Hot are the mean theoretical affected-area sizes.
	AffectedUniform, AffectedHot int
}

// HotspotResult is the `hotspot` experiment output.
type HotspotResult struct {
	DeltaG int
	Rows   []HotspotRow
}

// Hotspot runs the experiment on a 2-layer max-GCN, ΔG=10.
func Hotspot(cfg Config) (*HotspotResult, error) {
	cfg = cfg.normalize()
	const deltaG = 10
	const bias = 16
	res := &HotspotResult{DeltaG: deltaG}
	for _, spec := range cfg.Datasets {
		inst := cfg.build(spec)
		model := cfg.model(modelGCN, inst.X.Cols, gnn.AggMax)
		base, err := gnn.Infer(model, inst.G, inst.X, nil)
		if err != nil {
			return nil, err
		}
		scen := cfg.scenariosFor(deltaG)
		rng := rand.New(rand.NewSource(cfg.Seed + 51))
		row := HotspotRow{Dataset: spec.Name}
		var affU, affH int
		for s := 0; s < scen; s++ {
			uniform := graph.RandomDelta(rng, inst.G, deltaG)
			hot := graph.RandomDeltaHot(rng, inst.G, deltaG, bias)

			m, err := runInk(model, inst, base, uniform, inkstream.Options{})
			if err != nil {
				return nil, err
			}
			row.Uniform += m.Time
			m, err = runInk(model, inst, base, hot, inkstream.Options{})
			if err != nil {
				return nil, err
			}
			row.Hot += m.Time

			affU += affectedSize(inst.G, uniform, model.NumLayers())
			affH += affectedSize(inst.G, hot, model.NumLayers())
		}
		row.Uniform /= time.Duration(scen)
		row.Hot /= time.Duration(scen)
		row.AffectedUniform = affU / scen
		row.AffectedHot = affH / scen
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// affectedSize measures the theoretical affected area of delta on a clone
// of g.
func affectedSize(g *graph.Graph, delta graph.Delta, layers int) int {
	g2 := g.Clone()
	if err := delta.Apply(g2); err != nil {
		return 0
	}
	return graph.KHopOut(g2, delta.Touched(g2.Undirected), layers-1).Size()
}

func (r *HotspotResult) Render() string {
	t := newTable("Hotspot churn — uniform vs hub-biased changed edges (GCN, max, InkStream-m)",
		"dataset", "uniform time", "hot time", "uniform affected", "hot affected")
	for _, row := range r.Rows {
		t.addRow(row.Dataset, fmtDur(row.Uniform), fmtDur(row.Hot),
			strconv.Itoa(row.AffectedUniform), strconv.Itoa(row.AffectedHot))
	}
	return t.String()
}
