package experiments

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/dataset"
	"repro/internal/gnn"
	"repro/internal/inkstream"
)

// ScalingRow is one graph size of the scaling sweep.
type ScalingRow struct {
	Nodes, Edges  int
	KHop, Ink     time.Duration
	FullInference time.Duration
	Speedup       float64 // k-hop / InkStream
}

// ScalingResult isolates the paper's cross-dataset trend on a single
// profile: with ΔG fixed, the affected area stays roughly constant while
// the graph grows, so full inference scales with the graph, the k-hop
// baseline with the (2k-hop) fetch volume, and InkStream stays nearly
// flat — its speedup grows with graph size. The sweep runs the Reddit
// profile at successively smaller down-scale factors.
type ScalingResult struct {
	DeltaG int
	Rows   []ScalingRow
}

// Scaling runs the sweep (GCN, max aggregation, ΔG=10).
func Scaling(cfg Config) (*ScalingResult, error) {
	cfg = cfg.normalize()
	const deltaG = 10
	res := &ScalingResult{DeltaG: deltaG}
	// From 16x the configured scale down to it, halving each step.
	for mult := 16; mult >= 1; mult /= 2 {
		c := cfg
		c.ExtraScale = cfg.ExtraScale * mult
		inst := c.build(dataset.Reddit)
		model := c.model(modelGCN, inst.X.Cols, gnn.AggMax)
		base, err := gnn.Infer(model, inst.G, inst.X, nil)
		if err != nil {
			return nil, err
		}
		scen := cfg.scenariosFor(deltaG)
		deltas := cfg.scenarioDeltas(inst.G, deltaG, scen)
		var kh, ink, full []measured
		for si, d := range deltas {
			m, _, err := runKHop(model, inst, d)
			if err != nil {
				return nil, err
			}
			kh = append(kh, m)
			m, err = runInk(model, inst, base, d, inkstream.Options{})
			if err != nil {
				return nil, err
			}
			ink = append(ink, m)
			m, err = runFull(model, inst, d, 0, cfg.Seed+int64(si))
			if err != nil {
				return nil, err
			}
			full = append(full, m)
		}
		row := ScalingRow{
			Nodes: inst.G.NumNodes(), Edges: inst.G.NumEdges(),
			KHop: avg(kh).Time, Ink: avg(ink).Time, FullInference: avg(full).Time,
		}
		if row.Ink > 0 {
			row.Speedup = float64(row.KHop) / float64(row.Ink)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r *ScalingResult) Render() string {
	t := newTable("Scaling — fixed dG, growing graph (Reddit profile, GCN, max)",
		"nodes", "edges", "full", "k-hop", "inkstream", "speedup vs k-hop")
	for _, row := range r.Rows {
		t.addRow(strconv.Itoa(row.Nodes), strconv.Itoa(row.Edges),
			fmtDur(row.FullInference), fmtDur(row.KHop), fmtDur(row.Ink),
			fmt.Sprintf("%.1fx", row.Speedup))
	}
	return t.String()
}
