package experiments

import (
	"fmt"
	"time"

	"repro/internal/gnn"
	"repro/internal/inkstream"
)

// FusedMemLimit is the memory cap of the Graphiler stand-in, standing in
// for the paper's 48 GB GPU at our dataset scale. Working sets above it
// report OOM, reproducing the paper's pattern of Graphiler failures on
// large graphs and deep models.
const FusedMemLimit = 100 << 20

// Table4Row is one dataset column of one model block of Table IV.
type Table4Row struct {
	Dataset string
	Full    time.Duration // PyG (+SAGE sampler)
	KHop    time.Duration
	Fused   time.Duration // Graphiler stand-in
	FusedOK bool          // false = OOM
	InkM    time.Duration // InkStream-m (max)
	InkA    time.Duration // InkStream-a (mean)
}

// Table4Block is one model's section of Table IV.
type Table4Block struct {
	Model  string
	DeltaG int
	Rows   []Table4Row
}

// Table4Result reproduces Table IV: inference-time comparison of the five
// methods across three models and six datasets.
type Table4Result struct {
	Blocks []Table4Block
}

// Table4 runs the experiment.
func Table4(cfg Config) (*Table4Result, error) {
	cfg = cfg.normalize()
	res := &Table4Result{}
	for _, kind := range []modelKind{modelGCN, modelSAGE, modelGIN} {
		block := Table4Block{Model: string(kind), DeltaG: deltaGFor(kind)}
		for _, spec := range cfg.Datasets {
			inst := cfg.build(spec)
			row, err := table4Row(cfg, kind, inst, block.DeltaG)
			if err != nil {
				return nil, fmt.Errorf("table4 %s/%s: %w", kind, spec.Name, err)
			}
			row.Dataset = spec.Name
			block.Rows = append(block.Rows, row)
		}
		res.Blocks = append(res.Blocks, block)
	}
	return res, nil
}

func table4Row(cfg Config, kind modelKind, inst instance, deltaG int) (Table4Row, error) {
	maxModel := cfg.model(kind, inst.X.Cols, gnn.AggMax)
	meanModel := cfg.model(kind, inst.X.Cols, gnn.AggMean)

	// Bootstrap the InkStream states once per variant (untimed, as in the
	// paper: the initial full inference is the input to the method).
	baseMax, err := gnn.Infer(maxModel, inst.G, inst.X, nil)
	if err != nil {
		return Table4Row{}, err
	}
	baseMean, err := gnn.Infer(meanModel, inst.G, inst.X, nil)
	if err != nil {
		return Table4Row{}, err
	}

	scen := cfg.scenariosFor(deltaG)
	deltas := cfg.scenarioDeltas(inst.G, deltaG, scen)

	var full, khop, fused, inkM, inkA []measured
	for si, d := range deltas {
		m, err := runFull(meanModel, inst, d, 10, cfg.Seed+int64(si))
		if err != nil {
			return Table4Row{}, err
		}
		full = append(full, m)
		m, _, err = runKHop(maxModel, inst, d)
		if err != nil {
			return Table4Row{}, err
		}
		khop = append(khop, m)
		m, err = runFused(meanModel, inst, d, FusedMemLimit)
		if err != nil {
			return Table4Row{}, err
		}
		fused = append(fused, m)
		m, err = runInk(maxModel, inst, baseMax, d, inkstream.Options{})
		if err != nil {
			return Table4Row{}, err
		}
		inkM = append(inkM, m)
		m, err = runInk(meanModel, inst, baseMean, d, inkstream.Options{})
		if err != nil {
			return Table4Row{}, err
		}
		inkA = append(inkA, m)
	}
	af, ak, ag := avg(full), avg(khop), avg(fused)
	am, aa := avg(inkM), avg(inkA)
	return Table4Row{
		Full: af.Time, KHop: ak.Time,
		Fused: ag.Time, FusedOK: !ag.OOM,
		InkM: am.Time, InkA: aa.Time,
	}, nil
}

func (r *Table4Result) Render() string {
	out := ""
	for _, b := range r.Blocks {
		t := newTable(fmt.Sprintf("Table IV — inference time, %s (dG=%d); speedups vs k-hop", b.Model, b.DeltaG),
			append([]string{"method"}, colNames(b.Rows)...)...)
		addMethodRow := func(name string, get func(Table4Row) string) {
			cells := []string{name}
			for _, row := range b.Rows {
				cells = append(cells, get(row))
			}
			t.addRow(cells...)
		}
		addMethodRow("PyG(+SAGE sampler)", func(r Table4Row) string { return fmtDur(r.Full) })
		addMethodRow("k-hop", func(r Table4Row) string { return fmtDur(r.KHop) + " (1x)" })
		addMethodRow("Graphiler(fused)", func(r Table4Row) string {
			if !r.FusedOK {
				return "OOM"
			}
			return fmtDur(r.Fused) + " (" + fmtSpeedup(r.KHop, r.Fused) + ")"
		})
		addMethodRow("InkStream-m", func(r Table4Row) string {
			return fmtDur(r.InkM) + " (" + fmtSpeedup(r.KHop, r.InkM) + ")"
		})
		addMethodRow("InkStream-a", func(r Table4Row) string {
			return fmtDur(r.InkA) + " (" + fmtSpeedup(r.KHop, r.InkA) + ")"
		})
		out += t.String() + "\n"
	}
	return out
}

func colNames(rows []Table4Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.Dataset
	}
	return out
}
