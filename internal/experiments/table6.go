package experiments

import (
	"time"

	"repro/internal/gnn"
	"repro/internal/inkstream"
)

// Table6Row is the ablation of one dataset: k-hop vs intra-layer-only
// InkStream-m (component 1) vs the full method (components 1 & 2).
type Table6Row struct {
	Dataset string
	KHop    time.Duration
	Comp1   time.Duration // intra-layer incremental update only
	Full    time.Duration // + inter-layer pruned propagation
}

// Table6Result reproduces Table VI (GCN, ΔG=100, InkStream-m).
type Table6Result struct {
	Rows []Table6Row
}

// Table6 runs the ablation.
func Table6(cfg Config) (*Table6Result, error) {
	cfg = cfg.normalize()
	res := &Table6Result{}
	for _, spec := range cfg.Datasets {
		inst := cfg.build(spec)
		model := cfg.model(modelGCN, inst.X.Cols, gnn.AggMax)
		base, err := gnn.Infer(model, inst.G, inst.X, nil)
		if err != nil {
			return nil, err
		}
		scen := cfg.scenariosFor(100)
		deltas := cfg.scenarioDeltas(inst.G, 100, scen)
		var khop, comp1, full []measured
		for _, d := range deltas {
			m, _, err := runKHop(model, inst, d)
			if err != nil {
				return nil, err
			}
			khop = append(khop, m)
			m, err = runInk(model, inst, base, d, inkstream.Options{DisablePruning: true})
			if err != nil {
				return nil, err
			}
			comp1 = append(comp1, m)
			m, err = runInk(model, inst, base, d, inkstream.Options{})
			if err != nil {
				return nil, err
			}
			full = append(full, m)
		}
		res.Rows = append(res.Rows, Table6Row{
			Dataset: spec.Name,
			KHop:    avg(khop).Time,
			Comp1:   avg(comp1).Time,
			Full:    avg(full).Time,
		})
	}
	return res, nil
}

func (r *Table6Result) Render() string {
	t := newTable("Table VI — component ablation for InkStream-m (GCN, dG=100)",
		"dataset", "k-hop", "InkStream-m (1)", "InkStream-m (1&2)")
	for _, row := range r.Rows {
		t.addRow(row.Dataset,
			fmtDur(row.KHop)+" (1x)",
			fmtDur(row.Comp1)+" ("+fmtSpeedup(row.KHop, row.Comp1)+")",
			fmtDur(row.Full)+" ("+fmtSpeedup(row.KHop, row.Full)+")")
	}
	return t.String()
}
