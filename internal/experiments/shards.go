package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/shard"
	"repro/internal/tensor"
)

// ShardPoint is the measured throughput of one shard count under the
// flash-crowd stream.
type ShardPoint struct {
	Shards        int
	Updates       int
	Duration      time.Duration
	UpdatesPerSec float64
	AckP50        time.Duration
	AckP99        time.Duration
	// Rounds is how many BSP rounds the stream fused into; Stalls the
	// rounds sealed early by a conflicting request.
	Rounds int64
	Stalls int64
	// CutFraction is the partition's bootstrap cut; BoundaryRecords the
	// records delivered to remote shards during the run, FilteredRecords
	// the deliveries the subscription filter suppressed, GhostRows the
	// ghost rows engines adopted (all 0 at 1 shard).
	CutFraction     float64
	BoundaryRecords int64
	FilteredRecords int64
	GhostRows       int64
	// BarrierShare/StragglerSkew/Straggler come from the round profiler's
	// cumulative critical-path attribution: the fraction of BSP time the
	// mean shard spent stalled at barriers, the mean max/mean compute skew,
	// and the shard most often on the critical path (-1 when unprofiled).
	// BoundaryShare is the boundary fraction of split-layer compute (0
	// under full broadcast — layers are not split).
	BarrierShare  float64
	StragglerSkew float64
	Straggler     int
	BoundaryShare float64
	// Speedup is UpdatesPerSec over the 1-shard point.
	Speedup float64
	// Reps is how many times the point was measured; the reported fields
	// are from the median rep by updates/sec and MinUpdatesPerSec is the
	// slowest rep (noise floor on loaded boxes).
	Reps             int
	MinUpdatesPerSec float64
	// BitExact reports whether every final embedding matched the 1-shard
	// deployment bitwise.
	BitExact bool
}

// ShardScalingResult reports the partitioned-serving scaling scenario: the
// identical pipelined flash-crowd stream pushed through deployments of
// increasing shard counts.
type ShardScalingResult struct {
	Dataset   string
	Depth     int
	Waves     int
	Hub       graph.NodeID
	HubDegree int
	// Strategy and FullBroadcast name the exchange configuration every
	// point ran under; Workload is "crowd" (flash crowd on the hub) or
	// "scatter" (disjoint edge streams across the graph).
	Strategy      string
	FullBroadcast bool
	Workload      string
	GOMAXPROCS    int
	Points        []ShardPoint
}

// Render formats the scaling report. The per-point `shard-scaling:` lines
// are stable and machine-parseable (scripts/bench_snapshot.sh).
func (r ShardScalingResult) Render() string {
	var b strings.Builder
	mode := "filtered"
	if r.FullBroadcast {
		mode = "full-broadcast"
	}
	if r.Workload == "scatter" {
		fmt.Fprintf(&b, "Shard scaling (%s): %d waves x %d pipelined single-change updates, scattered disjoint edge streams, partition=%s exchange=%s, GOMAXPROCS=%d\n",
			r.Dataset, r.Waves, r.Depth, r.Strategy, mode, r.GOMAXPROCS)
	} else {
		fmt.Fprintf(&b, "Shard scaling (%s): %d waves x %d pipelined single-change updates, flash crowd on node %d (degree %d), partition=%s exchange=%s, GOMAXPROCS=%d\n",
			r.Dataset, r.Waves, r.Depth, r.Hub, r.HubDegree, r.Strategy, mode, r.GOMAXPROCS)
	}
	for _, p := range r.Points {
		exact := "bit-exact"
		if !p.BitExact {
			exact = "DIVERGED"
		}
		recsPerRound, ghostPerRound := 0.0, 0.0
		if p.Rounds > 0 {
			recsPerRound = float64(p.BoundaryRecords) / float64(p.Rounds)
			ghostPerRound = float64(p.GhostRows) / float64(p.Rounds)
		}
		fmt.Fprintf(&b, "  shard-scaling: shards=%d partition=%s exchange=%s reps=%d upd/s=%.1f min-upd/s=%.1f p50=%v p99=%v speedup=%.2fx rounds=%d stalls=%d cut=%.3f boundary-records=%d bcast-rd=%.1f filtered-records=%d ghost-rd=%.1f boundary-share=%.3f barrier-share=%.3f straggler-skew=%.2f straggler=s%d %s\n",
			p.Shards, r.Strategy, mode, p.Reps, p.UpdatesPerSec, p.MinUpdatesPerSec,
			p.AckP50.Round(time.Microsecond),
			p.AckP99.Round(time.Microsecond), p.Speedup, p.Rounds, p.Stalls,
			p.CutFraction, p.BoundaryRecords, recsPerRound, p.FilteredRecords,
			ghostPerRound, p.BoundaryShare, p.BarrierShare, p.StragglerSkew,
			p.Straggler, exact)
	}
	return strings.TrimRight(b.String(), "\n")
}

// runShardCount drives the flash-crowd stream through one deployment size
// and returns its point plus the final embeddings for the exactness check.
func runShardCount(c Config, inst instance, model *gnn.Model, pools [][]graph.EdgeChange,
	waves, shards int) (ShardPoint, []tensor.Vector, error) {
	rt, err := shard.New(model, inst.G, inst.X, shard.Config{
		Shards:            shards,
		PartitionStrategy: c.PartitionStrategy,
		FullBroadcast:     c.FullBroadcast,
	})
	if err != nil {
		return ShardPoint{}, nil, err
	}
	defer rt.Close()

	depth := len(pools)
	lats := make([]time.Duration, 0, depth*waves)
	submitted := make([]time.Time, depth)
	dones := make([]<-chan error, depth)
	t0 := time.Now()
	for i := 0; i < waves; i++ {
		for w, pool := range pools {
			ch := pool[i%len(pool)]
			ch.Insert = (i/len(pool))%2 == 0
			submitted[w] = time.Now()
			dones[w] = rt.ApplyAsync(graph.Delta{ch}, nil)
		}
		for w, d := range dones {
			if err := <-d; err != nil {
				return ShardPoint{}, nil, fmt.Errorf("wave %d stream %d: %w", i, w, err)
			}
			lats = append(lats, time.Since(submitted[w]))
		}
	}
	dur := time.Since(t0)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(p*float64(len(lats)-1))]
	}
	st := rt.Stats()
	point := ShardPoint{
		Shards:          shards,
		Updates:         len(lats),
		Duration:        dur,
		UpdatesPerSec:   float64(len(lats)) / dur.Seconds(),
		AckP50:          q(0.50),
		AckP99:          q(0.99),
		Rounds:          st.Rounds,
		Stalls:          st.Stalls,
		CutFraction:     st.CutFraction,
		BoundaryRecords: st.BoundaryRecords,
		FilteredRecords: st.FilteredRecords,
		GhostRows:       st.GhostRows,
		Straggler:       -1,
	}
	if rp := st.RoundProfile; rp != nil {
		point.BarrierShare = rp.BarrierShare
		point.StragglerSkew = rp.MeanStragglerSkew
		point.Straggler = rp.Straggler
		point.BoundaryShare = rp.BoundaryShare
	}
	rows := make([]tensor.Vector, inst.G.NumNodes())
	for v := range rows {
		row, _, ok := rt.ReadEmbedding(v)
		if !ok {
			return ShardPoint{}, nil, fmt.Errorf("node %d unreadable after run", v)
		}
		rows[v] = row.Clone()
	}
	return point, rows, nil
}

// scatterPools builds the scattered-stream workload: `streams` disjoint
// pools of initially-absent edges whose endpoints are all distinct, so
// pipelined waves never conflict and the touched neighborhoods are spread
// across the whole graph instead of concentrated on one hub. This is the
// steady-state counterpoint to the flash crowd: a locality-aware partition
// keeps most touched neighborhoods co-resident, which is exactly what
// subscription-filtered delivery converts into suppressed records.
func scatterPools(g *graph.Graph, streams, poolSize int, seed int64) [][]graph.EdgeChange {
	rng := rand.New(rand.NewSource(seed + 4242))
	n := g.NumNodes()
	used := make([]bool, n)
	pools := make([][]graph.EdgeChange, streams)
	for w := range pools {
		for len(pools[w]) < poolSize {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			if u == v || used[u] || used[v] || g.HasEdge(u, v) {
				continue
			}
			used[u], used[v] = true, true
			pools[w] = append(pools[w], graph.EdgeChange{U: u, V: v, Insert: true})
		}
	}
	return pools
}

// runShardCountReps measures one shard count c.ShardReps times and returns
// the median point by updates/sec (with the slowest rep recorded as
// MinUpdatesPerSec) plus the final embeddings, which are identical across
// reps — the stream is deterministic.
func runShardCountReps(c Config, inst instance, model *gnn.Model, pools [][]graph.EdgeChange,
	waves, shards int) (ShardPoint, []tensor.Vector, error) {
	points := make([]ShardPoint, 0, c.ShardReps)
	var rows []tensor.Vector
	for rep := 0; rep < c.ShardReps; rep++ {
		p, r, err := runShardCount(c, inst, model, pools, waves, shards)
		if err != nil {
			return ShardPoint{}, nil, err
		}
		points = append(points, p)
		rows = r
	}
	sort.Slice(points, func(i, j int) bool {
		return points[i].UpdatesPerSec < points[j].UpdatesPerSec
	})
	point := points[len(points)/2]
	point.Reps = len(points)
	point.MinUpdatesPerSec = points[0].UpdatesPerSec
	return point, rows, nil
}

// ShardScaling runs the partitioned-serving scenario on the first configured
// dataset: the identical flash-crowd stream (the burst scenario's workload)
// through shard.Router deployments at every configured shard count,
// reporting updates/sec and ack latency per count, the speedup over the
// 1-shard deployment, and whether every final embedding stayed bit-exact
// across deployment shapes (DESIGN.md §11.3).
func ShardScaling(c Config) (ShardScalingResult, error) {
	c = c.normalize()
	inst := c.build(c.Datasets[0])
	model := c.model(modelGCN, inst.X.Cols, gnn.AggMax)
	depth := c.BurstDepth
	waves := c.BurstUpdates / depth
	if waves < 1 {
		waves = 1
	}
	var hub graph.NodeID = -1
	var pools [][]graph.EdgeChange
	if c.ShardWorkload == "scatter" {
		pools = scatterPools(inst.G, depth, 16, c.Seed)
	} else {
		hub, pools = burstPools(inst.G, depth, 16)
	}

	strategy := c.PartitionStrategy
	if strategy == "" {
		strategy = "hash"
	}
	workload := c.ShardWorkload
	if workload == "" {
		workload = "crowd"
	}
	res := ShardScalingResult{
		Dataset: inst.Spec.Name, Depth: depth, Waves: waves,
		Hub: hub, Strategy: strategy, FullBroadcast: c.FullBroadcast,
		Workload: workload, GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if hub >= 0 {
		res.HubDegree = inst.G.OutDegree(hub)
	}
	var ref []tensor.Vector
	for _, s := range c.ShardCounts {
		point, rows, err := runShardCountReps(c, inst, model, pools, waves, s)
		if err != nil {
			return ShardScalingResult{}, fmt.Errorf("shards=%d: %w", s, err)
		}
		if ref == nil {
			ref = rows
			point.BitExact = true
			if point.Shards != 1 {
				// Without a 1-shard reference the exactness column is
				// meaningless; only claim it when the baseline ran.
				point.BitExact = false
			}
		} else {
			point.BitExact = true
			for v, row := range rows {
				if !row.Equal(ref[v]) {
					point.BitExact = false
					break
				}
				_ = v
			}
		}
		if len(res.Points) > 0 && res.Points[0].Shards == 1 && res.Points[0].UpdatesPerSec > 0 {
			point.Speedup = point.UpdatesPerSec / res.Points[0].UpdatesPerSec
		} else if point.Shards == 1 {
			point.Speedup = 1
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}
