package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/shard"
	"repro/internal/tensor"
)

// ShardPoint is the measured throughput of one shard count under the
// flash-crowd stream.
type ShardPoint struct {
	Shards        int
	Updates       int
	Duration      time.Duration
	UpdatesPerSec float64
	AckP50        time.Duration
	AckP99        time.Duration
	// Rounds is how many BSP rounds the stream fused into; Stalls the
	// rounds sealed early by a conflicting request.
	Rounds int64
	Stalls int64
	// CutFraction is the partition's bootstrap cut; BoundaryRecords the
	// ghost-refresh records broadcast during the run (both 0 at 1 shard).
	CutFraction     float64
	BoundaryRecords int64
	// BarrierShare/StragglerSkew/Straggler come from the round profiler's
	// cumulative critical-path attribution: the fraction of BSP time the
	// mean shard spent stalled at barriers, the mean max/mean compute skew,
	// and the shard most often on the critical path (-1 when unprofiled).
	BarrierShare  float64
	StragglerSkew float64
	Straggler     int
	// Speedup is UpdatesPerSec over the 1-shard point.
	Speedup float64
	// BitExact reports whether every final embedding matched the 1-shard
	// deployment bitwise.
	BitExact bool
}

// ShardScalingResult reports the partitioned-serving scaling scenario: the
// identical pipelined flash-crowd stream pushed through deployments of
// increasing shard counts.
type ShardScalingResult struct {
	Dataset    string
	Depth      int
	Waves      int
	Hub        graph.NodeID
	HubDegree  int
	GOMAXPROCS int
	Points     []ShardPoint
}

// Render formats the scaling report. The per-point `shard-scaling:` lines
// are stable and machine-parseable (scripts/bench_snapshot.sh).
func (r ShardScalingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Shard scaling (%s): %d waves x %d pipelined single-change updates, flash crowd on node %d (degree %d), GOMAXPROCS=%d\n",
		r.Dataset, r.Waves, r.Depth, r.Hub, r.HubDegree, r.GOMAXPROCS)
	for _, p := range r.Points {
		exact := "bit-exact"
		if !p.BitExact {
			exact = "DIVERGED"
		}
		fmt.Fprintf(&b, "  shard-scaling: shards=%d upd/s=%.1f p50=%v p99=%v speedup=%.2fx rounds=%d stalls=%d cut=%.3f boundary-records=%d barrier-share=%.3f straggler-skew=%.2f straggler=s%d %s\n",
			p.Shards, p.UpdatesPerSec, p.AckP50.Round(time.Microsecond),
			p.AckP99.Round(time.Microsecond), p.Speedup, p.Rounds, p.Stalls,
			p.CutFraction, p.BoundaryRecords, p.BarrierShare, p.StragglerSkew,
			p.Straggler, exact)
	}
	return strings.TrimRight(b.String(), "\n")
}

// runShardCount drives the flash-crowd stream through one deployment size
// and returns its point plus the final embeddings for the exactness check.
func runShardCount(inst instance, model *gnn.Model, pools [][]graph.EdgeChange,
	waves, shards int) (ShardPoint, []tensor.Vector, error) {
	rt, err := shard.New(model, inst.G, inst.X, shard.Config{Shards: shards})
	if err != nil {
		return ShardPoint{}, nil, err
	}
	defer rt.Close()

	depth := len(pools)
	lats := make([]time.Duration, 0, depth*waves)
	submitted := make([]time.Time, depth)
	dones := make([]<-chan error, depth)
	t0 := time.Now()
	for i := 0; i < waves; i++ {
		for w, pool := range pools {
			ch := pool[i%len(pool)]
			ch.Insert = (i/len(pool))%2 == 0
			submitted[w] = time.Now()
			dones[w] = rt.ApplyAsync(graph.Delta{ch}, nil)
		}
		for w, d := range dones {
			if err := <-d; err != nil {
				return ShardPoint{}, nil, fmt.Errorf("wave %d stream %d: %w", i, w, err)
			}
			lats = append(lats, time.Since(submitted[w]))
		}
	}
	dur := time.Since(t0)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(p*float64(len(lats)-1))]
	}
	st := rt.Stats()
	point := ShardPoint{
		Shards:          shards,
		Updates:         len(lats),
		Duration:        dur,
		UpdatesPerSec:   float64(len(lats)) / dur.Seconds(),
		AckP50:          q(0.50),
		AckP99:          q(0.99),
		Rounds:          st.Rounds,
		Stalls:          st.Stalls,
		CutFraction:     st.CutFraction,
		BoundaryRecords: st.BoundaryRecords,
		Straggler:       -1,
	}
	if rp := st.RoundProfile; rp != nil {
		point.BarrierShare = rp.BarrierShare
		point.StragglerSkew = rp.MeanStragglerSkew
		point.Straggler = rp.Straggler
	}
	rows := make([]tensor.Vector, inst.G.NumNodes())
	for v := range rows {
		row, _, ok := rt.ReadEmbedding(v)
		if !ok {
			return ShardPoint{}, nil, fmt.Errorf("node %d unreadable after run", v)
		}
		rows[v] = row.Clone()
	}
	return point, rows, nil
}

// ShardScaling runs the partitioned-serving scenario on the first configured
// dataset: the identical flash-crowd stream (the burst scenario's workload)
// through shard.Router deployments at every configured shard count,
// reporting updates/sec and ack latency per count, the speedup over the
// 1-shard deployment, and whether every final embedding stayed bit-exact
// across deployment shapes (DESIGN.md §11.3).
func ShardScaling(c Config) (ShardScalingResult, error) {
	c = c.normalize()
	inst := c.build(c.Datasets[0])
	model := c.model(modelGCN, inst.X.Cols, gnn.AggMax)
	depth := c.BurstDepth
	waves := c.BurstUpdates / depth
	if waves < 1 {
		waves = 1
	}
	hub, pools := burstPools(inst.G, depth, 16)

	res := ShardScalingResult{
		Dataset: inst.Spec.Name, Depth: depth, Waves: waves,
		Hub: hub, HubDegree: inst.G.OutDegree(hub),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	var ref []tensor.Vector
	for _, s := range c.ShardCounts {
		point, rows, err := runShardCount(inst, model, pools, waves, s)
		if err != nil {
			return ShardScalingResult{}, fmt.Errorf("shards=%d: %w", s, err)
		}
		if ref == nil {
			ref = rows
			point.BitExact = true
			if point.Shards != 1 {
				// Without a 1-shard reference the exactness column is
				// meaningless; only claim it when the baseline ran.
				point.BitExact = false
			}
		} else {
			point.BitExact = true
			for v, row := range rows {
				if !row.Equal(ref[v]) {
					point.BitExact = false
					break
				}
				_ = v
			}
		}
		if len(res.Points) > 0 && res.Points[0].Shards == 1 && res.Points[0].UpdatesPerSec > 0 {
			point.Speedup = point.UpdatesPerSec / res.Points[0].UpdatesPerSec
		} else if point.Shards == 1 {
			point.Speedup = 1
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}
