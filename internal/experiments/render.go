package experiments

import (
	"fmt"
	"strings"
	"time"
)

// table is a minimal fixed-width text-table renderer used by every
// experiment's Render method.
type table struct {
	title  string
	header []string
	rows   [][]string
}

func newTable(title string, header ...string) *table {
	return &table{title: title, header: header}
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// fmtDur renders a duration in the paper's milliseconds-first style.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// fmtSpeedup renders "N x" against a baseline duration.
func fmtSpeedup(base, mine time.Duration) string {
	if mine <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(base)/float64(mine))
}

// fmtPct renders a fraction as a percentage.
func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
