// Package leakcheck asserts at test teardown that no repro-owned
// goroutines outlive the code under test. It is a hand-rolled, stdlib-only
// take on goleak: parse the full runtime.Stack dump into per-goroutine
// stanzas, keep the ones with a frame in this module, drop the known
// process-lifetime pools, and fail the test with the offending stacks if
// any remain after a grace period (shutdown is asynchronous — Close
// returns before the last deferred goroutine unwinds).
package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// ignoredFrames are substrings of stack frames that mark a goroutine as
// process-lifetime by design, not a leak:
//   - the tensor package's global worker pool is created once and serves
//     every engine for the life of the process;
//   - test-runner goroutines (tRunner and friends) carry the test
//     function's own repro frames while the test is still finishing.
var ignoredFrames = []string{
	"repro/internal/tensor.ensurePool",
	"testing.tRunner",
	"testing.(*T).Run",
}

// Check registers a cleanup that fails t if repro-owned goroutines are
// still running when the test (and its other cleanups, e.g. server.Close)
// finish. Call it first in the test body so its cleanup runs last.
func Check(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = ownedGoroutines()
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("leakcheck: %d repro-owned goroutine(s) still running:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// ownedGoroutines returns the stack stanzas of goroutines with at least
// one frame in this module, excluding the ignored set.
func ownedGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var leaked []string
stanza:
	for _, g := range strings.Split(string(buf), "\n\n") {
		if !strings.Contains(g, "repro/") {
			continue
		}
		for _, ig := range ignoredFrames {
			if strings.Contains(g, ig) {
				continue stanza
			}
		}
		leaked = append(leaked, g)
	}
	return leaked
}
