package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestOwnedGoroutinesDetectsLeak: a goroutine parked inside a repro
// function is reported; after it exits the report is clean.
func TestOwnedGoroutinesDetectsLeak(t *testing.T) {
	ready := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go leakyWorker(ready, release, done)
	<-ready // the goroutine is inside leakyWorker (a repro/ frame) now
	deadline := time.Now().Add(2 * time.Second)
	for {
		if gs := ownedGoroutines(); len(gs) > 0 {
			if !strings.Contains(strings.Join(gs, ""), "leakyWorker") {
				t.Fatalf("leak report misses leakyWorker:\n%s", strings.Join(gs, "\n\n"))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("parked repro goroutine never reported")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-done
	deadline = time.Now().Add(2 * time.Second)
	for len(ownedGoroutines()) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("report still dirty after worker exit:\n%s",
				strings.Join(ownedGoroutines(), "\n\n"))
		}
		time.Sleep(time.Millisecond)
	}
}

//go:noinline
func leakyWorker(ready, release, done chan struct{}) {
	close(ready)
	<-release
	close(done)
}
