package persist

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/tensor"
)

// The crash-recovery workflow: bundle + WAL replay reconstructs the exact
// engine state that the "crashed" process held.
func TestWALRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 50, 150)
	x := tensor.RandMatrix(rng, 50, 6, 1)
	model := gnn.NewSAGE(rng, 6, 8, gnn.NewAggregator(gnn.AggMax))
	eng, err := inkstream.New(model, g, x, nil, inkstream.Options{})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	bundlePath := filepath.Join(dir, "engine.inkb")
	walPath := filepath.Join(dir, "updates.wal")
	if err := SaveBundleFile(bundlePath, eng.Graph(), model, eng.State()); err != nil {
		t.Fatal(err)
	}
	wal, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// Live process: apply batches, logging each BEFORE applying.
	for batch := 0; batch < 3; batch++ {
		delta := graph.RandomDelta(rng, eng.Graph(), 8)
		var vups []inkstream.VertexUpdate
		if batch == 1 {
			vups = []inkstream.VertexUpdate{{Node: 7, X: tensor.RandVector(rng, 6, 1)}}
		}
		if err := wal.Append(delta, vups); err != nil {
			t.Fatal(err)
		}
		if err := eng.Apply(delta, vups); err != nil {
			t.Fatal(err)
		}
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash": recover from bundle + WAL in a fresh engine.
	g2, m2, s2, err := LoadBundleFile(bundlePath)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := inkstream.NewFromState(m2, g2, s2, nil, inkstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	batches, torn, err := ReadWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("clean WAL reported torn")
	}
	if len(batches) != 3 {
		t.Fatalf("WAL has %d batches", len(batches))
	}
	if err := Replay(recovered, batches); err != nil {
		t.Fatal(err)
	}
	if !recovered.State().Equal(eng.State()) {
		t.Error("recovered state differs from the live engine")
	}
	if recovered.Graph().NumEdges() != eng.Graph().NumEdges() {
		t.Error("recovered graph differs")
	}
}

// Group commit: several buffered records become durable under one Commit
// and replay identically to individually synced appends.
func TestWALGroupCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "group.wal")
	wal, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	group := []graph.Delta{
		{{U: 1, V: 2, Insert: true}},
		{{U: 2, V: 3, Insert: true}},
		{{U: 3, V: 4, Insert: true}},
	}
	for _, d := range group {
		if err := wal.AppendBuffered(d, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Before the commit barrier nothing is guaranteed on disk; after it,
	// every record of the group is.
	if err := wal.Commit(); err != nil {
		t.Fatal(err)
	}
	batches, torn, err := ReadWAL(path)
	if err != nil || torn {
		t.Fatalf("read: %v torn=%v", err, torn)
	}
	if len(batches) != len(group) {
		t.Fatalf("recovered %d batches, want %d", len(batches), len(group))
	}
	for i, b := range batches {
		if b.Delta[0] != group[i][0] {
			t.Errorf("batch %d: %+v, want %+v", i, b.Delta[0], group[i][0])
		}
	}
	// A second empty commit is a harmless no-op.
	if err := wal.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.wal")
	wal, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.Append(graph.Delta{{U: 1, V: 2, Insert: true}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := wal.Append(graph.Delta{{U: 3, V: 4, Insert: true}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: truncate into the second record.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	batches, torn, err := ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if !torn {
		t.Error("torn tail not reported")
	}
	if len(batches) != 1 || batches[0].Delta[0].U != 1 {
		t.Errorf("recovered %d batches", len(batches))
	}
}

func TestWALRejectsCorruptMarker(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.wal")
	if err := os.WriteFile(path, []byte("Xgarbage-record"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadWAL(path); err == nil {
		t.Error("corrupt marker accepted")
	}
}

func TestWALEmptyAndMissing(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.wal")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	batches, torn, err := ReadWAL(empty)
	if err != nil || torn || len(batches) != 0 {
		t.Errorf("empty WAL: %v %v %d", err, torn, len(batches))
	}
	if _, _, err := ReadWAL(filepath.Join(dir, "missing.wal")); err == nil {
		t.Error("missing file accepted")
	}
}
