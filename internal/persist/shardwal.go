package persist

import (
	"fmt"
	"os"
	"path/filepath"
)

// Per-shard WAL layout for partitioned multi-engine serving (DESIGN.md
// §11.4): each shard journals its own sub-batch stream under one parent
// directory, and the WALs are round-aligned — every shard writes exactly
// one record per update round (an empty record when the round carries no
// local work), so record index i in every shard's WAL describes the same
// round. Recovery replays the longest round prefix present in every WAL.

// ShardWALPath returns shard s's WAL file path under dir:
// dir/shard-NNN/wal.log.
func ShardWALPath(dir string, s int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", s), "wal.log")
}

// OpenShardWAL opens (creating directories as needed) shard s's WAL under
// dir.
func OpenShardWAL(dir string, s int) (*WAL, error) {
	path := ShardWALPath(dir, s)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating shard WAL directory: %w", err)
	}
	return OpenWAL(path)
}
