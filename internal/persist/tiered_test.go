package persist

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/obs"
	"repro/internal/tensor"
)

func newTestStore(t *testing.T, cfg TieredConfig) *TieredStore {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	st, err := NewTieredStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// uniformRow returns a row whose channels all hold the same value — any
// reader that ever observes a mixed row caught a torn read.
func uniformRow(dim int, v float32) tensor.Vector {
	row := make(tensor.Vector, dim)
	for i := range row {
		row[i] = v
	}
	return row
}

func TestTieredRoundTrip(t *testing.T) {
	const dim, n = 8, 100
	st := newTestStore(t, TieredConfig{Dim: dim, PageBytes: 4 * dim * 4}) // 4 rows/page
	if st.PageRows() != 4 {
		t.Fatalf("PageRows = %d, want 4", st.PageRows())
	}
	rng := rand.New(rand.NewSource(1))
	want := make([]tensor.Vector, n)
	for i := range want {
		want[i] = tensor.RandVector(rng, dim, 1)
		st.WriteRow(i, want[i])
	}
	view := st.Seal(1)
	if view.NumRows() != n {
		t.Fatalf("NumRows = %d, want %d", view.NumRows(), n)
	}
	for i := range want {
		got, err := view.Row(i)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want[i]) {
			t.Fatalf("row %d not bit-exact", i)
		}
	}
	if _, err := view.Row(n); err == nil {
		t.Error("out-of-range row served")
	}
	if _, err := view.Row(-1); err == nil {
		t.Error("negative row served")
	}
}

func TestTieredEvictionAndFault(t *testing.T) {
	const dim, n = 8, 256
	rowB := 4 * dim
	// Cap fits only 2 of the 64 pages.
	st := newTestStore(t, TieredConfig{
		Dim: dim, PageBytes: 4 * rowB, MemCap: int64(2 * 4 * rowB),
		FaultLatency: obs.NewLatencyHistogram(),
	})
	rng := rand.New(rand.NewSource(2))
	want := make([]tensor.Vector, n)
	for i := range want {
		want[i] = tensor.RandVector(rng, dim, 1)
		st.WriteRow(i, want[i])
	}
	view := st.Seal(1)

	// Deterministically run the background duties: persist, then evict.
	st.writebackDirty()
	st.evictToCap()
	s := st.Stats()
	if s.Writebacks == 0 {
		t.Fatal("no writebacks recorded")
	}
	if s.Evictions == 0 {
		t.Fatal("nothing evicted despite cap pressure")
	}
	if s.HotBytes > s.CapBytes {
		t.Fatalf("hot bytes %d above cap %d after evict", s.HotBytes, s.CapBytes)
	}

	// Every row still reads back bit-exactly; cold pages fault from disk.
	for i := range want {
		got, err := view.Row(i)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if !got.Equal(want[i]) {
			t.Fatalf("row %d corrupted by spill round trip", i)
		}
	}
	s = st.Stats()
	if s.Misses == 0 {
		t.Fatal("full scan over a cold store recorded no faults")
	}
	if s.Hits == 0 {
		t.Fatal("no hits recorded")
	}
	if s.TotalPages != 64 {
		t.Fatalf("TotalPages = %d, want 64", s.TotalPages)
	}
}

func TestTieredCOWAcrossEpochs(t *testing.T) {
	const dim, n = 4, 40
	st := newTestStore(t, TieredConfig{Dim: dim, PageBytes: 10 * 4 * dim}) // 10 rows/page
	for i := 0; i < n; i++ {
		st.WriteRow(i, uniformRow(dim, float32(i)))
	}
	v1 := st.Seal(1)
	pages := *st.pages.Load()
	frameBefore := make([]*frame, len(pages))
	for i, p := range pages {
		frameBefore[i] = p.cur.Load()
	}

	// Touch only rows 0 and 1 (page 0); pages 1..3 must keep their frames.
	st.WriteRow(0, uniformRow(dim, 100))
	st.WriteRow(1, uniformRow(dim, 101))
	v2 := st.Seal(2)
	for i, p := range pages {
		f := p.cur.Load()
		if i == 0 && f == frameBefore[i] {
			t.Error("touched page kept its old generation")
		}
		if i != 0 && f != frameBefore[i] {
			t.Errorf("untouched page %d was re-sealed", i)
		}
	}
	for i := 0; i < n; i++ {
		wantV := float32(i)
		if i == 0 {
			wantV = 100
		} else if i == 1 {
			wantV = 101
		}
		got, err := v2.Row(i)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(uniformRow(dim, wantV)) {
			t.Fatalf("row %d = %v, want all %g", i, got, wantV)
		}
	}
	_ = v1
}

func TestTieredQuantizedWithinBound(t *testing.T) {
	for _, q := range []tensor.Quant{tensor.QuantF16, tensor.QuantI8} {
		t.Run(q.String(), func(t *testing.T) {
			const dim, n = 16, 64
			st := newTestStore(t, TieredConfig{Dim: dim, Quant: q, PageBytes: 8 * q.RowBytes(dim)})
			rng := rand.New(rand.NewSource(3))
			want := make([]tensor.Vector, n)
			for i := range want {
				want[i] = tensor.RandVector(rng, dim, 1)
				st.WriteRow(i, want[i])
			}
			view := st.Seal(1)
			for i := range want {
				got, err := view.Row(i)
				if err != nil {
					t.Fatal(err)
				}
				bound := q.ErrorBound(want[i])
				for c := range got {
					d := got[c] - want[i][c]
					if d < 0 {
						d = -d
					}
					if d > bound {
						t.Fatalf("row %d ch %d: |%g-%g| exceeds bound %g", i, c, got[c], want[i][c], bound)
					}
				}
			}
		})
	}
}

// Untouched rows keep their encoded bytes verbatim across seals, so
// quantization error must not compound no matter how many generations the
// page goes through.
func TestTieredQuantNoErrorCompounding(t *testing.T) {
	const dim = 8
	st := newTestStore(t, TieredConfig{Dim: dim, Quant: tensor.QuantI8, PageBytes: 2 * tensor.QuantI8.RowBytes(dim)})
	rng := rand.New(rand.NewSource(4))
	keep := tensor.RandVector(rng, dim, 1)
	st.WriteRow(0, keep)
	st.WriteRow(1, uniformRow(dim, 1))
	first, err := st.Seal(1).Row(0)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(2); e <= 30; e++ {
		st.WriteRow(1, uniformRow(dim, float32(e))) // same page, different row
		view := st.Seal(e)
		got, err := view.Row(0)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(first) {
			t.Fatalf("epoch %d: untouched row drifted (%v vs %v)", e, got, first)
		}
	}
}

// Satellite: crash safety. A slot torn mid-writeback (simulated by
// truncating the spill file) must never surface as a torn row — reads
// error out, and recovery goes through the authoritative bundle + WAL
// replay path exactly like the WAL tests.
func TestTieredCrashSafetyTornSlot(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 60, 180)
	x := tensor.RandMatrix(rng, 60, 6, 1)
	model := gnn.NewSAGE(rng, 6, 8, gnn.NewAggregator(gnn.AggMax))
	eng, err := inkstream.New(model, g, x, nil, inkstream.Options{})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	bundlePath := filepath.Join(dir, "engine.inkb")
	walPath := filepath.Join(dir, "updates.wal")
	if err := SaveBundleFile(bundlePath, eng.Graph(), model, eng.State()); err != nil {
		t.Fatal(err)
	}
	wal, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}

	storeDir := filepath.Join(dir, "store")
	rowB := 4 * 8 // f32 × hidden dim 8
	st := newTestStore(t, TieredConfig{Dir: storeDir, Dim: 8, PageBytes: 4 * rowB, MemCap: int64(4 * rowB)})
	if err := eng.SetRowStore(st); err != nil {
		t.Fatal(err)
	}
	eng.PublishSnapshot()
	for batch := 0; batch < 3; batch++ {
		delta := graph.RandomDelta(rng, eng.Graph(), 6)
		if err := wal.Append(delta, nil); err != nil {
			t.Fatal(err)
		}
		if err := eng.Apply(delta, nil); err != nil {
			t.Fatal(err)
		}
		eng.PublishSnapshot()
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	// Persist and evict, then tear the last slot as if the process died
	// mid-writeback.
	st.writebackDirty()
	st.evictToCap()
	path := filepath.Join(storeDir, tieredFile)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	lastPage := (snap.NumNodes() - 1) / st.PageRows()
	sawError := false
	for i := 0; i < snap.NumNodes(); i++ {
		row, rerr := st.readRow(i)
		if i/st.PageRows() == lastPage && rerr != nil {
			sawError = true // torn slot must fail, not serve garbage
			continue
		}
		if rerr != nil {
			// Resident or intact pages must still read, and bit-exactly.
			t.Fatalf("row %d on intact page errored: %v", i, rerr)
		}
		if !row.Equal(eng.Output().Row(i)) {
			t.Fatalf("row %d served stale/torn data after truncation", i)
		}
	}
	if !sawError {
		// The torn page might still be resident; force it cold and retry.
		st.evictToCap()
		if _, rerr := st.readRow(lastPage * st.PageRows()); rerr == nil {
			t.Log("torn slot page stayed resident; fault never exercised")
		}
	}

	// Corrupt (rather than truncate) an interior slot: checksum must
	// reject it instead of decoding torn bytes.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff, 0xee, 0xdd}, st.slotSize+int64(slotHeaderBytes)+2); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := st.readSlot(1, (*st.pages.Load())[1].cur.Load().epoch); err == nil {
		t.Error("corrupted slot passed verification")
	}

	// Recovery: bundle + WAL replay into a fresh engine and a fresh store
	// over the same directory (the dead cache file is truncated on open).
	g2, m2, s2, err := LoadBundleFile(bundlePath)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := inkstream.NewFromState(m2, g2, s2, nil, inkstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	batches, torn, err := ReadWAL(walPath)
	if err != nil || torn {
		t.Fatalf("ReadWAL: %v torn=%v", err, torn)
	}
	if err := Replay(recovered, batches); err != nil {
		t.Fatal(err)
	}
	st2 := newTestStore(t, TieredConfig{Dir: storeDir, Dim: 8, PageBytes: 4 * rowB})
	if err := recovered.SetRowStore(st2); err != nil {
		t.Fatal(err)
	}
	rsnap := recovered.PublishSnapshot()
	if rsnap.NumNodes() != eng.Output().Rows {
		t.Fatalf("recovered %d rows, want %d", rsnap.NumNodes(), eng.Output().Rows)
	}
	for i := 0; i < rsnap.NumNodes(); i++ {
		if !rsnap.Row(i).Equal(eng.Output().Row(i)) {
			t.Fatalf("recovered row %d differs from the live engine", i)
		}
	}
}

// Torn reads are impossible even under cap pressure with a concurrent
// writer: every row is uniform per generation, so any mixed vector is a
// torn read.
func TestTieredConcurrentReadersNoTearing(t *testing.T) {
	const dim, n = 8, 128
	rowB := 4 * dim
	st := newTestStore(t, TieredConfig{Dim: dim, PageBytes: 4 * rowB, MemCap: int64(8 * 4 * rowB)})
	for i := 0; i < n; i++ {
		st.WriteRow(i, uniformRow(dim, float32(i)))
	}
	view := st.Seal(1)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 16)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := rng.Intn(n)
				row, err := view.Row(id)
				if err != nil {
					errs <- err.Error()
					return
				}
				for c := 1; c < dim; c++ {
					if row[c] != row[0] {
						errs <- "torn row"
						return
					}
				}
			}
		}(int64(r))
	}
	for epoch := uint64(2); epoch < 40; epoch++ {
		for k := 0; k < 16; k++ {
			id := int(epoch*7+uint64(k)*11) % n
			st.WriteRow(id, uniformRow(dim, float32(epoch)*1000+float32(id)))
		}
		view = st.Seal(epoch)
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

// End-to-end against the engine: the tiered fp32 path serves exactly the
// same rows as the default resident snapshots across update cycles.
func TestTieredEngineBitExactVsResident(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 80, 240)
	x := tensor.RandMatrix(rng, 80, 6, 1)
	model := gnn.NewGCN(rng, 6, 8, gnn.NewAggregator(gnn.AggSum))

	resident, err := inkstream.New(model, g.Clone(), x, nil, inkstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tiered, err := inkstream.New(model, g.Clone(), x, nil, inkstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rowB := 4 * 8
	st := newTestStore(t, TieredConfig{Dim: 8, PageBytes: 4 * rowB, MemCap: int64(5 * 4 * rowB)})
	if err := tiered.SetRowStore(st); err != nil {
		t.Fatal(err)
	}

	for batch := 0; batch < 5; batch++ {
		delta := graph.RandomDelta(rng, resident.Graph(), 10)
		if err := resident.Apply(delta, nil); err != nil {
			t.Fatal(err)
		}
		if err := tiered.Apply(append(graph.Delta(nil), delta...), nil); err != nil {
			t.Fatal(err)
		}
		rs := resident.PublishSnapshot()
		ts := tiered.PublishSnapshot()
		if rs.NumNodes() != ts.NumNodes() {
			t.Fatalf("node counts diverge: %d vs %d", rs.NumNodes(), ts.NumNodes())
		}
		st.writebackDirty()
		st.evictToCap()
		for i := 0; i < rs.NumNodes(); i++ {
			if !rs.Row(i).Equal(ts.Row(i)) {
				t.Fatalf("batch %d row %d: tiered differs from resident", batch, i)
			}
		}
	}
}

func TestTieredStatsHitRate(t *testing.T) {
	var s obs.PageCacheStats
	if s.HitRate() != 1 {
		t.Error("empty stats hit rate should be 1")
	}
	s.Hits, s.Misses = 3, 1
	if s.HitRate() != 0.75 {
		t.Errorf("hit rate %v, want 0.75", s.HitRate())
	}
}

func TestTieredRejectsBadConfig(t *testing.T) {
	if _, err := NewTieredStore(TieredConfig{Dim: 0, Dir: t.TempDir()}); err == nil {
		t.Error("dim 0 accepted")
	}
}
