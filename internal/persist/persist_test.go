package persist

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/tensor"
)

func randomGraph(rng *rand.Rand, n, edges int) *graph.Graph {
	g := graph.NewUndirected(n)
	for g.NumEdges() < edges {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	return g
}

func models(rng *rand.Rand) []*gnn.Model {
	withNorm := gnn.NewGCN(rng, 6, 8, gnn.NewAggregator(gnn.AggMean))
	withNorm.Norms = []*gnn.GraphNorm{gnn.NewGraphNorm(8), nil}
	withNorm.Norms[0].Freeze(tensor.RandMatrix(rng, 10, 8, 1))
	return []*gnn.Model{
		gnn.NewGCN(rng, 6, 8, gnn.NewAggregator(gnn.AggMax)),
		gnn.NewSAGE(rng, 6, 8, gnn.NewAggregator(gnn.AggMin)),
		gnn.NewGIN(rng, 6, 8, 3, gnn.NewAggregator(gnn.AggSum)),
		withNorm,
	}
}

// Round-trip property: a loaded model produces bit-identical inference to
// the original on an arbitrary graph.
func TestModelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 30, 90)
	x := tensor.RandMatrix(rng, 30, 6, 1)
	for _, m := range models(rng) {
		var buf bytes.Buffer
		if err := SaveModel(&buf, m); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		m2, err := LoadModel(&buf)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if m2.Name != m.Name || m2.NumLayers() != m.NumLayers() {
			t.Fatalf("%s: identity lost", m.Name)
		}
		for l := range m.Layers {
			if m2.Layers[l].Name() != m.Layers[l].Name() ||
				m2.Layers[l].Agg().Kind() != m.Layers[l].Agg().Kind() {
				t.Fatalf("%s: layer %d identity lost", m.Name, l)
			}
		}
		want, err := gnn.Infer(m, g, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := gnn.Infer(m2, g, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: loaded model infers differently", m.Name)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 20, 60)
	x := tensor.RandMatrix(rng, 20, 6, 1)
	m := gnn.NewGIN(rng, 6, 8, 3, gnn.NewAggregator(gnn.AggMax))
	s, err := gnn.Infer(m, g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveState(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Equal(s) {
		t.Error("state round trip not bit-identical")
	}
}

// The headline use case: persist a running engine, reload, keep updating —
// no re-bootstrap, same results.
func TestBundleResumesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 40, 120)
	x := tensor.RandMatrix(rng, 40, 6, 1)
	model := gnn.NewSAGE(rng, 6, 8, gnn.NewAggregator(gnn.AggMax))
	eng, err := inkstream.New(model, g, x, nil, inkstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Update(graph.RandomDelta(rng, eng.Graph(), 8)); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "engine.inkb")
	if err := SaveBundleFile(path, eng.Graph(), model, eng.State()); err != nil {
		t.Fatal(err)
	}
	g2, m2, s2, err := LoadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := inkstream.NewFromState(m2, g2, s2, nil, inkstream.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Apply the same delta to both engines; they must agree bit-for-bit.
	delta := graph.RandomDelta(rng, eng.Graph(), 8)
	if err := eng.Update(append(graph.Delta(nil), delta...)); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Update(append(graph.Delta(nil), delta...)); err != nil {
		t.Fatal(err)
	}
	if !resumed.State().Equal(eng.State()) {
		t.Error("resumed engine diverged from original")
	}
}

func TestBundleValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 10, 20)
	m := gnn.NewGCN(rng, 4, 4, gnn.NewAggregator(gnn.AggMax))
	// Node-count mismatch between state and graph.
	s := gnn.NewState(m, 9)
	if err := SaveBundle(&bytes.Buffer{}, g, m, s); err == nil {
		t.Error("mismatched bundle accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := gnn.NewGCN(rng, 4, 4, gnn.NewAggregator(gnn.AggMax))
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := map[string][]byte{
		"empty":        {},
		"bad-magic":    []byte("XXXX\x01\x00\x00\x00"),
		"truncated":    valid[:len(valid)/2],
		"short-header": valid[:6],
	}
	for name, data := range cases {
		if _, err := LoadModel(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
		if _, err := LoadState(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: state accepted", name)
		}
		if _, _, _, err := LoadBundle(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: bundle accepted", name)
		}
	}
	// Corrupt the aggregator kind byte.
	mutated := append([]byte(nil), valid...)
	// magic(4) + ver(4) + nameLen(4) + name(3 "GCN") + layers(4) + type(1) +
	// nameLen(4) + name(6) = offset of agg byte.
	off := 4 + 4 + 4 + 3 + 4 + 1 + 4 + 6
	mutated[off] = 99
	if _, err := LoadModel(bytes.NewReader(mutated)); err == nil {
		t.Error("bad aggregator accepted")
	}
}

// FuzzLoadModel: arbitrary bytes must never panic the loader.
func FuzzLoadModel(f *testing.F) {
	rng := rand.New(rand.NewSource(6))
	for _, m := range models(rng) {
		var buf bytes.Buffer
		if err := SaveModel(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/3])
	}
	f.Add([]byte("INKM"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := LoadModel(bytes.NewReader(data))
		if err == nil && m.Validate() != nil {
			t.Fatal("loader returned invalid model without error")
		}
	})
}

func TestDatasetPlusBundleWorkflow(t *testing.T) {
	// Generate once, persist dataset and engine bundle, reload both.
	rng := rand.New(rand.NewSource(7))
	spec := dataset.PubMed
	spec.Scale *= 32
	g, f := dataset.Generate(spec, 9)
	model := gnn.NewGCN(rng, f.Dim(), 8, gnn.NewAggregator(gnn.AggMax))
	eng, err := inkstream.New(model, g, f.X, nil, inkstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SaveBundleFile(filepath.Join(dir, "b.inkb"), eng.Graph(), model, eng.State()); err != nil {
		t.Fatal(err)
	}
	g2, m2, s2, err := LoadBundleFile(filepath.Join(dir, "b.inkb"))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || m2.InDim() != f.Dim() || s2.NumNodes() != g.NumNodes() {
		t.Error("bundle identity lost")
	}
}
