// Package persist serialises trained models, inference states and whole
// engine bundles to a compact binary format, so a long-running inference
// service (cmd/inkserve) can restart without repeating the initial
// full-graph inference, and trained models from internal/train can be
// shipped between processes.
//
// Three artifact kinds, each with its own magic:
//
//	INKM — a gnn.Model (layer types, weights, aggregators, norms)
//	INKT — a gnn.State (the m/α/h checkpoints)
//	INKB — a bundle: graph + model + state, enough to resume an engine
//
// All integers are little-endian; matrices are row-major float32.
package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/tensor"
)

const (
	magicModel  = "INKM"
	magicState  = "INKT"
	magicBundle = "INKB"
	version     = 1

	layerGCN  = 0
	layerSAGE = 1
	layerGIN  = 2

	// maxElems caps declared sizes so corrupt headers fail cleanly.
	maxElems = 1 << 28
)

// ---------------------------------------------------------------------------
// Primitive encoders

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) u8(v uint8) {
	if w.err == nil {
		w.err = w.w.WriteByte(v)
	}
}

func (w *writer) u32(v uint32) {
	if w.err == nil {
		w.err = binary.Write(w.w, binary.LittleEndian, v)
	}
}

func (w *writer) f32(v float32) {
	if w.err == nil {
		w.err = binary.Write(w.w, binary.LittleEndian, v)
	}
}

func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	if w.err == nil {
		_, w.err = w.w.WriteString(s)
	}
}

func (w *writer) vec(v tensor.Vector) {
	w.u32(uint32(len(v)))
	if w.err == nil {
		w.err = binary.Write(w.w, binary.LittleEndian, []float32(v))
	}
}

func (w *writer) mat(m *tensor.Matrix) {
	w.u32(uint32(m.Rows))
	w.u32(uint32(m.Cols))
	if w.err == nil {
		w.err = binary.Write(w.w, binary.LittleEndian, m.Data)
	}
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	b, err := r.r.ReadByte()
	r.err = err
	return b
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	var v uint32
	r.err = binary.Read(r.r, binary.LittleEndian, &v)
	return v
}

func (r *reader) f32() float32 {
	if r.err != nil {
		return 0
	}
	var v float32
	r.err = binary.Read(r.r, binary.LittleEndian, &v)
	return v
}

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > 1<<16 {
		r.err = fmt.Errorf("persist: implausible string length %d", n)
		return ""
	}
	buf := make([]byte, n)
	_, r.err = io.ReadFull(r.r, buf)
	return string(buf)
}

func (r *reader) vec() tensor.Vector {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if n > maxElems {
		r.err = fmt.Errorf("persist: implausible vector length %d", n)
		return nil
	}
	v := make(tensor.Vector, n)
	if r.err == nil {
		r.err = binary.Read(r.r, binary.LittleEndian, []float32(v))
	}
	return v
}

func (r *reader) mat() *tensor.Matrix {
	rows, cols := int(r.u32()), int(r.u32())
	if r.err != nil {
		return nil
	}
	// Check each dimension before the product: two huge u32s can overflow
	// even int64 multiplication.
	if rows < 0 || cols < 0 || rows > maxElems || cols > maxElems ||
		int64(rows)*int64(cols) > maxElems {
		r.err = fmt.Errorf("persist: implausible matrix %dx%d", rows, cols)
		return nil
	}
	m := tensor.NewMatrix(rows, cols)
	r.err = binary.Read(r.r, binary.LittleEndian, m.Data)
	return m
}

func (r *reader) magic(want string) {
	if r.err != nil {
		return
	}
	var b [4]byte
	if _, r.err = io.ReadFull(r.r, b[:]); r.err != nil {
		return
	}
	if string(b[:]) != want {
		r.err = fmt.Errorf("persist: bad magic %q, want %q", b, want)
	}
	if v := r.u32(); r.err == nil && v != version {
		r.err = fmt.Errorf("persist: unsupported version %d", v)
	}
}

// ---------------------------------------------------------------------------
// Model

// SaveModel serialises a model built from the layer types of package gnn.
func SaveModel(out io.Writer, m *gnn.Model) error {
	if err := m.Validate(); err != nil {
		return err
	}
	w := &writer{w: bufio.NewWriter(out)}
	w.w.WriteString(magicModel)
	w.u32(version)
	w.str(m.Name)
	w.u32(uint32(len(m.Layers)))
	for _, layer := range m.Layers {
		if err := writeLayer(w, layer); err != nil {
			return err
		}
	}
	if m.Norms == nil {
		w.u8(0)
	} else {
		w.u8(1)
		for _, n := range m.Norms {
			writeNorm(w, n)
		}
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

func writeLayer(w *writer, layer gnn.Layer) error {
	switch l := layer.(type) {
	case *gnn.GCNLayer:
		w.u8(layerGCN)
		w.str(l.Name())
		w.u8(uint8(l.Agg().Kind()))
		w.u8(uint8(l.Act()))
		w.mat(l.W)
		w.vec(l.B)
	case *gnn.SAGELayer:
		w.u8(layerSAGE)
		w.str(l.Name())
		w.u8(uint8(l.Agg().Kind()))
		w.u8(uint8(l.Act()))
		w.mat(l.W1)
		w.mat(l.W2)
		w.vec(l.B)
	case *gnn.GINLayer:
		w.u8(layerGIN)
		w.str(l.Name())
		w.u8(uint8(l.Agg().Kind()))
		w.u8(uint8(l.Act()))
		w.f32(l.Eps)
		w.mat(l.W1)
		w.mat(l.W2)
		w.vec(l.B1)
		w.vec(l.B2)
	default:
		return fmt.Errorf("persist: unsupported layer type %T", layer)
	}
	return w.err
}

func writeNorm(w *writer, n *gnn.GraphNorm) {
	if n == nil {
		w.u8(0)
		return
	}
	w.u8(1)
	flags := uint8(0)
	if n.IsFrozen {
		flags |= 1
	}
	if n.Mu != nil {
		flags |= 2
	}
	w.u8(flags)
	w.f32(n.Eps)
	w.vec(n.Gamma)
	w.vec(n.Beta)
	if n.Mu != nil {
		w.vec(n.Mu)
		w.vec(n.Sigma)
	}
}

// LoadModel reads a model written by SaveModel.
func LoadModel(in io.Reader) (*gnn.Model, error) {
	return loadModelR(&reader{r: bufio.NewReader(in)})
}

func loadModelR(r *reader) (*gnn.Model, error) {
	r.magic(magicModel)
	name := r.str()
	nLayers := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if nLayers <= 0 || nLayers > 1024 {
		return nil, fmt.Errorf("persist: implausible layer count %d", nLayers)
	}
	m := &gnn.Model{Name: name}
	for i := 0; i < nLayers; i++ {
		layer, err := readLayer(r)
		if err != nil {
			return nil, err
		}
		m.Layers = append(m.Layers, layer)
	}
	if r.u8() == 1 {
		for i := 0; i < nLayers; i++ {
			n, err := readNorm(r)
			if err != nil {
				return nil, err
			}
			m.Norms = append(m.Norms, n)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("persist: loaded model invalid: %w", err)
	}
	return m, nil
}

func readLayer(r *reader) (gnn.Layer, error) {
	typ := r.u8()
	name := r.str()
	aggKind := gnn.AggKind(r.u8())
	actKind := gnn.ActKind(r.u8())
	if r.err != nil {
		return nil, r.err
	}
	if aggKind < gnn.AggMax || aggKind > gnn.AggSum {
		return nil, fmt.Errorf("persist: bad aggregator %d", aggKind)
	}
	if actKind != gnn.ActIdentity && actKind != gnn.ActReLU {
		return nil, fmt.Errorf("persist: bad activation %d", actKind)
	}
	agg := gnn.NewAggregator(aggKind)
	switch typ {
	case layerGCN:
		w := r.mat()
		b := r.vec()
		if r.err != nil {
			return nil, r.err
		}
		return gnn.RestoreGCNLayer(name, w, b, agg, actKind), nil
	case layerSAGE:
		w1 := r.mat()
		w2 := r.mat()
		b := r.vec()
		if r.err != nil {
			return nil, r.err
		}
		return gnn.RestoreSAGELayer(name, w1, w2, b, agg, actKind), nil
	case layerGIN:
		eps := r.f32()
		w1 := r.mat()
		w2 := r.mat()
		b1 := r.vec()
		b2 := r.vec()
		if r.err != nil {
			return nil, r.err
		}
		return gnn.RestoreGINLayer(name, eps, w1, w2, b1, b2, agg, actKind), nil
	}
	return nil, fmt.Errorf("persist: unknown layer type %d", typ)
}

func readNorm(r *reader) (*gnn.GraphNorm, error) {
	if r.u8() == 0 {
		return nil, r.err
	}
	flags := r.u8()
	eps := r.f32()
	gamma := r.vec()
	beta := r.vec()
	n := &gnn.GraphNorm{Gamma: gamma, Beta: beta, Eps: eps, IsFrozen: flags&1 != 0}
	if flags&2 != 0 {
		n.Mu = r.vec()
		n.Sigma = r.vec()
	}
	if r.err != nil {
		return nil, r.err
	}
	if n.IsFrozen && n.Mu == nil {
		return nil, fmt.Errorf("persist: frozen norm without statistics")
	}
	return n, nil
}

// ---------------------------------------------------------------------------
// State

// SaveState serialises a checkpointed inference state.
func SaveState(out io.Writer, s *gnn.State) error {
	w := &writer{w: bufio.NewWriter(out)}
	w.w.WriteString(magicState)
	w.u32(version)
	w.u32(uint32(len(s.M)))
	for _, m := range s.H {
		w.mat(m)
	}
	for l := range s.M {
		w.mat(s.M[l])
		w.mat(s.Alpha[l])
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// LoadState reads a state written by SaveState.
func LoadState(in io.Reader) (*gnn.State, error) {
	return loadStateR(&reader{r: bufio.NewReader(in)})
}

func loadStateR(r *reader) (*gnn.State, error) {
	r.magic(magicState)
	L := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if L <= 0 || L > 1024 {
		return nil, fmt.Errorf("persist: implausible layer count %d", L)
	}
	s := &gnn.State{}
	for i := 0; i <= L; i++ {
		s.H = append(s.H, r.mat())
	}
	for l := 0; l < L; l++ {
		s.M = append(s.M, r.mat())
		s.Alpha = append(s.Alpha, r.mat())
	}
	if r.err != nil {
		return nil, r.err
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// Bundle (graph + model + state)

// SaveBundle serialises everything needed to resume an engine.
func SaveBundle(out io.Writer, g *graph.Graph, m *gnn.Model, s *gnn.State) error {
	if s.NumNodes() != g.NumNodes() {
		return fmt.Errorf("persist: state for %d nodes, graph has %d", s.NumNodes(), g.NumNodes())
	}
	w := &writer{w: bufio.NewWriter(out)}
	w.w.WriteString(magicBundle)
	w.u32(version)
	if g.Undirected {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u32(uint32(g.NumNodes()))
	edges := g.Edges()
	reps := make([][2]graph.NodeID, 0, len(edges))
	for _, e := range edges {
		if g.Undirected && e[0] > e[1] {
			continue
		}
		reps = append(reps, e)
	}
	w.u32(uint32(len(reps)))
	for _, e := range reps {
		w.u32(uint32(e[0]))
		w.u32(uint32(e[1]))
	}
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := SaveModel(out, m); err != nil {
		return err
	}
	return SaveState(out, s)
}

// LoadBundle reads a bundle written by SaveBundle and checks internal
// consistency.
func LoadBundle(in io.Reader) (*graph.Graph, *gnn.Model, *gnn.State, error) {
	br := bufio.NewReader(in)
	r := &reader{r: br}
	r.magic(magicBundle)
	undirected := r.u8() == 1
	nodes := int(r.u32())
	nEdges := int(r.u32())
	if r.err != nil {
		return nil, nil, nil, r.err
	}
	if nodes < 0 || nodes > maxElems || nEdges < 0 || nEdges > maxElems {
		return nil, nil, nil, fmt.Errorf("persist: implausible graph header (%d nodes, %d edges)", nodes, nEdges)
	}
	var g *graph.Graph
	if undirected {
		g = graph.NewUndirected(nodes)
	} else {
		g = graph.New(nodes)
	}
	for i := 0; i < nEdges; i++ {
		u, v := graph.NodeID(r.u32()), graph.NodeID(r.u32())
		if r.err != nil {
			return nil, nil, nil, r.err
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, nil, nil, fmt.Errorf("persist: edge %d: %w", i, err)
		}
	}
	// The model and state sections share this reader: wrapping them in
	// fresh buffered readers would read ahead and lose section boundaries.
	m, err := loadModelR(r)
	if err != nil {
		return nil, nil, nil, err
	}
	s, err := loadStateR(r)
	if err != nil {
		return nil, nil, nil, err
	}
	if s.NumNodes() != g.NumNodes() {
		return nil, nil, nil, fmt.Errorf("persist: bundle state/graph node mismatch")
	}
	return g, m, s, nil
}

// ---------------------------------------------------------------------------
// File helpers

// SaveBundleFile writes a bundle to path.
func SaveBundleFile(path string, g *graph.Graph, m *gnn.Model, s *gnn.State) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return SaveBundle(f, g, m, s)
}

// LoadBundleFile reads a bundle from path.
func LoadBundleFile(path string) (*graph.Graph, *gnn.Model, *gnn.State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	return LoadBundle(f)
}
