package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/inkstream"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// TieredStore is a paged, tiered backing store for published snapshot
// rows: embeddings are split into fixed-size row pages, hot pages stay
// resident under a configurable byte cap with clock (second-chance)
// eviction, cold pages spill to a slotted disk file and fault back on
// demand, and the on-page representation is optionally quantized (fp16 or
// int8) while the engine's write path keeps full fp32.
//
// Concurrency model: the engine is the single writer (WriteRow/Seal under
// the Apply discipline); any number of readers call Row through sealed
// views. The read hit path is lock-free — two atomic pointer loads plus a
// decode. Faults and writebacks serialize per page on page.mu; no lock is
// ever held across pages, and file I/O uses positional reads/writes so
// concurrent faults on different pages proceed in parallel.
//
// Durability model: the spill file is an ephemeral cache, not a source of
// truth. Recovery after a crash is the existing bundle + WAL replay, after
// which the rebuilt engine re-seeds a fresh store via PublishSnapshot; the
// file is truncated on open so no stale generation can ever be served. A
// torn slot (crash or concurrent overwrite) fails its checksum and the
// fault falls back to the current in-memory generation — readers can
// observe newer data through a superseded view (monotone staleness) but
// never a torn row.
type TieredStore struct {
	dim      int
	pageRows int
	rowBytes int
	slotSize int64
	memCap   int64
	quant    tensor.Quant

	f *os.File

	// pages is append-only and swapped atomically so readers can index it
	// lock-free while the writer grows it.
	pages atomic.Pointer[[]*page]
	// nrows is the writer's row high-water mark; sealedRows is the value
	// published by the latest Seal (what views report).
	nrows      int
	sealedRows atomic.Int64
	// touched lists pages with an open (staged) payload awaiting Seal.
	touched []*page

	hotBytes atomic.Int64
	hand     int // clock hand, worker-only

	hits        atomic.Uint64
	misses      atomic.Uint64
	evictions   atomic.Uint64
	writebacks  atomic.Uint64
	writeErrors atomic.Uint64

	faultLat *obs.Histogram

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// page is one fixed-size run of rows. cur is the current sealed frame
// (nil until the page is first sealed); open is the writer's staging
// payload for the next generation.
type page struct {
	id  int
	mu  sync.Mutex // serializes fault, writeback and eviction for this page
	cur atomic.Pointer[frame]
	ref atomic.Bool // clock second-chance bit, set on every read hit
	// open is writer-only: the staged payload for the next Seal, based on
	// the current generation's encoded bytes so untouched rows carry over
	// verbatim (no quantization re-encoding, error never compounds).
	open []byte
}

// frame is one immutable sealed generation of a page. The payload pointer
// is dropped on eviction and restored on fault; the encoded bytes behind a
// loaded pointer are never mutated, so readers that grabbed the pointer
// before an eviction keep a consistent view.
type frame struct {
	epoch   uint64
	payload atomic.Pointer[[]byte]
	// clean is set once the slot on disk holds exactly this generation;
	// only clean frames are evictable (their bytes are recoverable).
	clean atomic.Bool
}

// TieredConfig configures NewTieredStore.
type TieredConfig struct {
	// Dir is the directory holding the spill file (created if missing).
	Dir string
	// Dim is the embedding row dimension (required).
	Dim int
	// PageBytes is the target encoded payload size per page; the row count
	// per page is derived from it (at least one row). Default 64 KiB.
	PageBytes int
	// MemCap is the soft cap on resident payload bytes; 0 disables
	// eviction (everything stays hot).
	MemCap int64
	// Quant selects the on-page row encoding (default fp32, bit-exact).
	Quant tensor.Quant
	// FaultLatency, when non-nil, observes page-fault latency (ns).
	FaultLatency *obs.Histogram
}

const (
	tieredFile      = "pages.ink"
	slotMagic       = 0x49504731 // "IPG1"
	slotHeaderBytes = 24         // magic u32, pageID u32, epoch u64, len u32, crc u32
	defaultPageSize = 64 << 10
)

var errSlotStale = errors.New("persist: slot holds a different generation")

// NewTieredStore creates the store and starts its background
// writeback/eviction worker. The spill file is truncated: its previous
// contents are a dead cache from an earlier process (recovery is bundle +
// WAL replay, never this file).
func NewTieredStore(cfg TieredConfig) (*TieredStore, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("persist: tiered store needs a positive row dimension")
	}
	if cfg.PageBytes <= 0 {
		cfg.PageBytes = defaultPageSize
	}
	rowBytes := cfg.Quant.RowBytes(cfg.Dim)
	pageRows := cfg.PageBytes / rowBytes
	if pageRows < 1 {
		pageRows = 1
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(cfg.Dir, tieredFile), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	st := &TieredStore{
		dim:      cfg.Dim,
		pageRows: pageRows,
		rowBytes: rowBytes,
		slotSize: int64(slotHeaderBytes + pageRows*rowBytes),
		memCap:   cfg.MemCap,
		quant:    cfg.Quant,
		f:        f,
		faultLat: cfg.FaultLatency,
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	empty := []*page{}
	st.pages.Store(&empty)
	st.wg.Add(1)
	go st.worker()
	return st, nil
}

// Close stops the background worker and closes the spill file. Views
// sealed earlier keep serving resident pages but faults will fail.
func (st *TieredStore) Close() error {
	close(st.done)
	st.wg.Wait()
	return st.f.Close()
}

// PageRows returns the number of rows per page (derived from PageBytes).
func (st *TieredStore) PageRows() int { return st.pageRows }

// Quant returns the configured on-page encoding.
func (st *TieredStore) Quant() tensor.Quant { return st.quant }

// Stats returns a point-in-time snapshot of the cache counters.
func (st *TieredStore) Stats() obs.PageCacheStats {
	pages := *st.pages.Load()
	hot := 0
	for _, p := range pages {
		if f := p.cur.Load(); f != nil && f.payload.Load() != nil {
			hot++
		}
	}
	return obs.PageCacheStats{
		Hits:        st.hits.Load(),
		Misses:      st.misses.Load(),
		Evictions:   st.evictions.Load(),
		Writebacks:  st.writebacks.Load(),
		WriteErrors: st.writeErrors.Load(),
		HotBytes:    st.hotBytes.Load(),
		CapBytes:    st.memCap,
		HotPages:    hot,
		TotalPages:  len(pages),
	}
}

// WriteRow stages node id's embedding for the next sealed generation
// (inkstream.RowStore). Writer goroutine only.
func (st *TieredStore) WriteRow(id int, row tensor.Vector) {
	if len(row) != st.dim {
		panic(fmt.Sprintf("persist: WriteRow dim %d, store dim %d", len(row), st.dim))
	}
	p := st.ensurePage(id / st.pageRows)
	if p.open == nil {
		p.open = st.basePayload(p)
		st.touched = append(st.touched, p)
	}
	st.quant.EncodeRow(p.open[(id%st.pageRows)*st.rowBytes:], row)
	if id >= st.nrows {
		st.nrows = id + 1
	}
}

// Seal publishes every staged page as the current generation stamped with
// epoch and returns a view of the full store (inkstream.RowStore). The
// superseded generation's payloads are dropped immediately — the engine
// releases the previous view in the same publication step, and a straggler
// reader that faults through it falls back to this (newer) generation.
func (st *TieredStore) Seal(epoch uint64) inkstream.RowView {
	for _, p := range st.touched {
		nf := &frame{epoch: epoch}
		payload := p.open
		nf.payload.Store(&payload)
		p.open = nil
		old := p.cur.Swap(nf)
		st.hotBytes.Add(int64(len(payload)))
		p.ref.Store(true)
		if old != nil {
			if b := old.payload.Swap(nil); b != nil {
				st.hotBytes.Add(-int64(len(*b)))
			}
		}
	}
	st.touched = st.touched[:0]
	st.sealedRows.Store(int64(st.nrows))
	st.maybeKick()
	return &tieredView{st: st, nrows: st.nrows}
}

// ensurePage returns page pid, growing the page table if needed
// (writer-only; readers see the table through the atomic pointer).
func (st *TieredStore) ensurePage(pid int) *page {
	pages := *st.pages.Load()
	if pid < len(pages) {
		return pages[pid]
	}
	grown := make([]*page, pid+1)
	copy(grown, pages)
	for i := len(pages); i <= pid; i++ {
		grown[i] = &page{id: i}
	}
	st.pages.Store(&grown)
	return grown[pid]
}

// basePayload returns the staging buffer for p's next generation: a copy
// of the current generation's encoded bytes (faulted back in if evicted)
// or zeros for a brand-new page. A writer-side fault failure is fail-stop,
// matching the WAL discipline: continuing would corrupt untouched rows.
func (st *TieredStore) basePayload(p *page) []byte {
	buf := make([]byte, st.pageRows*st.rowBytes)
	f := p.cur.Load()
	if f == nil {
		return buf
	}
	b := f.payload.Load()
	if b == nil {
		st.misses.Add(1)
		fb, err := st.fault(p)
		if err != nil {
			panic(fmt.Sprintf("persist: cannot stage page %d: %v", p.id, err))
		}
		b = fb
	}
	copy(buf, *b)
	return buf
}

// readRow decodes node id's embedding from the current generation of its
// page, faulting the payload back in when evicted. Lock-free on hit.
func (st *TieredStore) readRow(id int) (tensor.Vector, error) {
	if id < 0 || int64(id) >= st.sealedRows.Load() {
		return nil, fmt.Errorf("persist: row %d out of range", id)
	}
	pages := *st.pages.Load()
	pid := id / st.pageRows
	if pid >= len(pages) {
		return nil, fmt.Errorf("persist: page %d out of range", pid)
	}
	p := pages[pid]
	f := p.cur.Load()
	if f == nil {
		return nil, fmt.Errorf("persist: page %d never sealed", pid)
	}
	b := f.payload.Load()
	if b == nil {
		st.misses.Add(1)
		fb, err := st.fault(p)
		if err != nil {
			return nil, err
		}
		b = fb
	} else {
		st.hits.Add(1)
	}
	p.ref.Store(true)
	row := make(tensor.Vector, st.dim)
	st.quant.DecodeRow(row, (*b)[(id%st.pageRows)*st.rowBytes:])
	return row, nil
}

// fault restores p's current generation payload from the spill file. Only
// clean frames are ever evicted, so the slot normally holds exactly the
// evicted generation; if a newer generation replaced the frame while we
// waited (its payload is resident by construction), the read falls back to
// it — monotone, never torn.
func (st *TieredStore) fault(p *page) (*[]byte, error) {
	t0 := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	for tries := 0; tries < 4; tries++ {
		f := p.cur.Load()
		if f == nil {
			return nil, fmt.Errorf("persist: page %d never sealed", p.id)
		}
		if b := f.payload.Load(); b != nil {
			return b, nil // restored by a concurrent fault or superseded by a resident seal
		}
		payload, err := st.readSlot(p.id, f.epoch)
		if err == nil {
			// A Seal may supersede f and drop its payload at any moment, so
			// return the locally read bytes (correct for f's generation)
			// rather than re-loading the pointer.
			if f.payload.CompareAndSwap(nil, &payload) {
				st.hotBytes.Add(int64(len(payload)))
				st.maybeKick()
			}
			if st.faultLat != nil {
				st.faultLat.ObserveDuration(time.Since(t0))
			}
			return &payload, nil
		}
		if !errors.Is(err, errSlotStale) {
			return nil, err
		}
		// The slot belongs to another generation (concurrent writeback of a
		// newer seal); retry against whatever is current now.
	}
	return nil, fmt.Errorf("persist: page %d unavailable after retries", p.id)
}

// readSlot reads and verifies page pid's slot, requiring generation epoch.
func (st *TieredStore) readSlot(pid int, epoch uint64) ([]byte, error) {
	buf := make([]byte, st.slotSize)
	if _, err := st.f.ReadAt(buf, int64(pid)*st.slotSize); err != nil {
		return nil, fmt.Errorf("persist: page %d slot: %w", pid, err)
	}
	if binary.LittleEndian.Uint32(buf) != slotMagic ||
		binary.LittleEndian.Uint32(buf[4:]) != uint32(pid) {
		return nil, fmt.Errorf("%w (bad header)", errSlotStale)
	}
	if binary.LittleEndian.Uint64(buf[8:]) != epoch {
		return nil, errSlotStale
	}
	n := binary.LittleEndian.Uint32(buf[16:])
	if int(n) != st.pageRows*st.rowBytes {
		return nil, fmt.Errorf("%w (bad length)", errSlotStale)
	}
	payload := buf[slotHeaderBytes:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(buf[20:]) {
		return nil, fmt.Errorf("%w (checksum)", errSlotStale)
	}
	return payload, nil
}

// writeSlot persists one generation into page pid's slot. No fsync: the
// file is a cache, and a torn write is caught by the checksum.
func (st *TieredStore) writeSlot(pid int, epoch uint64, payload []byte) error {
	buf := make([]byte, st.slotSize)
	binary.LittleEndian.PutUint32(buf, slotMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(pid))
	binary.LittleEndian.PutUint64(buf[8:], epoch)
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[20:], crc32.ChecksumIEEE(payload))
	copy(buf[slotHeaderBytes:], payload)
	_, err := st.f.WriteAt(buf, int64(pid)*st.slotSize)
	return err
}

func (st *TieredStore) maybeKick() {
	select {
	case st.kick <- struct{}{}:
	default:
	}
}

// worker runs writeback and eviction off the hot path: dirty generations
// are persisted so they become evictable, then the clock sweep drops clean
// payloads until the resident set fits the cap.
func (st *TieredStore) worker() {
	defer st.wg.Done()
	ticker := time.NewTicker(20 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-st.done:
			return
		case <-st.kick:
		case <-ticker.C:
		}
		st.writebackDirty()
		st.evictToCap()
	}
}

// writebackDirty persists every dirty current generation.
func (st *TieredStore) writebackDirty() {
	for _, p := range *st.pages.Load() {
		f := p.cur.Load()
		if f == nil || f.clean.Load() {
			continue
		}
		p.mu.Lock()
		f = p.cur.Load() // write the latest generation, not a superseded one
		if f != nil && !f.clean.Load() {
			if b := f.payload.Load(); b != nil {
				if err := st.writeSlot(p.id, f.epoch, *b); err != nil {
					st.writeErrors.Add(1)
				} else {
					f.clean.Store(true)
					st.writebacks.Add(1)
				}
			}
		}
		p.mu.Unlock()
	}
}

// evictToCap advances the clock hand, giving referenced pages a second
// chance and dropping clean resident payloads until hotBytes <= cap. At
// most two full sweeps per call: if everything left is dirty or recently
// referenced the cap is allowed to overshoot until the next writeback.
func (st *TieredStore) evictToCap() {
	if st.memCap <= 0 {
		return
	}
	pages := *st.pages.Load()
	n := len(pages)
	if n == 0 {
		return
	}
	for steps := 0; steps < 2*n && st.hotBytes.Load() > st.memCap; steps++ {
		p := pages[st.hand%n]
		st.hand++
		f := p.cur.Load()
		if f == nil || !f.clean.Load() || f.payload.Load() == nil {
			continue
		}
		if p.ref.Swap(false) {
			continue // second chance
		}
		p.mu.Lock()
		if cur := p.cur.Load(); cur == f && f.clean.Load() {
			if b := f.payload.Swap(nil); b != nil {
				st.hotBytes.Add(-int64(len(*b)))
				st.evictions.Add(1)
			}
		}
		p.mu.Unlock()
	}
}

// tieredView is one sealed generation boundary. It intentionally holds no
// frame references: the current generation is served through the page
// table, and once superseded (Release) reads simply keep resolving through
// it — the documented monotone-staleness semantics for tiered mode.
type tieredView struct {
	st    *TieredStore
	nrows int
}

func (v *tieredView) Row(id int) (tensor.Vector, error) {
	if id < 0 || id >= v.nrows {
		return nil, fmt.Errorf("persist: row %d out of view range %d", id, v.nrows)
	}
	return v.st.readRow(id)
}

func (v *tieredView) NumRows() int { return v.nrows }

// Release is a no-op: superseding already dropped the old generation's
// payloads in Seal, and straggler reads fall back to current data.
func (v *tieredView) Release() {}

var _ inkstream.RowStore = (*TieredStore)(nil)
