package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// WAL is a write-ahead log of update batches. A service that persists a
// bundle periodically and appends every applied batch to a WAL can recover
// its exact state after a crash: load the bundle, then replay the WAL
// suffix. Records are framed and length-prefixed; a torn final record
// (crash mid-write) is detected and ignored on replay.
//
// Record layout (little-endian):
//
//	magic byte 'R' | payload length u32 | payload
//	payload: nEdges u32, nEdges × (u u32, v u32, insert u8),
//	         nVerts u32, nVerts × (node u32, dim u32, dim × f32)
type WAL struct {
	f *os.File
	w *bufio.Writer
	// lat, when set, observes per-Append latency in nanoseconds — encode,
	// buffered write, flush and fsync together, i.e. the durability cost a
	// served update pays before it reaches the engine.
	lat *obs.Histogram
}

// SetLatencyHistogram installs a histogram observing Append latency (nil
// disables). The HTTP server injects its registered WAL histogram here so
// /metrics exposes journal fsync behaviour.
func (w *WAL) SetLatencyHistogram(h *obs.Histogram) { w.lat = h }

// OpenWAL opens (or creates) a log for appending.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &WAL{f: f, w: bufio.NewWriter(f)}, nil
}

// Append writes one applied batch. The record only becomes durable after
// the implicit flush+sync; Append performs both before returning, so a
// successful Append means the batch survives a crash. Callers journaling
// several batches at once should prefer AppendBuffered + one Commit
// (group commit): the fsync is by far the dominant cost and one covers
// every record buffered behind it.
func (w *WAL) Append(delta graph.Delta, vups []inkstream.VertexUpdate) error {
	var t0 time.Time
	if w.lat != nil {
		t0 = time.Now()
		defer func() { w.lat.ObserveDuration(time.Since(t0)) }()
	}
	if err := w.AppendBuffered(delta, vups); err != nil {
		return err
	}
	return w.commit()
}

// AppendBuffered encodes and writes one record into the log's buffer
// without making it durable. The record reaches the OS (and survives a
// process crash, though not a machine crash) only after a later Commit;
// a torn tail from a crash between the two is detected and dropped on
// replay, exactly like a crash mid-Append.
func (w *WAL) AppendBuffered(delta graph.Delta, vups []inkstream.VertexUpdate) error {
	payload := encodeBatch(delta, vups)
	hdr := make([]byte, 5)
	hdr[0] = 'R'
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.w.Write(hdr); err != nil {
		return err
	}
	_, err := w.w.Write(payload)
	return err
}

// Commit flushes and fsyncs everything buffered by AppendBuffered since
// the previous commit — the group-commit barrier. After a nil return,
// every buffered record survives a crash.
func (w *WAL) Commit() error {
	var t0 time.Time
	if w.lat != nil {
		t0 = time.Now()
		defer func() { w.lat.ObserveDuration(time.Since(t0)) }()
	}
	return w.commit()
}

func (w *WAL) commit() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

func encodeBatch(delta graph.Delta, vups []inkstream.VertexUpdate) []byte {
	size := 4 + len(delta)*9 + 4
	for _, v := range vups {
		size += 8 + 4*len(v.X)
	}
	buf := make([]byte, 0, size)
	var scratch [4]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:], v)
		buf = append(buf, scratch[:]...)
	}
	u32(uint32(len(delta)))
	for _, c := range delta {
		u32(uint32(c.U))
		u32(uint32(c.V))
		if c.Insert {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	u32(uint32(len(vups)))
	for _, v := range vups {
		u32(uint32(v.Node))
		u32(uint32(len(v.X)))
		for _, x := range v.X {
			u32(uint32(float32bits(x)))
		}
	}
	return buf
}

// Batch is one decoded WAL record.
type Batch struct {
	Delta graph.Delta
	Vups  []inkstream.VertexUpdate
}

// ReadWAL decodes every complete record from path. A torn trailing record
// is tolerated (reported via the second return); any other corruption is
// an error.
func ReadWAL(path string) ([]Batch, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var out []Batch
	for {
		hdr := make([]byte, 5)
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF {
				return out, false, nil
			}
			return out, true, nil // torn header
		}
		if hdr[0] != 'R' {
			return nil, false, fmt.Errorf("persist: bad WAL record marker %q", hdr[0])
		}
		n := binary.LittleEndian.Uint32(hdr[1:])
		if n > maxElems {
			return nil, false, fmt.Errorf("persist: implausible WAL record size %d", n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return out, true, nil // torn payload
		}
		b, err := decodeBatch(payload)
		if err != nil {
			return nil, false, err
		}
		out = append(out, b)
	}
}

func decodeBatch(p []byte) (Batch, error) {
	var b Batch
	off := 0
	u32 := func() (uint32, error) {
		if off+4 > len(p) {
			return 0, fmt.Errorf("persist: truncated WAL payload")
		}
		v := binary.LittleEndian.Uint32(p[off:])
		off += 4
		return v, nil
	}
	nEdges, err := u32()
	if err != nil {
		return b, err
	}
	for i := uint32(0); i < nEdges; i++ {
		u, err := u32()
		if err != nil {
			return b, err
		}
		v, err := u32()
		if err != nil {
			return b, err
		}
		if off >= len(p) {
			return b, fmt.Errorf("persist: truncated WAL payload")
		}
		ins := p[off] == 1
		off++
		b.Delta = append(b.Delta, graph.EdgeChange{U: graph.NodeID(u), V: graph.NodeID(v), Insert: ins})
	}
	nVerts, err := u32()
	if err != nil {
		return b, err
	}
	for i := uint32(0); i < nVerts; i++ {
		node, err := u32()
		if err != nil {
			return b, err
		}
		dim, err := u32()
		if err != nil {
			return b, err
		}
		if dim > 1<<20 {
			return b, fmt.Errorf("persist: implausible WAL feature dim %d", dim)
		}
		x := make(tensor.Vector, dim)
		for j := range x {
			bits, err := u32()
			if err != nil {
				return b, err
			}
			x[j] = float32frombits(bits)
		}
		b.Vups = append(b.Vups, inkstream.VertexUpdate{Node: graph.NodeID(node), X: x})
	}
	return b, nil
}

// Replay applies every batch in order to the engine.
func Replay(engine *inkstream.Engine, batches []Batch) error {
	for i, b := range batches {
		if err := engine.Apply(b.Delta, b.Vups); err != nil {
			return fmt.Errorf("persist: WAL replay batch %d: %w", i, err)
		}
	}
	return nil
}

func float32bits(f float32) uint32     { return math.Float32bits(f) }
func float32frombits(b uint32) float32 { return math.Float32frombits(b) }
