package baseline

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/tensor"
)

func randomGraph(rng *rand.Rand, n, edges int) *graph.Graph {
	g := graph.NewUndirected(n)
	for g.NumEdges() < edges {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	return g
}

func TestFullNoSamplerMatchesInfer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 30, 90)
	x := tensor.RandMatrix(rng, 30, 5, 1)
	model := gnn.NewGCN(rng, 5, 8, gnn.NewAggregator(gnn.AggMax))
	f := &Full{Model: model}
	got, err := f.Infer(g, x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := gnn.Infer(model, g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("Full without sampler must equal plain inference")
	}
}

func TestFullSamplerDeterministicAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 60, 400)
	x := tensor.RandMatrix(rng, 60, 5, 1)
	model := gnn.NewGCN(rng, 5, 8, gnn.NewAggregator(gnn.AggMean))
	f := &Full{Model: model, Fanout: 3, Seed: 7}
	a, err := f.Infer(g, x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Infer(g, x)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("sampled inference with fixed seed must be deterministic")
	}
}

func TestKHopMatchesFullRecompute(t *testing.T) {
	for _, kind := range []gnn.AggKind{gnn.AggMax, gnn.AggMin, gnn.AggMean, gnn.AggSum} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			g := randomGraph(rng, 80, 240)
			x := tensor.RandMatrix(rng, 80, 5, 1)
			var models []*gnn.Model
			models = append(models,
				gnn.NewGCN(rng, 5, 8, gnn.NewAggregator(kind)),
				gnn.NewSAGE(rng, 5, 8, gnn.NewAggregator(kind)),
				gnn.NewGIN(rng, 5, 8, 3, gnn.NewAggregator(kind)))
			for _, model := range models {
				var c metrics.Counters
				kh, err := NewKHop(model, g.Clone(), x, &c)
				if err != nil {
					t.Fatal(err)
				}
				for batch := 0; batch < 2; batch++ {
					delta := graph.RandomDelta(rng, kh.Graph(), 8)
					if err := kh.Update(delta); err != nil {
						t.Fatal(err)
					}
					want, err := gnn.Infer(model, kh.Graph(), x, nil)
					if err != nil {
						t.Fatal(err)
					}
					if !kh.Output().ApproxEqual(want.Output(), 1e-4) {
						t.Fatalf("%s batch %d: k-hop output diverged (max diff %g)",
							model.Name, batch, kh.Output().MaxAbsDiff(want.Output()))
					}
					if kh.LastAffected == 0 {
						t.Errorf("%s: affected area empty", model.Name)
					}
				}
				if c.Snapshot().BytesFetched == 0 {
					t.Error("k-hop counters empty")
				}
			}
		})
	}
}

func TestKHopRejectsInvalidDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 20, 40)
	x := tensor.RandMatrix(rng, 20, 4, 1)
	model := gnn.NewGCN(rng, 4, 4, gnn.NewAggregator(gnn.AggMax))
	kh, err := NewKHop(model, g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := kh.Output().Clone()
	if err := kh.Update(graph.Delta{{U: 1, V: 1, Insert: true}}); err == nil {
		t.Fatal("invalid delta accepted")
	}
	if !kh.Output().Equal(before) {
		t.Error("failed update mutated output")
	}
}

func TestFusedMatchesInferAndOOMs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 40, 120)
	x := tensor.RandMatrix(rng, 40, 5, 1)
	for _, model := range []*gnn.Model{
		gnn.NewGCN(rng, 5, 8, gnn.NewAggregator(gnn.AggMax)),
		gnn.NewSAGE(rng, 5, 8, gnn.NewAggregator(gnn.AggMean)),
		gnn.NewGIN(rng, 5, 8, 3, gnn.NewAggregator(gnn.AggSum)),
	} {
		f := &Fused{Model: model}
		got, err := f.Infer(g, x)
		if err != nil {
			t.Fatalf("%s: %v", model.Name, err)
		}
		want, err := gnn.Infer(model, g, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !got.ApproxEqual(want.Output(), 1e-5) {
			t.Errorf("%s: fused output diverged (max diff %g)", model.Name, got.MaxAbsDiff(want.Output()))
		}
		// Reuse of ping-pong buffers across calls stays correct.
		got2, err := f.Infer(g, x)
		if err != nil {
			t.Fatal(err)
		}
		if !got2.Equal(got) {
			t.Errorf("%s: second fused run differs", model.Name)
		}
	}
	// OOM gate.
	model := gnn.NewGIN(rng, 5, 8, 5, gnn.NewAggregator(gnn.AggMax))
	f := &Fused{Model: model, MemLimit: 1024}
	if _, err := f.Infer(g, x); !errors.Is(err, ErrOOM) {
		t.Errorf("expected ErrOOM, got %v", err)
	}
	if ws := f.WorkingSetBytes(g.NumNodes(), g.NumArcs()); ws <= 0 {
		t.Error("WorkingSetBytes must be positive")
	}
}

// Deeper models must report larger working sets (the reason Graphiler OOMs
// on GIN first).
func TestFusedWorkingSetGrowsWithDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	shallow := &Fused{Model: gnn.NewGIN(rng, 16, 16, 2, gnn.NewAggregator(gnn.AggMax))}
	deep := &Fused{Model: gnn.NewGIN(rng, 16, 16, 5, gnn.NewAggregator(gnn.AggMax))}
	if deep.WorkingSetBytes(1000, 5000) <= shallow.WorkingSetBytes(1000, 5000) {
		t.Error("working set must grow with depth")
	}
}

// TestKHopRecordsObserver: the baseline feeds the same observer histograms
// as the engine, so served comparisons are like-for-like.
func TestKHopRecordsObserver(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 40, 120)
	x := tensor.RandMatrix(rng, 40, 5, 1)
	model := gnn.NewGCN(rng, 5, 8, gnn.NewAggregator(gnn.AggMax))
	kh, err := NewKHop(model, g, x, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	kh.Obs = obs.NewObserver()
	delta := graph.RandomDelta(rng, g, 3)
	if err := kh.Update(delta); err != nil {
		t.Fatal(err)
	}
	if kh.Obs.Updates() != 1 {
		t.Fatalf("observer recorded %d updates", kh.Obs.Updates())
	}
	if s := kh.Obs.UpdateLatency.Snapshot(); s.Count != 1 || s.Max <= 0 {
		t.Errorf("latency histogram %+v", s)
	}
	if s := kh.Obs.Events.Snapshot(); s.Sum != int64(kh.LastAffected) {
		t.Errorf("events sum = %d, want affected %d", s.Sum, kh.LastAffected)
	}
}
