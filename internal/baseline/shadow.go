package baseline

import (
	"fmt"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// Shadow recompute: the sampled, non-exclusive sibling of Engine.Verify
// (DESIGN.md §10). Verify recomputes the whole graph and must quiesce the
// writer; a Shadow instead captures, in one cheap pass on the writer's
// goroutine, everything needed to recompute the final embeddings of a
// handful of sampled nodes — their L-hop in-dependency cone: frozen
// in-neighbor lists, input-feature rows and the maintained output rows —
// and then recomputes *off* the writer, so the serving pipeline only stalls
// for the capture, never for the inference. The drift auditor runs this
// continuously to turn the paper's accumulated-error concern (floating-
// point drift of accumulative aggregators across many incremental batches)
// into a live metric.
type Shadow struct {
	model *gnn.Model
	// sets[l] is the node set whose h_l (and m_l) the recompute needs;
	// sets[L] is the sampled target set. Built exactly like the k-hop
	// baseline's ExpandIn closure, but seeded with the targets only.
	sets [][]graph.NodeID
	// in holds the frozen in-neighbor lists of every node in sets[1..L].
	in map[graph.NodeID][]graph.NodeID
	// x holds cloned input-feature rows for sets[0]; want the cloned
	// maintained output rows for the targets.
	x, want map[graph.NodeID]tensor.Vector
	// Epoch is the snapshot epoch the capture corresponds to (recorded by
	// the caller for reporting; CaptureShadow does not read it).
	Epoch uint64
}

// Targets returns the sampled node set the shadow recomputes.
func (s *Shadow) Targets() []graph.NodeID { return s.sets[len(s.sets)-1] }

// CaptureBytes estimates the captured payload size — the cost the capture
// imposed on the writer stall, reported by the auditor.
func (s *Shadow) CaptureBytes() int64 {
	var b int64
	for _, nbrs := range s.in {
		b += int64(4 * len(nbrs))
	}
	for _, v := range s.x {
		b += int64(4 * len(v))
	}
	for _, v := range s.want {
		b += int64(4 * len(v))
	}
	return b
}

// CaptureShadow snapshots the L-hop in-dependency cone of targets: the
// per-layer closure sets, frozen adjacency, input features (x rows) and the
// maintained output rows (out rows) to compare against. Must run on the
// engine's writer goroutine (or otherwise quiesced); the returned Shadow is
// self-contained and safe to Recompute from any goroutine afterwards.
func CaptureShadow(model *gnn.Model, g *graph.Graph, x, out *tensor.Matrix, targets []graph.NodeID) (*Shadow, error) {
	L := model.NumLayers()
	for l := range model.Layers {
		if n := model.Norm(l); n != nil && !n.IsFrozen {
			return nil, fmt.Errorf("baseline: shadow recompute requires frozen GraphNorm")
		}
	}
	s := &Shadow{
		model: model,
		sets:  make([][]graph.NodeID, L+1),
		in:    make(map[graph.NodeID][]graph.NodeID),
		x:     make(map[graph.NodeID]tensor.Vector),
		want:  make(map[graph.NodeID]tensor.Vector),
	}
	// Deduplicate and bounds-check the targets.
	seen := make(map[graph.NodeID]struct{}, len(targets))
	tset := make([]graph.NodeID, 0, len(targets))
	for _, t := range targets {
		if int(t) < 0 || int(t) >= g.NumNodes() {
			return nil, fmt.Errorf("baseline: shadow target %d out of range", t)
		}
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		tset = append(tset, t)
	}
	if len(tset) == 0 {
		return nil, fmt.Errorf("baseline: no shadow targets")
	}
	s.sets[L] = tset
	// Walk the closure inward: layer l-1 needs h for sets[l] and all their
	// in-neighbors. Freeze each newly seen node's in-neighbor list once.
	for l := L; l >= 1; l-- {
		mark := make(map[graph.NodeID]struct{}, 2*len(s.sets[l]))
		var next []graph.NodeID
		add := func(u graph.NodeID) {
			if _, ok := mark[u]; !ok {
				mark[u] = struct{}{}
				next = append(next, u)
			}
		}
		for _, u := range s.sets[l] {
			add(u)
			if _, ok := s.in[u]; !ok {
				s.in[u] = append([]graph.NodeID(nil), g.InNeighbors(u)...)
			}
			for _, v := range s.in[u] {
				add(v)
			}
		}
		s.sets[l-1] = next
	}
	for _, u := range s.sets[0] {
		s.x[u] = x.Row(int(u)).Clone()
	}
	for _, t := range tset {
		s.want[t] = out.Row(int(t)).Clone()
	}
	return s, nil
}

// ShadowResult reports one shadow recompute.
type ShadowResult struct {
	// MaxAbsDiff is the largest absolute output difference across all
	// sampled targets; WorstNode the target it occurred at.
	MaxAbsDiff float32
	WorstNode  graph.NodeID
	// Nodes is the number of sampled targets; ClosureNodes the total cone
	// size recomputed to produce them.
	Nodes, ClosureNodes int
}

// Recompute runs the captured cone through the model from the input
// features and compares the recomputed target embeddings against the
// captured maintained rows. Pure function of the capture: safe off the
// writer goroutine, allocates freely (it is audit-path, not serving-path).
func (s *Shadow) Recompute() ShadowResult {
	L := s.model.NumLayers()
	h := s.x
	closure := len(s.sets[0])
	for l := 0; l < L; l++ {
		layer := s.model.Layers[l]
		agg := layer.Agg()
		// Messages for every node of this layer's closure.
		m := make(map[graph.NodeID]tensor.Vector, len(s.sets[l]))
		for _, u := range s.sets[l] {
			mu := make(tensor.Vector, layer.MsgDim())
			layer.ComputeMessage(mu, h[u])
			m[u] = mu
		}
		// Aggregate + update for the next tighter set.
		hNext := make(map[graph.NodeID]tensor.Vector, len(s.sets[l+1]))
		norm := s.model.Norm(l)
		for _, u := range s.sets[l+1] {
			alpha := make(tensor.Vector, layer.MsgDim())
			agg.Identity(alpha)
			nbrs := s.in[u]
			for _, v := range nbrs {
				agg.Merge(alpha, m[v])
			}
			agg.Finalize(alpha, len(nbrs))
			hu := make(tensor.Vector, layer.OutDim())
			layer.Update(hu, alpha, m[u])
			if norm != nil {
				norm.ApplyRow(hu)
			}
			hNext[u] = hu
		}
		h = hNext
	}
	res := ShadowResult{Nodes: len(s.sets[L]), ClosureNodes: closure}
	for _, t := range s.sets[L] {
		got, want := h[t], s.want[t]
		for i := range want {
			d := got[i] - want[i]
			if d < 0 {
				d = -d
			}
			if d > res.MaxAbsDiff {
				res.MaxAbsDiff = d
				res.WorstNode = t
			}
		}
	}
	return res
}
