package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// TestShadowMatchesFullInference: a shadow captured from a consistent state
// (maintained output == from-scratch inference) must recompute exactly the
// captured rows — zero drift, for every aggregator kind.
func TestShadowMatchesFullInference(t *testing.T) {
	for _, kind := range []gnn.AggKind{gnn.AggMax, gnn.AggMin, gnn.AggMean, gnn.AggSum} {
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(4))
			g := randomGraph(rng, 40, 160)
			x := tensor.RandMatrix(rng, 40, 5, 1)
			model := gnn.NewGCN(rng, 5, 8, gnn.NewAggregator(kind))
			st, err := gnn.Infer(model, g, x, nil)
			if err != nil {
				t.Fatal(err)
			}
			targets := []graph.NodeID{0, 7, 13, 39, 7} // dup on purpose
			sh, err := CaptureShadow(model, g, x, st.Output(), targets)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(sh.Targets()); got != 4 {
				t.Errorf("targets not deduplicated: %d", got)
			}
			res := sh.Recompute()
			if res.MaxAbsDiff != 0 {
				t.Errorf("%s: drift %g against consistent state, want 0", kind, res.MaxAbsDiff)
			}
			if res.Nodes != 4 || res.ClosureNodes < res.Nodes {
				t.Errorf("bad sizes: %+v", res)
			}
			if sh.CaptureBytes() <= 0 {
				t.Error("capture reported zero bytes")
			}
		})
	}
}

// TestShadowDetectsCorruption: corrupting a captured target's maintained row
// must surface as drift at exactly that node.
func TestShadowDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 30, 100)
	x := tensor.RandMatrix(rng, 30, 5, 1)
	model := gnn.NewGCN(rng, 5, 8, gnn.NewAggregator(gnn.AggMax))
	st, err := gnn.Infer(model, g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := st.Output()
	out.Row(11)[0] += 0.5 // corrupt before capture: the shadow clones it
	sh, err := CaptureShadow(model, g, x, out, []graph.NodeID{3, 11})
	if err != nil {
		t.Fatal(err)
	}
	res := sh.Recompute()
	if res.MaxAbsDiff < 0.49 {
		t.Errorf("corruption not detected: drift %g", res.MaxAbsDiff)
	}
	if res.WorstNode != 11 {
		t.Errorf("drift attributed to node %d, want 11", res.WorstNode)
	}
}

// TestShadowIsSelfContained: mutating the graph and output after capture
// must not change the shadow's verdict (the auditor recomputes off the
// writer while the pipeline keeps applying updates).
func TestShadowIsSelfContained(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 25, 80)
	x := tensor.RandMatrix(rng, 25, 5, 1)
	model := gnn.NewGCN(rng, 5, 8, gnn.NewAggregator(gnn.AggMean))
	st, err := gnn.Infer(model, g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := CaptureShadow(model, g, x, st.Output(), []graph.NodeID{2, 9, 17})
	if err != nil {
		t.Fatal(err)
	}
	// Post-capture mutations the recompute must not observe.
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		for v := u + 1; int(v) < g.NumNodes(); v++ {
			if !g.HasEdge(u, v) {
				if err := g.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
	}
	st.Output().Row(9)[0] += 99
	x.Row(2)[0] -= 99
	if res := sh.Recompute(); res.MaxAbsDiff != 0 {
		t.Errorf("shadow observed post-capture mutations: drift %g", res.MaxAbsDiff)
	}
}

func TestShadowRejectsBadTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 10, 20)
	x := tensor.RandMatrix(rng, 10, 4, 1)
	model := gnn.NewGCN(rng, 4, 6, gnn.NewAggregator(gnn.AggMax))
	st, err := gnn.Infer(model, g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CaptureShadow(model, g, x, st.Output(), nil); err == nil {
		t.Error("empty target set accepted")
	}
	if _, err := CaptureShadow(model, g, x, st.Output(), []graph.NodeID{99}); err == nil {
		t.Error("out-of-range target accepted")
	}
}
