// Package baseline implements the comparison methods of the paper's
// evaluation (Sec. III-A):
//
//   - Full: the PyG-style baseline — full-graph inference from scratch on
//     every timestamp, optionally through a GraphSAGE neighbor sampler.
//   - KHop: the DyGNN-style baseline — recompute only the theoretical
//     k-hop affected area, fetching its in-neighborhood closure (up to
//     2k-hop data) from the input features, with no reuse of previous
//     results.
//   - Fused: the Graphiler stand-in — an optimised full-graph engine with
//     preallocated buffers and a memory cap that reports OOM on large
//     graphs and deep models, as the paper observes for Graphiler.
//
// All baselines share the instrumentation of package metrics so Table V's
// reductions can be computed against them.
package baseline

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// Full is the PyG (+SAGE sampler) baseline: every timestamp it reruns
// inference over the whole (optionally sampled) graph.
type Full struct {
	Model *gnn.Model
	// Fanout > 0 enables the neighbor sampler with that per-layer fanout
	// (the paper uses 10).
	Fanout int
	// Seed drives the sampler.
	Seed int64
	C    *metrics.Counters
}

// Infer runs one timestamp: sample (if configured) then full inference.
func (f *Full) Infer(g *graph.Graph, x *tensor.Matrix) (*gnn.State, error) {
	target := g
	if f.Fanout > 0 {
		rng := rand.New(rand.NewSource(f.Seed))
		target = gnn.SampleNeighbors(rng, g, f.Fanout)
	}
	return gnn.Infer(f.Model, target, x, f.C)
}

// ErrOOM is returned by Fused when the estimated working set exceeds the
// configured memory limit, mirroring Graphiler's out-of-memory failures on
// large graphs and deep models.
var ErrOOM = errors.New("baseline: fused engine out of memory")

// Fused is the Graphiler stand-in: a single-allocation, fully parallel
// full-graph engine. It reuses two ping-pong buffers across layers instead
// of checkpointing, so it is the fastest method on graphs that fit — and
// the only one that can refuse to run.
type Fused struct {
	Model *gnn.Model
	// MemLimit caps the estimated working set in bytes; 0 means unlimited.
	MemLimit int64
	C        *metrics.Counters

	bufA, bufB *tensor.Matrix
}

// WorkingSetBytes estimates the engine's peak allocation for n nodes and m
// arcs: the two widest ping-pong buffers, the per-layer message buffer and
// the CSR snapshot.
func (f *Fused) WorkingSetBytes(n, m int) int64 {
	maxDim := f.Model.InDim()
	for _, l := range f.Model.Layers {
		if d := l.MsgDim(); d > maxDim {
			maxDim = d
		}
		if d := l.OutDim(); d > maxDim {
			maxDim = d
		}
	}
	// Graphiler materialises the whole message-passing dataflow graph, so
	// the estimate scales with depth and with the number of per-layer
	// tensor intermediates: two activation buffers and one message buffer
	// for every model, plus the extra transform intermediates of
	// self-dependent updates (GraphSAGE runs two weight matrices per
	// layer, GIN an MLP). CSR adds 8B row pointers + 4B columns.
	bufs := int64(3)
	for _, l := range f.Model.Layers {
		if l.SelfDependent() {
			bufs++ // own-message transform intermediate
			break
		}
	}
	if bufs > 3 && f.Model.Name == "GraphSAGE" {
		bufs++ // W1·α and W2·h are materialised separately
	}
	buffers := bufs * int64(n) * int64(maxDim) * 4 * int64(f.Model.NumLayers())
	csr := int64(8*(n+1)) + int64(4*m)
	return buffers + csr
}

// Infer runs one timestamp over the whole graph, returning only the final
// embeddings (no checkpoints). It returns ErrOOM when the working set
// exceeds MemLimit.
func (f *Fused) Infer(g *graph.Graph, x *tensor.Matrix) (*tensor.Matrix, error) {
	n := g.NumNodes()
	if ws := f.WorkingSetBytes(n, g.NumArcs()); f.MemLimit > 0 && ws > f.MemLimit {
		return nil, fmt.Errorf("%w: working set %s exceeds limit %s",
			ErrOOM, metrics.HumanBytes(ws), metrics.HumanBytes(f.MemLimit))
	}
	maxDim := f.Model.InDim()
	for _, l := range f.Model.Layers {
		if d := l.MsgDim(); d > maxDim {
			maxDim = d
		}
		if d := l.OutDim(); d > maxDim {
			maxDim = d
		}
	}
	if f.bufA == nil || f.bufA.Rows < n || f.bufA.Cols < maxDim {
		f.bufA = tensor.NewMatrix(n, maxDim)
		f.bufB = tensor.NewMatrix(n, maxDim)
	}
	csr := graph.FreezeIn(g)

	// h lives in bufA[:, :dim], messages in bufB; the update writes the
	// next h back into bufA.
	h := viewCols(f.bufA, n, f.Model.InDim())
	for u := 0; u < n; u++ {
		copy(h.Row(u), x.Row(u))
	}
	for li, layer := range f.Model.Layers {
		m := viewCols(f.bufB, n, layer.MsgDim())
		// Message phase as one blocked GEMM when the layer supports it; the
		// ping-pong buffers don't alias (h is bufA, m is bufB).
		if bl, ok := layer.(gnn.BatchedLayer); ok {
			bl.BatchComputeMessages(m, h)
			gnn.CountMessages(f.C, layer, n)
		} else {
			tensor.ParallelForGrain(n, layer.InDim()*layer.MsgDim(), func(lo, hi int) {
				for u := lo; u < hi; u++ {
					layer.ComputeMessage(m.Row(u), h.Row(u))
					gnn.CountMessage(f.C, layer)
				}
			})
		}
		hNext := viewCols(f.bufA, n, layer.OutDim())
		agg := layer.Agg()
		tensor.ParallelForGrain(n, 4*layer.MsgDim(), func(lo, hi int) {
			alpha := make(tensor.Vector, layer.MsgDim())
			for u := lo; u < hi; u++ {
				agg.Identity(alpha)
				nbrs := csr.Neighbors(graph.NodeID(u))
				for _, v := range nbrs {
					agg.Merge(alpha, m.Row(int(v)))
				}
				agg.Finalize(alpha, len(nbrs))
				f.C.FetchVec(layer.MsgDim() * len(nbrs))
				f.C.AddFLOPs(int64(layer.MsgDim() * len(nbrs)))
				// Fused: update immediately, no α materialisation; the own
				// message lives in the other ping-pong buffer, so no alias
				// with the destination row.
				layer.Update(hNext.Row(u), alpha, m.Row(u))
				gnn.CountUpdate(f.C, layer)
				f.C.VisitNode()
			}
		})
		if norm := f.Model.Norm(li); norm != nil {
			norm.Apply(hNext)
		}
		h = hNext
	}
	out := tensor.NewMatrix(n, f.Model.OutDim())
	for u := 0; u < n; u++ {
		copy(out.Row(u), h.Row(u))
	}
	return out, nil
}

// viewCols returns an n×cols matrix sharing storage with the left columns
// of buf. Rows are re-strided, so this only works because we always resize
// through viewCols with the same n.
func viewCols(buf *tensor.Matrix, n, cols int) *tensor.Matrix {
	return &tensor.Matrix{Rows: n, Cols: cols, Data: buf.Data[:n*cols]}
}
