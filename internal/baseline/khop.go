package baseline

import (
	"fmt"
	"time"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// KHop is the affected-area baseline built on the core idea of DyGNN
// (Sec. III-A): between timestamps it recomputes only the theoretical
// k-hop neighborhood of the changed edges, but — taking "the latest
// snapshot of graph structure as input without knowledge of previous
// timestamps" — it rebuilds those embeddings from the input features,
// fetching the in-neighborhood closure of the affected area at every
// layer (up to 2k-hop data in total).
type KHop struct {
	Model *gnn.Model
	C     *metrics.Counters
	// Obs, when set, records per-update latency and affected-area size
	// into the same histograms the InkStream engine feeds, so serving and
	// benchmark comparisons observe both methods like-for-like (nil
	// disables recording; baselines carry no per-layer trace).
	Obs *obs.Observer

	g   *graph.Graph
	x   *tensor.Matrix
	out *tensor.Matrix
	// scratch holds the per-layer recomputation buffers. Rows outside the
	// current closure hold stale data and are never read.
	scratch *gnn.State

	// LastAffected reports the size of the theoretical affected area of
	// the most recent Update, for the Fig. 1a experiment.
	LastAffected int
}

// NewKHop bootstraps the baseline with one (untimed) full inference.
func NewKHop(model *gnn.Model, g *graph.Graph, x *tensor.Matrix, c *metrics.Counters) (*KHop, error) {
	for l := range model.Layers {
		if n := model.Norm(l); n != nil && !n.IsFrozen {
			return nil, fmt.Errorf("baseline: k-hop requires frozen GraphNorm")
		}
	}
	s, err := gnn.Infer(model, g, x, nil)
	if err != nil {
		return nil, err
	}
	k := &KHop{Model: model, C: c, g: g, x: x, out: s.Output().Clone()}
	k.scratch = gnn.NewState(model, g.NumNodes())
	copy(k.scratch.H[0].Data, x.Data)
	return k, nil
}

// Graph exposes the maintained graph.
func (k *KHop) Graph() *graph.Graph { return k.g }

// Output returns the maintained final-layer embeddings.
func (k *KHop) Output() *tensor.Matrix { return k.out }

// Update applies ΔG and recomputes the affected area from scratch.
func (k *KHop) Update(delta graph.Delta) error {
	var t0 time.Time
	if k.Obs != nil {
		t0 = time.Now()
	}
	if err := delta.Validate(k.g); err != nil {
		return err
	}
	if err := delta.Apply(k.g); err != nil {
		return err
	}
	L := k.Model.NumLayers()
	seeds := delta.Touched(k.g.Undirected)
	aff := graph.KHopOut(k.g, seeds, L-1)
	k.LastAffected = aff.Size()
	sets := aff.ExpandIn(k.g, L)

	// Fetch input features for the outermost closure (sets[0]): the
	// paper's "neighbor loader" cost.
	for range sets[0] {
		k.C.FetchVec(k.Model.InDim())
	}

	// Recompute layer by layer. Layer l computes m_l for the closure
	// sets[l] and α_l / h_{l+1} for the next tighter set sets[l+1].
	for l, layer := range k.Model.Layers {
		gnn.ComputeMessages(layer, sets[l], k.scratch.H[l], k.scratch.M[l], k.C)
		if err := gnn.InferSubset(layer, k.Model.Norm(l), k.g, sets[l+1],
			k.scratch.M[l], k.scratch.Alpha[l], k.scratch.H[l+1], k.C); err != nil {
			return err
		}
	}
	// Publish the affected area's final embeddings.
	for _, u := range sets[L] {
		copy(k.out.Row(int(u)), k.scratch.H[L].Row(int(u)))
		k.C.StoreVec(k.Model.OutDim())
	}
	if k.Obs != nil {
		k.Obs.RecordLatency(time.Since(t0), len(delta), int64(k.LastAffected))
	}
	return nil
}
