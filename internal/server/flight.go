package server

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/obs"
)

// Flight-recorder wiring (DESIGN.md §10): every request travelling the
// single-writer pipeline gets a trace ID at submit and a cumulative
// timestamp at each stage it passes (journal group commit, coalesce pickup,
// engine apply, snapshot publish, ack). The per-stage marks cost a handful
// of time.Now calls per request; everything heavier — building the
// obs.ReqTrace, cloning the engine's per-layer trace, exemplar attachment —
// happens only for requests that end up *recorded*: sampled (1 in
// SampleEvery by ID), slower than the slow threshold, or failed.

// newReq builds a pipeline request, stamping its flight-recorder identity
// when request tracing is enabled.
func (s *Server) newReq(delta graph.Delta, vups []inkstream.VertexUpdate, op func() error) *updateReq {
	r := &updateReq{delta: delta, vups: vups, op: op, done: make(chan error, 1)}
	switch {
	case op != nil:
		r.kind = "op"
	case len(delta) == 0 && len(vups) > 0:
		r.kind = "features"
	default:
		r.kind = "update"
	}
	if f := s.flight; f != nil {
		r.id = f.NextID()
		r.start = time.Now()
		r.sampled = f.SampledID(r.id)
	}
	return r
}

// mark timestamps one pipeline stage for the request (no-op when tracing is
// disabled). Marks are cumulative offsets from submit; each is written by
// exactly one pipeline goroutine while it owns the request, and the channel
// handoffs between stages order the writes.
func (r *updateReq) mark(st obs.Stage) {
	if r.id != 0 {
		r.marks[st] = time.Since(r.start)
	}
}

// willRecord reports whether r would be recorded if it finished now — the
// criterion flushFused uses to decide whether the engine trace is worth
// cloning before the ack resolves the final latency.
func (s *Server) willRecord(r *updateReq) bool {
	if r.id == 0 {
		return false
	}
	return r.sampled || r.err != nil || s.flight.IsSlow(time.Since(r.start))
}

// attachEngineTrace clones the engine's per-layer trace of the apply that
// just covered r onto the request, and links the apply-latency histogram
// bucket it landed in to the request's trace ID (exemplar). Must run on the
// apply goroutine, before the next Engine.Apply invalidates the trace.
func (s *Server) attachEngineTrace(r *updateReq, eng **obs.Trace) {
	if !s.willRecord(r) {
		return
	}
	if *eng == nil {
		*eng = s.engine.Trace().Clone()
		s.obs.UpdateLatency.Exemplar((*eng).Total.Nanoseconds(), r.id)
	}
	r.eng = *eng
}

// finish is the single acknowledgement point of the pipeline: it stamps the
// ack mark, observes the submit→ack latency, records the request's flight
// trace when it qualifies (sampled, slow or failed), and only then delivers
// the outcome to the waiting caller. Every done-channel send in the
// pipeline goes through here.
func (s *Server) finish(r *updateReq, err error) {
	if f := s.flight; f != nil && r.id != 0 {
		total := time.Since(r.start)
		r.marks[obs.StageAck] = total
		s.ackLat.Observe(total.Nanoseconds())
		slow := f.IsSlow(total)
		if r.sampled || slow || err != nil {
			s.ackLat.Exemplar(total.Nanoseconds(), r.id)
			t := &obs.ReqTrace{
				ID:      r.id,
				Kind:    r.kind,
				Start:   r.start,
				Edges:   len(r.delta),
				VUps:    len(r.vups),
				Fused:   r.fused,
				Marks:   r.marks,
				Total:   total,
				Sampled: r.sampled,
				Slow:    slow,
				Engine:  r.eng,
			}
			if err != nil {
				t.Err = err.Error()
			}
			// Annotate the trace with any GC stop-the-world pause that
			// overlapped its submit→ack window — the exemplar in a fat
			// ack-latency bucket then explains itself.
			t.GCPause = s.runtime.GCPauseOverlap(r.start, r.start.Add(total))
			f.Record(t)
		}
	}
	r.done <- err
}

// SetTraceSampling reconfigures the flight recorder before serving: ring is
// the number of retained traces, every the sampling divisor (record 1 in
// `every` requests by ID; 0 records only slow/failed requests). ring 0
// disables request tracing entirely — no IDs, no stage timestamps — the
// off-path the observability overhead gate benchmarks against.
func (s *Server) SetTraceSampling(ring, every int) {
	if ring <= 0 {
		s.flight = nil
		return
	}
	f := obs.NewFlightRecorder(ring, every)
	if s.flight != nil {
		f.SetSlowThreshold(s.flight.SlowThreshold())
	}
	s.flight = f
}

// SetSlowTraceThreshold marks requests at or above d as slow: always
// recorded, engine trace attached. Safe at any time; no-op when tracing is
// disabled.
func (s *Server) SetSlowTraceThreshold(d time.Duration) {
	if s.flight != nil {
		s.flight.SetSlowThreshold(d)
	}
}

// FlightRecorder exposes the recorder (nil when tracing is disabled).
func (s *Server) FlightRecorder() *obs.FlightRecorder { return s.flight }

// Sampler exposes the in-process time-series sampler; tests drive its Tick
// deterministically instead of waiting out the 1s background cadence.
func (s *Server) Sampler() *obs.Sampler { return s.sampler }

// Runtime exposes the runtime telemetry collector (always non-nil); the
// overhead benchmarks toggle it with SetEnabled.
func (s *Server) Runtime() *obs.Runtime { return s.runtime }

// TracesResponse is the body of GET /v1/traces.
type TracesResponse struct {
	// SampleEvery is the sampling divisor (0 = only slow/failed requests);
	// SlowThresholdMS the slow criterion (0 = disabled); Recorded the total
	// number of traces recorded since start (the ring keeps the newest).
	SampleEvery     int     `json:"sample_every"`
	SlowThresholdMS float64 `json:"slow_threshold_ms,omitempty"`
	Recorded        int64   `json:"recorded"`
	// Traces are the retained request traces, newest first.
	Traces []*obs.ReqTrace `json:"traces"`
}

// handleTraces serves the flight-recorder ring, newest first. Query
// parameters: n caps the number of traces returned; min_us drops traces
// faster than the given total latency (in microseconds) — "show me the slow
// ones".
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	f := s.flight
	if f == nil {
		httpError(w, http.StatusNotImplemented, "request tracing disabled")
		return
	}
	traces := f.Traces()
	if v := r.URL.Query().Get("min_us"); v != "" {
		minUS, err := strconv.ParseFloat(v, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad min_us %q", v)
			return
		}
		kept := traces[:0]
		for _, t := range traces {
			if float64(t.Total.Nanoseconds())/1e3 >= minUS {
				kept = append(kept, t)
			}
		}
		traces = kept
	}
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad n %q", v)
			return
		}
		if n < len(traces) {
			traces = traces[:n]
		}
	}
	if traces == nil {
		traces = []*obs.ReqTrace{}
	}
	writeJSON(w, TracesResponse{
		SampleEvery:     f.SampleEvery(),
		SlowThresholdMS: float64(f.SlowThreshold()) / 1e6,
		Recorded:        f.Recorded(),
		Traces:          traces,
	})
}

// handleTimeseries serves the in-process time-series window (oldest sample
// first) — the last ~10 minutes of serving behaviour without a scraping
// stack.
func (s *Server) handleTimeseries(w http.ResponseWriter, _ *http.Request) {
	if s.sampler == nil {
		httpError(w, http.StatusNotImplemented, "time-series sampling disabled")
		return
	}
	writeJSON(w, s.sampler.Snapshot())
}

// buildTimeseries registers the serving series the sampler tracks. Counters
// render as per-second rates, latency quantiles are windowed per tick; every
// source reads atomics or the published snapshot, so a tick never touches
// mutable engine state.
func (s *Server) buildTimeseries() {
	ts := s.sampler
	ts.Counter("upd_per_s", func() float64 { return float64(s.obs.Updates()) })
	ts.Counter("reads_per_s", func() float64 { return float64(s.reads.Load()) })
	ts.Counter("events_per_s", func() float64 { return float64(s.obs.Events.Sum()) })
	ts.HistQuantile("ack_p99_ms", s.ackLat, 0.99, 1e-6)
	ts.HistQuantile("apply_p99_ms", s.obs.UpdateLatency, 0.99, 1e-6)
	ts.Gauge("epoch", func() float64 { return float64(s.engine.Snapshot().Epoch) })
	ts.Gauge("lag_batches", func() float64 {
		p := s.processed.Load()
		a := s.accepted.Load()
		if a < p {
			return 0
		}
		return float64(a - p)
	})
	ts.Gauge("drift_max_abs", s.lastDrift)
	// Runtime telemetry series (heap_mb, goroutines, gc_cpu_pct,
	// gc_pause_ms, sched_p99_ms); the first one runs the tick's Collect.
	s.runtime.Install(ts)
}
