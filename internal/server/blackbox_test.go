package server

import (
	"archive/tar"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/leakcheck"
	"repro/internal/obs"
)

// TestBlackBoxIncidentBundle is the acceptance path: an SLO breach drives
// an alert to firing, the firing transition auto-captures a bundle, the
// server is closed mid-incident (Close drains the capture queue), and the
// bundle on disk loads back with the right trigger, traces and runtime
// series — the killed-run post-mortem contract.
func TestBlackBoxIncidentBundle(t *testing.T) {
	leakcheck.Check(t)
	srv, eng := newObsServer(t)
	srv.SetTraceSampling(64, 1)
	dir := t.TempDir()
	srv.EnableBlackBox(obs.BlackBoxConfig{Dir: dir, Debounce: -1})

	srv.SetHealthSLO(time.Nanosecond)
	edges := absentEdges(t, eng.Graph(), 4)
	for _, e := range edges {
		if err := srv.Apply(graph.Delta{{U: e.U, V: e.V, Insert: true}}, nil); err != nil {
			t.Fatal(err)
		}
		srv.Sampler().Tick()
	}
	if len(srv.Alerts().Firing()) == 0 {
		t.Fatal("no alert firing after sustained SLO breaches")
	}
	// Kill the run mid-incident: Close must drain the queued capture.
	srv.Close()

	d, err := obs.LoadDump(dir)
	if err != nil {
		t.Fatalf("no loadable bundle after incident+close: %v", err)
	}
	if !strings.HasPrefix(d.Manifest.Trigger, "alert-") {
		t.Errorf("trigger %q, want alert-*", d.Manifest.Trigger)
	}
	if !strings.Contains(d.Manifest.Reason, "firing") {
		t.Errorf("reason %q does not explain the firing", d.Manifest.Reason)
	}
	if len(d.Traces) == 0 {
		t.Error("bundle has no traces")
	}
	if d.Runtime == nil || d.Runtime.HeapInuseBytes == 0 {
		t.Errorf("bundle runtime section: %+v", d.Runtime)
	}
	if d.Alerts == nil || d.Alerts.Firing == 0 {
		t.Errorf("bundle alerts section: %+v", d.Alerts)
	}
	for _, series := range []string{"ack_p99_ms", "heap_mb", "goroutines"} {
		if len(d.Series(series)) == 0 {
			t.Errorf("bundle missing %s series", series)
		}
	}
	if !strings.Contains(string(d.Config), `"single-engine"`) {
		t.Errorf("bundle config: %s", d.Config)
	}
}

// TestBundleEndpoint: /debug/bundle is 501 until EnableBlackBox, then
// serves a well-formed tar.gz without writing to the dump directory.
func TestBundleEndpoint(t *testing.T) {
	leakcheck.Check(t)
	srv, _ := newObsServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("disabled bundle status %d, want 501", resp.StatusCode)
	}

	srv.EnableBlackBox(obs.BlackBoxConfig{Dir: t.TempDir(), Debounce: -1})
	resp2, err := http.Get(ts.URL + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("bundle status %d", resp2.StatusCode)
	}
	if ct := resp2.Header.Get("Content-Type"); ct != "application/gzip" {
		t.Errorf("content type %q", ct)
	}
	gz, err := gzip.NewReader(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, hdr.Name)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"MANIFEST.json", "runtime.json", "timeseries.json"} {
		if !strings.Contains(joined, want) {
			t.Errorf("tar missing %s: %v", want, names)
		}
	}
}

// TestPageFaultTraceExemplars: a faulting tiered read attaches its trace ID
// to the page-fault latency histogram and records a "read" trace, so a fat
// fault bucket resolves to a concrete read at /v1/traces.
func TestPageFaultTraceExemplars(t *testing.T) {
	leakcheck.Check(t)
	ts, s, _ := newTieredServer(t)
	s.SetTraceSampling(128, 1)

	// The store's background worker (20ms tick) must write back the
	// bootstrap generations and sweep the resident set down to the 8-page
	// cap before any read can fault.
	deadline := time.Now().Add(5 * time.Second)
	for s.pageStats().Evictions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("store never evicted under an 8-page cap")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Sweep all nodes: most pages are cold now, so reads fault.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 200; i++ {
			if _, _, ok := s.ReadEmbedding(i); !ok {
				t.Fatalf("read %d failed", i)
			}
		}
	}
	if s.pageStats().Misses == 0 {
		t.Fatal("no faults under an 8-page cap; the test premise broke")
	}

	var readTraces []*obs.ReqTrace
	for _, tr := range s.FlightRecorder().Traces() {
		if tr.Kind == "read" {
			readTraces = append(readTraces, tr)
		}
	}
	if len(readTraces) == 0 {
		t.Fatal("no read-kind traces recorded for faulting reads")
	}
	ids := map[string]bool{}
	for _, tr := range readTraces {
		ids[obs.TraceIDString(tr.ID)] = true
	}

	// The histogram's exemplar must join a recorded read trace.
	samples := scrape(t, ts.URL)
	var exemplars int
	for _, sm := range samples.Family("inkstream_page_fault_latency_seconds_bucket") {
		if sm.Exemplar == nil {
			continue
		}
		exemplars++
		if !ids[sm.Exemplar.TraceID()] {
			t.Errorf("fault exemplar %s joins no recorded read trace", sm.Exemplar.TraceID())
		}
	}
	if exemplars == 0 {
		t.Error("page-fault histogram carries no exemplars")
	}
}
