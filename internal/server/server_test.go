package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/leakcheck"
	"repro/internal/metrics"
	"repro/internal/scheduler"
)

func newTestServer(t *testing.T) (*httptest.Server, *inkstream.Engine) {
	t.Helper()
	leakcheck.Check(t)
	rng := rand.New(rand.NewSource(1))
	g := dataset.GenerateRMAT(rng, 200, 800, dataset.DefaultRMAT)
	feats := dataset.NewFeatures(rng, 200, 8)
	model := gnn.NewGCN(rng, 8, 16, gnn.NewAggregator(gnn.AggMax))
	var c metrics.Counters
	eng, err := inkstream.New(model, g, feats.X, &c, inkstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, &c)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, eng
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestUpdateFlow(t *testing.T) {
	ts, eng := newTestServer(t)
	// Find an absent edge to insert.
	var u, v graph.NodeID
	for u, v = 0, 1; eng.Graph().HasEdge(u, v); v++ {
	}
	resp := postJSON(t, ts.URL+"/v1/update", UpdateRequest{
		Changes: []EdgeChangeJSON{{U: int32(u), V: int32(v), Insert: true}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decode[UpdateResponse](t, resp)
	if out.Applied != 1 || out.LatencyMS < 0 {
		t.Errorf("response %+v", out)
	}
	if !eng.Graph().HasEdge(u, v) {
		t.Error("edge not applied to engine")
	}
}

func TestUpdateRejectsBadBatch(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name string
		body any
		want int
	}{
		{"empty", UpdateRequest{}, http.StatusBadRequest},
		{"self-loop", UpdateRequest{Changes: []EdgeChangeJSON{{U: 3, V: 3, Insert: true}}}, http.StatusUnprocessableEntity},
		{"bad-node", UpdateRequest{Changes: []EdgeChangeJSON{{U: 3, V: 9999, Insert: true}}}, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+"/v1/update", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/update", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
}

func TestFeaturesFlow(t *testing.T) {
	ts, eng := newTestServer(t)
	x := make([]float32, 8)
	x[0] = 42
	resp := postJSON(t, ts.URL+"/v1/features", FeaturesRequest{
		Updates: []FeatureUpdateJSON{{Node: 5, X: x}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if eng.State().H[0].At(5, 0) != 42 {
		t.Error("feature not applied")
	}
	// Wrong dimension rejected.
	resp = postJSON(t, ts.URL+"/v1/features", FeaturesRequest{
		Updates: []FeatureUpdateJSON{{Node: 5, X: []float32{1}}},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad dim: status %d", resp.StatusCode)
	}
	// Empty batch rejected.
	resp = postJSON(t, ts.URL+"/v1/features", FeaturesRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty: status %d", resp.StatusCode)
	}
}

func TestEmbeddingFlow(t *testing.T) {
	ts, eng := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/embedding?node=7")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decode[EmbeddingResponse](t, resp)
	if out.Node != 7 || len(out.Embedding) != eng.Model().OutDim() {
		t.Errorf("response node=%d dim=%d", out.Node, len(out.Embedding))
	}
	// Reads resolve against the bootstrap snapshot until an update lands.
	if out.Epoch != 1 {
		t.Errorf("embedding epoch = %d, want 1", out.Epoch)
	}
	for _, bad := range []string{"node=99999", "node=-1", "node=abc", ""} {
		resp, err := http.Get(ts.URL + "/v1/embedding?" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("query %q accepted", bad)
		}
	}
}

func TestStatsFlow(t *testing.T) {
	ts, eng := newTestServer(t)
	// Drive one update so stats are non-trivial.
	rng := rand.New(rand.NewSource(9))
	delta := graph.RandomDelta(rng, eng.Graph(), 4)
	changes := make([]EdgeChangeJSON, len(delta))
	for i, c := range delta {
		changes[i] = EdgeChangeJSON{U: c.U, V: c.V, Insert: c.Insert}
	}
	if resp := postJSON(t, ts.URL+"/v1/update", UpdateRequest{Changes: changes}); resp.StatusCode != http.StatusOK {
		t.Fatalf("update failed: %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := decode[StatsResponse](t, resp)
	if out.Nodes != 200 || out.UpdatesServed != 1 {
		t.Errorf("stats %+v", out)
	}
	if len(out.Conditions) == 0 || out.Events == 0 {
		t.Errorf("stats missing engine activity: %+v", out)
	}
}

func TestSubmitWithoutBatching(t *testing.T) {
	ts, _ := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/submit", EdgeChangeJSON{U: 1, V: 2, Insert: true})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("status %d", resp.StatusCode)
	}
}

func TestSubmitBatchingFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := dataset.GenerateRMAT(rng, 100, 400, dataset.DefaultRMAT)
	feats := dataset.NewFeatures(rng, 100, 8)
	model := gnn.NewGCN(rng, 8, 16, gnn.NewAggregator(gnn.AggMax))
	eng, err := inkstream.New(model, g, feats.X, nil, inkstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, nil)
	defer srv.Close()
	if err := srv.EnableBatching(scheduler.Policy{MaxBatch: 3}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	flushes := 0
	submitted := 0
	for i := 0; submitted < 7; i++ {
		u := graph.NodeID(rng.Intn(100))
		v := graph.NodeID(rng.Intn(100))
		if u == v || eng.Graph().HasEdge(u, v) {
			continue
		}
		resp := postJSON(t, ts.URL+"/v1/submit", EdgeChangeJSON{U: int32(u), V: int32(v), Insert: true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		out := decode[SubmitResponse](t, resp)
		if out.Flushed {
			flushes++
		}
		submitted++
	}
	if flushes != 2 {
		t.Errorf("flushes = %d, want 2 (batch size 3, 7 submits)", flushes)
	}
	if err := srv.Tick(); err != nil {
		t.Fatal(err)
	}
	// Engine state must stay consistent after the flushed batches.
	if err := eng.Verify(0); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyEndpoint(t *testing.T) {
	ts, eng := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy engine: verify status %d", resp.StatusCode)
	}
	// Corrupt the state; verify must now fail.
	eng.State().Alpha[0].Set(0, 0, 1e9)
	resp, err = http.Post(ts.URL+"/v1/verify", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupted engine: verify status %d", resp.StatusCode)
	}
}

// End-to-end: a stream of updates through the HTTP API leaves the engine
// equivalent to full recomputation.
func TestEndToEndEquivalence(t *testing.T) {
	ts, eng := newTestServer(t)
	rng := rand.New(rand.NewSource(11))
	for batch := 0; batch < 3; batch++ {
		delta := graph.RandomDelta(rng, eng.Graph(), 6)
		changes := make([]EdgeChangeJSON, len(delta))
		for i, c := range delta {
			changes[i] = EdgeChangeJSON{U: c.U, V: c.V, Insert: c.Insert}
		}
		if resp := postJSON(t, ts.URL+"/v1/update", UpdateRequest{Changes: changes}); resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: status %d", batch, resp.StatusCode)
		}
	}
	want, err := gnn.Infer(eng.Model(), eng.Graph(), eng.State().H[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.State().Equal(want) {
		t.Error("engine state diverged after HTTP updates")
	}
	// And the served embedding matches the state.
	resp, err := http.Get(fmt.Sprintf("%s/v1/embedding?node=%d", ts.URL, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := decode[EmbeddingResponse](t, resp)
	wantRow := eng.Output().Row(3)
	for i := range wantRow {
		if out.Embedding[i] != wantRow[i] {
			t.Fatalf("served embedding differs at channel %d", i)
		}
	}
}
