package server

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// ErrServerClosed is returned for mutations submitted after (or racing
// with) Close.
var ErrServerClosed = errors.New("server: closed")

// maxGroup bounds how many queued requests one group commit may cover:
// large enough to amortise the fsync under load, small enough to bound
// the latency any single request waits behind the group.
const maxGroup = 128

// updateReq is one unit of work travelling the single-writer pipeline.
// Exactly one of (delta/vups) or op is used: ordinary mutations carry the
// batch and are journaled, while op requests (e.g. /v1/verify) run
// exclusively on the apply stage without touching the journal.
type updateReq struct {
	delta graph.Delta
	vups  []inkstream.VertexUpdate
	op    func() error
	err   error
	done  chan error

	// Flight-recorder state (flight.go): id 0 means tracing is disabled for
	// this request. Marks are cumulative offsets from start, each written by
	// the one pipeline goroutine owning the request at that stage.
	id      uint64
	start   time.Time
	kind    string
	sampled bool
	fused   int
	marks   [obs.StageCount]time.Duration
	eng     *obs.Trace
}

// Apply submits one update batch into the single-writer pipeline and waits
// until it is durable (when a journal is configured) and applied, with the
// resulting snapshot published. It is the programmatic equivalent of
// POST /v1/update + /v1/features and is safe for any number of concurrent
// callers.
func (s *Server) Apply(delta graph.Delta, vups []inkstream.VertexUpdate) error {
	return s.do(delta, vups, nil)
}

// ApplyAsync submits one update batch into the pipeline without waiting
// for the outcome: the returned channel delivers the single acknowledgement
// (nil on success) once the batch is durable, applied, and covered by a
// published snapshot. It is how a pipelined client keeps several updates in
// flight from one goroutine — the queued-behind-the-in-flight-update regime
// that server-side coalescing fuses. If the server closes before a request
// reaches the apply stage its channel may never receive, so callers that do
// not control the server's lifetime should select against their own
// shutdown signal rather than wait unconditionally.
func (s *Server) ApplyAsync(delta graph.Delta, vups []inkstream.VertexUpdate) (<-chan error, error) {
	r := s.newReq(delta, vups, nil)
	select {
	case <-s.quit:
		return nil, ErrServerClosed
	case s.submitCh <- r:
	}
	s.accepted.Add(1)
	return r.done, nil
}

// do enqueues a request and waits for its outcome.
func (s *Server) do(delta graph.Delta, vups []inkstream.VertexUpdate, op func() error) error {
	r := s.newReq(delta, vups, op)
	select {
	case <-s.quit:
		return ErrServerClosed
	case s.submitCh <- r:
	}
	if op == nil {
		s.accepted.Add(1)
	}
	select {
	case err := <-r.done:
		return err
	case <-s.quit:
		// Shutdown raced the request; it may or may not have been applied.
		return ErrServerClosed
	}
}

// ReadEmbedding resolves one node against the currently published
// snapshot with zero locking. The returned row is immutable (shared with
// the snapshot) and valid indefinitely; epoch is the staleness bound the
// caller may report. ok is false when the node is out of the snapshot's
// range.
func (s *Server) ReadEmbedding(node int) (row tensor.Vector, epoch uint64, ok bool) {
	snap := s.engine.Snapshot()
	s.reads.Add(1)
	if node < 0 || node >= snap.NumNodes() {
		return nil, snap.Epoch, false
	}
	if s.pageStats != nil && s.flight != nil {
		row = s.readTieredRow(snap, node)
	} else {
		row = snap.Row(node)
	}
	if row == nil {
		// Tiered mode only: the row could not be faulted back in (e.g. the
		// spill file is gone). Treated as unavailable, never served torn.
		return nil, snap.Epoch, false
	}
	return row, snap.Epoch, true
}

// readTieredRow reads one row from a tiered snapshot under the flight
// recorder: a read whose page faulted in from the spill file gets a trace
// ID, an exemplar in the page-fault latency histogram, and (when sampled or
// slow) a "read"-kind entry in /v1/traces — so a fat fault bucket resolves
// to a concrete read the same way ack latency resolves to an update.
// Attribution is by miss-count delta around the row fetch, so under
// concurrent faulting reads a trace may adopt a neighbour's fault; the
// linkage is a debugging breadcrumb, not an accounting invariant.
func (s *Server) readTieredRow(snap *inkstream.Snapshot, node int) tensor.Vector {
	f := s.flight
	missesBefore := s.pageStats().Misses
	t0 := time.Now()
	row := snap.Row(node)
	if s.pageStats().Misses == missesBefore {
		return row // served resident: stay off the trace machinery
	}
	d := time.Since(t0)
	id := f.NextID()
	s.pageFaultLat.Exemplar(d.Nanoseconds(), id)
	sampled, slow := f.SampledID(id), f.IsSlow(d)
	if sampled || slow || row == nil {
		t := &obs.ReqTrace{
			ID:      id,
			Kind:    "read",
			Start:   t0,
			Total:   d,
			Sampled: sampled,
			Slow:    slow,
		}
		t.Marks[obs.StageAck] = d
		if row == nil {
			t.Err = "tiered row unavailable (page fault failed)"
		}
		t.GCPause = s.runtime.GCPauseOverlap(t0, t0.Add(d))
		f.Record(t)
	}
	return row
}

// Snapshot returns the currently published embedding snapshot. Safe from
// any goroutine.
func (s *Server) Snapshot() *inkstream.Snapshot { return s.engine.Snapshot() }

// Close stops the pipeline and waits for both stages to exit. Requests
// still in flight are failed with ErrServerClosed rather than drained;
// anything already journaled remains durable and is recovered by WAL
// replay. Reads keep working against the last published snapshot.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.quit)
		if s.audit.done != nil {
			<-s.audit.done
		}
		if s.sampler != nil {
			s.sampler.Stop()
		}
		// Drain queued incident captures before exit, so an alert or audit
		// failure immediately followed by shutdown still leaves its bundle.
		s.blackbox.Close()
	})
	s.wg.Wait()
}

// start launches the two pipeline stages. Called once from New, after
// every configuration field exists; SetJournal/EnableBatching remain
// "call before serving" because the stages read those fields unlocked.
func (s *Server) start() {
	s.wg.Add(2)
	go s.journalLoop()
	go s.applyLoop()
}

// journalLoop is stage 1 of the writer pipeline: it drains every request
// queued behind the first one into a group (bounded by maxGroup), makes
// the whole group durable under a single fsync (group commit), and hands
// it to the apply stage. Because applyCh is buffered, the next group's
// encode/append/fsync overlaps the engine compute of the previous one.
func (s *Server) journalLoop() {
	defer s.wg.Done()
	defer close(s.applyCh)
	for {
		var first *updateReq
		select {
		case first = <-s.submitCh:
		case <-s.quit:
			return
		}
		group := append(make([]*updateReq, 0, 8), first)
	drain:
		for len(group) < maxGroup {
			select {
			case r := <-s.submitCh:
				group = append(group, r)
			default:
				break drain
			}
		}
		group = s.journalGroup(group)
		if len(group) == 0 {
			continue
		}
		select {
		case s.applyCh <- group:
		case <-s.quit:
			for _, r := range group {
				s.finish(r, ErrServerClosed)
			}
			return
		}
	}
}

// journalGroup writes every journalable request of the group into the
// journal and commits once. On a journal error the whole group's
// mutations are failed and removed (the engine never sees them): a
// response only ever reports success when the batch is durable. op
// requests pass through untouched. Returns the surviving group.
func (s *Server) journalGroup(group []*updateReq) []*updateReq {
	if s.journal == nil {
		return group
	}
	bj, batched := s.journal.(BatchJournal)
	var jerr error
	journaled := 0
	for _, r := range group {
		if r.op != nil || jerr != nil {
			continue
		}
		if batched {
			jerr = bj.AppendBuffered(r.delta, r.vups)
		} else {
			jerr = s.journal.Append(r.delta, r.vups)
		}
		if jerr == nil {
			journaled++
		}
	}
	if jerr == nil && batched && journaled > 0 {
		jerr = bj.Commit()
	}
	if journaled > 0 && jerr == nil {
		s.gcSize.Observe(int64(journaled))
	}
	if jerr == nil {
		// The group commit covering each journaled request just returned:
		// its durability point.
		for _, r := range group {
			if r.op == nil {
				r.mark(obs.StageJournal)
			}
		}
		return group
	}
	out := group[:0]
	for _, r := range group {
		if r.op != nil {
			out = append(out, r)
			continue
		}
		s.processed.Add(1)
		s.finish(r, fmt.Errorf("journal: %w", jerr))
	}
	return out
}

// applyLoop is stage 2: the only goroutine that ever mutates the engine.
// With coalescing on (the default) it merges each group's compatible
// mutations into fused Engine.Apply calls (coalesce.go), amortising the
// engine's fixed per-batch costs across everything that queued behind the
// in-flight update; with coalescing off it applies each request on its
// own. Either way a snapshot covering a request is published before that
// request is acknowledged — so a successful response implies the served
// snapshot already reflects the update (read-your-writes: the paper's
// "instantaneous" availability).
func (s *Server) applyLoop() {
	defer s.wg.Done()
	f := newFused()
	for group := range s.applyCh {
		if !s.coalesce.Load() {
			s.applySingly(group)
			continue
		}
		s.coalesceGroup(group, f)
		// Drain every group already journaled behind this one into the
		// open batch before flushing. The absorb never waits — it only
		// takes what the journal stage has finished — so it widens the
		// fusion window exactly when requests are queueing faster than
		// the engine applies them, and adds nothing to latency when the
		// pipeline is idle. coalesceGroup's maxGroup bound still flushes
		// oversized batches mid-absorb.
	absorb:
		for {
			select {
			case more, ok := <-s.applyCh:
				if !ok {
					s.flushFused(f)
					return
				}
				if !s.coalesce.Load() {
					s.flushFused(f)
					s.applySingly(more)
					break absorb
				}
				s.coalesceGroup(more, f)
			default:
				break absorb
			}
		}
		s.flushFused(f)
	}
}
