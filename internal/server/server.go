// Package server exposes an InkStream engine as an HTTP service: a
// long-running inference daemon that accepts streaming edge and
// vertex-feature updates and serves always-fresh embeddings — the
// "real-time inference in dynamic settings" deployment the paper targets.
//
// Endpoints:
//
//	POST /v1/update     {"changes":[{"u":1,"v":2,"insert":true}, …]}
//	POST /v1/features   {"updates":[{"node":1,"x":[…]}, …]}
//	GET  /v1/embedding?node=N
//	GET  /v1/stats
//	GET  /v1/healthz    (also /healthz; degraded detection, uptime, epoch)
//	GET  /v1/traces     (flight recorder: last N request-scoped pipeline traces)
//	GET  /v1/timeseries (in-process time-series window, ~1s × 10min)
//	GET  /metrics       (Prometheus text exposition, with trace-ID exemplars)
//
// Concurrency model (DESIGN.md §8): reads never block on writes. All
// mutations funnel into a single-writer pipeline — requests enqueue onto a
// channel drained by a journal stage (which makes a whole group of queued
// batches durable under one fsync, "group commit") feeding an apply stage
// (the only goroutine that mutates the engine). The apply stage coalesces
// by default (DESIGN.md §9): compatible mutations queued behind the
// in-flight one merge into a single fused Engine.Apply, and a conflicting
// request (same edge or same node as the open batch) flushes the batch
// first, so per-request ack/error semantics are preserved. After each
// applied batch the engine publishes an immutable, epoch-stamped embedding
// snapshot via an atomic pointer; every read handler resolves against the
// current snapshot with zero locking and reports the snapshot epoch it
// observed. A successful mutation response implies the batch is durable,
// applied, and visible in the published snapshot (read-your-writes).
//
// Observability: every server owns an obs.Observer shared with its engine
// (per-update latency/size histograms, slow-update traces) and an
// obs.Registry exposing them — plus the work counters, per-condition visit
// totals, scheduler queue state, WAL commit latency, snapshot epoch/lag
// and group-commit batch sizes — at GET /metrics.
package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/scheduler"
	"repro/internal/tensor"
)

// Server wraps an engine with HTTP handlers and the single-writer update
// pipeline. The engine is owned by the apply stage after New returns;
// nothing else may mutate it.
type Server struct {
	engine   *inkstream.Engine
	counters *metrics.Counters
	journal  Journal

	// Pipeline plumbing (pipeline.go).
	submitCh  chan *updateReq
	applyCh   chan []*updateReq
	quit      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	updates   atomic.Int64  // successful mutation requests
	reads     atomic.Int64  // embedding reads resolved against a snapshot
	accepted  atomic.Uint64 // mutation batches accepted into the pipeline
	processed atomic.Uint64 // mutation batches reflected in (or rejected
	// before) the published snapshot; accepted-processed is the lag

	// Server-side coalescing state (coalesce.go): the switch, the graph's
	// directedness captured for edge canonicalisation, and the counters.
	coalesce    atomic.Bool
	undirected  bool
	coStalls    atomic.Int64 // fused batches flushed early by a conflict
	coFallbacks atomic.Int64 // fused applies replayed per-request

	// mu guards only the batching scheduler; the read path never takes it.
	mu      sync.Mutex
	batcher *scheduler.Scheduler

	obs    *obs.Observer
	reg    *obs.Registry
	walLat *obs.Histogram
	gcSize *obs.Histogram
	coSize *obs.Histogram

	// Flight recorder (flight.go): request-scoped pipeline traces, the
	// submit→ack latency histogram they exemplify, and the in-process
	// time-series sampler behind /v1/timeseries.
	flight  *obs.FlightRecorder
	ackLat  *obs.Histogram
	sampler *obs.Sampler
	alerts  *obs.AlertEngine
	started time.Time
	sloNS   atomic.Int64 // healthz ack-p99 SLO in ns (0 = disabled)

	// Runtime telemetry plane and incident black box (blackbox.go); the
	// runtime collector always exists, the black box only after
	// EnableBlackBox.
	runtime  *obs.Runtime
	blackbox *obs.BlackBox

	// Drift auditor (audit.go).
	audit      *auditState
	driftHists []obs.LabeledHistogram

	// Tiered row store observability (pagecache.go); nil in the default
	// resident configuration.
	pageStats    func() obs.PageCacheStats
	pageFaultLat *obs.Histogram
	pageQuant    string
}

// Journal records every applied batch before it reaches the engine
// (write-ahead logging); persist.WAL implements it. A journal failure
// fails the update before the engine sees it, so a successful response
// implies the batch is durable.
type Journal interface {
	Append(delta graph.Delta, vups []inkstream.VertexUpdate) error
}

// BatchJournal is the group-commit extension of Journal (implemented by
// persist.WAL): AppendBuffered stages records without durability and one
// Commit fsyncs them all. When the configured journal supports it, the
// pipeline's journal stage covers every request queued behind an fsync
// with that single fsync.
type BatchJournal interface {
	Journal
	AppendBuffered(delta graph.Delta, vups []inkstream.VertexUpdate) error
	Commit() error
}

// New wraps an engine; counters may be the same instance the engine
// records into (or nil). The server reuses the engine's observer when one
// was installed at construction (so CLI-configured tracing keeps working)
// and otherwise installs a fresh one, builds the /metrics registry,
// publishes the initial embedding snapshot (epoch 1), and starts the
// writer pipeline. Call Close to stop it.
//
// Configuration methods (SetJournal, EnableBatching, EnableSlowUpdateLog)
// must be called before the first request is served.
func New(engine *inkstream.Engine, counters *metrics.Counters) *Server {
	s := &Server{engine: engine, counters: counters}
	s.obs = engine.Observer()
	if s.obs == nil {
		s.obs = obs.NewObserver()
		engine.SetObserver(s.obs)
	}
	s.walLat = obs.NewLatencyHistogram()
	s.gcSize = obs.NewSizeHistogram()
	s.coSize = obs.NewSizeHistogram()
	s.undirected = engine.Graph().Undirected
	s.coalesce.Store(true)
	s.started = time.Now()
	// Flight recorder defaults: last 256 interesting requests, 1 in 64
	// sampled. Reconfigure with SetTraceSampling before serving.
	s.flight = obs.NewFlightRecorder(256, 64)
	s.ackLat = obs.NewLatencyHistogram()
	s.ackLat.EnableExemplars()
	s.obs.UpdateLatency.EnableExemplars()
	s.audit = newAuditState()
	s.driftHists = driftHistograms(engine.Model())
	// In-process time-series: 1s resolution, 10-minute window. The alert
	// engine evaluates its burn-rate rules on every tick (alerts are
	// installed by SetHealthSLO).
	s.sampler = obs.NewSampler(time.Second, 600)
	s.alerts = obs.NewAlertEngine(s.sampler)
	s.runtime = obs.NewRuntime()
	s.reg = obs.NewRegistry()
	s.buildRegistry()
	// Epoch 1 reflects the bootstrapped state, so readers always have a
	// snapshot to resolve against.
	engine.PublishSnapshot()
	s.submitCh = make(chan *updateReq, 4*maxGroup)
	s.applyCh = make(chan []*updateReq, 1)
	s.quit = make(chan struct{})
	s.buildTimeseries()
	s.sampler.Start()
	s.start()
	return s
}

// Observer exposes the server's observer for CLI wiring (slow-update
// thresholds, trace emission).
func (s *Server) Observer() *obs.Observer { return s.obs }

// Registry exposes the metric registry, e.g. to register process-level
// extras before serving.
func (s *Server) Registry() *obs.Registry { return s.reg }

// EnableSlowUpdateLog logs a full per-layer trace for every update slower
// than threshold (and for every update when traceAll is set). logger nil
// means the standard logger. Call before serving.
func (s *Server) EnableSlowUpdateLog(threshold time.Duration, traceAll bool, logger *log.Logger) {
	if logger == nil {
		logger = log.Default()
	}
	s.obs.SlowThreshold = threshold
	s.obs.TraceAll = traceAll
	s.SetSlowTraceThreshold(threshold)
	s.obs.OnTrace = func(t *obs.Trace) {
		if threshold > 0 && t.Total >= threshold {
			logger.Printf("slow update (>= %v): %s", threshold, t)
			return
		}
		logger.Printf("%s", t)
	}
}

// buildRegistry registers every exposed family. Engine-derived values are
// sampled from the immutable published snapshot, so scraping never
// touches mutable engine state; only the scheduler gauges lock s.mu
// inside their sample closure.
func (s *Server) buildRegistry() {
	r := s.reg
	snap := func() *inkstream.Snapshot { return s.engine.Snapshot() }
	r.CounterFunc("inkstream_updates_total",
		"Update batches applied by the engine (edge and vertex-feature).",
		func() float64 { return float64(s.obs.Updates()) })
	r.CounterFunc("inkstream_slow_updates_total",
		"Updates slower than the configured slow-update threshold.",
		func() float64 { return float64(s.obs.SlowUpdates()) })
	r.Histogram("inkstream_update_latency_seconds",
		"End-to-end latency of one applied update batch.",
		1e-9, s.obs.UpdateLatency)
	r.Histogram("inkstream_update_batch_size",
		"Edge changes plus vertex updates per applied batch.",
		1, s.obs.BatchSize)
	r.Histogram("inkstream_update_events",
		"Propagation events processed per applied batch.",
		1, s.obs.Events)
	r.LabeledCounterFunc("inkstream_node_visits_total",
		"Per-layer node visits by InkStream condition (paper Fig. 8 taxonomy).",
		func() []obs.LabeledValue {
			st := snap().Conditions
			counts := make(map[string]int64, len(st.Counts))
			for c := inkstream.CondPruned; c <= inkstream.CondSelfOnly; c++ {
				counts[c.String()] = st.Counts[c]
			}
			return obs.SortedLabeled("condition", counts)
		})
	r.GaugeFunc("inkstream_graph_nodes",
		"Nodes in the maintained graph (as of the published snapshot).",
		func() float64 { return float64(snap().Nodes) })
	r.GaugeFunc("inkstream_graph_edges",
		"Edges in the maintained graph (as of the published snapshot).",
		func() float64 { return float64(snap().Edges) })
	r.GaugeFunc("inkstream_snapshot_epoch",
		"Epoch of the currently published embedding snapshot.",
		func() float64 { return float64(snap().Epoch) })
	r.GaugeFunc("inkstream_snapshot_lag_batches",
		"Mutation batches accepted by the pipeline but not yet reflected in the published snapshot (reader staleness bound).",
		func() float64 {
			// Load processed first so a concurrent publish can only shrink
			// the reported lag, never make it negative.
			p := s.processed.Load()
			a := s.accepted.Load()
			if a < p {
				return 0
			}
			return float64(a - p)
		})
	r.CounterFunc("inkstream_reads_total",
		"Embedding reads resolved against a published snapshot (lock-free path).",
		func() float64 { return float64(s.reads.Load()) })
	r.Histogram("inkstream_group_commit_batch_size",
		"Journaled update batches covered by one WAL fsync (group commit).",
		1, s.gcSize)
	r.Histogram("inkstream_coalesced_batch_size",
		"Queued mutation requests fused into one engine apply (server-side coalescing).",
		1, s.coSize)
	r.CounterFunc("inkstream_coalesce_stalls_total",
		"Fused batches flushed early because a queued request conflicted (same edge or same node as the open batch).",
		func() float64 { return float64(s.coStalls.Load()) })
	r.CounterFunc("inkstream_coalesce_fallbacks_total",
		"Fused applies that failed validation and were replayed request-by-request.",
		func() float64 { return float64(s.coFallbacks.Load()) })
	r.CounterFunc("inkstream_http_updates_served_total",
		"Successful mutation requests (/v1/update, /v1/features, flushed /v1/submit).",
		func() float64 { return float64(s.updates.Load()) })
	if s.counters != nil {
		r.CounterFunc("inkstream_bytes_fetched_total",
			"Embedding/feature bytes read by inference (Table V memory cost).",
			func() float64 { return float64(s.counters.BytesFetched.Load()) })
		r.CounterFunc("inkstream_bytes_written_total",
			"Embedding bytes stored back by inference.",
			func() float64 { return float64(s.counters.BytesWritten.Load()) })
		r.CounterFunc("inkstream_flops_total",
			"Floating-point operations spent in inference.",
			func() float64 { return float64(s.counters.FLOPs.Load()) })
		r.CounterFunc("inkstream_events_processed_total",
			"InkStream propagation events consumed.",
			func() float64 { return float64(s.counters.EventsProcessed.Load()) })
	}
	schedStats := func() (scheduler.Stats, int) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.batcher == nil {
			return scheduler.Stats{}, 0
		}
		return s.batcher.Stats(), s.batcher.Pending()
	}
	r.GaugeFunc("inkstream_scheduler_pending",
		"Edge events buffered by the batching scheduler.",
		func() float64 { _, p := schedStats(); return float64(p) })
	r.GaugeFunc("inkstream_scheduler_pending_max",
		"High-water mark of the scheduler pending queue.",
		func() float64 { st, _ := schedStats(); return float64(st.MaxPending) })
	r.CounterFunc("inkstream_scheduler_submitted_total",
		"Edge events submitted to the batching scheduler.",
		func() float64 { st, _ := schedStats(); return float64(st.Submitted) })
	r.CounterFunc("inkstream_scheduler_conflicts_total",
		"Submitted events coalesced against a pending event on the same edge.",
		func() float64 { st, _ := schedStats(); return float64(st.Conflicts) })
	r.LabeledCounterFunc("inkstream_scheduler_flushes_total",
		"Scheduler flushes by trigger reason.",
		func() []obs.LabeledValue {
			st, _ := schedStats()
			return obs.SortedLabeled("reason", map[string]int64{
				"size":      int64(st.SizeFlushes),
				"staleness": int64(st.TimeFlushes),
				"explicit":  int64(st.ExplicitFlushes()),
			})
		})
	r.Histogram("inkstream_wal_append_latency_seconds",
		"Durability cost per WAL commit: encode, write, flush and fsync (one commit may cover a whole group).",
		1e-9, s.walLat)
	r.Histogram("inkstream_ack_latency_seconds",
		"Submit-to-ack latency of one pipeline request (queueing + journal + coalesce + apply + publish); buckets carry trace-ID exemplars resolvable at /v1/traces.",
		1e-9, s.ackLat)
	r.CounterFunc("inkstream_traces_recorded_total",
		"Request traces recorded by the flight recorder (sampled, slow or failed requests).",
		func() float64 {
			if s.flight == nil {
				return 0
			}
			return float64(s.flight.Recorded())
		})
	r.CounterFunc("inkstream_drift_audits_total",
		"Shadow-recompute drift audits completed.",
		func() float64 { return float64(s.audit.audits.Load()) })
	r.CounterFunc("inkstream_drift_audit_failures_total",
		"Drift audits whose max abs drift exceeded the tolerance.",
		func() float64 { return float64(s.audit.failures.Load()) })
	r.GaugeFunc("inkstream_drift_max_abs",
		"Max abs difference between maintained and shadow-recomputed embeddings in the most recent drift audit.",
		s.lastDrift)
	r.HistogramVec("inkstream_drift_abs",
		"Per-audit max abs drift, labeled by the model's aggregator kind (accumulative kinds drift; monotonic kinds should sit in the lowest bucket).",
		1e-9, s.driftHists)
	s.alerts.Register(r)
	s.runtime.Register(r)
}

// SetCoalescing switches server-side update coalescing (coalesce.go) on or
// off. On by default; safe to call at any time (the apply stage reads the
// switch per group), which lets benchmarks compare the two modes on one
// server.
func (s *Server) SetCoalescing(on bool) { s.coalesce.Store(on) }

// CoalesceStats summarises the coalescing activity so far.
type CoalesceStats struct {
	// Requests is the number of mutation requests that went through the
	// coalescing apply stage; Batches the number of Engine.Apply flushes
	// covering them — Requests/Batches is the achieved fusion factor.
	Requests int64 `json:"requests"`
	Batches  int64 `json:"batches"`
	// Stalls counts fused batches flushed early by a conflicting request;
	// Fallbacks counts fused applies replayed per-request after a
	// validation failure.
	Stalls    int64 `json:"stalls"`
	Fallbacks int64 `json:"fallbacks"`
}

// CoalesceStats returns the coalescing counters. Safe from any goroutine.
func (s *Server) CoalesceStats() CoalesceStats {
	h := s.coSize.Snapshot()
	return CoalesceStats{
		Requests:  h.Sum,
		Batches:   h.Count,
		Stalls:    s.coStalls.Load(),
		Fallbacks: s.coFallbacks.Load(),
	}
}

// SetJournal installs a write-ahead journal; call before serving. Journals
// that can observe their commit latency (persist.WAL) are handed the
// registered WAL histogram. Journals implementing BatchJournal get group
// commit: one fsync covers every request queued behind it.
func (s *Server) SetJournal(j Journal) {
	s.journal = j
	if h, ok := j.(interface{ SetLatencyHistogram(*obs.Histogram) }); ok {
		h.SetLatencyHistogram(s.walLat)
	}
}

// deltaApplier adapts the pipeline to scheduler.Updater.
type deltaApplier struct{ s *Server }

func (a deltaApplier) Update(d graph.Delta) error { return a.s.Apply(d, nil) }

// EnableBatching installs a scheduler for the /v1/submit endpoint: single
// edge events are coalesced and flushed as ΔG batches per the policy —
// the Fig. 7 latency/staleness trade-off made operational. The scheduler
// inherits the engine graph's directedness, so coalescing only treats
// (u,v) and (v,u) as the same edge on undirected graphs. Call before
// serving. Callers should also run a periodic Tick (see Tick) so the
// staleness deadline fires during quiet periods.
func (s *Server) EnableBatching(p scheduler.Policy) error {
	p.Directed = !s.engine.Graph().Undirected
	b, err := scheduler.New(deltaApplier{s}, p)
	if err != nil {
		return err
	}
	s.batcher = b
	return nil
}

// Tick drives the batching staleness deadline; safe to call from a
// background goroutine. No-op when batching is disabled.
func (s *Server) Tick() error {
	if s.batcher == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.batcher.Tick()
	return err
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/update", s.handleUpdate)
	mux.HandleFunc("POST /v1/features", s.handleFeatures)
	mux.HandleFunc("GET /v1/embedding", s.handleEmbedding)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/timeseries", s.handleTimeseries)
	mux.Handle("GET /v1/alerts", s.alerts)
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /debug/bundle", s.handleBundle)
	// Unknown /v1/* paths get a typed JSON 404 instead of the mux's plain
	// text (known paths with the wrong method also land here; the body
	// names the path so either mistake is diagnosable).
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusNotFound, "no %s %s endpoint", r.Method, r.URL.Path)
	})
	return mux
}

// SubmitResponse reports the batching state after one /v1/submit event.
type SubmitResponse struct {
	Flushed bool `json:"flushed"`
	Pending int  `json:"pending"`
}

// handleSubmit enqueues a single edge event into the batching scheduler.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.batcher == nil {
		httpError(w, http.StatusNotImplemented, "batching not enabled; use /v1/update")
		return
	}
	var ch EdgeChangeJSON
	if err := json.NewDecoder(r.Body).Decode(&ch); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	s.mu.Lock()
	flushed, err := s.batcher.Submit(graph.EdgeChange{U: ch.U, V: ch.V, Insert: ch.Insert})
	pending := s.batcher.Pending()
	s.mu.Unlock()
	if err != nil {
		httpError(w, mutationStatus(err), "applying batch: %v", err)
		return
	}
	writeJSON(w, SubmitResponse{Flushed: flushed, Pending: pending})
}

// VerifyResponse is the body of POST /v1/verify (both outcomes).
type VerifyResponse struct {
	// Status is "verified" or "failed"; Error the failure detail.
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// MaxAbsDiff is the measured max abs difference between the maintained
	// embeddings and the from-scratch recompute — reported even on success,
	// so operators see how close to the tolerance the state is drifting.
	MaxAbsDiff float64 `json:"max_abs_diff"`
	// ElapsedMS is the recompute+compare time on the apply stage; LatencyMS
	// the full request latency including the wait to quiesce the pipeline.
	ElapsedMS float64 `json:"elapsed_ms"`
	LatencyMS float64 `json:"latency_ms"`
}

// handleVerify recomputes the full inference and compares it against the
// maintained state (Engine.VerifyDiff) — an operational self-check, and the
// exhaustive sibling of the sampled drift auditor. It runs as an exclusive
// operation on the apply stage (the pipeline is quiesced for the whole
// recompute), so it never races an update; use the drift auditor for a
// continuous check that does not stall serving. It is a POST because it is
// expensive.
func (s *Server) handleVerify(w http.ResponseWriter, _ *http.Request) {
	var diff float32
	var elapsed time.Duration
	t0 := time.Now()
	err := s.do(nil, nil, func() error {
		v0 := time.Now()
		var verr error
		diff, verr = s.engine.VerifyDiff(2e-3)
		elapsed = time.Since(v0)
		return verr
	})
	lat := time.Since(t0)
	if err == ErrServerClosed {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	resp := VerifyResponse{
		Status:     "verified",
		MaxAbsDiff: float64(diff),
		ElapsedMS:  float64(elapsed.Microseconds()) / 1000,
		LatencyMS:  float64(lat.Microseconds()) / 1000,
	}
	if err != nil {
		resp.Status = "failed"
		resp.Error = fmt.Sprintf("verification failed: %v", err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_ = json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

// EdgeChangeJSON is one edge modification in the wire format.
type EdgeChangeJSON struct {
	U      int32 `json:"u"`
	V      int32 `json:"v"`
	Insert bool  `json:"insert"`
}

// UpdateRequest is the body of POST /v1/update.
type UpdateRequest struct {
	Changes []EdgeChangeJSON `json:"changes"`
}

// UpdateResponse reports the applied batch. Epoch is a published snapshot
// epoch that covers the batch: any read observing this epoch (or later)
// sees the update.
type UpdateResponse struct {
	Applied   int     `json:"applied"`
	Epoch     uint64  `json:"epoch"`
	LatencyMS float64 `json:"latency_ms"`
}

// mutationStatus maps a pipeline error to an HTTP status.
func mutationStatus(err error) int {
	if err == ErrServerClosed {
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.Changes) == 0 {
		httpError(w, http.StatusBadRequest, "empty change batch")
		return
	}
	delta := make(graph.Delta, len(req.Changes))
	for i, c := range req.Changes {
		delta[i] = graph.EdgeChange{U: c.U, V: c.V, Insert: c.Insert}
	}
	t0 := time.Now()
	err := s.Apply(delta, nil)
	lat := time.Since(t0)
	if err != nil {
		httpError(w, mutationStatus(err), "applying batch: %v", err)
		return
	}
	writeJSON(w, UpdateResponse{
		Applied:   len(delta),
		Epoch:     s.engine.Snapshot().Epoch,
		LatencyMS: float64(lat.Microseconds()) / 1000,
	})
}

// FeatureUpdateJSON is one vertex-feature replacement in the wire format.
type FeatureUpdateJSON struct {
	Node int32     `json:"node"`
	X    []float32 `json:"x"`
}

// FeaturesRequest is the body of POST /v1/features.
type FeaturesRequest struct {
	Updates []FeatureUpdateJSON `json:"updates"`
}

func (s *Server) handleFeatures(w http.ResponseWriter, r *http.Request) {
	var req FeaturesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.Updates) == 0 {
		httpError(w, http.StatusBadRequest, "empty feature batch")
		return
	}
	ups := make([]inkstream.VertexUpdate, len(req.Updates))
	for i, u := range req.Updates {
		ups[i] = inkstream.VertexUpdate{Node: u.Node, X: tensor.Vector(u.X)}
	}
	t0 := time.Now()
	err := s.Apply(nil, ups)
	lat := time.Since(t0)
	if err != nil {
		httpError(w, mutationStatus(err), "applying features: %v", err)
		return
	}
	writeJSON(w, UpdateResponse{
		Applied:   len(ups),
		Epoch:     s.engine.Snapshot().Epoch,
		LatencyMS: float64(lat.Microseconds()) / 1000,
	})
}

// EmbeddingResponse is the body of GET /v1/embedding. Epoch is the
// snapshot epoch the embedding was resolved against — the staleness bound
// the reader observed.
type EmbeddingResponse struct {
	Node      int32     `json:"node"`
	Epoch     uint64    `json:"epoch"`
	Embedding []float32 `json:"embedding"`
}

// handleEmbedding serves one node's embedding from the published snapshot
// with zero locking: a read is an atomic pointer load plus a row lookup,
// regardless of what the writer pipeline is doing.
func (s *Server) handleEmbedding(w http.ResponseWriter, r *http.Request) {
	nodeStr := r.URL.Query().Get("node")
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad node %q", nodeStr)
		return
	}
	row, epoch, ok := s.ReadEmbedding(node)
	if !ok {
		httpError(w, http.StatusNotFound, "node %d out of range", node)
		return
	}
	writeJSON(w, EmbeddingResponse{Node: int32(node), Epoch: epoch, Embedding: row})
}

// LatencyQuantiles summarises the update-latency histogram, in
// milliseconds.
type LatencyQuantiles struct {
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// Epoch is the published snapshot epoch the stats were read from;
	// SnapshotLag the number of accepted batches it does not yet cover.
	Epoch         uint64 `json:"epoch"`
	SnapshotLag   uint64 `json:"snapshot_lag"`
	UpdatesServed int64  `json:"updates_served"`
	ReadsServed   int64  `json:"reads_served"`
	SlowUpdates   int64  `json:"slow_updates"`
	// Pending is the batching scheduler's queue depth (0 when batching is
	// disabled); MaxPending its high-water mark.
	Pending    int `json:"pending"`
	MaxPending int `json:"max_pending"`
	// Coalesce summarises server-side update coalescing: requests fused,
	// engine flushes covering them, conflict stalls and replay fallbacks.
	Coalesce      CoalesceStats    `json:"coalesce"`
	Conditions    map[string]int64 `json:"conditions"`
	BytesFetched  int64            `json:"bytes_fetched"`
	Events        int64            `json:"events_processed"`
	UpdateLatency LatencyQuantiles `json:"update_latency"`
	// PageCache describes the tiered row store; nil in resident mode.
	PageCache *PageCacheSection `json:"page_cache,omitempty"`
}

// handleStats reads everything from the published snapshot, atomics and
// the observer — never from mutable engine state — so it stays lock-free
// apart from the scheduler queue gauges.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.engine.Snapshot()
	resp := StatsResponse{
		Nodes:         snap.Nodes,
		Edges:         snap.Edges,
		Epoch:         snap.Epoch,
		UpdatesServed: s.updates.Load(),
		ReadsServed:   s.reads.Load(),
		Conditions:    map[string]int64{},
	}
	if p, a := s.processed.Load(), s.accepted.Load(); a > p {
		resp.SnapshotLag = a - p
	}
	resp.Coalesce = s.CoalesceStats()
	for c := inkstream.CondPruned; c <= inkstream.CondSelfOnly; c++ {
		if n := snap.Conditions.Counts[c]; n > 0 {
			resp.Conditions[c.String()] = n
		}
	}
	if s.batcher != nil {
		s.mu.Lock()
		resp.Pending = s.batcher.Pending()
		resp.MaxPending = s.batcher.Stats().MaxPending
		s.mu.Unlock()
	}
	if s.counters != nil {
		cs := s.counters.Snapshot()
		resp.BytesFetched = cs.BytesFetched
		resp.Events = cs.EventsProcessed
	}
	resp.SlowUpdates = s.obs.SlowUpdates()
	lat := s.obs.UpdateLatency.Snapshot()
	const ms = 1e-6 // nanoseconds → milliseconds
	resp.UpdateLatency = LatencyQuantiles{
		P50: float64(lat.P50()) * ms,
		P95: float64(lat.P95()) * ms,
		P99: float64(lat.P99()) * ms,
		Max: float64(lat.Max) * ms,
	}
	if s.pageStats != nil {
		sec := &PageCacheSection{PageCacheStats: s.pageStats(), Quant: s.pageQuant}
		sec.HitRate = sec.PageCacheStats.HitRate()
		if s.pageFaultLat != nil {
			sec.FaultP99Ms = float64(s.pageFaultLat.Snapshot().P99()) * ms
		}
		resp.PageCache = sec
	}
	writeJSON(w, resp)
}

// SetHealthSLO sets the ack-latency p99 objective the health check enforces:
// when the windowed p99 (max over the last ~10 time-series ticks) exceeds
// slo, /healthz reports degraded. It also installs the standard fast/slow
// burn-rate alert pair over the windowed ack p99 series (GET /v1/alerts);
// firing alerts degrade /healthz too. 0 disables both (the default).
func (s *Server) SetHealthSLO(slo time.Duration) {
	s.sloNS.Store(slo.Nanoseconds())
	if s.alerts == nil {
		return
	}
	if slo <= 0 {
		s.alerts.SetRules()
		return
	}
	s.alerts.SetRules(obs.DefaultBurnRateRules("ack_p99_ms", float64(slo)/1e6)...)
}

// Alerts exposes the burn-rate alert engine.
func (s *Server) Alerts() *obs.AlertEngine { return s.alerts }

// HealthzResponse is the body of GET /healthz (and /v1/healthz).
type HealthzResponse struct {
	// Status is "ok" or "degraded". The response is always HTTP 200 —
	// degraded means "serving but out of spec" (drift audit failing, ack
	// p99 over SLO), which is an alerting condition, not an unreachability
	// one; Reasons lists what degraded it.
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Shards and EpochSkew are populated by the shard router, which serves
	// this same schema for deployment-shape parity (1 for a single engine).
	Shards        int     `json:"shards,omitempty"`
	Epoch         uint64  `json:"epoch"`
	EpochSkew     uint64  `json:"epoch_skew,omitempty"`
	AckP99MS      float64 `json:"ack_p99_ms"`
	SLOMS         float64 `json:"slo_ms,omitempty"`
	DriftMaxAbs   float64 `json:"drift_max_abs"`
	AuditFailures int64   `json:"audit_failures"`
	// AlertsFiring names the burn-rate alerts currently firing; their
	// human-readable reasons are folded into Reasons.
	AlertsFiring []string `json:"alerts_firing,omitempty"`
	Reasons      []string `json:"reasons,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := HealthzResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		Epoch:         s.engine.Snapshot().Epoch,
		DriftMaxAbs:   s.lastDrift(),
		AuditFailures: s.audit.failures.Load(),
	}
	var reasons []string
	if s.sampler != nil {
		// Max over the last ~10 ticks so one quiet second cannot mask a
		// breached SLO between scrapes.
		if v, ok := s.sampler.MaxRecent("ack_p99_ms", 10); ok {
			resp.AckP99MS = v
		}
	}
	if slo := time.Duration(s.sloNS.Load()); slo > 0 {
		resp.SLOMS = float64(slo) / 1e6
		if resp.AckP99MS > resp.SLOMS {
			reasons = append(reasons, fmt.Sprintf(
				"ack p99 %.3fms over SLO %.3fms", resp.AckP99MS, resp.SLOMS))
		}
	}
	if s.audit.lastFailed.Load() {
		reasons = append(reasons, fmt.Sprintf(
			"drift audit failing: max abs drift %g over tolerance %g",
			resp.DriftMaxAbs, s.audit.tol))
	}
	if s.alerts != nil {
		resp.AlertsFiring = s.alerts.Firing()
		reasons = append(reasons, s.alerts.FiringReasons()...)
	}
	if len(reasons) > 0 {
		resp.Status = "degraded"
		resp.Reasons = reasons
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; the connection will just break.
		return
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
