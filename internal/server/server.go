// Package server exposes an InkStream engine as an HTTP service: a
// long-running inference daemon that accepts streaming edge and
// vertex-feature updates and serves always-fresh embeddings — the
// "real-time inference in dynamic settings" deployment the paper targets.
//
// Endpoints:
//
//	POST /v1/update     {"changes":[{"u":1,"v":2,"insert":true}, …]}
//	POST /v1/features   {"updates":[{"node":1,"x":[…]}, …]}
//	GET  /v1/embedding?node=N
//	GET  /v1/stats
//	GET  /v1/healthz
//	GET  /metrics       (Prometheus text exposition)
//
// All mutations serialise on one engine lock; reads take the same lock
// briefly to copy a row. The handlers never expose partial states.
//
// Observability: every server owns an obs.Observer shared with its engine
// (per-update latency/size histograms, slow-update traces) and an
// obs.Registry exposing them — plus the work counters, per-condition visit
// totals, scheduler queue state and WAL append latency — at GET /metrics.
package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/scheduler"
	"repro/internal/tensor"
)

// Server wraps an engine with HTTP handlers.
type Server struct {
	mu       sync.Mutex
	engine   *inkstream.Engine
	counters *metrics.Counters
	updates  int64
	batcher  *scheduler.Scheduler
	journal  Journal

	obs    *obs.Observer
	reg    *obs.Registry
	walLat *obs.Histogram
}

// Journal records every applied batch before it reaches the engine
// (write-ahead logging); persist.WAL implements it. A journal Append
// failure aborts the update, so a successful response implies the batch is
// durable.
type Journal interface {
	Append(delta graph.Delta, vups []inkstream.VertexUpdate) error
}

// New wraps an engine; counters may be the same instance the engine
// records into (or nil). The server reuses the engine's observer when one
// was installed at construction (so CLI-configured tracing keeps working)
// and otherwise installs a fresh one, then builds the /metrics registry
// over it.
func New(engine *inkstream.Engine, counters *metrics.Counters) *Server {
	s := &Server{engine: engine, counters: counters}
	s.obs = engine.Observer()
	if s.obs == nil {
		s.obs = obs.NewObserver()
		engine.SetObserver(s.obs)
	}
	s.walLat = obs.NewLatencyHistogram()
	s.reg = obs.NewRegistry()
	s.buildRegistry()
	return s
}

// Observer exposes the server's observer for CLI wiring (slow-update
// thresholds, trace emission).
func (s *Server) Observer() *obs.Observer { return s.obs }

// Registry exposes the metric registry, e.g. to register process-level
// extras before serving.
func (s *Server) Registry() *obs.Registry { return s.reg }

// EnableSlowUpdateLog logs a full per-layer trace for every update slower
// than threshold (and for every update when traceAll is set). logger nil
// means the standard logger. Call before serving.
func (s *Server) EnableSlowUpdateLog(threshold time.Duration, traceAll bool, logger *log.Logger) {
	if logger == nil {
		logger = log.Default()
	}
	s.obs.SlowThreshold = threshold
	s.obs.TraceAll = traceAll
	s.obs.OnTrace = func(t *obs.Trace) {
		if threshold > 0 && t.Total >= threshold {
			logger.Printf("slow update (>= %v): %s", threshold, t)
			return
		}
		logger.Printf("%s", t)
	}
}

// buildRegistry registers every exposed family. Gauges over mutex-guarded
// state lock s.mu inside their sample closure; WriteText never runs with
// the lock held, so this cannot deadlock.
func (s *Server) buildRegistry() {
	r := s.reg
	r.CounterFunc("inkstream_updates_total",
		"Update batches applied by the engine (edge and vertex-feature).",
		func() float64 { return float64(s.obs.Updates()) })
	r.CounterFunc("inkstream_slow_updates_total",
		"Updates slower than the configured slow-update threshold.",
		func() float64 { return float64(s.obs.SlowUpdates()) })
	r.Histogram("inkstream_update_latency_seconds",
		"End-to-end latency of one applied update batch.",
		1e-9, s.obs.UpdateLatency)
	r.Histogram("inkstream_update_batch_size",
		"Edge changes plus vertex updates per applied batch.",
		1, s.obs.BatchSize)
	r.Histogram("inkstream_update_events",
		"Propagation events processed per applied batch.",
		1, s.obs.Events)
	r.LabeledCounterFunc("inkstream_node_visits_total",
		"Per-layer node visits by InkStream condition (paper Fig. 8 taxonomy).",
		func() []obs.LabeledValue {
			s.mu.Lock()
			st := *s.engine.Stats()
			s.mu.Unlock()
			counts := make(map[string]int64, len(st.Counts))
			for c := inkstream.CondPruned; c <= inkstream.CondSelfOnly; c++ {
				counts[c.String()] = st.Counts[c]
			}
			return obs.SortedLabeled("condition", counts)
		})
	r.GaugeFunc("inkstream_graph_nodes",
		"Nodes in the maintained graph.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.engine.Graph().NumNodes())
		})
	r.GaugeFunc("inkstream_graph_edges",
		"Edges in the maintained graph.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.engine.Graph().NumEdges())
		})
	r.CounterFunc("inkstream_http_updates_served_total",
		"Successful mutation requests (/v1/update, /v1/features, flushed /v1/submit).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.updates)
		})
	if s.counters != nil {
		r.CounterFunc("inkstream_bytes_fetched_total",
			"Embedding/feature bytes read by inference (Table V memory cost).",
			func() float64 { return float64(s.counters.BytesFetched.Load()) })
		r.CounterFunc("inkstream_bytes_written_total",
			"Embedding bytes stored back by inference.",
			func() float64 { return float64(s.counters.BytesWritten.Load()) })
		r.CounterFunc("inkstream_flops_total",
			"Floating-point operations spent in inference.",
			func() float64 { return float64(s.counters.FLOPs.Load()) })
		r.CounterFunc("inkstream_events_processed_total",
			"InkStream propagation events consumed.",
			func() float64 { return float64(s.counters.EventsProcessed.Load()) })
	}
	schedStats := func() (scheduler.Stats, int) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.batcher == nil {
			return scheduler.Stats{}, 0
		}
		return s.batcher.Stats(), s.batcher.Pending()
	}
	r.GaugeFunc("inkstream_scheduler_pending",
		"Edge events buffered by the batching scheduler.",
		func() float64 { _, p := schedStats(); return float64(p) })
	r.GaugeFunc("inkstream_scheduler_pending_max",
		"High-water mark of the scheduler pending queue.",
		func() float64 { st, _ := schedStats(); return float64(st.MaxPending) })
	r.CounterFunc("inkstream_scheduler_submitted_total",
		"Edge events submitted to the batching scheduler.",
		func() float64 { st, _ := schedStats(); return float64(st.Submitted) })
	r.CounterFunc("inkstream_scheduler_conflicts_total",
		"Submitted events coalesced against a pending event on the same edge.",
		func() float64 { st, _ := schedStats(); return float64(st.Conflicts) })
	r.LabeledCounterFunc("inkstream_scheduler_flushes_total",
		"Scheduler flushes by trigger reason.",
		func() []obs.LabeledValue {
			st, _ := schedStats()
			return obs.SortedLabeled("reason", map[string]int64{
				"size":      int64(st.SizeFlushes),
				"staleness": int64(st.TimeFlushes),
				"explicit":  int64(st.ExplicitFlushes()),
			})
		})
	r.Histogram("inkstream_wal_append_latency_seconds",
		"Durability cost per journaled batch: encode, write, flush and fsync.",
		1e-9, s.walLat)
}

// SetJournal installs a write-ahead journal; call before serving. Journals
// that can observe their append latency (persist.WAL) are handed the
// registered WAL histogram.
func (s *Server) SetJournal(j Journal) {
	s.journal = j
	if h, ok := j.(interface{ SetLatencyHistogram(*obs.Histogram) }); ok {
		h.SetLatencyHistogram(s.walLat)
	}
}

// applyDelta journals (when configured) and applies one edge batch; the
// caller holds the lock.
func (s *Server) applyDelta(d graph.Delta) error {
	if s.journal != nil {
		if err := s.journal.Append(d, nil); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	return s.engine.Update(d)
}

// deltaApplier adapts applyDelta to scheduler.Updater.
type deltaApplier struct{ s *Server }

func (a deltaApplier) Update(d graph.Delta) error { return a.s.applyDelta(d) }

// EnableBatching installs a scheduler for the /v1/submit endpoint: single
// edge events are coalesced and flushed as ΔG batches per the policy —
// the Fig. 7 latency/staleness trade-off made operational. Call before
// serving. Callers should also run a periodic Tick (see Tick) so the
// staleness deadline fires during quiet periods.
func (s *Server) EnableBatching(p scheduler.Policy) error {
	b, err := scheduler.New(deltaApplier{s}, p)
	if err != nil {
		return err
	}
	s.batcher = b
	return nil
}

// Tick drives the batching staleness deadline; safe to call from a
// background goroutine. No-op when batching is disabled.
func (s *Server) Tick() error {
	if s.batcher == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.batcher.Tick()
	return err
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/update", s.handleUpdate)
	mux.HandleFunc("POST /v1/features", s.handleFeatures)
	mux.HandleFunc("GET /v1/embedding", s.handleEmbedding)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	mux.Handle("GET /metrics", s.reg.Handler())
	return mux
}

// SubmitResponse reports the batching state after one /v1/submit event.
type SubmitResponse struct {
	Flushed bool `json:"flushed"`
	Pending int  `json:"pending"`
}

// handleSubmit enqueues a single edge event into the batching scheduler.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.batcher == nil {
		httpError(w, http.StatusNotImplemented, "batching not enabled; use /v1/update")
		return
	}
	var ch EdgeChangeJSON
	if err := json.NewDecoder(r.Body).Decode(&ch); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	s.mu.Lock()
	flushed, err := s.batcher.Submit(graph.EdgeChange{U: ch.U, V: ch.V, Insert: ch.Insert})
	if err == nil && flushed {
		s.updates++
	}
	pending := s.batcher.Pending()
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "applying batch: %v", err)
		return
	}
	writeJSON(w, SubmitResponse{Flushed: flushed, Pending: pending})
}

// handleVerify recomputes the full inference and compares it against the
// maintained state (Engine.Verify) — an operational self-check. It is a
// POST because it is expensive.
func (s *Server) handleVerify(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	t0 := time.Now()
	err := s.engine.Verify(2e-3)
	lat := time.Since(t0)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "verification failed: %v", err)
		return
	}
	writeJSON(w, map[string]any{"status": "verified", "latency_ms": float64(lat.Microseconds()) / 1000})
}

// EdgeChangeJSON is one edge modification in the wire format.
type EdgeChangeJSON struct {
	U      int32 `json:"u"`
	V      int32 `json:"v"`
	Insert bool  `json:"insert"`
}

// UpdateRequest is the body of POST /v1/update.
type UpdateRequest struct {
	Changes []EdgeChangeJSON `json:"changes"`
}

// UpdateResponse reports the applied batch.
type UpdateResponse struct {
	Applied   int     `json:"applied"`
	LatencyMS float64 `json:"latency_ms"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.Changes) == 0 {
		httpError(w, http.StatusBadRequest, "empty change batch")
		return
	}
	delta := make(graph.Delta, len(req.Changes))
	for i, c := range req.Changes {
		delta[i] = graph.EdgeChange{U: c.U, V: c.V, Insert: c.Insert}
	}
	s.mu.Lock()
	t0 := time.Now()
	err := s.applyDelta(delta)
	lat := time.Since(t0)
	if err == nil {
		s.updates++
	}
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "applying batch: %v", err)
		return
	}
	writeJSON(w, UpdateResponse{Applied: len(delta), LatencyMS: float64(lat.Microseconds()) / 1000})
}

// FeatureUpdateJSON is one vertex-feature replacement in the wire format.
type FeatureUpdateJSON struct {
	Node int32     `json:"node"`
	X    []float32 `json:"x"`
}

// FeaturesRequest is the body of POST /v1/features.
type FeaturesRequest struct {
	Updates []FeatureUpdateJSON `json:"updates"`
}

func (s *Server) handleFeatures(w http.ResponseWriter, r *http.Request) {
	var req FeaturesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.Updates) == 0 {
		httpError(w, http.StatusBadRequest, "empty feature batch")
		return
	}
	ups := make([]inkstream.VertexUpdate, len(req.Updates))
	for i, u := range req.Updates {
		ups[i] = inkstream.VertexUpdate{Node: u.Node, X: tensor.Vector(u.X)}
	}
	s.mu.Lock()
	t0 := time.Now()
	err := error(nil)
	if s.journal != nil {
		err = s.journal.Append(nil, ups)
	}
	if err == nil {
		err = s.engine.UpdateVertices(ups)
	}
	lat := time.Since(t0)
	if err == nil {
		s.updates++
	}
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "applying features: %v", err)
		return
	}
	writeJSON(w, UpdateResponse{Applied: len(ups), LatencyMS: float64(lat.Microseconds()) / 1000})
}

// EmbeddingResponse is the body of GET /v1/embedding.
type EmbeddingResponse struct {
	Node      int32     `json:"node"`
	Embedding []float32 `json:"embedding"`
}

func (s *Server) handleEmbedding(w http.ResponseWriter, r *http.Request) {
	nodeStr := r.URL.Query().Get("node")
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad node %q", nodeStr)
		return
	}
	s.mu.Lock()
	var row tensor.Vector
	if node >= 0 && node < s.engine.Graph().NumNodes() {
		row = s.engine.Output().Row(node).Clone()
	}
	s.mu.Unlock()
	if row == nil {
		httpError(w, http.StatusNotFound, "node %d out of range", node)
		return
	}
	writeJSON(w, EmbeddingResponse{Node: int32(node), Embedding: row})
}

// LatencyQuantiles summarises the update-latency histogram, in
// milliseconds.
type LatencyQuantiles struct {
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Nodes         int   `json:"nodes"`
	Edges         int   `json:"edges"`
	UpdatesServed int64 `json:"updates_served"`
	SlowUpdates   int64 `json:"slow_updates"`
	// Pending is the batching scheduler's queue depth (0 when batching is
	// disabled); MaxPending its high-water mark.
	Pending       int              `json:"pending"`
	MaxPending    int              `json:"max_pending"`
	Conditions    map[string]int64 `json:"conditions"`
	BytesFetched  int64            `json:"bytes_fetched"`
	Events        int64            `json:"events_processed"`
	UpdateLatency LatencyQuantiles `json:"update_latency"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := StatsResponse{
		Nodes:         s.engine.Graph().NumNodes(),
		Edges:         s.engine.Graph().NumEdges(),
		UpdatesServed: s.updates,
		Conditions:    map[string]int64{},
	}
	st := s.engine.Stats()
	for c := inkstream.CondPruned; c <= inkstream.CondSelfOnly; c++ {
		if n := st.Counts[c]; n > 0 {
			resp.Conditions[c.String()] = n
		}
	}
	if s.batcher != nil {
		resp.Pending = s.batcher.Pending()
		resp.MaxPending = s.batcher.Stats().MaxPending
	}
	if s.counters != nil {
		snap := s.counters.Snapshot()
		resp.BytesFetched = snap.BytesFetched
		resp.Events = snap.EventsProcessed
	}
	s.mu.Unlock()
	resp.SlowUpdates = s.obs.SlowUpdates()
	lat := s.obs.UpdateLatency.Snapshot()
	const ms = 1e-6 // nanoseconds → milliseconds
	resp.UpdateLatency = LatencyQuantiles{
		P50: float64(lat.P50()) * ms,
		P95: float64(lat.P95()) * ms,
		P99: float64(lat.P99()) * ms,
		Max: float64(lat.Max) * ms,
	}
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; the connection will just break.
		return
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
