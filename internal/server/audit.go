package server

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baseline"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Continuous drift auditor (DESIGN.md §10). InkStream's accumulative
// aggregators (sum, mean) reassociate floating-point arithmetic across every
// incremental batch, so the maintained embeddings drift away from a from-
// scratch inference over time — the accumulated-error concern the paper's
// tolerance sweeps quantify offline. The auditor turns it into a live
// signal: every K applied updates it captures the L-hop dependency cone of a
// few random nodes on the apply stage (cheap, exclusive — see
// baseline.CaptureShadow), recomputes them *off* the pipeline, and publishes
// the measured drift (gauge, per-aggregator histograms) plus a failure
// counter when drift exceeds the tolerance. It is the sampled, non-exclusive
// sibling of Engine.Verify: Verify quiesces the writer for a full-graph
// recompute; the auditor stalls it only for the capture.

// auditState carries the auditor's configuration and published results.
// Constructed eagerly in New so the /metrics families always exist; the
// background loop only starts with EnableDriftAudit.
type auditState struct {
	every  uint64  // audit every N applied updates (0 = loop disabled)
	sample int     // nodes captured per audit
	tol    float32 // max abs drift allowed before the audit fails

	mu  sync.Mutex // serialises audits; guards rng
	rng *rand.Rand

	audits     atomic.Int64
	failures   atomic.Int64
	lastFailed atomic.Bool
	driftBits  atomic.Uint64 // float64 bits of the most recent audit's drift

	// onFailure, when set (EnableBlackBox), runs on each failed audit with
	// the failure detail — the black box capture trigger. Set before serving.
	onFailure func(reason string)

	done chan struct{} // closed when the loop exits; nil when never started
}

// newAuditState seeds the auditor with serving defaults; EnableDriftAudit
// overrides them and starts the loop.
func newAuditState() *auditState {
	return &auditState{
		sample: 16,
		tol:    2e-3,
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// driftHistograms builds one drift histogram per distinct aggregator kind in
// the model. Drift is end-to-end (it accumulates through every layer), so a
// mixed-aggregator model observes each audit under every kind it uses; the
// label answers "which aggregation family does this deployment drift like"
// across a fleet, not "which layer drifted".
func driftHistograms(m *gnn.Model) []obs.LabeledHistogram {
	seen := make(map[gnn.AggKind]bool)
	var out []obs.LabeledHistogram
	for _, l := range m.Layers {
		k := l.Agg().Kind()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, obs.LabeledHistogram{
			Labels: `agg="` + k.String() + `"`,
			// Nano-units: bucket i covers drift up to ~2^i × 1e-9, spanning
			// bit-noise (1e-9) through clearly-broken (~1.0).
			H: obs.NewHistogram(1, 1<<30),
		})
	}
	return out
}

// lastDrift returns the most recent audit's max abs drift (0 before the
// first audit) — the inkstream_drift_max_abs gauge and healthz field.
func (s *Server) lastDrift() float64 {
	return math.Float64frombits(s.audit.driftBits.Load())
}

// EnableDriftAudit starts the background auditor: every `every` applied
// updates it shadow-recomputes `sample` random nodes against the maintained
// state and fails the audit when their max abs drift exceeds tol (tol <= 0
// keeps the default 2e-3 — the tolerance the batch-size sweeps accept for
// accumulative aggregators; monotonic aggregators should measure ~0).
// Call before serving; the loop stops with Close.
func (s *Server) EnableDriftAudit(every uint64, sample int, tol float32) {
	a := s.audit
	if every == 0 {
		return
	}
	a.every = every
	if sample > 0 {
		a.sample = sample
	}
	if tol > 0 {
		a.tol = tol
	}
	a.done = make(chan struct{})
	go s.auditLoop()
}

// auditLoop polls the applied-update counter and runs one audit each time it
// advances by the configured stride. Polling (rather than hooking the apply
// path) keeps the pipeline free of auditor branches; the stride check costs
// one atomic load per poll.
func (s *Server) auditLoop() {
	a := s.audit
	defer close(a.done)
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	var last uint64
	for {
		select {
		case <-s.quit:
			return
		case <-tick.C:
			cur := uint64(s.obs.Updates())
			if cur < last+a.every {
				continue
			}
			last = cur
			if _, err := s.AuditNow(a.sample); err != nil && err != ErrServerClosed {
				log.Printf("%v", err)
			}
		}
	}
}

// AuditNow runs one drift audit synchronously: capture the dependency cone
// of `sample` random nodes on the apply stage, recompute off the pipeline,
// publish the measured drift. Returns the shadow result and a non-nil error
// when the audit failed (drift over tolerance) or could not run. Safe from
// any goroutine; concurrent audits serialise.
func (s *Server) AuditNow(sample int) (baseline.ShadowResult, error) {
	a := s.audit
	a.mu.Lock()
	defer a.mu.Unlock()
	if sample < 1 {
		sample = 1
	}
	n := s.engine.Snapshot().Nodes
	if n == 0 {
		return baseline.ShadowResult{}, fmt.Errorf("drift audit: empty graph")
	}
	if sample > n {
		sample = n
	}
	// Distinct targets: duplicates would collapse in the shadow's node set
	// and under-report the sampled count.
	targets := make([]graph.NodeID, 0, sample)
	seen := make(map[graph.NodeID]struct{}, sample)
	for len(targets) < sample {
		v := graph.NodeID(a.rng.Intn(n))
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		targets = append(targets, v)
	}
	// Phase 1: capture on the apply stage (exclusive, cheap — clones the
	// cone's adjacency and feature/output rows, no inference).
	var sh *baseline.Shadow
	err := s.do(nil, nil, func() error {
		var cerr error
		sh, cerr = baseline.CaptureShadow(
			s.engine.Model(), s.engine.Graph(),
			s.engine.State().H[0], s.engine.Output(), targets)
		if sh != nil {
			sh.Epoch = s.engine.Snapshot().Epoch
		}
		return cerr
	})
	if err != nil {
		if err != ErrServerClosed {
			err = fmt.Errorf("drift audit: capture: %w", err)
		}
		return baseline.ShadowResult{}, err
	}
	// Phase 2: recompute off the pipeline. The capture is self-contained,
	// so the writer is already serving the next update while this runs.
	res := sh.Recompute()
	a.audits.Add(1)
	a.driftBits.Store(math.Float64bits(float64(res.MaxAbsDiff)))
	driftNanos := int64(math.Ceil(float64(res.MaxAbsDiff) * 1e9))
	for i := range s.driftHists {
		s.driftHists[i].H.Observe(driftNanos)
	}
	if res.MaxAbsDiff > a.tol {
		a.failures.Add(1)
		a.lastFailed.Store(true)
		err := fmt.Errorf(
			"drift audit: max abs drift %g over tolerance %g at node %d (epoch %d, %d/%d nodes sampled/recomputed)",
			res.MaxAbsDiff, a.tol, res.WorstNode, sh.Epoch, res.Nodes, res.ClosureNodes)
		if a.onFailure != nil {
			a.onFailure(err.Error())
		}
		return res, err
	}
	a.lastFailed.Store(false)
	return res, nil
}
