package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// TestFlightRecorderTraces: with 1-in-1 sampling every request lands in the
// ring with ordered stage marks, the fused count, and GET /v1/traces serves
// them newest first with working filters.
func TestFlightRecorderTraces(t *testing.T) {
	srv, eng := newObsServer(t)
	srv.SetTraceSampling(64, 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	edges := absentEdges(t, eng.Graph(), 6)
	for _, e := range edges {
		if err := srv.Apply(graph.Delta{{U: e.U, V: e.V, Insert: true}}, nil); err != nil {
			t.Fatal(err)
		}
	}

	f := srv.FlightRecorder()
	if f.Recorded() < int64(len(edges)) {
		t.Fatalf("recorded %d traces, want >= %d", f.Recorded(), len(edges))
	}
	for _, tr := range f.Traces() {
		if tr.Kind != "update" || tr.Edges != 1 || tr.Fused < 1 {
			t.Errorf("trace %+v", tr)
		}
		// Cumulative marks must be monotone across reached stages and end at
		// the ack (no journal configured, so the journal mark stays 0).
		if tr.Marks[obs.StageJournal] != 0 {
			t.Errorf("journal mark %v without a journal", tr.Marks[obs.StageJournal])
		}
		prev := time.Duration(0)
		for st := obs.StageCoalesce; st < obs.StageCount; st++ {
			m := tr.Marks[st]
			if m == 0 {
				t.Fatalf("stage %v unreached in %s", st, tr)
			}
			if m < prev {
				t.Fatalf("marks not monotone in %s", tr)
			}
			prev = m
		}
		if tr.Marks[obs.StageAck] != tr.Total {
			t.Fatalf("ack mark %v != total %v in %s", tr.Marks[obs.StageAck], tr.Total, tr)
		}
		if tr.Engine == nil {
			t.Errorf("sampled trace missing engine trace: %s", tr)
		}
	}

	// Endpoint: newest first, n and min_us filters, exemplar-joinable IDs.
	resp, err := http.Get(ts.URL + "/v1/traces?n=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.SampleEvery != 1 || body.Recorded < int64(len(edges)) || len(body.Traces) != 3 {
		t.Fatalf("traces response: every=%d recorded=%d n=%d", body.SampleEvery, body.Recorded, len(body.Traces))
	}
	if body.Traces[0].ID < body.Traces[1].ID {
		t.Error("traces not newest first")
	}
	resp2, err := http.Get(ts.URL + "/v1/traces?min_us=10000000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var none TracesResponse
	if err := json.NewDecoder(resp2.Body).Decode(&none); err != nil {
		t.Fatal(err)
	}
	if len(none.Traces) != 0 {
		t.Errorf("min_us filter kept %d traces", len(none.Traces))
	}

	// The ack-latency histogram carries a trace-ID exemplar joinable against
	// the ring.
	samples := scrape(t, ts.URL)
	found := false
	for _, s := range samples.Family("inkstream_ack_latency_seconds_bucket") {
		if s.Exemplar != nil && s.Exemplar.TraceID() != "" {
			found = true
		}
	}
	if !found {
		t.Error("no trace-ID exemplar on inkstream_ack_latency_seconds")
	}
}

// TestFlightRecorderErrorAlwaysRecorded: failed requests are recorded even
// when they fall outside the sample.
func TestFlightRecorderErrorAlwaysRecorded(t *testing.T) {
	srv, _ := newObsServer(t)
	srv.SetTraceSampling(16, 0) // sampling off: only slow/failed record
	if err := srv.Apply(graph.Delta{{U: 0, V: 0, Insert: true}}, nil); err == nil {
		t.Fatal("self-loop accepted")
	}
	traces := srv.FlightRecorder().Traces()
	if len(traces) != 1 || traces[0].Err == "" {
		t.Fatalf("failed request not recorded: %v", traces)
	}
}

// TestTimeseriesEndpoint: after updates and a manual tick, /v1/timeseries
// serves the registered series with a nonzero update rate.
func TestTimeseriesEndpoint(t *testing.T) {
	srv, eng := newObsServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.Sampler().Tick() // prime counters
	for _, e := range absentEdges(t, eng.Graph(), 4) {
		if err := srv.Apply(graph.Delta{{U: e.U, V: e.V, Insert: true}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	srv.Sampler().Tick()

	resp, err := http.Get(ts.URL + "/v1/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.TSSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.IntervalMS != 1000 || snap.Ticks < 2 {
		t.Fatalf("snapshot meta: %+v", snap)
	}
	got := map[string][]float64{}
	for _, s := range snap.Series {
		got[s.Name] = s.Samples
	}
	for _, name := range []string{"upd_per_s", "reads_per_s", "events_per_s", "ack_p99_ms", "apply_p99_ms", "epoch", "lag_batches", "drift_max_abs"} {
		if _, ok := got[name]; !ok {
			t.Errorf("series %q missing (have %v)", name, snap.Series)
		}
	}
	// The ticks between priming and the read saw 4 updates; the background
	// ticker may split them across samples, so assert on the window total.
	var updSum, ackMax float64
	for _, v := range got["upd_per_s"] {
		updSum += v
	}
	for _, v := range got["ack_p99_ms"] {
		if v > ackMax {
			ackMax = v
		}
	}
	if updSum < 4 {
		t.Errorf("upd_per_s %v sums to %v, want >= 4", got["upd_per_s"], updSum)
	}
	if ackMax <= 0 {
		t.Errorf("ack_p99_ms %v never nonzero", got["ack_p99_ms"])
	}
	if ep := got["epoch"]; ep[len(ep)-1] < 5 {
		t.Errorf("epoch %v, want >= 5 after 4 updates", ep)
	}
}

// TestHealthzDegraded: /healthz (and /v1/healthz) report ok with uptime and
// epoch; breaching the ack SLO or failing the drift audit flips the status
// to degraded with reasons, while the HTTP status stays 200.
func TestHealthzDegraded(t *testing.T) {
	srv, eng := newObsServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	gethealth := func(path string) (int, HealthzResponse) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h HealthzResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}

	for _, path := range []string{"/healthz", "/v1/healthz"} {
		code, h := gethealth(path)
		if code != http.StatusOK || h.Status != "ok" {
			t.Fatalf("%s: %d %+v", path, code, h)
		}
		if h.Epoch == 0 || h.UptimeSeconds < 0 {
			t.Errorf("%s missing uptime/epoch: %+v", path, h)
		}
	}

	// Breach the SLO: apply an update (so the latency window is nonzero),
	// tick, and set an absurdly low objective.
	e := absentEdges(t, eng.Graph(), 1)[0]
	if err := srv.Apply(graph.Delta{{U: e.U, V: e.V, Insert: true}}, nil); err != nil {
		t.Fatal(err)
	}
	srv.Sampler().Tick()
	srv.SetHealthSLO(time.Nanosecond)
	code, h := gethealth("/healthz")
	if code != http.StatusOK || h.Status != "degraded" || len(h.Reasons) == 0 {
		t.Fatalf("SLO breach not degraded: %d %+v", code, h)
	}
	srv.SetHealthSLO(0)

	// Fail the drift audit: corrupt every output row, audit, check status.
	out := eng.Output()
	for i := 0; i < out.Rows; i++ {
		out.Row(i)[0] += 1.0
	}
	if _, err := srv.AuditNow(4); err == nil {
		t.Fatal("audit passed on corrupted state")
	}
	_, h = gethealth("/healthz")
	if h.Status != "degraded" || h.DriftMaxAbs < 0.5 || h.AuditFailures < 1 {
		t.Fatalf("audit failure not reported: %+v", h)
	}
}

// TestDriftAuditCorruption: audits pass on a consistent engine and publish
// drift metrics; deliberate corruption fires audit_failures_total and the
// per-aggregator drift histogram moves.
func TestDriftAuditCorruption(t *testing.T) {
	srv, eng := newObsServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A healthy monotonic-aggregator engine audits clean.
	res, err := srv.AuditNow(8)
	if err != nil {
		t.Fatalf("audit on healthy engine: %v", err)
	}
	if res.MaxAbsDiff != 0 || res.Nodes != 8 {
		t.Errorf("healthy audit: %+v", res)
	}
	samples := scrape(t, ts.URL)
	if v, _ := samples.Get("inkstream_drift_audits_total"); v != 1 {
		t.Errorf("audits_total %v", v)
	}
	if v, _ := samples.Get("inkstream_drift_audit_failures_total"); v != 0 {
		t.Errorf("failures_total %v before corruption", v)
	}
	if v, ok := samples.Get("inkstream_drift_abs_count", "agg", "max"); !ok || v != 1 {
		t.Errorf("drift histogram (agg=max) count %v ok=%v", v, ok)
	}

	// Corrupt the maintained output; the audit must fail and say so.
	out := eng.Output()
	for i := 0; i < out.Rows; i++ {
		out.Row(i)[0] += 0.25
	}
	if _, err := srv.AuditNow(8); err == nil {
		t.Fatal("audit passed on corrupted engine")
	}
	samples = scrape(t, ts.URL)
	if v, _ := samples.Get("inkstream_drift_audit_failures_total"); v != 1 {
		t.Errorf("failures_total %v after corruption", v)
	}
	if v, _ := samples.Get("inkstream_drift_max_abs"); v < 0.2 {
		t.Errorf("drift_max_abs gauge %v after corruption", v)
	}
}

// TestDriftBoundedOverStream is the acceptance check for the auditor: after
// >= 10k incremental updates, sampled drift stays within the tolerance.
func TestDriftBoundedOverStream(t *testing.T) {
	if testing.Short() {
		t.Skip("long stream")
	}
	srv, eng := newObsServer(t)
	edges := absentEdges(t, eng.Graph(), 50)
	updates := 0
	for updates < 10000 {
		for _, e := range edges {
			if err := srv.Apply(graph.Delta{{U: e.U, V: e.V, Insert: true}}, nil); err != nil {
				t.Fatal(err)
			}
			if err := srv.Apply(graph.Delta{{U: e.U, V: e.V, Insert: false}}, nil); err != nil {
				t.Fatal(err)
			}
			updates += 2
		}
		if _, err := srv.AuditNow(8); err != nil {
			t.Fatalf("drift audit failed after %d updates: %v", updates, err)
		}
	}
	if res, err := srv.AuditNow(16); err != nil {
		t.Fatalf("final audit: %v", err)
	} else if res.MaxAbsDiff > 2e-3 {
		t.Errorf("drift %g after %d updates", res.MaxAbsDiff, updates)
	}
}

// TestFlightConcurrentStress hammers the pipeline, the trace ring, the
// sampler and every new read endpoint at once — the -race proof for the
// flight recorder's lock-light claims.
func TestFlightConcurrentStress(t *testing.T) {
	srv, eng := newObsServer(t)
	srv.SetTraceSampling(64, 2)
	srv.SetSlowTraceThreshold(time.Millisecond)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	edges := absentEdges(t, eng.Graph(), 32)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})

	// Writers: concurrent insert/delete toggles through the pipeline, plus a
	// sampler ticker racing the endpoint reads.
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 150; i++ {
				e := edges[(w*8+i)%len(edges)]
				srv.Apply(graph.Delta{{U: e.U, V: e.V, Insert: i%2 == 0}}, nil)
			}
		}(w)
	}
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < 200; i++ {
			srv.Sampler().Tick()
		}
	}()

	// Readers: trace ring, time-series, healthz, metrics, embeddings.
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				srv.FlightRecorder().Traces()
				srv.Sampler().Snapshot()
				srv.ReadEmbedding(1)
				for _, path := range []string{"/v1/traces", "/v1/timeseries", "/healthz"} {
					resp, err := http.Get(ts.URL + path)
					if err == nil {
						resp.Body.Close()
					}
				}
			}
		}()
	}

	writers.Wait()
	close(stop)
	readers.Wait()

	if srv.FlightRecorder().Recorded() == 0 {
		t.Error("stress run recorded no traces")
	}
}

// BenchmarkPipelineFlightRecorder measures the flight-recorder tax on the
// full submit→ack pipeline: the same alternating insert/delete workload with
// request tracing disabled entirely (ring 0 — no IDs, no stage timestamps)
// vs the serving default (ring 256, 1-in-64 sampling plus slow/failed
// capture). scripts/obs_overhead.sh gates the paired delta at <5%.
func BenchmarkPipelineFlightRecorder(b *testing.B) {
	const n = 2048
	for _, cfg := range []struct {
		name        string
		ring, every int
	}{
		{"off", 0, 0},
		{"on", 256, 64},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			s, eng := newPipelineServer(b, 23, n, 4*n)
			s.SetTraceSampling(cfg.ring, cfg.every)
			g := eng.Graph()
			rng := rand.New(rand.NewSource(24))
			seen := map[[2]graph.NodeID]bool{}
			var ins, del graph.Delta
			for len(ins) < 16 {
				u := graph.NodeID(rng.Intn(n))
				v := graph.NodeID(rng.Intn(n))
				if u == v || g.HasEdge(u, v) || seen[[2]graph.NodeID{u, v}] || seen[[2]graph.NodeID{v, u}] {
					continue
				}
				seen[[2]graph.NodeID{u, v}] = true
				ins = append(ins, graph.EdgeChange{U: u, V: v, Insert: true})
				del = append(del, graph.EdgeChange{U: u, V: v, Insert: false})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := ins
				if i%2 == 1 {
					d = del
				}
				if err := s.Apply(d, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestServerSLOAlerts drives the burn-rate alert engine through the
// single-engine server: SetHealthSLO installs the fast/slow rule pair,
// sustained breaches fire, /v1/alerts serves the status, /healthz folds the
// firing alerts into its reasons, and clearing the SLO resolves everything.
// Unknown /v1/* paths get a typed JSON 404.
func TestServerSLOAlerts(t *testing.T) {
	srv, eng := newObsServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.SetHealthSLO(time.Nanosecond)
	if got := len(srv.Alerts().Rules()); got != 2 {
		t.Fatalf("SetHealthSLO installed %d rules, want 2", got)
	}
	edges := absentEdges(t, eng.Graph(), 4)
	for _, e := range edges {
		if err := srv.Apply(graph.Delta{{U: e.U, V: e.V, Insert: true}}, nil); err != nil {
			t.Fatal(err)
		}
		srv.Sampler().Tick()
	}
	if got := srv.Alerts().Firing(); len(got) == 0 {
		t.Fatal("no alert firing after sustained SLO breaches")
	}

	resp, err := http.Get(ts.URL + "/v1/alerts")
	if err != nil {
		t.Fatal(err)
	}
	var alerts obs.AlertsResponse
	if err := json.NewDecoder(resp.Body).Decode(&alerts); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if alerts.Firing == 0 || len(alerts.Alerts) != 2 {
		t.Fatalf("alerts response %+v", alerts)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthzResponse
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if h.Status != "degraded" || len(h.AlertsFiring) == 0 {
		t.Fatalf("healthz under fire: %+v", h)
	}

	srv.SetHealthSLO(0)
	if got := srv.Alerts().Firing(); len(got) != 0 {
		t.Fatalf("alerts survive SLO removal: %v", got)
	}

	nresp, err := http.Get(ts.URL + "/v1/nonsense")
	if err != nil {
		t.Fatal(err)
	}
	var errBody map[string]string
	if err := json.NewDecoder(nresp.Body).Decode(&errBody); err != nil || errBody["error"] == "" {
		t.Fatalf("unknown /v1 path body not typed JSON: %v %v", errBody, err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown /v1 path: %d", nresp.StatusCode)
	}
}
