package server

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/tensor"
)

// mutexReader is the pre-pipeline design this PR replaces: every read
// takes the same lock the updater holds for the whole engine.Apply, so
// read tail latency inherits update durations (and, on a loaded box, the
// scheduling quanta of the compute-bound updater holding the lock).
type mutexReader struct {
	mu  sync.Mutex
	eng *inkstream.Engine
	buf tensor.Vector
}

func (m *mutexReader) read(node int) tensor.Vector {
	m.mu.Lock()
	defer m.mu.Unlock()
	row := m.eng.Output().Row(node)
	if cap(m.buf) < len(row) {
		m.buf = make(tensor.Vector, len(row))
	}
	copy(m.buf[:len(row)], row)
	return m.buf[:len(row)]
}

func (m *mutexReader) apply(d graph.Delta) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eng.Apply(d, nil)
}

// makeDeltas pre-generates a consistent update stream against a clone of
// the engine graph, so the benchmark's updater goroutine spends its time
// applying updates rather than generating them.
func makeDeltas(t testing.TB, g *graph.Graph, seed int64, count, size int) []graph.Delta {
	t.Helper()
	shadow := g.Clone()
	rng := rand.New(rand.NewSource(seed))
	out := make([]graph.Delta, count)
	for i := range out {
		out[i] = graph.RandomDelta(rng, shadow, size)
		if err := out[i].Apply(shadow); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// reportQuantiles attaches p50/p99 of the collected read latencies to the
// benchmark output.
func reportQuantiles(b *testing.B, lats []time.Duration) {
	b.Helper()
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) float64 {
		i := int(p * float64(len(lats)-1))
		return float64(lats[i].Nanoseconds())
	}
	b.ReportMetric(q(0.50), "p50-ns/read")
	b.ReportMetric(q(0.99), "p99-ns/read")
}

// BenchmarkReadUnderUpdateLoad measures paced single-read latency (one
// read per readPace, modelling a client issuing requests at a fixed rate)
// while an update stream applies pre-generated deltas flat out. Compare
// p99-ns/read between the sub-benchmarks:
//
//   - snapshot: the lock-free path of this package. A read is an atomic
//     pointer load however busy the writer pipeline is; p99 stays sub-µs.
//   - mutex: the serialised design this PR replaced. A read issued while
//     an Apply holds the lock waits for it (p99 = hundreds of µs to ms),
//     and on saturated machines for the updater's scheduling quantum too.
//
// Run with e.g. `-bench ReadUnderUpdateLoad -benchtime 200x`; ns/op is
// dominated by the deliberate pacing, so the quantile metrics are the
// result.
func BenchmarkReadUnderUpdateLoad(b *testing.B) {
	const (
		nodes, edges = 3000, 12_000
		deltaSize    = 16
		streamLen    = 4000
		readPace     = 100 * time.Microsecond
	)

	// run issues b.N paced reads while an updater goroutine replays the
	// pre-generated stream (deltas are stateful, so the stream cannot
	// cycle; streamLen covers ~1s of continuous applies).
	run := func(b *testing.B, read func(int), apply func(graph.Delta) error, deltas []graph.Delta) {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, d := range deltas {
				select {
				case <-stop:
					return
				default:
				}
				if apply(d) != nil {
					return
				}
			}
		}()
		lats := make([]time.Duration, 0, b.N)
		rng := rand.New(rand.NewSource(19))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			time.Sleep(readPace)
			node := rng.Intn(nodes)
			t0 := time.Now()
			read(node)
			lats = append(lats, time.Since(t0))
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
		reportQuantiles(b, lats)
	}

	b.Run("snapshot", func(b *testing.B) {
		s, eng := newPipelineServer(b, 17, nodes, edges)
		deltas := makeDeltas(b, eng.Graph(), 18, streamLen, deltaSize)
		read := func(node int) {
			if _, _, ok := s.ReadEmbedding(node); !ok {
				b.Fatalf("read %d rejected", node)
			}
		}
		run(b, read, func(d graph.Delta) error { return s.Apply(d, nil) }, deltas)
	})

	b.Run("mutex", func(b *testing.B) {
		m := &mutexReader{eng: newBenchEngine(b, 17, nodes, edges)}
		deltas := makeDeltas(b, m.eng.Graph(), 18, streamLen, deltaSize)
		run(b, func(node int) { m.read(node) }, m.apply, deltas)
	})
}
