package server

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// newCoalesceServer builds a server over a deterministic engine (AggMax, so
// every comparison below may demand bit-exactness: the maintained state of
// a monotonic model is a pure function of graph + features).
func newCoalesceServer(t *testing.T) *Server {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	g := dataset.GenerateRMAT(rng, 300, 1200, dataset.DefaultRMAT)
	feats := dataset.NewFeatures(rng, 300, 8)
	model := gnn.NewGCN(rng, 8, 16, gnn.NewAggregator(gnn.AggMax))
	var c metrics.Counters
	eng, err := inkstream.New(model, g, feats.X, &c, inkstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, &c)
	t.Cleanup(s.Close)
	return s
}

// quiesce stops the server's pipeline goroutines so a test can drive the
// apply stage (applyCoalesced / applySingly) deterministically from its own
// goroutine — the only way to pin down which requests share a fused batch.
func quiesce(s *Server) { s.Close() }

func mutReq(delta graph.Delta, vups []inkstream.VertexUpdate) *updateReq {
	return &updateReq{delta: delta, vups: vups, done: make(chan error, 1)}
}

// freshEdges returns n edges not present in g, mutually distinct.
func freshEdges(t *testing.T, g *graph.Graph, rng *rand.Rand, n int) []graph.EdgeChange {
	t.Helper()
	seen := map[[2]graph.NodeID]bool{}
	var out []graph.EdgeChange
	for len(out) < n {
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if u > v {
			u, v = v, u
		}
		if u == v || g.HasEdge(u, v) || seen[[2]graph.NodeID{u, v}] {
			continue
		}
		seen[[2]graph.NodeID{u, v}] = true
		out = append(out, graph.EdgeChange{U: u, V: v, Insert: true})
	}
	return out
}

// TestCoalesceEquivalence: N compatible single-change updates applied as
// one fused batch must produce bit-identical final embeddings and the same
// per-request acks as applying them one at a time.
func TestCoalesceEquivalence(t *testing.T) {
	fusedSrv := newCoalesceServer(t)
	singleSrv := newCoalesceServer(t)
	quiesce(fusedSrv)
	quiesce(singleSrv)
	rng := rand.New(rand.NewSource(2))
	edges := freshEdges(t, fusedSrv.engine.Graph(), rng, 16)

	mkGroup := func() []*updateReq {
		group := make([]*updateReq, len(edges))
		for i, ch := range edges {
			group[i] = mutReq(graph.Delta{ch}, nil)
		}
		return group
	}
	fusedGroup, singleGroup := mkGroup(), mkGroup()
	fusedSrv.applyCoalesced(fusedGroup, newFused())
	singleSrv.applySingly(singleGroup)

	for i := range edges {
		if err := <-fusedGroup[i].done; err != nil {
			t.Fatalf("fused request %d: %v", i, err)
		}
		if err := <-singleGroup[i].done; err != nil {
			t.Fatalf("single request %d: %v", i, err)
		}
	}
	if !fusedSrv.engine.Output().Equal(singleSrv.engine.Output()) {
		t.Fatalf("fused embeddings not bit-identical to one-at-a-time (max diff %g)",
			fusedSrv.engine.Output().MaxAbsDiff(singleSrv.engine.Output()))
	}
	st := fusedSrv.CoalesceStats()
	if st.Requests != int64(len(edges)) || st.Batches != 1 || st.Stalls != 0 || st.Fallbacks != 0 {
		t.Fatalf("coalesce stats = %+v, want all %d requests in 1 batch", st, len(edges))
	}
	if err := fusedSrv.engine.Verify(0); err != nil {
		t.Fatal(err)
	}
}

// TestCoalesceConflictStall: a request touching an edge of the open batch
// (in either orientation — the graph is undirected) must flush the batch
// first, and then fail with exactly the error it would have received
// applied alone.
func TestCoalesceConflictStall(t *testing.T) {
	s := newCoalesceServer(t)
	quiesce(s)
	rng := rand.New(rand.NewSource(3))
	e := freshEdges(t, s.engine.Graph(), rng, 1)[0]

	first := mutReq(graph.Delta{e}, nil)
	// Same logical edge, reversed orientation: conflicts with the open
	// batch, and — applied after the flush — is a duplicate insert.
	second := mutReq(graph.Delta{{U: e.V, V: e.U, Insert: true}}, nil)
	s.applyCoalesced([]*updateReq{first, second}, newFused())

	if err := <-first.done; err != nil {
		t.Fatalf("first request: %v", err)
	}
	if err := <-second.done; err == nil {
		t.Fatal("duplicate insert acknowledged without error")
	}
	st := s.CoalesceStats()
	if st.Stalls != 1 || st.Batches != 2 {
		t.Fatalf("coalesce stats = %+v, want 1 stall and 2 batches", st)
	}
	if !s.engine.Graph().HasEdge(e.U, e.V) {
		t.Fatal("first request's edge missing after conflict flush")
	}
	if err := s.engine.Verify(0); err != nil {
		t.Fatal(err)
	}
}

// TestCoalesceFallbackRouting: when a fused apply fails validation (the
// conflict check cannot see that a lone removal targets an edge that never
// existed), the per-request replay must route the error to exactly the
// invalid request while the compatible ones still apply.
func TestCoalesceFallbackRouting(t *testing.T) {
	s := newCoalesceServer(t)
	quiesce(s)
	rng := rand.New(rand.NewSource(4))
	edges := freshEdges(t, s.engine.Graph(), rng, 3)

	good1 := mutReq(graph.Delta{edges[0]}, nil)
	bad := mutReq(graph.Delta{{U: edges[1].U, V: edges[1].V, Insert: false}}, nil)
	good2 := mutReq(graph.Delta{edges[2]}, nil)
	s.applyCoalesced([]*updateReq{good1, bad, good2}, newFused())

	if err := <-good1.done; err != nil {
		t.Fatalf("first valid request: %v", err)
	}
	if err := <-bad.done; err == nil {
		t.Fatal("removal of a non-existent edge acknowledged without error")
	}
	if err := <-good2.done; err != nil {
		t.Fatalf("second valid request: %v", err)
	}
	st := s.CoalesceStats()
	if st.Fallbacks != 1 || st.Stalls != 0 || st.Batches != 1 {
		t.Fatalf("coalesce stats = %+v, want 1 fallback, 0 stalls, 1 batch", st)
	}
	g := s.engine.Graph()
	if !g.HasEdge(edges[0].U, edges[0].V) || !g.HasEdge(edges[2].U, edges[2].V) {
		t.Fatal("valid requests' edges missing after fallback replay")
	}
	if err := s.engine.Verify(0); err != nil {
		t.Fatal(err)
	}
}

// TestCoalesceVertexConflict: two feature rewrites of one node must not
// fuse (last-writer-wins is order-dependent and fused validation would
// reject the duplicate); the second lands in the next batch and wins.
func TestCoalesceVertexConflict(t *testing.T) {
	s := newCoalesceServer(t)
	quiesce(s)
	dim := s.engine.State().H[0].Cols
	vup := func(val float32) []inkstream.VertexUpdate {
		x := make(tensor.Vector, dim)
		for i := range x {
			x[i] = val
		}
		return []inkstream.VertexUpdate{{Node: 5, X: x}}
	}
	first := mutReq(nil, vup(1))
	second := mutReq(nil, vup(2))
	s.applyCoalesced([]*updateReq{first, second}, newFused())
	if err := <-first.done; err != nil {
		t.Fatalf("first rewrite: %v", err)
	}
	if err := <-second.done; err != nil {
		t.Fatalf("second rewrite: %v", err)
	}
	if st := s.CoalesceStats(); st.Stalls != 1 || st.Batches != 2 {
		t.Fatalf("coalesce stats = %+v, want 1 stall and 2 batches", st)
	}
	if got := s.engine.State().H[0].Row(5)[0]; got != 2 {
		t.Fatalf("node 5 feature = %g, want the last writer's 2", got)
	}
	if err := s.engine.Verify(0); err != nil {
		t.Fatal(err)
	}
}

// TestCoalescePipelineEquivalence exercises coalescing through the live
// concurrent pipeline: the same conflict-free update set pushed through a
// coalescing and a non-coalescing server by racing workers must converge
// to bit-identical embeddings (the fusion factor itself is timing-
// dependent and not asserted).
func TestCoalescePipelineEquivalence(t *testing.T) {
	coalesced := newCoalesceServer(t)
	sequential := newCoalesceServer(t)
	sequential.SetCoalescing(false)
	rng := rand.New(rand.NewSource(6))
	const workers, perWorker = 8, 8
	edges := freshEdges(t, coalesced.engine.Graph(), rng, workers*perWorker)

	for _, s := range []*Server{coalesced, sequential} {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			pool := edges[w*perWorker : (w+1)*perWorker]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, ch := range pool {
					if err := s.Apply(graph.Delta{ch}, nil); err != nil {
						t.Errorf("apply %v: %v", ch, err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	quiesce(coalesced)
	quiesce(sequential)
	if !coalesced.engine.Output().Equal(sequential.engine.Output()) {
		t.Fatalf("coalesced pipeline diverged from sequential (max diff %g)",
			coalesced.engine.Output().MaxAbsDiff(sequential.engine.Output()))
	}
	if err := coalesced.engine.Verify(0); err != nil {
		t.Fatal(err)
	}
}

// TestCoalesceStress hammers a coalescing server with racing writers —
// including same-edge insert/remove races that force conflict stalls and
// fallback replays — and racing readers, then checks the maintained state
// against a from-scratch recomputation. Load-bearing under -race
// (scripts/check.sh).
func TestCoalesceStress(t *testing.T) {
	s := newCoalesceServer(t)
	rng := rand.New(rand.NewSource(8))
	const workers = 8
	perWorker := 24
	if testing.Short() {
		perWorker = 6
	}
	own := make([][]graph.EdgeChange, workers)
	for w := range own {
		own[w] = freshEdges(t, s.engine.Graph(), rng, 4)
	}
	// One shared edge toggled by every worker: its insert/remove requests
	// interleave arbitrarily, so many are invalid — the acks must simply be
	// consistent, and the state must stay convergent.
	shared := freshEdges(t, s.engine.Graph(), rng, 1)[0]

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ch := own[w][i%len(own[w])]
				ch.Insert = (i/len(own[w]))%2 == 0
				_ = s.Apply(graph.Delta{ch}, nil) // own-edge toggles may collide across rounds
				sh := shared
				sh.Insert = i%2 == 0
				_ = s.Apply(graph.Delta{sh}, nil) // racing toggles: errors expected
				if _, _, ok := s.ReadEmbedding(int(ch.U)); !ok {
					t.Errorf("read of node %d failed", ch.U)
					return
				}
			}
		}()
	}
	wg.Wait()
	quiesce(s)
	if err := s.engine.Verify(0); err != nil {
		t.Fatal(err)
	}
	if st := s.CoalesceStats(); st.Requests == 0 {
		t.Fatal("no requests went through the coalescing stage")
	}
}
