package server

import (
	"repro/internal/obs"
)

// PageCacheSection is the /v1/stats block describing the tiered row
// store's cache behaviour; present only when the server was started with
// a tiered store (EnablePageCache).
type PageCacheSection struct {
	obs.PageCacheStats
	// HitRate is hits/(hits+misses) cumulatively since start.
	HitRate float64 `json:"hit_rate"`
	// Quant names the on-page row encoding ("f32", "f16" or "int8").
	Quant string `json:"quant"`
	// FaultP99Ms is the p99 page-fault latency in milliseconds.
	FaultP99Ms float64 `json:"fault_p99_ms"`
}

// EnablePageCache registers the tiered store's page-cache metric families
// and the /v1/stats page_cache section. stats samples the store's
// counters (persist.TieredStore.Stats fits); faultLat must be the same
// histogram the store observes fault latency into; quant names the
// on-page encoding. Like the other configuration methods it must be
// called before serving. The server stays decoupled from the storage
// package: everything crosses this boundary as obs types, the same way
// the journal crosses as an interface.
func (s *Server) EnablePageCache(stats func() obs.PageCacheStats, faultLat *obs.Histogram, quant string) {
	s.pageStats = stats
	s.pageFaultLat = faultLat
	s.pageQuant = quant
	r := s.reg
	r.CounterFunc("inkstream_page_cache_hits_total",
		"Row reads served from a resident page payload (no disk access).",
		func() float64 { return float64(stats().Hits) })
	r.CounterFunc("inkstream_page_cache_misses_total",
		"Row reads that faulted their page in from the spill file.",
		func() float64 { return float64(stats().Misses) })
	r.CounterFunc("inkstream_page_cache_evictions_total",
		"Page payloads dropped by the clock (second-chance) sweep.",
		func() float64 { return float64(stats().Evictions) })
	r.CounterFunc("inkstream_page_cache_writebacks_total",
		"Page generations persisted to the spill file by the background writer.",
		func() float64 { return float64(stats().Writebacks) })
	r.CounterFunc("inkstream_page_cache_write_errors_total",
		"Failed spill-file writes; the affected generation stays dirty and resident.",
		func() float64 { return float64(stats().WriteErrors) })
	r.GaugeFunc("inkstream_page_cache_hot_bytes",
		"Resident encoded payload bytes across all pages.",
		func() float64 { return float64(stats().HotBytes) })
	r.GaugeFunc("inkstream_page_cache_cap_bytes",
		"Configured soft cap on resident payload bytes (0 = uncapped).",
		func() float64 { return float64(stats().CapBytes) })
	r.GaugeFunc("inkstream_page_cache_hot_pages",
		"Pages whose current generation is resident.",
		func() float64 { return float64(stats().HotPages) })
	r.GaugeFunc("inkstream_page_cache_pages",
		"Total pages in the store.",
		func() float64 { return float64(stats().TotalPages) })
	if faultLat != nil {
		// Faulting reads attach trace-ID exemplars (see readTieredRow), so a
		// fat bucket links back to its /v1/traces entry like ack/apply do.
		faultLat.EnableExemplars()
		r.Histogram("inkstream_page_fault_latency_seconds",
			"Latency of faulting one page back from the spill file (slot read, verify, decode-ready); buckets carry trace-ID exemplars resolvable at /v1/traces.",
			1e-9, faultLat)
	}
}
