package server

import (
	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/obs"
)

// Server-side adaptive coalescing (DESIGN.md §9). The journal stage already
// drains every request queued behind the in-flight one into a group; the
// apply stage used to call Engine.Apply once per request anyway, paying the
// engine's fixed per-batch costs (validation, arena rewind, per-layer
// grouper epochs, snapshot publication) once per request. Coalescing merges
// compatible requests of a group into one fused Engine.Apply, preserving
// the per-request contract:
//
//   - Ack/error routing: a request is acknowledged with exactly the error
//     it would have received applied alone. Compatible requests cannot
//     change each other's validation outcome (see conflicts), and when a
//     fused apply still fails, the batch is replayed request-by-request so
//     the error lands on exactly the conflicting request.
//   - Read-your-writes: the snapshot covering a fused batch is published
//     before any of its requests are acknowledged, exactly as before.
//   - Ordering: requests are fused and flushed in arrival order; a request
//     that conflicts with the open batch flushes it (a "stall") and starts
//     the next one, so same-edge/same-node sequences apply in sequence.
//
// For monotonic aggregators the fused result is bit-exact with one-at-a-time
// application (the maintained state is a pure function of graph + features,
// which conflict-free fusion leaves identical). Accumulative aggregators
// reassociate floating-point sums across batch boundaries — the same
// tolerance the paper's batch-size sweep accepts.

// edgeKey identifies one logical edge for conflict detection, canonical
// (endpoints sorted) on undirected graphs so (u,v) and (v,u) collide.
type edgeKey [2]graph.NodeID

func (s *Server) canonEdge(ch graph.EdgeChange) edgeKey {
	if s.undirected && ch.V < ch.U {
		return edgeKey{ch.V, ch.U}
	}
	return edgeKey{ch.U, ch.V}
}

// fused accumulates compatible queued mutations into one engine batch.
// Owned by the apply goroutine; all storage is reused across flushes.
type fused struct {
	reqs  []*updateReq
	delta graph.Delta
	vups  []inkstream.VertexUpdate
	edges map[edgeKey]struct{}
	nodes map[graph.NodeID]struct{}
}

func newFused() *fused {
	return &fused{
		edges: make(map[edgeKey]struct{}),
		nodes: make(map[graph.NodeID]struct{}),
	}
}

func (f *fused) reset() {
	f.reqs = f.reqs[:0]
	f.delta = f.delta[:0]
	f.vups = f.vups[:0]
	clear(f.edges)
	clear(f.nodes)
}

// conflicts reports whether r is compatible with the open fused batch.
// Incompatible means the fused batch could validate or apply differently
// than the one-at-a-time sequence would:
//
//   - same logical edge touched twice (Delta.Validate rejects duplicate
//     edges in one batch, and insert-then-remove of one edge is order-
//     dependent);
//   - same node's features rewritten twice (validateVertexUpdates rejects
//     duplicate nodes, and last-writer-wins is order-dependent).
//
// Everything else is independent: a change's validity depends only on the
// current presence of its own edge and the range/dim of its own node.
func (s *Server) conflicts(f *fused, r *updateReq) bool {
	if len(f.reqs) == 0 {
		return false
	}
	for _, ch := range r.delta {
		if _, ok := f.edges[s.canonEdge(ch)]; ok {
			return true
		}
	}
	for _, v := range r.vups {
		if _, ok := f.nodes[v.Node]; ok {
			return true
		}
	}
	return false
}

// addFused folds r into the open batch.
func (s *Server) addFused(f *fused, r *updateReq) {
	r.mark(obs.StageCoalesce)
	f.reqs = append(f.reqs, r)
	f.delta = append(f.delta, r.delta...)
	f.vups = append(f.vups, r.vups...)
	for _, ch := range r.delta {
		f.edges[s.canonEdge(ch)] = struct{}{}
	}
	for _, v := range r.vups {
		f.nodes[v.Node] = struct{}{}
	}
}

// flushFused applies the open batch (fused when it covers more than one
// request), publishes the covering snapshot, and only then acknowledges
// every request in it. A fused apply that fails — some request's changes
// were invalid, and engine validation precedes any mutation, so the state
// is untouched — falls back to replaying the requests one at a time, which
// routes the error to exactly the offending request(s). No-op on an empty
// batch.
func (s *Server) flushFused(f *fused) {
	n := len(f.reqs)
	if n == 0 {
		return
	}
	s.coSize.Observe(int64(n))
	if n == 1 {
		r := f.reqs[0]
		r.err = s.engine.Apply(r.delta, r.vups)
		if r.err == nil {
			s.updates.Add(1)
		}
	} else if err := s.engine.Apply(f.delta, f.vups); err == nil {
		s.updates.Add(int64(n))
	} else {
		s.coFallbacks.Add(1)
		for _, r := range f.reqs {
			r.err = s.engine.Apply(r.delta, r.vups)
			if r.err == nil {
				s.updates.Add(1)
			}
		}
	}
	var eng *obs.Trace
	for _, r := range f.reqs {
		r.fused = n
		r.mark(obs.StageApply)
		// One engine-trace clone covers the whole fused batch; it is only
		// taken when some request in it will be recorded.
		s.attachEngineTrace(r, &eng)
	}
	s.engine.PublishSnapshot()
	s.processed.Add(uint64(n))
	for _, r := range f.reqs {
		r.mark(obs.StagePublish)
		s.finish(r, r.err)
	}
	f.reset()
}

// coalesceGroup folds one journaled group into the open batch without the
// trailing flush (the caller decides when the coalescing window closes):
// compatible mutations fuse, a conflicting one flushes the open batch
// first (counted as a stall), op requests (exclusive operations like
// /v1/verify) act as full barriers — flush, run, acknowledge — so they
// still observe a quiesced engine, and the batch is bounded by maxGroup
// so coalescing cannot defer an acknowledgement indefinitely.
func (s *Server) coalesceGroup(group []*updateReq, f *fused) {
	for _, r := range group {
		if r.op != nil {
			s.flushFused(f)
			r.mark(obs.StageCoalesce)
			r.err = r.op()
			r.mark(obs.StageApply)
			s.finish(r, r.err)
			continue
		}
		if s.conflicts(f, r) {
			s.coStalls.Add(1)
			s.flushFused(f)
		}
		s.addFused(f, r)
		if len(f.reqs) >= maxGroup {
			s.flushFused(f)
		}
	}
}

// applyCoalesced coalesces one group and closes the window: every request
// is acknowledged (behind a covering snapshot) before it returns.
func (s *Server) applyCoalesced(group []*updateReq, f *fused) {
	s.coalesceGroup(group, f)
	s.flushFused(f)
}

// applySingly is the non-coalescing apply stage (SetCoalescing(false), and
// the historical behaviour): one Engine.Apply per request, one snapshot
// publication covering the group, then the acknowledgements.
func (s *Server) applySingly(group []*updateReq) {
	var mutations uint64
	for _, r := range group {
		r.mark(obs.StageCoalesce)
		if r.op != nil {
			r.err = r.op()
			r.mark(obs.StageApply)
			continue
		}
		r.err = s.engine.Apply(r.delta, r.vups)
		r.fused = 1
		r.mark(obs.StageApply)
		// Per-request applies mean the engine trace is exact per request;
		// clone it before the next apply overwrites it.
		var eng *obs.Trace
		s.attachEngineTrace(r, &eng)
		if r.err == nil {
			s.updates.Add(1)
		}
		mutations++
	}
	if mutations > 0 {
		s.engine.PublishSnapshot()
		s.processed.Add(mutations)
		for _, r := range group {
			if r.op == nil {
				r.mark(obs.StagePublish)
			}
		}
	}
	for _, r := range group {
		s.finish(r, r.err)
	}
}
