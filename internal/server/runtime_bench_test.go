package server

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// BenchmarkPipelineRuntimeSampler measures the runtime telemetry tax on the
// full submit→ack pipeline: each iteration applies a batch and ticks the
// sampler (far denser than the production 1s cadence, so this bounds the
// real overhead from above), with runtime/metrics collection disabled vs
// the serving default. scripts/obs_overhead.sh gates the paired delta at
// <5%.
func BenchmarkPipelineRuntimeSampler(b *testing.B) {
	const n = 2048
	for _, cfg := range []struct {
		name    string
		collect bool
	}{
		{"off", false},
		{"on", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			s, eng := newPipelineServer(b, 23, n, 4*n)
			s.Runtime().SetEnabled(cfg.collect)
			g := eng.Graph()
			rng := rand.New(rand.NewSource(24))
			seen := map[[2]graph.NodeID]bool{}
			var ins, del graph.Delta
			for len(ins) < 16 {
				u := graph.NodeID(rng.Intn(n))
				v := graph.NodeID(rng.Intn(n))
				if u == v || g.HasEdge(u, v) || seen[[2]graph.NodeID{u, v}] || seen[[2]graph.NodeID{v, u}] {
					continue
				}
				seen[[2]graph.NodeID{u, v}] = true
				ins = append(ins, graph.EdgeChange{U: u, V: v, Insert: true})
				del = append(del, graph.EdgeChange{U: u, V: v, Insert: false})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := ins
				if i%2 == 1 {
					d = del
				}
				if err := s.Apply(d, nil); err != nil {
					b.Fatal(err)
				}
				s.Sampler().Tick()
			}
		})
	}
}
