package server

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/tensor"
)

// newBenchEngine builds a bare engine over an RMAT graph for pipeline
// tests and benchmarks.
func newBenchEngine(t testing.TB, seed int64, nodes, edges int) *inkstream.Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := dataset.GenerateRMAT(rng, nodes, edges, dataset.DefaultRMAT)
	feats := dataset.NewFeatures(rng, nodes, 8)
	model := gnn.NewGCN(rng, 8, 16, gnn.NewAggregator(gnn.AggMax))
	eng, err := inkstream.New(model, g, feats.X, nil, inkstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// newPipelineServer builds a server without the HTTP layer, for tests that
// exercise the pipeline and snapshot API directly.
func newPipelineServer(t testing.TB, seed int64, nodes, edges int) (*Server, *inkstream.Engine) {
	t.Helper()
	eng := newBenchEngine(t, seed, nodes, edges)
	s := New(eng, nil)
	t.Cleanup(s.Close)
	return s, eng
}

// observation is one reader-side sample: the epoch a read reported and the
// row it returned for a probe node.
type observation struct {
	probe graph.NodeID
	epoch uint64
	row   tensor.Vector
}

// TestSnapshotEpochConsistencyRace runs concurrent readers against one
// sustained update stream and afterwards checks that every returned
// embedding is bit-identical to the row the published snapshot of its
// reported epoch held — i.e. readers only ever see fully published,
// immutable states, never a half-applied one. Run with -race; skipped in
// -short mode because the interleaving needs some volume to be meaningful.
func TestSnapshotEpochConsistencyRace(t *testing.T) {
	if testing.Short() {
		t.Skip("snapshot stress test skipped in -short mode")
	}
	s, eng := newPipelineServer(t, 11, 150, 600)
	const (
		readers  = 4
		updates  = 60
		probeCnt = 5
	)
	probes := make([]graph.NodeID, probeCnt)
	for i := range probes {
		probes[i] = graph.NodeID(i * 29 % 150)
	}

	// truth[epoch] is the snapshot published at that epoch. The single
	// update stream below is the only mutator, so it sees every epoch: one
	// publish per applied batch, observed right after Apply returns
	// (publish-before-ack) and before the next batch is submitted.
	truth := map[uint64]*inkstream.Snapshot{1: s.Snapshot()}
	if truth[1].Epoch != 1 {
		t.Fatalf("initial epoch %d", truth[1].Epoch)
	}

	stop := make(chan struct{})
	var obsMu sync.Mutex
	var observed []observation
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			var local []observation
			for {
				select {
				case <-stop:
					obsMu.Lock()
					observed = append(observed, local...)
					obsMu.Unlock()
					return
				default:
				}
				p := probes[rng.Intn(probeCnt)]
				row, epoch, ok := s.ReadEmbedding(int(p))
				if !ok {
					t.Errorf("reader %d: probe %d rejected", r, p)
					return
				}
				// Rows are immutable once published; keeping the reference
				// (not a copy) makes the check strict: if the engine ever
				// scribbled on a published row, the comparison would catch
				// the corruption. The sample cap bounds memory; reads keep
				// flowing (and racing) beyond it either way.
				if len(local) < 20_000 {
					local = append(local, observation{probe: p, epoch: epoch, row: row})
				}
			}
		}(r)
	}

	// The update stream: generate deltas against a shadow graph (the
	// engine's own graph is concurrently mutated by the apply stage, so it
	// cannot be read here), submit, and record the snapshot each publish
	// produced.
	shadow := eng.Graph().Clone()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < updates; i++ {
		delta := graph.RandomDelta(rng, shadow, 6)
		if err := delta.Apply(shadow); err != nil {
			t.Fatal(err)
		}
		if err := s.Apply(delta, nil); err != nil {
			t.Fatal(err)
		}
		snap := s.Snapshot()
		truth[snap.Epoch] = snap
	}
	close(stop)
	wg.Wait()

	if len(truth) != updates+1 {
		t.Fatalf("update stream saw %d epochs, want %d", len(truth), updates+1)
	}
	checked := 0
	for _, o := range observed {
		snap, ok := truth[o.epoch]
		if !ok {
			t.Fatalf("reader observed epoch %d never published", o.epoch)
		}
		if !o.row.Equal(snap.Row(int(o.probe))) {
			t.Fatalf("probe %d at epoch %d: returned row differs from the published snapshot",
				o.probe, o.epoch)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no reads completed during the update stream")
	}
	t.Logf("verified %d reads against %d epochs", checked, len(truth))
}
