package server

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gnn"
	"repro/internal/inkstream"
	"repro/internal/leakcheck"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/persist"
)

// newTieredServer builds a server whose engine publishes through a
// TieredStore with a cap far below the embedding footprint, so reads
// exercise eviction and faulting.
func newTieredServer(t *testing.T) (*httptest.Server, *Server, *persist.TieredStore) {
	t.Helper()
	leakcheck.Check(t)
	rng := rand.New(rand.NewSource(7))
	g := dataset.GenerateRMAT(rng, 200, 800, dataset.DefaultRMAT)
	feats := dataset.NewFeatures(rng, 200, 8)
	model := gnn.NewGCN(rng, 8, 16, gnn.NewAggregator(gnn.AggMax))
	var c metrics.Counters
	eng, err := inkstream.New(model, g, feats.X, &c, inkstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	faultLat := obs.NewLatencyHistogram()
	rowB := 4 * 16
	st, err := persist.NewTieredStore(persist.TieredConfig{
		Dir: t.TempDir(), Dim: 16,
		PageBytes:    4 * rowB,
		MemCap:       int64(8 * 4 * rowB), // 8 of 50 pages resident
		FaultLatency: faultLat,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetRowStore(st); err != nil {
		t.Fatal(err)
	}
	s := New(eng, &c)
	s.EnablePageCache(st.Stats, faultLat, st.Quant().String())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
		st.Close()
	})
	return ts, s, st
}

func TestPageCacheStatsAndMetrics(t *testing.T) {
	ts, s, _ := newTieredServer(t)

	// Read every node through the public read path so hits and (after the
	// cap bites) faults accumulate.
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 200; i++ {
			row, _, ok := s.ReadEmbedding(i)
			if !ok || len(row) != 16 {
				t.Fatalf("pass %d: read %d failed (ok=%v len=%d)", pass, i, ok, len(row))
			}
		}
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	stats := decode[StatsResponse](t, resp)
	if stats.PageCache == nil {
		t.Fatal("tiered server reported no page_cache section")
	}
	pc := stats.PageCache
	if pc.Hits+pc.Misses == 0 {
		t.Error("no page-cache activity recorded")
	}
	if pc.TotalPages == 0 || pc.CapBytes == 0 {
		t.Errorf("page table not reflected: pages=%d cap=%d", pc.TotalPages, pc.CapBytes)
	}
	if pc.Quant != "f32" {
		t.Errorf("quant = %q, want f32", pc.Quant)
	}
	if pc.HitRate < 0 || pc.HitRate > 1 {
		t.Errorf("hit rate %v out of range", pc.HitRate)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, fam := range []string{
		"inkstream_page_cache_hits_total",
		"inkstream_page_cache_misses_total",
		"inkstream_page_cache_evictions_total",
		"inkstream_page_cache_writebacks_total",
		"inkstream_page_cache_hot_bytes",
		"inkstream_page_fault_latency_seconds",
	} {
		if !strings.Contains(string(body), fam) {
			t.Errorf("/metrics missing family %s", fam)
		}
	}
}

func TestResidentServerHasNoPageCacheSection(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	stats := decode[StatsResponse](t, resp)
	if stats.PageCache != nil {
		t.Error("resident server exported a page_cache section")
	}
}
