package server

import (
	"net/http"

	"repro/internal/obs"
)

// Incident black box wiring (DESIGN.md §15). EnableBlackBox arms automatic
// post-mortem capture on the two incident signals a single-engine
// deployment has — a burn-rate alert transitioning to firing and a drift
// audit failure — and exposes the same snapshot on demand at
// GET /debug/bundle.

// BlackBoxInfo is the deployment-shape block written into each bundle's
// config.json; inkstat -postmortem prints it as the incident header.
type BlackBoxInfo struct {
	Deployment  string  `json:"deployment"`
	Shards      int     `json:"shards"`
	SLOMS       float64 `json:"slo_ms,omitempty"`
	SampleEvery int     `json:"trace_sample_every,omitempty"`
	Coalescing  bool    `json:"coalescing"`
}

// EnableBlackBox arms the incident black box: cfg.Dir names the dump
// directory; cfg.Source is filled in by the server (any caller-provided
// Config payload is kept). Automatic captures trigger on alert
// pending→firing and on drift-audit failure, debounced per cfg. Call before
// serving; captured bundles are read back with obs.LoadDump or
// inkstat -postmortem.
func (s *Server) EnableBlackBox(cfg obs.BlackBoxConfig) *obs.BlackBox {
	cfg.Source.Flight = s.flight
	cfg.Source.Sampler = s.sampler
	cfg.Source.Alerts = s.alerts
	cfg.Source.Runtime = s.runtime
	if cfg.Source.Config == nil {
		info := BlackBoxInfo{
			Deployment: "single-engine",
			Shards:     1,
			SLOMS:      float64(s.sloNS.Load()) / 1e6,
			Coalescing: s.coalesce.Load(),
		}
		if s.flight != nil {
			info.SampleEvery = s.flight.SampleEvery()
		}
		cfg.Source.Config = info
	}
	bb := obs.NewBlackBox(cfg)
	s.blackbox = bb
	bb.Register(s.reg)
	s.alerts.OnFiring(func(name, reason string) {
		bb.Trigger("alert-"+name, reason)
	})
	s.audit.onFailure = func(reason string) {
		bb.Trigger("audit-failure", reason)
	}
	return bb
}

// BlackBox exposes the black box (nil until EnableBlackBox).
func (s *Server) BlackBox() *obs.BlackBox { return s.blackbox }

// handleBundle serves GET /debug/bundle: an on-demand tar.gz capture of the
// full observability state.
func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	if s.blackbox == nil {
		httpError(w, http.StatusNotImplemented, "black box not enabled")
		return
	}
	s.blackbox.ServeHTTP(w, r)
}
