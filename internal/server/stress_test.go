package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"repro/internal/graph"
)

// Concurrent mixed traffic: readers and writers hammer the service at the
// same time; the lock discipline must keep every response well-formed and
// the final engine state exactly consistent. Run under -race in CI.
func TestConcurrentMixedTraffic(t *testing.T) {
	ts, eng := newTestServer(t)
	const writers, readers, opsEach = 3, 5, 15

	// Pre-generate disjoint insert batches so writers never conflict.
	rng := rand.New(rand.NewSource(33))
	batches := make([][]EdgeChangeJSON, writers)
	used := map[[2]graph.NodeID]bool{}
	for w := range batches {
		for len(batches[w]) < opsEach {
			u := graph.NodeID(rng.Intn(200))
			v := graph.NodeID(rng.Intn(200))
			k := [2]graph.NodeID{min32(u, v), max32(u, v)}
			if u == v || eng.Graph().HasEdge(u, v) || used[k] {
				continue
			}
			used[k] = true
			batches[w] = append(batches[w], EdgeChangeJSON{U: int32(u), V: int32(v), Insert: true})
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers*opsEach+readers*opsEach)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, ch := range batches[w] {
				resp := postJSONT(ts.URL+"/v1/update", UpdateRequest{Changes: []EdgeChangeJSON{ch}})
				if resp != http.StatusOK {
					errs <- fmt.Errorf("writer %d: status %d", w, resp)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				resp, err := http.Get(fmt.Sprintf("%s/v1/embedding?node=%d", ts.URL, (r*31+i)%200))
				if err != nil {
					errs <- err
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader %d: status %d", r, resp.StatusCode)
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// All writes landed and the state is exactly consistent.
	if err := eng.Verify(0); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, b := range batches {
		want += len(b)
	}
	applied := 0
	for _, b := range batches {
		for _, ch := range b {
			if eng.Graph().HasEdge(graph.NodeID(ch.U), graph.NodeID(ch.V)) {
				applied++
			}
		}
	}
	if applied != want {
		t.Errorf("applied %d of %d writes", applied, want)
	}
}

// postJSONT is a test-free variant of postJSON returning only the status.
func postJSONT(url string, body any) int {
	b, err := jsonMarshal(body)
	if err != nil {
		return -1
	}
	resp, err := http.Post(url, "application/json", b)
	if err != nil {
		return -1
	}
	resp.Body.Close()
	return resp.StatusCode
}

func min32(a, b graph.NodeID) graph.NodeID {
	if a < b {
		return a
	}
	return b
}

func max32(a, b graph.NodeID) graph.NodeID {
	if a > b {
		return a
	}
	return b
}

func jsonMarshal(v any) (io.Reader, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(b), nil
}
