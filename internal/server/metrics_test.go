package server

import (
	"bytes"
	"log"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/inkstream"
	"repro/internal/leakcheck"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/scheduler"
)

// newObsServer builds a server and returns it alongside its test listener,
// for tests that need to configure batching, journaling or slow-update
// logging before (re)mounting the handler.
func newObsServer(t *testing.T) (*Server, *inkstream.Engine) {
	t.Helper()
	leakcheck.Check(t)
	rng := rand.New(rand.NewSource(7))
	g := dataset.GenerateRMAT(rng, 150, 600, dataset.DefaultRMAT)
	feats := dataset.NewFeatures(rng, 150, 8)
	model := gnn.NewGCN(rng, 8, 16, gnn.NewAggregator(gnn.AggMax))
	var c metrics.Counters
	eng, err := inkstream.New(model, g, feats.X, &c, inkstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, &c)
	t.Cleanup(s.Close)
	return s, eng
}

// absentEdges finds n distinct edges not present in g.
func absentEdges(t *testing.T, g *graph.Graph, n int) []EdgeChangeJSON {
	t.Helper()
	var out []EdgeChangeJSON
	for u := 0; u < g.NumNodes() && len(out) < n; u++ {
		for v := u + 1; v < g.NumNodes() && len(out) < n; v++ {
			if !g.HasEdge(graph.NodeID(u), graph.NodeID(v)) {
				out = append(out, EdgeChangeJSON{U: int32(u), V: int32(v), Insert: true})
			}
		}
	}
	if len(out) < n {
		t.Fatal("graph is complete")
	}
	return out
}

func absentEdge(t *testing.T, g *graph.Graph) (int32, int32) {
	t.Helper()
	e := absentEdges(t, g, 1)[0]
	return e.U, e.V
}

func scrape(t *testing.T, url string) obs.Samples {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return samples
}

// TestMetricsExposition is the acceptance check: after one update, GET
// /metrics serves parseable Prometheus text including the update-latency
// histogram and per-condition visit counters consistent with engine state.
func TestMetricsExposition(t *testing.T) {
	srv, eng := newObsServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	u, v := absentEdge(t, eng.Graph())
	resp := postJSON(t, ts.URL+"/v1/update", UpdateRequest{
		Changes: []EdgeChangeJSON{{U: u, V: v, Insert: true}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status %d", resp.StatusCode)
	}

	samples := scrape(t, ts.URL)

	if got, ok := samples.Get("inkstream_updates_total"); !ok || got != 1 {
		t.Errorf("inkstream_updates_total = %v, %v; want 1", got, ok)
	}
	// Latency histogram: buckets cumulative and monotone, +Inf == _count ==
	// updates, _sum present and positive.
	les, cum := samples.Buckets("inkstream_update_latency_seconds")
	if len(les) == 0 {
		t.Fatal("no inkstream_update_latency_seconds buckets")
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("bucket counts not monotone at %d: %v", i, cum)
		}
	}
	if !math.IsInf(les[len(les)-1], 1) {
		t.Fatalf("last bucket le=%v, want +Inf", les[len(les)-1])
	}
	count, ok := samples.Get("inkstream_update_latency_seconds_count")
	if !ok || count != 1 || cum[len(cum)-1] != count {
		t.Errorf("latency _count=%v (+Inf bucket %v), want 1", count, cum[len(cum)-1])
	}
	if sum, ok := samples.Get("inkstream_update_latency_seconds_sum"); !ok || sum <= 0 {
		t.Errorf("latency _sum = %v, %v", sum, ok)
	}
	// Per-condition counters must reconcile with the engine's stats.
	st := eng.Stats()
	var visits float64
	for _, s := range samples.Family("inkstream_node_visits_total") {
		if s.Labels["condition"] == "" {
			t.Errorf("node visit sample missing condition label: %+v", s)
		}
		visits += s.Value
	}
	if want := float64(st.Total()); visits != want {
		t.Errorf("node visits sum = %v, engine total %v", visits, want)
	}
	if got, _ := samples.Get("inkstream_node_visits_total", "condition", inkstream.CondNoReset.String()); got != float64(st.Counts[inkstream.CondNoReset]) {
		t.Errorf("no-reset visits = %v, engine %d", got, st.Counts[inkstream.CondNoReset])
	}
	// Graph gauges and work counters.
	if got, _ := samples.Get("inkstream_graph_edges"); got != float64(eng.Graph().NumEdges()) {
		t.Errorf("graph edges gauge = %v, want %d", got, eng.Graph().NumEdges())
	}
	if got, ok := samples.Get("inkstream_bytes_fetched_total"); !ok || got <= 0 {
		t.Errorf("bytes fetched = %v, %v", got, ok)
	}
	// Batch-size histogram saw the one-change batch.
	if got, _ := samples.Get("inkstream_update_batch_size_count"); got != 1 {
		t.Errorf("batch size _count = %v, want 1", got)
	}
	// Snapshot pipeline metrics: the bootstrap snapshot is epoch 1, the
	// applied batch published epoch 2, and nothing is in flight when the
	// scrape runs (publish-before-ack).
	if got, ok := samples.Get("inkstream_snapshot_epoch"); !ok || got != 2 {
		t.Errorf("snapshot epoch = %v, %v; want 2", got, ok)
	}
	if got, ok := samples.Get("inkstream_snapshot_lag_batches"); !ok || got != 0 {
		t.Errorf("snapshot lag = %v, %v; want 0", got, ok)
	}
	if got, ok := samples.Get("inkstream_reads_total"); !ok || got != 0 {
		t.Errorf("reads total = %v, %v; want 0", got, ok)
	}
	// No journal configured: the group-commit histogram exists but is
	// empty.
	if got, ok := samples.Get("inkstream_group_commit_batch_size_count"); !ok || got != 0 {
		t.Errorf("group commit _count = %v, %v; want 0", got, ok)
	}
}

// TestMetricsSchedulerAndWAL covers the queue-depth gauges, flush-reason
// counters and WAL append-latency histogram.
func TestMetricsSchedulerAndWAL(t *testing.T) {
	srv, eng := newObsServer(t)
	if err := srv.EnableBatching(scheduler.Policy{MaxBatch: 3}); err != nil {
		t.Fatal(err)
	}
	wal, err := persist.OpenWAL(filepath.Join(t.TempDir(), "wal.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	srv.SetJournal(wal)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	edges := absentEdges(t, eng.Graph(), 3)
	for _, e := range edges[:2] {
		resp := postJSON(t, ts.URL+"/v1/submit", e)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
	}
	samples := scrape(t, ts.URL)
	if got, _ := samples.Get("inkstream_scheduler_pending"); got != 2 {
		t.Errorf("scheduler pending = %v, want 2", got)
	}
	if got, _ := samples.Get("inkstream_scheduler_submitted_total"); got != 2 {
		t.Errorf("scheduler submitted = %v, want 2", got)
	}
	// No flush yet → WAL untouched.
	if got, _ := samples.Get("inkstream_wal_append_latency_seconds_count"); got != 0 {
		t.Errorf("wal appends before flush = %v", got)
	}

	// Third submit hits MaxBatch: size-flush through journal + engine.
	resp := postJSON(t, ts.URL+"/v1/submit", edges[2])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	samples = scrape(t, ts.URL)
	if got, _ := samples.Get("inkstream_scheduler_pending"); got != 0 {
		t.Errorf("pending after flush = %v", got)
	}
	if got, _ := samples.Get("inkstream_scheduler_pending_max"); got != 3 {
		t.Errorf("pending max = %v, want 3", got)
	}
	if got, _ := samples.Get("inkstream_scheduler_flushes_total", "reason", "size"); got != 1 {
		t.Errorf("size flushes = %v, want 1", got)
	}
	if got, _ := samples.Get("inkstream_scheduler_flushes_total", "reason", "staleness"); got != 0 {
		t.Errorf("staleness flushes = %v, want 0", got)
	}
	if got, _ := samples.Get("inkstream_wal_append_latency_seconds_count"); got != 1 {
		t.Errorf("wal appends after flush = %v, want 1", got)
	}
	// The flushed batch rode one group commit covering one journaled
	// request.
	if got, _ := samples.Get("inkstream_group_commit_batch_size_count"); got != 1 {
		t.Errorf("group commits after flush = %v, want 1", got)
	}
	if got, _ := samples.Get("inkstream_group_commit_batch_size_sum"); got != 1 {
		t.Errorf("group commit batch sum = %v, want 1", got)
	}
	if got, _ := samples.Get("inkstream_wal_append_latency_seconds_sum"); got <= 0 {
		t.Errorf("wal append latency sum = %v", got)
	}
}

// TestStatsPendingAndLatency checks the /v1/stats additions: scheduler
// queue depth and latency quantiles.
func TestStatsPendingAndLatency(t *testing.T) {
	srv, eng := newObsServer(t)
	if err := srv.EnableBatching(scheduler.Policy{MaxBatch: 100}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	edges := absentEdges(t, eng.Graph(), 2)
	// One direct update (records latency) and one buffered submit.
	postJSON(t, ts.URL+"/v1/update", UpdateRequest{Changes: edges[:1]})
	postJSON(t, ts.URL+"/v1/submit", edges[1])

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	stats := decode[StatsResponse](t, resp)
	if stats.Pending != 1 {
		t.Errorf("stats pending = %d, want 1", stats.Pending)
	}
	if stats.MaxPending != 1 {
		t.Errorf("stats max pending = %d, want 1", stats.MaxPending)
	}
	if stats.UpdateLatency.P50 <= 0 || stats.UpdateLatency.Max <= 0 {
		t.Errorf("latency quantiles missing: %+v", stats.UpdateLatency)
	}
	if stats.UpdateLatency.P50 > stats.UpdateLatency.P99 {
		t.Errorf("p50 %v > p99 %v", stats.UpdateLatency.P50, stats.UpdateLatency.P99)
	}
	if len(stats.Conditions) == 0 {
		t.Error("stats conditions empty after an update")
	}
}

// TestSlowUpdateLog: a nanosecond threshold marks every update slow and
// logs its trace.
func TestSlowUpdateLog(t *testing.T) {
	srv, eng := newObsServer(t)
	var buf bytes.Buffer
	srv.EnableSlowUpdateLog(time.Nanosecond, false, log.New(&buf, "", 0))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	u, v := absentEdge(t, eng.Graph())
	postJSON(t, ts.URL+"/v1/update", UpdateRequest{
		Changes: []EdgeChangeJSON{{U: u, V: v, Insert: true}},
	})
	out := buf.String()
	if !strings.Contains(out, "slow update") || !strings.Contains(out, "dG=1") {
		t.Errorf("slow-update log missing trace: %q", out)
	}
	samples := scrape(t, ts.URL)
	if got, _ := samples.Get("inkstream_slow_updates_total"); got != 1 {
		t.Errorf("slow updates counter = %v, want 1", got)
	}
}
