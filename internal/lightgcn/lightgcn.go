// Package lightgcn implements incremental inference for LightGCN — the
// weighted-sum aggregation case the paper's expressiveness discussion
// calls out: "Aggregation with weighted sum can also be supported once
// only graph topology information is used for the weights, like
// LightGCN".
//
// LightGCN propagates embeddings with symmetric-normalised weighted sums
// and no per-layer transform or activation:
//
//	h_{l+1,u} = Σ_{v∈N(u)} h_{l,v} / √(d_u·d_v)
//	out_u     = mean(h_{0,u}, …, h_{K,u})
//
// Because the weights depend on the endpoint degrees, an edge change
// re-weights *every* edge incident to its endpoints. The incremental
// engine handles this by factoring the weight: with the scaled message
// m̃_{l,v} = h_{l,v}/√d_v and the running sum S_{l,u} = Σ m̃_{l,v},
// the layer output is h_{l+1,u} = S_{l,u}/√d_u. A degree change at v then
// reduces to an ordinary message change (m̃ is recomputed and the deltas
// propagate as events), and a degree change at u to a rescale of the
// cached S — the same cancel-old/add-new event discipline as the core
// engine, specialised to the fully reversible weighted sum.
package lightgcn

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// Engine maintains LightGCN embeddings over a dynamic graph.
type Engine struct {
	g *graph.Graph
	k int
	c *metrics.Counters

	// H[l] is the layer-l embedding (H[0] = input features); S[l] the
	// cached running weighted sums feeding H[l+1]; out the layer-combined
	// output.
	h   []*tensor.Matrix
	s   []*tensor.Matrix
	out *tensor.Matrix
}

// New bootstraps an engine with a full propagation over g. The graph is
// used (and mutated by Update) by reference.
func New(g *graph.Graph, x *tensor.Matrix, layers int, c *metrics.Counters) (*Engine, error) {
	if layers < 1 {
		return nil, fmt.Errorf("lightgcn: layers %d < 1", layers)
	}
	if x.Rows != g.NumNodes() {
		return nil, fmt.Errorf("lightgcn: features for %d nodes, graph has %d", x.Rows, g.NumNodes())
	}
	e := &Engine{g: g, k: layers, c: c}
	n := g.NumNodes()
	d := x.Cols
	e.h = make([]*tensor.Matrix, layers+1)
	e.s = make([]*tensor.Matrix, layers)
	e.h[0] = x.Clone()
	for l := 0; l < layers; l++ {
		e.h[l+1] = tensor.NewMatrix(n, d)
		e.s[l] = tensor.NewMatrix(n, d)
	}
	e.out = tensor.NewMatrix(n, d)
	e.fullPropagate()
	return e, nil
}

// Graph exposes the maintained graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Layers returns K, the propagation depth.
func (e *Engine) Layers() int { return e.k }

// Output returns the maintained layer-combined embeddings.
func (e *Engine) Output() *tensor.Matrix { return e.out }

// Layer returns the maintained layer-l embedding matrix (l in [0, K]).
func (e *Engine) Layer(l int) *tensor.Matrix { return e.h[l] }

func invSqrtDeg(deg int) float32 {
	if deg <= 0 {
		return 0
	}
	return float32(1 / math.Sqrt(float64(deg)))
}

// fullPropagate recomputes every layer and the combined output from
// scratch.
func (e *Engine) fullPropagate() {
	n := e.g.NumNodes()
	inv := make([]float32, n)
	for u := 0; u < n; u++ {
		inv[u] = invSqrtDeg(e.g.InDegree(graph.NodeID(u)))
	}
	dim := e.h[0].Cols
	for l := 0; l < e.k; l++ {
		hl, sl, hn := e.h[l], e.s[l], e.h[l+1]
		tensor.ParallelFor(n, func(lo, hi int) {
			scaled := make(tensor.Vector, dim)
			for u := lo; u < hi; u++ {
				dst := sl.Row(u)
				for i := range dst {
					dst[i] = 0
				}
				for _, v := range e.g.InNeighbors(graph.NodeID(u)) {
					tensor.Scale(scaled, inv[v], hl.Row(int(v)))
					tensor.Add(dst, dst, scaled)
				}
				tensor.Scale(hn.Row(u), inv[u], dst)
				e.c.FetchVec(dim * e.g.InDegree(graph.NodeID(u)))
				e.c.AddFLOPs(int64(2 * dim * e.g.InDegree(graph.NodeID(u))))
				e.c.VisitNode()
			}
		})
	}
	e.recombine(nil)
}

// recombine refreshes the combined output; nodes == nil means all nodes.
func (e *Engine) recombine(nodes []graph.NodeID) {
	dim := e.out.Cols
	scale := 1 / float32(e.k+1)
	combineRow := func(u int) {
		dst := e.out.Row(u)
		for i := range dst {
			dst[i] = 0
		}
		for l := 0; l <= e.k; l++ {
			tensor.Add(dst, dst, e.h[l].Row(u))
		}
		tensor.Scale(dst, scale, dst)
		e.c.StoreVec(dim)
	}
	if nodes == nil {
		tensor.ParallelFor(e.out.Rows, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				combineRow(u)
			}
		})
		return
	}
	for _, u := range nodes {
		combineRow(int(u))
	}
}

// Update applies one ΔG batch and incrementally refreshes all cached
// layers and the combined output. On validation error nothing is mutated.
func (e *Engine) Update(delta graph.Delta) error {
	if err := delta.Validate(e.g); err != nil {
		return err
	}
	// Previous in-degrees of every node whose degree changes.
	degOld := map[graph.NodeID]int{}
	record := func(u graph.NodeID) {
		if _, ok := degOld[u]; !ok {
			degOld[u] = e.g.InDegree(u)
		}
	}
	inserted := map[[2]graph.NodeID]struct{}{}
	for _, ch := range delta {
		arcs := [][2]graph.NodeID{{ch.U, ch.V}}
		if e.g.Undirected {
			arcs = append(arcs, [2]graph.NodeID{ch.V, ch.U})
		}
		for _, a := range arcs {
			record(a[1])
			if ch.Insert {
				inserted[a] = struct{}{}
			}
		}
	}
	if err := delta.Apply(e.g); err != nil {
		return err
	}

	// changed[u] tracks whether H_l[u] differs from the previous
	// timestamp at the layer currently being processed; oldH keeps the
	// previous rows of exactly those nodes. Degree-changed nodes have a
	// changed scaled message even at layer 0.
	changed := map[graph.NodeID]bool{}
	oldH := map[graph.NodeID]tensor.Vector{}
	dirtyOut := map[graph.NodeID]struct{}{}

	for l := 0; l < e.k; l++ {
		changed, oldH = e.updateLayer(l, delta, inserted, degOld, changed, oldH)
		for u := range changed {
			dirtyOut[u] = struct{}{}
		}
	}
	outNodes := make([]graph.NodeID, 0, len(dirtyOut))
	for u := range dirtyOut {
		outNodes = append(outNodes, u)
	}
	sort.Slice(outNodes, func(i, j int) bool { return outNodes[i] < outNodes[j] })
	e.recombine(outNodes)
	return nil
}

// updateLayer processes layer l: it turns message changes (embedding
// changes from the previous layer, degree changes, and the changed edges
// themselves) into S-sum deltas, applies them, and rescales outputs.
// Returns the set of nodes whose H_{l+1} changed together with their old
// rows.
func (e *Engine) updateLayer(l int, delta graph.Delta, inserted map[[2]graph.NodeID]struct{}, degOld map[graph.NodeID]int, changed map[graph.NodeID]bool, oldH map[graph.NodeID]tensor.Vector) (map[graph.NodeID]bool, map[graph.NodeID]tensor.Vector) {
	dim := e.h[0].Cols
	hl := e.h[l]

	oldScaled := func(u graph.NodeID) tensor.Vector {
		row := hl.Row(int(u))
		if prev, ok := oldH[u]; ok {
			row = prev
		}
		d := e.g.InDegree(u)
		if prev, ok := degOld[u]; ok {
			d = prev
		}
		out := make(tensor.Vector, dim)
		tensor.Scale(out, invSqrtDeg(d), row)
		return out
	}
	newScaled := func(u graph.NodeID) tensor.Vector {
		out := make(tensor.Vector, dim)
		tensor.Scale(out, invSqrtDeg(e.g.InDegree(u)), hl.Row(int(u)))
		return out
	}

	// Sources whose scaled message m̃_l changed: embedding-changed nodes
	// plus degree-changed nodes.
	sources := map[graph.NodeID]struct{}{}
	for u := range changed {
		sources[u] = struct{}{}
	}
	for u := range degOld {
		sources[u] = struct{}{}
	}

	// Accumulate S deltas per target.
	acc := map[graph.NodeID]tensor.Vector{}
	addDelta := func(target graph.NodeID, v tensor.Vector, sign float32) {
		dst, ok := acc[target]
		if !ok {
			dst = make(tensor.Vector, dim)
			acc[target] = dst
		}
		tensor.Axpy(dst, sign, v)
		e.c.FetchVec(dim)
	}

	for u := range sources {
		oldM := oldScaled(u)
		newM := newScaled(u)
		if oldM.Equal(newM) {
			continue
		}
		diff := make(tensor.Vector, dim)
		tensor.Sub(diff, newM, oldM)
		for _, v := range e.g.OutNeighbors(u) {
			if _, skip := inserted[[2]graph.NodeID{u, v}]; skip {
				continue
			}
			addDelta(v, diff, 1)
		}
	}
	// Changed edges: cancel the old scaled message over removed arcs, add
	// the new one over inserted arcs.
	for _, ch := range delta {
		arcs := [][2]graph.NodeID{{ch.U, ch.V}}
		if e.g.Undirected {
			arcs = append(arcs, [2]graph.NodeID{ch.V, ch.U})
		}
		for _, a := range arcs {
			if ch.Insert {
				addDelta(a[1], newScaled(a[0]), 1)
			} else {
				addDelta(a[1], oldScaled(a[0]), -1)
			}
		}
	}

	// Targets: nodes with S deltas, plus degree-changed nodes (their
	// output rescales even with an unchanged S).
	targets := map[graph.NodeID]struct{}{}
	for u := range acc {
		targets[u] = struct{}{}
	}
	for u := range degOld {
		targets[u] = struct{}{}
	}

	nextChanged := map[graph.NodeID]bool{}
	nextOld := map[graph.NodeID]tensor.Vector{}
	hn := e.h[l+1]
	for u := range targets {
		if d, ok := acc[u]; ok {
			tensor.Add(e.s[l].Row(int(u)), e.s[l].Row(int(u)), d)
			e.c.StoreVec(dim)
		}
		row := hn.Row(int(u))
		prev := row.Clone()
		tensor.Scale(row, invSqrtDeg(e.g.InDegree(u)), e.s[l].Row(int(u)))
		e.c.VisitNode()
		if !prev.Equal(row) {
			nextChanged[u] = true
			nextOld[u] = prev
		}
	}
	return nextChanged, nextOld
}

// UpdateVertex replaces node u's input features and propagates the change.
func (e *Engine) UpdateVertex(u graph.NodeID, x tensor.Vector) error {
	if int(u) < 0 || int(u) >= e.g.NumNodes() {
		return fmt.Errorf("lightgcn: %w (%d)", graph.ErrBadNode, u)
	}
	if len(x) != e.h[0].Cols {
		return fmt.Errorf("lightgcn: feature dim %d, engine wants %d", len(x), e.h[0].Cols)
	}
	prev := e.h[0].Row(int(u)).Clone()
	e.h[0].SetRow(int(u), x)
	if prev.Equal(x) {
		return nil
	}
	changed := map[graph.NodeID]bool{u: true}
	oldH := map[graph.NodeID]tensor.Vector{u: prev}
	dirty := map[graph.NodeID]struct{}{u: {}}
	for l := 0; l < e.k; l++ {
		changed, oldH = e.updateLayer(l, nil, nil, nil, changed, oldH)
		for w := range changed {
			dirty[w] = struct{}{}
		}
	}
	nodes := make([]graph.NodeID, 0, len(dirty))
	for w := range dirty {
		nodes = append(nodes, w)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	e.recombine(nodes)
	return nil
}
