package lightgcn_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/lightgcn"
	"repro/internal/tensor"
)

// A tiny user–item graph: embeddings propagate with 1/√(dᵤ·dᵥ) weights and
// new interactions update them incrementally — including the re-weighting
// of every edge at an endpoint whose degree changed.
func ExampleEngine() {
	g := graph.NewUndirected(4) // users 0,1; items 2,3
	for _, e := range [][2]graph.NodeID{{0, 2}, {1, 2}, {1, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	x := tensor.FromRows([][]float32{{1, 0}, {0, 1}, {1, 1}, {0, 2}})
	e, err := lightgcn.New(g, x, 2, nil)
	if err != nil {
		panic(err)
	}
	// User 0 interacts with item 3: d(0) and d(3) change, re-weighting
	// all of their incident edges.
	if err := e.Update(graph.Delta{{U: 0, V: 3, Insert: true}}); err != nil {
		panic(err)
	}
	fmt.Println("edges:", e.Graph().NumEdges())
	fmt.Printf("user 0 embedding dim: %d\n", len(e.Output().Row(0)))
	// Output:
	// edges: 4
	// user 0 embedding dim: 2
}
