package lightgcn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

func randomGraph(rng *rand.Rand, n, edges int) *graph.Graph {
	g := graph.NewUndirected(n)
	for g.NumEdges() < edges {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	return g
}

// reference computes LightGCN propagation from scratch.
func reference(g *graph.Graph, x *tensor.Matrix, k int) (layers []*tensor.Matrix, out *tensor.Matrix) {
	n := g.NumNodes()
	inv := make([]float32, n)
	for u := 0; u < n; u++ {
		d := g.InDegree(graph.NodeID(u))
		if d > 0 {
			inv[u] = float32(1 / math.Sqrt(float64(d)))
		}
	}
	layers = []*tensor.Matrix{x.Clone()}
	cur := layers[0]
	for l := 0; l < k; l++ {
		next := tensor.NewMatrix(n, x.Cols)
		for u := 0; u < n; u++ {
			dst := next.Row(u)
			for _, v := range g.InNeighbors(graph.NodeID(u)) {
				tensor.Axpy(dst, inv[v], cur.Row(int(v)))
			}
			tensor.Scale(dst, inv[u], dst)
		}
		layers = append(layers, next)
		cur = next
	}
	out = tensor.NewMatrix(n, x.Cols)
	for u := 0; u < n; u++ {
		dst := out.Row(u)
		for _, m := range layers {
			tensor.Add(dst, dst, m.Row(u))
		}
		tensor.Scale(dst, 1/float32(k+1), dst)
	}
	return layers, out
}

func TestBootstrapMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 40, 120)
	x := tensor.RandMatrix(rng, 40, 6, 1)
	e, err := New(g, x, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	layers, out := reference(g, x, 3)
	for l := 0; l <= 3; l++ {
		if !e.Layer(l).ApproxEqual(layers[l], 1e-5) {
			t.Fatalf("layer %d diverged (max diff %g)", l, e.Layer(l).MaxAbsDiff(layers[l]))
		}
	}
	if !e.Output().ApproxEqual(out, 1e-5) {
		t.Fatalf("output diverged (max diff %g)", e.Output().MaxAbsDiff(out))
	}
	if e.Layers() != 3 {
		t.Error("Layers accessor")
	}
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 10, 20)
	x := tensor.RandMatrix(rng, 10, 4, 1)
	if _, err := New(g, x, 0, nil); err == nil {
		t.Error("layers=0 accepted")
	}
	if _, err := New(g, tensor.NewMatrix(9, 4), 2, nil); err == nil {
		t.Error("row mismatch accepted")
	}
}

// Headline property: incremental updates equal full recomputation — the
// weighted-sum case of the paper's expressiveness claim.
func TestUpdateEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 60, 180)
	x := tensor.RandMatrix(rng, 60, 5, 1)
	var c metrics.Counters
	e, err := New(g, x, 3, &c)
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 4; batch++ {
		delta := graph.RandomDelta(rng, e.Graph(), 10)
		if err := e.Update(delta); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		layers, out := reference(e.Graph(), x, 3)
		for l := 0; l <= 3; l++ {
			if !e.Layer(l).ApproxEqual(layers[l], 2e-3) {
				t.Fatalf("batch %d layer %d diverged (max diff %g)",
					batch, l, e.Layer(l).MaxAbsDiff(layers[l]))
			}
		}
		if !e.Output().ApproxEqual(out, 2e-3) {
			t.Fatalf("batch %d output diverged (max diff %g)", batch, e.Output().MaxAbsDiff(out))
		}
	}
	if c.Snapshot().NodesVisited == 0 {
		t.Error("counters not populated")
	}
}

// Degree re-weighting is the hard part: inserting an edge at a hub must
// re-weight every message the hub sends.
func TestUpdateReweightsHub(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Star around node 0 plus a few satellite edges.
	g := graph.NewUndirected(8)
	for i := graph.NodeID(1); i < 7; i++ {
		if err := g.AddEdge(0, i); err != nil {
			t.Fatal(err)
		}
	}
	x := tensor.RandMatrix(rng, 8, 3, 1)
	e, err := New(g, x, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Connect node 7 to the hub: d_0 goes 6 -> 7, changing the weight of
	// every (0, i) edge.
	if err := e.Update(graph.Delta{{U: 0, V: 7, Insert: true}}); err != nil {
		t.Fatal(err)
	}
	_, out := reference(e.Graph(), x, 2)
	if !e.Output().ApproxEqual(out, 1e-4) {
		t.Fatalf("hub reweighting diverged (max diff %g)", e.Output().MaxAbsDiff(out))
	}
}

func TestUpdateIsolatesNode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.NewUndirected(5)
	for _, ed := range [][2]graph.NodeID{{0, 1}, {0, 2}, {1, 2}, {3, 4}} {
		if err := g.AddEdge(ed[0], ed[1]); err != nil {
			t.Fatal(err)
		}
	}
	x := tensor.RandMatrix(rng, 5, 3, 1)
	e, err := New(g, x, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Update(graph.Delta{{U: 0, V: 1}, {U: 0, V: 2}}); err != nil {
		t.Fatal(err)
	}
	_, out := reference(e.Graph(), x, 2)
	if !e.Output().ApproxEqual(out, 1e-4) {
		t.Fatalf("isolation diverged (max diff %g)", e.Output().MaxAbsDiff(out))
	}
	// An isolated node's propagated layers are zero; its output is its
	// own features averaged with zeros.
	want := x.Row(0).Clone()
	tensor.Scale(want, 1.0/3, want)
	if !e.Output().Row(0).ApproxEqual(want, 1e-4) {
		t.Errorf("isolated output %v, want %v", e.Output().Row(0), want)
	}
}

func TestUpdateRejectsInvalidDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 20, 40)
	x := tensor.RandMatrix(rng, 20, 4, 1)
	e, err := New(g, x, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Output().Clone()
	if err := e.Update(graph.Delta{{U: 3, V: 3, Insert: true}}); err == nil {
		t.Fatal("self-loop accepted")
	}
	if !e.Output().Equal(before) {
		t.Error("failed update mutated output")
	}
}

func TestUpdateVertex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 30, 90)
	x := tensor.RandMatrix(rng, 30, 4, 1)
	e, err := New(g, x, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	feat := tensor.RandVector(rng, 4, 1)
	if err := e.UpdateVertex(5, feat); err != nil {
		t.Fatal(err)
	}
	x2 := x.Clone()
	x2.SetRow(5, feat)
	_, out := reference(e.Graph(), x2, 3)
	if !e.Output().ApproxEqual(out, 1e-3) {
		t.Fatalf("vertex update diverged (max diff %g)", e.Output().MaxAbsDiff(out))
	}
	// Validation.
	if err := e.UpdateVertex(99, feat); err == nil {
		t.Error("bad node accepted")
	}
	if err := e.UpdateVertex(1, tensor.NewVector(3)); err == nil {
		t.Error("bad dim accepted")
	}
	// No-op update (same features) is accepted and changes nothing.
	before := e.Output().Clone()
	if err := e.UpdateVertex(5, feat.Clone()); err != nil {
		t.Fatal(err)
	}
	if !e.Output().Equal(before) {
		t.Error("no-op vertex update changed output")
	}
}

// Property: random graphs × random deltas stay equivalent.
func TestQuickEquivalence(t *testing.T) {
	f := func(seed int64, k8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(k8)%3
		g := randomGraph(rng, 30, 80)
		x := tensor.RandMatrix(rng, 30, 4, 1)
		e, err := New(g, x, k, nil)
		if err != nil {
			return false
		}
		for b := 0; b < 2; b++ {
			if err := e.Update(graph.RandomDelta(rng, e.Graph(), 6)); err != nil {
				return false
			}
		}
		_, out := reference(e.Graph(), x, k)
		return e.Output().ApproxEqual(out, 5e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
