package gnn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestAggKindString(t *testing.T) {
	for kind, want := range map[AggKind]string{AggMax: "max", AggMin: "min", AggMean: "mean", AggSum: "sum"} {
		if kind.String() != want {
			t.Errorf("%d.String() = %q", int(kind), kind.String())
		}
		parsed, err := ParseAggKind(want)
		if err != nil || parsed != kind {
			t.Errorf("ParseAggKind(%q) = %v, %v", want, parsed, err)
		}
	}
	if _, err := ParseAggKind("median"); err == nil {
		t.Error("unsupported aggregation must be rejected")
	}
}

func TestAggregatorTaxonomy(t *testing.T) {
	for _, kind := range []AggKind{AggMax, AggMin} {
		if !NewAggregator(kind).Monotonic() {
			t.Errorf("%v must be monotonic", kind)
		}
	}
	for _, kind := range []AggKind{AggMean, AggSum} {
		if NewAggregator(kind).Monotonic() {
			t.Errorf("%v must be accumulative", kind)
		}
	}
}

func TestAggregateKnownValues(t *testing.T) {
	msgs := []tensor.Vector{{1, 5}, {3, 2}, {2, 2}}
	cases := []struct {
		kind AggKind
		want tensor.Vector
	}{
		{AggMax, tensor.Vector{3, 5}},
		{AggMin, tensor.Vector{1, 2}},
		{AggSum, tensor.Vector{6, 9}},
		{AggMean, tensor.Vector{2, 3}},
	}
	for _, c := range cases {
		dst := tensor.NewVector(2)
		Aggregate(NewAggregator(c.kind), dst, msgs)
		if !dst.Equal(c.want) {
			t.Errorf("%v: got %v want %v", c.kind, dst, c.want)
		}
	}
}

func TestAggregateEmptyNeighborhoodIsZero(t *testing.T) {
	for _, kind := range []AggKind{AggMax, AggMin, AggMean, AggSum} {
		dst := tensor.Vector{9, 9, 9}
		Aggregate(NewAggregator(kind), dst, nil)
		if !dst.Equal(tensor.Vector{0, 0, 0}) {
			t.Errorf("%v over empty neighborhood = %v, want zeros", kind, dst)
		}
	}
}

func TestMeanSingleMessage(t *testing.T) {
	dst := tensor.NewVector(2)
	Aggregate(NewAggregator(AggMean), dst, []tensor.Vector{{4, -2}})
	if !dst.Equal(tensor.Vector{4, -2}) {
		t.Errorf("mean of one = %v", dst)
	}
}

// Property: max/min aggregation is invariant under message permutation and
// equals the element-wise extremum.
func TestQuickMonotonicOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(6)
		n := 1 + rng.Intn(8)
		msgs := make([]tensor.Vector, n)
		for i := range msgs {
			msgs[i] = tensor.RandVector(rng, dim, 10)
		}
		for _, kind := range []AggKind{AggMax, AggMin} {
			a := NewAggregator(kind)
			fwd := tensor.NewVector(dim)
			Aggregate(a, fwd, msgs)
			shuffled := append([]tensor.Vector(nil), msgs...)
			rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			rev := tensor.NewVector(dim)
			Aggregate(a, rev, shuffled)
			if !fwd.Equal(rev) {
				return false
			}
			// Result must be one of the inputs per channel.
			for c := 0; c < dim; c++ {
				found := false
				for _, m := range msgs {
					if m[c] == fwd[c] {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property (reversibility, Sec. II "Expressiveness" condition 2): for
// accumulative aggregators, removing one message's contribution via the
// inverse operation recovers aggregation over the remaining set exactly
// (up to fp tolerance).
func TestQuickAccumulativeReversible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(5)
		n := 2 + rng.Intn(6)
		msgs := make([]tensor.Vector, n)
		for i := range msgs {
			msgs[i] = tensor.RandVector(rng, dim, 5)
		}
		drop := rng.Intn(n)
		rest := make([]tensor.Vector, 0, n-1)
		for i, m := range msgs {
			if i != drop {
				rest = append(rest, m)
			}
		}
		// Sum: y* = y - x.
		full := tensor.NewVector(dim)
		Aggregate(NewAggregator(AggSum), full, msgs)
		tensor.Sub(full, full, msgs[drop])
		want := tensor.NewVector(dim)
		Aggregate(NewAggregator(AggSum), want, rest)
		if !full.ApproxEqual(want, 1e-4) {
			return false
		}
		// Mean: y* = (n·y - x)/(n-1).
		mfull := tensor.NewVector(dim)
		Aggregate(NewAggregator(AggMean), mfull, msgs)
		tensor.Scale(mfull, float32(n), mfull)
		tensor.Sub(mfull, mfull, msgs[drop])
		tensor.Scale(mfull, 1/float32(n-1), mfull)
		mwant := tensor.NewVector(dim)
		Aggregate(NewAggregator(AggMean), mwant, rest)
		return mfull.ApproxEqual(mwant, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property (partial reversibility of monotonic aggregators): when the
// removed message does not attain the extremum in any channel, the
// aggregate is unchanged — the foundation of the "no reset" condition.
func TestQuickMonotonicPartialReversibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(5)
		n := 2 + rng.Intn(6)
		msgs := make([]tensor.Vector, n)
		for i := range msgs {
			msgs[i] = tensor.RandVector(rng, dim, 5)
		}
		a := NewAggregator(AggMax)
		full := tensor.NewVector(dim)
		Aggregate(a, full, msgs)
		drop := rng.Intn(n)
		dominated := true
		for c := 0; c < dim; c++ {
			if msgs[drop][c] == full[c] {
				dominated = false
				break
			}
		}
		if !dominated {
			return true // vacuous trial
		}
		rest := make([]tensor.Vector, 0, n-1)
		for i, m := range msgs {
			if i != drop {
				rest = append(rest, m)
			}
		}
		want := tensor.NewVector(dim)
		Aggregate(a, want, rest)
		return want.Equal(full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
