package gnn

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// lineGraph builds 0 - 1 - 2 - ... - (n-1), undirected.
func lineGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.NewUndirected(n)
	for i := 0; i < n-1; i++ {
		if err := g.AddEdge(graph.NodeID(i), graph.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func testModels(rng *rand.Rand, featLen int, kind AggKind) []*Model {
	return []*Model{
		NewGCN(rng, featLen, 8, NewAggregator(kind)),
		NewSAGE(rng, featLen, 8, NewAggregator(kind)),
		NewGIN(rng, featLen, 8, 3, NewAggregator(kind)),
	}
}

func TestModelValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range testModels(rng, 6, AggMax) {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	bad := &Model{Name: "bad", Layers: []Layer{
		NewGCNLayer(rng, "a", 4, 8, NewAggregator(AggSum), ActReLU),
		NewGCNLayer(rng, "b", 9, 8, NewAggregator(AggSum), ActReLU),
	}}
	if err := bad.Validate(); err == nil {
		t.Error("dimension mismatch must fail validation")
	}
	if err := (&Model{Name: "empty"}).Validate(); err == nil {
		t.Error("empty model must fail validation")
	}
}

func TestModelDims(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewGIN(rng, 12, 8, 5, NewAggregator(AggSum))
	if m.NumLayers() != 5 || m.InDim() != 12 || m.OutDim() != 8 {
		t.Errorf("dims: k=%d in=%d out=%d", m.NumLayers(), m.InDim(), m.OutDim())
	}
}

// Hand-checkable: 3-node path, GCN with sum aggregation, identity-ish
// weights.
func TestInferTinyGCNSum(t *testing.T) {
	g := lineGraph(t, 3)
	rng := rand.New(rand.NewSource(3))
	layer := NewGCNLayer(rng, "l0", 2, 2, NewAggregator(AggSum), ActIdentity)
	// Identity weights, zero bias: m = h.
	layer.W = tensor.FromRows([][]float32{{1, 0}, {0, 1}})
	layer.B = tensor.Vector{0, 0}
	model := &Model{Name: "tiny", Layers: []Layer{layer}}
	x := tensor.FromRows([][]float32{{1, 0}, {0, 1}, {2, 2}})
	s, err := Infer(model, g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	// α[0] = x[1]; α[1] = x[0]+x[2]; α[2] = x[1].
	want := tensor.FromRows([][]float32{{0, 1}, {3, 2}, {0, 1}})
	if !s.Output().Equal(want) {
		t.Errorf("output = %v, want %v", s.Output(), want)
	}
	if !s.M[0].Equal(x) {
		t.Error("messages should equal inputs under identity weights")
	}
}

func TestInferShapesAndCheckpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := lineGraph(t, 10)
	x := tensor.RandMatrix(rng, 10, 6, 1)
	for _, m := range testModels(rng, 6, AggMean) {
		s, err := Infer(m, g, x, nil)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if len(s.H) != m.NumLayers()+1 || len(s.M) != m.NumLayers() {
			t.Fatalf("%s: checkpoint counts", m.Name)
		}
		if s.Output().Rows != 10 || s.Output().Cols != m.OutDim() {
			t.Fatalf("%s: output shape %dx%d", m.Name, s.Output().Rows, s.Output().Cols)
		}
		if !tensor.Vector(s.Output().Data).IsFinite() {
			t.Fatalf("%s: non-finite outputs", m.Name)
		}
		if s.MemoryBytes() <= 0 {
			t.Fatalf("%s: MemoryBytes", m.Name)
		}
	}
}

func TestInferRejectsBadFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := lineGraph(t, 4)
	m := NewGCN(rng, 6, 8, NewAggregator(AggMax))
	if _, err := Infer(m, g, tensor.NewMatrix(4, 5), nil); err == nil {
		t.Error("wrong feature dim accepted")
	}
	if _, err := Infer(m, g, tensor.NewMatrix(3, 6), nil); err == nil {
		t.Error("wrong node count accepted")
	}
}

func TestInferIsolatedNodeGetsZeroAlpha(t *testing.T) {
	g := graph.NewUndirected(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for _, kind := range []AggKind{AggMax, AggMin, AggMean, AggSum} {
		m := NewGCN(rng, 4, 4, NewAggregator(kind))
		x := tensor.RandMatrix(rng, 3, 4, 1)
		s, err := Infer(m, g, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Alpha[0].Row(2).Equal(tensor.NewVector(4)) {
			t.Errorf("%v: isolated node alpha = %v, want zeros", kind, s.Alpha[0].Row(2))
		}
	}
}

func TestInferDeterministicAndCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := lineGraph(t, 20)
	x := tensor.RandMatrix(rng, 20, 5, 1)
	m := NewSAGE(rng, 5, 8, NewAggregator(AggMax))
	var c metrics.Counters
	s1, err := Infer(m, g, x, &c)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Infer(m, g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Equal(s2) {
		t.Error("inference not deterministic")
	}
	snap := c.Snapshot()
	if snap.NodesVisited != int64(20*m.NumLayers()) {
		t.Errorf("NodesVisited = %d, want %d", snap.NodesVisited, 20*m.NumLayers())
	}
	if snap.BytesFetched == 0 || snap.FLOPs == 0 {
		t.Error("counters not incremented")
	}
}

func TestStateCloneAndEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := lineGraph(t, 6)
	x := tensor.RandMatrix(rng, 6, 4, 1)
	m := NewGCN(rng, 4, 4, NewAggregator(AggSum))
	s, err := Infer(m, g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if !s.Equal(c) || !s.ApproxEqual(c, 0) {
		t.Error("clone not equal")
	}
	c.Alpha[0].Set(0, 0, 123)
	if s.Equal(c) {
		t.Error("clone shares storage")
	}
}

func TestInferSubsetMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.NewUndirected(12)
	for g.NumEdges() < 24 {
		u, v := graph.NodeID(rng.Intn(12)), graph.NodeID(rng.Intn(12))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	x := tensor.RandMatrix(rng, 12, 5, 1)
	for _, model := range testModels(rng, 5, AggMax) {
		s, err := Infer(model, g, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Recompute a subset at layer 0 into scratch copies; results must match.
		alpha := s.Alpha[0].Clone()
		hNext := s.H[1].Clone()
		alpha.Zero()
		hNext.Fill(42)
		nodes := []graph.NodeID{0, 3, 7}
		if err := InferSubset(model.Layers[0], nil, g, nodes, s.M[0], alpha, hNext, nil); err != nil {
			t.Fatal(err)
		}
		for _, u := range nodes {
			if !alpha.Row(int(u)).Equal(s.Alpha[0].Row(int(u))) {
				t.Errorf("%s: node %d alpha mismatch", model.Name, u)
			}
			if !hNext.Row(int(u)).Equal(s.H[1].Row(int(u))) {
				t.Errorf("%s: node %d h mismatch", model.Name, u)
			}
		}
		// Untouched rows keep their scratch value.
		if hNext.At(1, 0) != 42 {
			t.Errorf("%s: InferSubset touched node outside subset", model.Name)
		}
	}
}

func TestComputeMessagesSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := lineGraph(t, 8)
	x := tensor.RandMatrix(rng, 8, 4, 1)
	model := NewGCN(rng, 4, 6, NewAggregator(AggSum))
	s, err := Infer(model, g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := s.M[0].Clone()
	m.Zero()
	ComputeMessages(model.Layers[0], []graph.NodeID{2, 5}, s.H[0], m, nil)
	for _, u := range []int{2, 5} {
		if !m.Row(u).Equal(s.M[0].Row(u)) {
			t.Errorf("node %d message mismatch", u)
		}
	}
	if !m.Row(0).Equal(tensor.NewVector(6)) {
		t.Error("node outside subset was touched")
	}
}

func TestSampleNeighborsFanout(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.NewUndirected(30)
	// Star: node 0 connected to all others -> in-degree 29 at node 0.
	for i := 1; i < 30; i++ {
		if err := g.AddEdge(0, graph.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := SampleNeighbors(rng, g, 10)
	if got := s.InDegree(0); got != 10 {
		t.Errorf("sampled in-degree = %d, want 10", got)
	}
	// Leaves keep their single neighbor.
	if s.InDegree(5) != 1 || !s.HasEdge(0, 5) {
		t.Error("low-degree nodes must keep all neighbors")
	}
	// Sampled arcs must be a subset of original arcs.
	for _, e := range s.Edges() {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("sampler invented arc %v", e)
		}
	}
}

func TestGraphNormExactVsFrozen(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	h := tensor.RandMatrix(rng, 50, 4, 3)
	norm := NewGraphNorm(4)
	exact := h.Clone()
	norm.Apply(exact)
	// After exact normalisation each channel has ~zero mean and unit var.
	mu, sigma := Stats(exact, 0)
	for c := 0; c < 4; c++ {
		if mu[c] > 1e-4 || mu[c] < -1e-4 {
			t.Errorf("channel %d mean %g", c, mu[c])
		}
		if sigma[c] < 0.9 || sigma[c] > 1.1 {
			t.Errorf("channel %d sigma %g", c, sigma[c])
		}
	}
	// Frozen on the same matrix gives the same result as exact.
	norm2 := NewGraphNorm(4)
	norm2.Freeze(h)
	frozen := h.Clone()
	norm2.Apply(frozen)
	if !frozen.ApproxEqual(exact, 1e-5) {
		t.Error("frozen stats captured from the same matrix must match exact")
	}
	// ApplyRow agrees with Apply in frozen mode.
	row := h.Row(7).Clone()
	norm2.ApplyRow(row)
	if !row.ApproxEqual(frozen.Row(7), 1e-6) {
		t.Error("ApplyRow disagrees with Apply")
	}
}

func TestGraphNormApplyRowPanicsUnfrozen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ApplyRow must panic in exact mode")
		}
	}()
	NewGraphNorm(2).ApplyRow(tensor.Vector{1, 2})
}

func TestGraphNormEmptyMatrix(t *testing.T) {
	mu, sigma := Stats(tensor.NewMatrix(0, 3), 1e-5)
	for c := 0; c < 3; c++ {
		if mu[c] != 0 || sigma[c] != 1 {
			t.Errorf("empty stats: mu=%v sigma=%v", mu, sigma)
		}
	}
}

func TestGraphNormClone(t *testing.T) {
	n := NewGraphNorm(2)
	n.Freeze(tensor.FromRows([][]float32{{1, 2}, {3, 4}}))
	c := n.Clone()
	c.Mu[0] = 99
	if n.Mu[0] == 99 {
		t.Error("Clone shares storage")
	}
}

func TestModelWithNormValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := NewGCN(rng, 4, 4, NewAggregator(AggMean))
	m.Norms = []*GraphNorm{NewGraphNorm(4)} // wrong length: 1 for 2 layers
	if err := m.Validate(); err == nil {
		t.Error("norm/layer count mismatch must fail")
	}
	m.Norms = []*GraphNorm{NewGraphNorm(4), nil}
	if err := m.Validate(); err != nil {
		t.Errorf("valid norm config rejected: %v", err)
	}
	if m.Norm(0) == nil || m.Norm(1) != nil {
		t.Error("Norm accessor wrong")
	}
}

func TestInferWithFrozenNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := lineGraph(t, 10)
	x := tensor.RandMatrix(rng, 10, 4, 1)
	m := NewGCN(rng, 4, 4, NewAggregator(AggMean))
	m.Norms = []*GraphNorm{NewGraphNorm(4), NewGraphNorm(4)}
	// Exact-mode inference works in the full engine.
	s1, err := Infer(m, g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Freeze on the produced hidden states, then frozen inference is
	// deterministic and close to exact on the unchanged graph.
	m.Norms[0].Freeze(s1.H[1])
	m.Norms[1].Freeze(s1.H[2])
	s2, err := Infer(m, g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Output().Rows != 10 {
		t.Fatal("shape")
	}
	// Note H[1] of s1 is post-exact-norm; freezing captured stats of the
	// *normalised* matrix, so s2 re-normalises — just check finiteness and
	// determinism here (Fig. 9 handles fidelity).
	s3, err := Infer(m, g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Equal(s3) {
		t.Error("frozen-norm inference not deterministic")
	}
}
