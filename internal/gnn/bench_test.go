package gnn

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// BenchmarkInferLayer compares the per-row combination path (VecMat per
// node) against the batched blocked-GEMM path on a 256-dim layer over a
// sparse graph (~4 in-edges per node), the shape the acceptance criteria
// target. The aggregation phase is identical in both; the message and
// update phases differ.
func BenchmarkInferLayer(b *testing.B) {
	const n, dim = 2048, 256
	for _, mk := range []struct {
		name  string
		build func(rng *rand.Rand) Layer
	}{
		{"gcn", func(rng *rand.Rand) Layer {
			return NewGCNLayer(rng, "gcn[0]", dim, dim, NewAggregator(AggMean), ActReLU)
		}},
		{"sage", func(rng *rand.Rand) Layer {
			return NewSAGELayer(rng, "sage[0]", dim, dim, NewAggregator(AggMean), ActReLU)
		}},
	} {
		layer := mk.build(rand.New(rand.NewSource(3)))
		g := randTestGraph(rand.New(rand.NewSource(4)), n, 4*n)
		csr := graph.FreezeIn(g)
		h := tensor.RandMatrix(rand.New(rand.NewSource(5)), n, dim, 1)
		m := tensor.NewMatrix(n, layer.MsgDim())
		alpha := tensor.NewMatrix(n, layer.MsgDim())
		hNext := tensor.NewMatrix(n, layer.OutDim())
		for _, path := range []struct {
			name  string
			layer Layer
		}{
			{"perrow", rowOnly{layer}},
			{"batched", layer},
		} {
			b.Run(fmt.Sprintf("%s/%s", mk.name, path.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					inferLayer(path.layer, nil, csr, h, m, alpha, hNext, nil)
				}
			})
		}
	}
}
