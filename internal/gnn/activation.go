package gnn

import (
	"fmt"

	"repro/internal/tensor"
)

// ActKind names an element-wise activation so layers can be serialised
// and reconstructed (function values cannot).
type ActKind uint8

const (
	ActIdentity ActKind = iota
	ActReLU
)

func (k ActKind) String() string {
	switch k {
	case ActIdentity:
		return "identity"
	case ActReLU:
		return "relu"
	}
	return fmt.Sprintf("ActKind(%d)", uint8(k))
}

// Fn returns the activation function.
func (k ActKind) Fn() tensor.Activation {
	switch k {
	case ActIdentity:
		return tensor.Identity
	case ActReLU:
		return tensor.ReLU
	}
	panic(fmt.Sprintf("gnn: bad ActKind %d", uint8(k)))
}

// ParseActKind converts a name to an ActKind.
func ParseActKind(s string) (ActKind, error) {
	switch s {
	case "identity":
		return ActIdentity, nil
	case "relu":
		return ActReLU, nil
	}
	return 0, fmt.Errorf("gnn: unknown activation %q", s)
}
