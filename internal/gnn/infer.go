package gnn

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// State is the per-layer checkpoint InkStream consumes: for every layer l,
// the messages m_l and aggregated neighborhoods α_l immediately before and
// after the aggregation phase (the paper's two checkpoints per layer,
// Sec. III-E), plus the layer inputs h_l. H[0] is the input feature matrix;
// H[L] the model output.
type State struct {
	H     []*tensor.Matrix // len L+1
	M     []*tensor.Matrix // len L
	Alpha []*tensor.Matrix // len L
}

// NewState allocates a zeroed state for model over n nodes.
func NewState(model *Model, n int) *State {
	L := model.NumLayers()
	s := &State{
		H:     make([]*tensor.Matrix, L+1),
		M:     make([]*tensor.Matrix, L),
		Alpha: make([]*tensor.Matrix, L),
	}
	s.H[0] = tensor.NewMatrix(n, model.InDim())
	for l, layer := range model.Layers {
		s.M[l] = tensor.NewMatrix(n, layer.MsgDim())
		s.Alpha[l] = tensor.NewMatrix(n, layer.MsgDim())
		s.H[l+1] = tensor.NewMatrix(n, layer.OutDim())
	}
	return s
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{
		H:     make([]*tensor.Matrix, len(s.H)),
		M:     make([]*tensor.Matrix, len(s.M)),
		Alpha: make([]*tensor.Matrix, len(s.Alpha)),
	}
	for i, m := range s.H {
		c.H[i] = m.Clone()
	}
	for i, m := range s.M {
		c.M[i] = m.Clone()
	}
	for i, m := range s.Alpha {
		c.Alpha[i] = m.Clone()
	}
	return c
}

// NumNodes returns the node count the state was built for.
func (s *State) NumNodes() int { return s.H[0].Rows }

// Output returns the final embeddings (alias of H[L]).
func (s *State) Output() *tensor.Matrix { return s.H[len(s.H)-1] }

// MemoryBytes returns the total bytes held by the M and α checkpoints —
// the additional memory cost analysed in Sec. III-E (H[0] is the input and
// H[1..L] are derivable, so only the two checkpoints count).
func (s *State) MemoryBytes() int64 {
	var b int64
	for l := range s.M {
		b += int64(4 * len(s.M[l].Data))
		b += int64(4 * len(s.Alpha[l].Data))
	}
	return b
}

// Equal reports bit-identical states.
func (s *State) Equal(o *State) bool {
	if len(s.H) != len(o.H) {
		return false
	}
	for i := range s.H {
		if !s.H[i].Equal(o.H[i]) {
			return false
		}
	}
	for i := range s.M {
		if !s.M[i].Equal(o.M[i]) || !s.Alpha[i].Equal(o.Alpha[i]) {
			return false
		}
	}
	return true
}

// ApproxEqual reports element-wise agreement within tol across all
// checkpoints.
func (s *State) ApproxEqual(o *State, tol float32) bool {
	if len(s.H) != len(o.H) {
		return false
	}
	for i := range s.H {
		if !s.H[i].ApproxEqual(o.H[i], tol) {
			return false
		}
	}
	for i := range s.M {
		if !s.M[i].ApproxEqual(o.M[i], tol) || !s.Alpha[i].ApproxEqual(o.Alpha[i], tol) {
			return false
		}
	}
	return true
}

// Infer runs full-graph inference of model on g with input features x,
// producing the checkpointed state. Counters may be nil. This is both the
// bootstrap for InkStream (the paper's "initial full graph inference") and
// the core of the PyG-like baseline.
func Infer(model *Model, g *graph.Graph, x *tensor.Matrix, c *metrics.Counters) (*State, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if x.Rows != n || x.Cols != model.InDim() {
		return nil, fmt.Errorf("gnn: features %dx%d for %d nodes, model InDim %d",
			x.Rows, x.Cols, n, model.InDim())
	}
	s := NewState(model, n)
	copy(s.H[0].Data, x.Data)
	csr := graph.FreezeIn(g)
	for l, layer := range model.Layers {
		inferLayer(layer, model.Norm(l), csr, s.H[l], s.M[l], s.Alpha[l], s.H[l+1], c)
	}
	return s, nil
}

// inferLayer computes one layer over every node: messages, aggregation,
// update, optional norm. The combination phases (message, update) run as
// blocked GEMMs when the layer implements BatchedLayer — bit-identical to
// the per-row fallback, which remains for layers outside the interface.
// The aggregation phase is graph-dependent and always per-row.
func inferLayer(layer Layer, norm *GraphNorm, csr *graph.CSR, h, m, alpha, hNext *tensor.Matrix, c *metrics.Counters) {
	n := csr.NumNodes()
	batched, _ := layer.(BatchedLayer)
	// Combination phase: m_u = 𝒯(h_u).
	if batched != nil {
		batched.BatchComputeMessages(m, h)
		CountMessages(c, layer, n)
	} else {
		tensor.ParallelForGrain(n, layer.InDim()*layer.MsgDim(), func(lo, hi int) {
			for u := lo; u < hi; u++ {
				layer.ComputeMessage(m.Row(u), h.Row(u))
				CountMessage(c, layer)
			}
		})
	}
	// Aggregation phase: α_u = 𝒜(m_v : v ∈ N(u)).
	agg := layer.Agg()
	dim := layer.MsgDim()
	tensor.ParallelForGrain(n, 4*dim, func(lo, hi int) {
		fetched, flops := 0, int64(0)
		for u := lo; u < hi; u++ {
			dst := alpha.Row(u)
			agg.Identity(dst)
			nbrs := csr.Neighbors(graph.NodeID(u))
			for _, v := range nbrs {
				agg.Merge(dst, m.Row(int(v)))
			}
			agg.Finalize(dst, len(nbrs))
			fetched += dim * len(nbrs)
			flops += int64(dim * len(nbrs))
		}
		c.FetchVec(fetched)
		c.AddFLOPs(flops)
		c.StoreVec((hi - lo) * dim)
	})
	// Update phase: h' = act(𝒯(α, m)).
	if batched != nil {
		batched.BatchUpdate(hNext, alpha, m)
		CountUpdates(c, layer, n)
		c.VisitNodes(n)
	} else {
		tensor.ParallelForGrain(n, layer.MsgDim()*layer.OutDim(), func(lo, hi int) {
			for u := lo; u < hi; u++ {
				layer.Update(hNext.Row(u), alpha.Row(u), m.Row(u))
				CountUpdate(c, layer)
				c.VisitNode()
			}
		})
	}
	if norm != nil {
		norm.Apply(hNext)
	}
}

// InferSubset recomputes layer l for only the listed nodes, reading the
// current cached messages m and writing α and h_{l+1} in place. This is
// the building block of the k-hop baseline: each recomputed node fetches
// its whole in-neighborhood. The norm, when present, must be frozen.
func InferSubset(layer Layer, norm *GraphNorm, g *graph.Graph, nodes []graph.NodeID, m, alpha, hNext *tensor.Matrix, c *metrics.Counters) error {
	if norm != nil && !norm.IsFrozen {
		return fmt.Errorf("gnn: InferSubset requires frozen GraphNorm")
	}
	agg := layer.Agg()
	dim := layer.MsgDim()
	tensor.ParallelForEachGrain(nodes, 4*dim+layer.MsgDim()*layer.OutDim(), func(u graph.NodeID) {
		dst := alpha.Row(int(u))
		agg.Identity(dst)
		nbrs := g.InNeighbors(u)
		for _, v := range nbrs {
			agg.Merge(dst, m.Row(int(v)))
		}
		agg.Finalize(dst, len(nbrs))
		c.FetchVec(dim * len(nbrs))
		c.AddFLOPs(int64(dim * len(nbrs)))
		c.StoreVec(dim)
		layer.Update(hNext.Row(int(u)), dst, m.Row(int(u)))
		CountUpdate(c, layer)
		if norm != nil {
			norm.ApplyRow(hNext.Row(int(u)))
		}
		c.VisitNode()
	})
	return nil
}

// ComputeMessages refreshes m_l rows for the listed nodes from h_l, used
// after a subset of h changed.
func ComputeMessages(layer Layer, nodes []graph.NodeID, h, m *tensor.Matrix, c *metrics.Counters) {
	tensor.ParallelForEachGrain(nodes, layer.InDim()*layer.MsgDim(), func(u graph.NodeID) {
		layer.ComputeMessage(m.Row(int(u)), h.Row(int(u)))
		CountMessage(c, layer)
	})
}
