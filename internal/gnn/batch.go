package gnn

import (
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// BatchedLayer is implemented by layers whose combination phases (message
// and update) can run as blocked GEMMs over all nodes at once instead of
// row-by-row VecMat calls. Implementations MUST be bit-identical to the
// per-row ComputeMessage/Update path: the incremental engine refreshes
// single rows with the per-row kernels and verifies them against batched
// full inference (Engine.Verify(0)), so the two paths may differ only in
// which rows are computed together, never in the reduction order within an
// output element. The tensor GEMM core guarantees this (see
// internal/tensor/gemm.go); batched implementations must additionally keep
// the per-element epilogue order (add terms, then bias, then activation)
// identical to their Update method.
type BatchedLayer interface {
	Layer
	// BatchComputeMessages writes m_u = ComputeMessage(h_u) for every row.
	BatchComputeMessages(m, h *tensor.Matrix)
	// BatchUpdate writes hNext_u = Update(alpha_u, m_u) for every row.
	BatchUpdate(hNext, alpha, m *tensor.Matrix)
}

// CountMessages records n ComputeMessage-equivalent calls in bulk; totals
// match n individual CountMessage calls exactly.
func CountMessages(c *metrics.Counters, l Layer, n int) {
	c.FetchVec(n * l.InDim())
	c.AddFLOPs(int64(n) * l.MessageFLOPs())
	c.StoreVec(n * l.MsgDim())
}

// CountUpdates records n Update-equivalent calls in bulk; totals match n
// individual CountUpdate calls exactly.
func CountUpdates(c *metrics.Counters, l Layer, n int) {
	f := n * l.MsgDim()
	if l.SelfDependent() {
		f *= 2
	}
	c.FetchVec(f)
	c.AddFLOPs(int64(n) * l.UpdateFLOPs())
	c.StoreVec(n * l.OutDim())
}

// ---------------------------------------------------------------------------
// GCN: m = h·W + b, h' = act(α)

func (l *GCNLayer) BatchComputeMessages(m, h *tensor.Matrix) {
	tensor.ParallelMatMulBiasAct(m, h, l.W, l.B, nil)
}

func (l *GCNLayer) BatchUpdate(hNext, alpha, m *tensor.Matrix) {
	tensor.ParallelForGrain(hNext.Rows, hNext.Cols, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			l.act(hNext.Row(u), alpha.Row(u))
		}
	})
}

// ---------------------------------------------------------------------------
// GraphSAGE: m = h, h' = act(α·W1 + m·W2 + b)

func (l *SAGELayer) BatchComputeMessages(m, h *tensor.Matrix) {
	copy(m.Data, h.Data)
}

func (l *SAGELayer) BatchUpdate(hNext, alpha, m *tensor.Matrix) {
	batchTwoTermUpdate(hNext, alpha, l.W1, m, l.W2, l.B, l.act)
}

// ---------------------------------------------------------------------------
// GraphConv: m = h, h' = act(m·W1 + α·W2 + b)

func (l *GraphConvLayer) BatchComputeMessages(m, h *tensor.Matrix) {
	copy(m.Data, h.Data)
}

func (l *GraphConvLayer) BatchUpdate(hNext, alpha, m *tensor.Matrix) {
	batchTwoTermUpdate(hNext, m, l.W1, alpha, l.W2, l.B, l.act)
}

// batchTwoTermUpdate computes hNext = act(x·Wx + y·Wy + b) as two complete
// GEMMs followed by a per-row elementwise epilogue. The two products are NOT
// interleaved along k: the per-row path computes VecMat(x_u·Wx) fully, then
// VecMat(y_u·Wy) fully, then adds — summing term by term here keeps the
// per-element float order identical.
func batchTwoTermUpdate(hNext, x, wx, y, wy *tensor.Matrix, b tensor.Vector, act tensor.Activation) {
	tensor.ParallelMatMul(hNext, x, wx)
	s := tensor.GetScratch(hNext.Rows, hNext.Cols)
	tensor.ParallelMatMul(s, y, wy)
	tensor.ParallelForGrain(hNext.Rows, 4*hNext.Cols, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			dst := hNext.Row(u)
			tensor.Add(dst, dst, s.Row(u))
			tensor.Add(dst, dst, b)
			act(dst, dst)
		}
	})
	tensor.PutScratch(s)
}

// ---------------------------------------------------------------------------
// GIN: m = h, h' = MLP((1+ε)·m + α) with MLP = act∘(W2,b2)∘ReLU∘(W1,b1)

func (l *GINLayer) BatchComputeMessages(m, h *tensor.Matrix) {
	copy(m.Data, h.Data)
}

func (l *GINLayer) BatchUpdate(hNext, alpha, m *tensor.Matrix) {
	n := hNext.Rows
	in := tensor.GetScratch(n, l.InDim())
	eps := 1 + l.Eps
	tensor.ParallelForGrain(len(in.Data), 1, func(lo, hi int) {
		id, md, ad := in.Data, m.Data, alpha.Data
		md = md[:len(id)]
		ad = ad[:len(id)]
		for i := lo; i < hi; i++ {
			id[i] = eps*md[i] + ad[i]
		}
	})
	hid := tensor.GetScratch(n, l.mlpHide)
	tensor.ParallelMatMulBiasAct(hid, in, l.W1, l.B1, tensor.ReLU)
	tensor.PutScratch(in)
	tensor.ParallelMatMulBiasAct(hNext, hid, l.W2, l.B2, l.act)
	tensor.PutScratch(hid)
}
