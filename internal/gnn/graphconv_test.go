package gnn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestGraphConvShapesAndSelfDependence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewGraphConv(rng, 6, 8, NewAggregator(AggSum))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	l := m.Layers[0]
	if l.InDim() != 6 || l.MsgDim() != 6 || l.OutDim() != 8 {
		t.Errorf("dims %d/%d/%d", l.InDim(), l.MsgDim(), l.OutDim())
	}
	if !l.SelfDependent() {
		t.Error("GraphConv must be self-dependent (W1·h term)")
	}
	if l.(*GraphConvLayer).Act() != ActReLU {
		t.Error("first layer activation")
	}
}

// Hand-check: identity-ish weights on a 3-node path.
func TestGraphConvTinyForward(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := lineGraph(t, 3)
	layer := NewGraphConvLayer(rng, "gc", 2, 2, NewAggregator(AggSum), ActIdentity)
	layer.W1 = tensor.FromRows([][]float32{{1, 0}, {0, 1}})
	layer.W2 = tensor.FromRows([][]float32{{1, 0}, {0, 1}})
	layer.B = tensor.NewVector(2)
	model := &Model{Name: "tiny", Layers: []Layer{layer}}
	x := tensor.FromRows([][]float32{{1, 0}, {0, 1}, {2, 2}})
	s, err := Infer(model, g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	// h'[u] = h[u] + Σ neighbors. Node 1: (0,1) + (1,0)+(2,2) = (3,3).
	want := tensor.FromRows([][]float32{{1, 1}, {3, 3}, {2, 3}})
	if !s.Output().Equal(want) {
		t.Errorf("output %v, want %v", s.Output(), want)
	}
}

func TestGraphConvInferenceFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := lineGraph(t, 20)
	x := tensor.RandMatrix(rng, 20, 6, 1)
	for _, kind := range []AggKind{AggMax, AggSum} {
		m := NewGraphConv(rng, 6, 8, NewAggregator(kind))
		s, err := Infer(m, g, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Vector(s.Output().Data).IsFinite() {
			t.Errorf("%v: non-finite output", kind)
		}
	}
}
