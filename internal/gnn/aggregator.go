// Package gnn implements the message-passing GNN inference framework the
// paper targets: the combination/aggregation layer abstraction of Fig. 3,
// the four supported aggregation functions, the GCN, GraphSAGE and GIN
// benchmark models, GraphNorm (exact and frozen approximation, Sec. II-E),
// neighbor sampling, and a parallel full-graph inference engine that
// checkpoints the per-layer messages m_l and aggregated neighborhoods α_l
// that InkStream's incremental engine consumes.
package gnn

import (
	"fmt"

	"repro/internal/tensor"
)

// AggKind enumerates the supported aggregation functions 𝒜.
type AggKind int

const (
	AggMax AggKind = iota
	AggMin
	AggMean
	AggSum
)

func (k AggKind) String() string {
	switch k {
	case AggMax:
		return "max"
	case AggMin:
		return "min"
	case AggMean:
		return "mean"
	case AggSum:
		return "sum"
	}
	return fmt.Sprintf("AggKind(%d)", int(k))
}

// ParseAggKind converts a name ("max", "min", "mean", "sum") to an AggKind.
func ParseAggKind(s string) (AggKind, error) {
	switch s {
	case "max":
		return AggMax, nil
	case "min":
		return AggMin, nil
	case "mean":
		return AggMean, nil
	case "sum":
		return AggSum, nil
	}
	return 0, fmt.Errorf("gnn: unknown aggregation %q", s)
}

// Aggregator is one of the paper's supported aggregation functions. The
// taxonomy follows Sec. I/II: max and min are *monotonic* (selective,
// partially reversible), mean and sum are *accumulative* (fully
// reversible).
type Aggregator interface {
	Kind() AggKind
	// Monotonic reports whether the function is selective (max/min),
	// enabling InkStream's affected-area pruning but requiring the
	// reset-condition analysis for incremental updates.
	Monotonic() bool
	// Reversible reports whether a neighbor's old contribution can be
	// cancelled from an aggregate — the paper's expressiveness condition
	// (2). All four built-in functions are at least partially reversible;
	// an irreversible function (e.g. std) cannot be served incrementally
	// and is rejected by the engine.
	Reversible() bool
	// Identity writes the aggregation identity into dst: -Inf for max,
	// +Inf for min, 0 for mean/sum. Channels still holding the identity
	// after aggregation over an empty neighborhood are defined to be 0
	// (see Finalize).
	Identity(dst tensor.Vector)
	// Merge folds one message into the running aggregate:
	// dst = 𝒜(dst, m).
	Merge(dst, m tensor.Vector)
	// Finalize converts the merged aggregate over deg messages into the
	// final α: mean divides by deg; max/min/sum are identity except that
	// deg == 0 yields the zero vector for every kind.
	Finalize(dst tensor.Vector, deg int)
}

// NewAggregator returns the aggregator implementation for kind.
func NewAggregator(kind AggKind) Aggregator {
	switch kind {
	case AggMax:
		return maxAgg{}
	case AggMin:
		return minAgg{}
	case AggMean:
		return meanAgg{}
	case AggSum:
		return sumAgg{}
	}
	panic(fmt.Sprintf("gnn: bad AggKind %d", int(kind)))
}

type maxAgg struct{}

func (maxAgg) Kind() AggKind    { return AggMax }
func (maxAgg) Reversible() bool { return true }
func (maxAgg) Monotonic() bool  { return true }
func (maxAgg) Identity(dst tensor.Vector) {
	for i := range dst {
		dst[i] = -tensor.Inf32
	}
}
func (maxAgg) Merge(dst, m tensor.Vector) { tensor.EltMax(dst, dst, m) }
func (maxAgg) Finalize(dst tensor.Vector, deg int) {
	if deg == 0 {
		for i := range dst {
			dst[i] = 0
		}
	}
}

type minAgg struct{}

func (minAgg) Kind() AggKind    { return AggMin }
func (minAgg) Reversible() bool { return true }
func (minAgg) Monotonic() bool  { return true }
func (minAgg) Identity(dst tensor.Vector) {
	for i := range dst {
		dst[i] = tensor.Inf32
	}
}
func (minAgg) Merge(dst, m tensor.Vector) { tensor.EltMin(dst, dst, m) }
func (minAgg) Finalize(dst tensor.Vector, deg int) {
	if deg == 0 {
		for i := range dst {
			dst[i] = 0
		}
	}
}

type sumAgg struct{}

func (sumAgg) Kind() AggKind    { return AggSum }
func (sumAgg) Reversible() bool { return true }
func (sumAgg) Monotonic() bool  { return false }
func (sumAgg) Identity(dst tensor.Vector) {
	for i := range dst {
		dst[i] = 0
	}
}
func (sumAgg) Merge(dst, m tensor.Vector)          { tensor.Add(dst, dst, m) }
func (sumAgg) Finalize(dst tensor.Vector, deg int) {}

type meanAgg struct{}

func (meanAgg) Kind() AggKind    { return AggMean }
func (meanAgg) Reversible() bool { return true }
func (meanAgg) Monotonic() bool  { return false }
func (meanAgg) Identity(dst tensor.Vector) {
	for i := range dst {
		dst[i] = 0
	}
}
func (meanAgg) Merge(dst, m tensor.Vector) { tensor.Add(dst, dst, m) }
func (meanAgg) Finalize(dst tensor.Vector, deg int) {
	if deg == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	tensor.Scale(dst, 1/float32(deg), dst)
}

// Aggregate computes α = Finalize(Merge over msgs) into dst. msgs is the
// list of neighbor messages; dst must have the message dimension.
func Aggregate(a Aggregator, dst tensor.Vector, msgs []tensor.Vector) {
	a.Identity(dst)
	for _, m := range msgs {
		a.Merge(dst, m)
	}
	a.Finalize(dst, len(msgs))
}
