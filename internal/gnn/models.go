package gnn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Model is a stack of layers with optional per-layer GraphNorm, matching
// the benchmark configurations of Sec. III-A: 2-layer GCN, 2-layer
// GraphSAGE, 5-layer GIN.
type Model struct {
	Name   string
	Layers []Layer
	// Norms[l], when non-nil, is applied to h_{l+1} after layer l.
	Norms []*GraphNorm
}

// NumLayers returns k, the model depth.
func (m *Model) NumLayers() int { return len(m.Layers) }

// InDim returns the input feature dimension.
func (m *Model) InDim() int { return m.Layers[0].InDim() }

// OutDim returns the output embedding dimension.
func (m *Model) OutDim() int { return m.Layers[len(m.Layers)-1].OutDim() }

// Validate checks inter-layer dimension compatibility.
func (m *Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("gnn: model %q has no layers", m.Name)
	}
	if m.Norms != nil && len(m.Norms) != len(m.Layers) {
		return fmt.Errorf("gnn: model %q has %d norms for %d layers", m.Name, len(m.Norms), len(m.Layers))
	}
	for l := 1; l < len(m.Layers); l++ {
		if m.Layers[l].InDim() != m.Layers[l-1].OutDim() {
			return fmt.Errorf("gnn: model %q: layer %d InDim %d != layer %d OutDim %d",
				m.Name, l, m.Layers[l].InDim(), l-1, m.Layers[l-1].OutDim())
		}
	}
	return nil
}

// Norm returns the post-norm for layer l, or nil.
func (m *Model) Norm(l int) *GraphNorm {
	if m.Norms == nil {
		return nil
	}
	return m.Norms[l]
}

// ---------------------------------------------------------------------------
// GCN

// GCNLayer implements a Kipf–Welling style convolution in the paper's
// combination-first form: m = h·W + b, α = 𝒜(m over N(u)), h' = act(α).
// The aggregator is pluggable (mean for InkStream-a, max for InkStream-m),
// as in the paper's two evaluated variants. It is not self-dependent: the
// effect of a change propagates along graph edges only.
type GCNLayer struct {
	name    string
	W       *tensor.Matrix // InDim x OutDim
	B       tensor.Vector  // OutDim
	agg     Aggregator
	act     tensor.Activation
	actKind ActKind
}

// NewGCNLayer builds one GCN layer with Glorot weights from rng.
func NewGCNLayer(rng *rand.Rand, name string, inDim, outDim int, agg Aggregator, act ActKind) *GCNLayer {
	return &GCNLayer{
		name:    name,
		W:       tensor.GlorotMatrix(rng, inDim, outDim),
		B:       tensor.RandVector(rng, outDim, 0.1),
		agg:     agg,
		act:     act.Fn(),
		actKind: act,
	}
}

func (l *GCNLayer) Name() string        { return l.name }
func (l *GCNLayer) InDim() int          { return l.W.Rows }
func (l *GCNLayer) MsgDim() int         { return l.W.Cols }
func (l *GCNLayer) OutDim() int         { return l.W.Cols }
func (l *GCNLayer) Agg() Aggregator     { return l.agg }
func (l *GCNLayer) SelfDependent() bool { return false }

// Act returns the serialisable activation identity.
func (l *GCNLayer) Act() ActKind { return l.actKind }

func (l *GCNLayer) ComputeMessage(dst, h tensor.Vector) {
	tensor.VecMat(dst, h, l.W)
	tensor.Add(dst, dst, l.B)
}

func (l *GCNLayer) Update(dst, alpha, m tensor.Vector) {
	l.act(dst, alpha)
}

func (l *GCNLayer) MessageFLOPs() int64 {
	return int64(2*l.W.Rows*l.W.Cols + l.W.Cols)
}
func (l *GCNLayer) UpdateFLOPs() int64 { return int64(l.W.Cols) }

// RestoreGCNLayer rebuilds a GCN layer from serialised parts.
func RestoreGCNLayer(name string, w *tensor.Matrix, b tensor.Vector, agg Aggregator, act ActKind) *GCNLayer {
	return &GCNLayer{name: name, W: w, B: b, agg: agg, act: act.Fn(), actKind: act}
}

// NewGCN builds the paper's 2-layer GCN benchmark: featLen -> hidden ->
// hidden with ReLU between layers and identity output.
func NewGCN(rng *rand.Rand, featLen, hidden int, agg Aggregator) *Model {
	return &Model{
		Name: "GCN",
		Layers: []Layer{
			NewGCNLayer(rng, "gcn[0]", featLen, hidden, agg, ActReLU),
			NewGCNLayer(rng, "gcn[1]", hidden, hidden, agg, ActIdentity),
		},
	}
}

// ---------------------------------------------------------------------------
// GraphSAGE

// SAGELayer implements GraphSAGE (Fig. 6): aggregation-first with
// m = h, α = 𝒜(h over N(u)), h' = act(W1·α + W2·h + b). The W2·h term makes
// it self-dependent: InkStream expresses it with user events carrying the
// node's own old/new message.
type SAGELayer struct {
	name    string
	W1, W2  *tensor.Matrix // InDim x OutDim each
	B       tensor.Vector
	agg     Aggregator
	act     tensor.Activation
	actKind ActKind
	pool    *tensor.VecPool // scratch for the W2·h term
}

// NewSAGELayer builds one GraphSAGE layer with Glorot weights from rng.
func NewSAGELayer(rng *rand.Rand, name string, inDim, outDim int, agg Aggregator, act ActKind) *SAGELayer {
	return &SAGELayer{
		name:    name,
		W1:      tensor.GlorotMatrix(rng, inDim, outDim),
		W2:      tensor.GlorotMatrix(rng, inDim, outDim),
		B:       tensor.RandVector(rng, outDim, 0.1),
		agg:     agg,
		act:     act.Fn(),
		actKind: act,
		pool:    tensor.NewVecPool(outDim),
	}
}

func (l *SAGELayer) Name() string        { return l.name }
func (l *SAGELayer) InDim() int          { return l.W1.Rows }
func (l *SAGELayer) MsgDim() int         { return l.W1.Rows }
func (l *SAGELayer) OutDim() int         { return l.W1.Cols }
func (l *SAGELayer) Agg() Aggregator     { return l.agg }
func (l *SAGELayer) SelfDependent() bool { return true }

// Act returns the serialisable activation identity.
func (l *SAGELayer) Act() ActKind { return l.actKind }

func (l *SAGELayer) ComputeMessage(dst, h tensor.Vector) { copy(dst, h) }

func (l *SAGELayer) Update(dst, alpha, m tensor.Vector) {
	tensor.VecMat(dst, alpha, l.W1)
	scratch := l.pool.Get()
	tensor.VecMat(scratch, m, l.W2)
	tensor.Add(dst, dst, scratch)
	l.pool.Put(scratch)
	tensor.Add(dst, dst, l.B)
	l.act(dst, dst)
}

func (l *SAGELayer) MessageFLOPs() int64 { return 0 }
func (l *SAGELayer) UpdateFLOPs() int64 {
	return int64(4*l.W1.Rows*l.W1.Cols + 3*l.W1.Cols)
}

// RestoreSAGELayer rebuilds a GraphSAGE layer from serialised parts.
func RestoreSAGELayer(name string, w1, w2 *tensor.Matrix, b tensor.Vector, agg Aggregator, act ActKind) *SAGELayer {
	return &SAGELayer{
		name: name, W1: w1, W2: w2, B: b, agg: agg,
		act: act.Fn(), actKind: act, pool: tensor.NewVecPool(w1.Cols),
	}
}

// NewSAGE builds the paper's 2-layer GraphSAGE benchmark.
func NewSAGE(rng *rand.Rand, featLen, hidden int, agg Aggregator) *Model {
	return &Model{
		Name: "GraphSAGE",
		Layers: []Layer{
			NewSAGELayer(rng, "sage[0]", featLen, hidden, agg, ActReLU),
			NewSAGELayer(rng, "sage[1]", hidden, hidden, agg, ActIdentity),
		},
	}
}

// ---------------------------------------------------------------------------
// GIN

// GINLayer implements the Graph Isomorphism Network update:
// h' = MLP((1+ε)·h + α) with α = 𝒜(h over N(u)) and a two-layer MLP
// (W1, ReLU, W2). Aggregation-first and self-dependent via the (1+ε)h term.
type GINLayer struct {
	name    string
	Eps     float32
	W1      *tensor.Matrix // InDim x Hidden
	W2      *tensor.Matrix // Hidden x OutDim
	B1, B2  tensor.Vector
	agg     Aggregator
	act     tensor.Activation
	actKind ActKind
	mlpHide int
	inPool  *tensor.VecPool // scratch for (1+ε)h + α
	hidPool *tensor.VecPool // scratch for the MLP hidden activation
}

// NewGINLayer builds one GIN layer whose MLP hidden width equals outDim.
func NewGINLayer(rng *rand.Rand, name string, inDim, outDim int, agg Aggregator, act ActKind) *GINLayer {
	return &GINLayer{
		name:    name,
		Eps:     0.1,
		W1:      tensor.GlorotMatrix(rng, inDim, outDim),
		W2:      tensor.GlorotMatrix(rng, outDim, outDim),
		B1:      tensor.RandVector(rng, outDim, 0.1),
		B2:      tensor.RandVector(rng, outDim, 0.1),
		agg:     agg,
		act:     act.Fn(),
		actKind: act,
		mlpHide: outDim,
		inPool:  tensor.NewVecPool(inDim),
		hidPool: tensor.NewVecPool(outDim),
	}
}

func (l *GINLayer) Name() string        { return l.name }
func (l *GINLayer) InDim() int          { return l.W1.Rows }
func (l *GINLayer) MsgDim() int         { return l.W1.Rows }
func (l *GINLayer) OutDim() int         { return l.W2.Cols }
func (l *GINLayer) Agg() Aggregator     { return l.agg }
func (l *GINLayer) SelfDependent() bool { return true }

// Act returns the serialisable activation identity.
func (l *GINLayer) Act() ActKind { return l.actKind }

func (l *GINLayer) ComputeMessage(dst, h tensor.Vector) { copy(dst, h) }

func (l *GINLayer) Update(dst, alpha, m tensor.Vector) {
	in := l.inPool.Get()
	for i := range in {
		in[i] = (1+l.Eps)*m[i] + alpha[i]
	}
	hid := l.hidPool.Get()
	tensor.VecMat(hid, in, l.W1)
	l.inPool.Put(in)
	tensor.Add(hid, hid, l.B1)
	tensor.ReLU(hid, hid)
	tensor.VecMat(dst, hid, l.W2)
	l.hidPool.Put(hid)
	tensor.Add(dst, dst, l.B2)
	l.act(dst, dst)
}

func (l *GINLayer) MessageFLOPs() int64 { return 0 }
func (l *GINLayer) UpdateFLOPs() int64 {
	return int64(2*l.InDim() + 2*l.W1.Rows*l.W1.Cols + 2*l.W2.Rows*l.W2.Cols + 3*l.OutDim())
}

// RestoreGINLayer rebuilds a GIN layer from serialised parts.
func RestoreGINLayer(name string, eps float32, w1, w2 *tensor.Matrix, b1, b2 tensor.Vector, agg Aggregator, act ActKind) *GINLayer {
	return &GINLayer{
		name: name, Eps: eps, W1: w1, W2: w2, B1: b1, B2: b2, agg: agg,
		act: act.Fn(), actKind: act, mlpHide: w1.Cols,
		inPool: tensor.NewVecPool(w1.Rows), hidPool: tensor.NewVecPool(w1.Cols),
	}
}

// NewGIN builds the paper's 5-layer GIN benchmark.
func NewGIN(rng *rand.Rand, featLen, hidden, layers int, agg Aggregator) *Model {
	m := &Model{Name: "GIN"}
	in := featLen
	for l := 0; l < layers; l++ {
		act := ActReLU
		if l == layers-1 {
			act = ActIdentity
		}
		m.Layers = append(m.Layers, NewGINLayer(rng, fmt.Sprintf("gin[%d]", l), in, hidden, NewAggregator(agg.Kind()), act))
		in = hidden
	}
	return m
}
