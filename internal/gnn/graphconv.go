package gnn

import (
	"math/rand"

	"repro/internal/tensor"
)

// GraphConvLayer implements the Morris et al. "GraphConv" operator:
// h' = act(W1·h + W2·𝒜(h over N(u)) + b). Like GraphSAGE it is
// aggregation-first and self-dependent, but the aggregator defaults to sum
// (the higher-order-WL formulation). It exists to demonstrate the paper's
// generality claim: any message-passing model whose update reads only the
// node's own message and aggregated neighborhood slots into the framework
// and the incremental engine without engine changes.
type GraphConvLayer struct {
	name    string
	W1, W2  *tensor.Matrix // InDim x OutDim: self and neighborhood paths
	B       tensor.Vector
	agg     Aggregator
	act     tensor.Activation
	actKind ActKind
	pool    *tensor.VecPool
}

// NewGraphConvLayer builds one GraphConv layer with Glorot weights.
func NewGraphConvLayer(rng *rand.Rand, name string, inDim, outDim int, agg Aggregator, act ActKind) *GraphConvLayer {
	return &GraphConvLayer{
		name:    name,
		W1:      tensor.GlorotMatrix(rng, inDim, outDim),
		W2:      tensor.GlorotMatrix(rng, inDim, outDim),
		B:       tensor.RandVector(rng, outDim, 0.1),
		agg:     agg,
		act:     act.Fn(),
		actKind: act,
		pool:    tensor.NewVecPool(outDim),
	}
}

func (l *GraphConvLayer) Name() string        { return l.name }
func (l *GraphConvLayer) InDim() int          { return l.W1.Rows }
func (l *GraphConvLayer) MsgDim() int         { return l.W1.Rows }
func (l *GraphConvLayer) OutDim() int         { return l.W1.Cols }
func (l *GraphConvLayer) Agg() Aggregator     { return l.agg }
func (l *GraphConvLayer) SelfDependent() bool { return true }

// Act returns the serialisable activation identity.
func (l *GraphConvLayer) Act() ActKind { return l.actKind }

func (l *GraphConvLayer) ComputeMessage(dst, h tensor.Vector) { copy(dst, h) }

func (l *GraphConvLayer) Update(dst, alpha, m tensor.Vector) {
	tensor.VecMat(dst, m, l.W1)
	scratch := l.pool.Get()
	tensor.VecMat(scratch, alpha, l.W2)
	tensor.Add(dst, dst, scratch)
	l.pool.Put(scratch)
	tensor.Add(dst, dst, l.B)
	l.act(dst, dst)
}

func (l *GraphConvLayer) MessageFLOPs() int64 { return 0 }
func (l *GraphConvLayer) UpdateFLOPs() int64 {
	return int64(4*l.W1.Rows*l.W1.Cols + 3*l.W1.Cols)
}

// NewGraphConv builds a 2-layer GraphConv model.
func NewGraphConv(rng *rand.Rand, featLen, hidden int, agg Aggregator) *Model {
	return &Model{
		Name: "GraphConv",
		Layers: []Layer{
			NewGraphConvLayer(rng, "gconv[0]", featLen, hidden, agg, ActReLU),
			NewGraphConvLayer(rng, "gconv[1]", hidden, hidden, agg, ActIdentity),
		},
	}
}
