package gnn

import (
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// Layer is one GNN layer in the paper's abstraction (Fig. 3): a message
// (combination) function 𝒯 feeding an aggregation 𝒜, followed by an update
// combining the aggregated neighborhood α_{l,u} and — for self-dependent
// models like GraphSAGE and GIN — the node's own message m_{l,u}, with an
// element-wise activation.
//
// Per-node semantics, matching Sec. II notation:
//
//	m_{l,u}   = ComputeMessage(h_{l,u})
//	α_{l,u}   = 𝒜(m_{l,v} : v ∈ N(u))
//	h_{l+1,u} = Update(α_{l,u}, m_{l,u})   (= act(𝒯(α, m)))
//
// InkStream's expressiveness condition (1) — "one node's message in a layer
// only depends on its message and aggregated neighborhood in the previous
// layer" — is enforced by this interface shape: Update sees only the two
// per-node vectors.
type Layer interface {
	// Name identifies the layer for diagnostics ("gcn[0]").
	Name() string
	// InDim is the dimension of h_l, MsgDim of m_l and α_l, OutDim of
	// h_{l+1}.
	InDim() int
	MsgDim() int
	OutDim() int
	// Agg is the layer's aggregation function.
	Agg() Aggregator
	// SelfDependent reports whether Update reads m (the node's own
	// message). When true, a node whose embedding changed at layer l-1
	// also affects *itself* at layer l, which InkStream models with a
	// self-directed user event (Sec. II-D).
	SelfDependent() bool
	// ComputeMessage writes m_{l,u} into dst (len MsgDim) from h_{l,u}
	// (len InDim).
	ComputeMessage(dst, h tensor.Vector)
	// Update writes h_{l+1,u} into dst (len OutDim) from α_{l,u} and
	// m_{l,u} (both len MsgDim). Implementations must not retain or
	// mutate alpha/m.
	Update(dst, alpha, m tensor.Vector)
	// MessageFLOPs and UpdateFLOPs report the per-node floating point cost
	// of the two phases, used by the instrumented engines.
	MessageFLOPs() int64
	UpdateFLOPs() int64
}

// CountMessage records the cost of one ComputeMessage call against c.
func CountMessage(c *metrics.Counters, l Layer) {
	c.FetchVec(l.InDim())
	c.AddFLOPs(l.MessageFLOPs())
	c.StoreVec(l.MsgDim())
}

// CountUpdate records the cost of one Update call against c.
func CountUpdate(c *metrics.Counters, l Layer) {
	c.FetchVec(l.MsgDim()) // α
	if l.SelfDependent() {
		c.FetchVec(l.MsgDim()) // own message
	}
	c.AddFLOPs(l.UpdateFLOPs())
	c.StoreVec(l.OutDim())
}
