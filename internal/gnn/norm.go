package gnn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// GraphNorm normalises each embedding channel across the whole vertex set:
// h'[u][c] = γ[c] · (h[u][c] − μ[c]) / σ[c] + β[c].
//
// Exact GraphNorm recomputes μ and σ over all vertices on every call, which
// in a dynamic graph couples every vertex to every change (Sec. II-E). The
// paper's approximation freezes μ and σ at the statistics captured during
// (periodic re-)training; Freeze switches a layer into that mode, making
// the operation per-node and therefore compatible with incremental
// updates.
type GraphNorm struct {
	Gamma, Beta tensor.Vector
	// Frozen statistics; valid only when IsFrozen.
	Mu, Sigma tensor.Vector
	IsFrozen  bool
	// Eps guards against zero variance.
	Eps float32
}

// NewGraphNorm returns an exact-mode GraphNorm with unit scale and zero
// shift over dim channels.
func NewGraphNorm(dim int) *GraphNorm {
	g := &GraphNorm{
		Gamma: make(tensor.Vector, dim),
		Beta:  make(tensor.Vector, dim),
		Eps:   1e-5,
	}
	for i := range g.Gamma {
		g.Gamma[i] = 1
	}
	return g
}

// Stats computes per-channel mean and standard deviation over all rows of h.
func Stats(h *tensor.Matrix, eps float32) (mu, sigma tensor.Vector) {
	mu = make(tensor.Vector, h.Cols)
	sigma = make(tensor.Vector, h.Cols)
	if h.Rows == 0 {
		for c := range sigma {
			sigma[c] = 1
		}
		return mu, sigma
	}
	n := float32(h.Rows)
	for u := 0; u < h.Rows; u++ {
		tensor.Axpy(mu, 1, h.Row(u))
	}
	tensor.Scale(mu, 1/n, mu)
	for u := 0; u < h.Rows; u++ {
		row := h.Row(u)
		for c := range sigma {
			d := row[c] - mu[c]
			sigma[c] += d * d
		}
	}
	for c := range sigma {
		sigma[c] = float32(math.Sqrt(float64(sigma[c]/n + eps)))
	}
	return mu, sigma
}

// Freeze captures the statistics of h (standing in for the training-time
// statistics) and switches the layer to frozen mode.
func (g *GraphNorm) Freeze(h *tensor.Matrix) {
	g.Mu, g.Sigma = Stats(h, g.Eps)
	g.IsFrozen = true
}

// FreezeCaptured switches to frozen mode using the statistics recorded by
// the most recent exact-mode Apply — the paper's procedure of caching the
// mean and variance computed at (re)training time for later inference.
func (g *GraphNorm) FreezeCaptured() error {
	if g.Mu == nil || g.Sigma == nil {
		return fmt.Errorf("gnn: FreezeCaptured before any exact Apply")
	}
	g.IsFrozen = true
	return nil
}

// Apply normalises h in place. Exact mode computes fresh statistics over
// the current rows (and records them in Mu/Sigma, standing in for the
// statistics captured during periodic retraining — see FreezeCaptured);
// frozen mode uses the previously captured ones.
func (g *GraphNorm) Apply(h *tensor.Matrix) {
	mu, sigma := g.Mu, g.Sigma
	if !g.IsFrozen {
		mu, sigma = Stats(h, g.Eps)
		g.Mu, g.Sigma = mu, sigma
	}
	tensor.ParallelForGrain(h.Rows, 4*h.Cols, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			g.applyRow(h.Row(u), mu, sigma)
		}
	})
}

// ApplyRow normalises a single node's embedding in place using frozen
// statistics. It panics in exact mode, where per-node application is
// ill-defined — this is precisely why the incremental engine requires
// frozen norms.
func (g *GraphNorm) ApplyRow(h tensor.Vector) {
	if !g.IsFrozen {
		panic("gnn: GraphNorm.ApplyRow requires frozen statistics (call Freeze)")
	}
	g.applyRow(h, g.Mu, g.Sigma)
}

func (g *GraphNorm) applyRow(h, mu, sigma tensor.Vector) {
	for c := range h {
		h[c] = g.Gamma[c]*(h[c]-mu[c])/sigma[c] + g.Beta[c]
	}
}

// Dim returns the channel count.
func (g *GraphNorm) Dim() int { return len(g.Gamma) }

// Clone returns a deep copy (used to compare exact vs frozen variants of
// the same parameters in the Fig. 9 experiment).
func (g *GraphNorm) Clone() *GraphNorm {
	c := &GraphNorm{
		Gamma:    g.Gamma.Clone(),
		Beta:     g.Beta.Clone(),
		IsFrozen: g.IsFrozen,
		Eps:      g.Eps,
	}
	if g.Mu != nil {
		c.Mu = g.Mu.Clone()
	}
	if g.Sigma != nil {
		c.Sigma = g.Sigma.Clone()
	}
	return c
}

func (g *GraphNorm) String() string {
	mode := "exact"
	if g.IsFrozen {
		mode = "frozen"
	}
	return fmt.Sprintf("GraphNorm(dim=%d, %s)", g.Dim(), mode)
}
