package gnn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func newTestRng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestActKindRoundTrip(t *testing.T) {
	for _, k := range []ActKind{ActIdentity, ActReLU} {
		parsed, err := ParseActKind(k.String())
		if err != nil || parsed != k {
			t.Errorf("round trip %v: %v, %v", k, parsed, err)
		}
	}
	if _, err := ParseActKind("tanh"); err == nil {
		t.Error("unsupported activation accepted")
	}
}

func TestActKindFn(t *testing.T) {
	x := tensor.Vector{-1, 2}
	out := tensor.NewVector(2)
	ActReLU.Fn()(out, x)
	if !out.Equal(tensor.Vector{0, 2}) {
		t.Errorf("relu = %v", out)
	}
	ActIdentity.Fn()(out, x)
	if !out.Equal(x) {
		t.Errorf("identity = %v", out)
	}
}

func TestLayerActAccessors(t *testing.T) {
	rng := newTestRng()
	agg := NewAggregator(AggMax)
	if NewGCNLayer(rng, "g", 2, 2, agg, ActReLU).Act() != ActReLU {
		t.Error("GCN Act")
	}
	if NewSAGELayer(rng, "s", 2, 2, agg, ActIdentity).Act() != ActIdentity {
		t.Error("SAGE Act")
	}
	if NewGINLayer(rng, "i", 2, 2, agg, ActReLU).Act() != ActReLU {
		t.Error("GIN Act")
	}
	if NewGraphConvLayer(rng, "c", 2, 2, agg, ActReLU).Act() != ActReLU {
		t.Error("GraphConv Act")
	}
}

// Restore constructors rebuild layers that infer identically.
func TestRestoreConstructors(t *testing.T) {
	rng := newTestRng()
	g := lineGraph(t, 8)
	x := tensor.RandMatrix(rng, 8, 4, 1)
	orig := NewGCN(rng, 4, 6, NewAggregator(AggMax))
	l0 := orig.Layers[0].(*GCNLayer)
	l1 := orig.Layers[1].(*GCNLayer)
	rebuilt := &Model{Name: "GCN", Layers: []Layer{
		RestoreGCNLayer(l0.Name(), l0.W, l0.B, l0.Agg(), l0.Act()),
		RestoreGCNLayer(l1.Name(), l1.W, l1.B, l1.Agg(), l1.Act()),
	}}
	a, err := Infer(orig, g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Infer(rebuilt, g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("restored model infers differently")
	}
}
