package gnn

import (
	"math/rand"

	"repro/internal/graph"
)

// SampleNeighbors builds a directed subgraph of g where every node keeps at
// most fanout uniformly sampled in-neighbors — the GraphSAGE neighbor
// sampler used by the paper's PyG baseline (10 neighbors per layer). The
// returned graph is directed even when g is undirected: sampling per
// destination is asymmetric.
func SampleNeighbors(rng *rand.Rand, g *graph.Graph, fanout int) *graph.Graph {
	out := graph.New(g.NumNodes())
	perm := make([]graph.NodeID, 0, 64)
	for u := 0; u < g.NumNodes(); u++ {
		nbrs := g.InNeighbors(graph.NodeID(u))
		if len(nbrs) <= fanout {
			for _, v := range nbrs {
				mustAddArc(out, v, graph.NodeID(u))
			}
			continue
		}
		perm = append(perm[:0], nbrs...)
		// Partial Fisher–Yates: draw the first `fanout` entries.
		for i := 0; i < fanout; i++ {
			j := i + rng.Intn(len(perm)-i)
			perm[i], perm[j] = perm[j], perm[i]
		}
		for _, v := range perm[:fanout] {
			mustAddArc(out, v, graph.NodeID(u))
		}
	}
	return out
}

func mustAddArc(g *graph.Graph, u, v graph.NodeID) {
	if err := g.AddEdge(u, v); err != nil {
		panic("gnn: sampler produced invalid arc: " + err.Error())
	}
}
