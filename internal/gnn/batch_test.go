package gnn

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// rowOnly hides a layer's BatchedLayer methods: embedding the Layer
// interface forwards only the Layer method set, so inferLayer takes the
// per-row fallback path.
type rowOnly struct{ Layer }

func rowOnlyModel(m *Model) *Model {
	layers := make([]Layer, len(m.Layers))
	for i, l := range m.Layers {
		layers[i] = rowOnly{l}
	}
	return &Model{Name: m.Name + "-rowonly", Layers: layers, Norms: m.Norms}
}

func randTestGraph(rng *rand.Rand, n, edges int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < edges; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		g.AddEdge(u, v)
	}
	return g
}

// TestBatchedInferMatchesPerRow asserts that full inference through the
// batched GEMM path is bit-identical to the per-row path — every H, M and
// α checkpoint — and that the instrumentation counters agree exactly. This
// is the invariant Engine.Verify(0) relies on: the engine maintains state
// with per-row kernels and verifies against batched full inference.
func TestBatchedInferMatchesPerRow(t *testing.T) {
	const n, feat, hidden = 60, 24, 16
	builders := map[string]func(rng *rand.Rand) *Model{
		"gcn-mean":  func(rng *rand.Rand) *Model { return NewGCN(rng, feat, hidden, NewAggregator(AggMean)) },
		"gcn-max":   func(rng *rand.Rand) *Model { return NewGCN(rng, feat, hidden, NewAggregator(AggMax)) },
		"sage":      func(rng *rand.Rand) *Model { return NewSAGE(rng, feat, hidden, NewAggregator(AggMean)) },
		"gin":       func(rng *rand.Rand) *Model { return NewGIN(rng, feat, hidden, 3, NewAggregator(AggSum)) },
		"graphconv": func(rng *rand.Rand) *Model { return NewGraphConv(rng, feat, hidden, NewAggregator(AggSum)) },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			model := build(rand.New(rand.NewSource(11)))
			for _, l := range model.Layers {
				if _, ok := l.(BatchedLayer); !ok {
					t.Fatalf("layer %s does not implement BatchedLayer", l.Name())
				}
			}
			g := randTestGraph(rand.New(rand.NewSource(12)), n, 4*n)
			x := tensor.RandMatrix(rand.New(rand.NewSource(13)), n, feat, 1)

			var cb, cr metrics.Counters
			batched, err := Infer(model, g, x, &cb)
			if err != nil {
				t.Fatal(err)
			}
			perRow, err := Infer(rowOnlyModel(model), g, x, &cr)
			if err != nil {
				t.Fatal(err)
			}
			if !batched.Equal(perRow) {
				t.Fatal("batched inference is not bit-identical to per-row inference")
			}
			if sb, sr := cb.Snapshot(), cr.Snapshot(); sb != sr {
				t.Fatalf("counters diverge:\nbatched %v\nper-row %v", sb, sr)
			}
		})
	}
}

// TestBatchedInferWithNorm covers the GraphNorm tail after the batched
// update phase.
func TestBatchedInferWithNorm(t *testing.T) {
	const n, feat, hidden = 40, 12, 10
	rng := rand.New(rand.NewSource(21))
	model := NewGCN(rng, feat, hidden, NewAggregator(AggMean))
	model.Norms = []*GraphNorm{NewGraphNorm(hidden), NewGraphNorm(hidden)}
	g := randTestGraph(rand.New(rand.NewSource(22)), n, 3*n)
	x := tensor.RandMatrix(rand.New(rand.NewSource(23)), n, feat, 1)
	batched, err := Infer(model, g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	perRow, err := Infer(rowOnlyModel(model), g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !batched.Equal(perRow) {
		t.Fatal("batched inference with GraphNorm diverges from per-row")
	}
}
