package tensor

import (
	"sync"
	"sync/atomic"
	"testing"
)

// coverage records which chunks a parallel region executed.
type coverage struct {
	mu     sync.Mutex
	chunks [][2]int
}

func (c *coverage) body(lo, hi int) {
	c.mu.Lock()
	c.chunks = append(c.chunks, [2]int{lo, hi})
	c.mu.Unlock()
}

// verify asserts the chunks tile [0, n) exactly: disjoint, complete.
func (c *coverage) verify(t *testing.T, n int) {
	t.Helper()
	seen := make([]bool, n)
	for _, ch := range c.chunks {
		for i := ch[0]; i < ch[1]; i++ {
			if i < 0 || i >= n {
				t.Fatalf("chunk %v out of range [0,%d)", ch, n)
			}
			if seen[i] {
				t.Fatalf("index %d covered twice", i)
			}
			seen[i] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d not covered", i)
		}
	}
}

func TestParallelForCoversRange(t *testing.T) {
	oldP, oldMin := Parallelism, MinChunkWork
	defer func() { Parallelism, MinChunkWork = oldP, oldMin }()
	for _, w := range []int{1, 2, 4, 7} {
		Parallelism = w
		for _, min := range []int{1, 64, 4096} {
			MinChunkWork = min
			for _, n := range []int{0, 1, 2, 5, 100, 1023, 1024, 4097} {
				var c coverage
				ParallelFor(n, c.body)
				c.verify(t, n)
			}
		}
	}
}

func TestParallelForGrainCoversRange(t *testing.T) {
	oldP, oldMin := Parallelism, MinChunkWork
	defer func() { Parallelism, MinChunkWork = oldP, oldMin }()
	Parallelism = 4
	MinChunkWork = 1024
	for _, grain := range []int{0, 1, 32, 1024, 1 << 20} {
		for _, n := range []int{0, 3, 64, 1000, 5000} {
			var c coverage
			ParallelForGrain(n, grain, c.body)
			c.verify(t, n)
		}
	}
}

// TestParallelForMinChunk asserts that regions below the MinChunkWork floor
// run as a single sequential chunk, and that a large grain lowers the index
// floor proportionally.
func TestParallelForMinChunk(t *testing.T) {
	oldP, oldMin := Parallelism, MinChunkWork
	defer func() { Parallelism, MinChunkWork = oldP, oldMin }()
	Parallelism = 8
	MinChunkWork = 1024

	// 100 unit-cost indices < 2*1024: must not split.
	var c coverage
	ParallelFor(100, c.body)
	if len(c.chunks) != 1 {
		t.Errorf("tiny region split into %d chunks, want 1", len(c.chunks))
	}
	c.verify(t, 100)

	// Same 100 indices at grain 256 carry 25600 units: must split.
	var c2 coverage
	ParallelForGrain(100, 256, c2.body)
	if len(c2.chunks) < 2 {
		t.Errorf("heavy region ran in %d chunks, want >= 2", len(c2.chunks))
	}
	c2.verify(t, 100)

	// No chunk may carry less than MinChunkWork units (except implied by
	// the worker split of a large region).
	for _, ch := range c2.chunks {
		if units := (ch[1] - ch[0]) * 256; units < MinChunkWork {
			t.Errorf("chunk %v carries %d units < MinChunkWork %d", ch, units, MinChunkWork)
		}
	}
}

// TestParallelForNested asserts nested parallel regions complete (the
// helping wait prevents pool starvation deadlocks).
func TestParallelForNested(t *testing.T) {
	oldP, oldMin := Parallelism, MinChunkWork
	defer func() { Parallelism, MinChunkWork = oldP, oldMin }()
	Parallelism = 4
	MinChunkWork = 1
	var total atomic.Int64
	ParallelFor(64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ParallelFor(32, func(ilo, ihi int) {
				total.Add(int64(ihi - ilo))
			})
		}
	})
	if got := total.Load(); got != 64*32 {
		t.Fatalf("nested regions covered %d indices, want %d", got, 64*32)
	}
}

func TestParallelForEachGrain(t *testing.T) {
	oldP, oldMin := Parallelism, MinChunkWork
	defer func() { Parallelism, MinChunkWork = oldP, oldMin }()
	Parallelism = 4
	MinChunkWork = 1
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	var sum atomic.Int64
	ParallelForEachGrain(items, 64, func(v int) { sum.Add(int64(v)) })
	want := int64(len(items)*(len(items)-1)) / 2
	if sum.Load() != want {
		t.Fatalf("sum %d, want %d", sum.Load(), want)
	}
}

// TestParallelForConcurrentRegions exercises many goroutines issuing
// regions against the shared pool at once (run under -race).
func TestParallelForConcurrentRegions(t *testing.T) {
	oldP, oldMin := Parallelism, MinChunkWork
	defer func() { Parallelism, MinChunkWork = oldP, oldMin }()
	Parallelism = 4
	MinChunkWork = 1
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				var sum atomic.Int64
				ParallelFor(257, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						sum.Add(1)
					}
				})
				if sum.Load() != 257 {
					t.Errorf("covered %d of 257", sum.Load())
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkParallelForDispatch measures the fixed cost of one parallel
// region: the pool dispatch that the persistent workers amortise.
func BenchmarkParallelForDispatch(b *testing.B) {
	oldMin := MinChunkWork
	MinChunkWork = 1
	defer func() { MinChunkWork = oldMin }()
	b.Run("tiny-body", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ParallelFor(1024, func(lo, hi int) {})
		}
	})
	b.Run("seq-fallback", func(b *testing.B) {
		MinChunkWork = 1 << 20
		for i := 0; i < b.N; i++ {
			ParallelFor(1024, func(lo, hi int) {})
		}
	})
}
