// Package tensor provides the dense linear-algebra substrate used by the
// GNN inference engine: row-major float32 matrices and vectors, parallel
// blocked matrix multiplication, fused element-wise kernels, and the
// activation functions required by the supported models.
//
// The package is deliberately small and allocation-conscious: inference on
// large graphs is dominated by per-row operations (one row per graph node),
// so every hot kernel has an in-place destination form and the matrix type
// exposes zero-copy row views.
package tensor

import (
	"fmt"
	"math"
)

// Vector is a dense float32 vector. It is a plain slice so callers can use
// standard slice operations; the functions in this package treat length as
// the dimension.
type Vector []float32

// NewVector returns a zero vector with dimension n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Equal reports whether v and w have the same dimension and are
// bit-identical in every channel.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether v and w have the same dimension and every
// channel agrees within tol, using a mixed absolute/relative criterion:
// |a-b| <= tol * max(1, |a|, |b|).
func (v Vector) ApproxEqual(w Vector, tol float32) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		d := v[i] - w[i]
		if d < 0 {
			d = -d
		}
		m := float32(1)
		if a := abs32(v[i]); a > m {
			m = a
		}
		if b := abs32(w[i]); b > m {
			m = b
		}
		if d > tol*m {
			return false
		}
	}
	return true
}

func abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}

// Matrix is a dense row-major float32 matrix. Rows typically index graph
// nodes and columns index embedding channels.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: ragged row %d: got %d want %d", i, len(r), cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns a zero-copy view of row i.
func (m *Matrix) Row(i int) Vector {
	return Vector(m.Data[i*m.Cols : (i+1)*m.Cols])
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set stores v at (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// SetRow copies v into row i. v must have dimension Cols.
func (m *Matrix) SetRow(i int, v Vector) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: SetRow dim %d into %d-col matrix", len(v), m.Cols))
	}
	copy(m.Row(i), v)
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{Rows: m.Rows, Cols: m.Cols, Data: make([]float32, len(m.Data))}
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0 without reallocating.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Equal reports whether m and n have the same shape and bit-identical data.
func (m *Matrix) Equal(n *Matrix) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i := range m.Data {
		if m.Data[i] != n.Data[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether m and n have the same shape and agree within
// tol per element (see Vector.ApproxEqual).
func (m *Matrix) ApproxEqual(n *Matrix, tol float32) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	return Vector(m.Data).ApproxEqual(Vector(n.Data), tol)
}

// MaxAbsDiff returns the largest absolute element-wise difference between m
// and n, for diagnostics. Panics if shapes differ.
func (m *Matrix) MaxAbsDiff(n *Matrix) float32 {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var worst float32
	for i := range m.Data {
		if d := abs32(m.Data[i] - n.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// String renders a small matrix for debugging; large matrices are
// summarised by shape.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%g", m.At(i, j))
		}
	}
	return s + "]"
}

// AppendRow grows the matrix by one row holding a copy of v. Existing row
// views remain valid over the old backing array but may become stale if
// append reallocates; callers must not hold row views across AppendRow.
func (m *Matrix) AppendRow(v Vector) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AppendRow dim %d into %d-col matrix", len(v), m.Cols))
	}
	m.Data = append(m.Data, v...)
	m.Rows++
}

// Inf32 is the positive infinity used as the reset sentinel for min
// aggregation; its negation is the sentinel for max aggregation.
var Inf32 = float32(math.Inf(1))

// IsFinite reports whether every element of v is finite (no reset sentinel
// leaked into a result).
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsInf(float64(x), 0) || math.IsNaN(float64(x)) {
			return false
		}
	}
	return true
}
