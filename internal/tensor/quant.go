package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Quant selects the on-page encoding of an embedding row in the tiered
// store's read-path representation. The write path (the engine's own
// state) is always full float32; quantization only ever happens when a row
// is published into a page, from authoritative fp32 values, so error never
// compounds across epochs.
type Quant uint8

const (
	// QuantF32 stores rows bit-exactly as little-endian float32.
	QuantF32 Quant = iota
	// QuantF16 stores rows as IEEE-754 binary16 with round-to-nearest-even.
	QuantF16
	// QuantI8 stores rows as int8 with one per-row symmetric float32 scale:
	// layout [scale float32 LE][dim × int8]. The worst-case absolute error
	// per channel is scale/2 = maxabs/254.
	QuantI8
)

// ParseQuant maps a flag value ("f32"/"fp32"/"none", "f16"/"fp16",
// "i8"/"int8") to a Quant.
func ParseQuant(s string) (Quant, error) {
	switch s {
	case "", "none", "f32", "fp32", "float32":
		return QuantF32, nil
	case "f16", "fp16", "half":
		return QuantF16, nil
	case "i8", "int8":
		return QuantI8, nil
	}
	return QuantF32, fmt.Errorf("unknown quantization %q (want f32, f16 or int8)", s)
}

// String returns the canonical flag spelling.
func (q Quant) String() string {
	switch q {
	case QuantF16:
		return "f16"
	case QuantI8:
		return "int8"
	default:
		return "f32"
	}
}

// RowBytes returns the encoded size of one dim-channel row under q.
func (q Quant) RowBytes(dim int) int {
	switch q {
	case QuantF16:
		return 2 * dim
	case QuantI8:
		return 4 + dim
	default:
		return 4 * dim
	}
}

// ErrorBound returns the worst-case absolute error per channel introduced
// by encoding row under q. Zero for QuantF32.
func (q Quant) ErrorBound(row Vector) float32 {
	switch q {
	case QuantF16:
		// Half precision has 11 significand bits: relative error 2^-11 in
		// the normal range, so the bound scales with the largest magnitude.
		return maxAbs(row) / 2048
	case QuantI8:
		return maxAbs(row) / 254
	default:
		return 0
	}
}

func maxAbs(row Vector) float32 {
	var m float32
	for _, x := range row {
		if a := abs32(x); a > m {
			m = a
		}
	}
	return m
}

// EncodeRow writes row into dst (which must be at least RowBytes(len(row))
// long) using encoding q.
func (q Quant) EncodeRow(dst []byte, row Vector) {
	switch q {
	case QuantF16:
		for i, x := range row {
			binary.LittleEndian.PutUint16(dst[2*i:], F32ToF16(x))
		}
	case QuantI8:
		scale := maxAbs(row) / 127
		binary.LittleEndian.PutUint32(dst, math.Float32bits(scale))
		b := dst[4:]
		if scale == 0 {
			for i := range row {
				b[i] = 0
			}
			return
		}
		for i, x := range row {
			v := x / scale
			// Round half away from zero; the symmetric range is [-127,127].
			if v >= 0 {
				v += 0.5
			} else {
				v -= 0.5
			}
			n := int32(v)
			if n > 127 {
				n = 127
			} else if n < -127 {
				n = -127
			}
			b[i] = byte(int8(n))
		}
	default:
		for i, x := range row {
			binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(x))
		}
	}
}

// DecodeRow reads one dim-channel row from src into dst (len(dst) = dim).
func (q Quant) DecodeRow(dst Vector, src []byte) {
	switch q {
	case QuantF16:
		for i := range dst {
			dst[i] = F16ToF32(binary.LittleEndian.Uint16(src[2*i:]))
		}
	case QuantI8:
		scale := math.Float32frombits(binary.LittleEndian.Uint32(src))
		b := src[4:]
		for i := range dst {
			dst[i] = float32(int8(b[i])) * scale
		}
	default:
		for i := range dst {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
		}
	}
}

// F32ToF16 converts a float32 to IEEE-754 binary16 with round-to-nearest,
// ties to even. Values beyond the half range become ±Inf; NaNs are
// preserved (as quiet NaNs).
func F32ToF16(x float32) uint16 {
	bits := math.Float32bits(x)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127
	mant := bits & 0x7fffff

	switch {
	case exp == 128: // Inf or NaN
		if mant != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	case exp > 15: // overflow → Inf
		return sign | 0x7c00
	case exp >= -14: // normal half
		// 10 mantissa bits survive; round the dropped 13.
		m := mant >> 13
		round := mant & 0x1fff
		h := sign | uint16(exp+15)<<10 | uint16(m)
		if round > 0x1000 || (round == 0x1000 && m&1 == 1) {
			h++ // carries ripple into the exponent correctly
		}
		return h
	case exp >= -25: // subnormal half
		// Implicit leading 1, shifted right by the exponent deficit.
		m := mant | 0x800000
		shift := uint32(-exp - 1) // 13 (exp=-14) .. 24 (exp=-25)
		dropped := m & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		hm := m >> shift
		if dropped > half || (dropped == half && hm&1 == 1) {
			hm++
		}
		return sign | uint16(hm)
	default: // underflow → signed zero
		return sign
	}
}

// F16ToF32 converts an IEEE-754 binary16 value to float32 exactly.
func F16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)

	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize into the float32 format.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}
