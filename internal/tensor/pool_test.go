package tensor

import (
	"sync"
	"testing"
)

func TestVecPoolBasics(t *testing.T) {
	p := NewVecPool(4)
	if p.Dim() != 4 {
		t.Errorf("Dim = %d", p.Dim())
	}
	v := p.Get()
	if len(v) != 4 {
		t.Fatalf("Get len = %d", len(v))
	}
	v[0] = 42
	p.Put(v)
	// The pool may or may not return the same vector; either way the
	// dimension is right and contents are caller-owned.
	w := p.Get()
	if len(w) != 4 {
		t.Fatalf("second Get len = %d", len(w))
	}
}

func TestVecPoolPutDimCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Put with wrong dim must panic")
		}
	}()
	NewVecPool(4).Put(make(Vector, 3))
}

func TestVecPoolConcurrent(t *testing.T) {
	p := NewVecPool(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v := p.Get()
				for j := range v {
					v[j] = float32(i)
				}
				p.Put(v)
			}
		}()
	}
	wg.Wait()
}

func TestAppendRow(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}})
	m.AppendRow(Vector{5, 6})
	if m.Rows != 3 || m.At(2, 1) != 6 {
		t.Errorf("AppendRow result %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Error("AppendRow with wrong dim must panic")
		}
	}()
	m.AppendRow(Vector{1})
}
