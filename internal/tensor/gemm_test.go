package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// sprinkledMatrix returns a rows×cols matrix of random values with exact
// zeros sprinkled in, exercising the kernels' zero-skip paths.
func sprinkledMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		switch rng.Intn(4) {
		case 0:
			m.Data[i] = 0
		case 1:
			m.Data[i] = -0.0
		default:
			m.Data[i] = float32(rng.NormFloat64())
		}
	}
	return m
}

// gemmShapes covers odd shapes: non-multiples of the row tile and column
// block, 1×1, and zero-dimension edges.
var gemmShapes = [][3]int{
	{0, 0, 0}, {0, 4, 4}, {4, 0, 4}, {4, 4, 0},
	{1, 1, 1}, {1, 7, 1}, {2, 3, 5}, {3, 1, 9},
	{4, 4, 4}, {5, 5, 5}, {7, 16, 3}, {8, 8, 8},
	{9, 33, 17}, {13, 2, 31}, {16, 17, 16}, {17, 64, 33},
	{31, 31, 31}, {64, 5, 127},
}

// TestMatMulMatchesVecMat asserts that the blocked GEMM equals the per-row
// VecMat kernel bit-for-bit across odd shapes. This is the invariant the
// incremental engine's Verify(0) depends on: batched full inference and
// per-row incremental refresh must produce identical bits.
func TestMatMulMatchesVecMat(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sh := range gemmShapes {
		n, k, m := sh[0], sh[1], sh[2]
		a := sprinkledMatrix(rng, n, k)
		b := sprinkledMatrix(rng, k, m)
		c := NewMatrix(n, m)
		c.Fill(99) // GEMM must fully overwrite
		MatMul(c, a, b)
		want := NewVector(m)
		for i := 0; i < n; i++ {
			VecMat(want, a.Row(i), b)
			if !c.Row(i).Equal(want) {
				t.Fatalf("shape %dx%dx%d: row %d: MatMul %v != VecMat %v", n, k, m, i, c.Row(i), want)
			}
		}
	}
}

// TestMatMulBiasActMatchesPerRow asserts the fused epilogue variants equal
// the per-row VecMat + Add + activation sequence bit-for-bit.
func TestMatMulBiasActMatchesPerRow(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	acts := map[string]Activation{"nil": nil, "relu": ReLU, "identity": Identity}
	for _, sh := range gemmShapes {
		n, k, m := sh[0], sh[1], sh[2]
		a := sprinkledMatrix(rng, n, k)
		b := sprinkledMatrix(rng, k, m)
		bias := RandVector(rng, m, 1)
		for name, act := range acts {
			c := NewMatrix(n, m)
			MatMulBiasAct(c, a, b, bias, act)
			want := NewVector(m)
			for i := 0; i < n; i++ {
				VecMat(want, a.Row(i), b)
				Add(want, want, bias)
				if act != nil {
					act(want, want)
				}
				if !c.Row(i).Equal(want) {
					t.Fatalf("shape %dx%dx%d act=%s: row %d mismatch", n, k, m, name, i)
				}
			}
		}
		// nil bias, with activation.
		c := NewMatrix(n, m)
		MatMulBiasAct(c, a, b, nil, ReLU)
		want := NewVector(m)
		for i := 0; i < n; i++ {
			VecMat(want, a.Row(i), b)
			ReLU(want, want)
			if !c.Row(i).Equal(want) {
				t.Fatalf("shape %dx%dx%d nil-bias: row %d mismatch", n, k, m, i)
			}
		}
	}
}

// TestParallelMatMulMatchesSequential asserts the row-sharded parallel
// kernels are bit-identical to the sequential ones regardless of worker
// count (each output row is computed whole by one worker).
func TestParallelMatMulMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	oldP, oldMin := Parallelism, MinChunkWork
	defer func() { Parallelism, MinChunkWork = oldP, oldMin }()
	MinChunkWork = 1 // force splitting even for small shapes
	for _, w := range []int{1, 2, 3, 8} {
		Parallelism = w
		for _, sh := range [][3]int{{5, 5, 5}, {17, 33, 9}, {64, 64, 64}, {130, 32, 70}} {
			n, k, m := sh[0], sh[1], sh[2]
			a := sprinkledMatrix(rng, n, k)
			b := sprinkledMatrix(rng, k, m)
			seq := NewMatrix(n, m)
			MatMul(seq, a, b)
			par := NewMatrix(n, m)
			ParallelMatMul(par, a, b)
			if !par.Equal(seq) {
				t.Fatalf("w=%d shape %v: parallel != sequential", w, sh)
			}
			parF := NewMatrix(n, m)
			bias := RandVector(rng, m, 1)
			ParallelMatMulBiasAct(parF, a, b, bias, ReLU)
			seqF := NewMatrix(n, m)
			MatMulBiasAct(seqF, a, b, bias, ReLU)
			if !parF.Equal(seqF) {
				t.Fatalf("w=%d shape %v: parallel fused != sequential fused", w, sh)
			}
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	for _, f := range []func(){
		func() { MatMul(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 2)) },
		func() { MatMulBiasAct(NewMatrix(2, 2), NewMatrix(2, 2), NewMatrix(2, 2), NewVector(3), nil) },
		func() { ParallelMatMul(NewMatrix(3, 2), NewMatrix(2, 2), NewMatrix(2, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("shape mismatch must panic")
				}
			}()
			f()
		}()
	}
}

func TestGetScratchReuse(t *testing.T) {
	m := GetScratch(8, 16)
	if m.Rows != 8 || m.Cols != 16 || len(m.Data) != 128 {
		t.Fatalf("scratch shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	PutScratch(m)
	// A smaller request may reuse the same backing array, reshaped.
	s := GetScratch(4, 4)
	if s.Rows != 4 || s.Cols != 4 || len(s.Data) != 16 {
		t.Fatalf("reshaped scratch %dx%d len %d", s.Rows, s.Cols, len(s.Data))
	}
	PutScratch(s)
}

func BenchmarkGEMMKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, sh := range [][3]int{{256, 256, 256}, {2048, 256, 256}, {2048, 32, 32}} {
		a := RandMatrix(rng, sh[0], sh[1], 1)
		w := RandMatrix(rng, sh[1], sh[2], 1)
		c := NewMatrix(sh[0], sh[2])
		b.Run(fmt.Sprintf("%dx%dx%d", sh[0], sh[1], sh[2]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MatMul(c, a, w)
			}
		})
	}
}
