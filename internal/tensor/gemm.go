package tensor

import "fmt"

// This file holds the blocked GEMM core shared by MatMul, the fused
// bias/activation variants and their parallel wrappers.
//
// The kernel is register-tiled over rows and cache-blocked over columns
// only: every output element c[i][j] is accumulated as the ordered sum over
// k (ascending) of a[i][k]*b[k][j], exactly like the per-row VecMat kernel.
// Keeping the k dimension in arrival order is a hard invariant — the
// incremental engine verifies its maintained state bit-for-bit against a
// fresh batched inference (Engine.Verify(0)), which only works because the
// batched and per-row combination paths produce identical bits. Tiling may
// therefore reorder which outputs are computed together (rows, column
// blocks) but never the reduction order within one output element.
//
// Inputs are assumed finite (no Inf/NaN); under that assumption skipping
// zero multiplicands, as VecMat does, cannot change any accumulated bit.

const (
	// gemmMR is the register tile height: rows of c accumulated together so
	// each streamed row of b is reused gemmMR times from registers/L1. Two
	// rows measured fastest under gc's scalar codegen (wider tiles spill and
	// re-check bounds); see BenchmarkGEMMKernel.
	gemmMR = 2
	// gemmNC is the column block width (in float32 elements): the c tile
	// (gemmMR rows) and the active b row segment stay cache-resident while
	// the k loop streams.
	gemmNC = 1024
)

// gemmRows computes rows [lo, hi) of c = a*b with the tiled kernel.
// It fully overwrites those rows.
func gemmRows(c, a, b *Matrix, lo, hi int) {
	if c.Cols == 0 {
		return
	}
	k := a.Cols
	for jc := 0; jc < c.Cols; jc += gemmNC {
		jHi := jc + gemmNC
		if jHi > c.Cols {
			jHi = c.Cols
		}
		i := lo
		for ; i+gemmMR <= hi; i += gemmMR {
			gemm2(c, a, b, i, jc, jHi, k)
		}
		for ; i < hi; i++ {
			gemm1(c, a, b, i, jc, jHi, k)
		}
	}
}

// gemm2 accumulates the gemmMR=2 row tile c[i..i+1][jLo:jHi]. The slice
// re-derivations before the inner loop let the compiler prove every index
// in bounds (verified with -d=ssa/check_bce).
func gemm2(c, a, b *Matrix, i, jLo, jHi, k int) {
	c0 := c.Row(i)[jLo:jHi:jHi]
	c1 := c.Row(i + 1)[jLo:jHi:jHi]
	for j := range c0 {
		c0[j], c1[j] = 0, 0
	}
	a0 := a.Row(i)
	a1 := a.Row(i + 1)
	for p := 0; p < k; p++ {
		v0, v1 := a0[p], a1[p]
		if v0 == 0 && v1 == 0 {
			continue
		}
		bp := b.Row(p)[jLo:jHi:jHi]
		bp = bp[:len(c0)]
		c1 := c1[:len(bp)]
		// The j loop is unrolled 4-wide: output elements are independent,
		// so unrolling across j never touches the per-element k order.
		j := 0
		for ; j+4 <= len(bp); j += 4 {
			x0, x1, x2, x3 := bp[j], bp[j+1], bp[j+2], bp[j+3]
			c0[j] += v0 * x0
			c0[j+1] += v0 * x1
			c0[j+2] += v0 * x2
			c0[j+3] += v0 * x3
			c1[j] += v1 * x0
			c1[j+1] += v1 * x1
			c1[j+2] += v1 * x2
			c1[j+3] += v1 * x3
		}
		for ; j < len(bp); j++ {
			x := bp[j]
			c0[j] += v0 * x
			c1[j] += v1 * x
		}
	}
}

// gemm1 accumulates a single remainder row c[i][jLo:jHi].
func gemm1(c, a, b *Matrix, i, jLo, jHi, k int) {
	ci := c.Row(i)[jLo:jHi:jHi]
	for j := range ci {
		ci[j] = 0
	}
	ai := a.Row(i)
	for p := 0; p < k; p++ {
		v := ai[p]
		if v == 0 {
			continue
		}
		bp := b.Row(p)[jLo:jHi:jHi]
		bp = bp[:len(ci)]
		for j, x := range bp {
			ci[j] += v * x
		}
	}
}

// epilogueRows applies the fused bias/activation tail to rows [lo, hi) of
// c, in the same order as the per-row path: accumulate, then add bias, then
// activate. Either may be nil.
func epilogueRows(c *Matrix, bias Vector, act Activation, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := c.Row(i)
		if bias != nil {
			Add(row, row, bias)
		}
		if act != nil {
			act(row, row)
		}
	}
}

func checkMatMulShapes(op string, c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shapes %dx%d * %dx%d -> %dx%d",
			op, a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
}

// MatMulBiasAct computes c = act(a*b + bias) sequentially with the fused
// epilogue. bias (length c.Cols) and act may each be nil; the result is
// bit-identical to running VecMat, Add and the activation row by row.
func MatMulBiasAct(c, a, b *Matrix, bias Vector, act Activation) {
	checkMatMulShapes("MatMulBiasAct", c, a, b)
	if bias != nil && len(bias) != c.Cols {
		panic(fmt.Sprintf("tensor: MatMulBiasAct bias dim %d for %d cols", len(bias), c.Cols))
	}
	gemmRows(c, a, b, 0, c.Rows)
	epilogueRows(c, bias, act, 0, c.Rows)
}

// MatMulBiasReLU computes c = max(0, a*b + bias), the common hidden-layer
// epilogue.
func MatMulBiasReLU(c, a, b *Matrix, bias Vector) {
	MatMulBiasAct(c, a, b, bias, ReLU)
}

// ParallelMatMulBiasAct is MatMulBiasAct with rows sharded over the worker
// pool. The row partition does not affect bits: each output row is computed
// entirely by one worker in the canonical order.
func ParallelMatMulBiasAct(c, a, b *Matrix, bias Vector, act Activation) {
	checkMatMulShapes("ParallelMatMulBiasAct", c, a, b)
	if bias != nil && len(bias) != c.Cols {
		panic(fmt.Sprintf("tensor: ParallelMatMulBiasAct bias dim %d for %d cols", len(bias), c.Cols))
	}
	if a.Rows*a.Cols*b.Cols < parallelMatMulCutoff {
		gemmRows(c, a, b, 0, c.Rows)
		epilogueRows(c, bias, act, 0, c.Rows)
		return
	}
	ParallelForGrain(a.Rows, a.Cols*b.Cols+b.Cols, func(lo, hi int) {
		gemmRows(c, a, b, lo, hi)
		epilogueRows(c, bias, act, lo, hi)
	})
}
