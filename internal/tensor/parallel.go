package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallelism is the default worker count for parallel kernels. It is a
// variable so benchmarks and tests can pin it; zero or negative values mean
// "use GOMAXPROCS". It bounds how many chunks a parallel region is split
// into, not the size of the shared worker pool (which is fixed at
// GOMAXPROCS when first used).
var Parallelism = 0

// MinChunkWork is the minimum amount of work — measured in grain units, see
// ParallelForGrain — that one chunk of a parallel region must carry.
// Regions smaller than two such chunks run sequentially on the caller:
// cross-goroutine synchronization costs on the order of a microsecond, so
// splitting sub-microsecond bodies makes them slower, not faster.
var MinChunkWork = 1024

func workers(requested int) int {
	n := requested
	if n <= 0 {
		n = Parallelism
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ---------------------------------------------------------------------------
// Persistent worker pool.
//
// An experiment run issues millions of small parallel regions (three phases
// per layer per inference, one per engine layer per update). Spawning fresh
// goroutines for each region costs a few microseconds of scheduler work per
// call; the pool amortises that to a channel send. Workers are started
// lazily on the first parallel region and live for the process lifetime.

// parallelRegion tracks one ParallelFor invocation: how many chunks are
// still outstanding and a buffered completion signal. Regions are pooled so
// steady-state ParallelFor calls do not allocate.
type parallelRegion struct {
	pending atomic.Int32
	done    chan struct{}
}

var regionPool = sync.Pool{New: func() any {
	return &parallelRegion{done: make(chan struct{}, 1)}
}}

// poolTask is one chunk of a region, sent by value through the task queue.
type poolTask struct {
	body   func(lo, hi int)
	lo, hi int
	r      *parallelRegion
}

func (t poolTask) run() {
	t.body(t.lo, t.hi)
	if t.r.pending.Add(-1) == 0 {
		t.r.done <- struct{}{}
	}
}

var (
	poolOnce  sync.Once
	poolTasks chan poolTask
)

func ensurePool() {
	poolOnce.Do(func() {
		w := runtime.GOMAXPROCS(0)
		if w < 1 {
			w = 1
		}
		poolTasks = make(chan poolTask, 16*w)
		for i := 0; i < w; i++ {
			go func() {
				for t := range poolTasks {
					t.run()
				}
			}()
		}
	})
}

// ParallelMatMul computes c = a * b, sharding rows of a across the worker
// pool. It falls back to the sequential kernel for small inputs where
// even pool dispatch overhead would dominate.
func ParallelMatMul(c, a, b *Matrix) {
	checkMatMulShapes("ParallelMatMul", c, a, b)
	if a.Rows*a.Cols*b.Cols < parallelMatMulCutoff {
		gemmRows(c, a, b, 0, a.Rows)
		return
	}
	ParallelForGrain(a.Rows, a.Cols*b.Cols, func(lo, hi int) { gemmRows(c, a, b, lo, hi) })
}

// parallelMatMulCutoff is the multiply-add count below which the sequential
// GEMM wins outright.
const parallelMatMulCutoff = 1 << 16

// ParallelFor splits [0, n) into contiguous chunks and runs body on each
// chunk concurrently over the shared worker pool, blocking until all chunks
// complete. body must be safe to run concurrently on disjoint ranges. Each
// index is assumed to cost about one grain unit of work; use
// ParallelForGrain when a single index is substantially heavier, or tiny
// loops over expensive bodies will be needlessly serialised by the
// MinChunkWork floor.
func ParallelFor(n int, body func(lo, hi int)) { ParallelForGrain(n, 1, body) }

// ParallelForGrain is ParallelFor with an explicit per-index work estimate:
// grain is the approximate cost of one index in arbitrary "element" units
// (for per-node kernels, the embedding dimension is a good estimate). The
// splitter refuses to create chunks carrying fewer than MinChunkWork units,
// so cheap regions run inline and expensive ones still fan out.
func ParallelForGrain(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := workers(0)
	if w == 1 || n < 2*w {
		body(0, n)
		return
	}
	if grain < 1 {
		grain = 1
	}
	minIdx := MinChunkWork / grain
	if minIdx < 1 {
		minIdx = 1
	}
	if n < 2*minIdx {
		body(0, n)
		return
	}
	chunk := (n + w - 1) / w
	if chunk < minIdx {
		chunk = minIdx
	}
	nChunks := (n + chunk - 1) / chunk
	if nChunks < 2 {
		body(0, n)
		return
	}
	ensurePool()
	r := regionPool.Get().(*parallelRegion)
	r.pending.Store(int32(nChunks))
	lo := 0
	for hi := chunk; hi < n; hi += chunk {
		t := poolTask{body: body, lo: lo, hi: hi, r: r}
		select {
		case poolTasks <- t:
		default:
			// Queue full: run the chunk on the caller rather than block.
			t.run()
		}
		lo = hi
	}
	// The caller always executes the final chunk itself instead of idling.
	poolTask{body: body, lo: lo, hi: n, r: r}.run()
	// Helping wait: while our region has chunks in flight, drain and run
	// queued tasks (ours or another region's). Waiters making progress on
	// the shared queue means nested parallel regions cannot deadlock the
	// fixed-size pool.
	for {
		select {
		case t := <-poolTasks:
			t.run()
		case <-r.done:
			regionPool.Put(r)
			return
		}
	}
}

// ParallelForEach runs body(i) for each i in items concurrently, sharded in
// contiguous chunks. Convenience wrapper over ParallelFor for index-free
// worklists.
func ParallelForEach[T any](items []T, body func(item T)) {
	ParallelForEachGrain(items, 1, body)
}

// ParallelForEachGrain is ParallelForEach with a per-item work estimate
// (see ParallelForGrain).
func ParallelForEachGrain[T any](items []T, grain int, body func(item T)) {
	ParallelForGrain(len(items), grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(items[i])
		}
	})
}
