package tensor

import (
	"runtime"
	"sync"
)

// Parallelism is the default worker count for parallel kernels. It is a
// variable so benchmarks and tests can pin it; zero or negative values mean
// "use GOMAXPROCS".
var Parallelism = 0

func workers(requested int) int {
	n := requested
	if n <= 0 {
		n = Parallelism
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ParallelMatMul computes c = a * b, sharding rows of a across the default
// worker pool. It falls back to the sequential kernel for small inputs
// where goroutine overhead would dominate.
func ParallelMatMul(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("tensor: ParallelMatMul shape mismatch")
	}
	n := workers(0)
	// Heuristic: below ~64k multiply-adds the sequential kernel wins.
	if n == 1 || a.Rows*a.Cols*b.Cols < 1<<16 {
		matMulRows(c, a, b, 0, a.Rows)
		return
	}
	ParallelFor(a.Rows, func(lo, hi int) { matMulRows(c, a, b, lo, hi) })
}

// ParallelFor splits [0, n) into contiguous chunks and runs body on each
// chunk concurrently, blocking until all chunks complete. body must be safe
// to run concurrently on disjoint ranges.
func ParallelFor(n int, body func(lo, hi int)) {
	w := workers(0)
	if w == 1 || n < 2*w {
		body(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelForEach runs body(i) for each i in items concurrently, sharded in
// contiguous chunks. Convenience wrapper over ParallelFor for index-free
// worklists.
func ParallelForEach[T any](items []T, body func(item T)) {
	ParallelFor(len(items), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(items[i])
		}
	})
}
