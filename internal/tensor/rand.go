package tensor

import (
	"math"
	"math/rand"
)

// RandMatrix returns a (rows x cols) matrix with elements drawn uniformly
// from [-scale, scale] using rng. Used for deterministic Glorot-style
// weight initialisation; callers pass rand.New(rand.NewSource(seed)).
func RandMatrix(rng *rand.Rand, rows, cols int, scale float32) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = (2*rng.Float32() - 1) * scale
	}
	return m
}

// GlorotMatrix returns a (rows x cols) matrix with Glorot/Xavier uniform
// initialisation: scale = sqrt(6 / (rows + cols)).
func GlorotMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	scale := sqrt32(6.0 / float32(rows+cols))
	return RandMatrix(rng, rows, cols, scale)
}

// RandVector returns an n-vector with elements uniform in [-scale, scale].
func RandVector(rng *rand.Rand, n int, scale float32) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = (2*rng.Float32() - 1) * scale
	}
	return v
}

func sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }
