package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestParseQuant(t *testing.T) {
	cases := map[string]Quant{
		"": QuantF32, "none": QuantF32, "f32": QuantF32, "fp32": QuantF32,
		"f16": QuantF16, "fp16": QuantF16, "half": QuantF16,
		"i8": QuantI8, "int8": QuantI8,
	}
	for in, want := range cases {
		got, err := ParseQuant(in)
		if err != nil || got != want {
			t.Errorf("ParseQuant(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseQuant("bf16"); err == nil {
		t.Error("ParseQuant(bf16) should fail")
	}
}

func TestQuantF32RoundTripBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	row := make(Vector, 37)
	for i := range row {
		row[i] = float32(rng.NormFloat64() * 100)
	}
	row[3] = 0
	row[5] = float32(math.Inf(1))
	buf := make([]byte, QuantF32.RowBytes(len(row)))
	QuantF32.EncodeRow(buf, row)
	dec := make(Vector, len(row))
	QuantF32.DecodeRow(dec, buf)
	if !row.Equal(dec) {
		t.Fatalf("f32 round trip not bit-exact:\n%v\n%v", row, dec)
	}
}

// TestF16KnownValues checks the half conversion against hand-computed
// IEEE-754 binary16 encodings, including rounding ties and subnormals.
func TestF16KnownValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3c00},
		{-2, 0xc000},
		{65504, 0x7bff},          // largest finite half
		{65520, 0x7c00},          // rounds up to +Inf
		{float32(1e9), 0x7c00},   // overflow → Inf
		{5.9604645e-8, 0x0001},   // smallest subnormal
		{2.9802322e-8, 0x0000},   // exactly half the smallest subnormal: ties-to-even → 0
		{6.1035156e-5, 0x0400},   // smallest normal
		{0.333251953125, 0x3555}, // 1/3 rounded to half
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
	}
	for _, c := range cases {
		if got := F32ToF16(c.f); got != c.h {
			t.Errorf("F32ToF16(%g) = %#04x, want %#04x", c.f, got, c.h)
		}
	}
	if got := F32ToF16(float32(math.NaN())); got&0x7c00 != 0x7c00 || got&0x3ff == 0 {
		t.Errorf("F32ToF16(NaN) = %#04x, not a half NaN", got)
	}
	if !math.IsNaN(float64(F16ToF32(0x7e00))) {
		t.Error("F16ToF32(half NaN) is not NaN")
	}
}

// TestF16ExactRoundTrip: every half value except NaNs survives
// half→float→half unchanged, exhaustively over all 65536 encodings.
func TestF16ExactRoundTrip(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		h := uint16(i)
		f := F16ToF32(h)
		if math.IsNaN(float64(f)) {
			continue
		}
		if got := F32ToF16(f); got != h {
			t.Fatalf("half %#04x → %g → %#04x", h, f, got)
		}
	}
}

func TestF16RoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between half(1.0) and the next half
	// value; ties-to-even keeps the even mantissa (1.0).
	x := float32(1) + float32(math.Ldexp(1, -11))
	if got := F32ToF16(x); got != 0x3c00 {
		t.Errorf("tie at 1+2^-11 rounded to %#04x, want 0x3c00", got)
	}
	// Just above the tie must round up.
	y := float32(1) + float32(math.Ldexp(1, -11))*1.5
	if got := F32ToF16(y); got != 0x3c01 {
		t.Errorf("1+1.5*2^-11 rounded to %#04x, want 0x3c01", got)
	}
}

func TestQuantF16WithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	row := make(Vector, 64)
	for i := range row {
		row[i] = float32(rng.NormFloat64() * 10)
	}
	buf := make([]byte, QuantF16.RowBytes(len(row)))
	QuantF16.EncodeRow(buf, row)
	dec := make(Vector, len(row))
	QuantF16.DecodeRow(dec, buf)
	bound := QuantF16.ErrorBound(row)
	for i := range row {
		if d := abs32(row[i] - dec[i]); d > bound {
			t.Fatalf("channel %d: |%g-%g| = %g exceeds bound %g", i, row[i], dec[i], d, bound)
		}
	}
}

func TestQuantI8WithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	row := make(Vector, 64)
	for i := range row {
		row[i] = float32(rng.NormFloat64() * 5)
	}
	buf := make([]byte, QuantI8.RowBytes(len(row)))
	QuantI8.EncodeRow(buf, row)
	dec := make(Vector, len(row))
	QuantI8.DecodeRow(dec, buf)
	bound := QuantI8.ErrorBound(row)
	if bound <= 0 {
		t.Fatal("expected positive error bound for a nonzero row")
	}
	for i := range row {
		if d := abs32(row[i] - dec[i]); d > bound {
			t.Fatalf("channel %d: |%g-%g| = %g exceeds bound %g", i, row[i], dec[i], d, bound)
		}
	}
	// Extremes of the symmetric range survive exactly.
	m := maxAbs(row)
	for i := range row {
		if row[i] == m || row[i] == -m {
			if abs32(row[i]-dec[i]) > m/254 {
				t.Fatalf("max-magnitude channel decoded to %g, want ~%g", dec[i], row[i])
			}
		}
	}
}

func TestQuantI8ZeroRow(t *testing.T) {
	row := make(Vector, 8)
	buf := make([]byte, QuantI8.RowBytes(len(row)))
	for i := range buf {
		buf[i] = 0xff // dirty buffer: encode must fully overwrite
	}
	QuantI8.EncodeRow(buf, row)
	dec := make(Vector, len(row))
	QuantI8.DecodeRow(dec, buf)
	for i := range dec {
		if dec[i] != 0 {
			t.Fatalf("zero row decoded channel %d = %g", i, dec[i])
		}
	}
}

func TestQuantRowBytes(t *testing.T) {
	if QuantF32.RowBytes(16) != 64 || QuantF16.RowBytes(16) != 32 || QuantI8.RowBytes(16) != 20 {
		t.Fatalf("RowBytes mismatch: %d %d %d",
			QuantF32.RowBytes(16), QuantF16.RowBytes(16), QuantI8.RowBytes(16))
	}
}
