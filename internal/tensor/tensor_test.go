package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewVectorZero(t *testing.T) {
	v := NewVector(5)
	if len(v) != 5 {
		t.Fatalf("len = %d, want 5", len(v))
	}
	for i, x := range v {
		if x != 0 {
			t.Errorf("v[%d] = %g, want 0", i, x)
		}
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2, 3}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares storage with original")
	}
	if !v.Equal(Vector{1, 2, 3}) {
		t.Error("original mutated")
	}
}

func TestVectorEqual(t *testing.T) {
	cases := []struct {
		a, b Vector
		want bool
	}{
		{Vector{1, 2}, Vector{1, 2}, true},
		{Vector{1, 2}, Vector{1, 3}, false},
		{Vector{1, 2}, Vector{1, 2, 3}, false},
		{Vector{}, Vector{}, true},
		{nil, Vector{}, true},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("case %d: Equal = %v, want %v", i, got, c.want)
		}
	}
}

func TestVectorApproxEqual(t *testing.T) {
	a := Vector{1, 1000, -1000}
	b := Vector{1.00001, 1000.01, -1000.01}
	if !a.ApproxEqual(b, 1e-4) {
		t.Error("should be approx equal at 1e-4")
	}
	if a.ApproxEqual(b, 1e-9) {
		t.Error("should not be approx equal at 1e-9")
	}
	if a.ApproxEqual(Vector{1, 1000}, 1) {
		t.Error("dim mismatch should not be equal")
	}
}

func TestMatrixRowViews(t *testing.T) {
	m := NewMatrix(3, 2)
	m.Row(1)[0] = 7
	if m.At(1, 0) != 7 {
		t.Error("Row must be a view, not a copy")
	}
	m.Set(2, 1, 5)
	if m.Row(2)[1] != 5 {
		t.Error("Set not visible through Row")
	}
}

func TestMatrixSetRowDimCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetRow with wrong dim must panic")
		}
	}()
	NewMatrix(2, 3).SetRow(0, Vector{1, 2})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %g", m.At(2, 1))
	}
	empty := FromRows(nil)
	if empty.Rows != 0 {
		t.Error("FromRows(nil) should be empty")
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}})
	n := m.Clone()
	n.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
	if !m.ApproxEqual(m, 0) {
		t.Error("matrix should approx-equal itself")
	}
}

func TestMatrixZeroFill(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Fill(3)
	for _, x := range m.Data {
		if x != 3 {
			t.Fatalf("Fill failed: %g", x)
		}
	}
	m.Zero()
	for _, x := range m.Data {
		if x != 0 {
			t.Fatalf("Zero failed: %g", x)
		}
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromRows([][]float32{{1, 2}})
	b := FromRows([][]float32{{1.5, -2}})
	if got := a.MaxAbsDiff(b); got != 4 {
		t.Errorf("MaxAbsDiff = %g, want 4", got)
	}
}

func TestAxpy(t *testing.T) {
	dst := Vector{1, 2, 3}
	Axpy(dst, 2, Vector{1, 1, 1})
	if !dst.Equal(Vector{3, 4, 5}) {
		t.Errorf("Axpy = %v", dst)
	}
}

func TestAddSubScale(t *testing.T) {
	a, b := Vector{1, 2}, Vector{3, 5}
	dst := NewVector(2)
	Add(dst, a, b)
	if !dst.Equal(Vector{4, 7}) {
		t.Errorf("Add = %v", dst)
	}
	Sub(dst, b, a)
	if !dst.Equal(Vector{2, 3}) {
		t.Errorf("Sub = %v", dst)
	}
	Scale(dst, -1, a)
	if !dst.Equal(Vector{-1, -2}) {
		t.Errorf("Scale = %v", dst)
	}
	// Scale may alias.
	Scale(a, 2, a)
	if !a.Equal(Vector{2, 4}) {
		t.Errorf("aliased Scale = %v", a)
	}
}

func TestEltMaxMin(t *testing.T) {
	a, b := Vector{1, 5, -2}, Vector{3, 4, -2}
	dst := NewVector(3)
	EltMax(dst, a, b)
	if !dst.Equal(Vector{3, 5, -2}) {
		t.Errorf("EltMax = %v", dst)
	}
	EltMin(dst, a, b)
	if !dst.Equal(Vector{1, 4, -2}) {
		t.Errorf("EltMin = %v", dst)
	}
}

func TestDotSum(t *testing.T) {
	if got := Dot(Vector{1, 2, 3}, Vector{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %g", got)
	}
	if got := Sum(Vector{1, 2, 3}); got != 6 {
		t.Errorf("Sum = %g", got)
	}
}

func TestReLU(t *testing.T) {
	x := Vector{-1, 0, 2}
	dst := NewVector(3)
	ReLU(dst, x)
	if !dst.Equal(Vector{0, 0, 2}) {
		t.Errorf("ReLU = %v", dst)
	}
	// In-place form.
	ReLU(x, x)
	if !x.Equal(Vector{0, 0, 2}) {
		t.Errorf("in-place ReLU = %v", x)
	}
}

func TestIdentityActivation(t *testing.T) {
	x := Vector{-1, 3}
	dst := NewVector(2)
	Identity(dst, x)
	if !dst.Equal(x) {
		t.Errorf("Identity = %v", dst)
	}
}

func TestVecMat(t *testing.T) {
	// x (1x2) * m (2x3)
	m := FromRows([][]float32{{1, 2, 3}, {4, 5, 6}})
	x := Vector{2, 1}
	dst := NewVector(3)
	VecMat(dst, x, m)
	if !dst.Equal(Vector{6, 9, 12}) {
		t.Errorf("VecMat = %v", dst)
	}
}

func TestMatVec(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}})
	dst := NewVector(2)
	MatVec(dst, m, Vector{1, 1})
	if !dst.Equal(Vector{3, 7}) {
		t.Errorf("MatVec = %v", dst)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}})
	b := FromRows([][]float32{{5, 6}, {7, 8}})
	c := NewMatrix(2, 2)
	MatMul(c, a, b)
	want := FromRows([][]float32{{19, 22}, {43, 50}})
	if !c.Equal(want) {
		t.Errorf("MatMul = %v, want %v", c, want)
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch must panic")
		}
	}()
	MatMul(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 2))
}

// TestParallelMatMulMatchesSequential and TestParallelForCoversRange moved
// to parallel_test.go / gemm_test.go as strict bit-exactness variants.

func TestParallelForEach(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	out := make([]int32, len(items))
	ParallelForEach(items, func(i int) { out[i] = 1 })
	for i, v := range out {
		if v != 1 {
			t.Fatalf("item %d not visited", i)
		}
	}
}

func TestGlorotMatrixDeterministic(t *testing.T) {
	a := GlorotMatrix(rand.New(rand.NewSource(42)), 8, 8)
	b := GlorotMatrix(rand.New(rand.NewSource(42)), 8, 8)
	if !a.Equal(b) {
		t.Error("same seed must give identical weights")
	}
	c := GlorotMatrix(rand.New(rand.NewSource(43)), 8, 8)
	if a.Equal(c) {
		t.Error("different seed should give different weights")
	}
}

func TestGlorotMatrixScale(t *testing.T) {
	m := GlorotMatrix(rand.New(rand.NewSource(1)), 16, 16)
	bound := float32(math.Sqrt(6.0 / 32.0))
	for _, x := range m.Data {
		if x < -bound || x > bound {
			t.Fatalf("element %g outside Glorot bound %g", x, bound)
		}
	}
}

func TestRandVectorInRange(t *testing.T) {
	v := RandVector(rand.New(rand.NewSource(1)), 100, 2)
	for _, x := range v {
		if x < -2 || x > 2 {
			t.Fatalf("element %g outside [-2,2]", x)
		}
	}
}

func TestIsFinite(t *testing.T) {
	if !(Vector{1, 2}).IsFinite() {
		t.Error("finite vector misreported")
	}
	if (Vector{1, Inf32}).IsFinite() {
		t.Error("Inf not detected")
	}
	if (Vector{float32(math.NaN())}).IsFinite() {
		t.Error("NaN not detected")
	}
}

// Property: EltMax is commutative, associative and idempotent.
func TestQuickEltMaxLaws(t *testing.T) {
	f := func(a, b, c []float32) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if len(c) < n {
			n = len(c)
		}
		a, b, c = a[:n], b[:n], c[:n]
		ab, ba := NewVector(n), NewVector(n)
		EltMax(ab, Vector(a), Vector(b))
		EltMax(ba, Vector(b), Vector(a))
		if !ab.Equal(ba) {
			return false
		}
		// (a max b) max c == a max (b max c)
		l, r, bc := NewVector(n), NewVector(n), NewVector(n)
		EltMax(l, ab, Vector(c))
		EltMax(bc, Vector(b), Vector(c))
		EltMax(r, Vector(a), bc)
		if !l.Equal(r) {
			return false
		}
		// idempotent
		aa := NewVector(n)
		EltMax(aa, Vector(a), Vector(a))
		return aa.Equal(Vector(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: VecMat distributes over vector addition.
func TestQuickVecMatLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		in := 1 + rng.Intn(8)
		out := 1 + rng.Intn(8)
		m := RandMatrix(rng, in, out, 1)
		x := RandVector(rng, in, 1)
		y := RandVector(rng, in, 1)
		xy := NewVector(in)
		Add(xy, x, y)
		lhs := NewVector(out)
		VecMat(lhs, xy, m)
		rx, ry := NewVector(out), NewVector(out)
		VecMat(rx, x, m)
		VecMat(ry, y, m)
		rhs := NewVector(out)
		Add(rhs, rx, ry)
		if !lhs.ApproxEqual(rhs, 1e-4) {
			t.Fatalf("trial %d: VecMat not linear", trial)
		}
	}
}
