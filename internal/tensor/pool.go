package tensor

import "sync"

// VecPool recycles fixed-dimension scratch vectors across goroutines. Hot
// per-node kernels (layer updates, event processing) run millions of times
// per second; pooling their scratch space keeps the garbage collector out
// of the inner loop.
type VecPool struct {
	dim int
	p   sync.Pool
}

// NewVecPool returns a pool of dim-length vectors.
func NewVecPool(dim int) *VecPool {
	vp := &VecPool{dim: dim}
	vp.p.New = func() any {
		v := make(Vector, dim)
		return &v
	}
	return vp
}

// Get returns a vector of the pool's dimension with unspecified contents;
// callers must fully overwrite it.
func (vp *VecPool) Get() Vector { return *vp.p.Get().(*Vector) }

// Put returns v to the pool. v must have come from Get (same dimension).
func (vp *VecPool) Put(v Vector) {
	if len(v) != vp.dim {
		panic("tensor: VecPool.Put dimension mismatch")
	}
	vp.p.Put(&v)
}

// Dim returns the pooled vector dimension.
func (vp *VecPool) Dim() int { return vp.dim }

// matScratch recycles whole scratch matrices across batched-layer calls.
// Unlike VecPool it is shape-agnostic: GetScratch reshapes a pooled matrix
// whose backing array is large enough, so one pool serves every layer.
var matScratch sync.Pool

// GetScratch returns a rows×cols matrix with unspecified contents; callers
// must fully overwrite it and release it with PutScratch. Used by the
// batched layer kernels for GEMM intermediates.
func GetScratch(rows, cols int) *Matrix {
	need := rows * cols
	if v := matScratch.Get(); v != nil {
		m := v.(*Matrix)
		if cap(m.Data) >= need {
			m.Rows, m.Cols, m.Data = rows, cols, m.Data[:need]
			return m
		}
	}
	return NewMatrix(rows, cols)
}

// PutScratch returns a matrix obtained from GetScratch to the pool. The
// caller must not use m afterwards.
func PutScratch(m *Matrix) { matScratch.Put(m) }
